package serve

import (
	"fmt"
	"net/url"
	"strconv"
	"sync"

	abcfhe "repro"
	"repro/internal/ckks"
)

// specServer is the shared evaluation engine for one parameter set: all
// sessions whose key blobs embed the same ParamSpec evaluate on one
// abcfhe.Server (stateless per-op, race-audited in
// server_concurrency_test.go) and share its pre-encoded DFT pipelines.
type specServer struct {
	srv     *abcfhe.Server
	spec    ckks.ParamSpec
	maxPart int64 // per-frame byte cap: a full-depth ciphertext + slack

	dftMu sync.Mutex
	dfts  map[dftKey]*abcfhe.HomomorphicDFT
}

type dftKey struct{ start, levels int }

func newSpecServer(srv *abcfhe.Server, spec ckks.ParamSpec) (*specServer, error) {
	ctMax, err := srv.CiphertextWireBytes(srv.MaxLevel())
	if err != nil {
		return nil, err
	}
	maxPart := int64(ctMax) + 64
	if maxPart < 1<<20 { // dot's plaintext weight vector travels as text
		maxPart = 1 << 20
	}
	return &specServer{
		srv:     srv,
		spec:    spec,
		maxPart: maxPart,
		dfts:    make(map[dftKey]*abcfhe.HomomorphicDFT),
	}, nil
}

// importKeys is the cache's loadFunc: re-decode a spooled blob on this
// spec's server.
func (sp *specServer) importKeys(blob []byte) (*abcfhe.EvaluationKeys, error) {
	return sp.srv.ImportEvaluationKeys(blob)
}

// dft returns the memoized CoeffsToSlots/SlotsToCoeffs pipeline for a
// (start level, butterfly levels) schedule; building one pre-encodes
// 2·levels linear transforms, so it is far too expensive per-request.
func (sp *specServer) dft(start, levels int) (*abcfhe.HomomorphicDFT, error) {
	sp.dftMu.Lock()
	defer sp.dftMu.Unlock()
	k := dftKey{start, levels}
	if d, ok := sp.dfts[k]; ok {
		return d, nil
	}
	d, err := sp.srv.NewHomomorphicDFT(abcfhe.HomomorphicDFTConfig{StartLevel: start, Levels: levels})
	if err != nil {
		return nil, err
	}
	sp.dfts[k] = d
	return d, nil
}

// dftAtMid finds the schedule whose midpoint sits at the given level —
// the SlotsToCoeffs entry point, recovered from the inputs the same way
// the CLI does. MidLevel falls monotonically as StartLevel does, so at
// most a couple of candidates are built (then memoized).
func (sp *specServer) dftAtMid(mid, levels int) (*abcfhe.HomomorphicDFT, error) {
	for start := mid + levels; start <= sp.srv.MaxLevel(); start++ {
		d, err := sp.dft(start, levels)
		if err != nil {
			continue // start too shallow for this schedule; keep climbing
		}
		if d.MidLevel() == mid {
			return d, nil
		}
		if d.MidLevel() > mid {
			break
		}
	}
	return nil, fmt.Errorf("%w: no %d-level DFT has its midpoint at level %d",
		abcfhe.ErrLevelOutOfRange, levels, mid)
}

// opSpec declares one eval endpoint: how many frame parts it takes,
// whether it needs the session's evaluation keys, and how to compile
// the request into a runFunc. Parsing and deserialization happen on the
// HTTP goroutine (malformed input fails fast with 400, before the
// request occupies queue capacity); only the key-gated compute runs on
// a dispatch worker.
type opSpec struct {
	needsKeys bool
	minParts  int
	maxParts  int
	build     func(sp *specServer, q url.Values, parts [][]byte) (runFunc, error)
}

func intParam(q url.Values, name string, def int) (int, error) {
	s := q.Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%w: query param %s=%q is not an integer", abcfhe.ErrInvalidConstant, name, s)
	}
	return v, nil
}

func floatParam(q url.Values, name string, def float64) (float64, error) {
	s := q.Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: query param %s=%q is not a number", abcfhe.ErrInvalidConstant, name, s)
	}
	return v, nil
}

// rescaleResult applies the optional `rescale=n` suffix ops like mul
// and dot accept (a mul consumes one rescale, two on double-scale
// presets).
func rescaleResult(sp *specServer, q url.Values, out *abcfhe.Ciphertext) (*abcfhe.Ciphertext, error) {
	n, err := intParam(q, "rescale", 0)
	if err != nil {
		return nil, err
	}
	if n < 0 || n > sp.srv.MaxLevel() {
		return nil, fmt.Errorf("%w: rescale=%d out of range", abcfhe.ErrLevelOutOfRange, n)
	}
	for i := 0; i < n; i++ {
		if out, err = sp.srv.Rescale(out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func serialized(sp *specServer, cts ...*abcfhe.Ciphertext) ([][]byte, error) {
	parts := make([][]byte, len(cts))
	for i, ct := range cts {
		data, err := sp.srv.SerializeCiphertext(ct)
		if err != nil {
			return nil, err
		}
		parts[i] = data
	}
	return parts, nil
}

// opTable is the evaluation surface: the CLI's eval ops plus seeded
// upload expansion, one HTTP endpoint each under /v1/eval/{op}.
var opTable = map[string]opSpec{
	"mul": {needsKeys: true, minParts: 2, maxParts: 2,
		build: func(sp *specServer, q url.Values, parts [][]byte) (runFunc, error) {
			a, err := sp.srv.DeserializeCiphertext(parts[0])
			if err != nil {
				return nil, err
			}
			b, err := sp.srv.DeserializeCiphertext(parts[1])
			if err != nil {
				return nil, err
			}
			return func(evk *abcfhe.EvaluationKeys) ([][]byte, error) {
				out, err := sp.srv.Mul(a, b, evk)
				if err != nil {
					return nil, err
				}
				if out, err = rescaleResult(sp, q, out); err != nil {
					return nil, err
				}
				return serialized(sp, out)
			}, nil
		}},
	"rotate": {needsKeys: true, minParts: 1, maxParts: 1,
		build: func(sp *specServer, q url.Values, parts [][]byte) (runFunc, error) {
			ct, err := sp.srv.DeserializeCiphertext(parts[0])
			if err != nil {
				return nil, err
			}
			by, err := intParam(q, "by", 0)
			if err != nil {
				return nil, err
			}
			return func(evk *abcfhe.EvaluationKeys) ([][]byte, error) {
				out, err := sp.srv.Rotate(ct, by, evk)
				if err != nil {
					return nil, err
				}
				return serialized(sp, out)
			}, nil
		}},
	"conjugate": {needsKeys: true, minParts: 1, maxParts: 1,
		build: func(sp *specServer, q url.Values, parts [][]byte) (runFunc, error) {
			ct, err := sp.srv.DeserializeCiphertext(parts[0])
			if err != nil {
				return nil, err
			}
			return func(evk *abcfhe.EvaluationKeys) ([][]byte, error) {
				out, err := sp.srv.Conjugate(ct, evk)
				if err != nil {
					return nil, err
				}
				return serialized(sp, out)
			}, nil
		}},
	"innersum": {needsKeys: true, minParts: 1, maxParts: 1,
		build: func(sp *specServer, q url.Values, parts [][]byte) (runFunc, error) {
			ct, err := sp.srv.DeserializeCiphertext(parts[0])
			if err != nil {
				return nil, err
			}
			span, err := intParam(q, "span", 0)
			if err != nil {
				return nil, err
			}
			return func(evk *abcfhe.EvaluationKeys) ([][]byte, error) {
				out, err := sp.srv.InnerSum(ct, span, evk)
				if err != nil {
					return nil, err
				}
				return serialized(sp, out)
			}, nil
		}},
	"dot": {needsKeys: true, minParts: 2, maxParts: 2,
		build: func(sp *specServer, q url.Values, parts [][]byte) (runFunc, error) {
			ct, err := sp.srv.DeserializeCiphertext(parts[0])
			if err != nil {
				return nil, err
			}
			weights, err := parseComplexLines(parts[1])
			if err != nil {
				return nil, err
			}
			return func(evk *abcfhe.EvaluationKeys) ([][]byte, error) {
				out, err := sp.srv.DotPlain(ct, weights, evk)
				if err != nil {
					return nil, err
				}
				if out, err = rescaleResult(sp, q, out); err != nil {
					return nil, err
				}
				return serialized(sp, out)
			}, nil
		}},
	"c2s": {needsKeys: true, minParts: 1, maxParts: 1,
		build: func(sp *specServer, q url.Values, parts [][]byte) (runFunc, error) {
			ct, err := sp.srv.DeserializeCiphertext(parts[0])
			if err != nil {
				return nil, err
			}
			levels, err := intParam(q, "levels", 1)
			if err != nil {
				return nil, err
			}
			start, err := intParam(q, "start", ct.Level)
			if err != nil {
				return nil, err
			}
			dft, err := sp.dft(start, levels)
			if err != nil {
				return nil, err
			}
			return func(evk *abcfhe.EvaluationKeys) ([][]byte, error) {
				re, im, err := sp.srv.CoeffsToSlots(ct, dft, evk)
				if err != nil {
					return nil, err
				}
				return serialized(sp, re, im)
			}, nil
		}},
	"s2c": {needsKeys: true, minParts: 2, maxParts: 2,
		build: func(sp *specServer, q url.Values, parts [][]byte) (runFunc, error) {
			re, err := sp.srv.DeserializeCiphertext(parts[0])
			if err != nil {
				return nil, err
			}
			im, err := sp.srv.DeserializeCiphertext(parts[1])
			if err != nil {
				return nil, err
			}
			levels, err := intParam(q, "levels", 1)
			if err != nil {
				return nil, err
			}
			dft, err := sp.dftAtMid(re.Level, levels)
			if err != nil {
				return nil, err
			}
			return func(evk *abcfhe.EvaluationKeys) ([][]byte, error) {
				out, err := sp.srv.SlotsToCoeffs(re, im, dft, evk)
				if err != nil {
					return nil, err
				}
				return serialized(sp, out)
			}, nil
		}},
	"evalpoly": {needsKeys: true, minParts: 2, maxParts: 2,
		build: func(sp *specServer, q url.Values, parts [][]byte) (runFunc, error) {
			ct, err := sp.srv.DeserializeCiphertext(parts[0])
			if err != nil {
				return nil, err
			}
			coeffs, err := parseComplexLines(parts[1])
			if err != nil {
				return nil, err
			}
			lo, err := floatParam(q, "lo", -1)
			if err != nil {
				return nil, err
			}
			hi, err := floatParam(q, "hi", 1)
			if err != nil {
				return nil, err
			}
			level, err := intParam(q, "level", 0)
			if err != nil {
				return nil, err
			}
			// Compilation is plain coefficient arithmetic (no keys, no NTT)
			// — cheap enough to run per request on the HTTP goroutine, and
			// it surfaces every misuse as a 400 before queueing.
			pe, err := sp.srv.NewPolyEval(coeffs, lo, hi, level)
			if err != nil {
				return nil, err
			}
			return func(evk *abcfhe.EvaluationKeys) ([][]byte, error) {
				out, err := sp.srv.EvalPoly(ct, pe, evk)
				if err != nil {
					return nil, err
				}
				return serialized(sp, out)
			}, nil
		}},
	"evalmod": {needsKeys: true, minParts: 1, maxParts: 1,
		build: func(sp *specServer, q url.Values, parts [][]byte) (runFunc, error) {
			ct, err := sp.srv.DeserializeCiphertext(parts[0])
			if err != nil {
				return nil, err
			}
			degree, err := intParam(q, "degree", 0)
			if err != nil {
				return nil, err
			}
			rng, err := floatParam(q, "range", 0)
			if err != nil {
				return nil, err
			}
			scaling, err := floatParam(q, "scaling", 0)
			if err != nil {
				return nil, err
			}
			level, err := intParam(q, "level", 0)
			if err != nil {
				return nil, err
			}
			em, err := sp.srv.NewEvalMod(abcfhe.EvalModConfig{
				Degree: degree, Range: rng, Scaling: scaling, Level: level})
			if err != nil {
				return nil, err
			}
			return func(evk *abcfhe.EvaluationKeys) ([][]byte, error) {
				out, err := sp.srv.EvalMod(ct, em, evk)
				if err != nil {
					return nil, err
				}
				return serialized(sp, out)
			}, nil
		}},
	"expand": {needsKeys: false, minParts: 1, maxParts: 1,
		build: func(sp *specServer, q url.Values, parts [][]byte) (runFunc, error) {
			blob := parts[0]
			return func(*abcfhe.EvaluationKeys) ([][]byte, error) {
				out, err := sp.srv.ExpandCompressedUpload(blob)
				if err != nil {
					return nil, err
				}
				return serialized(sp, out)
			}, nil
		}},
}
