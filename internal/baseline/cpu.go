package baseline

import (
	"runtime"
	"time"

	"repro/internal/ckks"
	"repro/internal/prng"
)

// measureClient is the shared harness every live-CPU measurement runs on:
// one parameter build, one key pair, the client components, and a fixed
// pseudo-random message. Both the swlanes and decode experiments measure
// through this exact configuration, so their numbers stay comparable.
type measureClient struct {
	params    *ckks.Parameters
	enc       *ckks.Encoder
	encryptor *ckks.Encryptor
	dec       *ckks.Decryptor
	ev        *ckks.Evaluator
	msg       []complex128
}

// newMeasureClient builds the harness. workers <= 0 keeps the default
// engine (GOMAXPROCS lanes); otherwise a private engine is installed and
// released by close.
func newMeasureClient(spec ckks.ParamSpec, workers int) (*measureClient, error) {
	params, err := spec.Build()
	if err != nil {
		return nil, err
	}
	if workers > 0 {
		params.SetWorkers(workers)
	}
	seed := prng.SeedFromUint64s(0xABC0FE, 0xBC0FE)
	kg := ckks.NewKeyGenerator(params, seed)
	sk, pk := kg.GenKeyPair()
	m := &measureClient{
		params:    params,
		enc:       ckks.NewEncoder(params),
		encryptor: ckks.NewEncryptor(params, pk, seed),
		dec:       ckks.NewDecryptor(params, sk),
		ev:        ckks.NewEvaluator(params),
		msg:       make([]complex128, params.Slots()),
	}
	src := prng.NewSource(seed, 999)
	for i := range m.msg {
		m.msg[i] = complex(src.Float64()*2-1, src.Float64()*2-1)
	}
	return m, nil
}

func (m *measureClient) close() { m.params.Close() }

// MeasureCPU times our own from-scratch Go CKKS client on the host — the
// independent CPU baseline (DESIGN.md: speed-ups are reported both against
// the paper's published CPU reference and against this live measurement,
// so the comparison never rests on anchors alone).
//
// The returned latencies are per-operation wall-clock milliseconds for
// encode+encrypt at full depth and decrypt+decode at decLimbs. The client
// is pinned to one software lane so the baseline stays the *serial* CPU
// reference the accelerator comparisons (fig5a) are anchored against,
// independent of the host's core count; MeasureCPULanes exposes the
// worker axis for the swlanes sweep.
func MeasureCPU(spec ckks.ParamSpec, decLimbs, iters int) (encMS, decMS float64, err error) {
	return MeasureCPULanes(spec, decLimbs, iters, 1)
}

// MeasureCPULanes is MeasureCPU with an explicit software-lane (worker)
// count — the knob the swlanes experiment sweeps, mirroring the paper's
// Fig. 5b hardware lane sweep.
func MeasureCPULanes(spec ckks.ParamSpec, decLimbs, iters, workers int) (encMS, decMS float64, err error) {
	m, err := newMeasureClient(spec, workers)
	if err != nil {
		return 0, 0, err
	}
	defer m.close()
	if iters < 1 {
		iters = 1
	}

	start := time.Now()
	var ct *ckks.Ciphertext
	for i := 0; i < iters; i++ {
		ct = m.encryptor.Encrypt(m.enc.Encode(m.msg))
	}
	encMS = float64(time.Since(start)) / float64(time.Millisecond) / float64(iters)

	low := m.ev.DropLevel(ct, decLimbs)
	start = time.Now()
	for i := 0; i < iters; i++ {
		_ = m.enc.Decode(m.dec.Decrypt(low))
	}
	decMS = float64(time.Since(start)) / float64(time.Millisecond) / float64(iters)
	return encMS, decMS, nil
}

// MeasureDecode times the inbound client pipeline (decrypt at decLimbs +
// fast Combine-CRT decode through reused buffers) and reports both latency
// and heap allocations per operation — the measured counterpart of the
// accelerator's decode datapath, and the number the `decode` experiment
// tracks against the big.Int-path baseline (~9.7k allocs/op on the Test
// preset).
func MeasureDecode(spec ckks.ParamSpec, decLimbs, iters, workers int) (decMS, allocsPerOp float64, err error) {
	m, err := newMeasureClient(spec, workers)
	if err != nil {
		return 0, 0, err
	}
	defer m.close()
	if iters < 1 {
		iters = 1
	}

	low := m.ev.DropLevel(m.encryptor.Encrypt(m.enc.Encode(m.msg)), decLimbs)
	out := make([]complex128, m.params.Slots())
	decode := func() {
		pt := m.dec.Decrypt(low)
		m.enc.DecodeInto(pt, out)
		m.params.PutPlaintext(pt)
	}
	decode() // warm the scratch pools so steady state is what's measured

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		decode()
	}
	decMS = float64(time.Since(start)) / float64(time.Millisecond) / float64(iters)
	runtime.ReadMemStats(&m1)
	allocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(iters)
	return decMS, allocsPerOp, nil
}
