package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIKeyRoundTrip drives keygen → encrypt → decrypt through the
// subcommand entry points on real files — each step shares nothing with
// the previous one except the bytes on disk, the same property the CI
// step checks across actual processes.
func TestCLIKeyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pk := filepath.Join(dir, "pk.key")
	sk := filepath.Join(dir, "sk.key")
	ct := filepath.Join(dir, "ct.bin")
	msg := filepath.Join(dir, "msg.txt")
	out := filepath.Join(dir, "out.txt")

	if err := os.WriteFile(msg, []byte("0.5\n-0.25 0.125\n# comment\n0 -0.75\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := runKeygen([]string{"-preset", "Test", "-pk", pk, "-sk", sk}); err != nil {
		t.Fatal("keygen:", err)
	}
	if err := runEncrypt([]string{"-pk", pk, "-in", msg, "-out", ct}); err != nil {
		t.Fatal("encrypt:", err)
	}
	// Self-checking decrypt: -expect verifies against the original message.
	if err := runDecrypt([]string{"-sk", sk, "-in", ct, "-expect", msg, "-out", out, "-n", "3"}); err != nil {
		t.Fatal("decrypt:", err)
	}
	// -n trims only the output; -expect always sees the full decryption.
	if err := runDecrypt([]string{"-sk", sk, "-in", ct, "-expect", msg, "-n", "1"}); err != nil {
		t.Fatal("decrypt -n 1 with longer -expect:", err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("decrypt -n 3 wrote %d lines", len(lines))
	}
	// The emitted text round-trips through the message parser.
	back, err := readMessageFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("parsed %d values", len(back))
	}
}

// TestCLIEvalFlow drives the encrypted-compute loop across the file
// boundary: keygen → evalkeys → two encrypts → eval mul (+rescale) → eval
// dot → self-verifying decrypts. The eval steps hold only the
// evaluation-key blob and ciphertext files — the server role end to end.
func TestCLIEvalFlow(t *testing.T) {
	dir := t.TempDir()
	p := func(name string) string { return filepath.Join(dir, name) }

	// x = (0.5, -0.25), y = (0.5, 0.5) → x⊙y = (0.25, -0.125);
	// dot(x, w=(1, 2)) = 0.5 − 0.5 = 0.
	if err := os.WriteFile(p("x.txt"), []byte("0.5\n-0.25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p("y.txt"), []byte("0.5\n0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p("w.txt"), []byte("1\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p("prod.txt"), []byte("0.25\n-0.125\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p("dot.txt"), []byte("0\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := runKeygen([]string{"-preset", "Test", "-pk", p("pk.key"), "-sk", p("sk.key")}); err != nil {
		t.Fatal("keygen:", err)
	}
	if err := runEvalKeys([]string{"-sk", p("sk.key"), "-out", p("evk.bin"), "-rotations", "1"}); err != nil {
		t.Fatal("evalkeys:", err)
	}
	if err := runEncrypt([]string{"-pk", p("pk.key"), "-in", p("x.txt"), "-out", p("x.bin")}); err != nil {
		t.Fatal("encrypt x:", err)
	}
	if err := runEncrypt([]string{"-pk", p("pk.key"), "-in", p("y.txt"), "-out", p("y.bin")}); err != nil {
		t.Fatal("encrypt y:", err)
	}

	// ct×ct multiply with one rescale (Test preset's Δ spans one limb).
	if err := runEval([]string{"-evk", p("evk.bin"), "-op", "mul",
		"-a", p("x.bin"), "-b", p("y.bin"), "-rescale", "1", "-out", p("prod.bin")}); err != nil {
		t.Fatal("eval mul:", err)
	}
	// tol 1e-3: the Test preset's post-rescale scale is 2^24, so product
	// noise sits just above the 1e-4 default.
	if err := runDecrypt([]string{"-sk", p("sk.key"), "-in", p("prod.bin"),
		"-expect", p("prod.txt"), "-tol", "1e-3"}); err != nil {
		t.Fatal("decrypt product:", err)
	}

	// Plaintext-weight dot product: slot 0 holds Σ w·x (rotation noise at
	// the Test preset's scale needs the looser tolerance).
	if err := runEval([]string{"-evk", p("evk.bin"), "-op", "dot",
		"-a", p("x.bin"), "-weights", p("w.txt"), "-out", p("dot.bin")}); err != nil {
		t.Fatal("eval dot:", err)
	}
	if err := runDecrypt([]string{"-sk", p("sk.key"), "-in", p("dot.bin"),
		"-expect", p("dot.txt"), "-tol", "0.05"}); err != nil {
		t.Fatal("decrypt dot:", err)
	}

	// Misuse stays an error, never a panic: rotation step without a key.
	if err := runEval([]string{"-evk", p("evk.bin"), "-op", "rotate", "-by", "3",
		"-a", p("x.bin"), "-out", p("rot.bin")}); err == nil {
		t.Fatal("rotation by an ungenerated step must fail")
	}
}

// TestCLIHomomorphicDFTFlow drives the CoeffsToSlots → SlotsToCoeffs
// round trip across the file boundary: the evalkeys blob carries the
// DFT's rotation ladder (-dft-levels), eval c2s fans one ciphertext into
// the two coefficient-half ciphertexts, eval s2c folds them back, and a
// self-verifying decrypt confirms the message survived.
func TestCLIHomomorphicDFTFlow(t *testing.T) {
	dir := t.TempDir()
	p := func(name string) string { return filepath.Join(dir, name) }

	if err := os.WriteFile(p("msg.txt"), []byte("0.5\n-0.25 0.125\n0.0625 -0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runKeygen([]string{"-preset", "Test", "-pk", p("pk.key"), "-sk", p("sk.key")}); err != nil {
		t.Fatal("keygen:", err)
	}
	if err := runEvalKeys([]string{"-sk", p("sk.key"), "-out", p("evk.bin"), "-dft-levels", "1"}); err != nil {
		t.Fatal("evalkeys:", err)
	}
	if err := runEncrypt([]string{"-pk", p("pk.key"), "-in", p("msg.txt"), "-out", p("ct.bin")}); err != nil {
		t.Fatal("encrypt:", err)
	}
	if err := runEval([]string{"-evk", p("evk.bin"), "-op", "c2s", "-dft-levels", "1",
		"-a", p("ct.bin"), "-out", p("re.bin"), "-out2", p("im.bin")}); err != nil {
		t.Fatal("eval c2s:", err)
	}
	if err := runEval([]string{"-evk", p("evk.bin"), "-op", "s2c", "-dft-levels", "1",
		"-a", p("re.bin"), "-b", p("im.bin"), "-out", p("back.bin")}); err != nil {
		t.Fatal("eval s2c:", err)
	}
	// tol 0.05: the Test preset's Δ = 2^30 leaves the DFT round trip near
	// its structural noise floor (same budget the library-level test uses).
	if err := runDecrypt([]string{"-sk", p("sk.key"), "-in", p("back.bin"),
		"-expect", p("msg.txt"), "-tol", "0.05"}); err != nil {
		t.Fatal("decrypt round trip:", err)
	}

	// The c2s leg without the DFT ladder in the blob errors cleanly.
	if err := runEvalKeys([]string{"-sk", p("sk.key"), "-out", p("bare.bin"), "-rotations", "1"}); err != nil {
		t.Fatal("evalkeys bare:", err)
	}
	if err := runEval([]string{"-evk", p("bare.bin"), "-op", "c2s",
		"-a", p("ct.bin"), "-out", p("re2.bin"), "-out2", p("im2.bin")}); err == nil {
		t.Fatal("c2s without the DFT rotation keys must fail")
	}
}

// TestCLIKeygenDefaultSeedsAreFresh: without explicit -seed flags every
// keygen must draw a fresh crypto/rand seed — two default runs may never
// emit the same key material (a fixed default would hand every user the
// same secret key).
func TestCLIKeygenDefaultSeedsAreFresh(t *testing.T) {
	dir := t.TempDir()
	paths := func(tag string) (string, string) {
		return filepath.Join(dir, tag+".pk"), filepath.Join(dir, tag+".sk")
	}
	pkA, skA := paths("a")
	pkB, skB := paths("b")
	if err := runKeygen([]string{"-preset", "Test", "-pk", pkA, "-sk", skA}); err != nil {
		t.Fatal(err)
	}
	if err := runKeygen([]string{"-preset", "Test", "-pk", pkB, "-sk", skB}); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(pkA)
	b, _ := os.ReadFile(pkB)
	if string(a) == string(b) {
		t.Fatal("two default keygens produced identical public keys")
	}

	// Pinned seeds stay reproducible.
	pkC, skC := paths("c")
	pkD, skD := paths("d")
	for _, p := range [][2]string{{pkC, skC}, {pkD, skD}} {
		if err := runKeygen([]string{"-preset", "Test", "-seed-lo", "5", "-seed-hi", "6",
			"-pk", p[0], "-sk", p[1]}); err != nil {
			t.Fatal(err)
		}
	}
	c, _ := os.ReadFile(pkC)
	d, _ := os.ReadFile(pkD)
	if string(c) != string(d) {
		t.Fatal("pinned seeds must be reproducible")
	}
}

// TestCLIDecryptDetectsTamper flips ciphertext bytes on disk and expects
// the decrypt subcommand to fail cleanly (error, not panic).
func TestCLIDecryptDetectsTamper(t *testing.T) {
	dir := t.TempDir()
	pk := filepath.Join(dir, "pk.key")
	sk := filepath.Join(dir, "sk.key")
	ct := filepath.Join(dir, "ct.bin")
	msg := filepath.Join(dir, "msg.txt")

	if err := os.WriteFile(msg, []byte("0.25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runKeygen([]string{"-preset", "Test", "-pk", pk, "-sk", sk}); err != nil {
		t.Fatal(err)
	}
	if err := runEncrypt([]string{"-pk", pk, "-in", msg, "-out", ct}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ct)
	if err != nil {
		t.Fatal(err)
	}
	data = data[:len(data)-7] // truncate
	if err := os.WriteFile(ct, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runDecrypt([]string{"-sk", sk, "-in", ct}); err == nil {
		t.Fatal("truncated ciphertext must fail to decrypt")
	}
}

// TestCLIWrongKeyFails ensures decrypt with a different keypair's secret
// key is either rejected or fails -expect verification — never silently
// "succeeds".
func TestCLIWrongKeyFails(t *testing.T) {
	dir := t.TempDir()
	pkA := filepath.Join(dir, "a.pk")
	skA := filepath.Join(dir, "a.sk")
	skB := filepath.Join(dir, "b.sk")
	ct := filepath.Join(dir, "ct.bin")
	msg := filepath.Join(dir, "msg.txt")

	if err := os.WriteFile(msg, []byte("0.5 -0.25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runKeygen([]string{"-preset", "Test", "-pk", pkA, "-sk", skA}); err != nil {
		t.Fatal(err)
	}
	if err := runKeygen([]string{"-preset", "Test", "-seed-lo", "999", "-seed-hi", "111",
		"-pk", filepath.Join(dir, "b.pk"), "-sk", skB}); err != nil {
		t.Fatal(err)
	}
	if err := runEncrypt([]string{"-pk", pkA, "-in", msg, "-out", ct}); err != nil {
		t.Fatal(err)
	}
	if err := runDecrypt([]string{"-sk", skB, "-in", ct, "-expect", msg}); err == nil {
		t.Fatal("decrypting with the wrong secret key must fail verification")
	}
}
