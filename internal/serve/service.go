// Package serve is the throughput layer over the role-separated API: an
// HTTP service that turns one host into a multi-tenant FHE evaluation
// endpoint. The design target is the ARK/ABC-FHE serving observation
// that the scarce resource at fleet scale is not compute but *resident
// evaluation-key memory* (a PN15 full-depth hybrid key set is ~242 MB —
// thousands of registered devices cannot all stay decoded in RAM), so
// the core subsystem is a content-addressed, ref-counted LRU key cache
// with a hard byte budget:
//
//   - sessions register an evaluation-key blob once (gated by the
//     header-only wire checks before any payload-proportional work);
//     identical blobs from different sessions share one cache entry;
//   - a blob whose size alone exceeds the budget is rejected with
//     ErrCacheAdmission (HTTP 413) from its header, unread;
//   - in-flight dispatch batches pin the decoded keys; eviction (back
//     to the disk spool) happens only at refcount zero, in LRU order,
//     and a later request transparently reloads;
//   - registered-but-idle sessions hold no pin — their keys are exactly
//     what the budget reclaims.
//
// Request flow: per-session queues coalesce same-key operations into
// one dispatch batch (one cache pin, one worker occupancy, amortized
// across however many ops accumulated), a bounded worker pool executes
// batches, and a global max-inflight bound returns 429 + Retry-After
// instead of queueing without limit. /metrics exposes per-op latency
// histograms, queue depth, and cache bytes/hits/evictions;
// /debug/pprof is mounted for live profiling. Shutdown is
// drain-then-close: stop accepting, let queued work finish, then tear
// down workers and parties.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sync"
	"time"

	abcfhe "repro"
	"repro/internal/ckks"
)

// Config sizes a Service. Zero values select the documented defaults.
type Config struct {
	// CacheBytes is the evaluation-key cache budget (default 1 GiB).
	CacheBytes int64
	// MaxInflight bounds accepted-but-unfinished requests across all
	// sessions; excess gets 429 (default 256).
	MaxInflight int
	// Workers is the number of concurrent dispatch batches (default 2;
	// each op additionally fans out across the party's lane engine).
	Workers int
	// SpoolDir holds evicted key blobs ("" = a private temp dir,
	// removed on Close).
	SpoolDir string
	// Options configure the underlying parties (backend, lane count).
	Options []abcfhe.Option
	// Clock is injectable for tests (default time.Now).
	Clock Clock
}

// Service is the HTTP evaluation service. It implements http.Handler;
// mount it on an http.Server and call Drain+Close on the way out (see
// cmd/abc-fhe's serve subcommand for the full lifecycle).
type Service struct {
	cfg      Config
	clock    Clock
	cache    *KeyCache
	disp     *dispatcher
	m        *metrics
	mux      *http.ServeMux
	spoolDir string
	ownSpool bool

	mu       sync.Mutex
	specs    map[ckks.ParamSpec]*specServer
	sessions map[string]*session
	nextID   uint64
	draining bool
}

// New builds a Service. The returned value owns background workers and
// (optionally) a temp spool dir: always Close it.
func New(cfg Config) (*Service, error) {
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 1 << 30
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	spoolDir, ownSpool := cfg.SpoolDir, false
	if spoolDir == "" {
		dir, err := os.MkdirTemp("", "abcfhe-serve-spool-")
		if err != nil {
			return nil, fmt.Errorf("serve: creating spool dir: %w", err)
		}
		spoolDir, ownSpool = dir, true
	} else if err := os.MkdirAll(spoolDir, 0o700); err != nil {
		return nil, fmt.Errorf("serve: spool dir: %w", err)
	}

	s := &Service{
		cfg:      cfg,
		clock:    clock,
		cache:    NewKeyCache(cfg.CacheBytes, clock),
		m:        newMetrics(),
		spoolDir: spoolDir,
		ownSpool: ownSpool,
		specs:    make(map[ckks.ParamSpec]*specServer),
		sessions: make(map[string]*session),
	}
	s.disp = newDispatcher(s.cache, s.m, clock, cfg.MaxInflight, cfg.Workers)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleRegister)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionInfo)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleUnregister)
	mux.HandleFunc("POST /v1/eval/{op}", s.handleEval)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s, nil
}

func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Cache exposes the key cache (load generators and tests read stats).
func (s *Service) Cache() *KeyCache { return s.cache }

// Drain stops admitting new sessions; in-flight and queued evaluation
// work keeps running so an http.Server.Shutdown can complete it.
func (s *Service) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Close tears the service down: workers, parties, and the owned spool
// dir. Call only after the HTTP server has fully shut down (no handler
// may still be enqueueing).
func (s *Service) Close() error {
	s.Drain()
	s.disp.close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sp := range s.specs {
		sp.srv.Close()
	}
	s.specs = make(map[ckks.ParamSpec]*specServer)
	if s.ownSpool {
		return os.RemoveAll(s.spoolDir)
	}
	return nil
}

// ---------------------------------------------------------------------
// session registration
// ---------------------------------------------------------------------

// registerGatePrefix bounds how much of an upload is read before the
// header gate has pronounced on it. The evaluation-key header is
// keyHeader + geometry + 4 B per rotation step; 64 KiB covers ~16k
// steps — far past evalMaxRotations' practical range.
const registerGatePrefix = 64 << 10

// sessionResponse is the registration reply: everything a client needs
// to drive the session without re-parsing its own blob.
type sessionResponse struct {
	Session   string `json:"session"`
	BlobBytes int    `json:"blob_bytes"`
	Shared    bool   `json:"shared"` // another session already registered this blob
	Slots     int    `json:"slots"`
	MaxLevel  int    `json:"max_level"`
	Gadget    string `json:"gadget"`
	Rotations []int  `json:"rotations"`
	Conjugate bool   `json:"conjugate"`
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	// Header-only gate: parse spec+geometry from a bounded prefix,
	// validate, and derive the exact blob size — admission control and
	// length cross-checks all happen before the payload is read.
	prefix := make([]byte, registerGatePrefix)
	n, err := io.ReadFull(r.Body, prefix)
	if err != nil && err != io.ErrUnexpectedEOF {
		writeErr(w, fmt.Errorf("%w: reading upload: %v", abcfhe.ErrMalformedWire, err))
		return
	}
	prefix = prefix[:n]
	spec, info, err := ckks.ReadEvalKeyInfo(prefix)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", abcfhe.ErrMalformedWire, err))
		return
	}
	if err := spec.Validate(); err != nil {
		writeErr(w, fmt.Errorf("%w: %v", abcfhe.ErrMalformedWire, err))
		return
	}
	want := ckks.EvalKeyWireBytes(spec, info)
	if want <= 0 {
		writeErr(w, fmt.Errorf("%w: header implies no valid wire size", abcfhe.ErrMalformedWire))
		return
	}
	if err := s.cache.Admit(int64(want)); err != nil {
		writeErr(w, err) // 413 — and the remaining payload stays unread
		return
	}
	if r.ContentLength >= 0 && r.ContentLength != int64(want) {
		writeErr(w, fmt.Errorf("%w: Content-Length %d, header implies %d",
			abcfhe.ErrMalformedWire, r.ContentLength, want))
		return
	}
	var blob []byte
	if n >= want {
		blob = prefix[:want]
		if n > want {
			writeErr(w, fmt.Errorf("%w: %d trailing bytes after the key blob", abcfhe.ErrMalformedWire, n-want))
			return
		}
	} else {
		blob = append(prefix, make([]byte, want-n)...)
		if _, err := io.ReadFull(r.Body, blob[n:]); err != nil {
			writeErr(w, fmt.Errorf("%w: key blob truncated at %d of %d bytes", abcfhe.ErrMalformedWire, n, want))
			return
		}
	}
	var one [1]byte
	if _, err := r.Body.Read(one[:]); err != io.EOF {
		writeErr(w, fmt.Errorf("%w: trailing bytes after the key blob", abcfhe.ErrMalformedWire))
		return
	}

	sum := sha256.Sum256(blob)
	hash := hex.EncodeToString(sum[:])

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		writeErr(w, ErrDraining)
		return
	}
	sp := s.specs[spec]
	shared := s.cache.Has(hash)
	var decoded *abcfhe.EvaluationKeys
	if sp == nil {
		// First session on this parameter set: bootstrapping the Server
		// from the blob also decodes the keys — reuse that decode as the
		// cache's initial resident copy. Prime/NTT-table generation runs
		// under s.mu; registration is the cold path and stays simple.
		srv, evk, err := abcfhe.NewServerFromEvaluationKeys(blob, s.cfg.Options...)
		if err != nil {
			writeErr(w, err)
			return
		}
		sp, err = newSpecServer(srv, spec)
		if err != nil {
			srv.Close()
			writeErr(w, err)
			return
		}
		s.specs[spec] = sp
		decoded = evk
	} else if !shared {
		if decoded, err = sp.srv.ImportEvaluationKeys(blob); err != nil {
			writeErr(w, err)
			return
		}
	}

	// Spool the blob (content-addressed, so a rewrite is identical) when
	// absent — keyed on the filesystem rather than `shared` so a cache
	// entry torn down concurrently can never leave a fresh registration
	// pointing at a deleted file.
	spool := filepath.Join(s.spoolDir, hash)
	if _, err := os.Stat(spool); err != nil {
		if err := os.WriteFile(spool, blob, 0o600); err != nil {
			writeErr(w, fmt.Errorf("serve: spooling key blob: %w", err))
			return
		}
	}
	if err := s.cache.Register(hash, int64(want), spool, decoded, sp.importKeys); err != nil {
		writeErr(w, err)
		return
	}

	s.nextID++
	id := fmt.Sprintf("s%06x-%s", s.nextID, hash[:8])
	sess := &session{id: id, hash: hash, sp: sp, created: s.clock()}
	s.sessions[id] = sess
	s.m.sessionOpened()
	s.m.addTraffic(want, 0)

	writeJSON(w, http.StatusCreated, sessionResponse{
		Session:   id,
		BlobBytes: want,
		Shared:    shared,
		Slots:     sp.srv.Slots(),
		MaxLevel:  info.MaxLevel,
		Gadget:    gadgetName(info.Gadget),
		Rotations: info.Steps,
		Conjugate: info.HasConj,
	})
}

func gadgetName(g ckks.Gadget) string {
	if g == ckks.GadgetHybrid {
		return "hybrid"
	}
	return "bv"
}

func (s *Service) session(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

func (s *Service) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		writeErr(w, ErrUnknownSession)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session":     sess.id,
		"key_hash":    sess.hash,
		"resident":    s.cache.IsResident(sess.hash),
		"queue_depth": sess.depth(),
		"created":     sess.created.UTC().Format(time.RFC3339Nano),
	})
}

func (s *Service) handleUnregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if sess == nil {
		writeErr(w, ErrUnknownSession)
		return
	}
	sess.mu.Lock()
	sess.closed = true
	sess.mu.Unlock()
	s.cache.Unregister(sess.hash)
	s.m.sessionClosed()
	w.WriteHeader(http.StatusNoContent)
}

// ---------------------------------------------------------------------
// evaluation
// ---------------------------------------------------------------------

func (s *Service) handleEval(w http.ResponseWriter, r *http.Request) {
	sess := s.session(r.URL.Query().Get("session"))
	if sess == nil {
		writeErr(w, ErrUnknownSession)
		return
	}
	op := r.PathValue("op")
	spec, ok := opTable[op]
	if !ok {
		writeErr(w, fmt.Errorf("%w: unknown op %q (mul, rotate, conjugate, innersum, dot, c2s, s2c, evalpoly, evalmod, expand)",
			abcfhe.ErrMalformedWire, op))
		return
	}
	sp := sess.sp
	bodyCap := int64(spec.maxParts)*(sp.maxPart+4) + 4
	parts, err := ReadFrames(http.MaxBytesReader(w, r.Body, bodyCap), spec.maxParts, sp.maxPart)
	if err != nil {
		writeErr(w, err)
		return
	}
	if len(parts) < spec.minParts {
		writeErr(w, fmt.Errorf("%w: op %s wants %d frame parts, got %d",
			abcfhe.ErrMalformedWire, op, spec.minParts, len(parts)))
		return
	}
	inBytes := 0
	for _, p := range parts {
		inBytes += len(p)
	}
	run, err := spec.build(sp, r.URL.Query(), parts)
	if err != nil {
		writeErr(w, err)
		return
	}

	req := &request{
		op:        op,
		needsKeys: spec.needsKeys,
		ctx:       r.Context(),
		run:       run,
		done:      make(chan result, 1),
		enqueued:  s.clock(),
	}
	if err := s.disp.enqueue(sess, req); err != nil {
		writeErr(w, err)
		return
	}
	select {
	case res := <-req.done:
		if res.err != nil {
			writeErr(w, res.err)
			return
		}
		outBytes := 0
		for _, p := range res.parts {
			outBytes += len(p)
		}
		s.m.addTraffic(inBytes, outBytes)
		w.Header().Set("Content-Type", ContentTypeFrames)
		WriteFrames(w, res.parts...)
	case <-r.Context().Done():
		// Client gone; the worker will notice ctx.Err and skip the
		// compute. done is buffered, so nothing leaks.
	}
}

// ---------------------------------------------------------------------
// observability & plumbing
// ---------------------------------------------------------------------

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	g := gauges{sessions: len(s.sessions), specs: len(s.specs)}
	for _, sess := range s.sessions {
		g.queueDepth += int64(sess.depth())
	}
	s.mu.Unlock()
	g.inflight = s.disp.inflight.Load()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.m.writeTo(w, s.cache.Stats(), g)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := httpStatus(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// httpStatus maps the package's sentinels and the public API's typed
// errors onto HTTP statuses: client-malformed → 400, semantically
// impossible for this key set → 422, resource pressure → 413/429/503.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrCacheAdmission):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrCachePressure), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownSession):
		return http.StatusNotFound
	case errors.Is(err, abcfhe.ErrMalformedWire),
		errors.Is(err, abcfhe.ErrInvalidCiphertext),
		errors.Is(err, abcfhe.ErrInvalidConstant),
		errors.Is(err, abcfhe.ErrBufferSize),
		errors.Is(err, abcfhe.ErrUnknownPreset):
		return http.StatusBadRequest
	case errors.Is(err, abcfhe.ErrEvaluationKeyMissing),
		errors.Is(err, abcfhe.ErrLevelOutOfRange),
		errors.Is(err, abcfhe.ErrLevelMismatch),
		errors.Is(err, abcfhe.ErrScaleMismatch),
		errors.Is(err, abcfhe.ErrInvalidSpan),
		errors.Is(err, abcfhe.ErrGadgetUnsupported):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}
