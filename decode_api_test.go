package abcfhe

// Tests for the lane-parallel decode path at the public-API level, on the
// role types: batch vs sequential equivalence, buffer-reuse semantics of
// the Into variants, worker-count bit-determinism and concurrent-use
// safety of DecryptDecodeBatch on a shared KeyOwner (run with -race; CI
// does).

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// decodeTestCiphertexts encrypts n messages on the device and drops every
// other ciphertext to the paper's 2-limb return state on the server, so
// the decode tests exercise every cached level view.
func decodeTestCiphertexts(t testing.TB, device *Encryptor, server *Server, n int) []*Ciphertext {
	t.Helper()
	msgs := testMsgs(device.Slots(), n)
	cts, err := device.EncodeEncryptBatch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ct := range cts {
		if i%2 == 1 {
			if cts[i], err = server.DropLevel(ct, 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	return cts
}

func slotsEqualBits(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

// TestDecryptDecodeBatchMatchesSequential: the batch path must emit
// exactly the slot vectors sequential DecryptDecode calls produce.
func TestDecryptDecodeBatchMatchesSequential(t *testing.T) {
	owner, device, server := threeParties(t, Test, 5, 6)
	cts := decodeTestCiphertexts(t, device, server, 5)

	batch, err := owner.DecryptDecodeBatch(cts)
	if err != nil {
		t.Fatal(err)
	}
	for i, ct := range cts {
		single, err := owner.DecryptDecode(ct)
		if err != nil {
			t.Fatal(err)
		}
		if !slotsEqualBits(batch[i], single) {
			t.Fatalf("batch message %d differs from sequential decode", i)
		}
	}
}

// TestDecryptDecodeBatchInto pins the buffer-reuse contract: non-nil
// entries are written in place, nil entries allocated, and a mis-sized
// batch is a typed error on the role API (the deprecated Client facade
// still panics — see TestClientFacadePanicsOnMisuse).
func TestDecryptDecodeBatchInto(t *testing.T) {
	owner, device, server := threeParties(t, Test, 7, 9)
	cts := decodeTestCiphertexts(t, device, server, 3)
	ref, err := owner.DecryptDecodeBatch(cts)
	if err != nil {
		t.Fatal(err)
	}

	out := make([][]complex128, len(cts))
	out[0] = make([]complex128, owner.Slots()) // reused in place
	reused := out[0]
	got, err := owner.DecryptDecodeBatchInto(cts, out)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0][0] != &reused[0] {
		t.Fatal("provided buffer was not reused")
	}
	for i := range ref {
		if !slotsEqualBits(got[i], ref[i]) {
			t.Fatalf("BatchInto message %d differs from DecryptDecodeBatch", i)
		}
	}

	if _, err := owner.DecryptDecodeBatchInto(cts, make([][]complex128, len(cts)-1)); err == nil {
		t.Fatal("mis-sized batch output must error")
	}
}

// TestDecodeDeterminismAcrossWorkers: DecryptDecode and the batch path
// must produce bit-identical slot values at worker counts 1, 2 and 8 —
// across parties that were built independently at each worker count.
func TestDecodeDeterminismAcrossWorkers(t *testing.T) {
	var refSingle []complex128
	var refBatch [][]complex128
	for _, w := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			owner, device, server := threeParties(t, Test, 0xABC, 0xF0E, WithWorkers(w))
			defer owner.Close()
			defer device.Close()
			defer server.Close()
			cts := decodeTestCiphertexts(t, device, server, 3)

			single, err := owner.DecryptDecode(cts[1])
			if err != nil {
				t.Fatal(err)
			}
			batch, err := owner.DecryptDecodeBatch(cts)
			if err != nil {
				t.Fatal(err)
			}

			if refSingle == nil {
				refSingle, refBatch = single, batch
				return
			}
			if !slotsEqualBits(single, refSingle) {
				t.Fatal("DecryptDecode output differs from the 1-worker reference")
			}
			for i := range refBatch {
				if !slotsEqualBits(batch[i], refBatch[i]) {
					t.Fatalf("batch message %d differs from the 1-worker reference", i)
				}
			}
		})
	}
}

// TestConcurrentDecryptDecodeBatch hammers one shared KeyOwner with
// concurrent batch decodes (the decryptor is stateless and the scratch
// pools are the only shared mutable state) — the -race acceptance test
// for the decode pipeline.
func TestConcurrentDecryptDecodeBatch(t *testing.T) {
	owner, device, server := threeParties(t, Test, 21, 22)
	cts := decodeTestCiphertexts(t, device, server, 4)
	ref, err := owner.DecryptDecodeBatch(cts)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				got, err := owner.DecryptDecodeBatch(cts)
				if err != nil {
					errs <- err
					return
				}
				for i := range ref {
					if !slotsEqualBits(got[i], ref[i]) {
						errs <- fmt.Errorf("goroutine %d iter %d: message %d mismatch", g, iter, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
