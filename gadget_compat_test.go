package abcfhe

// Gadget cross-compatibility matrix: the hybrid (P·Q) and BV key-switching
// gadgets must interoperate at the deployment level. One key owner (one
// seed) exports both kinds of evaluation-key blobs; two independent
// servers — one holding BV keys, one holding hybrid keys — run the same
// Mul → Rotate → InnerSum pipeline on identical ciphertext bytes, and both
// replies decrypt within the precision floor. Replaying a hybrid blob into
// a BV-expecting deployment (a parameter set without special primes) is a
// typed error, never a panic.

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/ckks"
)

// gadgetPipeline runs the shared compute: slot-wise square, rotate by 1,
// inner-sum over 4 slots, then the preset's rescales — returning the
// serialized reply.
func gadgetPipeline(t *testing.T, server *Server, evk *EvaluationKeys, upload []byte) []byte {
	t.Helper()
	ct, err := server.DeserializeCiphertext(upload)
	if err != nil {
		t.Fatal(err)
	}
	ct, err = server.DropLevel(ct, evk.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	prod, err := server.Mul(ct, ct, evk)
	if err != nil {
		t.Fatal(err)
	}
	rot, err := server.Rotate(prod, 1, evk)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := server.InnerSum(rot, 4, evk)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rescalesAfterMul(Test); i++ {
		if sum, err = server.Rescale(sum); err != nil {
			t.Fatal(err)
		}
	}
	reply, err := server.SerializeCiphertext(sum)
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestGadgetCrossCompatibilityMatrix(t *testing.T) {
	owner, err := NewKeyOwner(Test, 0x6AD6, 0xE7C0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := EvalKeyConfig{MaxLevel: 4, Rotations: []int{1, 2}}

	cfg.Gadget = GadgetBV
	bvBlob, err := owner.ExportEvaluationKeys(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Gadget = GadgetHybrid
	hyBlob, err := owner.ExportEvaluationKeys(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Gadget = GadgetAuto
	autoBlob, err := owner.ExportEvaluationKeys(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hyBlob, autoBlob) {
		t.Fatal("GadgetAuto did not select hybrid on a preset with special primes")
	}
	if len(hyBlob) >= len(bvBlob) {
		t.Fatalf("hybrid blob %d bytes not smaller than BV %d for the same depth/rotations",
			len(hyBlob), len(bvBlob))
	}

	// The encrypting device knows nothing about gadgets.
	pkBytes, err := owner.ExportPublicKey()
	if err != nil {
		t.Fatal(err)
	}
	device, err := NewEncryptor(pkBytes, 0xFACE, 0xF00D)
	if err != nil {
		t.Fatal(err)
	}
	msg := testMsgs(device.Slots(), 1)[0]
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	upload, err := device.SerializeCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}

	// Two servers, each bootstrapped from its own blob.
	srvBV, evkBV, err := NewServerFromEvaluationKeys(bvBlob)
	if err != nil {
		t.Fatal(err)
	}
	srvHy, evkHy, err := NewServerFromEvaluationKeys(hyBlob)
	if err != nil {
		t.Fatal(err)
	}
	if evkBV.Gadget() != GadgetBV || evkHy.Gadget() != GadgetHybrid {
		t.Fatalf("imported gadgets (%v, %v)", evkBV.Gadget(), evkHy.Gadget())
	}

	replyBV := gadgetPipeline(t, srvBV, evkBV, upload)
	replyHy := gadgetPipeline(t, srvHy, evkHy, upload)

	// Clear-text reference: slot j of the reply holds
	// Σ_{m<4} (msg·msg rotated by 1)[j+m].
	slots := owner.Slots()
	want := make([]complex128, slots)
	for j := 0; j < slots; j++ {
		for m := 0; m < 4; m++ {
			v := msg[(j+m+1)%slots]
			want[j] += v * v
		}
	}
	floor := 11.0 // the Test preset's structural Δ=2^30 cap (see eval_api_test)
	for name, reply := range map[string][]byte{"bv": replyBV, "hybrid": replyHy} {
		replyCt, err := owner.DeserializeCiphertext(reply)
		if err != nil {
			t.Fatal(err)
		}
		got, err := owner.DecryptDecode(replyCt)
		if err != nil {
			t.Fatal(err)
		}
		stats := ckks.MeasurePrecision(want, got)
		t.Logf("%s pipeline: worst-slot %.2f bits (mean %.2f)", name, stats.WorstBits, stats.MeanBits)
		if stats.WorstBits < floor {
			t.Fatalf("%s pipeline: %.2f bits below floor %.0f", name, stats.WorstBits, floor)
		}
	}
}

// TestHybridBlobIntoBVExpectingPath: a deployment whose parameter set has
// no special primes (SpecialLimbs = 0 — the only kind of server that
// cannot host hybrid keys) must reject a hybrid blob with a typed error,
// never a panic. The spec byte alone already separates the two (a
// no-specials server embeds SpecialLimbs 0 in its own exports), and the
// gadget byte makes the mismatch explicit even under a forged spec.
func TestHybridBlobIntoBVExpectingPath(t *testing.T) {
	owner, err := NewKeyOwner(Test, 0xBEEF, 0xCAFE)
	if err != nil {
		t.Fatal(err)
	}
	hyBlob, err := owner.ExportEvaluationKeys(EvalKeyConfig{MaxLevel: 2, Gadget: GadgetHybrid})
	if err != nil {
		t.Fatal(err)
	}

	// A BV-only parameter set: the Test spec stripped of special primes.
	bare := ckks.TestParams
	bare.SpecialLimbs = 0
	params, err := bare.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := params.UnmarshalEvaluationKeySet(hyBlob); err == nil {
		t.Fatal("no-specials parameters accepted a hybrid blob")
	}

	// Forging the spec's specialLimbs byte to 0 (to masquerade as a BV-era
	// blob) must trip the gadget/geometry gates, not a panic.
	forged := append([]byte(nil), hyBlob...)
	forged[13] = 0
	if _, err := params.UnmarshalEvaluationKeySet(forged); err == nil {
		t.Fatal("forged-spec hybrid blob accepted")
	}
	srv := &Server{party: party{params: params, ownsParams: true}}
	if _, err := srv.ImportEvaluationKeys(forged); !errors.Is(err, ErrMalformedWire) {
		t.Fatalf("public import of forged hybrid blob: %v", err)
	}
	if _, err := srv.ImportEvaluationKeys(hyBlob); !errors.Is(err, ErrMalformedWire) {
		t.Fatalf("public import of hybrid blob into no-specials server: %v", err)
	}

	// And the owner-side guard: requesting hybrid keys from a no-specials
	// deployment is a typed config error.
	if _, err := resolveGadget(GadgetHybrid, params); !errors.Is(err, ErrGadgetUnsupported) {
		t.Fatalf("resolveGadget(hybrid, no specials): %v", err)
	}
}
