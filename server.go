package abcfhe

import (
	"fmt"
	"math"

	"repro/internal/ckks"
)

// Server is the keyless evaluation party: it expands compressed uploads
// (regenerating c1 from the embedded 16-byte seed) and performs public
// homomorphic operations — addition, plaintext/constant multiplication,
// rescaling, level dropping. It never touches key material; everything it
// needs arrives as ciphertext bytes.
//
// A Server is safe for concurrent use.
type Server struct {
	party
	eval *ckks.Evaluator
}

// NewServer builds an evaluation party for the preset. The preset must
// match the one the clients' keys were generated for (a mismatch is
// detected when deserializing their ciphertexts).
func NewServer(preset Preset, opts ...Option) (*Server, error) {
	params, err := buildParams(preset, opts)
	if err != nil {
		return nil, err
	}
	return newServer(params, true), nil
}

func newServer(params *ckks.Parameters, owns bool) *Server {
	return &Server{party: party{params: params, ownsParams: owns}, eval: ckks.NewEvaluator(params)}
}

// ExpandCompressedUpload parses a seeded compressed upload and
// regenerates c1 from the embedded seed. No key material needed — this is
// the server half of the halved-upload protocol.
func (s *Server) ExpandCompressedUpload(data []byte) (*Ciphertext, error) {
	sct, err := s.params.UnmarshalSeeded(data)
	if err != nil {
		return nil, wireErr(err)
	}
	return s.params.Expand(sct), nil
}

// Add returns a + b (component-wise RLWE addition).
func (s *Server) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if err := s.validatePair(a, b); err != nil {
		return nil, err
	}
	return s.eval.Add(a, b), nil
}

// Sub returns a - b.
func (s *Server) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	if err := s.validatePair(a, b); err != nil {
		return nil, err
	}
	return s.eval.Sub(a, b), nil
}

// Negate returns -ct.
func (s *Server) Negate(ct *Ciphertext) (*Ciphertext, error) {
	if err := validateCoeffCiphertext(s.params, ct); err != nil {
		return nil, err
	}
	return s.eval.Negate(ct), nil
}

// MulConst multiplies by a real constant via an integer approximation
// with compensating scale bookkeeping. The constant must be finite and
// |c| < 2^32 (the evaluator represents it as round(c·2^30), which must
// stay well inside uint64 — a NaN/Inf/huge value would otherwise hit an
// implementation-defined float→uint conversion and yield platform-
// dependent garbage with no error).
func (s *Server) MulConst(ct *Ciphertext, c float64) (*Ciphertext, error) {
	if err := validateCoeffCiphertext(s.params, ct); err != nil {
		return nil, err
	}
	if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) >= 1<<32 {
		return nil, fmt.Errorf("%w: %g not finite or |c| ≥ 2^32", ErrInvalidConstant, c)
	}
	return s.eval.MulConst(ct, c), nil
}

// Rescale divides the ciphertext by its last RNS prime, dropping one limb
// and dividing the scale accordingly.
func (s *Server) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	if err := validateCoeffCiphertext(s.params, ct); err != nil {
		return nil, err
	}
	if ct.Level < 2 {
		return nil, fmt.Errorf("%w: cannot rescale below level 1", ErrLevelOutOfRange)
	}
	return s.eval.Rescale(ct), nil
}

// DropLevel truncates the ciphertext to `level` limbs without changing
// the scale — how the paper's evaluation models server→client traffic
// (the server returns 2-limb ciphertexts to minimize client work, §V-B).
func (s *Server) DropLevel(ct *Ciphertext, level int) (*Ciphertext, error) {
	if err := validateCoeffCiphertext(s.params, ct); err != nil {
		return nil, err
	}
	if level < 1 || level > ct.Level {
		return nil, fmt.Errorf("%w: target %d not in [1, %d]", ErrLevelOutOfRange, level, ct.Level)
	}
	return s.eval.DropLevel(ct, level), nil
}

// Evaluator exposes the low-level keyless evaluator (plaintext operands,
// panicking misuse semantics) for call sites that have already validated
// their inputs.
func (s *Server) Evaluator() *ckks.Evaluator { return s.eval }

// Slots, MaxLevel, Workers, Close, SerializeCiphertext,
// DeserializeCiphertext, CiphertextWireBytes and CompressedWireBytes are
// provided by the embedded party substrate (party.go).

func (s *Server) validatePair(a, b *Ciphertext) error {
	if err := validateCoeffCiphertext(s.params, a); err != nil {
		return err
	}
	if err := validateCoeffCiphertext(s.params, b); err != nil {
		return err
	}
	return validateSameLevelScale(a, b)
}
