package fftfp

import (
	"math"

	"repro/internal/prng"
)

// This file implements the Fig. 3c experiment: sweep the floating-point
// mantissa width and measure the precision that survives the Fourier
// transforms. The paper measures "bootstrapping precision" — the bit
// precision left after server-side bootstrapping — and finds ≥43 mantissa
// bits keep it at 23.39 bits, above the 19.29-bit threshold from SHARP.
//
// We cannot run the authors' full bootstrapping stack, so two measurements
// bracket it (DESIGN.md substitution table):
//
//   - RoundTripPrecision: encode → decode through the reduced-precision
//     IFFT/FFT pair (the pure client-side path ABC-FHE executes), and
//   - BootPrecisionProxy: the plaintext shadow of a bootstrap —
//     SlotsToCoeffs, a degree-15 sine-polynomial EvalMod surrogate, and
//     CoeffsToSlots, all at the reduced precision, composed on top of the
//     client round trip. This exercises the identical datapath (complex
//     mul/add at mantissa m) with the error-compounding profile of the
//     homomorphic pipeline.
//
// Both curves are linear in the mantissa width with slope ≈ 1 and saturate
// at the float64 emulation ceiling — the paper's drop-off shape.

// PrecisionResult is one point of the sweep.
type PrecisionResult struct {
	MantissaBits int
	// Bits = -log2(mean |z - z'|) over uniformly random unit-box messages.
	Bits float64
	// MaxErrBits = -log2(max |z - z'|): the conservative variant.
	MaxErrBits float64
}

// precisionFloor caps reported precision: a zero error (reduced pipeline
// bit-identical to the reference) reads as the measurement floor rather
// than +Inf.
const precisionFloor = 52.0

func measure(err []float64) (meanBits, maxBits float64) {
	sum, maxv := 0.0, 0.0
	for _, e := range err {
		sum += e
		if e > maxv {
			maxv = e
		}
	}
	mean := sum / float64(len(err))
	meanBits, maxBits = -math.Log2(mean), -math.Log2(maxv)
	if math.IsInf(meanBits, 1) || meanBits > precisionFloor {
		meanBits = precisionFloor
	}
	if math.IsInf(maxBits, 1) || maxBits > precisionFloor {
		maxBits = precisionFloor
	}
	return meanBits, maxBits
}

func randomMessage(e *Embedder, seed uint64) []Complex {
	src := prng.NewSource(prng.SeedFromUint64s(seed, ^seed), 41)
	msg := make([]Complex, e.Slots)
	for i := range msg {
		msg[i] = Complex{src.Float64()*2 - 1, src.Float64()*2 - 1}
	}
	return msg
}

// RoundTripPrecision encodes and decodes a random message at the given
// mantissa width and reports the surviving precision.
func RoundTripPrecision(e *Embedder, mant int, seed uint64) PrecisionResult {
	ctx := NewCtx(mant)
	msg := randomMessage(e, seed)
	coeffs := e.EncodeToCoeffs(msg, ctx)
	got := e.DecodeFromCoeffs(coeffs, ctx)
	errs := make([]float64, e.Slots)
	for i := range errs {
		errs[i] = Complex{got[i].Re - msg[i].Re, got[i].Im - msg[i].Im}.Abs()
	}
	r := PrecisionResult{MantissaBits: mant}
	r.Bits, r.MaxErrBits = measure(errs)
	return r
}

// SinTaylorCoeffs returns the monomial Taylor coefficients of sin(t)
// through the given degree — the EvalMod kernel polynomial. Degree 15 is
// what production CKKS bootstraps use for the base sine approximation.
// Exported so the homomorphic EvalMod evaluates the identical polynomial
// this file's surrogate is measured with.
func SinTaylorCoeffs(degree int) []float64 {
	coeffs := make([]float64, degree+1)
	fact := 1.0
	for k := 0; k <= degree; k++ {
		if k > 0 {
			fact *= float64(k)
		}
		switch k % 4 {
		case 1:
			coeffs[k] = 1 / fact
		case 3:
			coeffs[k] = -1 / fact
		}
	}
	return coeffs
}

// SinSurrogate is the plaintext oracle for the homomorphic EvalMod: the
// degree-`degree` Taylor surrogate (rng/2π)·sin(2πx/rng) at full float64
// precision, evaluated with the same Horner shape as sinPolyEval.
func SinSurrogate(x float64, degree int, rng float64) float64 {
	coeffs := SinTaylorCoeffs(degree)
	t := x * (2 * math.Pi) / rng
	acc := 0.0
	for k := len(coeffs) - 1; k >= 0; k-- {
		acc = acc*t + coeffs[k]
	}
	return acc * rng / (2 * math.Pi)
}

// sinPolyEval evaluates the degree-15 Taylor surrogate of sin(2πx)/(2π) —
// the EvalMod kernel shape — at reduced precision, component-wise on the
// real parts. The coefficients are quantized into the context first, as
// plaintext constants would be on the accelerator.
func sinPolyEval(vals []Complex, ctx Ctx) {
	coeffs := SinTaylorCoeffs(15)
	for i := range vals {
		t := ctx.round(vals[i].Re * (2 * math.Pi) / 8) // shrink into convergence range
		acc := 0.0
		for k := len(coeffs) - 1; k >= 0; k-- {
			acc = ctx.round(acc*t + ctx.round(coeffs[k]))
		}
		// Undo the range shrink approximately: scale back.
		vals[i].Re = ctx.round(acc * 8 / (2 * math.Pi))
		t = ctx.round(vals[i].Im * (2 * math.Pi) / 8)
		acc = 0.0
		for k := len(coeffs) - 1; k >= 0; k-- {
			acc = ctx.round(acc*t + ctx.round(coeffs[k]))
		}
		vals[i].Im = ctx.round(acc * 8 / (2 * math.Pi))
	}
}

// BootPrecisionProxy measures precision through the bootstrap shadow:
// client encode, then StC → EvalMod surrogate → CtS at reduced precision,
// then client decode; compared against the same pipeline at full float64
// precision so only the mantissa-induced error is counted.
func BootPrecisionProxy(e *Embedder, mant int, seed uint64) PrecisionResult {
	run := func(ctx Ctx) []Complex {
		msg := randomMessage(e, seed)
		coeffs := e.EncodeToCoeffs(msg, ctx)
		slots := e.DecodeFromCoeffs(coeffs, ctx) // StC half
		sinPolyEval(slots, ctx)                  // EvalMod surrogate
		e.IFFT(slots, ctx)                       // CtS half
		e.FFT(slots, ctx)
		return slots
	}
	ref := run(NewCtx(Float64Mantissa))
	got := run(NewCtx(mant))
	errs := make([]float64, e.Slots)
	for i := range errs {
		errs[i] = Complex{got[i].Re - ref[i].Re, got[i].Im - ref[i].Im}.Abs()
	}
	r := PrecisionResult{MantissaBits: mant}
	r.Bits, r.MaxErrBits = measure(errs)
	return r
}

// Sweep runs a measurement across mantissa widths (inclusive range) and
// returns one result per width. kind selects "roundtrip" or "boot".
func Sweep(e *Embedder, minMant, maxMant int, kind string, seed uint64) []PrecisionResult {
	var out []PrecisionResult
	for m := minMant; m <= maxMant; m++ {
		switch kind {
		case "roundtrip":
			out = append(out, RoundTripPrecision(e, m, seed))
		case "boot":
			out = append(out, BootPrecisionProxy(e, m, seed))
		default:
			panic("fftfp: unknown sweep kind " + kind)
		}
	}
	return out
}

// DropOffPoint returns the smallest mantissa width in results whose
// precision meets the threshold (the paper's 19.29-bit line), or -1 if
// none does.
func DropOffPoint(results []PrecisionResult, thresholdBits float64) int {
	for _, r := range results {
		if r.Bits >= thresholdBits {
			return r.MantissaBits
		}
	}
	return -1
}
