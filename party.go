package abcfhe

import (
	"fmt"

	"repro/internal/ckks"
	"repro/internal/lanes"
)

// The role-separated v1 API. The paper's deployment model is asymmetric:
// a resource-constrained client device encodes and encrypts, decryption
// authority lives with the key owner, and evaluation happens on a keyless
// server. The public API mirrors that split with three parties that can
// live on different machines and exchange nothing but bytes:
//
//   - KeyOwner — holds the secret key: key generation, decrypt+decode,
//     seeded compressed uploads, key export.
//   - Encryptor — the fleet-of-devices role: constructed from a marshaled
//     public key only (never sees secret material); encode+encrypt.
//   - Server — keyless: expands compressed uploads and evaluates.
//
// All constructors and methods return typed errors (see errors.go) on
// misuse; panics are reserved for internal invariants. The legacy Client
// remains as a deprecated facade composed of the three roles.

// Option configures a party at construction.
type Option func(*config)

// ClientOption is the pre-role name for Option.
//
// Deprecated: use Option.
type ClientOption = Option

type config struct {
	workers int
	backend string
}

// WithWorkers sizes the party's lane engine to n parallel workers — the
// software mirror of the paper's per-PNL lane count that Fig. 5b sweeps
// in hardware. n <= 0 (and the default) selects GOMAXPROCS; n = 1 forces
// the fully serial path. Any worker count produces bit-identical
// ciphertexts for the same seed.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithBackend selects the execution backend the party's limb kernels run
// on: "fast" (the default — fixed-width Barrett/Montgomery inner loops
// with lazy reduction, plus the fused hybrid key-switch pipeline) or
// "portable" (the spec-shaped reference path). Backends never change
// results — ciphertexts are byte-identical under either — only how the
// inner loops execute. The process default can also be set via the
// ABCFHE_BACKEND environment variable; this option overrides it. An
// unknown name surfaces as ErrUnknownBackend at construction.
func WithBackend(name string) Option {
	return func(c *config) { c.backend = name }
}

// paramsFromKeyBlob is the shared untrusted-key-blob prologue of
// NewEncryptor and NewKeyOwnerFromSecretKey: parse the header, check the
// kind, range-validate the embedded spec, and verify the blob length it
// implies — all before paying for prime generation and NTT tables, so a
// hostile header can never demand work disproportionate to the bytes
// supplied. Sharing one helper keeps every gate applying to both wire
// entry points by construction.
func paramsFromKeyBlob(blob []byte, wantKind byte, opts []Option) (*ckks.Parameters, error) {
	spec, kind, err := ckks.ReadKeySpec(blob)
	if err != nil {
		return nil, wireErr(err)
	}
	if kind != wantKind {
		return nil, fmt.Errorf("%w: key blob kind 0x%02x, want 0x%02x", ErrMalformedWire, kind, wantKind)
	}
	if err := spec.Validate(); err != nil {
		return nil, wireErr(err)
	}
	if len(blob) != ckks.KeySpecWireBytes(spec, kind) {
		return nil, fmt.Errorf("%w: blob length %d does not match embedded spec", ErrMalformedWire, len(blob))
	}
	params, err := buildParamsFromSpec(spec, opts)
	if err != nil {
		return nil, wireErr(err)
	}
	return params, nil
}

// readEvalKeyBlob is the untrusted-bytes prologue shared by
// Server.ImportEvaluationKeys and NewServerFromEvaluationKeys — the
// evaluation-key sibling of paramsFromKeyBlob: parse the spec-embedding
// header and the geometry sub-header, range-validate both, and verify the
// blob length they imply, all before any payload-proportional work. The
// geometry is attacker-controlled too: a forged header claiming a huge
// depth or rotation table is rejected here, never allocated for.
func readEvalKeyBlob(blob []byte) (ckks.ParamSpec, ckks.EvalKeyInfo, error) {
	spec, info, err := ckks.ReadEvalKeyInfo(blob)
	if err != nil {
		return ckks.ParamSpec{}, ckks.EvalKeyInfo{}, wireErr(err)
	}
	if err := spec.Validate(); err != nil {
		return ckks.ParamSpec{}, ckks.EvalKeyInfo{}, wireErr(err)
	}
	if len(blob) != ckks.EvalKeyWireBytes(spec, info) {
		return ckks.ParamSpec{}, ckks.EvalKeyInfo{}, fmt.Errorf(
			"%w: blob length %d does not match embedded spec", ErrMalformedWire, len(blob))
	}
	return spec, info, nil
}

// party is the substrate every role embeds: the parameter set, lane
// engine ownership, and the byte-boundary helpers all three parties
// share. Centralizing them here means a hardening change (validation in
// SerializeCiphertext, rejection rules in the deserializer) applies to
// every role by construction.
type party struct {
	params     *ckks.Parameters
	ownsParams bool // false when a Client facade shares its params
}

// Slots returns the number of complex message slots (N/2).
func (p *party) Slots() int { return p.params.Slots() }

// MaxLevel returns the RNS depth fresh ciphertexts carry.
func (p *party) MaxLevel() int { return p.params.MaxLevel() }

// Workers reports the lane count kernels fan out across.
func (p *party) Workers() int { return p.params.Workers() }

// Close releases the party's private lane engine, if WithWorkers
// installed one. The party must be idle; using it afterwards falls back
// to the shared default engine. Close is idempotent and safe to call
// concurrently — serving-layer teardown reaches it from multiple paths
// (drain, deferred cleanup, signal handlers), and a second Close is a
// no-op.
func (p *party) Close() {
	if p.ownsParams {
		p.params.Close()
	}
}

// SerializeCiphertext encodes ct in the packed 44-bit wire format — the
// exact byte stream the accelerator's DRAM/wire accounting charges.
// Public-API ciphertexts travel in the coefficient domain.
func (p *party) SerializeCiphertext(ct *Ciphertext) ([]byte, error) {
	if err := validateCoeffCiphertext(p.params, ct); err != nil {
		return nil, err
	}
	return p.params.MarshalCiphertext(ct, true)
}

// DeserializeCiphertext reverses SerializeCiphertext, validating every
// residue against the parameter set. A blob claiming the NTT domain is
// rejected (see deserializeCoeffCiphertext).
func (p *party) DeserializeCiphertext(data []byte) (*Ciphertext, error) {
	return deserializeCoeffCiphertext(p.params, data)
}

// CiphertextWireBytes reports the packed wire size of a full ciphertext
// at the given level.
func (p *party) CiphertextWireBytes(level int) (int, error) {
	if err := validateLevel(p.params, level); err != nil {
		return 0, err
	}
	return p.params.CiphertextWireBytes(level), nil
}

// CompressedWireBytes reports the seeded upload's wire size at a level.
func (p *party) CompressedWireBytes(level int) (int, error) {
	if err := validateLevel(p.params, level); err != nil {
		return 0, err
	}
	return p.params.SeededWireBytes(level), nil
}

// buildParams constructs a private Parameters instance for a party.
func buildParams(preset Preset, opts []Option) (*ckks.Parameters, error) {
	spec, err := preset.spec()
	if err != nil {
		return nil, err
	}
	return buildParamsFromSpec(spec, opts)
}

func buildParamsFromSpec(spec ckks.ParamSpec, opts []Option) (*ckks.Parameters, error) {
	params, err := spec.Build()
	if err != nil {
		return nil, err
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers != 0 {
		params.SetWorkers(cfg.workers)
	}
	if cfg.backend != "" {
		b, err := lanes.ParseBackend(cfg.backend)
		if err != nil {
			params.Close()
			// Wrap, don't replace: ParseBackend's message lists the valid
			// names — the one piece of detail the caller actually needs.
			return nil, fmt.Errorf("%w: %q: %w", ErrUnknownBackend, cfg.backend, err)
		}
		params.SetBackend(b)
	}
	return params, nil
}
