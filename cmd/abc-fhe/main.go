// Command abc-fhe drives the client-side CKKS workflow.
//
// Without a subcommand it prints the demo card: the workflow run both
// functionally (the from-scratch Go implementation) and on the modeled
// accelerator — correctness/precision from the real computation,
// latency/area/power from the model.
//
// The subcommands operate the role-separated deployment on key and
// ciphertext files, so the three parties can run in three separate
// processes (or machines):
//
//	abc-fhe keygen   -preset Test -pk pk.key -sk sk.key     # key owner
//	abc-fhe evalkeys -sk sk.key -rotations 1,2 -out evk.bin # key owner → server
//	abc-fhe encrypt  -pk pk.key -in msg.txt -out ct.bin     # device (public key only)
//	abc-fhe eval     -evk evk.bin -op mul -a x.bin -b y.bin -out ct.bin  # server (keyless)
//	abc-fhe decrypt  -sk sk.key -in ct.bin                  # key owner
//
// The eval subcommand bootstraps its server from the evaluation-key blob
// alone (the parameter spec is embedded) and supports ops mul, rotate,
// conjugate, innersum, dot, c2s, s2c, evalpoly and evalmod — the
// encrypted-compute surface of the Server role. c2s (CoeffsToSlots) emits
// two ciphertexts (-out the real coefficient half, -out2 the imaginary
// one); s2c inverts it, taking the pair back via -a/-b. Both need an
// evaluation-key blob exported with `evalkeys -dft-levels N`. evalpoly
// applies the polynomial whose monomial coefficients -coeffs lists (one
// per line, degree order) over the interval the -lo/-hi flags give, via
// the BSGS Chebyshev schedule; evalmod applies the sine-surrogate
// modular reduction (-degree, -range) — the bootstrap stage that follows
// c2s. Message files hold one complex value per line: "re" or
// "re im".
//
// Demo usage:
//
//	abc-fhe                 # Test preset (fast)
//	abc-fhe -preset PN16    # the paper's evaluation parameters (slow on CPU)
//	abc-fhe -slots 64       # encode fewer slots
package main

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"os"
	"strconv"
	"strings"
	"time"

	abcfhe "repro"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && (args[0] == "-h" || args[0] == "--help" || args[0] == "help") {
		fmt.Println("subcommands: demo (default), keygen, evalkeys, encrypt, eval, decrypt, serve")
		fmt.Println("run `abc-fhe <subcommand> -h` for that subcommand's flags")
		return
	}
	var err error
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		switch cmd := args[0]; cmd {
		case "demo":
			err = runDemo(args[1:])
		case "keygen":
			err = runKeygen(args[1:])
		case "evalkeys":
			err = runEvalKeys(args[1:])
		case "encrypt":
			err = runEncrypt(args[1:])
		case "eval":
			err = runEval(args[1:])
		case "decrypt":
			err = runDecrypt(args[1:])
		case "serve":
			err = runServe(args[1:])
		default:
			err = fmt.Errorf("unknown subcommand %q (try: demo, keygen, evalkeys, encrypt, eval, decrypt, serve)", cmd)
		}
	} else {
		err = runDemo(args)
	}
	if errors.Is(err, flag.ErrHelp) {
		return // `abc-fhe <subcommand> -h` printed usage; that's success
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "abc-fhe:", err)
		os.Exit(1)
	}
}

// resolveSeed returns (lo, hi) for a party's 128-bit seed: the flag
// values when the user set either flag (reproducible runs), fresh
// crypto/rand words otherwise — fixed default seeds would hand every
// default keygen the same secret key and every default encrypt the same
// mask stream.
func resolveSeed(fs *flag.FlagSet, lo, hi uint64) (uint64, uint64, error) {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed-lo" || f.Name == "seed-hi" {
			set = true
		}
	})
	if set {
		return lo, hi, nil
	}
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return 0, 0, fmt.Errorf("seeding from crypto/rand: %w", err)
	}
	return binary.LittleEndian.Uint64(buf[:8]), binary.LittleEndian.Uint64(buf[8:]), nil
}

// ---------------------------------------------------------------------
// keygen / encrypt / decrypt — the three parties on files
// ---------------------------------------------------------------------

func runKeygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ContinueOnError)
	preset := fs.String("preset", "Test", "parameter preset: Test, PN13..PN16")
	seedLo := fs.Uint64("seed-lo", 0, "low 64 bits of the key seed (default: crypto/rand)")
	seedHi := fs.Uint64("seed-hi", 0, "high 64 bits of the key seed (default: crypto/rand)")
	pkPath := fs.String("pk", "pk.key", "output path for the public-key blob")
	skPath := fs.String("sk", "sk.key", "output path for the secret-key blob (keep private)")
	workers := fs.Int("workers", 0, "software PNL lanes (0 = GOMAXPROCS, 1 = serial)")
	backend := fs.String("backend", "", "execution backend: fast or portable (default: $ABCFHE_BACKEND or fast)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	lo, hi, err := resolveSeed(fs, *seedLo, *seedHi)
	if err != nil {
		return err
	}
	owner, err := abcfhe.NewKeyOwner(abcfhe.Preset(*preset), lo, hi,
		abcfhe.WithWorkers(*workers), abcfhe.WithBackend(*backend))
	if err != nil {
		return err
	}
	defer owner.Close()
	pk, err := owner.ExportPublicKey()
	if err != nil {
		return err
	}
	sk, err := owner.ExportSecretKey()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*pkPath, pk, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(*skPath, sk, 0o600); err != nil {
		return err
	}
	fmt.Printf("keygen %s: public key %d bytes -> %s, secret key %d bytes -> %s\n",
		*preset, len(pk), *pkPath, len(sk), *skPath)
	return nil
}

func runEvalKeys(args []string) error {
	fs := flag.NewFlagSet("evalkeys", flag.ContinueOnError)
	skPath := fs.String("sk", "sk.key", "secret-key blob from `abc-fhe keygen`")
	outPath := fs.String("out", "evk.bin", "output path for the evaluation-key blob (ship to the server)")
	maxLevel := fs.Int("max-level", 0, "depth cap for the keys (0 = full depth)")
	rotations := fs.String("rotations", "", "comma-separated rotation steps, e.g. 1,2,4 (innersum over n slots needs 1..n/2 powers of two)")
	conj := fs.Bool("conjugate", false, "also generate the complex-conjugation key")
	dftLevels := fs.Int("dft-levels", 0, "also export the rotation set (and conjugation key) for `eval -op c2s|s2c` with this many butterfly groups per direction (0 = none)")
	gadgetName := fs.String("gadget", "auto", "key-switching gadget: auto (hybrid where supported), hybrid, or bv")
	workers := fs.Int("workers", 0, "software PNL lanes (0 = GOMAXPROCS, 1 = serial)")
	backend := fs.String("backend", "", "execution backend: fast or portable (default: $ABCFHE_BACKEND or fast)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	skBytes, err := os.ReadFile(*skPath)
	if err != nil {
		return err
	}
	owner, err := abcfhe.NewKeyOwnerFromSecretKey(skBytes,
		abcfhe.WithWorkers(*workers), abcfhe.WithBackend(*backend))
	if err != nil {
		return err
	}
	defer owner.Close()

	var steps []int
	kept := map[int]bool{} // normalized steps actually exported (0 dropped, dups merged)
	addSteps := func(ks []int) {
		for _, k := range ks {
			steps = append(steps, k)
			if n := ((k % owner.Slots()) + owner.Slots()) % owner.Slots(); n != 0 {
				kept[n] = true
			}
		}
	}
	if *rotations != "" {
		for _, f := range strings.Split(*rotations, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("evalkeys: -rotations: %v", err)
			}
			addSteps([]int{k})
		}
	}
	if *dftLevels != 0 {
		logn := 0
		for 1<<(logn+1) <= owner.Slots() {
			logn++
		}
		if *dftLevels < 0 || *dftLevels > logn {
			return fmt.Errorf("evalkeys: -dft-levels %d not in [1, %d]", *dftLevels, logn)
		}
		// The key owner derives the ladder from the stage geometry alone;
		// CoeffsToSlots' real/imaginary split also needs the conjugation key.
		addSteps(abcfhe.HomomorphicDFTRotations(owner.Slots(), *dftLevels))
		*conj = true
	}
	var gadget abcfhe.GadgetType
	switch *gadgetName {
	case "auto":
		gadget = abcfhe.GadgetAuto
	case "hybrid":
		gadget = abcfhe.GadgetHybrid
	case "bv":
		gadget = abcfhe.GadgetBV
	default:
		return fmt.Errorf("evalkeys: -gadget must be auto, hybrid or bv (got %q)", *gadgetName)
	}
	evk, err := owner.ExportEvaluationKeys(abcfhe.EvalKeyConfig{
		MaxLevel:  *maxLevel,
		Rotations: steps,
		Conjugate: *conj,
		Gadget:    gadget,
	})
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, evk, 0o644); err != nil {
		return err
	}
	depth := "full depth"
	if *maxLevel > 0 {
		depth = fmt.Sprintf("depth %d", *maxLevel)
	}
	fmt.Printf("evalkeys: relin + %d rotation key(s) at %s, %d bytes -> %s\n",
		len(kept), depth, len(evk), *outPath)
	return nil
}

// runEval is the server role on files: bootstrap from the evaluation-key
// blob (no preset flag — the spec is embedded), apply one key-gated
// operation, write the resulting ciphertext.
func runEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	evkPath := fs.String("evk", "evk.bin", "evaluation-key blob from `abc-fhe evalkeys`")
	op := fs.String("op", "", "operation: mul, rotate, conjugate, innersum, dot, c2s, s2c, evalpoly, evalmod")
	aPath := fs.String("a", "", "first ciphertext file")
	bPath := fs.String("b", "", "second ciphertext file (mul; the imaginary half for s2c)")
	by := fs.Int("by", 0, "rotation step (rotate)")
	span := fs.Int("span", 0, "inner-sum span, a power of two (innersum)")
	weights := fs.String("weights", "", "plaintext weight file, one value per line (dot)")
	coeffsPath := fs.String("coeffs", "", "monomial coefficient file, one value per line in degree order (evalpoly)")
	lo := fs.Float64("lo", -1, "approximation interval lower bound (evalpoly)")
	hi := fs.Float64("hi", 1, "approximation interval upper bound (evalpoly)")
	level := fs.Int("level", 0, "input level the polynomial is compiled at (evalpoly, evalmod; 0 = minimum feasible)")
	degree := fs.Int("degree", 0, "sine-surrogate Taylor degree (evalmod; 0 = 15)")
	modRange := fs.Float64("range", 0, "sine-surrogate modulus analogue (evalmod; 0 = 8)")
	dftLevels := fs.Int("dft-levels", 1, "butterfly groups per direction (c2s, s2c) — match `evalkeys -dft-levels`")
	out2Path := fs.String("out2", "ct.out2.bin", "second output ciphertext file (c2s imaginary half)")
	dropLevel := fs.Int("drop-level", 0, "DropLevel the inputs first (0 = keep; use the evalkeys depth)")
	rescale := fs.Int("rescale", 0, "Rescale the result n times (a mul consumes 1, or 2 on double-scale presets)")
	outPath := fs.String("out", "ct.out.bin", "output ciphertext file")
	workers := fs.Int("workers", 0, "software PNL lanes (0 = GOMAXPROCS, 1 = serial)")
	backend := fs.String("backend", "", "execution backend: fast or portable (default: $ABCFHE_BACKEND or fast)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *aPath == "" {
		return fmt.Errorf("eval: -a ciphertext file required")
	}

	evkBytes, err := os.ReadFile(*evkPath)
	if err != nil {
		return err
	}
	server, evk, err := abcfhe.NewServerFromEvaluationKeys(evkBytes,
		abcfhe.WithWorkers(*workers), abcfhe.WithBackend(*backend))
	if err != nil {
		return err
	}
	defer server.Close()

	loadCt := func(path string) (*abcfhe.Ciphertext, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		ct, err := server.DeserializeCiphertext(data)
		if err != nil {
			return nil, err
		}
		if *dropLevel > 0 {
			return server.DropLevel(ct, *dropLevel)
		}
		return ct, nil
	}
	a, err := loadCt(*aPath)
	if err != nil {
		return err
	}

	var out *abcfhe.Ciphertext
	switch *op {
	case "mul":
		if *bPath == "" {
			return fmt.Errorf("eval: -op mul needs -b")
		}
		b, err := loadCt(*bPath)
		if err != nil {
			return err
		}
		out, err = server.Mul(a, b, evk)
		if err != nil {
			return err
		}
	case "rotate":
		if out, err = server.Rotate(a, *by, evk); err != nil {
			return err
		}
	case "conjugate":
		if out, err = server.Conjugate(a, evk); err != nil {
			return err
		}
	case "innersum":
		if out, err = server.InnerSum(a, *span, evk); err != nil {
			return err
		}
	case "dot":
		if *weights == "" {
			return fmt.Errorf("eval: -op dot needs -weights")
		}
		w, err := readMessageFile(*weights)
		if err != nil {
			return err
		}
		if out, err = server.DotPlain(a, w, evk); err != nil {
			return err
		}
	case "c2s":
		// CoeffsToSlots consumes the input at its current level (use
		// -drop-level to start shallower) and emits the two real-valued
		// coefficient halves as separate ciphertexts.
		dft, err := server.NewHomomorphicDFT(abcfhe.HomomorphicDFTConfig{
			StartLevel: a.Level, Levels: *dftLevels})
		if err != nil {
			return err
		}
		re, im, err := server.CoeffsToSlots(a, dft, evk)
		if err != nil {
			return err
		}
		imData, err := server.SerializeCiphertext(im)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out2Path, imData, 0o644); err != nil {
			return err
		}
		fmt.Printf("eval c2s: level-%d imaginary half, %d bytes -> %s\n", im.Level, len(imData), *out2Path)
		out = re
	case "s2c":
		if *bPath == "" {
			return fmt.Errorf("eval: -op s2c needs -b (the imaginary half from c2s)")
		}
		b, err := loadCt(*bPath)
		if err != nil {
			return err
		}
		// Recover the schedule from the inputs: the pair sits at the DFT's
		// mid level, so scan start levels for the one whose midpoint lands
		// there (StartLevel − Levels·rescales, preset-dependent).
		var dft *abcfhe.HomomorphicDFT
		for start := a.Level + 1; start <= server.MaxLevel(); start++ {
			d, err := server.NewHomomorphicDFT(abcfhe.HomomorphicDFTConfig{
				StartLevel: start, Levels: *dftLevels})
			if err == nil && d.MidLevel() == a.Level {
				dft = d
				break
			}
		}
		if dft == nil {
			return fmt.Errorf("eval: no %d-level DFT has its midpoint at level %d (wrong -dft-levels, or inputs too shallow)", *dftLevels, a.Level)
		}
		if out, err = server.SlotsToCoeffs(a, b, dft, evk); err != nil {
			return err
		}
	case "evalpoly":
		if *coeffsPath == "" {
			return fmt.Errorf("eval: -op evalpoly needs -coeffs")
		}
		coeffs, err := readMessageFile(*coeffsPath)
		if err != nil {
			return err
		}
		pe, err := server.NewPolyEval(coeffs, *lo, *hi, *level)
		if err != nil {
			return err
		}
		if out, err = server.EvalPoly(a, pe, evk); err != nil {
			return err
		}
	case "evalmod":
		em, err := server.NewEvalMod(abcfhe.EvalModConfig{
			Degree: *degree, Range: *modRange, Level: *level})
		if err != nil {
			return err
		}
		if out, err = server.EvalMod(a, em, evk); err != nil {
			return err
		}
	default:
		return fmt.Errorf("eval: unknown -op %q (mul, rotate, conjugate, innersum, dot, c2s, s2c, evalpoly, evalmod)", *op)
	}
	for i := 0; i < *rescale; i++ {
		if out, err = server.Rescale(out); err != nil {
			return err
		}
	}

	data, err := server.SerializeCiphertext(out)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("eval %s: level-%d ciphertext, %d bytes -> %s\n", *op, out.Level, len(data), *outPath)
	return nil
}

func runEncrypt(args []string) error {
	fs := flag.NewFlagSet("encrypt", flag.ContinueOnError)
	pkPath := fs.String("pk", "pk.key", "public-key blob from `abc-fhe keygen`")
	inPath := fs.String("in", "", "message file (one complex value per line: \"re\" or \"re im\")")
	outPath := fs.String("out", "ct.bin", "output path for the ciphertext")
	seedLo := fs.Uint64("seed-lo", 0, "low 64 bits of this device's randomness seed (default: crypto/rand)")
	seedHi := fs.Uint64("seed-hi", 0, "high 64 bits of this device's randomness seed (default: crypto/rand)")
	workers := fs.Int("workers", 0, "software PNL lanes (0 = GOMAXPROCS, 1 = serial)")
	backend := fs.String("backend", "", "execution backend: fast or portable (default: $ABCFHE_BACKEND or fast)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("encrypt: -in message file required")
	}

	pkBytes, err := os.ReadFile(*pkPath)
	if err != nil {
		return err
	}
	// A fresh random seed per process unless pinned: each invocation
	// restarts the stream counter at 0, so a reused seed would reuse
	// mask/error streams across uploads.
	lo, hi, err := resolveSeed(fs, *seedLo, *seedHi)
	if err != nil {
		return err
	}
	// The device role: built from public-key bytes alone.
	enc, err := abcfhe.NewEncryptor(pkBytes, lo, hi,
		abcfhe.WithWorkers(*workers), abcfhe.WithBackend(*backend))
	if err != nil {
		return err
	}
	defer enc.Close()

	msg, err := readMessageFile(*inPath)
	if err != nil {
		return err
	}
	ct, err := enc.EncodeEncrypt(msg)
	if err != nil {
		return err
	}
	data, err := enc.SerializeCiphertext(ct)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("encrypt: %d values -> depth-%d ciphertext, %d bytes -> %s\n",
		len(msg), ct.Level, len(data), *outPath)
	return nil
}

func runDecrypt(args []string) error {
	fs := flag.NewFlagSet("decrypt", flag.ContinueOnError)
	skPath := fs.String("sk", "sk.key", "secret-key blob from `abc-fhe keygen`")
	inPath := fs.String("in", "ct.bin", "ciphertext file")
	outPath := fs.String("out", "", "output message file (default: print to stdout)")
	n := fs.Int("n", 0, "slots to emit (0 = all)")
	expect := fs.String("expect", "", "message file to verify the decryption against")
	tol := fs.Float64("tol", 1e-4, "max |error| allowed with -expect")
	workers := fs.Int("workers", 0, "software PNL lanes (0 = GOMAXPROCS, 1 = serial)")
	backend := fs.String("backend", "", "execution backend: fast or portable (default: $ABCFHE_BACKEND or fast)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	skBytes, err := os.ReadFile(*skPath)
	if err != nil {
		return err
	}
	owner, err := abcfhe.NewKeyOwnerFromSecretKey(skBytes,
		abcfhe.WithWorkers(*workers), abcfhe.WithBackend(*backend))
	if err != nil {
		return err
	}
	defer owner.Close()

	data, err := os.ReadFile(*inPath)
	if err != nil {
		return err
	}
	ct, err := owner.DeserializeCiphertext(data)
	if err != nil {
		return err
	}
	slots, err := owner.DecryptDecode(ct)
	if err != nil {
		return err
	}
	// -expect verifies against the full decryption; -n only trims output.
	if *expect != "" {
		want, err := readMessageFile(*expect)
		if err != nil {
			return err
		}
		if len(want) > len(slots) {
			return fmt.Errorf("decrypt: -expect has %d values, only %d slots", len(want), len(slots))
		}
		var worst float64
		for i := range want {
			if e := cmplx.Abs(slots[i] - want[i]); e > worst {
				worst = e
			}
		}
		if worst > *tol {
			return fmt.Errorf("decrypt: verification failed: max error %g > tol %g", worst, *tol)
		}
		fmt.Printf("decrypt: verified %d values, max error %.3g (tol %g)\n", len(want), worst, *tol)
		if *outPath == "" {
			return nil
		}
	}
	if *n > 0 && *n < len(slots) {
		slots = slots[:*n]
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	for _, z := range slots {
		fmt.Fprintf(w, "%.17g %.17g\n", real(z), imag(z))
	}
	return w.Flush()
}

// readMessageFile parses one complex value per line: "re" or "re im",
// whitespace-separated. Blank lines and #-comments are skipped.
func readMessageFile(path string) ([]complex128, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var msg []complex128
	for lineNo, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) > 2 {
			return nil, fmt.Errorf("%s:%d: want \"re\" or \"re im\", got %q", path, lineNo+1, line)
		}
		var re, im float64
		if re, err = strconv.ParseFloat(fields[0], 64); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, lineNo+1, err)
		}
		if len(fields) == 2 {
			if im, err = strconv.ParseFloat(fields[1], 64); err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, lineNo+1, err)
			}
		}
		msg = append(msg, complex(re, im))
	}
	if len(msg) == 0 {
		return nil, fmt.Errorf("%s: no values", path)
	}
	return msg, nil
}

// ---------------------------------------------------------------------
// demo — the original side-by-side card, on the role types
// ---------------------------------------------------------------------

func runDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	preset := fs.String("preset", "Test", "parameter preset: Test, PN13..PN16")
	slots := fs.Int("slots", 0, "message slots to fill (0 = all)")
	workers := fs.Int("workers", 0, "software PNL lanes (0 = GOMAXPROCS, 1 = serial)")
	backend := fs.String("backend", "", "execution backend: fast or portable (default: $ABCFHE_BACKEND or fast)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The three parties, wired through exported bytes as if on three
	// machines: the owner exports a public key, a device encrypts with it,
	// the server evaluates keylessly, the owner decrypts.
	owner, err := abcfhe.NewKeyOwner(abcfhe.Preset(*preset), 0x0123456789ABCDEF, 0xFEDCBA9876543210,
		abcfhe.WithWorkers(*workers), abcfhe.WithBackend(*backend))
	if err != nil {
		return err
	}
	pkBytes, err := owner.ExportPublicKey()
	if err != nil {
		return err
	}
	device, err := abcfhe.NewEncryptor(pkBytes, 0xD0D0CACA, 0xBEBACAFE,
		abcfhe.WithWorkers(*workers), abcfhe.WithBackend(*backend))
	if err != nil {
		return err
	}
	server, err := abcfhe.NewServer(abcfhe.Preset(*preset),
		abcfhe.WithWorkers(*workers), abcfhe.WithBackend(*backend))
	if err != nil {
		return err
	}

	n := *slots
	if n <= 0 || n > device.Slots() {
		n = device.Slots()
	}
	msg := make([]complex128, n)
	for i := range msg {
		msg[i] = complex(math.Sin(float64(i)/7), math.Cos(float64(i)/11)) / 2
	}

	fmt.Printf("ABC-FHE client workflow — preset %s (slots=%d, depth=%d limbs)\n\n",
		*preset, device.Slots(), device.MaxLevel())

	start := time.Now()
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		return err
	}
	encDur := time.Since(start)

	low, err := server.DropLevel(ct, 2) // server returns the 2-limb state
	if err != nil {
		return err
	}

	start = time.Now()
	got, err := owner.DecryptDecode(low)
	if err != nil {
		return err
	}
	decDur := time.Since(start)

	var maxErr float64
	for i := range msg {
		if e := cmplx.Abs(got[i] - msg[i]); e > maxErr {
			maxErr = e
		}
	}

	fmt.Println("functional (this machine, pure Go, three parties over exported bytes):")
	fmt.Printf("  encode+encrypt: %v\n", encDur)
	fmt.Printf("  decrypt+decode: %v  (2-limb ciphertext)\n", decDur)
	fmt.Printf("  round-trip max error: %.3g (%.1f bits of precision)\n\n",
		maxErr, -math.Log2(maxErr))

	acc := abcfhe.NewAccelerator()
	s := acc.Summarize()
	fmt.Println("modeled accelerator (paper configuration: N=2^16, 2 RSC x 4 PNL x 8 lanes):")
	fmt.Printf("  encode+encrypt: %.4f ms    decode+decrypt: %.4f ms\n", s.EncMS, s.DecMS)
	fmt.Printf("  throughput: %.0f ciphertexts/s\n", s.ThroughputCtS)
	fmt.Printf("  area: %.3f mm² @28nm (%.3f mm² @7nm)\n", s.AreaMM2, s.Area7nmMM2)
	fmt.Printf("  power: %.3f W @28nm (%.3f W @7nm)\n", s.PowerW, s.Power7nmW)
	fmt.Printf("  client op counts: enc %.1f MOPs, dec %.1f MOPs\n", s.EncMOPs, s.DecMOPs)
	return nil
}
