package sfg

import "sort"

// Design-space exploration for Fig. 4b: enumerate stage groupings (all
// compositions of log2(N) into radices 1..4), count multipliers, histogram
// the distribution, and place the merged radix-2^n point against it.

// DesignPoint is one evaluated configuration.
type DesignPoint struct {
	Design Design
	Muls   float64
}

// compositions enumerates all ordered compositions of total into parts
// 1..maxPart. For total = 16 and maxPart = 4 this is 20569 configurations —
// the "possible design configurations" axis of Fig. 4b.
func compositions(total, maxPart int) [][]int {
	if total == 0 {
		return [][]int{{}}
	}
	var out [][]int
	for p := 1; p <= maxPart && p <= total; p++ {
		for _, rest := range compositions(total-p, maxPart) {
			c := append([]int{p}, rest...)
			out = append(out, c)
		}
	}
	return out
}

// Explore evaluates every composition for the given transform kind plus —
// for NTT — the merged radix-2^n schedule, and returns all points sorted
// by multiplier count.
func Explore(kind Kind, logN, p, maxRadix int) []DesignPoint {
	var pts []DesignPoint
	for _, gs := range compositions(logN, maxRadix) {
		d := Design{Kind: kind, LogN: logN, P: p, Groups: gs}
		pts = append(pts, DesignPoint{Design: d, Muls: d.MultiplierCount()})
	}
	if kind == NTT {
		d := Design{Kind: NTT, LogN: logN, P: p, Merged: true}
		pts = append(pts, DesignPoint{Design: d, Muls: d.MultiplierCount()})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Muls < pts[j].Muls })
	return pts
}

// HistogramBin is one bar of the Fig. 4b distribution.
type HistogramBin struct {
	NormMuls float64 // multiplier count normalized to the maximum
	Percent  float64 // share of design configurations in this bin
}

// Histogram bins the normalized multiplier counts of the points into
// `bins` equal-width buckets over [0, 1] (Fig. 4b's "Ratio of Design (%)"
// versus "Norm. # of Multiplier").
func Histogram(pts []DesignPoint, bins int) []HistogramBin {
	if len(pts) == 0 || bins < 1 {
		return nil
	}
	maxM := pts[len(pts)-1].Muls
	for _, p := range pts {
		if p.Muls > maxM {
			maxM = p.Muls
		}
	}
	counts := make([]int, bins)
	for _, p := range pts {
		b := int(p.Muls / maxM * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	out := make([]HistogramBin, bins)
	for i, c := range counts {
		out[i] = HistogramBin{
			NormMuls: (float64(i) + 0.5) / float64(bins),
			Percent:  100 * float64(c) / float64(len(pts)),
		}
	}
	return out
}

// Fig4Summary carries the headline numbers of the study.
type Fig4Summary struct {
	Kind            Kind
	LogN, P         int
	MergedMuls      float64 // the radix-2^n merged point (NTT) or best FFT
	Radix2Muls      float64
	Radix4Muls      float64 // radix-2^2
	MinMuls         float64
	ReductionVsR2   float64 // 1 - merged/radix-2
	ReductionVsR2x2 float64 // 1 - merged/radix-2^2
	Points          []DesignPoint
}

// Summarize runs the exploration and extracts the paper's comparison
// points. For NTT at logN = 16, P = 8 the paper reports 29.7% and 22.3%
// reductions versus radix-2 and radix-2^2; our documented counting rules
// yield the same ordering with reductions in the same double-digit band
// (see EXPERIMENTS.md for the measured values).
func Summarize(kind Kind, logN, p int) Fig4Summary {
	pts := Explore(kind, logN, p, 4)
	s := Fig4Summary{Kind: kind, LogN: logN, P: p, Points: pts, MinMuls: pts[0].Muls}

	r2 := Design{Kind: kind, LogN: logN, P: p, Groups: UniformGroups(logN, 1)}
	r4 := Design{Kind: kind, LogN: logN, P: p, Groups: UniformGroups(logN, 2)}
	s.Radix2Muls = r2.MultiplierCount()
	s.Radix4Muls = r4.MultiplierCount()

	if kind == NTT {
		merged := Design{Kind: NTT, LogN: logN, P: p, Merged: true}
		s.MergedMuls = merged.MultiplierCount()
	} else {
		s.MergedMuls = pts[0].Muls
	}
	s.ReductionVsR2 = 1 - s.MergedMuls/s.Radix2Muls
	s.ReductionVsR2x2 = 1 - s.MergedMuls/s.Radix4Muls
	return s
}
