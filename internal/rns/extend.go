package rns

// Fast RNS basis extension — the kernel under hybrid (P·Q) key switching.
//
// Given a value x known by its residues over a small source basis
// G = g_0·g_1·…·g_{α-1} (one decomposition group of the Q chain, or the
// special-prime chain P), ModUp reconstructs x's *centered* representative
// x̄ ∈ (−G/2, G/2] over an arbitrary set of target moduli without ever
// materializing the big integer:
//
//	y_i  = [(x_i + ⌊G/2⌋) · (G/g_i)^{-1}]  mod g_i
//	v    = ⌊Σ_i y_i / g_i⌋                       (float64 estimate)
//	out_t = Σ_i y_i·(G/g_i) − v·G − ⌊G/2⌋       mod m_t
//
// (the ⌊G/2⌋ shift makes the sum land in [0, αG) so v ∈ [0, α); its
// subtraction at the targets restores the centered lift). This is the
// standard Halevi–Polyakov–Shoup fast base conversion; the float64 v can
// round across an integer boundary only when x̄ sits within ~2^{-52}·αG of
// ±G/2, in which case the output is off by exactly ±G — harmless for key
// switching, where any representative x̄ + uG with small |u| only perturbs
// the noise term, never the residues on the source limbs themselves (those
// reconstruct exactly, see TestExtenderExactOnSourceLimbs).
//
// All tables are immutable after NewExtender; ExtendRange is pure
// arithmetic over disjoint output indices, so callers may chunk it across
// lanes freely — any partition computes the same bytes.

import (
	"fmt"
	"math/big"
	"math/bits"

	"repro/internal/mod"
)

// extendMaxSource bounds the source-basis size so the per-coefficient
// residue scratch lives on the stack. Hybrid key switching uses source
// groups of at most MaxSpecialLimbs primes (the ckks layer enforces ≤ 8);
// 16 leaves headroom for other callers.
const extendMaxSource = 16

// Extender holds the precomputed tables for one (source basis, target
// moduli) pair. Safe for concurrent use.
type Extender struct {
	src []mod.Modulus
	dst []mod.Modulus

	halfSrc []uint64   // ⌊G/2⌋ mod g_i
	invHat  []uint64   // (G/g_i)^{-1} mod g_i
	gInv    []float64  // 1/g_i
	hatDst  [][]uint64 // hatDst[t][i] = (G/g_i) mod m_t
	corr    [][]uint64 // corr[t][v]  = (v·G + ⌊G/2⌋) mod m_t, v ∈ [0, α]
}

// NewExtender builds the extension tables from the source primes to the
// target moduli (targets may overlap the sources; overlapping targets
// reconstruct their own residues exactly).
func NewExtender(src, dst []uint64) (*Extender, error) {
	if len(src) == 0 || len(dst) == 0 {
		return nil, fmt.Errorf("rns: extender needs non-empty bases (src %d, dst %d)", len(src), len(dst))
	}
	if len(src) > extendMaxSource {
		return nil, fmt.Errorf("rns: extender source basis %d exceeds %d limbs", len(src), extendMaxSource)
	}
	e := &Extender{
		src:     make([]mod.Modulus, len(src)),
		dst:     make([]mod.Modulus, len(dst)),
		halfSrc: make([]uint64, len(src)),
		invHat:  make([]uint64, len(src)),
		gInv:    make([]float64, len(src)),
		hatDst:  make([][]uint64, len(dst)),
		corr:    make([][]uint64, len(dst)),
	}
	g := big.NewInt(1)
	for _, q := range src {
		g.Mul(g, new(big.Int).SetUint64(q))
	}
	half := new(big.Int).Rsh(g, 1)
	tmp := new(big.Int)
	for i, q := range src {
		e.src[i] = mod.NewModulus(q)
		e.gInv[i] = 1 / float64(q)
		e.halfSrc[i] = tmp.Mod(half, new(big.Int).SetUint64(q)).Uint64()
		// (G/g_i)^{-1} mod g_i
		hat := new(big.Int).Quo(g, new(big.Int).SetUint64(q))
		hatMod := tmp.Mod(hat, new(big.Int).SetUint64(q)).Uint64()
		e.invHat[i] = e.src[i].Inv(hatMod)
	}
	for t, m := range dst {
		e.dst[t] = mod.NewModulus(m)
		e.hatDst[t] = make([]uint64, len(src))
		for i, q := range src {
			hat := new(big.Int).Quo(g, new(big.Int).SetUint64(q))
			e.hatDst[t][i] = tmp.Mod(hat, new(big.Int).SetUint64(m)).Uint64()
		}
		e.corr[t] = make([]uint64, len(src)+1)
		vg := new(big.Int).Set(half)
		for v := 0; v <= len(src); v++ {
			e.corr[t][v] = tmp.Mod(vg, new(big.Int).SetUint64(m)).Uint64()
			vg.Add(vg, g)
		}
	}
	return e, nil
}

// MustExtender panics on error.
func MustExtender(src, dst []uint64) *Extender {
	e, err := NewExtender(src, dst)
	if err != nil {
		panic(err)
	}
	return e
}

// SrcK and DstK report the basis sizes.
func (e *Extender) SrcK() int { return len(e.src) }
func (e *Extender) DstK() int { return len(e.dst) }

// ExtendRange extends coefficients [lo, hi): src[i][j] holds x_j mod g_i
// (residues in [0, g_i)), and dst[t][j] receives the centered lift of x_j
// mod m_t. src rows must cover [lo, hi); dst rows are fully overwritten on
// that range (stale contents are fine — pooled uninitialized storage is
// the expected caller). Output indices are disjoint per j, so the range
// may be partitioned across workers arbitrarily without changing a byte.
func (e *Extender) ExtendRange(src, dst [][]uint64, lo, hi int) {
	if len(src) != len(e.src) || len(dst) != len(e.dst) {
		panic("rns: extender row count mismatch")
	}
	var y [extendMaxSource]uint64
	alpha := len(e.src)
	for j := lo; j < hi; j++ {
		vf := 0.0
		for i := 0; i < alpha; i++ {
			m := e.src[i]
			yi := m.BarrettMul(m.Add(src[i][j], e.halfSrc[i]), e.invHat[i])
			y[i] = yi
			vf += float64(yi) * e.gInv[i]
		}
		v := int(vf) // ⌊·⌋: vf ≥ 0
		if v > alpha {
			v = alpha
		}
		for t := range dst {
			m := e.dst[t]
			hat := e.hatDst[t]
			acc := uint64(0)
			for i := 0; i < alpha; i++ {
				acc = m.Add(acc, m.BarrettMul(y[i]%m.Q, hat[i]))
			}
			dst[t][j] = m.Sub(acc, e.corr[t][v])
		}
	}
}

// ReduceRange is the source half of ExtendRange, split out so fused
// key-switch pipelines can compute the y_i rows and the overflow estimate
// v once and then combine target limbs in parallel (each target task
// reading y/v instead of redoing the source reduction per limb). For
// coefficients [lo, hi): y[i][j] = [(src[i][j] + ⌊G/2⌋)·(G/g_i)^{-1}] mod
// g_i, and v[j] the clamped ⌊Σ y_i/g_i⌋ estimate. The float accumulation
// runs in the same i-ascending order as ExtendRange, so a ReduceRange +
// CombineLimb pair reproduces ExtendRange's bytes exactly.
func (e *Extender) ReduceRange(src, y [][]uint64, v []uint64, lo, hi int) {
	if len(src) != len(e.src) || len(y) != len(e.src) {
		panic("rns: extender row count mismatch")
	}
	alpha := len(e.src)
	for j := lo; j < hi; j++ {
		vf := 0.0
		for i := 0; i < alpha; i++ {
			m := e.src[i]
			yi := m.BarrettMul(m.Add(src[i][j], e.halfSrc[i]), e.invHat[i])
			y[i][j] = yi
			vf += float64(yi) * e.gInv[i]
		}
		vj := int(vf) // ⌊·⌋: vf ≥ 0
		if vj > alpha {
			vj = alpha
		}
		v[j] = uint64(vj)
	}
}

// CombineLimb is the target half: dst[j] = Σ_i y_i·(G/g_i) − v·G − ⌊G/2⌋
// mod m_t over [lo, hi), from rows produced by ReduceRange. Pure
// per-coefficient arithmetic over one output row — safe to run one task
// per target limb, any coefficient partition.
//
// This is the hottest loop of the fused key-switch pipeline (every target
// limb of every group runs it over the whole coefficient range), so it is
// written as row-major passes with hoisted Barrett constants, and the
// per-term reduction folds y_i's mod-m_t reduction into the product:
// y_i·hat_i < g_i·m_t < 2^64·m_t is inside BarrettReduce128's domain, and
// (y_i mod m_t)·hat_i ≡ y_i·hat_i (mod m_t) with both reductions landing
// on the canonical representative — the same bytes ExtendRange computes,
// without its per-term hardware division (TestReduceCombineMatchesExtend).
func (e *Extender) CombineLimb(t int, y [][]uint64, v []uint64, dst []uint64, lo, hi int) {
	if len(y) != len(e.src) {
		panic("rns: extender row count mismatch")
	}
	m := e.dst[t]
	hat := e.hatDst[t]
	corr := e.corr[t]
	q, bhi, blo := m.Q, m.BHi, m.BLo
	d := dst[lo:hi]
	// Row 0 seeds the accumulator in dst (pooled storage may be dirty).
	y0 := y[0][lo:hi:hi]
	h0 := hat[0]
	for j := range d {
		phi, plo := bits.Mul64(y0[j], h0)
		d[j] = barrettReduce128(phi, plo, q, bhi, blo)
	}
	for i := 1; i < len(y); i++ {
		yi := y[i][lo:hi:hi]
		hi64 := hat[i]
		for j := range d {
			phi, plo := bits.Mul64(yi[j], hi64)
			s := d[j] + barrettReduce128(phi, plo, q, bhi, blo)
			if s >= q {
				s -= q
			}
			d[j] = s
		}
	}
	vv := v[lo:hi:hi]
	for j := range d {
		c := corr[vv[j]]
		s := d[j]
		if s < c {
			s += q
		}
		d[j] = s - c
	}
}

// barrettReduce128 is mod.Modulus.BarrettReduce128 with the constants
// hoisted into locals so the inliner folds it into the combine loops:
// (phi·2^64 + plo) mod q for values < q·2^64.
func barrettReduce128(phi, plo, q, bhi, blo uint64) uint64 {
	mhi, _ := bits.Mul64(plo, blo)
	c1hi, c1lo := bits.Mul64(plo, bhi)
	c2hi, c2lo := bits.Mul64(phi, blo)
	mid, carry1 := bits.Add64(c1lo, c2lo, 0)
	_, carry2 := bits.Add64(mid, mhi, 0)
	qhat := phi*bhi + c1hi + c2hi + carry1 + carry2
	r := plo - qhat*q
	if r >= q {
		r -= q
	}
	if r >= q {
		r -= q
	}
	return r
}
