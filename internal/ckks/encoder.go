package ckks

import (
	"math"

	"repro/internal/fftfp"
	"repro/internal/lanes"
	"repro/internal/ring"
)

// Plaintext is an encoded message: an RNS polynomial at some level carrying
// a scale. Domain is the coefficient domain after encoding (the form the
// Expand-RNS stage emits, paper Fig. 2a).
type Plaintext struct {
	Value *ring.Poly
	Level int
	Scale float64
}

// PutPlaintext recycles pt's backing polynomial into the scratch pool.
// Only call when pt was produced by this library (Encode/Decrypt) and no
// reference to it survives — the fused pipelines (Client.EncodeEncrypt
// and friends) use it to run allocation-free in steady state.
func (p *Parameters) PutPlaintext(pt *Plaintext) {
	if pt == nil {
		return
	}
	p.Ring().PutPoly(pt.Value) // PutPoly keys off the poly's own shape
	pt.Value = nil
}

// Encoder maps complex message vectors to plaintext polynomials and back:
// IFFT + Expand RNS one way, Combine CRT + FFT the other. The floating
// transforms run in the parameter set's mantissa context, so building
// Parameters with MantBits: fftfp.FP55Mantissa reproduces the
// accelerator's FP55 datapath bit-for-bit at the model level.
type Encoder struct {
	params *Parameters

	// pow2 tables per limb: pow2[i][e] = 2^e mod q_i, for the exact
	// float→RNS path (see encodeCoeff). Covers e ∈ [0, maxPow2).
	pow2 [][]uint64
}

const maxPow2 = 160 // coefficient magnitudes < 2^160 — far above any scale used

// NewEncoder builds the encoder and its power-of-two residue tables.
func NewEncoder(params *Parameters) *Encoder {
	enc := &Encoder{params: params}
	r := params.Ring()
	enc.pow2 = make([][]uint64, r.K())
	for i, m := range r.Basis.Moduli {
		tbl := make([]uint64, maxPow2)
		tbl[0] = 1
		for e := 1; e < maxPow2; e++ {
			tbl[e] = m.Add(tbl[e-1], tbl[e-1])
		}
		enc.pow2[i] = tbl
	}
	return enc
}

// encodeCoeff writes round(v·2^logScale) into limbs[i][j] for every limb i.
// The path is exact: v = ±M·2^(exp-53) with M the 53-bit mantissa, so
// v·2^logScale = ±M·2^e with e = exp-53+logScale, and the residue is
// (M mod q)·(2^e mod q) — all in word arithmetic, no big integers
// (this is what the MSE's Expand-RNS stage computes in hardware).
func (enc *Encoder) encodeCoeff(v float64, j, logScale int, limbs [][]uint64) {
	r := enc.params.Ring()
	if v == 0 {
		for i := range limbs {
			limbs[i][j] = 0
		}
		return
	}
	neg := false
	if v < 0 {
		neg = true
		v = -v
	}
	fr, exp := math.Frexp(v) // v = fr·2^exp, fr ∈ [0.5, 1)
	m := uint64(fr * (1 << 53))
	e := exp - 53 + logScale
	if e < 0 {
		// Shift mantissa right with round-to-nearest.
		sh := uint(-e)
		if sh > 54 {
			m = 0
		} else {
			m = (m + (1 << (sh - 1))) >> sh
		}
		e = 0
	}
	if e >= maxPow2 {
		panic("ckks: encoded coefficient exceeds supported magnitude")
	}
	for i := range limbs { // limbs may be a level-prefix of the full basis
		mm := r.Basis.Moduli[i]
		res := mm.Mul(m%mm.Q, enc.pow2[i][e])
		if neg {
			res = mm.Neg(res)
		}
		limbs[i][j] = res
	}
}

// EncodeAtLevel encodes up to Slots() complex values into a plaintext at
// the given level (limb count). Shorter messages are zero-padded.
func (enc *Encoder) EncodeAtLevel(msg []complex128, level int) *Plaintext {
	return enc.EncodeAtLevelScale(msg, level, enc.params.LogScale)
}

// EncodeAtLevelScale is EncodeAtLevel at an explicit scale Δ = 2^logScale
// instead of the parameter set's. Plaintext operands of homomorphic linear
// transforms use it: a transform's diagonals are encoded at exactly the
// scale its built-in rescales will consume, so the output scale returns to
// the input's regardless of the parameter set's Δ.
func (enc *Encoder) EncodeAtLevelScale(msg []complex128, level, logScale int) *Plaintext {
	p := enc.params
	if len(msg) > p.Slots() {
		panic("ckks: message longer than slot count")
	}
	if level < 1 || level > p.MaxLevel() {
		panic("ckks: level out of range")
	}
	if logScale < 1 || logScale >= maxPow2-60 {
		panic("ckks: encode scale out of range")
	}
	e := p.Embedder()
	vals := make([]fftfpComplex, p.Slots())
	for i, z := range msg {
		vals[i] = fftfpComplex{Re: real(z), Im: imag(z)}
	}
	coeffs := e.EncodeToCoeffs(vals, p.FFTCtx())

	// Expand RNS: each coefficient's limb expansion is pure word
	// arithmetic over read-only tables, so it fans out across the lanes
	// in contiguous coefficient chunks (the MSE's parallel expand stage).
	rl := p.RingAt(level)
	pt := rl.GetPolyUninit() // every limb of every coefficient is written below
	rl.Engine().RunChunks(len(coeffs), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			enc.encodeCoeff(coeffs[j], j, logScale, pt.Coeffs)
		}
	})
	scale := 1.0
	for i := 0; i < logScale; i++ {
		scale *= 2
	}
	return &Plaintext{Value: pt, Level: level, Scale: scale}
}

// Encode encodes at full depth (the client's encrypt-side configuration).
func (enc *Encoder) Encode(msg []complex128) *Plaintext {
	return enc.EncodeAtLevel(msg, enc.params.MaxLevel())
}

// Decode maps a plaintext back to complex slots: Combine CRT on every
// coefficient (centered lift over the level's modulus), divide by the
// scale, then the forward special FFT.
func (enc *Encoder) Decode(pt *Plaintext) []complex128 {
	return enc.DecodeInto(pt, make([]complex128, enc.params.Slots()))
}

// DecodeInto is Decode writing into a caller-provided slot vector of
// length Slots() (returned for chaining) — the allocation-lean form the
// batch pipeline reuses buffers through.
//
// The Combine-CRT stage runs on the basis's allocation-free fast combine
// (rns.CombineCenteredFloatScratch): per-coefficient centered lifts are
// independent, so coefficient blocks fan out across the lane engine, and
// every block draws its limb/accumulator scratch from the lanes pools.
// The big.Int oracle path stays available for verification
// (rns.CombineCenteredFloatBig); the property/fuzz suite in internal/rns
// pins the two to ≤1e-12 relative disagreement at every level.
func (enc *Encoder) DecodeInto(pt *Plaintext, out []complex128) []complex128 {
	p := enc.params
	if len(out) != p.Slots() {
		panic("ckks: decode output must have Slots() entries")
	}
	rl := p.RingAt(pt.Level)
	val := pt.Value
	var scratch *ring.Poly
	if val.IsNTT {
		scratch = rl.GetPolyCopy(val)
		rl.INTT(scratch)
		val = scratch
	}
	basis := rl.Basis
	level, scale := pt.Level, pt.Scale
	coeffs := lanes.GetFloatSlab(p.N())
	rl.Engine().RunChunks(p.N(), func(lo, hi int) {
		limbs := lanes.GetSlab(level)
		comb := lanes.GetSlab(basis.CombineScratchLen())
		for j := lo; j < hi; j++ {
			for i := 0; i < level; i++ {
				limbs[i] = val.Coeffs[i][j]
			}
			coeffs[j] = basis.CombineCenteredFloatScratch(limbs, scale, comb)
		}
		lanes.PutSlab(comb)
		lanes.PutSlab(limbs)
	})
	rl.PutPoly(scratch)
	slots := fftfp.GetSlotSlab(p.Slots())
	p.Embedder().DecodeFromCoeffsInto(coeffs, slots, p.FFTCtx())
	lanes.PutFloatSlab(coeffs)
	for i, v := range slots {
		out[i] = complex(v.Re, v.Im)
	}
	fftfp.PutSlotSlab(slots)
	return out
}
