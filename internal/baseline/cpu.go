package baseline

import (
	"time"

	"repro/internal/ckks"
	"repro/internal/prng"
)

// MeasureCPU times our own from-scratch Go CKKS client on the host — the
// independent CPU baseline (DESIGN.md: speed-ups are reported both against
// the paper's published CPU reference and against this live measurement,
// so the comparison never rests on anchors alone).
//
// The returned latencies are per-operation wall-clock milliseconds for
// encode+encrypt at full depth and decrypt+decode at decLimbs. The client
// is pinned to one software lane so the baseline stays the *serial* CPU
// reference the accelerator comparisons (fig5a) are anchored against,
// independent of the host's core count; MeasureCPULanes exposes the
// worker axis for the swlanes sweep.
func MeasureCPU(spec ckks.ParamSpec, decLimbs, iters int) (encMS, decMS float64, err error) {
	return MeasureCPULanes(spec, decLimbs, iters, 1)
}

// MeasureCPULanes is MeasureCPU with an explicit software-lane (worker)
// count — the knob the swlanes experiment sweeps, mirroring the paper's
// Fig. 5b hardware lane sweep. workers <= 0 keeps the default engine
// (GOMAXPROCS lanes); 1 is the fully serial reference.
func MeasureCPULanes(spec ckks.ParamSpec, decLimbs, iters, workers int) (encMS, decMS float64, err error) {
	params, err := spec.Build()
	if err != nil {
		return 0, 0, err
	}
	if workers > 0 {
		params.SetWorkers(workers)
		defer params.Close()
	}
	seed := prng.SeedFromUint64s(0xABC0FE, 0xBC0FE)
	kg := ckks.NewKeyGenerator(params, seed)
	sk, pk := kg.GenKeyPair()
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk, seed)
	dec := ckks.NewDecryptor(params, sk)
	ev := ckks.NewEvaluator(params)

	msg := make([]complex128, params.Slots())
	src := prng.NewSource(seed, 999)
	for i := range msg {
		msg[i] = complex(src.Float64()*2-1, src.Float64()*2-1)
	}

	if iters < 1 {
		iters = 1
	}

	start := time.Now()
	var ct *ckks.Ciphertext
	for i := 0; i < iters; i++ {
		ct = encryptor.Encrypt(enc.Encode(msg))
	}
	encMS = float64(time.Since(start)) / float64(time.Millisecond) / float64(iters)

	low := ev.DropLevel(ct, decLimbs)
	start = time.Now()
	for i := 0; i < iters; i++ {
		_ = enc.Decode(dec.Decrypt(low))
	}
	decMS = float64(time.Since(start)) / float64(time.Millisecond) / float64(iters)
	return encMS, decMS, nil
}
