// precision reproduces the Fig. 3c study interactively: sweep the
// floating-point mantissa width of the Fourier engine and watch the
// usable precision drop off — the experiment that justifies the paper's
// custom 55-bit float (43 mantissa bits) over FP64.
package main

import (
	"flag"
	"fmt"

	"repro/internal/fftfp"
)

func main() {
	logN := flag.Int("logn", 13, "ring degree exponent (paper uses 16; 13 runs in seconds)")
	flag.Parse()

	e := fftfp.NewEmbedder(*logN)
	threshold := 19.29 // the SHARP-derived sufficiency bar the paper uses

	fmt.Printf("precision vs mantissa width at N=2^%d (threshold %.2f bits)\n\n", *logN, threshold)
	fmt.Printf("%9s  %12s  %12s  %s\n", "mantissa", "round-trip", "boot proxy", "")

	var proxy []fftfp.PrecisionResult
	for m := 25; m <= 52; m += 3 {
		rt := fftfp.RoundTripPrecision(e, m, 7)
		bp := fftfp.BootPrecisionProxy(e, m, 7)
		proxy = append(proxy, bp)
		mark := ""
		if bp.Bits >= threshold {
			mark = "meets threshold"
		}
		if m == fftfp.FP55Mantissa {
			mark += "   <-- FP55 (paper's choice)"
		}
		fmt.Printf("%9d  %12.2f  %12.2f  %s\n", m, rt.Bits, bp.Bits, mark)
	}

	drop := fftfp.DropOffPoint(proxy, threshold)
	fmt.Printf("\ndrop-off point: %d mantissa bits", drop)
	fmt.Println(" (paper: 43 bits -> 23.39 boot-precision bits at N=2^16)")
	fmt.Println("precision climbs ~1 bit per mantissa bit and saturates at the float64 ceiling.")
}
