package abcfhe

// Hostile-header hardening for the public constructors: NewEncryptor and
// NewKeyOwnerFromSecretKey consume fully untrusted bytes, including the
// embedded ParamSpec — every field of which an attacker controls. The
// contract is errors only: no panics (the spec is range-validated and the
// prime generator's panics are converted at the Build boundary) and no
// allocations disproportionate to the supplied bytes (the blob length is
// checked against the spec-implied size before parameters are built).

import (
	"testing"
)

func fuzzKeyBlobs(t testing.TB) (pk, sk, evk []byte) {
	t.Helper()
	owner, err := NewKeyOwner(Test, 0xFA2, 0xB17)
	if err != nil {
		t.Fatal(err)
	}
	if pk, err = owner.ExportPublicKey(); err != nil {
		t.Fatal(err)
	}
	if sk, err = owner.ExportSecretKey(); err != nil {
		t.Fatal(err)
	}
	if evk, err = owner.ExportEvaluationKeys(EvalKeyConfig{MaxLevel: 2, Rotations: []int{1}}); err != nil {
		t.Fatal(err)
	}
	return pk, sk, evk
}

func tryKeyBlob(data []byte) {
	if enc, err := NewEncryptor(data, 1, 2); err == nil {
		// Accepted blobs must yield a working device.
		if _, err := enc.EncodeEncrypt([]complex128{0.5}); err != nil {
			panic("accepted public key cannot encrypt: " + err.Error())
		}
	}
	if owner, err := NewKeyOwnerFromSecretKey(data); err == nil {
		if _, err := owner.ExportPublicKey(); err != nil {
			panic("accepted secret key cannot re-export: " + err.Error())
		}
	}
	if srv, evk, err := NewServerFromEvaluationKeys(data); err == nil {
		// Accepted evaluation keys must describe themselves consistently.
		if evk.MaxLevel() < 1 || evk.MaxLevel() > srv.MaxLevel() {
			panic("accepted evaluation keys report an impossible depth")
		}
		_ = evk.RotationSteps()
	}
}

func FuzzNewEncryptor(f *testing.F) {
	pk, sk, evk := fuzzKeyBlobs(f)
	f.Add(pk)
	f.Add(sk)
	f.Add(evk)
	// One mutation per header byte so the corpus reaches every spec field
	// (19 covers the key header plus the evaluation sub-header).
	for _, blob := range [][]byte{pk, evk} {
		for i := 0; i < 19 && i < len(blob); i++ {
			d := append([]byte(nil), blob...)
			d[i] ^= 0xFF
			f.Add(d)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tryKeyBlob(data)
	})
}

// TestKeyBlobHeaderSweep is the deterministic slice of FuzzNewEncryptor
// that runs on every push: every header byte of all three blob kinds
// driven through adversarial values (zero, sign bits, all-ones, small
// deltas) — this is exactly the class of input that used to panic inside
// prime generation or demand GB-scale tables before the spec/length
// gates. For the evaluation blob the swept range also covers the geometry
// sub-header (digits, depth, flags, domain byte, rotation count/steps).
func TestKeyBlobHeaderSweep(t *testing.T) {
	pk, sk, evk := fuzzKeyBlobs(t)
	for _, blob := range [][]byte{pk, sk, evk} {
		headerBytes := 13
		if blob[5] == 'E' {
			headerBytes = 23 // key header + sub-header + first rotation step
		}
		for i := 0; i < headerBytes; i++ {
			orig := blob[i]
			// 0x2D/0x3D land limbBits in the forged (44, 61] window that
			// passes range validation but that no marshaler can emit.
			for _, v := range []byte{0x00, 0x01, 0x2D, 0x3D, 0x3F, 0x7F, 0x80, 0xFF, orig ^ 0x01, orig ^ 0xFF} {
				d := append([]byte(nil), blob...)
				d[i] = v
				tryKeyBlob(d)
			}
		}
		// Truncations around every boundary the parsers care about.
		for _, cut := range []int{0, 4, 12, 13, 28, 29, len(blob) / 2, len(blob) - 1} {
			if cut < len(blob) {
				tryKeyBlob(blob[:cut])
			}
		}
		tryKeyBlob(append(append([]byte(nil), blob...), 0))
	}
}
