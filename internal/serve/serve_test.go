package serve

// End-to-end tests of the HTTP service: every eval endpoint must return
// bytes identical to a direct in-process Server call on the same inputs
// and keys (FHE evaluation here is deterministic — any drift is silent
// corruption), the key cache must evict and transparently reload under
// a tight byte budget without changing results, and overload must
// surface as 429 + Retry-After rather than timeouts or panics.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	abcfhe "repro"
)

func mustMsgs(t *testing.T, slots, n int) [][]complex128 {
	t.Helper()
	msgs := make([][]complex128, n)
	for j := range msgs {
		m := make([]complex128, slots)
		for i := range m {
			m[i] = complex(float64((i+3*j)%17)/17-0.5, float64((i+5*j)%13)/13-0.5)
		}
		msgs[j] = m
	}
	return msgs
}

type testHarness struct {
	t      *testing.T
	ts     *httptest.Server
	client *http.Client
}

func (h *testHarness) register(evk []byte) sessionResponse {
	h.t.Helper()
	resp, err := h.client.Post(h.ts.URL+"/v1/sessions", "application/octet-stream", bytes.NewReader(evk))
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		h.t.Fatalf("register: HTTP %d: %s", resp.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		h.t.Fatal(err)
	}
	return sr
}

// eval posts one framed request and returns status, response parts (on
// 200), and headers.
func (h *testHarness) eval(sess, op, query string, parts ...[]byte) (int, [][]byte, http.Header) {
	h.t.Helper()
	url := h.ts.URL + "/v1/eval/" + op + "?session=" + sess + query
	resp, err := h.client.Post(url, ContentTypeFrames, bytes.NewReader(EncodeFrames(parts...)))
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil, resp.Header
	}
	got, err := ReadFrames(resp.Body, 4, 64<<20)
	if err != nil {
		h.t.Fatalf("eval %s: bad response framing: %v", op, err)
	}
	return resp.StatusCode, got, resp.Header
}

func (h *testHarness) metrics() map[string]float64 {
	h.t.Helper()
	resp, err := h.client.Get(h.ts.URL + "/metrics")
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	vals := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.Contains(fields[0], "{") {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err == nil {
			vals[fields[0]] = v
		}
	}
	return vals
}

func newTestHarness(t *testing.T, cfg Config) *testHarness {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return &testHarness{t: t, ts: ts, client: ts.Client()}
}

// TestServeEndToEndByteIdentity drives every eval endpoint through HTTP
// and asserts byte-identical output against direct Server calls.
func TestServeEndToEndByteIdentity(t *testing.T) {
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 11, 22)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	pk, err := owner.ExportPublicKey()
	if err != nil {
		t.Fatal(err)
	}
	steps := append(abcfhe.InnerSumRotations(4), 3)
	steps = append(steps, abcfhe.HomomorphicDFTRotations(owner.Slots(), 1)...)
	evk, err := owner.ExportEvaluationKeys(abcfhe.EvalKeyConfig{Rotations: steps, Conjugate: true})
	if err != nil {
		t.Fatal(err)
	}

	direct, dkeys, err := abcfhe.NewServerFromEvaluationKeys(evk)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()

	h := newTestHarness(t, Config{CacheBytes: 4 * int64(len(evk)), MaxInflight: 16, Workers: 2})
	sr := h.register(evk)
	if sr.Slots != owner.Slots() || !sr.Conjugate {
		t.Fatalf("session response %+v does not reflect the blob", sr)
	}

	enc, err := abcfhe.NewEncryptor(pk, 33, 44)
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()
	msgs := mustMsgs(t, enc.Slots(), 2)
	cts, err := enc.EncodeEncryptBatch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := cts[0], cts[1]
	aw, err := enc.SerializeCiphertext(a)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := enc.SerializeCiphertext(b)
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := owner.EncodeEncryptCompressed(msgs[0])
	if err != nil {
		t.Fatal(err)
	}

	ser := func(ct *abcfhe.Ciphertext, err error) []byte {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		data, err := direct.SerializeCiphertext(ct)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	weightsText := []byte("0.25\n0.5 -0.125\n-1 0.75\n")
	weights := []complex128{0.25, complex(0.5, -0.125), complex(-1, 0.75)}

	// Direct references for the single-output ops.
	want := map[string][][]byte{
		"mul":       {ser(direct.Mul(a, b, dkeys))},
		"rotate":    {ser(direct.Rotate(a, 3, dkeys))},
		"conjugate": {ser(direct.Conjugate(b, dkeys))},
		"innersum":  {ser(direct.InnerSum(a, 4, dkeys))},
		"dot":       {ser(direct.DotPlain(a, weights, dkeys))},
		"expand":    {ser(direct.ExpandCompressedUpload(seeded))},
	}
	dft, err := direct.NewHomomorphicDFT(abcfhe.HomomorphicDFTConfig{StartLevel: a.Level, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	reRef, imRef, err := direct.CoeffsToSlots(a, dft, dkeys)
	if err != nil {
		t.Fatal(err)
	}
	reW, imW := ser(reRef, nil), ser(imRef, nil)
	want["c2s"] = [][]byte{reW, imW}
	want["s2c"] = [][]byte{ser(direct.SlotsToCoeffs(reRef, imRef, dft, dkeys))}
	// Degree 1 is the ladder the Test preset's 4 limbs admit.
	polyText := []byte("0.5\n0.25 -0.125\n")
	pe, err := direct.NewPolyEval([]complex128{0.5, complex(0.25, -0.125)}, -1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want["evalpoly"] = [][]byte{ser(direct.EvalPoly(a, pe, dkeys))}
	em, err := direct.NewEvalMod(abcfhe.EvalModConfig{Degree: 1, Range: 8})
	if err != nil {
		t.Fatal(err)
	}
	want["evalmod"] = [][]byte{ser(direct.EvalMod(b, em, dkeys))}

	requests := map[string]struct {
		query string
		parts [][]byte
	}{
		"mul":       {"", [][]byte{aw, bw}},
		"rotate":    {"&by=3", [][]byte{aw}},
		"conjugate": {"", [][]byte{bw}},
		"innersum":  {"&span=4", [][]byte{aw}},
		"dot":       {"", [][]byte{aw, weightsText}},
		"expand":    {"", [][]byte{seeded}},
		"c2s":       {"&levels=1", [][]byte{aw}},
		"s2c":       {"&levels=1", [][]byte{reW, imW}},
		"evalpoly":  {"&lo=-1&hi=1", [][]byte{aw, polyText}},
		"evalmod":   {"&degree=1&range=8", [][]byte{bw}},
	}
	for op, req := range requests {
		status, got, _ := h.eval(sr.Session, op, req.query, req.parts...)
		if status != http.StatusOK {
			t.Fatalf("%s: HTTP %d", op, status)
		}
		if len(got) != len(want[op]) {
			t.Fatalf("%s: %d response parts, want %d", op, len(got), len(want[op]))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[op][i]) {
				t.Errorf("%s: response part %d differs from direct Server call", op, i)
			}
		}
	}

	m := h.metrics()
	if m["abcfhe_serve_cache_hits_total"] == 0 {
		t.Error("metrics: no cache hits recorded after successful evals")
	}
	if m["abcfhe_serve_sessions"] != 1 {
		t.Errorf("metrics: sessions gauge = %v, want 1", m["abcfhe_serve_sessions"])
	}
}

// TestServeEvictionReloadIdentity registers three sessions with three
// distinct key blobs under a budget that holds only two, then round-
// robins key-gated ops across them: the cache must evict and reload
// (visible in /metrics) while every response stays byte-identical to a
// direct call — including the post-reload rounds.
func TestServeEvictionReloadIdentity(t *testing.T) {
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	pk, err := owner.ExportPublicKey()
	if err != nil {
		t.Fatal(err)
	}

	rotSteps := []int{1, 2, 4}
	blobs := make([][]byte, len(rotSteps))
	for i, step := range rotSteps {
		if blobs[i], err = owner.ExportEvaluationKeys(abcfhe.EvalKeyConfig{Rotations: []int{step}}); err != nil {
			t.Fatal(err)
		}
	}

	direct, keys0, err := abcfhe.NewServerFromEvaluationKeys(blobs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	refKeys := []*abcfhe.EvaluationKeys{keys0}
	for _, blob := range blobs[1:] {
		k, err := direct.ImportEvaluationKeys(blob)
		if err != nil {
			t.Fatal(err)
		}
		refKeys = append(refKeys, k)
	}

	// Budget: exactly two blobs. Workers=1 keeps at most one batch (one
	// pin) in flight, so rotation across three sessions always evicts
	// rather than hitting pressure.
	h := newTestHarness(t, Config{CacheBytes: 2 * int64(len(blobs[0])), MaxInflight: 8, Workers: 1})
	sessions := make([]sessionResponse, len(blobs))
	for i, blob := range blobs {
		sessions[i] = h.register(blob)
	}

	enc, err := abcfhe.NewEncryptor(pk, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()
	ct, err := enc.EncodeEncrypt(mustMsgs(t, enc.Slots(), 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	ctw, err := enc.SerializeCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}

	want := make([][]byte, len(rotSteps))
	for i, step := range rotSteps {
		out, err := direct.Rotate(ct, step, refKeys[i])
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = direct.SerializeCiphertext(out); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 3
	for r := 0; r < rounds; r++ {
		for i, sess := range sessions {
			status, got, _ := h.eval(sess.Session, "rotate", fmt.Sprintf("&by=%d", rotSteps[i]), ctw)
			if status != http.StatusOK {
				t.Fatalf("round %d session %d: HTTP %d", r, i, status)
			}
			if !bytes.Equal(got[0], want[i]) {
				t.Fatalf("round %d session %d: bytes differ from direct call (post-reload corruption?)", r, i)
			}
		}
	}

	m := h.metrics()
	if m["abcfhe_serve_cache_evictions_total"] == 0 {
		t.Error("no evictions under a 2-of-3 budget")
	}
	if m["abcfhe_serve_cache_reloads_total"] == 0 {
		t.Error("no reloads recorded")
	}
	if m["abcfhe_serve_cache_resident_bytes"] > m["abcfhe_serve_cache_budget_bytes"] {
		t.Errorf("resident bytes %v exceed budget %v", m["abcfhe_serve_cache_resident_bytes"], m["abcfhe_serve_cache_budget_bytes"])
	}
	if m["abcfhe_serve_cache_pressure_rejects_total"] != 0 {
		t.Errorf("unexpected pressure rejects: %v", m["abcfhe_serve_cache_pressure_rejects_total"])
	}
}

// TestDispatcherBackpressureAndCoalescing is the deterministic
// admission-control test: with the single worker blocked inside a
// request, further enqueues fill the in-flight budget exactly, the
// next one gets ErrOverloaded, and the queued requests coalesce into
// one batch.
func TestDispatcherBackpressureAndCoalescing(t *testing.T) {
	m := newMetrics()
	d := newDispatcher(NewKeyCache(1, nil), m, time.Now, 3, 1)
	defer d.close()
	s := &session{id: "s", hash: "h"}

	block := make(chan struct{})
	started := make(chan struct{})
	mk := func(st chan struct{}) *request {
		return &request{
			op: "test", ctx: context.Background(), done: make(chan result, 1), enqueued: time.Now(),
			run: func(*abcfhe.EvaluationKeys) ([][]byte, error) {
				if st != nil {
					close(st)
				}
				<-block
				return [][]byte{[]byte("ok")}, nil
			},
		}
	}

	r1 := mk(started)
	if err := d.enqueue(s, r1); err != nil {
		t.Fatal(err)
	}
	<-started // the worker is now inside r1
	r2, r3 := mk(nil), mk(nil)
	if err := d.enqueue(s, r2); err != nil {
		t.Fatal(err)
	}
	if err := d.enqueue(s, r3); err != nil {
		t.Fatal(err)
	}
	if err := d.enqueue(s, mk(nil)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("4th enqueue: err = %v, want ErrOverloaded", err)
	}

	close(block)
	for i, r := range []*request{r1, r2, r3} {
		res := <-r.done
		if res.err != nil {
			t.Fatalf("request %d: %v", i+1, res.err)
		}
	}
	m.mu.Lock()
	batches, batched, throttled := m.batches, m.batchedRequests, m.throttled
	m.mu.Unlock()
	if batches != 2 || batched != 3 {
		t.Errorf("batches=%d batchedRequests=%d, want 2 and 3 (r2+r3 coalesced)", batches, batched)
	}
	if throttled != 1 {
		t.Errorf("throttled=%d, want 1", throttled)
	}
	if got := d.inflight.Load(); got != 0 {
		t.Errorf("inflight=%d after drain, want 0", got)
	}
}

// TestServeBackpressureHTTP observes the 429 path end to end: with
// max-inflight 1 and one worker, a request sent while a slow op is
// executing must be rejected with 429 + Retry-After.
func TestServeBackpressureHTTP(t *testing.T) {
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	pk, err := owner.ExportPublicKey()
	if err != nil {
		t.Fatal(err)
	}
	steps := abcfhe.HomomorphicDFTRotations(owner.Slots(), 1)
	evk, err := owner.ExportEvaluationKeys(abcfhe.EvalKeyConfig{Rotations: steps, Conjugate: true})
	if err != nil {
		t.Fatal(err)
	}
	h := newTestHarness(t, Config{CacheBytes: 2 * int64(len(evk)), MaxInflight: 1, Workers: 1})
	sr := h.register(evk)

	enc, err := abcfhe.NewEncryptor(pk, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()
	ct, err := enc.EncodeEncrypt(mustMsgs(t, enc.Slots(), 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	ctw, err := enc.SerializeCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}

	saw429 := false
	for round := 0; round < 20 && !saw429; round++ {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // a slow op to occupy the only in-flight slot
			defer wg.Done()
			h.eval(sr.Session, "c2s", "&levels=1", ctw)
		}()
		for i := 0; i < 5 && !saw429; i++ {
			status, _, hdr := h.eval(sr.Session, "rotate", "&by=1", ctw)
			switch status {
			case http.StatusTooManyRequests:
				saw429 = true
				if hdr.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			case http.StatusOK, http.StatusUnprocessableEntity:
				// ok: the slow op finished first (rotate-by-1 needs a key
				// this blob lacks only if DFT steps exclude 1 — accept 422)
			default:
				t.Fatalf("unexpected status %d while probing backpressure", status)
			}
		}
		wg.Wait()
	}
	if !saw429 {
		t.Fatal("never observed a 429 with max-inflight=1 under concurrent load")
	}
	m := h.metrics()
	if m["abcfhe_serve_throttled_total"] == 0 {
		t.Error("throttled_total still zero after an observed 429")
	}
}

// TestServeRegisterRejectsAndLifecycle covers the registration gate
// (malformed, truncated, trailing bytes, admission) and the session
// lifecycle (info, unregister, drain).
func TestServeRegisterRejectsAndLifecycle(t *testing.T) {
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 13, 14)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	evk, err := owner.ExportEvaluationKeys(abcfhe.EvalKeyConfig{Rotations: []int{1}})
	if err != nil {
		t.Fatal(err)
	}

	h := newTestHarness(t, Config{CacheBytes: 2 * int64(len(evk)), MaxInflight: 4, Workers: 1})
	post := func(body []byte) int {
		resp, err := h.client.Post(h.ts.URL+"/v1/sessions", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := post([]byte("not a key blob")); got != http.StatusBadRequest {
		t.Errorf("garbage blob: HTTP %d, want 400", got)
	}
	if got := post(evk[:len(evk)-7]); got != http.StatusBadRequest {
		t.Errorf("truncated blob: HTTP %d, want 400", got)
	}
	if got := post(append(append([]byte{}, evk...), 0x00)); got != http.StatusBadRequest {
		t.Errorf("trailing byte: HTTP %d, want 400", got)
	}

	// Admission: a service whose whole budget is smaller than the blob
	// must reject from the header with 413.
	tiny := newTestHarness(t, Config{CacheBytes: 64, MaxInflight: 4, Workers: 1})
	resp, err := tiny.client.Post(tiny.ts.URL+"/v1/sessions", "application/octet-stream", bytes.NewReader(evk))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized blob: HTTP %d, want 413", resp.StatusCode)
	}
	if tm := tiny.metrics(); tm["abcfhe_serve_cache_admission_rejects_total"] == 0 {
		t.Error("admission reject not counted")
	}

	// Lifecycle: register, info, eval on bad session/op, unregister.
	sr := h.register(evk)
	infoResp, err := h.client.Get(h.ts.URL + "/v1/sessions/" + sr.Session)
	if err != nil {
		t.Fatal(err)
	}
	infoBody, _ := io.ReadAll(infoResp.Body)
	infoResp.Body.Close()
	if infoResp.StatusCode != http.StatusOK || !strings.Contains(string(infoBody), sr.Session) {
		t.Errorf("session info: HTTP %d body %s", infoResp.StatusCode, infoBody)
	}

	if status, _, _ := h.eval("nope", "rotate", "&by=1", []byte("x")); status != http.StatusNotFound {
		t.Errorf("unknown session: HTTP %d, want 404", status)
	}
	if status, _, _ := h.eval(sr.Session, "frobnicate", "", []byte("x")); status != http.StatusBadRequest {
		t.Errorf("unknown op: HTTP %d, want 400", status)
	}
	if status, _, _ := h.eval(sr.Session, "mul", "", []byte("just one part")); status != http.StatusBadRequest {
		t.Errorf("mul with one part: HTTP %d, want 400", status)
	}

	del := func(id string) int {
		req, _ := http.NewRequest(http.MethodDelete, h.ts.URL+"/v1/sessions/"+id, nil)
		resp, err := h.client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := del(sr.Session); got != http.StatusNoContent {
		t.Errorf("unregister: HTTP %d, want 204", got)
	}
	if got := del(sr.Session); got != http.StatusNotFound {
		t.Errorf("double unregister: HTTP %d, want 404", got)
	}
	if status, _, _ := h.eval(sr.Session, "rotate", "&by=1", []byte("x")); status != http.StatusNotFound {
		t.Errorf("eval after unregister: HTTP %d, want 404", status)
	}
}

// TestServeDrain: after Drain, new sessions get 503 but the already
// registered session keeps evaluating — the cmd layer relies on this to
// let http.Server.Shutdown complete queued work.
func TestServeDrain(t *testing.T) {
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 15, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	pk, err := owner.ExportPublicKey()
	if err != nil {
		t.Fatal(err)
	}
	evk, err := owner.ExportEvaluationKeys(abcfhe.EvalKeyConfig{Rotations: []int{1}})
	if err != nil {
		t.Fatal(err)
	}

	svc, err := New(Config{CacheBytes: 2 * int64(len(evk)), MaxInflight: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Close()
	h := &testHarness{t: t, ts: ts, client: ts.Client()}

	sr := h.register(evk)
	svc.Drain()

	resp, err := h.client.Post(ts.URL+"/v1/sessions", "application/octet-stream", bytes.NewReader(evk))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("register while draining: HTTP %d, want 503", resp.StatusCode)
	}

	enc, err := abcfhe.NewEncryptor(pk, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()
	ct, err := enc.EncodeEncrypt(mustMsgs(t, enc.Slots(), 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	ctw, err := enc.SerializeCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}
	if status, _, _ := h.eval(sr.Session, "rotate", "&by=1", ctw); status != http.StatusOK {
		t.Errorf("eval while draining: HTTP %d, want 200 (queued work must finish)", status)
	}
}
