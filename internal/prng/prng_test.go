package prng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	seed := SeedFromUint64s(0xDEADBEEF, 0xCAFEBABE)
	a := NewSource(seed, 7)
	b := NewSource(seed, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, stream) must yield identical output")
		}
	}
}

func TestStreamSeparation(t *testing.T) {
	seed := SeedFromUint64s(1, 2)
	a := NewSource(seed, 0)
	b := NewSource(seed, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 collide on %d/1000 draws", same)
	}
}

func TestSeedSeparation(t *testing.T) {
	a := NewSource(SeedFromUint64s(1, 0), 0)
	b := NewSource(SeedFromUint64s(2, 0), 0)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide on %d/1000 draws", same)
	}
}

func TestUniformityChiSquared(t *testing.T) {
	// 256-bucket chi-squared on byte extraction from Uint64.
	s := NewSource(SeedFromUint64s(42, 43), 0)
	var hist [256]int
	const n = 1 << 16
	for i := 0; i < n/8; i++ {
		v := s.Uint64()
		for j := 0; j < 8; j++ {
			hist[byte(v>>(8*j))]++
		}
	}
	expected := float64(n) / 256
	chi2 := 0.0
	for _, h := range hist {
		d := float64(h) - expected
		chi2 += d * d / expected
	}
	// 255 dof: mean 255, sd ≈ 22.6. Accept within ±6 sd.
	if chi2 > 255+6*22.6 || chi2 < 255-6*22.6 {
		t.Fatalf("chi-squared = %.1f outside plausible range", chi2)
	}
}

func TestUniformModQ(t *testing.T) {
	s := NewSource(SeedFromUint64s(5, 6), 0)
	for _, q := range []uint64{1, 2, 3, 97, 65537, 68718428161} {
		for i := 0; i < 2000; i++ {
			v := s.UniformModQ(q)
			if v >= q {
				t.Fatalf("UniformModQ(%d) = %d out of range", q, v)
			}
		}
	}
	// Distribution check on a small modulus.
	var hist [7]int
	for i := 0; i < 70000; i++ {
		hist[s.UniformModQ(7)]++
	}
	for r, h := range hist {
		if h < 9000 || h > 11000 {
			t.Fatalf("residue %d count %d far from uniform", r, h)
		}
	}
}

func TestTernaryDistribution(t *testing.T) {
	s := NewSource(SeedFromUint64s(9, 10), 3)
	counts := map[int64]int{}
	const n = 90000
	for i := 0; i < n; i++ {
		v := s.TernarySample()
		if v < -1 || v > 1 {
			t.Fatalf("ternary sample %d out of range", v)
		}
		counts[v]++
	}
	for _, v := range []int64{-1, 0, 1} {
		if counts[v] < n/3-1500 || counts[v] > n/3+1500 {
			t.Fatalf("ternary value %d count %d far from n/3", v, counts[v])
		}
	}
}

func TestTernaryPolyHW(t *testing.T) {
	s := NewSource(SeedFromUint64s(11, 12), 0)
	q := uint64(97)
	out := make([]uint64, 1024)
	s.TernaryPolyHW(out, 64, q)
	nonzero := 0
	for _, v := range out {
		switch v {
		case 0:
		case 1, q - 1:
			nonzero++
		default:
			t.Fatalf("non-ternary coefficient %d", v)
		}
	}
	if nonzero != 64 {
		t.Fatalf("Hamming weight %d, want 64", nonzero)
	}
}

func TestGaussianMoments(t *testing.T) {
	s := NewSource(SeedFromUint64s(13, 14), 0)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := float64(s.GaussianSample())
		if math.Abs(v) > GaussianTailCut {
			t.Fatalf("sample %v beyond tail cut", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("Gaussian mean %.4f not ≈ 0", mean)
	}
	sigma := math.Sqrt(variance)
	if sigma < GaussianSigma-0.1 || sigma > GaussianSigma+0.1 {
		t.Fatalf("Gaussian σ %.3f not ≈ %.1f", sigma, GaussianSigma)
	}
}

func TestGaussianPolyRange(t *testing.T) {
	s := NewSource(SeedFromUint64s(15, 16), 0)
	q := uint64(68718428161)
	out := make([]uint64, 4096)
	s.GaussianPoly(out, q)
	for _, v := range out {
		centered := int64(v)
		if v > q/2 {
			centered = int64(v) - int64(q)
		}
		if centered > GaussianTailCut || centered < -GaussianTailCut {
			t.Fatalf("coefficient %d outside tail cut", centered)
		}
	}
}

// The keystream must match on word boundaries regardless of read widths
// (Uint32 vs Uint64 interleaving must never return overlapping bytes).
func TestNoKeystreamReuse(t *testing.T) {
	seed := SeedFromUint64s(21, 22)
	a := NewSource(seed, 0)
	seen := map[uint32]int{}
	for i := 0; i < 4096; i++ {
		seen[a.Uint32()]++
	}
	dups := 0
	for _, c := range seen {
		if c > 1 {
			dups += c - 1
		}
	}
	if dups > 2 { // birthday-bound tolerance for 4096 draws from 2^32
		t.Fatalf("excessive duplicate 32-bit words: %d", dups)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := NewSource(SeedFromUint64s(1, 2), 0)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkUniformModQ36(b *testing.B) {
	s := NewSource(SeedFromUint64s(1, 2), 0)
	for i := 0; i < b.N; i++ {
		s.UniformModQ(68718428161)
	}
}

func BenchmarkGaussianSample(b *testing.B) {
	s := NewSource(SeedFromUint64s(1, 2), 0)
	for i := 0; i < b.N; i++ {
		s.GaussianSample()
	}
}
