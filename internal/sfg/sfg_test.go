package sfg

import "testing"

// Fig. 4a's 8-point example: 13 SFG multiplications with separate
// pre-processing, 12 with the merged radix-2^n schedule.
func TestFig4aEightPointExample(t *testing.T) {
	if got := SpatialMultCount(8, false); got != 13 {
		t.Fatalf("separate pre-processing count = %d, paper shows 13", got)
	}
	if got := SpatialMultCount(8, true); got != 12 {
		t.Fatalf("merged count = %d, paper shows 12 = (N/2)·logN", got)
	}
}

func TestSpatialCountsGeneral(t *testing.T) {
	// Merged is always (N/2)·logN; separate is always exactly one more
	// ((N/2)·logN + 1: N pre-mults buy back the N-1 trivial stage slots).
	for _, n := range []int{8, 16, 64, 1024} {
		logN := 0
		for 1<<uint(logN) < n {
			logN++
		}
		m := SpatialMultCount(n, true)
		s := SpatialMultCount(n, false)
		if m != n/2*logN {
			t.Fatalf("n=%d merged %d != (N/2)logN", n, m)
		}
		if s != m+1 {
			t.Fatalf("n=%d: separate %d, merged %d — expected +1 relation", n, s, m)
		}
	}
}

func TestStageTwiddles(t *testing.T) {
	// N=8 DIF: stage 0 → {0,1,2,3}, stage 1 → {0,2,0,2}, stage 2 → {0,0,0,0}.
	want := [][]int{{0, 1, 2, 3}, {0, 2, 0, 2}, {0, 0, 0, 0}}
	for s, w := range want {
		got := StageTwiddles(8, s)
		if len(got) != len(w) {
			t.Fatalf("stage %d: %v", s, got)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("stage %d: got %v want %v", s, got, w)
			}
		}
	}
}

func TestMergedIsMinimumNTT(t *testing.T) {
	s := Summarize(NTT, 16, 8)
	merged := Design{Kind: NTT, LogN: 16, P: 8, Merged: true}
	if s.MergedMuls != merged.MultiplierCount() {
		t.Fatal("summary merged point inconsistent")
	}
	// The paper's theoretical minimum: P/2 · log2 N = 64.
	if s.MergedMuls != 64 {
		t.Fatalf("merged muls = %v, want 64", s.MergedMuls)
	}
	if s.MinMuls != s.MergedMuls {
		t.Fatalf("merged radix-2^n is not the DSE minimum: min=%v merged=%v",
			s.MinMuls, s.MergedMuls)
	}
	for _, p := range s.Points {
		if !p.Design.Merged && p.Muls < s.MergedMuls {
			t.Fatalf("non-merged design %s beats merged: %v", p.Design.Name(), p.Muls)
		}
	}
}

func TestNTTReductionsInPaperBand(t *testing.T) {
	// Paper: 29.7% vs radix-2, 22.3% vs radix-2^2. Our documented counting
	// reproduces the ordering and double-digit magnitudes; assert the band
	// (see EXPERIMENTS.md for the exact ours-vs-paper values).
	s := Summarize(NTT, 16, 8)
	if s.ReductionVsR2 < 0.15 || s.ReductionVsR2 > 0.40 {
		t.Fatalf("reduction vs radix-2 = %.3f outside plausible band", s.ReductionVsR2)
	}
	if s.ReductionVsR2x2 < 0.10 || s.ReductionVsR2x2 > 0.35 {
		t.Fatalf("reduction vs radix-2^2 = %.3f outside plausible band", s.ReductionVsR2x2)
	}
	if s.ReductionVsR2 <= s.ReductionVsR2x2 {
		t.Fatal("radix-2 must be worse than radix-2^2 (paper ordering)")
	}
}

func TestRadix22SavesNothingForNTTStages(t *testing.T) {
	// §IV-A: "in the NTT, all multipliers are unified as modular
	// multipliers, unlike the FFT approach" — grouping alone must not
	// reduce NTT stage multipliers (only pre/post folding differs).
	r2 := Design{Kind: NTT, LogN: 16, P: 8, Groups: UniformGroups(16, 1)}
	r4 := Design{Kind: NTT, LogN: 16, P: 8, Groups: UniformGroups(16, 2)}
	// Difference must be exactly the N^{-1} bank folding (P = 8).
	if r2.MultiplierCount()-r4.MultiplierCount() != 8 {
		t.Fatalf("radix-2 vs radix-2^2 NTT: %v vs %v — expected only the scale-bank difference",
			r2.MultiplierCount(), r4.MultiplierCount())
	}
}

func TestFFTPrefersLargerRadix(t *testing.T) {
	// For FFT, trivial rotations are free, so radix-2^2 must beat radix-2
	// by roughly half the stage multipliers (the classic result), and
	// radix-2^3 must beat radix-2^2.
	r2 := Design{Kind: FFT, LogN: 16, P: 8, Groups: UniformGroups(16, 1)}.MultiplierCount()
	r4 := Design{Kind: FFT, LogN: 16, P: 8, Groups: UniformGroups(16, 2)}.MultiplierCount()
	r8 := Design{Kind: FFT, LogN: 16, P: 8, Groups: UniformGroups(16, 3)}.MultiplierCount()
	if !(r8 < r4 && r4 < r2) {
		t.Fatalf("FFT radix ordering violated: r2=%v r2^2=%v r2^3=%v", r2, r4, r8)
	}
	if r4 > 0.6*r2 {
		t.Fatalf("radix-2^2 FFT should save ≈ half the generic multipliers: %v vs %v", r4, r2)
	}
}

func TestHistogramShape(t *testing.T) {
	pts := Explore(NTT, 16, 8, 4)
	h := Histogram(pts, 10)
	if len(h) != 10 {
		t.Fatal("bin count")
	}
	total := 0.0
	for _, b := range h {
		total += b.Percent
	}
	if total < 99.9 || total > 100.1 {
		t.Fatalf("histogram percentages sum to %v", total)
	}
}

func TestCompositionsCount(t *testing.T) {
	// Compositions of 4 into parts ≤ 4: 8 ([1111],[112],[121],[211],[22],[13],[31],[4]).
	if got := len(compositions(4, 4)); got != 8 {
		t.Fatalf("compositions(4,4) = %d, want 8", got)
	}
	// Tetranacci growth: compositions of 16 into parts ≤ 4 = 20569.
	if got := len(compositions(16, 4)); got != 20569 {
		t.Fatalf("compositions(16,4) = %d, want 20569", got)
	}
}

func TestUniformGroups(t *testing.T) {
	gs := UniformGroups(16, 3)
	sum := 0
	for _, g := range gs {
		sum += g
	}
	if sum != 16 || gs[len(gs)-1] != 1 {
		t.Fatalf("UniformGroups(16,3) = %v", gs)
	}
}

func BenchmarkExploreNTT16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Explore(NTT, 16, 8, 4)
	}
}
