package ckks

import (
	"math"
	"math/cmplx"
)

// Precision measurement utilities: quantify the bits a message retains
// through client pipelines — the library-level counterpart of the paper's
// Fig. 3c methodology, usable on live keys and ciphertexts.

// PrecisionStats summarizes slot-wise error between a reference message
// and a processed one.
type PrecisionStats struct {
	MeanErr   float64
	MaxErr    float64
	MeanBits  float64 // -log2(MeanErr)
	WorstBits float64 // -log2(MaxErr)
	Slots     int
}

// precisionCeiling caps reported bits when the error underflows
// (bit-identical results).
const precisionCeiling = 60.0

// MeasurePrecision compares two slot vectors.
func MeasurePrecision(want, got []complex128) PrecisionStats {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	var sum, maxv float64
	for i := 0; i < n; i++ {
		e := cmplx.Abs(got[i] - want[i])
		sum += e
		if e > maxv {
			maxv = e
		}
	}
	s := PrecisionStats{MeanErr: sum / float64(n), MaxErr: maxv, Slots: n}
	s.MeanBits = clampBits(-math.Log2(s.MeanErr))
	s.WorstBits = clampBits(-math.Log2(s.MaxErr))
	return s
}

func clampBits(b float64) float64 {
	if math.IsInf(b, 1) || b > precisionCeiling {
		return precisionCeiling
	}
	return b
}

// NoiseBudget estimates the remaining noise budget of a ciphertext in
// bits: log2(q_ℓ-chain headroom / expected noise). It is an analytic
// estimate from the parameter set and the operation count, not a
// measurement — useful for deciding when a ciphertext can still be
// rescaled or must return to the client.
type NoiseBudget struct {
	Level        int
	LogQ         float64 // bits of remaining modulus
	LogScale     float64
	LogNoise     float64 // estimated noise magnitude in bits
	HeadroomBits float64 // LogQ - 1 - LogScale - LogNoise
}

// EstimateNoiseBudget computes the budget for a fresh ciphertext at the
// given level after `mults` plaintext multiplications (each multiplying
// noise by roughly Δ) and `adds` additions.
func (p *Parameters) EstimateNoiseBudget(level, mults, adds int) NoiseBudget {
	nb := NoiseBudget{Level: level, LogScale: float64(p.LogScale)}
	for i := 0; i < level; i++ {
		nb.LogQ += math.Log2(float64(p.Ring().Basis.Moduli[i].Q))
	}
	// Fresh noise: ‖e·u + e0 + e1·s‖ ≈ σ·sqrt(2N/3·σ + HW) — log-domain
	// approximation with the standard σ = 3.2.
	n := float64(p.N())
	fresh := 3.2 * (math.Sqrt(2*n/3)*3.2 + math.Sqrt(float64(max(p.HW, 1))))
	noise := fresh * math.Pow(2, float64(p.LogScale*mults)) // pt-mult growth
	noise *= math.Sqrt(float64(adds + 1))
	nb.LogNoise = math.Log2(noise)
	nb.HeadroomBits = nb.LogQ - 1 - nb.LogScale*float64(mults+1) - math.Log2(fresh*math.Sqrt(float64(adds+1)))
	return nb
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Decryptable reports whether the estimated message+noise still fits the
// level's modulus (the go/no-go a scheduler needs before DropLevel).
func (nb NoiseBudget) Decryptable() bool { return nb.HeadroomBits > 0 }
