package abcfhe

import (
	"fmt"
	"math"

	"repro/internal/ckks"
	"repro/internal/fftfp"
)

// Homomorphic polynomial evaluation (the BSGS Chebyshev schedule of
// internal/ckks/evalpoly.go) and EvalMod — the sine-approximation modular
// reduction a bootstrap applies after CoeffsToSlots. Both follow the
// LinearTransform pattern: an immutable precompiled object built once
// (Server.NewPolyEval / Server.NewEvalMod, all misuse reported as typed
// errors) and a key-gated apply (Server.EvalPoly / Server.EvalMod).

// Coefficient and interval bounds for NewPolyEval. The exact-scale
// constant encoder handles any float64, but wildly scaled inputs turn
// into precision-free evaluations long before they overflow — so the
// public surface rejects them up front.
const (
	maxPolyDegree    = 1024
	maxPolyInterval  = 1 << 20 // |lo|, |hi| bound
	minPolyIntervalW = 1.0 / (1 << 16)
	maxPolyChebCoeff = 1 << 40 // after the interval remap
	maxEvalModDegree = 63
)

// PolyEval is a polynomial compiled for homomorphic evaluation: the
// monomial coefficients converted to the Chebyshev basis of [lo, hi] and
// scheduled as a baby-step/giant-step product tree (≈√degree relinearized
// ct×ct products, log-depth). Build with Server.NewPolyEval; immutable
// and safe to share across goroutines and calls.
type PolyEval struct {
	plan *ckks.EvalPolyPlan
}

// Degree is the (trailing-zero-trimmed) polynomial degree.
func (pe *PolyEval) Degree() int { return pe.plan.Degree() }

// Level is the input level the evaluation consumes ciphertexts at.
func (pe *PolyEval) Level() int { return pe.plan.Level() }

// Depth is the number of limbs the evaluation spends: the output lands at
// Level() − Depth(), at ≈ the preset's working scale.
func (pe *PolyEval) Depth() int { return pe.plan.Depth() }

// KeyLevel is the highest level a relinearized product runs at — the
// evaluation-key set's MaxLevel must cover it (EvalKeyConfig.MaxLevel).
func (pe *PolyEval) KeyLevel() int { return pe.plan.KeyLevel() }

// Interval is the approximation interval the polynomial was compiled for.
// Slot values must stay inside it for the advertised precision (the
// Chebyshev basis grows exponentially outside).
func (pe *PolyEval) Interval() (lo, hi float64) { return pe.plan.Interval() }

// NewPolyEval compiles Σ coeffs[i]·xⁱ over the interval [lo, hi] for
// homomorphic evaluation, consuming its input at `level` (0 = the minimum
// feasible level). The schedule prefers the ≈√degree baby block and
// narrows it — trading extra ct×ct products for depth — when the level is
// too shallow for the preferred one. Requirements, all typed errors:
// degree in [1, 1024] after trimming trailing zeros, every coefficient
// finite, a finite interval with lo < hi (width ≥ 2⁻¹⁶, bounds ≤ 2²⁰),
// Chebyshev-basis coefficients ≤ 2⁴⁰ after the remap, and level within
// [floor, MaxLevel].
func (s *Server) NewPolyEval(coeffs []complex128, lo, hi float64, level int) (*PolyEval, error) {
	d := len(coeffs) - 1
	for d > 0 && coeffs[d] == 0 {
		d--
	}
	if d < 1 {
		return nil, fmt.Errorf("%w: polynomial degree must be ≥ 1 after trimming trailing zeros", ErrInvalidSpan)
	}
	if d > maxPolyDegree {
		return nil, fmt.Errorf("%w: degree %d exceeds the cap %d", ErrInvalidSpan, d, maxPolyDegree)
	}
	if err := validateMessage(s.params, coeffs[:d+1]); err != nil {
		return nil, err
	}
	if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) || !(hi > lo) {
		return nil, fmt.Errorf("%w: interval [%g, %g] must be finite with lo < hi", ErrInvalidSpan, lo, hi)
	}
	if hi-lo < minPolyIntervalW || math.Max(math.Abs(lo), math.Abs(hi)) > maxPolyInterval {
		return nil, fmt.Errorf("%w: interval [%g, %g] outside the supported range (width ≥ 2^-16, bounds ≤ 2^20)",
			ErrInvalidSpan, lo, hi)
	}
	r := s.params.RescalesPerLevel()
	floor := ckks.EvalPolyLevelFloor(d, r)
	if floor > s.params.MaxLevel() {
		return nil, fmt.Errorf("%w: degree %d needs level ≥ %d, parameter depth is %d",
			ErrLevelOutOfRange, d, floor, s.params.MaxLevel())
	}
	if level != 0 && (level < floor || level > s.params.MaxLevel()) {
		return nil, fmt.Errorf("%w: level %d not in [%d, %d] for degree %d",
			ErrLevelOutOfRange, level, floor, s.params.MaxLevel(), d)
	}
	plan := s.params.NewEvalPolyPlan(coeffs[:d+1], lo, hi, level)
	if plan.MaxChebAbs() > maxPolyChebCoeff {
		return nil, fmt.Errorf("%w: Chebyshev coefficient magnitude %g exceeds 2^40 after the interval remap",
			ErrInvalidConstant, plan.MaxChebAbs())
	}
	return &PolyEval{plan: plan}, nil
}

// EvalPoly applies a compiled polynomial slot-wise. Ciphertexts above the
// plan's level are dropped to it first; below it is an error. The result
// lands Depth() levels lower at ≈ the working scale. Key-gated: the set
// must carry the relinearization key at depth ≥ KeyLevel().
func (s *Server) EvalPoly(ct *Ciphertext, pe *PolyEval, evk *EvaluationKeys) (*Ciphertext, error) {
	if err := validateCoeffCiphertext(s.params, ct); err != nil {
		return nil, err
	}
	if evk == nil {
		return nil, fmt.Errorf("%w: no evaluation-key set provided", ErrEvaluationKeyMissing)
	}
	if evk.set.Rlk == nil {
		return nil, fmt.Errorf("%w: set carries no relinearization key", ErrEvaluationKeyMissing)
	}
	if ct.Level < pe.Level() {
		return nil, fmt.Errorf("%w: ciphertext at level %d, polynomial compiled at %d",
			ErrLevelOutOfRange, ct.Level, pe.Level())
	}
	if pe.KeyLevel() > evk.set.MaxLevel {
		return nil, fmt.Errorf("%w: evaluation runs products at level %d, keys stop at %d (export deeper keys)",
			ErrLevelOutOfRange, pe.KeyLevel(), evk.set.MaxLevel)
	}
	if ct.Level > pe.Level() {
		ct = s.eval.DropLevel(ct, pe.Level())
	}
	return s.eval.EvalPoly(ct, pe.plan, evk.set.Rlk), nil
}

// EvalPolyDepth returns the limbs a degree-`degree` evaluation spends on
// this parameter set at the preferred schedule — the number to budget in
// EvalKeyConfig.MaxLevel and DFT level planning. A PolyEval compiled at a
// shallow level may commit to a narrower, deeper schedule; its Depth()
// is the authoritative value.
func (s *Server) EvalPolyDepth(degree int) int {
	return ckks.EvalPolyDepth(degree, s.params.RescalesPerLevel())
}

// EvalPolyMinLevel returns the minimum feasible input level for the
// degree on this parameter set (the depth-optimal narrow schedule plus
// the output floor).
func (s *Server) EvalPolyMinLevel(degree int) int {
	return ckks.EvalPolyLevelFloor(degree, s.params.RescalesPerLevel())
}

// ---------------------------------------------------------------------
// EvalMod: the sine-approximation modular reduction
// ---------------------------------------------------------------------

// EvalModConfig selects the sine surrogate EvalMod compiles: the
// degree-`Degree` Taylor polynomial of Scaling·sin(2πx/Range), evaluated
// over [−Range, Range] — the approximate mod-Range reduction a bootstrap
// applies to each CoeffsToSlots output. The plaintext oracle is
// fftfp.SinSurrogate: with the default Scaling the two evaluate the
// identical polynomial, so homomorphic-vs-oracle error measures FHE noise
// alone. Zero values select the defaults.
type EvalModConfig struct {
	// Degree of the Taylor kernel, in [1, 63]. Default 15 — the base sine
	// degree production CKKS bootstraps use (and the degree the fftfp
	// mantissa-sweep surrogate is measured with).
	Degree int
	// Range is the modulus analogue: the reduction approximates
	// (Range/2π)·sin(2πx/Range). Default 8, matching the fftfp surrogate.
	// The Taylor form is accurate as a *sine* approximation for
	// |x| ≲ Range/2; the contract pinned by tests is the polynomial
	// itself, which the oracle shares exactly.
	Range float64
	// Scaling multiplies the output. Default Range/(2π) — the exact
	// surrogate shape.
	Scaling float64
	// Level the evaluation consumes its input at (0 = minimum feasible).
	// After CoeffsToSlots, set this to the DFT's MidLevel().
	Level int
}

// EvalMod is a compiled sine-surrogate modular reduction. Build with
// Server.NewEvalMod; immutable and shareable.
type EvalMod struct {
	pe      *PolyEval
	degree  int
	rng     float64
	scaling float64
}

// Degree is the compiled Taylor degree.
func (m *EvalMod) Degree() int { return m.degree }

// Range is the modulus analogue the reduction was compiled for.
func (m *EvalMod) Range() float64 { return m.rng }

// Scaling is the output multiplier.
func (m *EvalMod) Scaling() float64 { return m.scaling }

// Level is the input level the evaluation consumes ciphertexts at.
func (m *EvalMod) Level() int { return m.pe.Level() }

// Depth is the number of limbs the evaluation spends.
func (m *EvalMod) Depth() int { return m.pe.Depth() }

// KeyLevel is the highest level a relinearized product runs at.
func (m *EvalMod) KeyLevel() int { return m.pe.KeyLevel() }

// NewEvalMod compiles the sine-surrogate reduction selected by cfg.
func (s *Server) NewEvalMod(cfg EvalModConfig) (*EvalMod, error) {
	degree := cfg.Degree
	if degree == 0 {
		degree = 15
	}
	if degree < 1 || degree > maxEvalModDegree {
		return nil, fmt.Errorf("%w: EvalMod degree %d not in [1, %d]", ErrInvalidSpan, degree, maxEvalModDegree)
	}
	rng := cfg.Range
	if rng == 0 {
		rng = 8
	}
	if math.IsNaN(rng) || math.IsInf(rng, 0) || rng < minPolyIntervalW || rng > maxPolyInterval {
		return nil, fmt.Errorf("%w: EvalMod range %g outside [2^-16, 2^20]", ErrInvalidSpan, rng)
	}
	scaling := cfg.Scaling
	if scaling == 0 {
		scaling = rng / (2 * math.Pi)
	}
	if math.IsNaN(scaling) || math.IsInf(scaling, 0) {
		return nil, fmt.Errorf("%w: EvalMod scaling %g is not finite", ErrInvalidConstant, scaling)
	}
	// mono[k] = Scaling·s_k·(2π/Range)^k ⇒ p(x) = Scaling·P_sin(2πx/Range).
	sin := fftfp.SinTaylorCoeffs(degree)
	mono := make([]complex128, degree+1)
	pw := 1.0
	for k, sk := range sin {
		mono[k] = complex(scaling*sk*pw, 0)
		pw *= 2 * math.Pi / rng
	}
	pe, err := s.NewPolyEval(mono, -rng, rng, cfg.Level)
	if err != nil {
		return nil, err
	}
	return &EvalMod{pe: pe, degree: pe.Degree(), rng: rng, scaling: scaling}, nil
}

// EvalMod applies the compiled reduction slot-wise — after CoeffsToSlots,
// once per coefficient half. Same level/key semantics as EvalPoly.
func (s *Server) EvalMod(ct *Ciphertext, m *EvalMod, evk *EvaluationKeys) (*Ciphertext, error) {
	return s.EvalPoly(ct, m.pe, evk)
}
