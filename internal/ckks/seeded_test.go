package ckks

import (
	"testing"

	"repro/internal/prng"
	"repro/internal/ring"
)

func seededSetup(t *testing.T) (*Parameters, *SecretKey, *Encoder, *SeededEncryptor, *Decryptor) {
	t.Helper()
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk := kg.GenSecretKey()
	return p, sk, NewEncoder(p), NewSeededEncryptor(p, sk, testSeed()), NewDecryptor(p, sk)
}

func TestSeededEncryptDecrypt(t *testing.T) {
	p, _, enc, se, dec := seededSetup(t)
	msg := randMsg(p, 0, 31)
	sct := se.Encrypt(enc.Encode(msg))
	ct := p.Expand(sct)
	got := enc.Decode(dec.Decrypt(ct))
	if e := maxErr(msg, got); e > 1e-4 {
		t.Fatalf("seeded round trip error %g", e)
	}
}

func TestSeededExpandDeterministic(t *testing.T) {
	p, _, enc, se, _ := seededSetup(t)
	sct := se.Encrypt(enc.Encode(randMsg(p, 0, 32)))
	a := p.Expand(sct)
	b := p.Expand(sct)
	if !p.Ring().AtLevel(sct.Level).Equal(a.C1, b.C1) {
		t.Fatal("expansion must be deterministic in the seed")
	}
}

func TestSeededDistinctMasks(t *testing.T) {
	p, _, enc, se, _ := seededSetup(t)
	m := randMsg(p, 0, 33)
	s1 := se.Encrypt(enc.Encode(m))
	s2 := se.Encrypt(enc.Encode(m))
	if s1.Stream == s2.Stream {
		t.Fatal("stream counter must advance")
	}
	c1a := p.Expand(s1).C1
	c1b := p.Expand(s2).C1
	if p.Ring().AtLevel(s1.Level).Equal(c1a, c1b) {
		t.Fatal("two encryptions share a mask — randomness reuse")
	}
}

func TestSeededWireHalvesTraffic(t *testing.T) {
	p, _, enc, se, dec := seededSetup(t)
	msg := randMsg(p, 0, 34)
	sct := se.Encrypt(enc.Encode(msg))

	data, err := p.MarshalSeeded(sct)
	if err != nil {
		t.Fatal(err)
	}
	full := p.CiphertextWireBytes(sct.Level)
	ratio := float64(len(data)) / float64(full)
	if ratio > 0.52 {
		t.Fatalf("seeded wire size ratio %.3f, want ≈0.5", ratio)
	}

	back, err := p.UnmarshalSeeded(data)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(dec.Decrypt(p.Expand(back)))
	if e := maxErr(msg, got); e > 1e-4 {
		t.Fatalf("seeded wire round trip error %g", e)
	}
}

func TestSeededUnmarshalValidation(t *testing.T) {
	p, _, enc, se, _ := seededSetup(t)
	data, _ := p.MarshalSeeded(se.Encrypt(enc.Encode(randMsg(p, 0, 35))))

	bad := append([]byte(nil), data...)
	bad[5] = encPacked // strip the seeded marker
	if _, err := p.UnmarshalSeeded(bad); err == nil {
		t.Fatal("non-seeded payload must be rejected")
	}
	if _, err := p.UnmarshalSeeded(data[:20]); err == nil {
		t.Fatal("short payload must be rejected")
	}
	// A full ciphertext must not parse as seeded.
	kg := NewKeyGenerator(p, testSeed())
	_, pk := kg.GenKeyPair()
	fullCt := NewEncryptor(p, pk, testSeed()).Encrypt(enc.Encode(randMsg(p, 0, 36)))
	fullData, _ := p.MarshalCiphertext(fullCt, true)
	if _, err := p.UnmarshalSeeded(fullData); err == nil {
		t.Fatal("full ciphertext must not parse as seeded")
	}
}

// TestSeededErrorNotDerivableFromWireSeed pins the secrecy split of the
// seeded form: the wire carries (maskSeed, stream), and from those two
// values an attacker must NOT be able to regenerate the Gaussian error —
// otherwise every upload is an errorless RLWE sample (and one known
// plaintext yields the secret key). The actual error is reconstructed
// with the secret key (e = c0 + a·s − m) and compared against the
// attacker's candidates drawn from the transmitted seed; the private
// derived error seed must reproduce it exactly (positive control).
func TestSeededErrorNotDerivableFromWireSeed(t *testing.T) {
	p, sk, enc, se, _ := seededSetup(t)
	msg := randMsg(p, 0, 39)
	pt := enc.Encode(msg)
	sct := se.Encrypt(pt)
	rl := p.RingAt(sct.Level)

	// e = c0 + a·s − m, with a regenerated exactly as the server does.
	a := regenMask(rl, sct.Seed, sct.Stream)
	skView := &ring.Poly{Coeffs: sk.S.Coeffs[:sct.Level], IsNTT: true}
	as := rl.NewPoly()
	rl.MulCoeffs(a, skView, as)
	rl.INTT(as)
	rl.PutPoly(a)
	e := rl.NewPoly()
	rl.Add(sct.C0, as, e)
	rl.Sub(e, pt.Value, e)

	sameAs := func(guess *ring.Poly) bool {
		for j, v := range guess.Coeffs[0] {
			if v != e.Coeffs[0][j] {
				return false
			}
		}
		return true
	}
	// Attacker candidates from wire-visible material only.
	for _, stream := range []uint64{sct.Stream, sct.Stream ^ 0xE, sct.Stream + 1} {
		guess := rl.NewPoly()
		rl.GaussianPoly(prng.NewSource(sct.Seed, stream), guess)
		if sameAs(guess) {
			t.Fatalf("error regenerable from wire seed at stream %d", stream)
		}
	}
	// Positive control: the private error seed reproduces it.
	want := rl.NewPoly()
	rl.GaussianPoly(prng.NewSource(deriveUploadErrorSeed(testSeed()), sct.Stream), want)
	if !sameAs(want) {
		t.Fatal("derived error seed does not reproduce the actual error")
	}
	// And the wire seed is not the root seed.
	if sct.Seed == testSeed() {
		t.Fatal("wire seed equals the root seed")
	}
}

func TestSeededHomomorphismAfterExpand(t *testing.T) {
	p, _, enc, se, dec := seededSetup(t)
	ev := NewEvaluator(p)
	m1 := randMsg(p, 0, 37)
	m2 := randMsg(p, 0, 38)
	ct1 := p.Expand(se.Encrypt(enc.Encode(m1)))
	ct2 := p.Expand(se.Encrypt(enc.Encode(m2)))
	sum := ev.Add(ct1, ct2)
	got := enc.Decode(dec.Decrypt(sum))
	want := make([]complex128, len(m1))
	for i := range want {
		want[i] = m1[i] + m2[i]
	}
	if e := maxErr(want, got); e > 1e-4 {
		t.Fatalf("homomorphic add on expanded ciphertexts: error %g", e)
	}
}
