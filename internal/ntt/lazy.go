package ntt

// Lazy-reduction transforms: the software analogue of what the RFE's
// 44-bit datapath headroom buys in hardware. Limb primes are ≤ 36 bits
// while the datapath is 44 bits wide (paper §III), so butterfly outputs
// can stay in extended ranges across stages, skipping the conditional
// corrections; a single final pass normalizes into [0, q). These are the
// kernels the fast lanes backend binds NTT Forward/Inverse to — the
// portable Forward/Inverse in ntt.go remain the spec-shaped oracle, and
// both produce byte-identical canonical output (asserted by
// TestForwardLazyMatchesForward / TestInverseLazyMatchesInverse).
//
// The forward direction is the classic Harvey formulation ("Faster
// arithmetic for number-theoretic transforms"): with inputs in [0, 4q),
// compute
//
//	u' = u - (u ≥ 2q ? 2q : 0)        — one conditional subtraction
//	v' = MRed(v, w)                   — result in [0, 2q) (lazy Montgomery)
//	out0 = u' + v'          ∈ [0, 4q)
//	out1 = u' - v' + 2q     ∈ [0, 4q)
//
// Correct whenever 4q < 2^64 (true for every limb width mod accepts).
// The inverse (Gentleman–Sande) keeps values in [0, 2q): the sum side
// takes one conditional subtraction of 2q, the difference side is lazily
// Montgomery-multiplied back into [0, 2q), and the closing N^{-1} scaling
// reduces canonically.
//
// Inner loops are written for the Go compiler's bounds-check elimination:
// the two butterfly halves are hoisted into equal-length subslices (the
// `y = y[:len(x)]` reslice is what lets the prover drop the checks on y)
// and unrolled 2×; Montgomery reduction is inlined via mredLazy so each
// butterfly compiles to straight-line multiply/add/csel code.

import "math/bits"

// mredLazy is Montgomery multiplication without the final conditional
// subtraction: a·b·2^{-64} mod q, returned in [0, 2q) for a·b < q·2^64.
// Small enough for the inliner, and built on the Mul64/Add64 intrinsics.
func mredLazy(a, b, q, qInv uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	w := lo * qInv
	mh, ml := bits.Mul64(w, q)
	_, carry := bits.Add64(lo, ml, 0)
	return hi + mh + carry
}

// ForwardLazy computes the forward negacyclic NTT with lazy reduction.
// Input in [0, q), output in [0, q) — byte-identical to Forward (the
// final sweep normalizes the [0, 4q) intermediates canonically).
func (t *Table) ForwardLazy(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.Mod
	q := m.Q
	qInv := m.QInv
	twoQ := 2 * q
	psi := t.PsiRev
	n := t.N

	// All stages with tt ≥ 2: subsliced, 2×-unrolled butterflies.
	for mm, tt := 1, n>>1; tt > 1; mm, tt = mm<<1, tt>>1 {
		for i := 0; i < mm; i++ {
			s := psi[mm+i]
			j1 := 2 * i * tt
			x := a[j1 : j1+tt : j1+tt]
			y := a[j1+tt : j1+2*tt : j1+2*tt]
			y = y[:len(x)]
			for j := 0; j+1 < len(x); j += 2 {
				u0, u1 := x[j], x[j+1]
				if u0 >= twoQ {
					u0 -= twoQ
				}
				if u1 >= twoQ {
					u1 -= twoQ
				}
				v0 := mredLazy(y[j], s, q, qInv)
				v1 := mredLazy(y[j+1], s, q, qInv)
				x[j] = u0 + v0
				x[j+1] = u1 + v1
				y[j] = u0 - v0 + twoQ
				y[j+1] = u1 - v1 + twoQ
			}
		}
	}

	// Last stage (tt == 1): adjacent pairs, one twiddle per butterfly —
	// subslicing per pair would cost more than the bounds checks it saves.
	if n >= 2 {
		h := n >> 1
		for i, j := 0, 0; i < h; i, j = i+1, j+2 {
			s := psi[h+i]
			u := a[j]
			if u >= twoQ {
				u -= twoQ
			}
			v := mredLazy(a[j+1], s, q, qInv)
			a[j] = u + v
			a[j+1] = u - v + twoQ
		}
	}

	// Normalize [0, 4q) → [0, q): canonical, matching Forward's output.
	for j := range a {
		v := a[j]
		if v >= twoQ {
			v -= twoQ
		}
		if v >= q {
			v -= q
		}
		a[j] = v
	}
}

// InverseLazy computes the inverse negacyclic NTT (including the N^{-1}
// scaling) with lazy reduction. Input in [0, q), output in [0, q) —
// byte-identical to Inverse; intermediates roam [0, 2q).
func (t *Table) InverseLazy(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.Mod
	q := m.Q
	qInv := m.QInv
	twoQ := 2 * q
	psiInv := t.PsiInvRev

	// First stage (tt == 1): adjacent pairs.
	n := t.N
	if n >= 2 {
		h := n >> 1
		for i, j := 0, 0; i < h; i, j = i+1, j+2 {
			s := psiInv[h+i]
			u, v := a[j], a[j+1]
			uv := u + v
			if uv >= twoQ {
				uv -= twoQ
			}
			a[j] = uv
			a[j+1] = mredLazy(u-v+twoQ, s, q, qInv)
		}
	}

	// Remaining stages (tt ≥ 2): subsliced, 2×-unrolled.
	tt := 2
	for mm := n >> 1; mm > 1; mm >>= 1 {
		h := mm >> 1
		j1 := 0
		for i := 0; i < h; i++ {
			s := psiInv[h+i]
			x := a[j1 : j1+tt : j1+tt]
			y := a[j1+tt : j1+2*tt : j1+2*tt]
			y = y[:len(x)]
			for j := 0; j+1 < len(x); j += 2 {
				u0, u1 := x[j], x[j+1]
				v0, v1 := y[j], y[j+1]
				uv0 := u0 + v0
				uv1 := u1 + v1
				if uv0 >= twoQ {
					uv0 -= twoQ
				}
				if uv1 >= twoQ {
					uv1 -= twoQ
				}
				x[j] = uv0
				x[j+1] = uv1
				y[j] = mredLazy(u0-v0+twoQ, s, q, qInv)
				y[j+1] = mredLazy(u1-v1+twoQ, s, q, qInv)
			}
			j1 += 2 * tt
		}
		tt <<= 1
	}

	// Closing N^{-1} scaling: inputs in [0, 2q), outputs canonical — the
	// single conditional correction suffices because a·NInv < 2q·q keeps
	// the lazy result under 2q.
	nInv := t.NInv
	for j := range a {
		v := mredLazy(a[j], nInv, q, qInv)
		if v >= q {
			v -= q
		}
		a[j] = v
	}
}
