package abcfhe

// Concurrency audit of the Server role: the serve layer (internal/serve)
// dispatches requests from many sessions onto ONE Server instance, so
// every key-gated operation must be safe to call from N goroutines at
// once — including mixes of different operations, which stress different
// scratch-pool shapes simultaneously. Before this test, only per-role
// batch paths (EncryptBatch, DecryptDecodeBatch) were race-exercised.
//
// The test computes reference wire bytes for every (op, input) pair up
// front, then hammers the shared Server from goroutines×iters calls and
// asserts byte-identical results — a data race that silently corrupts
// scratch would show up as a byte diff even when `-race` is off.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestServerConcurrentMixedOps(t *testing.T) {
	owner, enc, srv := threeParties(t, Test, 0xA11CE, 0xB0B)
	defer owner.Close()
	defer enc.Close()
	defer srv.Close()

	// Keys: rotation ladder for InnerSum(4) plus the steps the linear
	// transform below consumes, conjugation for good measure.
	diags := map[int][]complex128{}
	for d := -1; d <= 2; d++ {
		v := make([]complex128, srv.Slots())
		for r := range v {
			v[r] = complex(float64((r+5*d)%9)/9-0.5, float64((r+d)%7)/7-0.5)
		}
		diags[d] = v
	}
	ltLevel := 2 // Test preset: RescalesPerLevel()==1, minimum legal level
	var diagIdx []int
	for d := range diags {
		diagIdx = append(diagIdx, d)
	}
	steps := append(InnerSumRotations(4), 3) // the Rotate op below uses step 3
	steps = append(steps, LinearTransformRotations(srv.Slots(), diagIdx, 0)...)
	evkBytes, err := owner.ExportEvaluationKeys(EvalKeyConfig{
		Rotations: steps,
		Conjugate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	evk, err := srv.ImportEvaluationKeys(evkBytes)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := srv.NewLinearTransform(diags, ltLevel, 0)
	if err != nil {
		t.Fatal(err)
	}

	msgs := testMsgs(enc.Slots(), 2)
	cts, err := enc.EncodeEncryptBatch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := cts[0], cts[1]

	// One closure per operation; each returns the op's serialized result.
	ops := map[string]func() ([]byte, error){
		"mul": func() ([]byte, error) {
			out, err := srv.Mul(a, b, evk)
			if err != nil {
				return nil, err
			}
			return srv.SerializeCiphertext(out)
		},
		"rotate": func() ([]byte, error) {
			out, err := srv.Rotate(a, 3, evk)
			if err != nil {
				return nil, err
			}
			return srv.SerializeCiphertext(out)
		},
		"conjugate": func() ([]byte, error) {
			out, err := srv.Conjugate(b, evk)
			if err != nil {
				return nil, err
			}
			return srv.SerializeCiphertext(out)
		},
		"innersum": func() ([]byte, error) {
			out, err := srv.InnerSum(a, 4, evk)
			if err != nil {
				return nil, err
			}
			return srv.SerializeCiphertext(out)
		},
		"dot": func() ([]byte, error) {
			w := make([]complex128, 4)
			for i := range w {
				w[i] = complex(float64(i+1)/4, 0)
			}
			out, err := srv.DotPlain(a, w, evk)
			if err != nil {
				return nil, err
			}
			return srv.SerializeCiphertext(out)
		},
		"lintrans": func() ([]byte, error) {
			out, err := srv.LinearTransform(b, lt, evk)
			if err != nil {
				return nil, err
			}
			return srv.SerializeCiphertext(out)
		},
	}

	// References, computed serially.
	want := map[string][]byte{}
	for name, fn := range ops {
		ref, err := fn()
		if err != nil {
			t.Fatalf("%s (serial reference): %v", name, err)
		}
		want[name] = ref
	}

	const goroutines = 8
	const iters = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	names := make([]string, 0, len(ops))
	for name := range ops {
		names = append(names, name)
	}
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				name := names[(g+i)%len(names)]
				got, err := ops[name]()
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d %s: %w", g, i, name, err)
					return
				}
				if !bytes.Equal(got, want[name]) {
					errs <- fmt.Errorf("goroutine %d iter %d %s: wire bytes differ from serial reference", g, i, name)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServerConcurrentWithKeyFreeOps mixes the key-free tier (Add, Sub,
// MulConst, Rescale, expansion of seeded uploads) into the same hammer —
// the serve layer's per-session queues interleave both tiers on one
// Server.
func TestServerConcurrentWithKeyFreeOps(t *testing.T) {
	owner, enc, srv := threeParties(t, Test, 0xFACE, 0xF00D)
	defer owner.Close()
	defer enc.Close()
	defer srv.Close()

	msgs := testMsgs(enc.Slots(), 2)
	cts, err := enc.EncodeEncryptBatch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := cts[0], cts[1]
	seeded, err := owner.EncodeEncryptCompressed(msgs[0])
	if err != nil {
		t.Fatal(err)
	}

	ops := []func() error{
		func() error { _, err := srv.Add(a, b); return err },
		func() error { _, err := srv.Sub(a, b); return err },
		func() error { _, err := srv.MulConst(a, 1.5); return err },
		func() error { _, err := srv.Rescale(b); return err },
		func() error { _, err := srv.DropLevel(a, 2); return err },
		func() error { _, err := srv.ExpandCompressedUpload(seeded); return err },
	}
	var wg sync.WaitGroup
	errs := make(chan error, 48)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if err := ops[(g+i)%len(ops)](); err != nil {
					errs <- fmt.Errorf("goroutine %d op %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
