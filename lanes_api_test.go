package abcfhe

// Tests for the lane-parallel execution engine at the public-API level,
// on the role types: the determinism contract (same seed ⇒ byte-identical
// ciphertexts at any worker count — see also TestEncryptorWorkerDeterminism
// in roles_test.go), batch/serial equivalence, and concurrent-use safety
// of shared parties (run with -race; CI does).

import (
	"bytes"
	"fmt"
	"math/cmplx"
	"sync"
	"testing"
)

// TestBatchMatchesSequential: a batch must consume exactly the stream
// windows sequential calls would, so the two orders are interchangeable —
// verified on two devices bootstrapped from the same public-key bytes
// with the same seed.
func TestBatchMatchesSequential(t *testing.T) {
	owner, err := NewKeyOwner(Test, 11, 22)
	if err != nil {
		t.Fatal(err)
	}
	pkBytes, err := owner.ExportPublicKey()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewEncryptor(pkBytes, 33, 44)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := NewEncryptor(pkBytes, 33, 44)
	if err != nil {
		t.Fatal(err)
	}
	msgs := testMsgs(seq.Slots(), 4)

	cts, err := bat.EncodeEncryptBatch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cts) != len(msgs) {
		t.Fatalf("batch returned %d ciphertexts for %d messages", len(cts), len(msgs))
	}
	for i, msg := range msgs {
		ct, err := seq.EncodeEncrypt(msg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := seq.SerializeCiphertext(ct)
		if err != nil {
			t.Fatal(err)
		}
		got, err := bat.SerializeCiphertext(cts[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("batch ciphertext %d differs from sequential encryption", i)
		}
	}

	// And the round trip still decodes, batched, on the key owner.
	decoded, err := owner.DecryptDecodeBatch(cts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msgs {
		for j := range msgs[i] {
			if cmplx.Abs(decoded[i][j]-msgs[i][j]) > 1e-4 {
				t.Fatalf("message %d slot %d error %g", i, j, cmplx.Abs(decoded[i][j]-msgs[i][j]))
			}
		}
	}
}

// TestConcurrentEncrypt exercises one device Encryptor from many
// goroutines — the atomic stream counter must hand every encryption a
// disjoint PRNG window, and all shared state (pools, tables) must be
// race-free. The shared KeyOwner decrypts concurrently too.
func TestConcurrentEncrypt(t *testing.T) {
	owner, device, _ := threeParties(t, Test, 77, 88, WithWorkers(4))
	defer device.Close()
	defer owner.Close()

	const goroutines = 8
	const perG = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			msg := make([]complex128, device.Slots())
			for i := range msg {
				msg[i] = complex(float64(g)/16, -float64(g)/32)
			}
			for k := 0; k < perG; k++ {
				ct, err := device.EncodeEncrypt(msg)
				if err != nil {
					errs <- err
					return
				}
				got, err := owner.DecryptDecode(ct)
				if err != nil {
					errs <- err
					return
				}
				for i := range msg {
					if cmplx.Abs(got[i]-msg[i]) > 1e-4 {
						errs <- fmt.Errorf("goroutine %d slot %d error %g", g, i, cmplx.Abs(got[i]-msg[i]))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCompressedUploadConcurrent covers the seeded path's atomic counter
// across the owner/server split.
func TestCompressedUploadConcurrent(t *testing.T) {
	owner, _, server := threeParties(t, Test, 5, 6)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			msg := make([]complex128, owner.Slots())
			for i := range msg {
				msg[i] = complex(0.125*float64(g+1), -0.0625)
			}
			data, err := owner.EncodeEncryptCompressed(msg)
			if err != nil {
				errs <- err
				return
			}
			ct, err := server.ExpandCompressedUpload(data)
			if err != nil {
				errs <- err
				return
			}
			got, err := owner.DecryptDecode(ct)
			if err != nil {
				errs <- err
				return
			}
			for i := range msg {
				if cmplx.Abs(got[i]-msg[i]) > 1e-4 {
					errs <- fmt.Errorf("goroutine %d slot %d error %g", g, i, cmplx.Abs(got[i]-msg[i]))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
