package sim

import (
	"testing"

	"repro/internal/sched"
)

func TestPaperConfigLatencies(t *testing.T) {
	c := PaperConfig()
	enc := c.EncodeEncrypt(1)
	dec := c.DecodeDecrypt(1)

	// Encode+encrypt at N=2^16, 24 limbs: the ciphertext alone is
	// 2·24·65536·5.5B ≈ 17.3 MB; at 68.4 GB/s the operation is
	// DRAM-bound in the low hundreds of microseconds.
	if enc.TimeMS < 0.1 || enc.TimeMS > 1.0 {
		t.Fatalf("enc time %.3f ms outside plausible range", enc.TimeMS)
	}
	// Decode+decrypt at 2 limbs is an order of magnitude-plus faster.
	if dec.TimeMS > enc.TimeMS/5 {
		t.Fatalf("dec %.3f ms not ≪ enc %.3f ms", dec.TimeMS, enc.TimeMS)
	}
	// The paper's architecture choice: at 8 lanes encryption is
	// memory-bound, not compute-bound.
	if enc.DRAMCycles < enc.ComputeCycles {
		t.Fatalf("enc should be DRAM-bound at P=8: compute=%.0f dram=%.0f",
			enc.ComputeCycles, enc.DRAMCycles)
	}
}

func TestLaneSweepSaturatesAtEight(t *testing.T) {
	pts := LaneSweep(PaperConfig(), []int{1, 2, 4, 8, 16, 32, 64})
	// Latency decreases up to 8 lanes…
	for i := 1; i < len(pts); i++ {
		if pts[i].Lanes <= 8 && pts[i].EncTimeMS >= pts[i-1].EncTimeMS {
			t.Fatalf("latency must improve up to 8 lanes: %+v", pts)
		}
	}
	// …and the memory bottleneck caps improvement beyond 8 (paper Fig. 5b).
	var at8, at64 float64
	for _, p := range pts {
		if p.Lanes == 8 {
			at8 = p.EncTimeMS
		}
		if p.Lanes == 64 {
			at64 = p.EncTimeMS
		}
	}
	if at64 < at8*0.95 {
		t.Fatalf("beyond 8 lanes latency must plateau: at8=%.4f at64=%.4f", at8, at64)
	}
	// At 8+ lanes the design is DRAM-bound.
	for _, p := range pts {
		if p.Lanes >= 8 && !p.DRAMBound {
			t.Fatalf("P=%d should be DRAM-bound", p.Lanes)
		}
		if p.Lanes <= 2 && p.DRAMBound {
			t.Fatalf("P=%d should be compute-bound", p.Lanes)
		}
	}
}

func TestMemorySweepFig6b(t *testing.T) {
	pts := MemorySweep(PaperConfig(), []int{13, 14, 15, 16})
	for _, p := range pts {
		// Ordering: Base slowest, TFGen middle, All fastest.
		if !(p.BaseMS > p.TFGenMS && p.TFGenMS > p.AllMS) {
			t.Fatalf("logN=%d: memory-mode ordering violated: %+v", p.LogN, p)
		}
		// Paper: ≈8.2–9.3× Base→All. Accept a 6–14× band (our Base model
		// streams twiddles at butterfly rate; see EXPERIMENTS.md).
		if p.SpeedupAll < 6 || p.SpeedupAll > 14 {
			t.Fatalf("logN=%d: Base/All speedup %.1f outside band", p.LogN, p.SpeedupAll)
		}
	}
}

func TestMemoryFootprintClaims(t *testing.T) {
	m := Footprint(PaperConfig())
	mb := func(b float64) float64 { return b / (1 << 20) }
	// §IV-B: 16.5 MB pk, 8.25 MB masks/errors, 8.25 MB twiddles.
	if v := mb(m.PublicKeyB); v < 16.4 || v > 16.6 {
		t.Fatalf("pk footprint %.2f MiB, paper 16.5", v)
	}
	if v := mb(m.MaskErrorB); v < 8.2 || v > 8.3 {
		t.Fatalf("mask/error footprint %.2f MiB, paper 8.25", v)
	}
	if v := mb(m.TwiddleB); v < 8.2 || v > 8.3 {
		t.Fatalf("twiddle footprint %.2f MiB, paper 8.25", v)
	}
	// Seed store is tens of KB (paper: 26.4 KB + 128-bit seed).
	if kb := m.SeedStoreB / 1024; kb < 5 || kb > 40 {
		t.Fatalf("seed store %.1f KB outside plausible range", kb)
	}
	// The >99.9% reduction claim.
	if m.ReductionFraction() < 0.999 {
		t.Fatalf("reduction %.5f < 0.999", m.ReductionFraction())
	}
}

func TestRSCModes(t *testing.T) {
	c := PaperConfig()
	encDual, _ := c.Mode(sched.ModeDualEncrypt)
	encSingle, decSingle := c.Mode(sched.ModeEncryptDecrypt)
	_, decDual := c.Mode(sched.ModeDualDecrypt)

	// Two cores never hurt; when compute-bound they halve compute time.
	if encDual.ComputeCycles >= encSingle.ComputeCycles {
		t.Fatal("dual-encrypt mode must halve compute cycles")
	}
	if decDual.ComputeCycles >= decSingle.ComputeCycles {
		t.Fatal("dual-decrypt mode must halve compute cycles")
	}
}

func TestThroughput(t *testing.T) {
	c := PaperConfig()
	tp := c.ThroughputCtPerSec()
	// DRAM-bound ceiling: ~68.4 GB/s over ~17.8 MB per ciphertext ≈ 3.8k/s.
	if tp < 1000 || tp > 10000 {
		t.Fatalf("throughput %.0f ct/s outside plausible range", tp)
	}
}

func TestScalingWithDegree(t *testing.T) {
	// Halving N roughly halves both compute and DRAM demands.
	c := PaperConfig()
	r16 := c.EncodeEncrypt(1)
	c.LogN = 15
	r15 := c.EncodeEncrypt(1)
	ratio := r16.Cycles / r15.Cycles
	if ratio < 1.8 || ratio > 2.3 {
		t.Fatalf("N scaling ratio %.2f, want ≈2", ratio)
	}
}

func TestDecodeFasterWithFewerLimbs(t *testing.T) {
	c := PaperConfig()
	d2 := c.DecodeDecrypt(1)
	c.DecLimbs = 24
	d24 := c.DecodeDecrypt(1)
	if d24.Cycles <= d2.Cycles {
		t.Fatal("more limbs must cost more")
	}
}

func BenchmarkSimEncodeEncrypt(b *testing.B) {
	c := PaperConfig()
	for i := 0; i < b.N; i++ {
		c.EncodeEncrypt(1)
	}
}
