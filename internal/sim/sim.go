// Package sim is the cycle-level simulator of ABC-FHE — the reproduction
// of the paper's own evaluation vehicle ("a cycle-level simulator was
// developed to measure latency", §V-B).
//
// The model follows the streaming architecture's contract: every engine
// (RFE lanes, MSE, PRNG, OTF TF Gen) sustains its per-cycle width, phases
// are double-buffered through the scratchpads, and an operation's latency
// is the maximum of its compute stream time and its DRAM stream time plus
// pipeline fills — exactly the quantity a streaming design exposes.
// DRAM is LPDDR5 at 68.4 GB/s (§V-A).
//
// Three memory configurations reproduce Fig. 6b:
//
//	Base  — no on-chip generation: twiddle factors stream from DRAM at
//	        datapath rate (a butterfly consumes a twiddle word per op —
//	        there is no spare on-chip capacity for 8.25 MB of tables),
//	        and public key, masks and errors are fetched per encryption.
//	TFGen — the unified OTF TF Gen removes twiddle traffic.
//	All   — the PRNG additionally generates masks/errors/keys on chip:
//	        only messages in and ciphertexts out remain.
package sim

import (
	"fmt"
	"sync"

	"repro/internal/ntt"
	"repro/internal/sched"
)

// MemoryMode selects the Fig. 6b configuration.
type MemoryMode int

const (
	MemAll   MemoryMode = iota // OTF TF Gen + PRNG (ABC-FHE)
	MemTFGen                   // OTF TF Gen only
	MemBase                    // everything from DRAM
)

func (m MemoryMode) String() string {
	switch m {
	case MemAll:
		return "ABC-FHE_All"
	case MemTFGen:
		return "ABC-FHE_TFGen"
	case MemBase:
		return "ABC-FHE_Base"
	}
	return fmt.Sprintf("MemoryMode(%d)", int(m))
}

// Config fixes the simulated machine and workload parameters.
type Config struct {
	LogN     int // polynomial degree exponent
	Limbs    int // encryption-side RNS limbs (paper: 24)
	DecLimbs int // decryption-side limbs (paper: 2)

	P    int // lanes per PNL (paper: 8)
	PNLs int // PNLs per RSC (paper: 4)
	RSCs int // streaming cores (paper: 2)

	FreqMHz  float64 // 600
	DRAMGBps float64 // 68.4 (LPDDR5)

	WordBits int // datapath word: 44

	Mem MemoryMode
}

// PaperConfig is the §V-B evaluation setup.
func PaperConfig() Config {
	return Config{
		LogN: 16, Limbs: 24, DecLimbs: 2,
		P: 8, PNLs: 4, RSCs: 2,
		FreqMHz: 600, DRAMGBps: 68.4,
		WordBits: 44,
		Mem:      MemAll,
	}
}

func (c Config) n() int { return 1 << uint(c.LogN) }

// wordBytes is the packed ciphertext word size in bytes.
func (c Config) wordBytes() float64 { return float64(c.WordBits) / 8 }

// dramBytesPerCycle converts the DRAM bandwidth to the core clock domain.
func (c Config) dramBytesPerCycle() float64 {
	return c.DRAMGBps * 1e9 / (c.FreqMHz * 1e6)
}

// Report is the outcome of simulating one operation.
type Report struct {
	Name          string
	ComputeCycles float64
	DRAMCycles    float64
	FillCycles    float64
	Cycles        float64 // max(compute, dram) + fill
	TimeMS        float64
	DRAMReadMB    float64
	DRAMWriteMB   float64
	Breakdown     map[string]float64 // phase → cycles (compute side)
}

func (c Config) finish(name string, compute, fill, readB, writeB float64) Report {
	dramCycles := (readB + writeB) / c.dramBytesPerCycle()
	cycles := compute
	if dramCycles > cycles {
		cycles = dramCycles
	}
	cycles += fill
	return Report{
		Name:          name,
		ComputeCycles: compute,
		DRAMCycles:    dramCycles,
		FillCycles:    fill,
		Cycles:        cycles,
		TimeMS:        cycles / (c.FreqMHz * 1e6) * 1e3,
		DRAMReadMB:    readB / 1e6,
		DRAMWriteMB:   writeB / 1e6,
	}
}

// laneFill returns the PNL pipeline fill latency from the streaming model.
// Memoized: the geometry depends only on (LogN, P). A fully serial lane
// (P = 1) uses the P = 2 geometry's fill — the SDF degenerate case has the
// same stage count and per-stage delays within one cycle.
func (c Config) laneFill() float64 {
	p := c.P
	if p < 2 {
		p = 2
	}
	key := [2]int{c.LogN, p}
	fillMu.Lock()
	defer fillMu.Unlock()
	if v, ok := fillCache[key]; ok {
		return v
	}
	tbl := ntt.MustTable(c.n(), 68718428161)
	lane := ntt.NewStreamingLane(tbl, p)
	v := float64(lane.FillLatency())
	fillCache[key] = v
	return v
}

var (
	fillMu    sync.Mutex
	fillCache = map[[2]int]float64{}
)

// EncodeEncrypt simulates encoding + encrypting one message on the RSCs
// assigned to encryption (cores ≥ 1).
func (c Config) EncodeEncrypt(cores int) Report {
	if cores < 1 {
		panic("sim: need at least one core")
	}
	n := float64(c.n())
	ops := sched.EncodeEncryptOps(c.LogN, c.Limbs)

	// Compute stream: the IFFT fuses the PNLs into one P-wide complex
	// pipeline (slots/P cycles); the 2L NTT passes run PNLs in parallel,
	// one limb per lane.
	ifftCycles := n / 2 / float64(c.P)
	nttCycles := float64(ops.TransformPasses) * (n / float64(c.P)) / float64(c.PNLs)
	compute := (ifftCycles + nttCycles) / float64(cores)

	// DRAM: message in (complex128 slots), ciphertext out (2L limbs).
	readB := n / 2 * 16
	writeB := 2 * float64(c.Limbs) * n * c.wordBytes()
	if c.Mem == MemBase || c.Mem == MemTFGen {
		// Public key, mask and error polynomials fetched per encryption
		// (§IV-B: 16.5 MB pk + 8.25 MB masks/errors at the paper config).
		readB += 2 * float64(c.Limbs) * n * c.wordBytes() // pk
		readB += float64(c.Limbs) * n * c.wordBytes()     // masks+errors
	}
	if c.Mem == MemBase {
		// No OTF generator: twiddles stream at butterfly rate —
		// (N/2)·logN words per pass.
		readB += float64(ops.TransformPasses) * (n / 2) * float64(c.LogN) * c.wordBytes()
	}

	r := c.finish("encode+encrypt", compute, c.laneFill()+float64(c.modmulFill()), readB, writeB)
	r.Breakdown = map[string]float64{"IFFT": ifftCycles, "NTT": nttCycles}
	return r
}

// DecodeDecrypt simulates decrypting + decoding one ciphertext.
func (c Config) DecodeDecrypt(cores int) Report {
	if cores < 1 {
		panic("sim: need at least one core")
	}
	n := float64(c.n())
	ops := sched.DecodeDecryptOps(c.LogN, c.DecLimbs)

	fftCycles := n / 2 / float64(c.P)
	nttCycles := float64(ops.TransformPasses) * (n / float64(c.P)) / float64(c.PNLs)
	compute := (fftCycles + nttCycles) / float64(cores)

	readB := 2 * float64(c.DecLimbs) * n * c.wordBytes() // ciphertext in
	writeB := n / 2 * 16                                 // message out
	if c.Mem == MemBase {
		readB += float64(ops.TransformPasses) * (n / 2) * float64(c.LogN) * c.wordBytes()
	}

	r := c.finish("decode+decrypt", compute, c.laneFill()+float64(c.modmulFill()), readB, writeB)
	r.Breakdown = map[string]float64{"FFT": fftCycles, "NTT": nttCycles}
	return r
}

// modmulFill is the multiplier pipeline depth (Table I: 3 stages).
func (c Config) modmulFill() int { return 3 }

// Mode runs both directions under an RSC operating mode and returns the
// reports (zero-valued when a direction gets no cores).
func (c Config) Mode(m sched.RSCMode) (enc, dec Report) {
	e, d := m.CoresFor()
	if e > 0 {
		enc = c.EncodeEncrypt(e)
	}
	if d > 0 {
		dec = c.DecodeDecrypt(d)
	}
	return enc, dec
}

// ThroughputCtPerSec returns steady-state ciphertexts/second for the
// encode+encrypt direction: back-to-back streaming hides fills, and with
// both cores encrypting the DRAM stream is the shared bottleneck.
func (c Config) ThroughputCtPerSec() float64 {
	r := c.EncodeEncrypt(1)
	perCt := r.ComputeCycles / float64(c.RSCs)
	dram := r.DRAMCycles // per ciphertext, shared across cores
	if dram > perCt {
		perCt = dram
	}
	return c.FreqMHz * 1e6 / perCt
}
