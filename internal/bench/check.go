// Benchmark-regression gate (the `abcbench -check` mode CI runs): execute
// the key-switch and client-pipeline benchmarks under both execution
// backends, append a machine-readable report to BENCH_8.json, and fail
// when an allocation count or evaluation-key blob size regresses past the
// budgets committed in bench_budget.json.
//
// Wall-clock numbers are recorded but only gated *relatively* — hybrid
// MulRelin must beat BV at max level on PN15 (the structural claim hybrid
// key switching exists for), and the fast backend's fused pipeline must
// beat the portable staged one on the same op (the claim the backend seam
// exists for). Absolute ns/op budgets would flap with CI hardware, while
// allocs/op and wire bytes are deterministic.

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/ckks"
	"repro/internal/fftfp"
	"repro/internal/lanes"
	"repro/internal/prng"
)

// BenchRecord is one row of a BENCH_8.json report.
type BenchRecord struct {
	Op          string  `json:"op"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	BlobBytes   int64   `json:"evk_blob_bytes,omitempty"`
}

// BenchReport is one gate run. BENCH_8.json holds an array of these —
// RunBenchCheck appends rather than overwrites, so a committed baseline
// survives CI re-runs and speedups stay comparable across PRs.
type BenchReport struct {
	GoVersion string        `json:"go_version"`
	GOARCH    string        `json:"goarch"`
	Backends  []string      `json:"backends,omitempty"`
	Records   []BenchRecord `json:"records"`
}

// budgetEntry is one committed ceiling in bench_budget.json, keyed by op.
type budgetEntry struct {
	MaxAllocsPerOp int64 `json:"max_allocs_per_op,omitempty"`
	MaxBlobBytes   int64 `json:"max_evk_blob_bytes,omitempty"`
}

func benchMsg(p *ckks.Parameters) []complex128 {
	msg := make([]complex128, p.Slots())
	src := prng.NewSource(prng.SeedFromUint64s(1, 2), 0)
	for i := range msg {
		msg[i] = complex(src.Float64()-0.5, src.Float64()-0.5)
	}
	return msg
}

func record(name string, r testing.BenchmarkResult) BenchRecord {
	return BenchRecord{
		Op:          name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// gateSeed derives the deterministic key seed the gate benchmarks use.
func gateSeed() [16]byte { return prng.SeedFromUint64s(0xB5, 0xC4) }

// loadBudgets parses a bench_budget.json file. Underscore-prefixed keys
// are free-form comments and are dropped.
func loadBudgets(path string) (map[string]budgetEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	budgets := make(map[string]budgetEntry, len(raw))
	for op, msg := range raw {
		if strings.HasPrefix(op, "_") {
			continue
		}
		var b budgetEntry
		if err := json.Unmarshal(msg, &b); err != nil {
			return nil, fmt.Errorf("parsing %s entry %q: %w", path, op, err)
		}
		budgets[op] = b
	}
	return budgets, nil
}

// budgetFailures compares a report against the committed budgets. A budget
// naming an op the gate no longer measures is itself a failure (the gate
// silently losing coverage must not pass); underscore-prefixed keys are
// comments.
func budgetFailures(report BenchReport, budgets map[string]budgetEntry) []string {
	var failures []string
	seen := map[string]bool{}
	for _, r := range report.Records {
		seen[r.Op] = true
		b, ok := budgets[r.Op]
		if !ok {
			continue
		}
		if b.MaxAllocsPerOp > 0 && r.AllocsPerOp > b.MaxAllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op exceeds budget %d",
				r.Op, r.AllocsPerOp, b.MaxAllocsPerOp))
		}
		if b.MaxBlobBytes > 0 && r.BlobBytes > b.MaxBlobBytes {
			failures = append(failures, fmt.Sprintf("%s: blob %d B exceeds budget %d",
				r.Op, r.BlobBytes, b.MaxBlobBytes))
		}
	}
	for op := range budgets {
		if !seen[op] && !strings.HasPrefix(op, "_") {
			failures = append(failures, fmt.Sprintf("budget entry %q matches no measured op", op))
		}
	}
	return failures
}

// appendReport adds report to the array document at outPath, creating the
// file when absent. A legacy single-object report (the BENCH_5.json shape)
// is lifted into a one-element array so history is kept, not clobbered.
func appendReport(outPath string, report BenchReport) error {
	var reports []BenchReport
	if data, err := os.ReadFile(outPath); err == nil {
		if jerr := json.Unmarshal(data, &reports); jerr != nil {
			var single BenchReport
			if serr := json.Unmarshal(data, &single); serr != nil {
				return fmt.Errorf("existing report %s is neither an array nor a single report: %v", outPath, jerr)
			}
			reports = []BenchReport{single}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	reports = append(reports, report)
	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}

// lastReport returns the most recent report already recorded at outPath,
// if any — the baseline the delta table compares the fresh run against.
// The legacy single-object shape is accepted the same way appendReport
// accepts it.
func lastReport(outPath string) (BenchReport, bool) {
	data, err := os.ReadFile(outPath)
	if err != nil {
		return BenchReport{}, false
	}
	var reports []BenchReport
	if err := json.Unmarshal(data, &reports); err != nil {
		var single BenchReport
		if json.Unmarshal(data, &single) != nil {
			return BenchReport{}, false
		}
		reports = []BenchReport{single}
	}
	if len(reports) == 0 {
		return BenchReport{}, false
	}
	return reports[len(reports)-1], true
}

// pctDelta renders the signed percentage movement from prev to now.
func pctDelta(prev, now float64) string {
	if prev <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(now-prev)/prev)
}

// writeDeltaTable prints op-by-op movement versus the previous recorded
// run: ns/op with a signed percentage, allocs/op on both sides, and blob
// bytes for the size rows. Informational only — the hard gates are the
// relative structural claims and the committed budgets; wall-clock drift
// between CI machines must not fail the build, but it should be visible
// in the log without diffing two JSON documents by hand.
func writeDeltaTable(w io.Writer, prev, cur BenchReport) {
	prevByOp := make(map[string]BenchRecord, len(prev.Records))
	for _, r := range prev.Records {
		prevByOp[r.Op] = r
	}
	fmt.Fprintf(w, "delta vs previous report (%s/%s):\n", prev.GoVersion, prev.GOARCH)
	fmt.Fprintf(w, "  %-24s %14s %14s %9s  %s\n", "op", "prev", "now", "delta", "allocs/op")
	for _, r := range cur.Records {
		p, ok := prevByOp[r.Op]
		if !ok {
			fmt.Fprintf(w, "  %-24s %14s %14.0f %9s\n", r.Op, "-", r.NsPerOp, "new")
			continue
		}
		delete(prevByOp, r.Op)
		if r.BlobBytes != 0 || p.BlobBytes != 0 {
			fmt.Fprintf(w, "  %-24s %14d %14d %9s  (blob bytes)\n",
				r.Op, p.BlobBytes, r.BlobBytes, pctDelta(float64(p.BlobBytes), float64(r.BlobBytes)))
			continue
		}
		fmt.Fprintf(w, "  %-24s %14.0f %14.0f %9s  %d -> %d\n",
			r.Op, p.NsPerOp, r.NsPerOp, pctDelta(p.NsPerOp, r.NsPerOp), p.AllocsPerOp, r.AllocsPerOp)
	}
	for _, r := range prev.Records {
		if _, dropped := prevByOp[r.Op]; dropped {
			fmt.Fprintf(w, "  %-24s %14.0f %14s %9s\n", r.Op, r.NsPerOp, "-", "dropped")
		}
	}
}

// RunBenchCheck executes the gate, appends the report to outPath, and
// compares it against the budgets at budgetPath. Progress and the verdict
// go to w. A nil error means every gate passed.
func RunBenchCheck(outPath, budgetPath string, w io.Writer) error {
	// Load budgets first: a missing or malformed budget file must fail in
	// milliseconds, not after the PN15 benchmarks.
	budgets, err := loadBudgets(budgetPath)
	if err != nil {
		return fmt.Errorf("bench-check: %w", err)
	}
	report := BenchReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Backends:  []string{lanes.Portable.Name(), lanes.Fast.Name()},
	}
	add := func(r BenchRecord) {
		report.Records = append(report.Records, r)
		if r.BlobBytes != 0 {
			fmt.Fprintf(w, "  %-22s %12d blob bytes\n", r.Op, r.BlobBytes)
			return
		}
		fmt.Fprintf(w, "  %-22s %14.0f ns/op  %6d allocs/op  %10d B/op\n",
			r.Op, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}

	// --- Client pipeline (Test preset): EncodeEncrypt / DecryptDecode ---
	// Pinned to the fast backend regardless of ABCFHE_BACKEND so the
	// committed budgets gate one configuration, not whatever the CI
	// environment happens to export.
	pTest := ckks.TestParams.MustBuild()
	pTest.SetBackend(lanes.Fast)
	kgT := ckks.NewKeyGenerator(pTest, gateSeed())
	skT, pkT := kgT.GenKeyPair()
	encT := ckks.NewEncoder(pTest)
	encryptorT := ckks.NewEncryptor(pTest, pkT, gateSeed())
	decT := ckks.NewDecryptor(pTest, skT)
	msgT := benchMsg(pTest)
	evT := ckks.NewEvaluator(pTest)

	add(record("EncodeEncrypt", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pt := encT.Encode(msgT)
			encryptorT.Encrypt(pt)
			pTest.PutPlaintext(pt)
		}
	})))

	low := evT.DropLevel(encryptorT.Encrypt(encT.Encode(msgT)), 2)
	out := make([]complex128, pTest.Slots())
	add(record("DecryptDecode", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pt := decT.Decrypt(low)
			encT.DecodeInto(pt, out)
			pTest.PutPlaintext(pt)
		}
	})))

	// --- Rotations (Test preset, max level), both gadgets and backends.
	// Key material and ciphertext bytes are backend-independent, so one
	// key serves both measurements; only the execution strategy flips.
	// The portable run keeps the historical op name for budget continuity;
	// the fast run exercises the fused key-switch pipeline. Each op runs
	// once before its benchmark: ops near or above benchtime report a
	// b.N=1 round, and an unwarmed round would charge the one-time pool
	// population to allocs/op — the budgets gate the steady state.
	ctT := encryptorT.Encrypt(encT.Encode(msgT))
	g1 := pTest.GaloisElement(1)
	rotHy := kgT.GenRotationKeyHybridAt(g1, pTest.MaxLevel())
	pTest.SetBackend(lanes.Portable)
	evT.RotateGalois(ctT, rotHy)
	rotPort := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			evT.RotateGalois(ctT, rotHy)
		}
	})
	add(record("RotateHybrid", rotPort))
	pTest.SetBackend(lanes.Fast)
	evT.RotateGalois(ctT, rotHy)
	rotFused := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			evT.RotateGalois(ctT, rotHy)
		}
	})
	add(record("RotateHybridFused", rotFused))
	rotBV := kgT.GenRotationKeyAt(skT, g1, pTest.MaxLevel())
	add(record("RotateBV", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			evT.RotateGalois(ctT, rotBV)
		}
	})))

	// --- BSGS linear transform vs naive per-diagonal rotation (Test
	// preset, fast backend): the structural claim the blocked baby-step/
	// giant-step schedule exists for. A 12-diagonal band at n1=8 pays one
	// shared hoisted decomposition for all seven baby steps plus one giant
	// key switch, where the naive schedule pays eleven independent
	// rotations. The naive baseline is charged only its rotations — none
	// of the diagonal multiplies — so the comparison is conservative.
	const ltDiags = 12
	diagsLT := map[int][]complex128{}
	for d := 0; d < ltDiags; d++ {
		v := make([]complex128, pTest.Slots())
		for r := range v {
			v[r] = complex(float64((r+3*d)%7)/7-0.5, float64((r+d)%5)/5-0.5)
		}
		diagsLT[d] = v
	}
	ltLevel := 2 * pTest.RescalesPerLevel() // the transform's minimum legal level
	lt := encT.NewLinearTransform(diagsLT, ltLevel, 8)
	naiveSteps := make([]int, 0, ltDiags-1)
	for d := 1; d < ltDiags; d++ {
		naiveSteps = append(naiveSteps, d)
	}
	ksLT := kgT.GenEvaluationKeySet(skT, ltLevel,
		append(append([]int{}, lt.Rotations()...), naiveSteps...), false, ckks.GadgetHybrid)
	ctLT := evT.DropLevel(encryptorT.Encrypt(encT.Encode(msgT)), ltLevel)
	evT.LinearTransform(ctLT, lt, ksLT.Rot)
	bsgsBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			evT.LinearTransform(ctLT, lt, ksLT.Rot)
		}
	})
	add(record("LinearTransformBSGS", bsgsBench))
	for _, d := range naiveSteps {
		evT.RotateGalois(ctLT, ksLT.Rot[d])
	}
	naiveBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, d := range naiveSteps {
				evT.RotateGalois(ctLT, ksLT.Rot[d])
			}
		}
	})
	add(record("LinearTransformNaive", naiveBench))

	// --- The headline: MulRelin at max level on PN15 — hybrid under both
	// backends (staged portable vs fused fast), then BV as the baseline ---
	p15 := ckks.PN15.MustBuild()
	p15.SetBackend(lanes.Fast)
	kg15 := ckks.NewKeyGenerator(p15, gateSeed())
	sk15, pk15 := kg15.GenKeyPair()
	enc15 := ckks.NewEncoder(p15)
	encryptor15 := ckks.NewEncryptor(p15, pk15, gateSeed())
	ev15 := ckks.NewEvaluator(p15)
	msg15 := benchMsg(p15)
	ct15 := encryptor15.Encrypt(enc15.Encode(msg15))

	// The PN15 hoisted rotation first — the op the fused pipeline's hoist
	// stage exists for, at a geometry where kernel time (not dispatch
	// overhead) dominates.
	fmt.Fprintln(w, "generating PN15 hybrid rotation key (max depth)…")
	rot15 := kg15.GenRotationKeyHybridAt(p15.GaloisElement(1), p15.MaxLevel())
	p15.SetBackend(lanes.Portable)
	ev15.RotateGalois(ct15, rot15)
	rot15Port := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev15.RotateGalois(ct15, rot15)
		}
	})
	add(record("RotateHybridPN15", rot15Port))
	p15.SetBackend(lanes.Fast)
	ev15.RotateGalois(ct15, rot15)
	rot15Fused := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev15.RotateGalois(ct15, rot15)
		}
	})
	add(record("RotateHybridFusedPN15", rot15Fused))
	rot15 = nil
	runtime.GC()

	// --- CoeffsToSlots at paper scale: the factored homomorphic DFT over
	// the hoisted BSGS path (PN15, StartLevel 10, two butterfly groups per
	// direction — the same schedule the round-trip precision test pins).
	fmt.Fprintln(w, "generating PN15 DFT rotation ladder (hybrid, depth 10)…")
	dft15 := enc15.NewHomomorphicDFT(ckks.HomomorphicDFTConfig{StartLevel: 10, Levels: 2})
	ks15 := kg15.GenEvaluationKeySet(sk15, 10, dft15.Rotations(), true, ckks.GadgetHybrid)
	ct10 := ev15.DropLevel(ct15, 10)
	ev15.CoeffsToSlots(ct10, dft15, ks15.Rot, ks15.Conj)
	c2sBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev15.CoeffsToSlots(ct10, dft15, ks15.Rot, ks15.Conj)
		}
	})
	add(record("CoeffsToSlotsPN15", c2sBench))
	ks15 = nil
	runtime.GC()

	fmt.Fprintln(w, "generating PN15 hybrid relinearization key (max depth)…")
	rlkHy := kg15.GenRelinearizationKeyHybridAt(p15.MaxLevel())
	p15.SetBackend(lanes.Portable)
	ev15.MulRelin(ct15, ct15, rlkHy)
	hyPortBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev15.MulRelin(ct15, ct15, rlkHy)
		}
	})
	add(record("MulRelinHybridPN15", hyPortBench))
	p15.SetBackend(lanes.Fast)
	ev15.MulRelin(ct15, ct15, rlkHy)
	hyFusedBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev15.MulRelin(ct15, ct15, rlkHy)
		}
	})
	add(record("MulRelinHybridPN15Fused", hyFusedBench))

	// --- Polynomial evaluation at paper scale (fast backend, reusing the
	// max-depth relinearization key): the BSGS Chebyshev schedule on a
	// generic degree-7 polynomial at its minimum level, and the degree-15
	// sine-surrogate EvalMod at level 15 — the bootstrap's post-
	// CoeffsToSlots stage the round-trip precision test pins.
	mono7 := make([]complex128, 8)
	for i := range mono7 {
		mono7[i] = complex(1/float64(i+1), 0)
	}
	plan7 := p15.NewEvalPolyPlan(mono7, -1, 1, 0)
	ct7 := ev15.DropLevel(ct15, plan7.Level())
	ev15.EvalPoly(ct7, plan7, rlkHy)
	add(record("EvalPolyPN15", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev15.EvalPoly(ct7, plan7, rlkHy)
		}
	})))
	const modRange = 8.0
	sinCoeffs := fftfp.SinTaylorCoeffs(15)
	monoMod := make([]complex128, len(sinCoeffs))
	pw := modRange / (2 * math.Pi) // default Scaling
	for k, sk := range sinCoeffs {
		monoMod[k] = complex(sk*pw, 0)
		pw *= 2 * math.Pi / modRange
	}
	planMod := p15.NewEvalPolyPlan(monoMod, -modRange, modRange, 15)
	ctMod := ev15.DropLevel(ct15, planMod.Level())
	ev15.EvalPoly(ctMod, planMod, rlkHy)
	add(record("EvalModPN15", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev15.EvalPoly(ctMod, planMod, rlkHy)
		}
	})))

	rlkHy = nil
	runtime.GC()

	fmt.Fprintln(w, "generating PN15 BV relinearization key (max depth — quadratic gadget: slow, ~1.5 GB)…")
	rlkBV := kg15.GenRelinearizationKeyAt(sk15, p15.MaxLevel())
	bvBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev15.MulRelin(ct15, ct15, rlkBV)
		}
	})
	add(record("MulRelinBVPN15", bvBench))
	rlkBV = nil
	runtime.GC()

	// --- Evaluation-key blob sizes (PN15, same depth/rotations) ---
	depth := p15.MaxLevel()
	const rotCount = 3
	hyBlob := int64(p15.EvaluationKeyWireBytes(depth, rotCount, false, ckks.GadgetHybrid))
	bvBlob := int64(p15.EvaluationKeyWireBytes(depth, rotCount, false, ckks.GadgetBV))
	add(BenchRecord{Op: "EvkBlobHybridPN15", BlobBytes: hyBlob})
	add(BenchRecord{Op: "EvkBlobBVPN15", BlobBytes: bvBlob})

	// --- Delta vs the previous trajectory entry, then append ---
	// The baseline must be read before appendReport rewrites the file.
	if prev, ok := lastReport(outPath); ok {
		writeDeltaTable(w, prev, report)
	}
	if err := appendReport(outPath, report); err != nil {
		return err
	}
	fmt.Fprintf(w, "report appended -> %s\n", outPath)

	// --- Relative gates ---
	var failures []string
	if hyFusedBench.NsPerOp() >= bvBench.NsPerOp() {
		failures = append(failures, fmt.Sprintf(
			"hybrid MulRelin (%d ns/op) does not beat BV (%d ns/op) at max level on PN15",
			hyFusedBench.NsPerOp(), bvBench.NsPerOp()))
	}
	if hyFusedBench.NsPerOp() >= hyPortBench.NsPerOp() {
		failures = append(failures, fmt.Sprintf(
			"fused MulRelin on the fast backend (%d ns/op) does not beat the portable staged path (%d ns/op)",
			hyFusedBench.NsPerOp(), hyPortBench.NsPerOp()))
	}
	if rotFused.NsPerOp() >= rotPort.NsPerOp() {
		failures = append(failures, fmt.Sprintf(
			"fused Rotate on the fast backend (%d ns/op) does not beat the portable staged path (%d ns/op)",
			rotFused.NsPerOp(), rotPort.NsPerOp()))
	}
	if rot15Fused.NsPerOp() >= rot15Port.NsPerOp() {
		failures = append(failures, fmt.Sprintf(
			"fused Rotate on the fast backend (%d ns/op) does not beat the portable staged path (%d ns/op) on PN15",
			rot15Fused.NsPerOp(), rot15Port.NsPerOp()))
	}
	if hyBlob >= bvBlob {
		failures = append(failures, fmt.Sprintf(
			"hybrid evk blob (%d B) not smaller than BV (%d B) for the same depth/rotations", hyBlob, bvBlob))
	}
	if bsgsBench.NsPerOp() >= naiveBench.NsPerOp() {
		failures = append(failures, fmt.Sprintf(
			"BSGS linear transform (%d ns/op) does not beat naive per-diagonal rotations (%d ns/op)",
			bsgsBench.NsPerOp(), naiveBench.NsPerOp()))
	}

	// --- Budget gates ---
	failures = append(failures, budgetFailures(report, budgets)...)

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(w, "FAIL:", f)
		}
		return fmt.Errorf("bench-check: %d gate(s) failed", len(failures))
	}
	fmt.Fprintln(w, "bench-check: all gates passed")
	return nil
}
