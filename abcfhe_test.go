// Compatibility tests for the deprecated Client facade: the v0 surface
// must keep working (and keep its panic-on-misuse semantics) on top of
// the role-separated implementation. Role-level coverage lives in
// roles_test.go / errors_test.go.

package abcfhe

import (
	"math/cmplx"
	"testing"
)

func TestClientRoundTrip(t *testing.T) {
	c, err := NewClient(Test, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]complex128, c.Slots())
	for i := range msg {
		msg[i] = complex(float64(i%7)/7-0.5, float64(i%11)/11-0.5)
	}
	ct := c.EncodeEncrypt(msg)
	if ct.Level != c.MaxLevel() {
		t.Fatal("fresh ciphertext must be at full depth")
	}
	got := c.DecryptDecode(ct)
	for i := range msg {
		if cmplx.Abs(got[i]-msg[i]) > 1e-4 {
			t.Fatalf("slot %d error %g", i, cmplx.Abs(got[i]-msg[i]))
		}
	}
}

func TestClientServerFlow(t *testing.T) {
	// The paper's deployment: client encrypts at full depth, server
	// computes and returns a 2-limb ciphertext, client decrypts it.
	c, err := NewClient(Test, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]complex128, c.Slots())
	for i := range msg {
		msg[i] = complex(0.25, -0.125)
	}
	ct := c.EncodeEncrypt(msg)
	ev := c.Evaluator()
	doubled := ev.Add(ct, ct)         // server-side work
	small := ev.DropLevel(doubled, 2) // server returns 2-limb state
	got := c.DecryptDecode(small)
	for i := range got {
		if cmplx.Abs(got[i]-complex(0.5, -0.25)) > 1e-4 {
			t.Fatalf("slot %d: %v", i, got[i])
		}
	}
}

func TestUnknownPreset(t *testing.T) {
	if _, err := NewClient(Preset("bogus"), 0, 0); err == nil {
		t.Fatal("unknown preset must error")
	}
}

// TestClientFacadePanicsOnMisuse pins the v0 contract: where the role
// types return typed errors, the deprecated facade panics.
func TestClientFacadePanicsOnMisuse(t *testing.T) {
	c, err := NewClient(Test, 15, 16)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: facade misuse must panic", name)
			}
		}()
		f()
	}
	mustPanic("EncodeEncrypt too long", func() {
		c.EncodeEncrypt(make([]complex128, c.Slots()+1))
	})
	mustPanic("DecryptDecode nil", func() {
		c.DecryptDecode(nil)
	})
	mustPanic("BatchInto mis-sized", func() {
		ct := c.EncodeEncrypt([]complex128{0.5})
		c.DecryptDecodeBatchInto([]*Ciphertext{ct}, make([][]complex128, 2))
	})
}

func TestAcceleratorSummary(t *testing.T) {
	a := NewAccelerator()
	s := a.Summarize()
	if s.AreaMM2 < 25 || s.AreaMM2 > 32 {
		t.Fatalf("area %.2f mm² far from Table II's 28.638", s.AreaMM2)
	}
	if s.PowerW < 4.5 || s.PowerW > 7 {
		t.Fatalf("power %.2f W far from Table II's 5.654", s.PowerW)
	}
	if s.EncMS <= 0 || s.DecMS <= 0 || s.DecMS > s.EncMS {
		t.Fatalf("latency ordering wrong: enc %.4f dec %.4f", s.EncMS, s.DecMS)
	}
	if s.EncMOPs < 25 || s.EncMOPs > 29 {
		t.Fatalf("enc MOPs %.1f far from paper's 27.0", s.EncMOPs)
	}
	// Reconfiguration helpers return modified copies.
	if NewAccelerator().WithLanes(4).EncodeEncryptMS() <= a.EncodeEncryptMS() {
		t.Fatal("fewer lanes must not be faster")
	}
	if NewAccelerator().WithDegree(14).EncodeEncryptMS() >= a.EncodeEncryptMS() {
		t.Fatal("smaller degree must be faster")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) != 16 {
		t.Fatalf("expected 16 experiments, have %v", ids)
	}
	out, err := RunExperiment("table1", true)
	if err != nil || out == "" {
		t.Fatalf("table1: %v", err)
	}
	if _, err := RunExperiment("nope", true); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestSerializationAPI(t *testing.T) {
	c, err := NewClient(Test, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]complex128, 8)
	for i := range msg {
		msg[i] = complex(0.1*float64(i), -0.05*float64(i))
	}
	ct := c.EncodeEncrypt(msg)
	data, err := c.SerializeCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != c.CiphertextWireBytes(ct.Level) {
		t.Fatalf("wire size %d != reported %d", len(data), c.CiphertextWireBytes(ct.Level))
	}
	back, err := c.DeserializeCiphertext(data)
	if err != nil {
		t.Fatal(err)
	}
	got := c.DecryptDecode(back)
	for i := range msg {
		if cmplx.Abs(got[i]-msg[i]) > 1e-4 {
			t.Fatalf("slot %d after wire round trip: %v", i, got[i])
		}
	}
}

func TestCompressedUploadAPI(t *testing.T) {
	c, err := NewClient(Test, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]complex128, c.Slots())
	for i := range msg {
		msg[i] = complex(0.25, -0.25)
	}
	data, err := c.EncodeEncryptCompressed(msg)
	if err != nil {
		t.Fatal(err)
	}
	full := c.CiphertextWireBytes(c.MaxLevel())
	if float64(len(data)) > 0.52*float64(full) {
		t.Fatalf("compressed upload %d bytes not ≈half of %d", len(data), full)
	}
	if len(data) != c.CompressedWireBytes(c.MaxLevel()) {
		t.Fatal("compressed size does not match the reported wire size")
	}
	ct, err := c.ExpandCompressedUpload(data)
	if err != nil {
		t.Fatal(err)
	}
	got := c.DecryptDecode(ct)
	for i := range msg {
		if cmplx.Abs(got[i]-msg[i]) > 1e-4 {
			t.Fatalf("slot %d after compressed round trip: %v", i, got[i])
		}
	}
}
