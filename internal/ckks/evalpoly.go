package ckks

import (
	"math"
	"math/bits"
	"math/cmplx"

	"repro/internal/ring"
)

// Homomorphic polynomial evaluation in the Chebyshev basis with a
// baby-step/giant-step schedule — the nonlinear stage a bootstrap's
// EvalMod needs, and independently useful for sigmoid/comparison
// workloads. The input is first mapped from its interval [lo, hi] onto
// [-1, 1] (one constant multiplication, fused with the jump to the
// working scale W = 2^(rescales·LimbBits)); the Chebyshev power basis
// T_1 … T_{g−1}, T_g, T_2g, …, T_{2^{k−1}g} is then built with the
// product identity T_{a+b} = 2·T_a·T_b − T_{|a−b|}, and the coefficient
// vector is evaluated by recursive division p = q·T_gs + r — ≈√d
// relinearized ct×ct products, log-depth in the degree.
//
// Scale bookkeeping is exact: every node of the recursion is assigned a
// target (level, scale) pair top-down, and the plaintext constants are
// encoded at whatever float64 scale makes the products land on the
// target after rescaling — so additions always see operand scales equal
// to within float64 rounding (≪ the evaluator's 1e-12 tolerance), and
// no precision is lost to scale mismatches.

// ---------------------------------------------------------------------
// Coefficient layer: monomial → Chebyshev, division by T_gs
// ---------------------------------------------------------------------

// ChebyshevCoeffs converts monomial coefficients (mono[i] multiplies x^i)
// into coefficients over the Chebyshev basis of [lo, hi]:
// p(x) = Σ out[i]·T_i(u) with u = (2x − hi − lo)/(hi − lo). O(d²) —
// the expansion of x^k is maintained incrementally via
// x·T_i = a·(T_{i+1} + T_{|i−1|})/2 + b·T_i where x = a·T_1 + b·T_0.
func ChebyshevCoeffs(mono []complex128, lo, hi float64) []complex128 {
	a := complex((hi-lo)/2, 0)
	b := complex((hi+lo)/2, 0)
	out := make([]complex128, len(mono))
	xp := make([]complex128, 1, len(mono)) // Chebyshev expansion of x^k
	xp[0] = 1
	for k, cf := range mono {
		if k > 0 {
			nxt := make([]complex128, k+1)
			for i, ci := range xp {
				nxt[i] += b * ci
				nxt[i+1] += a * ci / 2
				j := i - 1
				if j < 0 {
					j = -j
				}
				nxt[j] += a * ci / 2
			}
			xp = nxt
		}
		if cf != 0 {
			for i, v := range xp {
				out[i] += cf * v
			}
		}
	}
	return out
}

// chebSplit divides p (Chebyshev coefficients c, with gs ≤ deg < 2·gs)
// by T_gs: p = q·T_gs + rem, via T_gs·T_i = (T_{gs+i} + T_{gs−i})/2.
func chebSplit(c []complex128, gs int) (q, rem []complex128) {
	d := len(c) - 1
	q = make([]complex128, d-gs+1)
	rem = make([]complex128, gs)
	copy(rem, c[:gs])
	q[0] = c[gs]
	for i := 1; i <= d-gs; i++ {
		q[i] = 2 * c[gs+i]
		rem[gs-i] -= c[gs+i]
	}
	return q, rem
}

// ---------------------------------------------------------------------
// Schedule: baby block size, giant count, depth and level floors
// ---------------------------------------------------------------------

func ceilLog2(n int) int {
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	return k
}

// preferredBabySpan is the ≈√(degree+1) baby block, rounded up to a
// power of two — the multiplication-count-optimal choice.
func preferredBabySpan(degree int) int {
	return 1 << uint((ceilLog2(degree+1)+1)/2)
}

// babyGiantLevels returns the giant-doubling count k for baby block g
// and the multiply-rescale stages the full evaluation consumes: the
// interval normalization, one per giant-step product along the quotient
// chain, the leaf's plaintext products, and (for g > 2) the baby-step
// ladder depth the deepest leaf sits under.
func babyGiantLevels(degree, g int) (k, levels int) {
	for gs := g; gs <= degree; gs <<= 1 {
		k++
	}
	levels = k + 2
	if g > 2 {
		levels += ceilLog2(g - 1)
	}
	return k, levels
}

// EvalPolyDepth returns the limbs EvalPoly consumes for a polynomial of
// the given degree at the preferred (≈√degree baby block) schedule;
// rescales is the preset's RescalesPerLevel. A plan built against a
// shallower level may pick a narrower baby block — trading extra ct×ct
// products for depth — so treat this as the depth of the default plan,
// and EvalPolyPlan.Depth as the committed value.
func EvalPolyDepth(degree, rescales int) int {
	if degree < 1 {
		return 0
	}
	_, levels := babyGiantLevels(degree, preferredBabySpan(degree))
	return rescales * levels
}

// EvalPolyMinLevel is the lowest input level a degree-`degree` plan can
// consume at: its depth plus the rescales+1 output floor (below that the
// remaining modulus no longer covers the working scale).
func EvalPolyMinLevel(degree, rescales int) int {
	if degree < 1 {
		return 0
	}
	return EvalPolyDepth(degree, rescales) + rescales + 1
}

// EvalPolyLevelFloor is the absolute lowest feasible input level for the
// degree across every baby block: the depth-optimal g = 2 schedule
// (narrower blocks trade extra ct×ct products for depth, so levels(g) is
// non-decreasing in g). EvalPolyMinLevel is the preferred schedule's —
// possibly deeper — floor.
func EvalPolyLevelFloor(degree, rescales int) int {
	if degree < 1 {
		return 0
	}
	_, levels := babyGiantLevels(degree, 2)
	return rescales*levels + rescales + 1
}

// EvalPolyPlan is a precomputed BSGS evaluation schedule: the Chebyshev
// coefficients over [lo, hi], the baby/giant split, and the input level
// it consumes at. Build with Parameters.NewEvalPolyPlan; immutable and
// safe to share across goroutines.
type EvalPolyPlan struct {
	cheb     []complex128
	lo, hi   float64
	level    int
	rescales int
	g, k     int // baby block (power of two ≥ 2), giant doublings
}

// Degree is the (trailing-zero-trimmed) polynomial degree.
func (p *EvalPolyPlan) Degree() int { return len(p.cheb) - 1 }

// Level is the input level the plan consumes ciphertexts at.
func (p *EvalPolyPlan) Level() int { return p.level }

// Depth is the number of limbs consumed: the output lands at
// Level() − Depth() at ≈ the working scale 2^(rescales·LimbBits).
func (p *EvalPolyPlan) Depth() int {
	_, levels := babyGiantLevels(p.Degree(), p.g)
	return p.rescales * levels
}

// KeyLevel is the highest level a relinearized product runs at (the
// first baby-step squaring) — the evaluation-key set must cover it.
func (p *EvalPolyPlan) KeyLevel() int { return p.level - p.rescales }

// BabySpan is the baby block size g the plan committed to.
func (p *EvalPolyPlan) BabySpan() int { return p.g }

// Interval returns the approximation interval the coefficients were
// rescaled to.
func (p *EvalPolyPlan) Interval() (lo, hi float64) { return p.lo, p.hi }

// MaxChebAbs is the largest |coefficient| of the Chebyshev form — the
// magnitude the public layer bounds (the interval remap can amplify
// coefficients by (width/2)^degree) before committing to a plan.
func (p *EvalPolyPlan) MaxChebAbs() float64 {
	m := 0.0
	for _, c := range p.cheb {
		if a := cmplx.Abs(c); a > m {
			m = a
		}
	}
	return m
}

// NewEvalPolyPlan builds the schedule for the polynomial with monomial
// coefficients mono (mono[i] multiplies x^i) over [lo, hi], consuming
// its input at `level` (0 = the minimum feasible level). The baby block
// starts at the preferred ≈√degree span and halves until the schedule
// fits the level; internal misuse (degenerate polynomial, bad interval,
// infeasible level) panics — the public Server surface validates first.
func (p *Parameters) NewEvalPolyPlan(mono []complex128, lo, hi float64, level int) *EvalPolyPlan {
	d := len(mono) - 1
	for d > 0 && mono[d] == 0 {
		d--
	}
	if d < 1 {
		panic("ckks: EvalPoly needs a polynomial of degree ≥ 1")
	}
	if !(hi > lo) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		panic("ckks: EvalPoly interval must be finite with lo < hi")
	}
	r := p.RescalesPerLevel()
	budget := level
	if budget == 0 {
		budget = p.MaxLevel()
	}
	if budget > p.MaxLevel() {
		panic("ckks: EvalPoly level exceeds the parameter depth")
	}
	var g, k int
	fits := false
	for g = preferredBabySpan(d); g >= 2; g >>= 1 {
		var levels int
		k, levels = babyGiantLevels(d, g)
		if r*levels+r+1 <= budget {
			fits = true
			break
		}
	}
	if !fits {
		panic("ckks: EvalPoly degree needs more levels than available")
	}
	if level == 0 {
		_, levels := babyGiantLevels(d, g)
		level = r*levels + r + 1
	}
	return &EvalPolyPlan{
		cheb:     ChebyshevCoeffs(mono[:d+1], lo, hi),
		lo:       lo,
		hi:       hi,
		level:    level,
		rescales: r,
		g:        g,
		k:        k,
	}
}

// ---------------------------------------------------------------------
// Constant plaintexts at arbitrary float64 scales
// ---------------------------------------------------------------------

// encodeConstInto adds round(v·scale) into coefficient j of every limb
// row. The mantissa/exponent split mirrors Encoder.encodeCoeff, but the
// scale is a float64 rather than a power-of-two log — the exactness the
// BSGS schedule's per-node target scales need.
func encodeConstInto(rl *ring.Ring, limbs [][]uint64, j int, v, scale float64) {
	if v == 0 {
		return
	}
	neg := math.Signbit(v)
	frV, expV := math.Frexp(math.Abs(v))
	frS, expS := math.Frexp(scale)
	fr, expM := math.Frexp(frV * frS)
	m := uint64(math.Round(fr * (1 << 53)))
	e := expV + expS + expM - 53
	if e < 0 {
		sh := uint(-e)
		if sh > 54 {
			return
		}
		m = (m + 1<<(sh-1)) >> sh
		e = 0
		if m == 0 {
			return
		}
	}
	for i := range limbs {
		mm := rl.Basis.Moduli[i]
		res := mm.Mul(m%mm.Q, mm.Pow(2, uint64(e)))
		if neg {
			res = mm.Neg(res)
		}
		limbs[i][j] = mm.Add(limbs[i][j], res)
	}
}

// constPlain builds the plaintext encoding the constant v in every slot
// at (level, scale): coefficient 0 carries the real part and coefficient
// N/2 the imaginary part (X^{N/2} evaluates to i at every slot root —
// see MulByI).
func (ev *Evaluator) constPlain(v complex128, level int, scale float64) *Plaintext {
	rl := ev.ringAt(level)
	pt := &Plaintext{Value: rl.NewPoly(), Level: level, Scale: scale}
	encodeConstInto(rl, pt.Value.Coeffs, 0, real(v), scale)
	encodeConstInto(rl, pt.Value.Coeffs, rl.N/2, imag(v), scale)
	return pt
}

// addConstInto adds the constant v — encoded at the ciphertext's own
// scale — directly into ct's body half. Mutates ct: callers only pass
// freshly allocated results, never DropLevel views.
func (ev *Evaluator) addConstInto(ct *Ciphertext, v complex128) {
	rl := ev.ringAt(ct.Level)
	encodeConstInto(rl, ct.C0.Coeffs, 0, real(v), ct.Scale)
	encodeConstInto(rl, ct.C0.Coeffs, rl.N/2, imag(v), ct.Scale)
}

// ---------------------------------------------------------------------
// Scale/level plumbing
// ---------------------------------------------------------------------

// rescaleDivisor is the float64 the scale gets divided by when rescaling
// n times starting from `level` — the product of the dropped primes.
func (ev *Evaluator) rescaleDivisor(level, n int) float64 {
	d := 1.0
	for i := 0; i < n; i++ {
		d *= float64(ev.params.Ring().Basis.Moduli[level-1-i].Q)
	}
	return d
}

func (ev *Evaluator) rescaleN(ct *Ciphertext, n int) *Ciphertext {
	for i := 0; i < n; i++ {
		ct = ev.Rescale(ct)
	}
	return ct
}

// scaleAlign returns ct at exactly (level, scale): spare limbs are
// dropped, then one constant-1 plaintext product spends `rescales` limbs
// to land the scale precisely on the target — how a stored Chebyshev
// power (one ladder rung higher, scale off by the squaring drift) is
// brought alongside a product it must be subtracted from.
func (ev *Evaluator) scaleAlign(ct *Ciphertext, level int, scale float64, rescales int) *Ciphertext {
	mid := level + rescales
	if ct.Level > mid {
		ct = ev.DropLevel(ct, mid)
	}
	pt := ev.constPlain(1, mid, scale*ev.rescaleDivisor(mid, rescales)/ct.Scale)
	return ev.rescaleN(ev.MulPlain(ct, pt), rescales)
}

// ---------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------

type polyEvalState struct {
	ev  *Evaluator
	pl  *EvalPolyPlan
	rlk *RelinearizationKey
	pw  map[int]*Ciphertext // Chebyshev power basis T_n(u)
}

// EvalPoly evaluates the planned polynomial on ct, which must sit at
// exactly plan.Level() (DropLevel first — the public Server does). The
// output lands Depth() limbs lower at ≈ the working scale. rlk must
// cover plan.KeyLevel().
func (ev *Evaluator) EvalPoly(ct *Ciphertext, plan *EvalPolyPlan, rlk *RelinearizationKey) *Ciphertext {
	if ct.Level != plan.level {
		panic("ckks: ciphertext level does not match the EvalPoly plan")
	}
	r := plan.rescales
	w := math.Exp2(float64(r * ev.params.LimbBits))

	// u = αx + β ∈ [-1, 1], fused with the jump to the working scale W:
	// one constant product, the β added before the closing rescales.
	alpha := 2 / (plan.hi - plan.lo)
	beta := -(plan.hi + plan.lo) / (plan.hi - plan.lo)
	pt := ev.constPlain(complex(alpha, 0), plan.level, w*ev.rescaleDivisor(plan.level, r)/ct.Scale)
	u := ev.MulPlain(ct, pt)
	ev.addConstInto(u, complex(beta, 0))
	u = ev.rescaleN(u, r)

	st := &polyEvalState{ev: ev, pl: plan, rlk: rlk, pw: map[int]*Ciphertext{1: u}}
	for i := 2; i < plan.g; i++ {
		st.power(i)
	}
	for t := 0; t < plan.k; t++ {
		st.power(plan.g << uint(t))
	}
	return st.eval(plan.cheb, plan.level-plan.Depth(), w)
}

// power returns T_n(u), generating it (and its dependencies) on first
// use. Powers of two use T_{2m} = 2·T_m² − 1 — only a constant is
// subtracted, so no ciphertext alignment is needed; other indices use
// T_{a+b} = 2·T_a·T_b − T_{a−b} with a the top set bit, where the
// subtracted lower-order power is scale-aligned to the product (it sits
// a ladder rung higher, so the alignment costs no extra depth).
func (st *polyEvalState) power(n int) *Ciphertext {
	if ct, ok := st.pw[n]; ok {
		return ct
	}
	ev, r := st.ev, st.pl.rescales
	var out *Ciphertext
	if n&(n-1) == 0 {
		h := st.power(n / 2)
		out = ev.mulRelinUnchecked(h, h, st.rlk)
		out = ev.Add(out, out)
		ev.addConstInto(out, -1)
		out = ev.rescaleN(out, r)
	} else {
		a := 1 << uint(bits.Len(uint(n))-1)
		b := n - a
		ta, tb := st.power(a), st.power(b)
		lv := min(ta.Level, tb.Level)
		prod := ev.mulRelinUnchecked(ev.DropLevel(ta, lv), ev.DropLevel(tb, lv), st.rlk)
		prod = ev.Add(prod, prod)
		prod = ev.rescaleN(prod, r)
		sub := ev.scaleAlign(st.power(a-b), prod.Level, prod.Scale, r)
		out = ev.Sub(prod, sub)
	}
	st.pw[n] = out
	return out
}

// eval computes Σ c[i]·T_i(u) into the target (level, scale) by
// recursive division: the quotient branch is evaluated one level higher
// at scale S·q/S_giant so the giant-step product rescales onto the
// target; the remainder branch lands on the product's actual scale.
func (st *polyEvalState) eval(c []complex128, level int, scale float64) *Ciphertext {
	for len(c) > 1 && c[len(c)-1] == 0 {
		c = c[:len(c)-1]
	}
	if len(c) <= st.pl.g {
		return st.leaf(c, level, scale)
	}
	ev, r := st.ev, st.pl.rescales
	deg := len(c) - 1
	gs := st.pl.g
	for gs<<1 <= deg {
		gs <<= 1
	}
	q, rem := chebSplit(c, gs)
	mid := level + r
	div := ev.rescaleDivisor(mid, r)
	tg := ev.DropLevel(st.pw[gs], mid)
	var out *Ciphertext
	if len(q) == 1 {
		// Degree-0 quotient: one plaintext product with the giant.
		out = ev.MulPlain(tg, ev.constPlain(q[0], mid, scale*div/tg.Scale))
	} else {
		qct := st.eval(q, mid, scale*div/tg.Scale)
		out = ev.mulRelinUnchecked(qct, tg, st.rlk)
	}
	out = ev.rescaleN(out, r)
	for _, cf := range rem {
		if cf != 0 {
			out = ev.Add(out, st.eval(rem, level, out.Scale))
			break
		}
	}
	return out
}

// leaf evaluates a sub-baby-span coefficient slice as plaintext products
// against the power basis: every term's constant is encoded at the scale
// that makes its product land on the shared accumulation scale, one
// closing batch of rescales, and the degree-0 term added in directly.
func (st *polyEvalState) leaf(c []complex128, level int, scale float64) *Ciphertext {
	ev, r := st.ev, st.pl.rescales
	mid := level + r
	div := ev.rescaleDivisor(mid, r)
	var acc *Ciphertext
	for i := 1; i < len(c); i++ {
		if c[i] == 0 {
			continue
		}
		ti := ev.DropLevel(st.pw[i], mid)
		term := ev.MulPlain(ti, ev.constPlain(c[i], mid, scale*div/ti.Scale))
		if acc == nil {
			acc = term
		} else {
			acc = ev.Add(acc, term)
		}
	}
	if acc == nil {
		rl := ev.ringAt(level)
		acc = &Ciphertext{C0: rl.NewPoly(), C1: rl.NewPoly(), Level: level, Scale: scale}
	} else {
		acc = ev.rescaleN(acc, r)
	}
	if c[0] != 0 {
		ev.addConstInto(acc, c[0])
	}
	return acc
}
