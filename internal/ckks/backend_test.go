package ckks

// Backend-seam tests: the portable and fast backends must produce
// byte-identical ciphertexts for every operation (the lanes.Backend
// contract), and the fused hybrid key-switch pipeline must match the
// staged path exactly — fused vs staged under one backend isolates the
// fusion, portable vs fast over whole ops covers the kernels.

import (
	"testing"

	"repro/internal/lanes"
	"repro/internal/prng"
	"repro/internal/ring"
)

// backendPair builds two identical parameter sets bound to the portable
// and fast backends.
func backendPair() (pPort, pFast *Parameters) {
	pPort = TestParams.MustBuild()
	pPort.SetBackend(lanes.Portable)
	pFast = TestParams.MustBuild()
	pFast.SetBackend(lanes.Fast)
	return pPort, pFast
}

func requireSameCT(t *testing.T, r *ring.Ring, what string, a, b *Ciphertext) {
	t.Helper()
	if a.Level != b.Level || a.Scale != b.Scale {
		t.Fatalf("%s: level/scale diverge across backends", what)
	}
	if !r.Equal(a.C0, b.C0) || !r.Equal(a.C1, b.C1) {
		t.Fatalf("%s: ciphertext bytes diverge across backends", what)
	}
}

// TestBackendEquivalence: the full client+server pipeline — encrypt,
// hybrid MulRelin (fused on fast), hybrid rotation (fused), hoisted
// rotations, BV rotation, rescale — is byte-identical across backends.
func TestBackendEquivalence(t *testing.T) {
	pPort, pFast := backendPair()
	msg1 := randMsg(pPort, 0, 301)
	msg2 := randMsg(pPort, 0, 302)

	type run struct {
		enc, mul, rotHy, rotBV, hoist0, hoist1 *Ciphertext
	}
	exec := func(p *Parameters) run {
		kg := NewKeyGenerator(p, testSeed())
		sk, pk := kg.GenKeyPair()
		enc := NewEncoder(p)
		encryptor := NewEncryptor(p, pk, testSeed())
		ev := NewEvaluator(p)
		ct1 := encryptor.Encrypt(enc.Encode(msg1))
		ct2 := encryptor.Encrypt(enc.Encode(msg2))

		rlk := kg.GenRelinearizationKeyHybridAt(p.MaxLevel())
		mul := ev.Rescale(ev.MulRelin(ct1, ct2, rlk))

		rkHy := kg.GenRotationKeyHybridAt(p.GaloisElement(3), p.MaxLevel())
		rkHy2 := kg.GenRotationKeyHybridAt(p.GaloisElement(5), p.MaxLevel())
		rkBV := kg.GenRotationKeyAt(sk, p.GaloisElement(3), p.MaxLevel())
		hoisted := ev.RotateHoisted(ct1, []*RotationKey{rkHy, rkHy2})
		return run{
			enc:    ct1,
			mul:    mul,
			rotHy:  ev.RotateGalois(ct1, rkHy),
			rotBV:  ev.RotateGalois(ct1, rkBV),
			hoist0: hoisted[0],
			hoist1: hoisted[1],
		}
	}
	a, b := exec(pPort), exec(pFast)
	r := pPort.Ring()
	requireSameCT(t, r, "encrypt", a.enc, b.enc)
	requireSameCT(t, r, "hybrid MulRelin+Rescale", a.mul, b.mul)
	requireSameCT(t, r, "hybrid RotateGalois", a.rotHy, b.rotHy)
	requireSameCT(t, r, "BV RotateGalois", a.rotBV, b.rotBV)
	requireSameCT(t, r, "hoisted rotation[0]", a.hoist0, b.hoist0)
	requireSameCT(t, r, "hoisted rotation[1]", a.hoist1, b.hoist1)
}

// stagedSwitch runs the pre-fusion pipeline explicitly (hoist → apply →
// closing INTTs), regardless of the ring's backend.
func stagedSwitch(p *Parameters, c *ring.Poly, level int, ksk *SwitchingKey, perm []int32) (*ring.Poly, *ring.Poly) {
	rl := p.RingAt(level)
	out0 := rl.NewPoly()
	out1 := rl.NewPoly()
	out0.IsNTT, out1.IsNTT = true, true
	h := p.hoistHybrid(c, level)
	p.applyHybridInto(h, ksk, perm, out0, out1)
	p.releaseDigits(h)
	rl.INTT(out0)
	rl.INTT(out1)
	return out0, out1
}

// TestFusedMatchesStaged: switchHybridFused equals the staged pipeline
// byte for byte — full depth and a level with a short last group, with
// and without a hoisting permutation, against a depth-capped key (the
// km key-row mapping) and a full-depth one.
func TestFusedMatchesStaged(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	rlkFull := kg.GenRelinearizationKeyHybridAt(p.MaxLevel())
	perm := p.Ring().GaloisPermNTT(p.GaloisElement(1))

	for _, level := range []int{p.MaxLevel(), 3} { // 3 % α=2 ≠ 0: short group
		rl := p.RingAt(level)
		c := rl.NewPoly()
		rl.UniformPoly(prng.NewSource(testSeed(), 9000+uint64(level)), c)
		for _, tc := range []struct {
			name string
			perm []int32
		}{{"identity", nil}, {"permuted", perm}} {
			s0, s1 := stagedSwitch(p, c, level, rlkFull.K, tc.perm)
			f0 := rl.NewPoly()
			f1 := rl.NewPoly()
			f0.IsNTT, f1.IsNTT = true, true
			p.switchHybridFused(c, level, rlkFull.K, tc.perm, f0, f1, true)
			if !rl.Equal(s0, f0) || !rl.Equal(s1, f1) {
				t.Fatalf("level %d %s: fused switch diverges from staged", level, tc.name)
			}
			if f0.IsNTT || f1.IsNTT {
				t.Fatalf("level %d: closeNTT must land in the coefficient domain", level)
			}
		}
	}
}

// TestFusedHoistMatchesStaged: the two-dispatch hoist produces the same
// digit polynomials as the staged per-group hoist.
func TestFusedHoistMatchesStaged(t *testing.T) {
	p := testParams
	for _, level := range []int{p.MaxLevel(), 3} {
		rl := p.RingAt(level)
		c := rl.NewPoly()
		rl.UniformPoly(prng.NewSource(testSeed(), 9100+uint64(level)), c)
		hs := p.hoistHybrid(c, level)
		hf := p.hoistHybridFused(c, level)
		rqp := p.RingQPAt(level)
		for j := range hs.dig {
			if !rqp.Equal(hs.dig[j], hf.dig[j]) {
				t.Fatalf("level %d group %d: fused hoist diverges", level, j)
			}
		}
		p.releaseDigits(hs)
		p.releaseDigits(hf)
	}
}

// TestFusedSwitchAllocs: the fused pipeline's steady state draws all
// polynomial scratch from the pools — per call it may allocate only the
// small orchestration slices and the per-dispatch job headers, never a
// digit buffer (β·(L+k)·N words) or accumulator storage.
func TestFusedSwitchAllocs(t *testing.T) {
	p := TestParams.MustBuild()
	p.SetBackend(lanes.Fast)
	kg := NewKeyGenerator(p, testSeed())
	rlk := kg.GenRelinearizationKeyHybridAt(p.MaxLevel())
	level := p.MaxLevel()
	rl := p.RingAt(level)
	c := rl.NewPoly()
	rl.UniformPoly(prng.NewSource(testSeed(), 9200), c)
	out0 := rl.NewPoly()
	out1 := rl.NewPoly()

	run := func() {
		out0.IsNTT, out1.IsNTT = true, true
		p.switchHybridFused(c, level, rlk.K, nil, out0, out1, true)
	}
	for i := 0; i < 3; i++ {
		run() // warm the pools
	}
	// 5 dispatches × (job + closure), the β-sized bookkeeping slices, and
	// one slab-header box per pooled row returned (~77 small objects at
	// the test geometry). The budget is about what must NOT appear: any
	// O(N) storage — a digit buffer or accumulator allocation would blow
	// past it immediately at real ring degrees.
	if allocs := testing.AllocsPerRun(10, run); allocs > 96 {
		t.Fatalf("fused switch allocates %.0f objects/op, budget 96", allocs)
	}
}

// FuzzFusedHybridSwitch: for arbitrary inputs and levels, fused and
// staged hybrid switching agree byte for byte.
func FuzzFusedHybridSwitch(f *testing.F) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	rlk := kg.GenRelinearizationKeyHybridAt(p.MaxLevel())
	perm := p.Ring().GaloisPermNTT(p.GaloisElement(2))
	f.Add(uint64(1), uint64(2), uint8(4), false)
	f.Add(uint64(3), uint64(4), uint8(3), true)
	f.Fuzz(func(t *testing.T, seedLo, seedHi uint64, levelByte uint8, permute bool) {
		level := 1 + int(levelByte)%p.MaxLevel()
		rl := p.RingAt(level)
		c := rl.NewPoly()
		rl.UniformPoly(prng.NewSource(prng.SeedFromUint64s(seedLo, seedHi), 11), c)
		var pm []int32
		if permute {
			pm = perm
		}
		s0, s1 := stagedSwitch(p, c, level, rlk.K, pm)
		f0 := rl.NewPoly()
		f1 := rl.NewPoly()
		f0.IsNTT, f1.IsNTT = true, true
		p.switchHybridFused(c, level, rlk.K, pm, f0, f1, true)
		if !rl.Equal(s0, f0) || !rl.Equal(s1, f1) {
			t.Fatalf("level %d permute=%v: fused switch diverges from staged", level, permute)
		}
	})
}
