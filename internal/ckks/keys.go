package ckks

import (
	"repro/internal/lanes"
	"repro/internal/prng"
	"repro/internal/ring"
)

// SecretKey is the ternary RLWE secret, stored in the NTT domain at full
// depth (decryption at lower levels uses the limb prefix).
type SecretKey struct {
	S *ring.Poly // NTT domain, full limbs
}

// PublicKey is the RLWE encryption key (pk0, pk1) = (-a·s + e, a) in the
// NTT domain at full depth.
type PublicKey struct {
	P0, P1 *ring.Poly
}

// KeyGenerator derives keys deterministically from a 128-bit seed — the
// property the accelerator's on-chip PRNG exploits: only the seed is
// stored; key material is regenerated on demand (paper §IV-B).
type KeyGenerator struct {
	params *Parameters
	seed   [16]byte
}

// NewKeyGenerator creates a generator over params with the given seed.
func NewKeyGenerator(params *Parameters, seed [16]byte) *KeyGenerator {
	return &KeyGenerator{params: params, seed: seed}
}

// Stream identifiers partition the PRNG seed space by purpose so no two
// sampled objects ever share keystream.
const (
	streamSecret uint64 = iota + 1
	streamPKMask
	streamPKError
	streamEncMask // base for per-encryption streams (first window starts at streamEncMask+16)
)

// streamUploadSeed and streamUploadErrSeed feed the upload-seed
// derivations; they sit in the gap below the first per-encryption window
// (streamEncMask + 16).
const (
	streamUploadSeed    uint64 = streamEncMask + 1
	streamUploadErrSeed uint64 = streamEncMask + 2
)

// DeriveUploadSeed derives the seeded-upload *mask* seed from the
// owner's root seed through the PRF: seeded ciphertexts transmit their
// mask seed in the clear (the server regenerates c1 from it), so the
// wire must carry a seed that is one-way derived from — never equal to —
// the seed the key generator consumes. ChaCha output does not reveal its
// key, so holders of upload bytes cannot walk back to the keypair.
func DeriveUploadSeed(seed [16]byte) [16]byte {
	src := prng.NewSource(seed, streamUploadSeed)
	return prng.SeedFromUint64s(src.Uint64(), src.Uint64())
}

// deriveUploadErrorSeed derives the seeded-upload *error* seed — a
// second, independent PRF expansion of the root seed that never reaches
// the wire. It must not be computable from the transmitted mask seed:
// an attacker who could regenerate the Gaussian error would strip every
// upload down to an errorless RLWE sample (and with one known plaintext,
// solve for the secret key outright).
func deriveUploadErrorSeed(seed [16]byte) [16]byte {
	src := prng.NewSource(seed, streamUploadErrSeed)
	return prng.SeedFromUint64s(src.Uint64(), src.Uint64())
}

// secretSignedInto fills vals (length N) with the two's-complement bits of
// the ternary secret's centered coefficients, resampled deterministically
// from the generator's seed. This is the shared source of GenSecretKey and
// the hybrid keygen's extended-basis secret: the same signed polynomial
// expands into whichever RNS basis the caller needs.
func (kg *KeyGenerator) secretSignedInto(vals []uint64) {
	src := prng.NewSource(kg.seed, streamSecret)
	if kg.params.HW > 0 {
		// Sample the signed polynomial once (serial: the PRNG stream order
		// is part of the determinism contract) and decode the mod-3
		// residues to centered bits.
		src.TernaryPolyHW(vals, kg.params.HW, 3) // residues mod 3: {0,1,2}
		for j, v := range vals {
			var c int64
			switch v {
			case 1:
				c = 1
			case 2:
				c = -1
			}
			vals[j] = uint64(c)
		}
		return
	}
	for j := range vals {
		vals[j] = uint64(src.TernarySample())
	}
}

// GenSecretKey samples the ternary secret (Hamming weight params.HW if
// nonzero, uniform ternary otherwise) and transforms it to NTT form.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	r := kg.params.Ring()
	s := r.NewPoly()
	tmp := lanes.GetSlab(r.N)
	kg.secretSignedInto(tmp)
	r.ExpandSignedBits(tmp, s)
	lanes.PutSlab(tmp)
	r.NTT(s)
	return &SecretKey{S: s}
}

// secretQP expands the generator's secret into the extended basis
// (q_0..q_{depth-1}, P) in the NTT domain — the form hybrid key
// generation consumes. The returned polynomial is pooled; release it with
// rqp.PutPoly.
func (kg *KeyGenerator) secretQP(depth int) *ring.Poly {
	rqp := kg.params.RingQPAt(depth)
	s := rqp.GetPolyUninit() // ExpandSignedBits writes every word
	tmp := lanes.GetSlab(rqp.N)
	kg.secretSignedInto(tmp)
	rqp.ExpandSignedBits(tmp, s)
	lanes.PutSlab(tmp)
	rqp.NTT(s)
	return s
}

// GenPublicKey derives (pk0, pk1) = (-a·s + e, a): a uniform in the NTT
// domain (uniformity is domain-invariant, so the PRNG can emit it directly
// in evaluation form — the trick that lets hardware skip one NTT), e a
// fresh Gaussian error.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	r := kg.params.Ring()
	maskSrc := prng.NewSource(kg.seed, streamPKMask)
	errSrc := prng.NewSource(kg.seed, streamPKError)

	a := r.NewPoly()
	r.UniformPoly(maskSrc, a)
	a.IsNTT = true // uniform randomness interpreted directly in NTT domain

	e := r.GetPolyUninit() // sampler fully overwrites
	r.GaussianPoly(errSrc, e)
	r.NTT(e)

	p0 := r.NewPoly()
	r.MulCoeffs(a, sk.S, p0) // a·s
	r.Neg(p0, p0)            // -a·s
	r.Add(p0, e, p0)         // -a·s + e
	r.PutPoly(e)
	return &PublicKey{P0: p0, P1: a}
}

// GenKeyPair is the common bundle.
func (kg *KeyGenerator) GenKeyPair() (*SecretKey, *PublicKey) {
	sk := kg.GenSecretKey()
	return sk, kg.GenPublicKey(sk)
}
