package rns

import (
	"math/rand"
	"sync"
	"testing"
)

// fuzzBases are the chains the fuzzer sweeps: a tiny hand-picked basis,
// the Test-preset chain, and the paper's full 24-limb PN16 chain. Built
// once — fuzz iterations must stay cheap.
var fuzzBases = sync.OnceValue(func() []*Basis {
	return []*Basis{
		MustBasis([]uint64{97, 193, 257}),
		presetBasis(4, 36, 10),
		presetBasis(24, 36, 16),
	}
})

// splitmix64 is the standard 64-bit mixer — deterministic limb derivation
// from the fuzz inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// FuzzCombineCentered drives fuzz-derived residue vectors through the fast
// combine and the big.Int oracle at every level of every fuzz basis,
// asserting float agreement and the exact expand round trip (the
// checkAgreement property from fastcrt_test.go).
func FuzzCombineCentered(f *testing.F) {
	f.Add(uint64(0), uint64(0), []byte{})
	f.Add(uint64(1), uint64(2), []byte{0xFF, 0x00, 0xAB})
	f.Add(uint64(0xDEADBEEF), uint64(42), []byte{7, 7, 7, 7, 7, 7, 7, 7})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 4; i++ {
		raw := make([]byte, 8+rng.Intn(64))
		rng.Read(raw)
		f.Add(rng.Uint64(), rng.Uint64(), raw)
	}
	f.Fuzz(func(t *testing.T, s1, s2 uint64, raw []byte) {
		for _, full := range fuzzBases() {
			limbs := make([]uint64, full.K())
			for level := 1; level <= full.K(); level++ {
				b := full.Sub(level)
				x := s1
				for i := range limbs[:level] {
					x = splitmix64(x + s2)
					if len(raw) > 0 {
						x ^= uint64(raw[i%len(raw)]) << (8 * uint(i%8))
					}
					limbs[i] = x // unreduced on purpose: combine must reduce
				}
				checkAgreement(t, b, limbs[:level])
			}
		}
	})
}
