// Package ntt implements the negacyclic number-theoretic transform over
// Z_q[X]/(X^N+1) — the workhorse of both our CKKS client (internal/ckks)
// and the functional model of ABC-FHE's pipelined NTT lanes (PNLs).
//
// Two implementations are provided and cross-checked:
//
//   - a table-based reference (merged-ψ Cooley–Tukey forward /
//     Gentleman–Sande inverse, the standard software formulation), and
//   - a streaming lane model that mirrors the hardware: stage-by-stage
//     processing with twiddles produced by an on-the-fly generator from a
//     compact seed set (paper §III/IV: "unified OTF TF Gen"), bit-identical
//     to the reference.
//
// The merged-ψ trick (paper Eq. 2–3, citing Roy et al. [30] and
// Pöppelmann et al. [27]) folds the negacyclic pre/post-processing by
// ψ^n into the stage twiddles, which is what lets the hardware reach the
// theoretical minimum multiplier count (paper Fig. 4).
package ntt

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/mod"
)

// Table holds every precomputed constant for transforms of degree N over
// modulus q. Tables are immutable after construction and safe to share.
type Table struct {
	N    int
	LogN int
	Mod  mod.Modulus

	Psi    uint64 // primitive 2N-th root of unity (plain form)
	PsiInv uint64 // ψ^{-1}

	// PsiRev[i] = ψ^{brev(i, logN)} in Montgomery form; the forward CT
	// butterfly at step m uses PsiRev[m+i]. PsiInvRev likewise for ψ^{-1}
	// (Gentleman–Sande inverse).
	PsiRev    []uint64
	PsiInvRev []uint64

	NInv uint64 // N^{-1} mod q in Montgomery form

	// Lazily-built Galois tables (galois.go); guarded by galoisOnce.
	galoisOnce sync.Once
	galoisTab  *galoisTables
}

// NewTable builds transform tables for degree N (a power of two ≥ 2) over
// prime q, which must satisfy q ≡ 1 (mod 2N).
func NewTable(n int, q uint64) (*Table, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ntt: N=%d is not a power of two ≥ 2", n)
	}
	m := mod.NewModulus(q)
	if (q-1)%uint64(2*n) != 0 {
		return nil, fmt.Errorf("ntt: q=%d is not ≡ 1 mod 2N=%d", q, 2*n)
	}
	psi, err := m.MinimalPrimitiveRoot(uint64(2 * n))
	if err != nil {
		return nil, err
	}
	t := &Table{
		N:    n,
		LogN: bits.Len(uint(n)) - 1,
		Mod:  m,
		Psi:  psi,
	}
	t.PsiInv = m.Inv(psi)
	t.PsiRev = make([]uint64, n)
	t.PsiInvRev = make([]uint64, n)
	pow, powInv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		r := int(brev(uint(i), t.LogN))
		t.PsiRev[r] = m.MForm(pow)
		t.PsiInvRev[r] = m.MForm(powInv)
		pow = m.Mul(pow, psi)
		powInv = m.Mul(powInv, t.PsiInv)
	}
	t.NInv = m.MForm(m.Inv(uint64(n)))
	return t, nil
}

// MustTable is NewTable that panics on error (for fixed, known-good params).
func MustTable(n int, q uint64) *Table {
	t, err := NewTable(n, q)
	if err != nil {
		panic(err)
	}
	return t
}

// brev reverses the low `width` bits of v.
func brev(v uint, width int) uint {
	return uint(bits.Reverse64(uint64(v)) >> (64 - uint(width)))
}

// BitReverse permutes a in place by bit-reversed index. Exposed because the
// streaming pipeline emits bit-reversed order and the MSE reorders on the
// way to the scratchpad.
func BitReverse(a []uint64) {
	logN := bits.Len(uint(len(a))) - 1
	for i := range a {
		j := int(brev(uint(i), logN))
		if j > i {
			a[i], a[j] = a[j], a[i]
		}
	}
}
