package ntt

// StreamingLane is the functional mirror of one ABC-FHE pipelined NTT lane
// (PNL): a P-parallel multi-path delay commutator (MDC) pipeline of
// log2(N) radix-2 butterfly stages whose twiddles come from the on-the-fly
// generator rather than a table (paper §IV-A, Fig. 3c).
//
// Functionally a streaming MDC pipeline computes exactly the same butterfly
// schedule as the in-place loop, so this model executes the stages against
// the OTF generator output and must be bit-identical to Table.Forward /
// Table.Inverse — the test suite enforces that. Structurally it reports
// the quantities the hardware model prices: butterfly/multiplier counts,
// commutator FIFO depths, and the pipeline's fill latency and initiation
// interval in cycles.
type StreamingLane struct {
	T *Table
	P int // coefficients consumed per cycle (paper: P = 8)

	// ButterflyLatency is the butterfly pipeline depth in cycles; the
	// NTT-friendly Montgomery multiplier is 3 stages (paper Table I), plus
	// one stage of add/sub — 4 total by default.
	ButterflyLatency int

	Gen *OTFGen

	// Stats from the last transform.
	TwiddleMuls   int // multiplications spent by the OTF generator
	ButterflyMuls int // datapath modular multiplications (one per butterfly)
}

// NewStreamingLane builds a lane model over table t with P-way parallelism.
func NewStreamingLane(t *Table, p int) *StreamingLane {
	if p < 2 || p&(p-1) != 0 || p > t.N {
		panic("ntt: P must be a power of two in [2, N]")
	}
	return &StreamingLane{T: t, P: p, ButterflyLatency: 4, Gen: NewOTFGen(t)}
}

// Forward runs the streaming forward NTT (natural order in/out),
// bit-identical to T.Forward but sourcing every twiddle from the OTF
// generator.
func (l *StreamingLane) Forward(a []uint64) {
	t := l.T
	m := t.Mod
	q := m.Q
	gen0 := l.Gen.MulCount
	for s, tt := 0, t.N>>1; tt >= 1; s, tt = s+1, tt>>1 {
		tws := l.Gen.StageForward(s)
		mm := 1 << uint(s)
		for i := 0; i < mm; i++ {
			w := tws[i]
			j1 := 2 * i * tt
			for j := j1; j < j1+tt; j++ {
				u := a[j]
				v := m.MRedMul(a[j+tt], w)
				l.ButterflyMuls++
				uv := u + v
				if uv >= q {
					uv -= q
				}
				a[j] = uv
				uv = u - v
				if u < v {
					uv += q
				}
				a[j+tt] = uv
			}
		}
	}
	l.TwiddleMuls += l.Gen.MulCount - gen0
}

// Inverse runs the streaming inverse NTT with OTF twiddles, including the
// final N^{-1} scaling (bit-identical to T.Inverse).
func (l *StreamingLane) Inverse(a []uint64) {
	t := l.T
	m := t.Mod
	q := m.Q
	gen0 := l.Gen.MulCount
	tt := 1
	for mm := t.N; mm > 1; mm >>= 1 {
		h := mm >> 1
		s := log2(h)
		tws := l.Gen.StageInverse(s)
		j1 := 0
		for i := 0; i < h; i++ {
			w := tws[i]
			for j := j1; j < j1+tt; j++ {
				u := a[j]
				v := a[j+tt]
				uv := u + v
				if uv >= q {
					uv -= q
				}
				a[j] = uv
				uv = u - v
				if u < v {
					uv += q
				}
				a[j+tt] = m.MRedMul(uv, w)
				l.ButterflyMuls++
			}
			j1 += 2 * tt
		}
		tt <<= 1
	}
	for j := range a {
		a[j] = m.MRedMul(a[j], t.NInv)
	}
	l.TwiddleMuls += l.Gen.MulCount - gen0
}

func log2(v int) int {
	s := 0
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

// Structural/timing quantities ------------------------------------------

// Stages returns the number of pipeline stages (log2 N).
func (l *StreamingLane) Stages() int { return l.T.LogN }

// ButterflyUnits returns the number of physical butterfly units: P/2 per
// stage in an MDC backbone.
func (l *StreamingLane) ButterflyUnits() int { return l.P / 2 * l.Stages() }

// MultiplierUnits returns the number of physical modular multipliers —
// one per butterfly unit under merged-ψ scheduling, the paper's
// P/2·log2(N) theoretical minimum (Fig. 4).
func (l *StreamingLane) MultiplierUnits() int { return l.ButterflyUnits() }

// FIFODepths returns the per-stage commutator FIFO depths (elements): the
// MDC shuffling structure needs buffers matching the butterfly distance
// divided by the lane parallelism, and they halve each stage ("2n FIFO" in
// paper Fig. 3b, implemented as double-buffered SRAM).
func (l *StreamingLane) FIFODepths() []int {
	d := make([]int, l.Stages())
	for s := 0; s < l.Stages(); s++ {
		t := l.T.N >> uint(s+1) // butterfly distance at stage s
		depth := 2 * t / l.P    // pair of delay lines across P lanes
		if depth < 2 {
			depth = 2
		}
		d[s] = depth
	}
	return d
}

// TotalFIFOElems sums FIFO storage over all stages.
func (l *StreamingLane) TotalFIFOElems() int {
	total := 0
	for _, d := range l.FIFODepths() {
		total += d
	}
	return total
}

// InitiationInterval is the steady-state cycles between successive
// N-point transforms: the lane consumes P coefficients per cycle.
func (l *StreamingLane) InitiationInterval() int { return l.T.N / l.P }

// FillLatency is the pipeline fill time in cycles: each stage contributes
// its butterfly latency plus the commutator delay before its first valid
// output.
func (l *StreamingLane) FillLatency() int {
	fill := 0
	for _, d := range l.FIFODepths() {
		fill += l.ButterflyLatency + d/2
	}
	return fill
}

// TransformCycles returns the latency in cycles to stream k back-to-back
// N-point transforms through the lane: fill + k·II.
func (l *StreamingLane) TransformCycles(k int) int {
	if k <= 0 {
		return 0
	}
	return l.FillLatency() + k*l.InitiationInterval()
}
