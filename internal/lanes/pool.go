// Pooled scratch memory. ABC-FHE keeps its working set on chip in a few
// KB of lane-local SRAM instead of allocating per operation (paper §IV-B);
// the software analogue is a sync.Pool-backed allocator for the polynomial
// scratch the CKKS hot paths churn through, keyed by shape so every (N,
// limbs) configuration recycles its own buffers.
package lanes

import "sync"

// shape keys a matrix pool: rows = RNS limbs, cols = ring degree N.
type shape struct{ rows, cols int }

var matrixPools sync.Map // shape → *sync.Pool of *Matrix

// Matrix is a pooled rows×cols uint64 matrix over one contiguous backing
// slab — the storage layout of an RNS polynomial (one row per limb).
type Matrix struct {
	Rows    [][]uint64
	backing []uint64
	key     shape
}

// GetMatrix returns a pooled rows×cols matrix. Contents are NOT cleared;
// call Zero when the caller needs the all-zero polynomial.
func GetMatrix(rows, cols int) *Matrix {
	key := shape{rows, cols}
	pl, ok := matrixPools.Load(key)
	if !ok {
		pl, _ = matrixPools.LoadOrStore(key, &sync.Pool{})
	}
	if m, ok := pl.(*sync.Pool).Get().(*Matrix); ok {
		return m
	}
	backing := make([]uint64, rows*cols)
	m := &Matrix{backing: backing, key: key, Rows: make([][]uint64, rows)}
	for i := range m.Rows {
		m.Rows[i] = backing[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return m
}

// PutMatrix returns m to its shape's pool. The caller must not retain any
// reference to m or its rows afterwards.
func PutMatrix(m *Matrix) {
	if m == nil {
		return
	}
	pl, _ := matrixPools.LoadOrStore(m.key, &sync.Pool{})
	pl.(*sync.Pool).Put(m)
}

// Zero clears the whole matrix (single memclr over the backing slab).
func (m *Matrix) Zero() {
	clear(m.backing)
}

// Flat scratch slabs ----------------------------------------------------

// SlabPool is a length-keyed recycler of []T scratch slabs: Get returns a
// slab of exactly the requested length with unspecified contents (callers
// overwrite), Put recycles it. The zero value is ready to use. Packages
// with their own element types (e.g. fftfp's complex slots) declare their
// own instance instead of copying the pattern.
type SlabPool[T any] struct {
	pools sync.Map // int → *sync.Pool of *[]T
}

// Get returns a pooled []T of exactly length n, contents unspecified.
func (p *SlabPool[T]) Get(n int) []T {
	pl, ok := p.pools.Load(n)
	if !ok {
		pl, _ = p.pools.LoadOrStore(n, &sync.Pool{})
	}
	if s, ok := pl.(*sync.Pool).Get().(*[]T); ok {
		return *s
	}
	return make([]T, n)
}

// Put recycles a slab obtained from Get. nil is a no-op.
func (p *SlabPool[T]) Put(s []T) {
	if s == nil {
		return
	}
	pl, _ := p.pools.LoadOrStore(len(s), &sync.Pool{})
	pl.(*sync.Pool).Put(&s)
}

var (
	uintSlabs  SlabPool[uint64]
	floatSlabs SlabPool[float64]
)

// GetSlab returns a pooled []uint64 of exactly length n, contents
// unspecified (callers overwrite).
func GetSlab(n int) []uint64 { return uintSlabs.Get(n) }

// PutSlab returns a slab obtained from GetSlab.
func PutSlab(s []uint64) { uintSlabs.Put(s) }

// GetFloatSlab returns a pooled []float64 of exactly length n, contents
// unspecified (callers overwrite) — the coefficient scratch of decode's
// Combine-CRT stage.
func GetFloatSlab(n int) []float64 { return floatSlabs.Get(n) }

// PutFloatSlab returns a slab obtained from GetFloatSlab.
func PutFloatSlab(s []float64) { floatSlabs.Put(s) }
