// Package sched models the client-side CKKS task structure ABC-FHE
// schedules: the operation counts behind paper Fig. 2, the per-phase task
// graphs the simulator executes, and the three RSC operating modes.
//
// Operation accounting (reproduces Fig. 2b exactly — see the tests):
// one butterfly (modular or complex) = 1 op, one element-wise modular
// operation = 1 op. Encode+encrypt streams ciphertexts out in the NTT
// domain, costing 2 transform passes per limb (NTT of the mask u and of
// the error+message polynomial); decode+decrypt receives coefficient-
// domain ciphertexts, costing 2 passes per limb (NTT of c1, INTT of the
// sum). With L = 24 limbs (12 double-scale levels) encoding+encryption is
// 26.98 MOPs and with L = 2 (1 level) decoding+decryption is 2.87 MOPs —
// the paper's 27.0 and 2.9 MOPs, a 9.4× imbalance.
package sched

// OpCounts breaks client-side work into the categories of Fig. 2b.
type OpCounts struct {
	FFTOps          float64 // complex butterflies (IFFT on encode, FFT on decode)
	NTTOps          float64 // modular butterflies (NTT/INTT passes)
	ElementWise     float64 // polynomial mult/add (pk products, error adds, c1·s)
	Others          float64 // Expand RNS / Combine CRT / PRNG draws
	TransformPasses int     // number of N-point NTT/INTT passes (for the simulator)
}

// Total sums all categories.
func (o OpCounts) Total() float64 {
	return o.FFTOps + o.NTTOps + o.ElementWise + o.Others
}

// fftButterflies is the complex butterfly count of the N/2-point special
// FFT: (N/4)·log2(N/2).
func fftButterflies(logN int) float64 {
	slots := 1 << uint(logN-1)
	return float64(slots/2) * float64(logN-1)
}

// nttButterflies is (N/2)·log2(N) per pass.
func nttButterflies(logN int) float64 {
	n := 1 << uint(logN)
	return float64(n/2) * float64(logN)
}

// EncodeEncryptOps returns the operation counts for encoding + encrypting
// one message at `limbs` RNS limbs, degree 2^logN.
func EncodeEncryptOps(logN, limbs int) OpCounts {
	n := float64(int(1) << uint(logN))
	l := float64(limbs)
	passes := 2 * limbs // NTT(u_l), NTT((e+m)_l) per limb; ct leaves in NTT domain
	return OpCounts{
		FFTOps:          fftButterflies(logN),
		NTTOps:          float64(passes) * nttButterflies(logN),
		ElementWise:     2*l*n + 2*l*n, // pk0·u, pk1·u products; error/message adds
		Others:          l * n,         // Expand RNS reductions
		TransformPasses: passes,
	}
}

// DecodeDecryptOps returns the operation counts for decrypting + decoding
// one ciphertext at `limbs` RNS limbs.
//
// Category assignment note: the paper's Fig. 2b totals (27.0 / 2.9 MOPs)
// pin down which element-wise work its counting includes. On the encode
// side the pk products and error adds are fused into the NTT stream (the
// MSE consumes the butterfly output in flight) and are NOT part of the
// 27.0 MOPs; on the decode side the c1·ŝ multiply-accumulate runs as an
// explicit MSE pass feeding Combine-CRT and IS counted. Both totals then
// reproduce exactly; see TestFig2bPaperNumbers.
func DecodeDecryptOps(logN, limbs int) OpCounts {
	n := float64(int(1) << uint(logN))
	l := float64(limbs)
	passes := 2 * limbs // NTT(c1_l), INTT((c1·s)_l)
	return OpCounts{
		FFTOps:          fftButterflies(logN),
		NTTOps:          float64(passes) * nttButterflies(logN),
		ElementWise:     0,
		Others:          2*l*n + 2*l*n, // c1·ŝ + c0-add stream, Combine-CRT MACs
		TransformPasses: passes,
	}
}

// PaperComparableMOPs reproduces the paper's Fig. 2b headline numbers,
// which count the transform butterflies plus the RNS expansion (the
// dataflow through the RFE+MSE pipeline): IFFT + NTT + expand for encode,
// FFT + NTT/INTT + CRT + element-wise for decode.
func PaperComparableMOPs(o OpCounts) float64 {
	return (o.FFTOps + o.NTTOps + o.Others) / 1e6
}

// Fig2Row is one bar of Fig. 2b.
type Fig2Row struct {
	Name     string
	Ops      OpCounts
	MOPs     float64 // paper-comparable
	FullMOPs float64 // including every element-wise op
}

// Fig2 computes both bars at the paper's configuration.
func Fig2(logN, encLimbs, decLimbs int) [2]Fig2Row {
	enc := EncodeEncryptOps(logN, encLimbs)
	dec := DecodeDecryptOps(logN, decLimbs)
	return [2]Fig2Row{
		{"Encoding+Encrypt", enc, PaperComparableMOPs(enc), enc.Total() / 1e6},
		{"Decoding+Decrypt", dec, PaperComparableMOPs(dec), dec.Total() / 1e6},
	}
}
