package sim

// Seeded-ciphertext extension study: when fresh uploads use seeded
// (secret-key) encryption, the client transmits only c0 plus a 16-byte
// seed — the c1 stream never leaves the chip. Encode+encrypt DRAM writes
// halve, which matters precisely because ABC-FHE is DRAM-bound at its
// shipping configuration (Fig. 5b). This is future-work territory the
// paper's PRNG architecture enables; internal/ckks implements the scheme
// functionally (seeded.go) and this model prices it.

// SeededReport compares standard and seeded encryption on a config.
type SeededReport struct {
	Standard           Report
	Seeded             Report
	WriteSaveMB        float64
	Speedup            float64
	ThroughputStandard float64
	ThroughputSeeded   float64
}

// EncodeEncryptSeeded simulates the seeded variant: identical compute
// (the mask still streams through the NTT — it is generated, used and
// discarded on chip), but only L limbs of ciphertext leave the chip.
func (c Config) EncodeEncryptSeeded(cores int) Report {
	if cores < 1 {
		panic("sim: need at least one core")
	}
	n := float64(c.n())

	// Compute stream identical to the standard path: the mask NTT and the
	// error+message NTT still run per limb.
	std := c.EncodeEncrypt(cores)
	compute := std.ComputeCycles

	readB := n / 2 * 16
	writeB := float64(c.Limbs) * n * c.wordBytes() // c0 only
	writeB += 24                                   // seed + stream id
	if c.Mem == MemBase || c.Mem == MemTFGen {
		readB += 2 * float64(c.Limbs) * n * c.wordBytes()
		readB += float64(c.Limbs) * n * c.wordBytes()
	}
	if c.Mem == MemBase {
		passes := 2 * c.Limbs
		readB += float64(passes) * (n / 2) * float64(c.LogN) * c.wordBytes()
	}

	r := c.finish("encode+encrypt (seeded)", compute, std.FillCycles, readB, writeB)
	r.Breakdown = std.Breakdown
	return r
}

// SeededStudy evaluates the standard-vs-seeded comparison.
func (c Config) SeededStudy() SeededReport {
	std := c.EncodeEncrypt(1)
	sed := c.EncodeEncryptSeeded(1)

	tp := func(r Report) float64 {
		perCt := r.ComputeCycles / float64(c.RSCs)
		if r.DRAMCycles > perCt {
			perCt = r.DRAMCycles
		}
		return c.FreqMHz * 1e6 / perCt
	}
	return SeededReport{
		Standard:           std,
		Seeded:             sed,
		WriteSaveMB:        std.DRAMWriteMB - sed.DRAMWriteMB,
		Speedup:            std.TimeMS / sed.TimeMS,
		ThroughputStandard: tp(std),
		ThroughputSeeded:   tp(sed),
	}
}
