// Command abc-fhe runs the client-side CKKS workflow both functionally
// (the from-scratch Go implementation) and on the modeled accelerator,
// printing a side-by-side card: correctness/precision from the real
// computation, latency/area/power from the model.
//
// Usage:
//
//	abc-fhe                 # Test preset (fast)
//	abc-fhe -preset PN16    # the paper's evaluation parameters (slow on CPU)
//	abc-fhe -slots 64       # encode fewer slots
package main

import (
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"os"
	"time"

	abcfhe "repro"
)

func main() {
	preset := flag.String("preset", "Test", "parameter preset: Test, PN13..PN16")
	slots := flag.Int("slots", 0, "message slots to fill (0 = all)")
	workers := flag.Int("workers", 0, "software PNL lanes (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	client, err := abcfhe.NewClient(abcfhe.Preset(*preset), 0x0123456789ABCDEF, 0xFEDCBA9876543210,
		abcfhe.WithWorkers(*workers))
	if err != nil {
		fmt.Fprintln(os.Stderr, "abc-fhe:", err)
		os.Exit(1)
	}

	n := *slots
	if n <= 0 || n > client.Slots() {
		n = client.Slots()
	}
	msg := make([]complex128, n)
	for i := range msg {
		msg[i] = complex(math.Sin(float64(i)/7), math.Cos(float64(i)/11)) / 2
	}

	fmt.Printf("ABC-FHE client workflow — preset %s (slots=%d, depth=%d limbs)\n\n",
		*preset, client.Slots(), client.MaxLevel())

	start := time.Now()
	ct := client.EncodeEncrypt(msg)
	encDur := time.Since(start)

	ev := client.Evaluator()
	low := ev.DropLevel(ct, 2) // server returns the 2-limb state

	start = time.Now()
	got := client.DecryptDecode(low)
	decDur := time.Since(start)

	var maxErr float64
	for i := range msg {
		if e := cmplx.Abs(got[i] - msg[i]); e > maxErr {
			maxErr = e
		}
	}

	fmt.Println("functional (this machine, pure Go):")
	fmt.Printf("  encode+encrypt: %v\n", encDur)
	fmt.Printf("  decrypt+decode: %v  (2-limb ciphertext)\n", decDur)
	fmt.Printf("  round-trip max error: %.3g (%.1f bits of precision)\n\n",
		maxErr, -math.Log2(maxErr))

	acc := abcfhe.NewAccelerator()
	s := acc.Summarize()
	fmt.Println("modeled accelerator (paper configuration: N=2^16, 2 RSC x 4 PNL x 8 lanes):")
	fmt.Printf("  encode+encrypt: %.4f ms    decode+decrypt: %.4f ms\n", s.EncMS, s.DecMS)
	fmt.Printf("  throughput: %.0f ciphertexts/s\n", s.ThroughputCtS)
	fmt.Printf("  area: %.3f mm² @28nm (%.3f mm² @7nm)\n", s.AreaMM2, s.Area7nmMM2)
	fmt.Printf("  power: %.3f W @28nm (%.3f W @7nm)\n", s.PowerW, s.Power7nmW)
	fmt.Printf("  client op counts: enc %.1f MOPs, dec %.1f MOPs\n", s.EncMOPs, s.DecMOPs)
}
