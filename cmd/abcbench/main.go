// Command abcbench regenerates the tables and figures of the ABC-FHE
// paper's evaluation section. Every experiment prints our reproduced
// values next to the paper's published ones.
//
// Usage:
//
//	abcbench -exp all            # run every experiment
//	abcbench -exp fig5a,table2   # run a subset
//	abcbench -exp fig3c -fast    # reduced problem sizes
//	abcbench -exp fig5a -cpu     # also measure the Go CKKS client here
//	abcbench -list               # list experiment ids
//	abcbench -exp table2 -csv    # CSV instead of an aligned table
//
// Benchmark-regression gate (the CI `bench-check` step):
//
//	abcbench -check -out BENCH_8.json -budget bench_budget.json
//
// runs the MulRelin (hybrid vs BV at max level on PN15, under both the
// portable and fast execution backends), Rotate, DecryptDecode and
// EncodeEncrypt benchmarks, appends the JSON report to the out file, and
// exits non-zero when allocs/op or evaluation-key blob bytes regress past
// the committed budgets — or when hybrid stops beating BV, or the fast
// backend's fused key switch stops beating the portable staged path.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	fast := flag.Bool("fast", false, "reduced problem sizes for quick runs")
	cpu := flag.Bool("cpu", false, "additionally measure the pure-Go CKKS client on this host")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	list := flag.Bool("list", false, "list experiment ids and exit")
	check := flag.Bool("check", false, "run the benchmark-regression gate instead of experiments")
	checkOut := flag.String("out", "BENCH_8.json", "bench-check: report output path (appended to, not overwritten)")
	checkBudget := flag.String("budget", "bench_budget.json", "bench-check: committed budget file")
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *check {
		if err := bench.RunBenchCheck(*checkOut, *checkBudget, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "abcbench:", err)
			os.Exit(1)
		}
		return
	}

	ids := bench.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}

	opt := bench.Options{Fast: *fast, MeasureCPU: *cpu}
	failed := false
	for _, id := range ids {
		r, err := bench.Run(strings.TrimSpace(id), opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "abcbench:", err)
			failed = true
			continue
		}
		if *csv {
			fmt.Print(r.CSV())
		} else {
			fmt.Println(r.Render())
		}
	}
	if failed {
		os.Exit(1)
	}
}
