package fftfp

// Streaming FFT-mode model of the RFE: in FFT mode the four PNLs fuse
// into a single P-wide complex pipeline — each complex butterfly
// multiplication maps onto four modular multipliers (paper Eq. 12 and
// §IV-A "Reconfigurability among PNLs"). This model executes the special
// FFT stage by stage exactly as the fused pipeline schedules it and must
// be bit-identical (in the reduced-precision float sense) to the in-place
// Embedder transforms; it also reports the structural quantities the
// hardware model prices.
type StreamingFFT struct {
	E *Embedder
	P int // complex points consumed per cycle

	// Stats from the last run.
	ComplexMuls int // complex butterfly multiplications
	RealMuls    int // = 4 × ComplexMuls: the modular multipliers borrowed
}

// NewStreamingFFT builds the fused-lane model.
func NewStreamingFFT(e *Embedder, p int) *StreamingFFT {
	if p < 2 || p&(p-1) != 0 {
		panic("fftfp: P must be a power of two ≥ 2")
	}
	return &StreamingFFT{E: e, P: p}
}

// Forward runs the decode-direction special FFT through the staged
// schedule, charging multiplier statistics.
func (s *StreamingFFT) Forward(vals []Complex, ctx Ctx) {
	e := s.E
	if len(vals) != e.Slots {
		panic("fftfp: expects N/2 slot values")
	}
	bitReverseC(vals)
	size := e.Slots
	for length := 2; length <= size; length <<= 1 {
		lenh, lenq := length>>1, length<<2
		for i := 0; i < size; i += length {
			for j := 0; j < lenh; j++ {
				idx := (e.rotGroup[j] % lenq) * (e.M / lenq)
				u := vals[i+j]
				v := ctx.Mul(vals[i+j+lenh], ctx.RoundC(e.ksi[idx]))
				s.ComplexMuls++
				vals[i+j] = ctx.Add(u, v)
				vals[i+j+lenh] = ctx.Sub(u, v)
			}
		}
	}
	s.RealMuls = 4 * s.ComplexMuls
}

// Inverse runs the encode-direction inverse special FFT.
func (s *StreamingFFT) Inverse(vals []Complex, ctx Ctx) {
	e := s.E
	if len(vals) != e.Slots {
		panic("fftfp: expects N/2 slot values")
	}
	size := e.Slots
	for length := size; length >= 2; length >>= 1 {
		lenh, lenq := length>>1, length<<2
		for i := 0; i < size; i += length {
			for j := 0; j < lenh; j++ {
				idx := (lenq - (e.rotGroup[j] % lenq)) * (e.M / lenq)
				u := ctx.Add(vals[i+j], vals[i+j+lenh])
				v := ctx.Mul(ctx.Sub(vals[i+j], vals[i+j+lenh]), ctx.RoundC(e.ksi[idx]))
				s.ComplexMuls++
				vals[i+j] = u
				vals[i+j+lenh] = v
			}
		}
	}
	inv := 1 / float64(size)
	for i := range vals {
		vals[i] = ctx.Scale(vals[i], inv)
	}
	bitReverseC(vals)
	s.RealMuls = 4 * s.ComplexMuls
}

// Structural/timing quantities -------------------------------------------

// Stages is the pipeline depth: log2(slots).
func (s *StreamingFFT) Stages() int {
	st := 0
	for v := s.E.Slots; v > 1; v >>= 1 {
		st++
	}
	return st
}

// InitiationInterval: slots/P cycles per transform in the fused pipeline.
func (s *StreamingFFT) InitiationInterval() int { return s.E.Slots / s.P }

// BorrowedMultipliers is the count of modular multipliers the FFT mode
// borrows from the NTT lanes: P/2 complex positions per stage × 4.
func (s *StreamingFFT) BorrowedMultipliers() int { return s.P / 2 * s.Stages() * 4 }
