// Package ring implements the RNS polynomial ring R_Q = Z_Q[X]/(X^N+1)
// that CKKS ciphertexts live in: polynomials stored limb-wise, with
// per-limb NTT transforms and coefficient-wise arithmetic.
//
// This is the data structure streamed through ABC-FHE's reconfigurable
// streaming cores: one limb is one "Ring #i" pass through a pipelined NTT
// lane (paper Fig. 2a/3b). Limbs are independent, so every limb-wise
// operation dispatches through a lanes.Engine — the software counterpart
// of the paper's parallel NTT-lane (PNL) array. Dispatch never reorders
// or re-partitions the work itself, so results are bit-identical at any
// worker count.
package ring

import (
	"fmt"

	"repro/internal/lanes"
	"repro/internal/ntt"
	"repro/internal/prng"
	"repro/internal/rns"
)

// Ring bundles a degree, an RNS basis, per-limb NTT tables, and the lane
// engine its limb-wise kernels run on.
type Ring struct {
	N      int
	LogN   int
	Basis  *rns.Basis
	Tables []*ntt.Table // one per limb

	eng     *lanes.Engine // nil ⇒ lanes.Default()
	backend lanes.Backend // nil ⇒ lanes.DefaultBackend()
}

// NewRing constructs the ring of degree n (power of two) over the given
// prime limbs; every prime must satisfy q ≡ 1 mod 2n.
func NewRing(n int, primes []uint64) (*Ring, error) {
	basis, err := rns.NewBasis(primes)
	if err != nil {
		return nil, err
	}
	r := &Ring{N: n, Basis: basis}
	for n>>uint(r.LogN+1) > 0 {
		r.LogN++
	}
	if 1<<uint(r.LogN) != n {
		return nil, fmt.Errorf("ring: N=%d is not a power of two", n)
	}
	for _, q := range primes {
		t, err := ntt.NewTable(n, q)
		if err != nil {
			return nil, err
		}
		r.Tables = append(r.Tables, t)
	}
	return r, nil
}

// MustRing panics on error.
func MustRing(n int, primes []uint64) *Ring {
	r, err := NewRing(n, primes)
	if err != nil {
		panic(err)
	}
	return r
}

// K returns the number of limbs.
func (r *Ring) K() int { return r.Basis.K() }

// SetEngine pins the ring's limb-wise kernels to e (nil restores the
// shared default engine). Set before concurrent use; level views created
// afterwards inherit it.
func (r *Ring) SetEngine(e *lanes.Engine) { r.eng = e }

// Engine returns the lane engine limb-wise kernels dispatch through.
func (r *Ring) Engine() *lanes.Engine {
	if r.eng != nil {
		return r.eng
	}
	return lanes.Default()
}

// SetBackend binds the ring's limb kernels to b (nil restores the
// process default). Like SetEngine, call before concurrent use; level
// views created afterwards inherit it. Backends never change results —
// any backend produces byte-identical polynomials — only the inner-loop
// implementation the kernels run.
func (r *Ring) SetBackend(b lanes.Backend) { r.backend = b }

// Backend returns the backend limb kernels are bound to.
func (r *Ring) Backend() lanes.Backend {
	if r.backend != nil {
		return r.backend
	}
	return lanes.DefaultBackend()
}

// AtLevel returns a view of the ring restricted to the first `level` limbs.
// Tables and the lane engine are shared, and the sub-basis (with its CRT
// and fast-combine tables) is memoized inside rns.Basis, so repeated views
// of the same level are cheap. ckks.Parameters.RingAt additionally caches
// the Ring wrappers themselves for the hot paths.
func (r *Ring) AtLevel(level int) *Ring {
	if level < 1 || level > r.K() {
		panic("ring: level out of range")
	}
	return &Ring{
		N:       r.N,
		LogN:    r.LogN,
		Basis:   r.Basis.Sub(level),
		Tables:  r.Tables[:level],
		eng:     r.eng,
		backend: r.backend,
	}
}

// Poly is an RNS polynomial: Coeffs[i][j] is coefficient j mod prime i.
// IsNTT records the current domain.
type Poly struct {
	Coeffs [][]uint64
	IsNTT  bool

	mat *lanes.Matrix // non-nil iff the storage came from the scratch pool
}

// NewPoly allocates a zero polynomial with r.K() limbs. Use for
// long-lived objects (keys, returned ciphertexts); scratch should come
// from GetPoly so its storage recycles.
func (r *Ring) NewPoly() *Poly {
	limbs := make([][]uint64, r.K())
	backing := make([]uint64, r.K()*r.N)
	for i := range limbs {
		limbs[i] = backing[i*r.N : (i+1)*r.N : (i+1)*r.N]
	}
	return &Poly{Coeffs: limbs}
}

// GetPoly returns a zeroed polynomial from the (N, limbs)-keyed scratch
// pool. Return it with PutPoly when its contents are dead; polys handed
// to callers may simply never be returned.
func (r *Ring) GetPoly() *Poly {
	m := lanes.GetMatrix(r.K(), r.N)
	m.Zero()
	return &Poly{Coeffs: m.Rows, mat: m}
}

// GetPolyUninit is GetPoly without the memclr: contents are unspecified
// (stale residues from a previous user). Only for scratch the caller
// fully overwrites before reading — samplers, MulCoeffs targets, copies.
// At paper parameters the skipped clear is K·N words (megabytes), a real
// fraction of the bandwidth the pooling exists to save.
func (r *Ring) GetPolyUninit() *Poly {
	m := lanes.GetMatrix(r.K(), r.N)
	return &Poly{Coeffs: m.Rows, mat: m}
}

// PutPoly recycles a GetPoly polynomial. It nils p's storage so a stale
// reference fails fast, and is a no-op for non-pooled or already-returned
// polys (so defensive Puts are safe).
func (r *Ring) PutPoly(p *Poly) {
	if p == nil || p.mat == nil {
		return
	}
	lanes.PutMatrix(p.mat)
	p.mat = nil
	p.Coeffs = nil
}

// CopyPoly returns a deep copy.
func (r *Ring) CopyPoly(p *Poly) *Poly {
	out := r.NewPoly()
	for i := range p.Coeffs {
		copy(out.Coeffs[i], p.Coeffs[i])
	}
	out.IsNTT = p.IsNTT
	return out
}

// GetPolyCopy is CopyPoly with pooled storage (uninitialized underneath —
// the copy overwrites every word).
func (r *Ring) GetPolyCopy(p *Poly) *Poly {
	out := r.GetPolyUninit()
	for i := range p.Coeffs {
		copy(out.Coeffs[i], p.Coeffs[i])
	}
	out.IsNTT = p.IsNTT
	return out
}

// Level returns the number of limbs of p (which may be fewer than the
// ring's if p came from a lower level).
func (p *Poly) Level() int { return len(p.Coeffs) }

// NTT transforms every limb to the evaluation domain in place, one limb
// per lane (paper Fig. 3b: the PNL array runs per-limb NTTs concurrently).
// The transform kernel is backend-bound: lazy-reduction butterflies on
// the fast path, the strict reference otherwise — same bytes either way.
func (r *Ring) NTT(p *Poly) {
	if p.IsNTT {
		panic("ring: NTT on already-transformed poly")
	}
	if r.Backend().Specialized() {
		r.Engine().Run(len(p.Coeffs), func(i int) {
			r.Tables[i].ForwardLazy(p.Coeffs[i])
		})
	} else {
		r.Engine().Run(len(p.Coeffs), func(i int) {
			r.Tables[i].Forward(p.Coeffs[i])
		})
	}
	p.IsNTT = true
}

// INTT transforms back to the coefficient domain in place.
func (r *Ring) INTT(p *Poly) {
	if !p.IsNTT {
		panic("ring: INTT on coefficient-domain poly")
	}
	if r.Backend().Specialized() {
		r.Engine().Run(len(p.Coeffs), func(i int) {
			r.Tables[i].InverseLazy(p.Coeffs[i])
		})
	} else {
		r.Engine().Run(len(p.Coeffs), func(i int) {
			r.Tables[i].Inverse(p.Coeffs[i])
		})
	}
	p.IsNTT = false
}

func (r *Ring) checkCompat(a, b *Poly) {
	if a.Level() != b.Level() {
		panic("ring: level mismatch")
	}
	if a.IsNTT != b.IsNTT {
		panic("ring: domain mismatch")
	}
}

// Add sets out = a + b (limb-wise). out may alias a or b.
func (r *Ring) Add(a, b, out *Poly) {
	r.checkCompat(a, b)
	r.Engine().Run(len(a.Coeffs), func(i int) {
		m := r.Basis.Moduli[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ai {
			oi[j] = m.Add(ai[j], bi[j])
		}
	})
	out.IsNTT = a.IsNTT
}

// Sub sets out = a - b.
func (r *Ring) Sub(a, b, out *Poly) {
	r.checkCompat(a, b)
	r.Engine().Run(len(a.Coeffs), func(i int) {
		m := r.Basis.Moduli[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ai {
			oi[j] = m.Sub(ai[j], bi[j])
		}
	})
	out.IsNTT = a.IsNTT
}

// Neg sets out = -a.
func (r *Ring) Neg(a, out *Poly) {
	r.Engine().Run(len(a.Coeffs), func(i int) {
		m := r.Basis.Moduli[i]
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range ai {
			oi[j] = m.Neg(ai[j])
		}
	})
	out.IsNTT = a.IsNTT
}

// MulCoeffs sets out = a ⊙ b (pointwise). Both operands must be in the NTT
// domain — pointwise products in the coefficient domain are not ring
// products, and the panic guards against that misuse. The row kernel is
// backend-bound (Barrett on the fast path, generic reduction otherwise).
func (r *Ring) MulCoeffs(a, b, out *Poly) {
	r.checkCompat(a, b)
	if !a.IsNTT {
		panic("ring: MulCoeffs requires NTT domain")
	}
	if r.Backend().Specialized() {
		r.Engine().Run(len(a.Coeffs), func(i int) {
			mulRowFast(r.Basis.Moduli[i], a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
		})
		out.IsNTT = true
		return
	}
	r.Engine().Run(len(a.Coeffs), func(i int) {
		m := r.Basis.Moduli[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ai {
			oi[j] = m.Mul(ai[j], bi[j])
		}
	})
	out.IsNTT = true
}

// MulScalar sets out = a · s for a word scalar s.
func (r *Ring) MulScalar(a *Poly, s uint64, out *Poly) {
	if r.Backend().Specialized() {
		r.Engine().Run(len(a.Coeffs), func(i int) {
			m := r.Basis.Moduli[i]
			mulScalarRowFast(m, s%m.Q, a.Coeffs[i], out.Coeffs[i])
		})
		out.IsNTT = a.IsNTT
		return
	}
	r.Engine().Run(len(a.Coeffs), func(i int) {
		m := r.Basis.Moduli[i]
		sc := s % m.Q
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range ai {
			oi[j] = m.Mul(ai[j], sc)
		}
	})
	out.IsNTT = a.IsNTT
}

// Sampling ---------------------------------------------------------------

// UniformPoly fills p with independent uniform residues per limb (a fresh
// mask "a"; on hardware this streams straight out of the PRNG).
//
// The limbs consume one sequential rejection-sampled stream, so this stage
// stays serial by construction: splitting the stream across lanes would
// change which words each limb sees and break the determinism contract.
func (r *Ring) UniformPoly(src *prng.Source, p *Poly) {
	for i := range p.Coeffs {
		src.UniformPoly(p.Coeffs[i], r.Basis.Moduli[i].Q)
	}
	p.IsNTT = false
}

// ExpandSignedBits fills p limb-wise from vals, where vals[j] carries the
// two's-complement bits of the centered integer coefficient j — the
// shared expansion stage of every shared-coefficient sampler (secrets,
// encryption randomness, errors). Pure arithmetic over read-only moduli,
// so it fans out across the lanes.
func (r *Ring) ExpandSignedBits(vals []uint64, p *Poly) {
	r.Engine().Run(len(p.Coeffs), func(i int) {
		m := r.Basis.Moduli[i]
		pi := p.Coeffs[i]
		for j, v := range vals {
			pi[j] = m.FromCentered(int64(v))
		}
	})
	p.IsNTT = false
}

// sharedSigned samples one signed value per coefficient and expands it
// consistently into every limb (the same underlying integer polynomial).
// The PRNG draw is serial — the stream's order is part of the scheme's
// determinism contract — before the lane-parallel expansion.
func (r *Ring) sharedSigned(p *Poly, sample func() int64) {
	vals := lanes.GetSlab(r.N)
	for j := range vals {
		vals[j] = uint64(sample())
	}
	r.ExpandSignedBits(vals, p)
	lanes.PutSlab(vals)
}

// TernaryPoly fills p with a shared uniform-ternary polynomial across all
// limbs (encryption randomness u, secret keys).
func (r *Ring) TernaryPoly(src *prng.Source, p *Poly) {
	r.sharedSigned(p, src.TernarySample)
}

// GaussianPoly fills p with a shared discrete-Gaussian polynomial (errors).
func (r *Ring) GaussianPoly(src *prng.Source, p *Poly) {
	r.sharedSigned(p, src.GaussianSample)
}

// Equal reports deep equality (same domain, same residues).
func (r *Ring) Equal(a, b *Poly) bool {
	if a.IsNTT != b.IsNTT || a.Level() != b.Level() {
		return false
	}
	for i := range a.Coeffs {
		for j := range a.Coeffs[i] {
			if a.Coeffs[i][j] != b.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}
