// lanesweep explores the architecture question behind paper Fig. 5b: how
// many pipelined-NTT lanes should a client accelerator have before LPDDR5
// bandwidth, not compute, limits it? It sweeps the lane count and prints
// the latency/throughput curve with the compute/DRAM crossover marked.
package main

import (
	"fmt"

	"repro/internal/sim"
)

func main() {
	base := sim.PaperConfig()
	fmt.Printf("encode+encrypt at N=2^%d, %d limbs, LPDDR5 %.1f GB/s, %d PNLs/core\n\n",
		base.LogN, base.Limbs, base.DRAMGBps, base.PNLs)
	fmt.Printf("%6s  %12s  %14s  %s\n", "lanes", "latency (ms)", "throughput/s", "bound by")

	for _, p := range sim.LaneSweep(base, []int{1, 2, 4, 8, 16, 32, 64}) {
		bound := "compute"
		marker := ""
		if p.DRAMBound {
			bound = "DRAM"
		}
		if p.Lanes == 8 {
			marker = "   <-- ABC-FHE ships here (paper Fig. 5b)"
		}
		fmt.Printf("%6d  %12.3f  %14.0f  %-7s%s\n",
			p.Lanes, p.EncTimeMS, p.ThroughputCt, bound, marker)
	}

	fmt.Println("\nBeyond 8 lanes the LPDDR5 stream is saturated: more compute buys nothing.")
	fmt.Println("With faster memory the crossover moves — try doubling bandwidth:")
	fast := base
	fast.DRAMGBps *= 2
	for _, p := range sim.LaneSweep(fast, []int{8, 16, 32}) {
		bound := "compute"
		if p.DRAMBound {
			bound = "DRAM"
		}
		fmt.Printf("%6d  %12.3f  %14.0f  %s\n", p.Lanes, p.EncTimeMS, p.ThroughputCt, bound)
	}
}
