package serve

// Eviction-semantics tests for the evaluation-key cache, table-driven
// against a fake clock: admission rejection, LRU order, pinned-while-
// in-flight protection, session refcounts not pinning residency, and
// deferred removal after unregister-while-pinned. The decoded-keys
// payload is irrelevant to the cache's bookkeeping, so entries carry
// zero-value *abcfhe.EvaluationKeys sentinels and a counting loader.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	abcfhe "repro"
)

// fakeClock advances one second per observation — every touch gets a
// distinct, strictly increasing timestamp, so LRU order in the tests
// below is exactly operation order.
type fakeClock struct{ now time.Time }

func (f *fakeClock) tick() time.Time {
	f.now = f.now.Add(time.Second)
	return f.now
}

type cacheHarness struct {
	t        *testing.T
	c        *KeyCache
	dir      string
	loads    map[string]int
	releases map[string][]func()
}

func newCacheHarness(t *testing.T, budget int64) *cacheHarness {
	fc := &fakeClock{now: time.Unix(1_000_000, 0)}
	return &cacheHarness{
		t:        t,
		c:        NewKeyCache(budget, fc.tick),
		dir:      t.TempDir(),
		loads:    map[string]int{},
		releases: map[string][]func(){},
	}
}

func (h *cacheHarness) spool(hash string) string {
	return filepath.Join(h.dir, hash)
}

func (h *cacheHarness) register(hash string, size int64, withKeys bool) error {
	if err := os.WriteFile(h.spool(hash), []byte(hash), 0o600); err != nil {
		h.t.Fatal(err)
	}
	var keys *abcfhe.EvaluationKeys
	if withKeys {
		keys = &abcfhe.EvaluationKeys{}
	}
	return h.c.Register(hash, size, h.spool(hash), keys, func([]byte) (*abcfhe.EvaluationKeys, error) {
		h.loads[hash]++
		return &abcfhe.EvaluationKeys{}, nil
	})
}

func (h *cacheHarness) acquire(hash string) error {
	keys, release, err := h.c.Acquire(hash)
	if err != nil {
		return err
	}
	if keys == nil {
		h.t.Fatalf("Acquire(%s): nil keys with nil error", hash)
	}
	h.releases[hash] = append(h.releases[hash], release)
	return nil
}

func (h *cacheHarness) release(hash string) {
	rs := h.releases[hash]
	if len(rs) == 0 {
		h.t.Fatalf("release(%s): nothing acquired", hash)
	}
	rs[len(rs)-1]()
	h.releases[hash] = rs[:len(rs)-1]
}

func TestKeyCacheEvictionSemantics(t *testing.T) {
	// Each step is (action, hash); sizes are fixed at 10 so budgets read
	// as entry counts × 10.
	type step struct {
		action  string // register, registerCold, acquire, release, unregister
		hash    string
		wantErr error
	}
	cases := []struct {
		name            string
		budget          int64
		steps           []step
		wantResident    []string
		wantNotResident []string // registered but evicted (or never loaded)
		wantGone        []string // entry fully removed
		wantEvictions   uint64
		wantReloads     uint64
		wantPressure    uint64
	}{
		{
			name:   "lru-eviction-order",
			budget: 20,
			steps: []step{
				{action: "register", hash: "A"},
				{action: "register", hash: "B"},
				// Touch A so B becomes LRU, then C's admission must evict B.
				{action: "acquire", hash: "A"},
				{action: "release", hash: "A"},
				{action: "register", hash: "C"},
			},
			wantResident:    []string{"A", "C"},
			wantNotResident: []string{"B"},
			wantEvictions:   1,
		},
		{
			name:   "pinned-while-inflight-survives",
			budget: 20,
			steps: []step{
				{action: "register", hash: "A"},
				{action: "register", hash: "B"},
				// A is oldest AND pinned: eviction for C must skip it and
				// take B, the newer but unpinned entry.
				{action: "acquire", hash: "A"},
				{action: "register", hash: "C"},
				{action: "release", hash: "A"},
			},
			wantResident:    []string{"A", "C"},
			wantNotResident: []string{"B"},
			wantEvictions:   1,
		},
		{
			name:   "fully-pinned-is-pressure-not-eviction",
			budget: 10,
			steps: []step{
				{action: "register", hash: "A"},
				{action: "acquire", hash: "A"},
				{action: "registerCold", hash: "B"}, // registration itself never blocks on room
				{action: "acquire", hash: "B", wantErr: ErrCachePressure},
				{action: "release", hash: "A"},
				{action: "acquire", hash: "B"}, // now A is evictable: reload succeeds
				{action: "release", hash: "B"},
			},
			wantResident:    []string{"B"},
			wantNotResident: []string{"A"},
			wantEvictions:   1,
			wantReloads:     1,
			wantPressure:    1,
		},
		{
			name:   "session-refs-do-not-pin",
			budget: 10,
			steps: []step{
				{action: "register", hash: "A"},
				{action: "register", hash: "A"}, // second session, same blob
				{action: "register", hash: "B"}, // must evict A despite its two sessions
			},
			wantResident:    []string{"B"},
			wantNotResident: []string{"A"},
			wantEvictions:   1,
		},
		{
			name:   "refcount-zero-eviction-then-reload",
			budget: 10,
			steps: []step{
				{action: "register", hash: "A"},
				{action: "register", hash: "B"}, // evicts A (refcount 0)
				{action: "acquire", hash: "A"},  // evicts B, reloads A from spool
				{action: "release", hash: "A"},
			},
			wantResident:    []string{"A"},
			wantNotResident: []string{"B"},
			wantEvictions:   2,
			wantReloads:     1,
		},
		{
			name:   "unregister-while-pinned-defers-removal",
			budget: 20,
			steps: []step{
				{action: "register", hash: "A"},
				{action: "acquire", hash: "A"},
				{action: "unregister", hash: "A"},
				// Still pinned: the entry must survive until release.
				{action: "release", hash: "A"},
			},
			wantGone: []string{"A"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newCacheHarness(t, tc.budget)
			for i, st := range tc.steps {
				var err error
				switch st.action {
				case "register":
					err = h.register(st.hash, 10, true)
				case "registerCold":
					err = h.register(st.hash, 10, false)
				case "acquire":
					err = h.acquire(st.hash)
				case "release":
					h.release(st.hash)
				case "unregister":
					h.c.Unregister(st.hash)
				default:
					t.Fatalf("step %d: unknown action %q", i, st.action)
				}
				if !errors.Is(err, st.wantErr) {
					t.Fatalf("step %d (%s %s): err = %v, want %v", i, st.action, st.hash, err, st.wantErr)
				}
			}
			for _, hash := range tc.wantResident {
				if !h.c.IsResident(hash) {
					t.Errorf("%s: not resident, want resident", hash)
				}
			}
			for _, hash := range tc.wantNotResident {
				if h.c.IsResident(hash) {
					t.Errorf("%s: resident, want evicted", hash)
				}
				if !h.c.Has(hash) {
					t.Errorf("%s: entry gone, want registered-but-cold", hash)
				}
			}
			for _, hash := range tc.wantGone {
				if h.c.Has(hash) {
					t.Errorf("%s: still registered, want removed", hash)
				}
				if _, err := os.Stat(h.spool(hash)); !os.IsNotExist(err) {
					t.Errorf("%s: spool file still on disk after removal", hash)
				}
			}
			s := h.c.Stats()
			if s.Evictions != tc.wantEvictions {
				t.Errorf("evictions = %d, want %d", s.Evictions, tc.wantEvictions)
			}
			if s.Reloads != tc.wantReloads {
				t.Errorf("reloads = %d, want %d", s.Reloads, tc.wantReloads)
			}
			if s.PressureRejects != tc.wantPressure {
				t.Errorf("pressure rejects = %d, want %d", s.PressureRejects, tc.wantPressure)
			}
			if s.ResidentBytes > s.Budget {
				t.Errorf("resident %d bytes exceeds budget %d", s.ResidentBytes, s.Budget)
			}
		})
	}
}

func TestKeyCacheAdmission(t *testing.T) {
	h := newCacheHarness(t, 25)
	if err := h.c.Admit(26); !errors.Is(err, ErrCacheAdmission) {
		t.Fatalf("Admit(26) = %v, want ErrCacheAdmission", err)
	}
	if err := h.c.Admit(25); err != nil {
		t.Fatalf("Admit(25) = %v, want nil", err)
	}
	if err := h.c.Register("big", 26, h.spool("big"), nil, nil); !errors.Is(err, ErrCacheAdmission) {
		t.Fatalf("Register(big) = %v, want ErrCacheAdmission", err)
	}
	if h.c.Has("big") {
		t.Fatal("rejected blob must not leave an entry behind")
	}
	if got := h.c.Stats().AdmissionRejects; got != 2 {
		t.Fatalf("admission rejects = %d, want 2", got)
	}
}

func TestKeyCacheReloadCountsLoads(t *testing.T) {
	h := newCacheHarness(t, 10)
	if err := h.register("A", 10, true); err != nil {
		t.Fatal(err)
	}
	if err := h.register("B", 10, true); err != nil { // evicts A; B could not be admitted resident? no: A unpinned
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // ping-pong A and B: every acquire is a reload
		if err := h.acquire("A"); err != nil {
			t.Fatal(err)
		}
		h.release("A")
		if err := h.acquire("B"); err != nil {
			t.Fatal(err)
		}
		h.release("B")
	}
	if h.loads["A"] != 3 || h.loads["B"] != 3 {
		t.Fatalf("loads = A:%d B:%d, want 3 each (every swap reloads from spool)", h.loads["A"], h.loads["B"])
	}
	s := h.c.Stats()
	if s.Reloads != 6 || s.Hits != 0 {
		t.Fatalf("reloads=%d hits=%d, want 6 reloads, 0 hits under ping-pong", s.Reloads, s.Hits)
	}
}
