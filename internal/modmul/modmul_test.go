package modmul

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mod"
	"repro/internal/primes"
)

var testQs = []uint64{7681, 65537, 132120577, 68718428161, 1152921504606584833}

func TestBarrettUnit(t *testing.T) {
	for _, q := range testQs {
		u := NewBarrettUnit(q)
		ref := mod.NewModulus(q)
		rng := rand.New(rand.NewSource(int64(q)))
		for i := 0; i < 2000; i++ {
			a, b := rng.Uint64()%q, rng.Uint64()%q
			if got, want := u.Mul(a, b), ref.Mul(a, b); got != want {
				t.Fatalf("q=%d Barrett(%d,%d)=%d want %d", q, a, b, got, want)
			}
		}
	}
}

func TestMontgomeryUnit(t *testing.T) {
	for _, q := range testQs {
		if q >= 1<<61 {
			continue // radix w+2 would exceed 63
		}
		u := NewMontgomeryUnit(q, 0)
		ref := mod.NewModulus(q)
		rng := rand.New(rand.NewSource(int64(q) + 1))
		for i := 0; i < 2000; i++ {
			a, b := rng.Uint64()%q, rng.Uint64()%q
			if got, want := u.Mul(a, b), ref.Mul(a, b); got != want {
				t.Fatalf("q=%d Montgomery(%d,%d)=%d want %d", q, a, b, got, want)
			}
		}
		// Domain conversion round trip.
		for i := 0; i < 100; i++ {
			a := rng.Uint64() % q
			if u.FromMont(u.ToMont(a)) != a {
				t.Fatalf("q=%d: Montgomery domain round trip failed", q)
			}
		}
	}
}

func friendlyTestPrimes(t testing.TB) []primes.FriendlyPrime {
	t.Helper()
	var out []primes.FriendlyPrime
	for _, f := range primes.Search(36, 16, 3) {
		// Need radix ≥ width+1 = 37 feasible: 2·v₂(Q-1) ≥ 37.
		if 2*f.TwoAdicity() >= 37 {
			out = append(out, f)
		}
		if len(out) == 8 {
			break
		}
	}
	if len(out) == 0 {
		t.Fatal("no feasible friendly primes found")
	}
	return out
}

func TestFriendlyUnit(t *testing.T) {
	for _, f := range friendlyTestPrimes(t) {
		u, err := NewFriendlyUnit(f, 0)
		if err != nil {
			t.Fatalf("prime %d: %v", f.Q, err)
		}
		ref := mod.NewModulus(f.Q)
		rng := rand.New(rand.NewSource(int64(f.Q)))
		for i := 0; i < 2000; i++ {
			a, b := rng.Uint64()%f.Q, rng.Uint64()%f.Q
			if got, want := u.Mul(a, b), ref.Mul(a, b); got != want {
				t.Fatalf("Q=%d friendly(%d,%d)=%d want %d", f.Q, a, b, got, want)
			}
		}
		// Shift-add networks must be small: that is the whole design point.
		if u.ShiftAddAdders() > 12 {
			t.Fatalf("Q=%d: shift-add network has %d adders — not hardware-friendly",
				f.Q, u.ShiftAddAdders())
		}
	}
}

// All three datapaths agree on the same friendly prime (property-based).
func TestDesignsAgreeQuick(t *testing.T) {
	f := friendlyTestPrimes(t)[0]
	ba := NewBarrettUnit(f.Q)
	mo := NewMontgomeryUnit(f.Q, 0)
	fr, err := NewFriendlyUnit(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b uint64) bool {
		a %= f.Q
		b %= f.Q
		x := ba.Mul(a, b)
		return x == mo.Mul(a, b) && x == fr.Mul(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestFriendlyRadixValidation(t *testing.T) {
	// A prime with insufficient two-adicity for its width must be rejected.
	for _, f := range primes.Search(36, 16, 3) {
		if 2*f.TwoAdicity() < 37 {
			if _, err := NewFriendlyUnit(f, 0); err == nil {
				t.Fatalf("Q=%d: expected radix feasibility error", f.Q)
			}
			return
		}
	}
	t.Skip("all 36-bit family primes are radix-feasible")
}

func TestTableIAnchors(t *testing.T) {
	// Pipeline depths and area anchors straight from Table I.
	if Barrett.PipelineStages() != 4 || Montgomery.PipelineStages() != 3 ||
		FriendlyMontgomery.PipelineStages() != 3 {
		t.Fatal("pipeline stages disagree with Table I")
	}
	if AreaUM2(Barrett, 44) != 35054 || AreaUM2(Montgomery, 44) != 19255 ||
		AreaUM2(FriendlyMontgomery, 44) != 11328 {
		t.Fatal("anchor areas must reproduce Table I at width 44")
	}
	// Paper's headline reductions: 67.7% vs Barrett, 41.2% vs Montgomery.
	if r := ReductionVsBarrett(FriendlyMontgomery); r < 0.67 || r > 0.69 {
		t.Fatalf("reduction vs Barrett %.3f, paper says 0.677", r)
	}
	if r := ReductionVsMontgomery(); r < 0.40 || r > 0.42 {
		t.Fatalf("reduction vs Montgomery %.3f, paper says 0.412", r)
	}
}

func TestStructuralModelDirection(t *testing.T) {
	// Even without anchors, the structural model must order the designs
	// correctly and give double-digit-percent reductions.
	b := StructureAt(Barrett, 44, 0).Units()
	m := StructureAt(Montgomery, 44, 0).Units()
	f := StructureAt(FriendlyMontgomery, 44, 0).Units()
	if !(f < m && m < b) {
		t.Fatalf("structural ordering violated: %v %v %v", f, m, b)
	}
	if red := ModelReductionVsBarrett(FriendlyMontgomery); red < 0.30 {
		t.Fatalf("structural reduction vs Barrett only %.2f", red)
	}
}

func TestAreaScalesWithWidth(t *testing.T) {
	for _, d := range []Design{Barrett, Montgomery, FriendlyMontgomery} {
		a32 := AreaUM2(d, 32)
		a44 := AreaUM2(d, 44)
		a64 := AreaUM2(d, 64)
		if !(a32 < a44 && a44 < a64) {
			t.Fatalf("%v: area not monotone in width", d)
		}
		// Multiplier-dominated designs grow superlinearly.
		if d != FriendlyMontgomery && a64/a44 < float64(64)/44 {
			t.Fatalf("%v: width scaling implausibly sublinear", d)
		}
	}
}

func BenchmarkBarrettMul(b *testing.B) {
	u := NewBarrettUnit(68718428161)
	x, y := uint64(123456789), uint64(987654321)
	for i := 0; i < b.N; i++ {
		x = u.Mul(x, y)
	}
	_ = x
}

func BenchmarkFriendlyMul(b *testing.B) {
	f := friendlyTestPrimes(b)[0]
	u, _ := NewFriendlyUnit(f, 0)
	x, y := uint64(123456789)%f.Q, uint64(987654321)%f.Q
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = u.REDC(x, y)
	}
	_ = x
}
