package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	abcfhe "repro"
)

// ContentTypeFrames is the media type of multi-part binary bodies: a
// little-endian u32 part count, then per part a u32 length prefix and
// the raw bytes. Every eval request and response uses it — a mul sends
// two ciphertext blobs, CoeffsToSlots returns two — so clients handle
// exactly one body shape.
const ContentTypeFrames = "application/x-abcfhe-frames"

// WriteFrames emits parts in the frame encoding.
func WriteFrames(w io.Writer, parts ...[]byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(parts)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// EncodeFrames is WriteFrames into a fresh buffer.
func EncodeFrames(parts ...[]byte) []byte {
	n := 4
	for _, p := range parts {
		n += 4 + len(p)
	}
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(parts)))
	for _, p := range parts {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// ReadFrames parses a framed body, bounding both the part count and the
// per-part size before allocating — the declared lengths are
// attacker-controlled, so nothing is sized from a header alone without
// these caps.
func ReadFrames(r io.Reader, maxParts int, maxPart int64) ([][]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: frame header: %v", abcfhe.ErrMalformedWire, err)
	}
	count := int(binary.LittleEndian.Uint32(hdr[:]))
	if count < 1 || count > maxParts {
		return nil, fmt.Errorf("%w: %d frame parts, want 1..%d", abcfhe.ErrMalformedWire, count, maxParts)
	}
	parts := make([][]byte, count)
	for i := range parts {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("%w: frame %d length: %v", abcfhe.ErrMalformedWire, i, err)
		}
		n := int64(binary.LittleEndian.Uint32(hdr[:]))
		if n > maxPart {
			return nil, fmt.Errorf("%w: frame %d is %d bytes, cap %d", abcfhe.ErrMalformedWire, i, n, maxPart)
		}
		parts[i] = make([]byte, n)
		if _, err := io.ReadFull(r, parts[i]); err != nil {
			return nil, fmt.Errorf("%w: frame %d body: %v", abcfhe.ErrMalformedWire, i, err)
		}
	}
	// A trailing byte means the framing and the body disagree — reject
	// rather than silently ignore what a confused client sent.
	var one [1]byte
	if _, err := r.Read(one[:]); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing bytes after %d frames", abcfhe.ErrMalformedWire, count)
	}
	return parts, nil
}

// parseComplexLines parses the CLI message-file format ("re" or "re im"
// per line, # comments) from a request part — the dot endpoint's weight
// vector travels this way so files feed both the CLI and the service
// unchanged.
func parseComplexLines(data []byte) ([]complex128, error) {
	var vals []complex128
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) > 2 {
			return nil, fmt.Errorf("%w: weights line %d: want \"re\" or \"re im\"", abcfhe.ErrInvalidConstant, ln+1)
		}
		re, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: weights line %d: %v", abcfhe.ErrInvalidConstant, ln+1, err)
		}
		im := 0.0
		if len(fields) == 2 {
			if im, err = strconv.ParseFloat(fields[1], 64); err != nil {
				return nil, fmt.Errorf("%w: weights line %d: %v", abcfhe.ErrInvalidConstant, ln+1, err)
			}
		}
		vals = append(vals, complex(re, im))
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("%w: empty weight vector", abcfhe.ErrInvalidConstant)
	}
	return vals, nil
}
