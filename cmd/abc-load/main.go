// Command abc-load is the load-generator harness for `abc-fhe serve`:
// it simulates a fleet of encrypt-only devices (each an
// abcfhe.Encryptor built from the public-key blob alone — no secret
// material anywhere in this process), registers N service sessions from
// evaluation-key blobs, drives a mixed operation profile against
// /v1/eval/*, and reports throughput and latency percentiles.
//
//	abc-load -addr http://127.0.0.1:8791 -pk pk.key -evk evk.bin \
//	    -sessions 2 -fleet 4 -ops 200 -concurrency 8 -mix mul=1,rotate=1,innersum=1
//
// -evk accepts a comma-separated list; sessions round-robin over the
// blobs, so two distinct key sets against a small -cache-bytes budget
// exercise the server's eviction/reload path under load. -check hashes
// every response and asserts that repeats of the same (op, device, key
// blob) triple stay byte-identical across sessions and time — FHE ops
// here are deterministic, so any drift is silent corruption. Exit
// status is non-zero on zero completed ops, any hard error, or any
// consistency mismatch.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	abcfhe "repro"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "abc-load:", err)
		os.Exit(1)
	}
}

type opResult struct {
	op  string
	d   time.Duration
	err error
}

type client struct {
	addr string
	hc   *http.Client
}

func (c *client) post(path, contentType string, body []byte) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, c.addr+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

type sessionInfo struct {
	Session string `json:"session"`
	Slots   int    `json:"slots"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("abc-load", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8791", "serve endpoint base URL")
	pkPath := fs.String("pk", "pk.key", "public-key blob (the only key material devices get)")
	evkPaths := fs.String("evk", "evk.bin", "comma-separated evaluation-key blobs; sessions round-robin over them")
	nSessions := fs.Int("sessions", 2, "service sessions to register")
	fleet := fs.Int("fleet", 4, "simulated encryptor devices")
	totalOps := fs.Int("ops", 100, "operations to complete (0 = duration-bound only)")
	duration := fs.Duration("duration", 0, "stop after this long (0 = ops-bound only)")
	concurrency := fs.Int("concurrency", 8, "parallel request workers")
	mix := fs.String("mix", "mul=1,rotate=1,innersum=1", "op mix, name=weight pairs (mul, rotate, conjugate, innersum, dot)")
	span := fs.Int("span", 4, "innersum span (key blobs must carry its rotation ladder)")
	rotateBy := fs.Int("rotate-by", 1, "rotation step for the rotate op")
	seed := fs.Uint64("seed", 1, "device seed base (device i uses seeds 2i, 2i+1 offset by this)")
	check := fs.Bool("check", false, "verify responses stay byte-identical per (op, device, key blob)")
	dumpMetrics := fs.Bool("metrics", false, "print the server's cache/backpressure metrics when done")
	throttleSleep := fs.Duration("throttle-sleep", 100*time.Millisecond, "backoff after a 429/503 before retrying")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *totalOps == 0 && *duration == 0 {
		return fmt.Errorf("need -ops or -duration")
	}

	pk, err := os.ReadFile(*pkPath)
	if err != nil {
		return err
	}
	var evks [][]byte
	for _, p := range strings.Split(*evkPaths, ",") {
		blob, err := os.ReadFile(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		evks = append(evks, blob)
	}

	weighted, err := parseMix(*mix)
	if err != nil {
		return err
	}

	c := &client{addr: strings.TrimRight(*addr, "/"), hc: &http.Client{Timeout: 5 * time.Minute}}

	// Register sessions round-robin over the key blobs.
	sessions := make([]sessionInfo, *nSessions)
	blobOf := make([]int, *nSessions)
	for i := range sessions {
		bi := i % len(evks)
		status, body, err := c.post("/v1/sessions", "application/octet-stream", evks[bi])
		if err != nil {
			return fmt.Errorf("registering session %d: %w", i, err)
		}
		if status != http.StatusCreated {
			return fmt.Errorf("registering session %d: HTTP %d: %s", i, status, body)
		}
		if err := json.Unmarshal(body, &sessions[i]); err != nil {
			return fmt.Errorf("registering session %d: %w", i, err)
		}
		blobOf[i] = bi
	}
	fmt.Printf("abc-load: %d sessions over %d key blob(s) at %s\n", len(sessions), len(evks), c.addr)

	// The device fleet: public key only. Each device encrypts two
	// deterministic messages up front; the run phase is pure traffic.
	devices := make([]*abcfhe.Encryptor, *fleet)
	cts := make([][2][]byte, *fleet)
	for i := range devices {
		enc, err := abcfhe.NewEncryptor(pk, *seed+uint64(2*i), *seed+uint64(2*i+1))
		if err != nil {
			return fmt.Errorf("device %d: %w", i, err)
		}
		devices[i] = enc
		defer enc.Close()
		for j := 0; j < 2; j++ {
			msg := deviceMessage(enc.Slots(), i, j)
			ct, err := enc.EncodeEncrypt(msg)
			if err != nil {
				return fmt.Errorf("device %d encrypt: %w", i, err)
			}
			data, err := enc.SerializeCiphertext(ct)
			if err != nil {
				return err
			}
			cts[i][j] = data
		}
	}
	weightsPart := dotWeights(8)

	var (
		next      atomic.Int64
		completed atomic.Int64
		throttled atomic.Int64
		hardErrs  atomic.Int64
		mismatch  atomic.Int64
		resMu     sync.Mutex
		results   []opResult
		seen      sync.Map // consistency key -> sha256 of first response
	)
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}

	runOne := func(i int64) {
		op := weighted[int(i)%len(weighted)]
		si := int(i) % len(sessions)
		di := int(i) % len(devices)
		sess := sessions[si]
		q := fmt.Sprintf("?session=%s", sess.Session)
		var body []byte
		switch op {
		case "mul":
			body = serve.EncodeFrames(cts[di][0], cts[di][1])
		case "dot":
			body = serve.EncodeFrames(cts[di][0], weightsPart)
			q += "&rescale=0"
		case "rotate":
			body = serve.EncodeFrames(cts[di][0])
			q += fmt.Sprintf("&by=%d", *rotateBy)
		case "innersum":
			body = serve.EncodeFrames(cts[di][0])
			q += fmt.Sprintf("&span=%d", *span)
		case "conjugate":
			body = serve.EncodeFrames(cts[di][0])
		}
		start := time.Now()
		for attempt := 0; ; attempt++ {
			status, resp, err := c.post("/v1/eval/"+op+q, serve.ContentTypeFrames, body)
			switch {
			case err != nil:
				hardErrs.Add(1)
				recordResult(&resMu, &results, opResult{op, time.Since(start), err})
				return
			case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
				throttled.Add(1)
				if attempt >= 50 {
					hardErrs.Add(1)
					recordResult(&resMu, &results, opResult{op, time.Since(start), fmt.Errorf("still throttled after %d attempts", attempt)})
					return
				}
				time.Sleep(*throttleSleep)
				continue
			case status != http.StatusOK:
				hardErrs.Add(1)
				recordResult(&resMu, &results, opResult{op, time.Since(start), fmt.Errorf("HTTP %d: %.120s", status, resp)})
				return
			}
			completed.Add(1)
			recordResult(&resMu, &results, opResult{op, time.Since(start), nil})
			if *check {
				key := fmt.Sprintf("%s|%d|%d", op, di, blobOf[si])
				sum := sha256.Sum256(resp)
				if prev, loaded := seen.LoadOrStore(key, sum); loaded && prev.([32]byte) != sum {
					mismatch.Add(1)
					fmt.Fprintf(os.Stderr, "abc-load: CONSISTENCY MISMATCH for %s\n", key)
				}
			}
			return
		}
	}

	startWall := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if *totalOps > 0 && i >= int64(*totalOps) {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(startWall)

	report(results, wall, completed.Load(), throttled.Load(), hardErrs.Load())
	if *check {
		n := 0
		seen.Range(func(any, any) bool { n++; return true })
		fmt.Printf("consistency: %d distinct (op, device, blob) keys, %d mismatches\n", n, mismatch.Load())
	}
	if *dumpMetrics {
		if resp, err := c.hc.Get(c.addr + "/metrics"); err == nil {
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			for _, line := range strings.Split(string(data), "\n") {
				if strings.HasPrefix(line, "abcfhe_serve_cache_") || strings.HasPrefix(line, "abcfhe_serve_throttled_") ||
					strings.HasPrefix(line, "abcfhe_serve_batch") {
					fmt.Println(line)
				}
			}
		}
	}

	switch {
	case completed.Load() == 0:
		return fmt.Errorf("no operations completed")
	case hardErrs.Load() > 0:
		return fmt.Errorf("%d hard errors", hardErrs.Load())
	case mismatch.Load() > 0:
		return fmt.Errorf("%d consistency mismatches", mismatch.Load())
	}
	return nil
}

func recordResult(mu *sync.Mutex, results *[]opResult, r opResult) {
	mu.Lock()
	*results = append(*results, r)
	mu.Unlock()
}

// deviceMessage is the deterministic per-device payload: distinct per
// (device, slot, index) but reproducible run to run, so -check
// comparisons are meaningful across invocations against a fresh server.
func deviceMessage(slots, device, j int) []complex128 {
	msg := make([]complex128, slots)
	for s := range msg {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(device)<<32|uint64(j)<<16|uint64(s))
		h := sha256.Sum256(b[:])
		re := float64(int64(binary.LittleEndian.Uint64(h[:8])>>12))/float64(1<<52) - 0.5
		im := float64(int64(binary.LittleEndian.Uint64(h[8:16])>>12))/float64(1<<52) - 0.5
		msg[s] = complex(re, im)
	}
	return msg
}

// dotWeights renders a small weight vector in the CLI message-file
// format the dot endpoint consumes.
func dotWeights(n int) []byte {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%g %g\n", float64(i+1)/float64(n), 0.25)
	}
	return []byte(sb.String())
}

func parseMix(mix string) ([]string, error) {
	known := map[string]bool{"mul": true, "rotate": true, "conjugate": true, "innersum": true, "dot": true}
	var weighted []string
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, found := strings.Cut(part, "=")
		w := 1
		if found {
			var err error
			if w, err = strconv.Atoi(wstr); err != nil || w < 0 {
				return nil, fmt.Errorf("mix weight %q", part)
			}
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown op %q in -mix", name)
		}
		for i := 0; i < w; i++ {
			weighted = append(weighted, name)
		}
	}
	if len(weighted) == 0 {
		return nil, fmt.Errorf("empty -mix")
	}
	return weighted, nil
}

func report(results []opResult, wall time.Duration, completed, throttled, hardErrs int64) {
	perOp := map[string][]time.Duration{}
	var all []time.Duration
	for _, r := range results {
		if r.err == nil {
			perOp[r.op] = append(perOp[r.op], r.d)
			all = append(all, r.d)
		}
	}
	rps := float64(completed) / wall.Seconds()
	fmt.Printf("abc-load: %d ops in %.2fs (%.1f ops/s), %d throttle retries, %d hard errors\n",
		completed, wall.Seconds(), rps, throttled, hardErrs)
	names := make([]string, 0, len(perOp))
	for n := range perOp {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("  %-10s %7s %10s %10s %10s %10s\n", "op", "count", "p50", "p90", "p99", "max")
	for _, n := range names {
		printPercentiles(n, perOp[n])
	}
	if len(all) > 0 {
		printPercentiles("ALL", all)
	}
}

func printPercentiles(name string, ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(ds)-1))
		return ds[i]
	}
	fmt.Printf("  %-10s %7d %10s %10s %10s %10s\n", name, len(ds),
		round(pct(0.50)), round(pct(0.90)), round(pct(0.99)), round(ds[len(ds)-1]))
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
