package ckks

import (
	"bytes"
	"testing"
)

func TestPublicKeyRoundTrip(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	_, pk := kg.GenKeyPair()

	data, err := p.MarshalPublicKey(pk)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != p.PublicKeyWireBytes() {
		t.Fatalf("wire size %d != reported %d", len(data), p.PublicKeyWireBytes())
	}
	got, err := p.UnmarshalPublicKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.P0.IsNTT || !got.P1.IsNTT {
		t.Fatal("unmarshaled key must be NTT-domain")
	}
	for i := range pk.P0.Coeffs {
		for j := range pk.P0.Coeffs[i] {
			if pk.P0.Coeffs[i][j] != got.P0.Coeffs[i][j] || pk.P1.Coeffs[i][j] != got.P1.Coeffs[i][j] {
				t.Fatalf("coefficient mismatch at limb %d pos %d", i, j)
			}
		}
	}
	// Re-marshal is byte-identical (canonical encoding).
	again, err := p.MarshalPublicKey(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-marshal is not byte-identical")
	}
}

func TestSecretKeyRoundTrip(t *testing.T) {
	p := testParams
	seed := testSeed()
	kg := NewKeyGenerator(p, seed)
	sk := kg.GenSecretKey()

	data, err := p.MarshalSecretKey(sk, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != p.SecretKeyWireBytes() {
		t.Fatalf("wire size %d != reported %d", len(data), p.SecretKeyWireBytes())
	}
	got, gotSeed, err := p.UnmarshalSecretKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotSeed != seed {
		t.Fatal("owner seed lost in round trip")
	}
	for i := range sk.S.Coeffs {
		for j := range sk.S.Coeffs[i] {
			if sk.S.Coeffs[i][j] != got.S.Coeffs[i][j] {
				t.Fatalf("coefficient mismatch at limb %d pos %d", i, j)
			}
		}
	}
	// The re-imported key decrypts what the original key's pk encrypted.
	_, pk := NewKeyGenerator(p, seed).GenKeyPair()
	enc := NewEncoder(p)
	msg := randMsg(p, 0, 31)
	ct := NewEncryptor(p, pk, seed).Encrypt(enc.Encode(msg))
	out := enc.Decode(NewDecryptor(p, got).Decrypt(ct))
	if e := maxErr(msg, out); e > 1e-4 {
		t.Fatalf("re-imported secret key decrypts with error %g", e)
	}
}

func TestReadKeySpec(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()

	pkData, _ := p.MarshalPublicKey(pk)
	spec, kind, err := ReadKeySpec(pkData)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KeyKindPublic {
		t.Fatalf("kind 0x%02x, want public", kind)
	}
	if spec != p.Spec() {
		t.Fatalf("spec %+v != %+v", spec, p.Spec())
	}
	// The embedded spec rebuilds parameters that accept the blob.
	p2, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.UnmarshalPublicKey(pkData); err != nil {
		t.Fatalf("rebuilt parameters reject the blob: %v", err)
	}

	skData, _ := p.MarshalSecretKey(sk, testSeed())
	if _, kind, _ := ReadKeySpec(skData); kind != KeyKindSecret {
		t.Fatal("secret blob kind mismatch")
	}
}

func TestUnmarshalKeyRejectsCorruption(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	pkData, _ := p.MarshalPublicKey(pk)
	skData, _ := p.MarshalSecretKey(sk, testSeed())

	cases := map[string]func([]byte) []byte{
		"empty":      func(d []byte) []byte { return nil },
		"short":      func(d []byte) []byte { return d[:8] },
		"bad magic":  func(d []byte) []byte { d[0] = 'X'; return d },
		"bad ver":    func(d []byte) []byte { d[4] = 9; return d },
		"bad kind":   func(d []byte) []byte { d[5] = 'Z'; return d },
		"wrong logN": func(d []byte) []byte { d[6]++; return d },
		"wrong hw":   func(d []byte) []byte { d[10]++; return d },
		"truncated":  func(d []byte) []byte { return d[:len(d)-3] },
		"padded":     func(d []byte) []byte { return append(d, 0) },
		// The secret blob's first 16 payload bytes are the seed, so start
		// past them in both blobs to hit actual residues.
		"residue>=q": func(d []byte) []byte {
			for i := keyHeaderLen() + 16; i < keyHeaderLen()+24; i++ {
				d[i] = 0xFF
			}
			return d
		},
	}
	for name, corrupt := range cases {
		d := append([]byte(nil), pkData...)
		if _, err := p.UnmarshalPublicKey(corrupt(d)); err == nil {
			t.Errorf("public %s: corruption not detected", name)
		}
		d = append([]byte(nil), skData...)
		if _, _, err := p.UnmarshalSecretKey(corrupt(d)); err == nil {
			t.Errorf("secret %s: corruption not detected", name)
		}
	}
	// Cross-kind: a secret blob must not parse as a public key (and vice
	// versa), and key blobs must not parse as ciphertexts.
	if _, err := p.UnmarshalPublicKey(skData); err == nil {
		t.Error("secret blob parsed as public key")
	}
	if _, _, err := p.UnmarshalSecretKey(pkData); err == nil {
		t.Error("public blob parsed as secret key")
	}
	if _, err := p.UnmarshalCiphertext(pkData); err == nil {
		t.Error("public key blob parsed as ciphertext")
	}
}

func TestMarshalKeyRejectsBadShape(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	_, pk := kg.GenKeyPair()

	coeffDomain := p.Ring().CopyPoly(pk.P0)
	coeffDomain.IsNTT = false
	if _, err := p.MarshalPublicKey(&PublicKey{P0: coeffDomain, P1: pk.P1}); err == nil {
		t.Error("coefficient-domain key must not marshal")
	}
	short := &PublicKey{P0: pk.P0, P1: pk.P1}
	short.P0 = p.RingAt(2).NewPoly()
	short.P0.IsNTT = true
	if _, err := p.MarshalPublicKey(short); err == nil {
		t.Error("partial-depth key must not marshal")
	}
	if _, err := p.MarshalPublicKey(nil); err == nil {
		t.Error("nil key must not marshal")
	}
	if _, err := p.MarshalSecretKey(nil, testSeed()); err == nil {
		t.Error("nil secret key must not marshal")
	}
}
