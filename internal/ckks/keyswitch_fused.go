package ckks

// Fused hybrid key switching — the fast backend's pipeline. The staged
// path (hoistHybrid → applyHybridInto → modDownInto) pays one lane
// dispatch per stage: β ModUps, β NTT sweeps, the MAC, then per half an
// INTT sweep, a ModUp, an NTT sweep and the divide — ~13–16 barriers, and
// a β-polynomial hoisted-digit buffer of (level+k)·N words between the
// first two. This file runs the same arithmetic as five dispatches over
// (limb, stage-chain) tasks:
//
//	1. reduce   β·C chunk tasks: per group, ReduceRange computes the
//	            HPS y_i rows and the overflow estimate v once.
//	2. mac      level+k limb tasks: per extended-basis limb, for each
//	            group — CombineLimb into one pooled row, forward NTT of
//	            that row, multiply-accumulate into both halves. The row
//	            is reused across groups, so the β·(level+k)·N digit
//	            buffer never exists; the first group writes through the
//	            set-variant MAC so the accumulators start uninitialized.
//	3. intt-P   2k limb tasks: both halves' P rows back to coefficients.
//	4. reduce-P 2·C chunk tasks: ReduceRange of each half's P residues.
//	5. divide   2·level limb tasks: CombineLimb (P → Q_ℓ), forward NTT,
//	            fused (acc − ext)·P⁻¹ accumulate, and optionally the
//	            closing inverse NTT of the output limb.
//
// Byte identity with the staged path (and so with the portable backend)
// holds stage by stage: ReduceRange + CombineLimb reproduce ExtendRange's
// arithmetic in the same order (including the float64 v accumulation),
// the per-limb NTT is the same backend-bound kernel the staged sweep
// runs, and the MAC accumulates groups in the same ascending order with
// the same per-element a0-then-a1 sequence. Chunk and task boundaries are
// execution details — every kernel is pure per-coefficient arithmetic
// over disjoint outputs, so any partition computes the same bytes
// (TestFusedMatchesStaged and the cross-backend property tests assert
// this end to end).

import (
	"repro/internal/lanes"
	"repro/internal/ring"
	"repro/internal/rns"
)

// useFused reports whether key switches against ksk should run the fused
// pipeline: hybrid gadget on the specialized backend. The portable
// backend keeps the staged path — it is the oracle fused output is
// checked against.
func (p *Parameters) useFused(ksk *SwitchingKey) bool {
	return ksk.Gadget == GadgetHybrid && p.ringQ.Backend().Specialized()
}

// fusedChunks mirrors lanes.RunChunks' oversubscribed carve so the chunk
// stages load-balance the same way: ~4 chunks per worker, capped at n.
func fusedChunks(eng *lanes.Engine, n int) int {
	c := eng.Workers()
	if c > 1 {
		c *= 4
	}
	if c > n {
		c = n
	}
	return c
}

// switchHybridFused key-switches c (coefficient domain, `level` limbs)
// against ksk, accumulating the switched halves into acc0/acc1 (NTT
// domain, level limbs). perm is the hoisting automorphism gather (nil ⇒
// identity). When closeNTT is set the output limbs are inverse-NTT'd
// inside the divide stage and acc0/acc1 land in the coefficient domain —
// folding the caller's closing transforms into the pipeline.
func (p *Parameters) switchHybridFused(c *ring.Poly, level int, ksk *SwitchingKey, perm []int32, acc0, acc1 *ring.Poly, closeNTT bool) {
	if c.IsNTT {
		panic("ckks: fused switch expects a coefficient-domain input")
	}
	if level > ksk.Level {
		panic("ckks: ciphertext level exceeds switching-key depth")
	}
	n := p.N()
	k := p.SpecialLimbs
	beta := p.DnumAt(level)
	rqp := p.RingQPAt(level)
	eng := rqp.Engine()

	// Tables first, outside the lane tasks (they take p.hybridMu).
	exts := make([]*rns.Extender, beta)
	srcs := make([][][]uint64, beta)
	for j := 0; j < beta; j++ {
		exts[j] = p.groupExtender(level, j)
		lo, hi := p.groupRange(level, j)
		srcs[j] = c.Coeffs[lo:hi]
	}
	mext := p.modDownExtender(level)

	// Stage 1: per-group source reduction, chunked over coefficients.
	ys := make([]*lanes.Matrix, beta)
	vs := make([][]uint64, beta)
	for j := 0; j < beta; j++ {
		ys[j] = lanes.GetMatrix(len(srcs[j]), n)
		vs[j] = lanes.GetSlab(n)
	}
	chunks := fusedChunks(eng, n)
	size := (n + chunks - 1) / chunks
	eng.Run(beta*chunks, func(t int) {
		j, ch := t/chunks, t%chunks
		lo := ch * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if lo < hi {
			exts[j].ReduceRange(srcs[j], ys[j].Rows, vs[j], lo, hi)
		}
	})

	// Stage 2: per-limb combine → NTT → dual-half MAC, one task per
	// extended-basis limb. Each task owns one pooled digit row, reused
	// across groups; group 0 lands through the set-variant MAC so the QP
	// accumulators can start uninitialized (set == add-to-zero).
	s0 := rqp.GetPolyUninit()
	s1 := rqp.GetPolyUninit()
	s0.IsNTT, s1.IsNTT = true, true
	eng.Run(level+k, func(m int) {
		km := m // key-row limb index: Q part aligns, P tail sits at ksk.Level
		if m >= level {
			km = ksk.Level + (m - level)
		}
		a0, a1 := s0.Coeffs[m], s1.Coeffs[m]
		row := lanes.GetSlab(n)
		for j := 0; j < beta; j++ {
			exts[j].CombineLimb(m, ys[j].Rows, vs[j], row, 0, n)
			rqp.ForwardLimb(m, row)
			k0 := ksk.H0[j].Coeffs[km]
			k1 := ksk.H1[j].Coeffs[km]
			if j == 0 {
				rqp.MulPairRow(m, perm, row, k0, k1, a0, a1)
			} else {
				rqp.MulAddPairRow(m, perm, row, k0, k1, a0, a1)
			}
		}
		lanes.PutSlab(row)
	})
	for j := 0; j < beta; j++ {
		lanes.PutMatrix(ys[j])
		lanes.PutSlab(vs[j])
	}

	// Stage 3: both halves' P residues back to the coefficient domain.
	halves := [2]*ring.Poly{s0, s1}
	p.ringP.Engine().Run(2*k, func(t int) {
		h, i := t/k, t%k
		p.ringP.InverseLimb(i, halves[h].Coeffs[level+i])
	})

	// Stage 4: source reduction of the P → Q_ℓ conversion, both halves.
	var yP [2]*lanes.Matrix
	var vP [2][]uint64
	for h := 0; h < 2; h++ {
		yP[h] = lanes.GetMatrix(k, n)
		vP[h] = lanes.GetSlab(n)
	}
	eng.Run(2*chunks, func(t int) {
		h, ch := t/chunks, t%chunks
		lo := ch * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if lo < hi {
			mext.ReduceRange(halves[h].Coeffs[level:], yP[h].Rows, vP[h], lo, hi)
		}
	})

	// Stage 5: per-limb combine → NTT → fused rounding divide into the
	// caller's accumulators, with the optional closing inverse NTT.
	rq := p.RingAt(level)
	outs := [2]*ring.Poly{acc0, acc1}
	eng.Run(2*level, func(t int) {
		h, i := t/level, t%level
		row := lanes.GetSlab(n)
		mext.CombineLimb(i, yP[h].Rows, vP[h], row, 0, n)
		rq.ForwardLimb(i, row)
		rq.SubMulAddRow(i, p.pInvModQ[i], halves[h].Coeffs[i], row, outs[h].Coeffs[i])
		lanes.PutSlab(row)
		if closeNTT {
			rq.InverseLimb(i, outs[h].Coeffs[i])
		}
	})
	if closeNTT {
		acc0.IsNTT, acc1.IsNTT = false, false
	}
	for h := 0; h < 2; h++ {
		lanes.PutMatrix(yP[h])
		lanes.PutSlab(vP[h])
	}
	rqp.PutPoly(s0)
	rqp.PutPoly(s1)
}

// hoistHybridFused is hoistHybrid collapsed to two dispatches: one
// reduce stage over (group, chunk) tasks and one combine+NTT stage over
// extended-basis limbs writing every group's digit row for that limb.
// Same bytes as hoistHybrid (same kernels, same order); used by
// RotateHoisted on the fast backend, where the digits must be
// materialized because many Galois elements reuse them.
func (p *Parameters) hoistHybridFused(c *ring.Poly, level int) *hoistedDigits {
	n := p.N()
	k := p.SpecialLimbs
	beta := p.DnumAt(level)
	rqp := p.RingQPAt(level)
	eng := rqp.Engine()

	exts := make([]*rns.Extender, beta)
	srcs := make([][][]uint64, beta)
	for j := 0; j < beta; j++ {
		exts[j] = p.groupExtender(level, j)
		lo, hi := p.groupRange(level, j)
		srcs[j] = c.Coeffs[lo:hi]
	}

	ys := make([]*lanes.Matrix, beta)
	vs := make([][]uint64, beta)
	for j := 0; j < beta; j++ {
		ys[j] = lanes.GetMatrix(len(srcs[j]), n)
		vs[j] = lanes.GetSlab(n)
	}
	chunks := fusedChunks(eng, n)
	size := (n + chunks - 1) / chunks
	eng.Run(beta*chunks, func(t int) {
		j, ch := t/chunks, t%chunks
		lo := ch * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if lo < hi {
			exts[j].ReduceRange(srcs[j], ys[j].Rows, vs[j], lo, hi)
		}
	})

	h := &hoistedDigits{gadget: GadgetHybrid, level: level, dig: make([]*ring.Poly, beta)}
	for j := 0; j < beta; j++ {
		h.dig[j] = rqp.GetPolyUninit() // every row fully overwritten below
	}
	eng.Run(level+k, func(m int) {
		for j := 0; j < beta; j++ {
			row := h.dig[j].Coeffs[m]
			exts[j].CombineLimb(m, ys[j].Rows, vs[j], row, 0, n)
			rqp.ForwardLimb(m, row)
		}
	})
	for j := 0; j < beta; j++ {
		h.dig[j].IsNTT = true
		lanes.PutMatrix(ys[j])
		lanes.PutSlab(vs[j])
	}
	return h
}
