package ring

// Backend-bound row kernels: the per-limb inner loops every pointwise
// ring operation and the key-switch multiply-accumulate compile down to.
// Each kernel exists in two bindings selected by the ring's
// lanes.Backend —
//
//   - portable: the spec-shaped reference (generic 128-bit reduction via
//     mod.Modulus.Mul, one method call per element), and
//   - fast: fixed-width Barrett inner loops (hoisted reduction constants,
//     the 2^128/q constant the 44-bit wire packing guarantees fits) with
//     hoisted slice headers and bounds-check-elimination reslices.
//
// Both bindings produce canonical [0, q) residues — Barrett and the
// 128-bit division reduce to the same representative — so results are
// byte-identical across backends; only the cycle count differs. The
// key-switch pair kernels (MulAddPairRow / MulPairRow) fuse both
// ciphertext halves into one pass over the digit row, which is what the
// fused hybrid pipeline in internal/ckks binds its QP MAC stage to.

import (
	"math/bits"

	"repro/internal/mod"
)

// barrett is mod.Modulus.BarrettMul with the constants hoisted into
// locals so the inliner folds it into the row loops: (a·b) mod q for
// a, b < q, via the precomputed ⌊2^128/q⌋ = bhi·2^64 + blo.
func barrett(a, b, q, bhi, blo uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	mhi, _ := bits.Mul64(lo, blo)
	c1hi, c1lo := bits.Mul64(lo, bhi)
	c2hi, c2lo := bits.Mul64(hi, blo)
	mid, carry1 := bits.Add64(c1lo, c2lo, 0)
	_, carry2 := bits.Add64(mid, mhi, 0)
	qhat := hi*bhi + c1hi + c2hi + carry1 + carry2
	r := lo - qhat*q
	if r >= q {
		r -= q
	}
	if r >= q {
		r -= q
	}
	return r
}

// mulRowFast sets oi = ai ⊙ bi with Barrett reduction.
func mulRowFast(m mod.Modulus, ai, bi, oi []uint64) {
	q, bhi, blo := m.Q, m.BHi, m.BLo
	ai = ai[:len(oi)]
	bi = bi[:len(oi)]
	for j := range oi {
		oi[j] = barrett(ai[j], bi[j], q, bhi, blo)
	}
}

// mulScalarRowFast sets oi = ai · sc for a residue scalar sc < q.
func mulScalarRowFast(m mod.Modulus, sc uint64, ai, oi []uint64) {
	q, bhi, blo := m.Q, m.BHi, m.BLo
	ai = ai[:len(oi)]
	for j := range oi {
		oi[j] = barrett(ai[j], sc, q, bhi, blo)
	}
}

// mulPermAddRowFast is the single-half permuted MAC row:
// oi[j] += ai[perm[j]]·bi[j] (perm nil ⇒ identity), Barrett-reduced.
func mulPermAddRowFast(m mod.Modulus, ai []uint64, perm []int32, bi, oi []uint64) {
	q, bhi, blo := m.Q, m.BHi, m.BLo
	bi = bi[:len(oi)]
	if perm == nil {
		ai = ai[:len(oi)]
		for j := range oi {
			v := oi[j] + barrett(ai[j], bi[j], q, bhi, blo)
			if v >= q {
				v -= q
			}
			oi[j] = v
		}
		return
	}
	perm = perm[:len(oi)]
	for j := range oi {
		v := oi[j] + barrett(ai[perm[j]], bi[j], q, bhi, blo)
		if v >= q {
			v -= q
		}
		oi[j] = v
	}
}

// MulAddPairRow accumulates one digit row into both ciphertext halves:
//
//	a0[j] += d[perm[j]]·k0[j],  a1[j] += d[perm[j]]·k1[j]
//
// (perm nil ⇒ identity), dispatching on the ring's backend. This is the
// key-switch MAC kernel — element order and accumulation order match the
// historical inner loop exactly, so staged and fused pipelines produce
// the same bytes. The limb index addresses the ring's own basis.
func (r *Ring) MulAddPairRow(limb int, perm []int32, d, k0, k1, a0, a1 []uint64) {
	m := r.Basis.Moduli[limb]
	if r.Backend().Specialized() {
		mulAddPairRowFast(m, perm, d, k0, k1, a0, a1)
		return
	}
	if perm == nil {
		for j := range a0 {
			a0[j] = m.Add(a0[j], m.Mul(d[j], k0[j]))
			a1[j] = m.Add(a1[j], m.Mul(d[j], k1[j]))
		}
		return
	}
	for j := range a0 {
		dp := d[perm[j]]
		a0[j] = m.Add(a0[j], m.Mul(dp, k0[j]))
		a1[j] = m.Add(a1[j], m.Mul(dp, k1[j]))
	}
}

func mulAddPairRowFast(m mod.Modulus, perm []int32, d, k0, k1, a0, a1 []uint64) {
	q, bhi, blo := m.Q, m.BHi, m.BLo
	k0 = k0[:len(a0)]
	k1 = k1[:len(a0)]
	a1 = a1[:len(a0)]
	if perm == nil {
		d = d[:len(a0)]
		for j := range a0 {
			dj := d[j]
			v0 := a0[j] + barrett(dj, k0[j], q, bhi, blo)
			if v0 >= q {
				v0 -= q
			}
			v1 := a1[j] + barrett(dj, k1[j], q, bhi, blo)
			if v1 >= q {
				v1 -= q
			}
			a0[j] = v0
			a1[j] = v1
		}
		return
	}
	perm = perm[:len(a0)]
	for j := range a0 {
		dj := d[perm[j]]
		v0 := a0[j] + barrett(dj, k0[j], q, bhi, blo)
		if v0 >= q {
			v0 -= q
		}
		v1 := a1[j] + barrett(dj, k1[j], q, bhi, blo)
		if v1 >= q {
			v1 -= q
		}
		a0[j] = v0
		a1[j] = v1
	}
}

// MulPairRow is the set variant of MulAddPairRow — a0/a1 are overwritten
// rather than accumulated, letting the first group of a key-switch MAC
// land on uninitialized pooled storage without a memclr pass. Writing
// d·k equals adding it to zero, so the bytes match a zeroed accumulator.
func (r *Ring) MulPairRow(limb int, perm []int32, d, k0, k1, a0, a1 []uint64) {
	m := r.Basis.Moduli[limb]
	fast := r.Backend().Specialized()
	q, bhi, blo := m.Q, m.BHi, m.BLo
	k0 = k0[:len(a0)]
	k1 = k1[:len(a0)]
	a1 = a1[:len(a0)]
	if perm == nil {
		d = d[:len(a0)]
		if fast {
			for j := range a0 {
				dj := d[j]
				a0[j] = barrett(dj, k0[j], q, bhi, blo)
				a1[j] = barrett(dj, k1[j], q, bhi, blo)
			}
			return
		}
		for j := range a0 {
			a0[j] = m.Mul(d[j], k0[j])
			a1[j] = m.Mul(d[j], k1[j])
		}
		return
	}
	perm = perm[:len(a0)]
	if fast {
		for j := range a0 {
			dj := d[perm[j]]
			a0[j] = barrett(dj, k0[j], q, bhi, blo)
			a1[j] = barrett(dj, k1[j], q, bhi, blo)
		}
		return
	}
	for j := range a0 {
		dp := d[perm[j]]
		a0[j] = m.Mul(dp, k0[j])
		a1[j] = m.Mul(dp, k1[j])
	}
}

// SubMulAddRow is the ModDown rounding-division kernel, one limb:
//
//	oi[j] += (si[j] − ei[j]) · inv   (mod the limb prime)
//
// dispatching on the ring's backend. Both bindings use the same Barrett
// product (the portable path always has — this kernel never used the
// generic division), so the dispatch only buys the hoisted-constant,
// bounds-check-free loop on the fast path.
func (r *Ring) SubMulAddRow(limb int, inv uint64, si, ei, oi []uint64) {
	m := r.Basis.Moduli[limb]
	if !r.Backend().Specialized() {
		for j := range oi {
			oi[j] = m.Add(oi[j], m.BarrettMul(m.Sub(si[j], ei[j]), inv))
		}
		return
	}
	q, bhi, blo := m.Q, m.BHi, m.BLo
	si = si[:len(oi)]
	ei = ei[:len(oi)]
	for j := range oi {
		d := si[j] - ei[j]
		if si[j] < ei[j] {
			d += q
		}
		v := oi[j] + barrett(d, inv, q, bhi, blo)
		if v >= q {
			v -= q
		}
		oi[j] = v
	}
}

// ForwardLimb runs the limb-i forward NTT on a raw coefficient row
// through the backend-bound kernel (lazy butterflies on the fast path).
func (r *Ring) ForwardLimb(i int, row []uint64) {
	if r.Backend().Specialized() {
		r.Tables[i].ForwardLazy(row)
		return
	}
	r.Tables[i].Forward(row)
}

// InverseLimb is ForwardLimb's inverse-transform sibling.
func (r *Ring) InverseLimb(i int, row []uint64) {
	if r.Backend().Specialized() {
		r.Tables[i].InverseLazy(row)
		return
	}
	r.Tables[i].Inverse(row)
}
