package ckks

import "sort"

// EvaluationKeySet bundles everything a keyless server needs to compute on
// ciphertexts beyond additions: the relinearization key (ct×ct multiply)
// and a configurable set of rotation keys (slot rotations, conjugation,
// inner sums). The set is public-but-powerful material: it does not help
// decrypt, but whoever holds it can transform the key owner's ciphertexts
// — it belongs on the server, never on the encrypting devices (which need
// only the public key) and never back at rest with ciphertexts.
//
// MaxLevel caps the depth every key in the set supports. Gadget records
// which decomposition the keys were built for: GadgetHybrid (the default
// wherever the parameter set carries special primes) holds ⌈D/α⌉ rows of
// D+α limbs per key — linear in depth — while GadgetBV is quadratic (a
// depth-D key holds D·Digits·2 polynomials of D limbs each), so exporting
// keys no deeper than the server's actual circuit keeps blobs proportional
// to the work — see EvalKeyInfo and the wire-size helpers in
// evalkeyserialize.go.
type EvaluationKeySet struct {
	Rlk      *RelinearizationKey
	Rot      map[int]*RotationKey // by normalized slot step in [1, Slots)
	Conj     *RotationKey         // nil unless conjugation was requested
	MaxLevel int
	Gadget   Gadget
}

// Steps lists the set's rotation steps in ascending order (the canonical
// wire order).
func (ks *EvaluationKeySet) Steps() []int {
	steps := make([]int, 0, len(ks.Rot))
	for k := range ks.Rot {
		steps = append(steps, k)
	}
	sort.Ints(steps)
	return steps
}

// InnerSumRotations returns the power-of-two rotation-step ladder
// {1, 2, 4, …, n/2} that a log-depth inner sum over n slots consumes
// (n must be a power of two; n ≤ 1 needs no rotations).
func InnerSumRotations(n int) []int {
	var steps []int
	for s := 1; s < n; s <<= 1 {
		steps = append(steps, s)
	}
	return steps
}

// GenEvaluationKeySet derives a key set deterministically from the
// generator's seed: the relinearization key plus one rotation key per
// (deduplicated, normalized) step, all capped at maxLevel limbs and built
// for the requested gadget, and the conjugation key when conj is set.
// Step 0 (the identity) is dropped. Every call with the same arguments
// regenerates byte-identical keys. GadgetHybrid requires a parameter set
// with special primes.
func (kg *KeyGenerator) GenEvaluationKeySet(sk *SecretKey, maxLevel int, steps []int, conj bool, gadget Gadget) *EvaluationKeySet {
	p := kg.params
	if maxLevel < 1 || maxLevel > p.MaxLevel() {
		panic("ckks: evaluation-key depth out of range")
	}
	if gadget == GadgetHybrid {
		if p.SpecialLimbs == 0 {
			panic("ckks: hybrid evaluation keys need special primes (ParamSpec.SpecialLimbs)")
		}
		// The hybrid keygen re-derives the secret from the generator's
		// seed (the stored SecretKey carries only Q limbs; extending to
		// the P basis needs the signed form). A caller-supplied sk that
		// is not this seed's secret would silently produce keys for the
		// wrong key pair — every server result would decrypt to noise —
		// so the mismatch is a loud invariant violation instead.
		if check := kg.GenSecretKey(); !p.Ring().Equal(check.S, sk.S) {
			panic("ckks: hybrid evaluation keys derive the secret from the generator seed; the provided secret key does not match it")
		}
	}
	genRot := func(g int) *RotationKey {
		if gadget == GadgetHybrid {
			return kg.GenRotationKeyHybridAt(g, maxLevel)
		}
		return kg.GenRotationKeyAt(sk, g, maxLevel)
	}
	ks := &EvaluationKeySet{
		Rot:      make(map[int]*RotationKey),
		MaxLevel: maxLevel,
		Gadget:   gadget,
	}
	if gadget == GadgetHybrid {
		ks.Rlk = kg.GenRelinearizationKeyHybridAt(maxLevel)
	} else {
		ks.Rlk = kg.GenRelinearizationKeyAt(sk, maxLevel)
	}
	for _, k := range steps {
		k = p.NormalizeStep(k)
		if k == 0 {
			continue
		}
		if _, ok := ks.Rot[k]; ok {
			continue
		}
		ks.Rot[k] = genRot(p.GaloisElement(k))
	}
	if conj {
		ks.Conj = genRot(p.GaloisElementConjugate())
	}
	return ks
}
