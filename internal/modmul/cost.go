package modmul

// Structural cost model. Each design is decomposed into multiplier
// partial-product bits, shift-add adder bits and pipeline register bits;
// areas at other widths scale by structure relative to the 44-bit Table I
// anchors (DESIGN.md calibration policy: absolute values anchored, ratios
// and scaling computed).

// Structure tallies the hardware content of one design at width w.
type Structure struct {
	Design Design
	Width  int

	FullMultBits int // partial-product bits of full multipliers
	HalfMultBits int // partial-product bits of truncated (half) multipliers
	AdderBits    int // carry-propagate adder bits (incl. shift-add networks)
	RegisterBits int // pipeline register bits
}

// StructureAt computes the structural decomposition of a design at operand
// width w (bits). ShiftAddTerms parameterizes the friendly design's
// network size (paper family: ≤ 5 terms for Q, ≤ 5 for QInv — use
// DefaultShiftAddTerms when modelling the family generically).
func StructureAt(d Design, w int, shiftAddTerms int) Structure {
	s := Structure{Design: d, Width: w}
	switch d {
	case Barrett:
		// T = a·b (full w×w); qm = q1·mu (full (w+1)×(w+2), wide because
		// the quotient estimate needs guard bits); r = q2·Q (low-half
		// (w+1)×w); two correction subtractors.
		s.FullMultBits = w*w + (w+1)*(w+2)
		s.HalfMultBits = (w + 1) * w / 2
		s.AdderBits = 3 * w // subtraction + two corrections
		s.RegisterBits = d.PipelineStages() * 2 * w
	case Montgomery:
		// T = a·b (full w×w); m = (T mod R)·QInv (low-half r×r);
		// mq (high-half r×w with carry trick); one correction.
		r := w + 2
		s.FullMultBits = w * w
		s.HalfMultBits = r*r/2 + r*w/2
		s.AdderBits = 2 * w
		s.RegisterBits = d.PipelineStages() * 2 * w
	case FriendlyMontgomery:
		// T = a·b (full w×w) is the only multiplier; both reductions are
		// shift-add networks of `shiftAddTerms` adders each.
		if shiftAddTerms <= 0 {
			shiftAddTerms = DefaultShiftAddTerms
		}
		s.FullMultBits = w * w
		s.HalfMultBits = 0
		s.AdderBits = 2*shiftAddTerms*w + 2*w
		s.RegisterBits = d.PipelineStages() * 2 * w
	}
	return s
}

// DefaultShiftAddTerms is the family-generic network size: NAF weight ≤ 5
// for both Q and QInv.
const DefaultShiftAddTerms = 5

// weights of the structural unit costs relative to a full-multiplier
// partial-product bit. Register bits in a 600 MHz 28 nm flow cost roughly
// 4× a partial-product bit (a flop ≈ 4–5 NAND-equivalents vs ~1 for an
// AND+3:2 compressor slice); adders ≈ 3×. These are engineering constants,
// not fits — the absolute anchor below absorbs the overall scale.
const (
	unitFullMult = 1.0
	unitHalfMult = 1.0
	unitAdder    = 3.0
	unitRegister = 4.0
)

// Units collapses a structure to scalar structural units.
func (s Structure) Units() float64 {
	return unitFullMult*float64(s.FullMultBits) +
		unitHalfMult*float64(s.HalfMultBits) +
		unitAdder*float64(s.AdderBits) +
		unitRegister*float64(s.RegisterBits)
}

// AreaUM2 returns the modelled area at width w: the Table I anchor scaled
// by structural units relative to the anchor width (44 bits).
func AreaUM2(d Design, w int) float64 {
	anchor := StructureAt(d, 44, DefaultShiftAddTerms).Units()
	at := StructureAt(d, w, DefaultShiftAddTerms).Units()
	return d.PaperAreaUM2() * at / anchor
}

// ReductionVsBarrett returns the fractional area reduction of design d
// versus Barrett at the anchor width (paper: 67.7% for the friendly
// design, 45.1% for vanilla Montgomery).
func ReductionVsBarrett(d Design) float64 {
	return 1 - d.PaperAreaUM2()/Barrett.PaperAreaUM2()
}

// ReductionVsMontgomery returns the friendly design's reduction versus
// vanilla Montgomery (paper: 41.2%).
func ReductionVsMontgomery() float64 {
	return 1 - FriendlyMontgomery.PaperAreaUM2()/Montgomery.PaperAreaUM2()
}

// ModelReductionVsBarrett is the same ratio produced purely by the
// structural model (no Table I anchors) — how close first-principles
// structure gets to the synthesis numbers; EXPERIMENTS.md reports both.
func ModelReductionVsBarrett(d Design) float64 {
	b := StructureAt(Barrett, 44, DefaultShiftAddTerms).Units()
	x := StructureAt(d, 44, DefaultShiftAddTerms).Units()
	return 1 - x/b
}
