package abcfhe

// Public-surface tests of the polynomial-evaluation stack: BSGS Chebyshev
// evaluation pinned against the plaintext Horner oracle at every preset ×
// both gadgets, the misuse matrix of the new entry points, backend×worker
// byte-identity, and the PN15 EvalMod-after-CoeffsToSlots round trip with
// its pinned worst-slot precision floor (the fftfp degree-15 sine
// surrogate as the oracle).

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ckks"
	"repro/internal/fftfp"
)

// polyHornerRef is the plaintext oracle: Σ coeffs[i]·zⁱ per slot.
func polyHornerRef(coeffs []complex128, msg []complex128) []complex128 {
	out := make([]complex128, len(msg))
	for i, z := range msg {
		acc := complex(0, 0)
		for k := len(coeffs) - 1; k >= 0; k-- {
			acc = acc*z + coeffs[k]
		}
		out[i] = acc
	}
	return out
}

// realMsg fills every slot with a real value inside [lo, hi] — the
// interval contract EvalPoly's precision is specified over.
func realMsg(slots int, lo, hi float64, rng *rand.Rand) []complex128 {
	msg := make([]complex128, slots)
	for i := range msg {
		msg[i] = complex(lo+(hi-lo)*rng.Float64(), 0)
	}
	return msg
}

func randCoeffs(deg int, rng *rand.Rand) []complex128 {
	coeffs := make([]complex128, deg+1)
	for i := range coeffs {
		coeffs[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	if coeffs[deg] == 0 {
		coeffs[deg] = 1
	}
	return coeffs
}

// evalPolyDegrees returns the degrees a preset's depth admits (the g = 2
// floor is 2·(⌈log2 d⌉+2)+3 limbs on the double-scale presets: 1 fits in
// 7, 3 in 9, 7 in 11, 15 in 13; the Test preset's 4 limbs admit degree 1).
func evalPolyDegrees(server *Server) []int {
	var degs []int
	for _, d := range []int{1, 3, 7, 15} {
		if server.EvalPolyMinLevel(d) <= server.MaxLevel() {
			degs = append(degs, d)
		}
	}
	return degs
}

// TestEvalPolyEveryPreset: random coefficient vectors at every feasible
// degree on all shipped presets must match the plaintext Horner oracle
// within a per-preset worst-slot floor; the hybrid gadget runs the full
// degree ladder, GadgetBV one shallow degree (its keys are quadratic in
// depth).
func TestEvalPolyEveryPreset(t *testing.T) {
	for _, preset := range Presets() {
		preset := preset
		t.Run(string(preset), func(t *testing.T) {
			spec, err := preset.spec()
			if err != nil {
				t.Fatal(err)
			}
			if testing.Short() && spec.LogN >= 14 {
				t.Skip("paper-scale preset")
			}
			owner, device, server := threeParties(t, preset, 0xE9A0, 0xEA57)
			defer owner.Close()
			defer device.Close()
			defer server.Close()

			rng := rand.New(rand.NewSource(int64(spec.LogN)))
			lo, hi := -1.0, 1.0
			msg := realMsg(server.Slots(), lo, hi, rng)
			ct, err := device.EncodeEncrypt(msg)
			if err != nil {
				t.Fatal(err)
			}

			// Δ = 2^30 on Test: rescale/encryption noise dominates; the
			// double-scale presets keep ≥ 30 bits through the deepest ladder.
			tol := 1e-4
			if preset == Test {
				tol = 5e-2
			}

			// One key export per gadget (keygen dominates at paper scale):
			// the hybrid set at the deepest KeyLevel in the ladder serves
			// every degree — deeper-than-needed keys are the common case —
			// and the BV set covers its one shallow degree.
			degs := evalPolyDegrees(server)
			bvDeg := degs[0]
			if len(degs) > 1 {
				bvDeg = degs[1]
			}
			plans := map[int]*PolyEval{}
			coeffsByDeg := map[int][]complex128{}
			maxKeyLevel := 0
			for _, deg := range degs {
				coeffs := randCoeffs(deg, rng)
				pe, err := server.NewPolyEval(coeffs, lo, hi, 0)
				if err != nil {
					t.Fatalf("deg %d: %v", deg, err)
				}
				plans[deg], coeffsByDeg[deg] = pe, coeffs
				if pe.KeyLevel() > maxKeyLevel {
					maxKeyLevel = pe.KeyLevel()
				}
			}
			exportKeys := func(maxLevel int, gadget GadgetType) *EvaluationKeys {
				t.Helper()
				evkBytes, err := owner.ExportEvaluationKeys(EvalKeyConfig{
					MaxLevel: maxLevel, Gadget: gadget})
				if err != nil {
					t.Fatal(err)
				}
				evk, err := server.ImportEvaluationKeys(evkBytes)
				if err != nil {
					t.Fatal(err)
				}
				return evk
			}
			hybridKeys := exportKeys(maxKeyLevel, GadgetHybrid)
			bvKeys := exportKeys(plans[bvDeg].KeyLevel(), GadgetBV)

			run := func(deg int, gadget GadgetType, evk *EvaluationKeys) {
				t.Helper()
				pe := plans[deg]
				out, err := server.EvalPoly(ct, pe, evk)
				if err != nil {
					t.Fatalf("deg %d: %v", deg, err)
				}
				if out.Level != pe.Level()-pe.Depth() {
					t.Fatalf("deg %d: output level %d, want %d", deg, out.Level, pe.Level()-pe.Depth())
				}
				got, err := owner.DecryptDecode(out)
				if err != nil {
					t.Fatal(err)
				}
				if e := worstSlotErr(polyHornerRef(coeffsByDeg[deg], msg), got); e > tol {
					t.Fatalf("deg %d gadget %d: worst-slot error %g (budget %g)", deg, gadget, e, tol)
				}
			}
			for _, deg := range degs {
				run(deg, GadgetHybrid, hybridKeys)
			}
			run(bvDeg, GadgetBV, bvKeys)
		})
	}
}

// TestEvalPolyMisuse: the typed-error matrix of the new entry points —
// every misuse returns a sentinel, never panics.
func TestEvalPolyMisuse(t *testing.T) {
	owner, device, server := threeParties(t, Test, 0xE9A2, 0xEA59)
	defer owner.Close()
	defer device.Close()
	defer server.Close()

	lin := []complex128{0.25, 0.5} // the one degree Test's 4 limbs admit

	newPolyCases := []struct {
		name   string
		coeffs []complex128
		lo, hi float64
		level  int
		want   error
	}{
		{"empty coefficients", nil, -1, 1, 0, ErrInvalidSpan},
		{"constant polynomial", []complex128{3}, -1, 1, 0, ErrInvalidSpan},
		{"constant after trimming", []complex128{3, 0, 0}, -1, 1, 0, ErrInvalidSpan},
		{"degree above cap", make([]complex128, 1026), -1, 1, 0, ErrInvalidSpan},
		{"NaN coefficient", []complex128{complex(math.NaN(), 0), 1}, -1, 1, 0, ErrInvalidConstant},
		{"Inf coefficient", []complex128{0, complex(0, math.Inf(1))}, -1, 1, 0, ErrInvalidConstant},
		{"NaN interval bound", lin, math.NaN(), 1, 0, ErrInvalidSpan},
		{"Inf interval bound", lin, -1, math.Inf(1), 0, ErrInvalidSpan},
		{"inverted interval", lin, 1, -1, 0, ErrInvalidSpan},
		{"empty interval", lin, 1, 1, 0, ErrInvalidSpan},
		{"interval too narrow", lin, 0, 1.0 / (1 << 20), 0, ErrInvalidSpan},
		{"interval bound too large", lin, -1, 1 << 21, 0, ErrInvalidSpan},
		{"degree exceeds parameter depth", []complex128{0, 0, 1}, -1, 1, 0, ErrLevelOutOfRange},
		{"level below the floor", lin, -1, 1, 3, ErrLevelOutOfRange},
		{"level above the chain", lin, -1, 1, 99, ErrLevelOutOfRange},
		{"Chebyshev coefficient blow-up", []complex128{0, 1 << 30}, -(1 << 20), 1 << 20, 0, ErrInvalidConstant},
	}
	for _, tc := range newPolyCases {
		if _, err := server.NewPolyEval(tc.coeffs, tc.lo, tc.hi, tc.level); !errors.Is(err, tc.want) {
			t.Errorf("NewPolyEval %s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// make([]complex128, 1026) trims to nothing — force a real high degree.
	huge := make([]complex128, 1026)
	huge[1025] = 1
	if _, err := server.NewPolyEval(huge, -1, 1, 0); !errors.Is(err, ErrInvalidSpan) {
		t.Errorf("NewPolyEval degree above cap: %v", err)
	}

	pe, err := server.NewPolyEval(lin, -1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	msg := testMsgs(server.Slots(), 1)[0]
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	evkBytes, err := owner.ExportEvaluationKeys(EvalKeyConfig{MaxLevel: pe.KeyLevel()})
	if err != nil {
		t.Fatal(err)
	}
	evk, err := server.ImportEvaluationKeys(evkBytes)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := server.EvalPoly(nil, pe, evk); !errors.Is(err, ErrInvalidCiphertext) {
		t.Errorf("EvalPoly nil ciphertext: %v", err)
	}
	if _, err := server.EvalPoly(ct, pe, nil); !errors.Is(err, ErrEvaluationKeyMissing) {
		t.Errorf("EvalPoly nil key set: %v", err)
	}
	// A set without the relinearization key (hand-built: every exported
	// blob carries one) errors before any compute.
	noRlk := &EvaluationKeys{set: &ckks.EvaluationKeySet{MaxLevel: server.MaxLevel(), Gadget: ckks.GadgetHybrid}}
	if _, err := server.EvalPoly(ct, pe, noRlk); !errors.Is(err, ErrEvaluationKeyMissing) {
		t.Errorf("EvalPoly missing relinearization key: %v", err)
	}
	// Input below the compiled level cannot be lifted.
	low, err := server.DropLevel(ct, pe.Level()-1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.EvalPoly(low, pe, evk); !errors.Is(err, ErrLevelOutOfRange) {
		t.Errorf("EvalPoly input below plan level: %v", err)
	}
	// Keys shallower than the plan's product level.
	shallowBytes, err := owner.ExportEvaluationKeys(EvalKeyConfig{MaxLevel: pe.KeyLevel() - 1})
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := server.ImportEvaluationKeys(shallowBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.EvalPoly(ct, pe, shallow); !errors.Is(err, ErrLevelOutOfRange) {
		t.Errorf("EvalPoly keys too shallow: %v", err)
	}

	evalModCases := []struct {
		name string
		cfg  EvalModConfig
		want error
	}{
		{"degree above cap", EvalModConfig{Degree: 64, Range: 8}, ErrInvalidSpan},
		{"negative degree", EvalModConfig{Degree: -1, Range: 8}, ErrInvalidSpan},
		{"NaN range", EvalModConfig{Degree: 1, Range: math.NaN()}, ErrInvalidSpan},
		{"range too large", EvalModConfig{Degree: 1, Range: 1 << 21}, ErrInvalidSpan},
		{"NaN scaling", EvalModConfig{Degree: 1, Range: 8, Scaling: math.NaN()}, ErrInvalidConstant},
		{"default degree exceeds Test depth", EvalModConfig{}, ErrLevelOutOfRange},
	}
	for _, tc := range evalModCases {
		if _, err := server.NewEvalMod(tc.cfg); !errors.Is(err, tc.want) {
			t.Errorf("NewEvalMod %s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// EvalMod shares EvalPoly's apply-time checks.
	em, err := server.NewEvalMod(EvalModConfig{Degree: 1, Range: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.EvalMod(ct, em, nil); !errors.Is(err, ErrEvaluationKeyMissing) {
		t.Errorf("EvalMod nil key set: %v", err)
	}
}

// evalPolyBackendRun drives EvalPoly and EvalMod under one (backend,
// workers) configuration and returns the result bytes.
func evalPolyBackendRun(t *testing.T, backend string, workers int) map[string][]byte {
	t.Helper()
	opts := []Option{WithWorkers(workers), WithBackend(backend)}
	owner, device, server := threeParties(t, Test, 0xB571, 0xB572, opts...)
	defer owner.Close()
	defer device.Close()
	defer server.Close()

	pe, err := server.NewPolyEval([]complex128{complex(0.125, -0.25), complex(0.75, 0.0625)}, -1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	em, err := server.NewEvalMod(EvalModConfig{Degree: 1, Range: 8})
	if err != nil {
		t.Fatal(err)
	}
	evkBytes, err := owner.ExportEvaluationKeys(EvalKeyConfig{MaxLevel: pe.KeyLevel()})
	if err != nil {
		t.Fatal(err)
	}
	evk, err := server.ImportEvaluationKeys(evkBytes)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := device.EncodeEncrypt(testMsgs(server.Slots(), 1)[0])
	if err != nil {
		t.Fatal(err)
	}

	out := map[string][]byte{}
	record := func(name string, c *Ciphertext, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s (backend=%s workers=%d): %v", name, backend, workers, err)
		}
		blob, err := server.SerializeCiphertext(c)
		if err != nil {
			t.Fatalf("serialize %s: %v", name, err)
		}
		out[name] = blob
	}
	pOut, err := server.EvalPoly(ct, pe, evk)
	record("evalpoly", pOut, err)
	mOut, err := server.EvalMod(ct, em, evk)
	record("evalmod", mOut, err)
	return out
}

// TestEvalPolyBackendWorkerInvariance mirrors the other invariance suites:
// portable/fast × worker counts 1, 2, 8 must all produce the portable
// single-worker reference's bytes for evalpoly and evalmod. (The deep
// PN15 schedule's invariance is pinned by TestPN15EvalModRoundTrip.)
func TestEvalPolyBackendWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps 6 full evaluation pipelines")
	}
	ref := evalPolyBackendRun(t, "portable", 1)
	for _, backend := range []string{"portable", "fast"} {
		for _, workers := range []int{1, 2, 8} {
			if backend == "portable" && workers == 1 {
				continue
			}
			got := evalPolyBackendRun(t, backend, workers)
			for name, want := range ref {
				if !bytes.Equal(got[name], want) {
					t.Fatalf("%s: bytes diverge under backend=%s workers=%d", name, backend, workers)
				}
			}
		}
	}
}

// pn15EvalModRun executes the bootstrap nonlinear stage at PN15 under one
// (backend, workers) configuration: encrypt, CoeffsToSlots, EvalMod on
// both coefficient halves, compare each against fftfp.SinSurrogate
// applied to the decrypted CoeffsToSlots outputs (so the measurement
// isolates EvalMod's own noise), and return the result blobs plus the
// worst-slot error across both halves.
func pn15EvalModRun(t *testing.T, backend string, workers int) (blobs map[string][]byte, worst float64) {
	t.Helper()
	opts := []Option{WithWorkers(workers), WithBackend(backend)}
	owner, device, server := threeParties(t, PN15, 0x9F25, 0x9F26, opts...)
	defer owner.Close()
	defer device.Close()
	defer server.Close()
	slots := server.Slots()

	// StartLevel 19: the c2s outputs land at MidLevel 15, exactly the
	// degree-15 EvalMod's preferred-schedule level.
	const startLevel, levels = 19, 2
	dft, err := server.NewHomomorphicDFT(HomomorphicDFTConfig{StartLevel: startLevel, Levels: levels})
	if err != nil {
		t.Fatal(err)
	}
	em, err := server.NewEvalMod(EvalModConfig{Level: dft.MidLevel()})
	if err != nil {
		t.Fatal(err)
	}
	evkBytes, err := owner.ExportEvaluationKeys(EvalKeyConfig{
		MaxLevel:  startLevel,
		Rotations: HomomorphicDFTRotations(slots, levels),
		Conjugate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	evk, err := server.ImportEvaluationKeys(evkBytes)
	if err != nil {
		t.Fatal(err)
	}

	ct, err := device.EncodeEncrypt(testMsgs(slots, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	re, im, err := server.CoeffsToSlots(ct, dft, evk)
	if err != nil {
		t.Fatal(err)
	}

	blobs = map[string][]byte{}
	for name, half := range map[string]*Ciphertext{"re": re, "im": im} {
		out, err := server.EvalMod(half, em, evk)
		if err != nil {
			t.Fatalf("EvalMod %s half: %v", name, err)
		}
		blob, err := server.SerializeCiphertext(out)
		if err != nil {
			t.Fatal(err)
		}
		blobs[name] = blob

		in, err := owner.DecryptDecode(half)
		if err != nil {
			t.Fatal(err)
		}
		got, err := owner.DecryptDecode(out)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, len(in))
		for i, z := range in {
			want[i] = complex(
				fftfp.SinSurrogate(real(z), em.Degree(), em.Range()),
				fftfp.SinSurrogate(imag(z), em.Degree(), em.Range()))
		}
		if e := worstSlotErr(want, got); e > worst {
			worst = e
		}
	}
	return blobs, worst
}

// TestPN15EvalModRoundTrip is the CI gate of the tentpole: at the
// paper-scale PN15 preset, the degree-15 sine-surrogate EvalMod applied
// after CoeffsToSlots must track the fftfp plaintext oracle with at least
// pn15EvalModFloorBits bits of worst-slot precision, byte-identical
// across backends and worker counts (portable/1 vs fast/8).
func TestPN15EvalModRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale preset round trip")
	}
	// Acceptance floor: ≥ 20 bits. The reference run measures well above
	// it (Δ = 2^66 leaves the BSGS ladder ≈ 40 bits); regressions in the
	// schedule's scale bookkeeping or the key-switch noise path land here.
	const pn15EvalModFloorBits = 20.0

	ref, errPortable := pn15EvalModRun(t, "portable", 1)
	bits := -math.Log2(errPortable)
	t.Logf("PN15 C2S→EvalMod worst-slot error %.3g (%.1f bits)", errPortable, bits)
	if bits < pn15EvalModFloorBits {
		t.Fatalf("EvalMod precision %.1f bits, floor %g", bits, pn15EvalModFloorBits)
	}

	got, errFast := pn15EvalModRun(t, "fast", 8)
	if errFast != errPortable {
		t.Fatalf("EvalMod error differs across backends: %g vs %g", errFast, errPortable)
	}
	for name, want := range ref {
		if !bytes.Equal(got[name], want) {
			t.Fatalf("%s half: bytes diverge between portable/1 and fast/8", name)
		}
	}
}
