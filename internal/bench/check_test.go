package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testReport mirrors the ops the gate measures, at the measured values.
func testReport() BenchReport {
	return BenchReport{Records: []BenchRecord{
		{Op: "EncodeEncrypt", AllocsPerOp: 51},
		{Op: "DecryptDecode", AllocsPerOp: 23},
		{Op: "RotateHybrid", AllocsPerOp: 49},
		{Op: "RotateHybridFused", AllocsPerOp: 89},
		{Op: "RotateBV", AllocsPerOp: 78},
		{Op: "LinearTransformBSGS", AllocsPerOp: 355},
		{Op: "LinearTransformNaive", AllocsPerOp: 727},
		{Op: "RotateHybridPN15", AllocsPerOp: 72},
		{Op: "RotateHybridFusedPN15", AllocsPerOp: 299},
		{Op: "MulRelinHybridPN15", AllocsPerOp: 92},
		{Op: "MulRelinHybridPN15Fused", AllocsPerOp: 319},
		{Op: "MulRelinBVPN15", AllocsPerOp: 764},
		{Op: "CoeffsToSlotsPN15", AllocsPerOp: 3444},
		{Op: "EvalPolyPN15", AllocsPerOp: 1128},
		{Op: "EvalModPN15", AllocsPerOp: 1779},
		{Op: "EvkBlobHybridPN15", BlobBytes: 242221089},
		{Op: "EvkBlobBVPN15", BlobBytes: 4152360993},
	}}
}

// loadCommittedBudgets reads the repo's bench_budget.json (two levels up
// from this package).
func loadCommittedBudgets(t *testing.T) map[string]budgetEntry {
	t.Helper()
	budgets, err := loadBudgets(filepath.Join("..", "..", "bench_budget.json"))
	if err != nil {
		t.Fatalf("bench_budget.json does not parse: %v", err)
	}
	return budgets
}

// TestCommittedBudgetsPassAtMeasuredValues: the checked-in budget file
// accepts the measured baseline (so a fresh CI run of the gate passes) and
// names only ops the gate actually measures.
func TestCommittedBudgetsPassAtMeasuredValues(t *testing.T) {
	budgets := loadCommittedBudgets(t)
	if fails := budgetFailures(testReport(), budgets); len(fails) != 0 {
		t.Fatalf("committed budgets reject the measured baseline: %v", fails)
	}
	// Every measured op with a deterministic metric must be budgeted —
	// the gate exists to catch regressions, not to watch a subset.
	for _, r := range testReport().Records {
		if _, ok := budgets[r.Op]; !ok {
			t.Errorf("measured op %q has no committed budget", r.Op)
		}
	}
}

// TestBudgetGateCatchesRegressions: exceeding an alloc or blob budget, or
// budgeting a vanished op, fails the gate.
func TestBudgetGateCatchesRegressions(t *testing.T) {
	budgets := map[string]budgetEntry{
		"_comment": {},
		"Op":       {MaxAllocsPerOp: 10},
		"Blob":     {MaxBlobBytes: 100},
		"Vanished": {MaxAllocsPerOp: 1},
	}
	report := BenchReport{Records: []BenchRecord{
		{Op: "Op", AllocsPerOp: 11},
		{Op: "Blob", BlobBytes: 101},
	}}
	fails := budgetFailures(report, budgets)
	if len(fails) != 3 {
		t.Fatalf("want 3 failures (allocs, blob, vanished op), got %v", fails)
	}
	for _, f := range fails {
		if strings.HasPrefix(f, "budget entry \"_comment\"") {
			t.Fatalf("comment key flagged: %v", fails)
		}
	}
}

// TestLastReport: the delta baseline is the final element of the array
// document, a legacy single-object file is accepted, and a missing or
// unparseable file reports no baseline.
func TestLastReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if _, ok := lastReport(path); ok {
		t.Fatal("missing file must report no baseline")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := lastReport(path); ok {
		t.Fatal("garbage file must report no baseline")
	}
	if err := os.WriteFile(path, []byte(`{"go_version":"go1.0","records":[{"op":"Solo","ns_per_op":5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if prev, ok := lastReport(path); !ok || prev.GoVersion != "go1.0" {
		t.Fatalf("legacy single-object baseline not lifted: ok=%v prev=%+v", ok, prev)
	}
	first := BenchReport{GoVersion: "go1.1", Records: []BenchRecord{{Op: "A", NsPerOp: 100}}}
	second := BenchReport{GoVersion: "go1.2", Records: []BenchRecord{{Op: "A", NsPerOp: 90}}}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	for _, r := range []BenchReport{first, second} {
		if err := appendReport(path, r); err != nil {
			t.Fatal(err)
		}
	}
	prev, ok := lastReport(path)
	if !ok || prev.GoVersion != "go1.2" || prev.Records[0].NsPerOp != 90 {
		t.Fatalf("baseline is not the last appended report: ok=%v prev=%+v", ok, prev)
	}
}

// TestWriteDeltaTable: matched ops show a signed percentage and the alloc
// movement, blob rows compare bytes, and ops present on only one side are
// labelled new/dropped rather than silently skipped.
func TestWriteDeltaTable(t *testing.T) {
	prev := BenchReport{GoVersion: "go1.1", GOARCH: "amd64", Records: []BenchRecord{
		{Op: "Mul", NsPerOp: 1000, AllocsPerOp: 10},
		{Op: "Blob", BlobBytes: 200},
		{Op: "Gone", NsPerOp: 5},
	}}
	cur := BenchReport{Records: []BenchRecord{
		{Op: "Mul", NsPerOp: 800, AllocsPerOp: 12},
		{Op: "Blob", BlobBytes: 100},
		{Op: "Fresh", NsPerOp: 7},
	}}
	var sb strings.Builder
	writeDeltaTable(&sb, prev, cur)
	out := sb.String()
	for _, want := range []string{
		"go1.1/amd64", "-20.0%", "10 -> 12", "-50.0%", "(blob bytes)", "new", "dropped",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("delta table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Gone") != true || strings.Contains(out, "Fresh") != true {
		t.Errorf("one-sided ops absent from table:\n%s", out)
	}
}

func TestPctDelta(t *testing.T) {
	if got := pctDelta(0, 5); got != "n/a" {
		t.Errorf("pctDelta(0, 5) = %q, want n/a", got)
	}
	if got := pctDelta(200, 250); got != "+25.0%" {
		t.Errorf("pctDelta(200, 250) = %q, want +25.0%%", got)
	}
}
