package ckks

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/prng"
	"repro/internal/ring"
)

// Seeded ciphertexts: an extension the paper's on-chip PRNG architecture
// makes natural. In a fresh symmetric-style encryption the second
// component c1 can be a *publicly derivable* uniform polynomial — so the
// client transmits only (c0, seed) and the server regenerates c1 from the
// 16-byte seed, halving the client→server ciphertext traffic (and with
// it the DRAM write stream that bounds ABC-FHE's encode throughput at 8
// lanes; see the "seeded" ablation in cmd/abcbench-adjacent tooling and
// examples/seeded).
//
// Construction (secret-key encryption, the standard seeded form):
//
//	a   = Uniform(seed, stream)        — in the NTT domain
//	c0  = -a·s + e + m
//	ct  = (c0, a), transmitted as (c0, seed)
//
// Fresh uploads from the key owner do not need the public key, so this
// composes with the client-side flow the paper accelerates.

// SeededCiphertext is the compressed wire form: c0 plus the PRNG
// coordinates that regenerate c1.
type SeededCiphertext struct {
	C0     *ring.Poly // coefficient domain
	Seed   [16]byte
	Stream uint64
	Level  int
	Scale  float64
}

// SeededEncryptor performs secret-key seeded encryption. The call counter
// is atomic, so one instance can encrypt from many goroutines.
//
// Two seeds are in play, both PRF-derived from the caller's root seed by
// the constructor (the root seed itself is never stored here and never
// reaches the wire): maskSeed regenerates the public masks and is
// transmitted with every upload; errSeed drives the Gaussian error and
// is never transmitted — if the error were derivable from the wire
// bytes, every upload would collapse to an errorless RLWE sample.
type SeededEncryptor struct {
	params   *Parameters
	sk       *SecretKey
	maskSeed [16]byte // on the wire with every upload
	errSeed  [16]byte // private: error randomness
	calls    atomic.Uint64
}

// NewSeededEncryptor builds a seeded encryptor from the caller's root
// seed (mask and error seeds are derived internally — see the type doc).
func NewSeededEncryptor(params *Parameters, sk *SecretKey, seed [16]byte) *SeededEncryptor {
	return NewSeededEncryptorAt(params, sk, seed, 0)
}

// NewSeededEncryptorAt is NewSeededEncryptor with the stream counter
// starting at base instead of 0. A (seed, stream) pair must never
// encrypt twice — c0 − c0' would equal the plaintext difference with no
// noise — so callers that cannot persist the counter across processes
// (key-owner restart or migration, where the seed is fixed by the key
// blob) pass a fresh random base per instance. The stream coordinate
// travels in the wire form, so servers expand either way. The derived
// mask/err seeds have no other consumers, so the full stream space is
// available; base is clamped below 2^62 to keep counters overflow-free.
func NewSeededEncryptorAt(params *Parameters, sk *SecretKey, seed [16]byte, base uint64) *SeededEncryptor {
	se := &SeededEncryptor{
		params:   params,
		sk:       sk,
		maskSeed: DeriveUploadSeed(seed),
		errSeed:  deriveUploadErrorSeed(seed),
	}
	se.calls.Store(base & (1<<62 - 1))
	return se
}

// maskStreamBase domain-separates public mask streams from every other
// consumer of the seed (keys use 1..3, encryptor randomness 16k+).
const maskStreamBase uint64 = 1 << 40

// regenMask deterministically regenerates the public mask a (NTT domain).
// The poly is pool-backed; callers that use it as scratch return it.
func regenMask(r *ring.Ring, seed [16]byte, stream uint64) *ring.Poly {
	a := r.GetPolyUninit() // UniformPoly fully overwrites
	r.UniformPoly(prng.NewSource(seed, stream), a)
	a.IsNTT = true
	return a
}

// Encrypt produces a seeded encryption of pt.
func (se *SeededEncryptor) Encrypt(pt *Plaintext) *SeededCiphertext {
	p := se.params
	level := pt.Level
	rl := p.RingAt(level)
	stream := maskStreamBase + se.calls.Add(1)

	a := regenMask(rl, se.maskSeed, stream)
	sk := &ring.Poly{Coeffs: se.sk.S.Coeffs[:level], IsNTT: true}

	c0 := rl.GetPolyUninit() // MulCoeffs fully overwrites
	rl.MulCoeffs(a, sk, c0)  // a·s
	rl.Neg(c0, c0)           // -a·s
	rl.INTT(c0)
	rl.PutPoly(a)

	e := rl.GetPolyUninit() // sampler fully overwrites
	rl.GaussianPoly(prng.NewSource(se.errSeed, stream), e)
	rl.Add(c0, e, c0)
	rl.PutPoly(e)
	if pt.Value.IsNTT {
		panic("ckks: plaintext must be in coefficient domain")
	}
	rl.Add(c0, pt.Value, c0)

	return &SeededCiphertext{
		C0: c0, Seed: se.maskSeed, Stream: stream,
		Level: level, Scale: pt.Scale,
	}
}

// Expand reconstructs the full two-component ciphertext (what the server
// does on receipt): c1 is regenerated from the seed and moved to the
// coefficient domain to match the standard wire convention.
func (p *Parameters) Expand(sct *SeededCiphertext) *Ciphertext {
	rl := p.RingAt(sct.Level)
	a := regenMask(rl, sct.Seed, sct.Stream)
	rl.INTT(a)
	return &Ciphertext{
		C0:    rl.CopyPoly(sct.C0),
		C1:    a,
		Level: sct.Level,
		Scale: sct.Scale,
	}
}

// MarshalSeeded serializes the compressed form: header | seed | stream |
// packed c0. Roughly half the bytes of a packed full ciphertext.
func (p *Parameters) MarshalSeeded(sct *SeededCiphertext) ([]byte, error) {
	if p.LimbBits > PackedWordBits {
		return nil, fmt.Errorf("ckks: packed encoding needs limbs ≤ %d bits", PackedWordBits)
	}
	n := p.N()
	payload := (sct.Level*n*PackedWordBits + 7) / 8
	out := make([]byte, headerLen()+16+8+payload)
	copy(out, wireMagic)
	out[4] = wireVersion
	out[5] = encPacked | 0x80 // high bit marks the seeded form
	out[6] = byte(p.LogN)
	out[7] = byte(sct.Level)
	binary.LittleEndian.PutUint64(out[8:], mathFloat64bits(sct.Scale))
	copy(out[headerLen():], sct.Seed[:])
	binary.LittleEndian.PutUint64(out[headerLen()+16:], sct.Stream)

	w := newBitWriter(out[headerLen()+24:])
	for i := 0; i < sct.Level; i++ {
		for _, c := range sct.C0.Coeffs[i] {
			w.write(c, PackedWordBits)
		}
	}
	w.flush()
	return out, nil
}

// UnmarshalSeeded reverses MarshalSeeded.
func (p *Parameters) UnmarshalSeeded(data []byte) (*SeededCiphertext, error) {
	if len(data) < headerLen()+24 || string(data[:4]) != wireMagic {
		return nil, fmt.Errorf("ckks: unmarshal seeded: bad magic/short data")
	}
	if data[4] != wireVersion {
		return nil, fmt.Errorf("ckks: unmarshal seeded: unsupported version %d", data[4])
	}
	if data[5] != encPacked|0x80 {
		return nil, fmt.Errorf("ckks: unmarshal seeded: not a seeded ciphertext")
	}
	if int(data[6]) != p.LogN {
		return nil, fmt.Errorf("ckks: unmarshal seeded: logN mismatch")
	}
	level := int(data[7])
	if level < 1 || level > p.MaxLevel() {
		return nil, fmt.Errorf("ckks: unmarshal seeded: bad level %d", level)
	}
	n := p.N()
	payload := (level*n*PackedWordBits + 7) / 8
	if len(data) != headerLen()+24+payload {
		return nil, fmt.Errorf("ckks: unmarshal seeded: bad payload length")
	}
	scale := mathFloat64frombits(binary.LittleEndian.Uint64(data[8:]))
	if !validWireScale(scale) {
		return nil, fmt.Errorf("ckks: unmarshal seeded: invalid scale %g", scale)
	}
	sct := &SeededCiphertext{
		Level: level,
		Scale: scale,
	}
	copy(sct.Seed[:], data[headerLen():])
	sct.Stream = binary.LittleEndian.Uint64(data[headerLen()+16:])

	rl := p.RingAt(level)
	sct.C0 = rl.NewPoly()
	r := newBitReader(data[headerLen()+24:])
	for i := 0; i < level; i++ {
		q := rl.Basis.Moduli[i].Q
		for j := range sct.C0.Coeffs[i] {
			c := r.read(PackedWordBits)
			if c >= q {
				return nil, fmt.Errorf("ckks: unmarshal seeded: residue ≥ q_%d", i)
			}
			sct.C0.Coeffs[i][j] = c
		}
	}
	return sct, nil
}

// SeededWireBytes is the compressed wire size at a level — half the
// polynomial payload of the full form plus 24 bytes of seed material.
func (p *Parameters) SeededWireBytes(level int) int {
	return headerLen() + 24 + (level*p.N()*PackedWordBits+7)/8
}

// tiny indirection so serialize.go and seeded.go do not both import math
// for two functions.
func mathFloat64bits(f float64) uint64     { return floatBits(f) }
func mathFloat64frombits(b uint64) float64 { return floatFromBits(b) }
