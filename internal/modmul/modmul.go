// Package modmul models the three hardware modular-multiplier designs the
// paper compares in Table I:
//
//	Algorithm                 Area (µm²)   Pipeline stages
//	Vanilla Barrett              35054           4
//	Vanilla Montgomery           19255           3
//	NTT-friendly Montgomery      11328           3
//
// Each design is implemented *bit-accurately* at hardware width (operands
// and intermediate truncations exactly as the datapath would compute them)
// and verified against the reference a·b mod q. The structural model
// (multiplier bits, shift-add adder bits, pipeline registers) feeds the
// area/power library in internal/hw; absolute areas are anchored to
// Table I per the calibration policy in DESIGN.md.
package modmul

import (
	"fmt"
	"math/bits"

	"repro/internal/primes"
)

// Design identifies one of the Table I datapaths.
type Design int

const (
	// Barrett is the vanilla Barrett reduction: three full multipliers and
	// a two-step correction, 4 pipeline stages.
	Barrett Design = iota
	// Montgomery is word-level Montgomery reduction with radix R = 2^r:
	// one full multiplier plus a low-half and a high-half multiplier,
	// 3 pipeline stages.
	Montgomery
	// FriendlyMontgomery is the paper's contribution: Montgomery reduction
	// over the NTT-friendly prime family, where both the ·QInv and the ·Q
	// multiplications collapse to shift-and-add networks — a single real
	// multiplier survives.
	FriendlyMontgomery
)

func (d Design) String() string {
	switch d {
	case Barrett:
		return "Vanilla Barrett"
	case Montgomery:
		return "Vanilla Montgomery"
	case FriendlyMontgomery:
		return "NTT-Friendly Montgomery"
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// PipelineStages returns the pipeline depth from Table I.
func (d Design) PipelineStages() int {
	if d == Barrett {
		return 4
	}
	return 3
}

// PaperAreaUM2 returns the Table I synthesis area at 44-bit width, 600 MHz,
// 28 nm — the calibration anchors.
func (d Design) PaperAreaUM2() float64 {
	switch d {
	case Barrett:
		return 35054
	case Montgomery:
		return 19255
	case FriendlyMontgomery:
		return 11328
	}
	return 0
}

// ---------------------------------------------------------------------
// Bit-accurate datapath models
// ---------------------------------------------------------------------

// BarrettUnit is the vanilla Barrett datapath for a fixed modulus.
type BarrettUnit struct {
	Q  uint64
	W  int    // operand width (bits of Q)
	Mu uint64 // floor(2^(2W+1) / Q), W+2 bits
}

// NewBarrettUnit precomputes the Barrett constant for q.
func NewBarrettUnit(q uint64) *BarrettUnit {
	w := bits.Len64(q)
	if w > 30 && w < 32 {
		w = 32
	}
	// mu = floor(2^(2w+1)/q) — fits in w+2 bits for q ≥ 2^(w-1).
	// Computed via 128-bit division.
	hi := uint64(1) << uint(2*w+1-64)
	var mu uint64
	if 2*w+1 >= 64 {
		mu, _ = bits.Div64(hi, 0, q)
	} else {
		mu = (uint64(1) << uint(2*w+1)) / q
	}
	return &BarrettUnit{Q: q, W: w, Mu: mu}
}

// Mul computes a·b mod q exactly as the 4-stage pipeline would:
// full product, truncated quotient estimate, product subtraction, final
// conditional corrections.
func (u *BarrettUnit) Mul(a, b uint64) uint64 {
	// Stage 1: full product T = a·b (2W bits).
	thi, tlo := bits.Mul64(a, b)
	// Stage 2: q1 = T >> (W-1); qm = q1 · Mu; q2 = qm >> (W+2).
	q1 := shr128(thi, tlo, uint(u.W-1)) // W+1 bits
	qmHi, qmLo := bits.Mul64(q1, u.Mu)
	q2 := shr128(qmHi, qmLo, uint(u.W+2))
	// Stage 3: r = T - q2·Q (mod 2^64 is fine: result < 3Q).
	r := tlo - q2*u.Q
	// Stage 4: up to two correction subtractions.
	if r >= u.Q {
		r -= u.Q
	}
	if r >= u.Q {
		r -= u.Q
	}
	return r
}

func shr128(hi, lo uint64, s uint) uint64 {
	if s == 0 {
		return lo
	}
	if s >= 64 {
		return hi >> (s - 64)
	}
	return lo>>s | hi<<(64-s)
}

// MontgomeryUnit is the vanilla Montgomery datapath with radix R = 2^R
// (R ≥ W+1 so R > Q) for a fixed modulus.
type MontgomeryUnit struct {
	Q    uint64
	W    int
	R    uint   // radix exponent
	QInv uint64 // -Q^{-1} mod 2^R
	rsq  uint64 // R² mod Q, for domain conversion
}

// NewMontgomeryUnit precomputes constants; r defaults to W+2 when 0.
func NewMontgomeryUnit(q uint64, r uint) *MontgomeryUnit {
	w := bits.Len64(q)
	if r == 0 {
		r = uint(w + 2)
	}
	if r > 63 {
		panic("modmul: radix exponent must be ≤ 63")
	}
	// Newton iteration for q^{-1} mod 2^r, then negate.
	inv := q
	for i := 0; i < 6; i++ {
		inv *= 2 - q*inv
	}
	mask := (uint64(1) << r) - 1
	u := &MontgomeryUnit{Q: q, W: w, R: r, QInv: (-inv) & mask}
	// R² mod Q by doubling (setup only).
	rsq := uint64(1)
	for i := uint(0); i < 2*r; i++ {
		rsq <<= 1
		if rsq >= q {
			rsq -= q
		}
	}
	u.rsq = rsq
	return u
}

// REDC computes T·R^{-1} mod Q for T = a·b (the 3-stage pipeline):
// m = (T mod R)·QInv mod R, then t = (T + m·Q)/R with one correction.
func (u *MontgomeryUnit) REDC(a, b uint64) uint64 {
	mask := (uint64(1) << u.R) - 1
	thi, tlo := bits.Mul64(a, b)
	m := ((tlo & mask) * u.QInv) & mask // low-half multiplier
	mqHi, mqLo := bits.Mul64(m, u.Q)    // high-half + carry trick
	sumLo, carry := bits.Add64(tlo, mqLo, 0)
	sumHi := thi + mqHi + carry
	t := shr128(sumHi, sumLo, u.R)
	if t >= u.Q {
		t -= u.Q
	}
	return t
}

// Mul computes a·b mod q with domain conversions folded in (two REDC
// passes: one to multiply, one with R² to undo the R^{-1}).
func (u *MontgomeryUnit) Mul(a, b uint64) uint64 {
	t := u.REDC(a, b) // a·b·R^{-1}
	return u.REDC(t, u.rsq)
}

// ToMont converts a into the Montgomery domain.
func (u *MontgomeryUnit) ToMont(a uint64) uint64 { return u.REDC(a, u.rsq) }

// FromMont converts out of the Montgomery domain.
func (u *MontgomeryUnit) FromMont(a uint64) uint64 { return u.REDC(a, 1) }

// FriendlyUnit is the NTT-friendly Montgomery datapath: identical
// structure to MontgomeryUnit, but the ·QInv and ·Q products are computed
// by signed shift-add networks derived from the prime's decomposition
// (paper Eq. 11). Only a·b uses a real multiplier.
type FriendlyUnit struct {
	P     primes.FriendlyPrime
	R     uint
	qInv  uint64              // closed-form QInv mod 2^R (verified at build)
	qInvT []primes.SignedTerm // NAF of qInv: the shift-add network
	qT    []primes.SignedTerm // signed decomposition of Q
	rsq   uint64
}

// NewFriendlyUnit builds the datapath for a family prime. The radix 2^r
// must satisfy the Eq. 11 feasibility bound r ≤ 2·v₂(Q-1); r = 0 selects
// the largest feasible radix above the operand width (or fails).
func NewFriendlyUnit(p primes.FriendlyPrime, r uint) (*FriendlyUnit, error) {
	w := bits.Len64(p.Q)
	maxR := 2 * p.TwoAdicity()
	if r == 0 {
		r = uint(w + 1)
		if r > maxR {
			return nil, fmt.Errorf("modmul: prime %d admits radix ≤ 2^%d < operand width %d",
				p.Q, maxR, w)
		}
	}
	if r > maxR || r > 63 {
		return nil, fmt.Errorf("modmul: radix 2^%d infeasible for prime %d (max 2^%d)", r, p.Q, maxR)
	}
	u := &FriendlyUnit{P: p, R: r}
	u.qInv = p.QInvShiftAdd(r)
	u.qInvT = primes.NAF(u.qInv)
	u.qT = primes.NAF(p.Q)
	rsq := uint64(1)
	for i := uint(0); i < 2*r; i++ {
		rsq <<= 1
		if rsq >= p.Q {
			rsq -= p.Q
		}
	}
	u.rsq = rsq
	return u, nil
}

// shiftAddMul multiplies x by the signed-term constant, reduced mod 2^r —
// the hardware's adder tree, evaluated term by term.
func shiftAddMul(x uint64, terms []primes.SignedTerm, r uint) uint64 {
	mask := (uint64(1) << r) - 1
	var acc uint64
	for _, t := range terms {
		v := (x << (t.Exp % 64)) & mask
		if t.Sign > 0 {
			acc += v
		} else {
			acc -= v
		}
	}
	return acc & mask
}

// REDC computes a·b·R^{-1} mod Q with the shift-add networks, using the
// paper's subtractive formulation (Eq. 5–7): m = (T mod R)·QInv mod R with
// the *positive* inverse QInv = Q^{-1} mod R from Eq. 11, then
// t = (T - m·Q)/R, adding Q back when the difference is negative.
func (u *FriendlyUnit) REDC(a, b uint64) uint64 {
	mask := (uint64(1) << u.R) - 1
	thi, tlo := bits.Mul64(a, b) // the only real multiplier
	m := shiftAddMul(tlo&mask, u.qInvT, u.R)
	// m·Q via the signed decomposition of Q (full 128-bit accumulation).
	var mqHi, mqLo uint64
	for _, t := range u.qT {
		vHi, vLo := shl128(m, t.Exp)
		if t.Sign > 0 {
			var c uint64
			mqLo, c = bits.Add64(mqLo, vLo, 0)
			mqHi += vHi + c
		} else {
			var bo uint64
			mqLo, bo = bits.Sub64(mqLo, vLo, 0)
			mqHi -= vHi + bo
		}
	}
	// T - m·Q as a two's-complement 128-bit value; it is an exact multiple
	// of R, so the logical shift is exact, and the wrap-around of the
	// unsigned arithmetic makes the +Q correction land on the right value.
	dLo, borrow := bits.Sub64(tlo, mqLo, 0)
	dHi := thi - mqHi - borrow
	t := shr128(dHi, dLo, u.R)
	if int64(dHi) < 0 { // Eq. 7: t < 0 → t + Q
		t += u.P.Q
	}
	if t >= u.P.Q {
		t -= u.P.Q
	}
	return t
}

func shl128(v uint64, s uint) (hi, lo uint64) {
	if s == 0 {
		return 0, v
	}
	if s >= 64 {
		return v << (s - 64), 0
	}
	return v >> (64 - s), v << s
}

// Mul computes a·b mod Q with folded domain conversion.
func (u *FriendlyUnit) Mul(a, b uint64) uint64 {
	return u.REDC(u.REDC(a, b), u.rsq)
}

// ShiftAddAdders reports the adder count of the two networks — the
// hardware the single surviving multiplier is traded against.
func (u *FriendlyUnit) ShiftAddAdders() int {
	return len(u.qInvT) + len(u.qT)
}
