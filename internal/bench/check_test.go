package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

// testReport mirrors the ops the gate measures, at the measured values.
func testReport() BenchReport {
	return BenchReport{Records: []BenchRecord{
		{Op: "EncodeEncrypt", AllocsPerOp: 51},
		{Op: "DecryptDecode", AllocsPerOp: 23},
		{Op: "RotateHybrid", AllocsPerOp: 49},
		{Op: "RotateHybridFused", AllocsPerOp: 89},
		{Op: "RotateBV", AllocsPerOp: 78},
		{Op: "LinearTransformBSGS", AllocsPerOp: 355},
		{Op: "LinearTransformNaive", AllocsPerOp: 727},
		{Op: "RotateHybridPN15", AllocsPerOp: 72},
		{Op: "RotateHybridFusedPN15", AllocsPerOp: 299},
		{Op: "MulRelinHybridPN15", AllocsPerOp: 92},
		{Op: "MulRelinHybridPN15Fused", AllocsPerOp: 319},
		{Op: "MulRelinBVPN15", AllocsPerOp: 764},
		{Op: "CoeffsToSlotsPN15", AllocsPerOp: 3444},
		{Op: "EvkBlobHybridPN15", BlobBytes: 242221089},
		{Op: "EvkBlobBVPN15", BlobBytes: 4152360993},
	}}
}

// loadCommittedBudgets reads the repo's bench_budget.json (two levels up
// from this package).
func loadCommittedBudgets(t *testing.T) map[string]budgetEntry {
	t.Helper()
	budgets, err := loadBudgets(filepath.Join("..", "..", "bench_budget.json"))
	if err != nil {
		t.Fatalf("bench_budget.json does not parse: %v", err)
	}
	return budgets
}

// TestCommittedBudgetsPassAtMeasuredValues: the checked-in budget file
// accepts the measured baseline (so a fresh CI run of the gate passes) and
// names only ops the gate actually measures.
func TestCommittedBudgetsPassAtMeasuredValues(t *testing.T) {
	budgets := loadCommittedBudgets(t)
	if fails := budgetFailures(testReport(), budgets); len(fails) != 0 {
		t.Fatalf("committed budgets reject the measured baseline: %v", fails)
	}
	// Every measured op with a deterministic metric must be budgeted —
	// the gate exists to catch regressions, not to watch a subset.
	for _, r := range testReport().Records {
		if _, ok := budgets[r.Op]; !ok {
			t.Errorf("measured op %q has no committed budget", r.Op)
		}
	}
}

// TestBudgetGateCatchesRegressions: exceeding an alloc or blob budget, or
// budgeting a vanished op, fails the gate.
func TestBudgetGateCatchesRegressions(t *testing.T) {
	budgets := map[string]budgetEntry{
		"_comment": {},
		"Op":       {MaxAllocsPerOp: 10},
		"Blob":     {MaxBlobBytes: 100},
		"Vanished": {MaxAllocsPerOp: 1},
	}
	report := BenchReport{Records: []BenchRecord{
		{Op: "Op", AllocsPerOp: 11},
		{Op: "Blob", BlobBytes: 101},
	}}
	fails := budgetFailures(report, budgets)
	if len(fails) != 3 {
		t.Fatalf("want 3 failures (allocs, blob, vanished op), got %v", fails)
	}
	for _, f := range fails {
		if strings.HasPrefix(f, "budget entry \"_comment\"") {
			t.Fatalf("comment key flagged: %v", fails)
		}
	}
}
