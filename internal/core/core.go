// Package core is the top-level facade over the ABC-FHE model: it binds
// the cycle-level simulator (internal/sim), the area/power model
// (internal/hw) and the client task model (internal/sched) into one
// "accelerator" object — the paper's primary contribution as a queryable
// artifact. The root package abcfhe re-exports it as the public API.
package core

import (
	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/sim"
)

// System is a configured ABC-FHE instance.
type System struct {
	Sim sim.Config
	HW  hw.Config
}

// Default returns the paper's evaluation configuration: N = 2^16, 24-limb
// encryption, 2-limb decryption, 2 RSCs × 4 PNLs × 8 lanes, 600 MHz,
// LPDDR5.
func Default() System {
	return System{Sim: sim.PaperConfig(), HW: hw.PaperConfig()}
}

// WithLanes returns a copy with a different per-PNL lane count.
func (s System) WithLanes(p int) System {
	s.Sim.P = p
	s.HW.P = p
	return s
}

// WithMemoryMode returns a copy running under a Fig. 6b memory mode.
func (s System) WithMemoryMode(m sim.MemoryMode) System {
	s.Sim.Mem = m
	return s
}

// WithDegree returns a copy for polynomial degree 2^logN.
func (s System) WithDegree(logN int) System {
	s.Sim.LogN = logN
	s.HW.LogN = logN
	return s
}

// EncodeEncrypt simulates one encode+encrypt on a single core.
func (s System) EncodeEncrypt() sim.Report { return s.Sim.EncodeEncrypt(1) }

// DecodeDecrypt simulates one decode+decrypt on a single core.
func (s System) DecodeDecrypt() sim.Report { return s.Sim.DecodeDecrypt(1) }

// Mode simulates both directions under an RSC operating mode.
func (s System) Mode(m sched.RSCMode) (enc, dec sim.Report) { return s.Sim.Mode(m) }

// Chip returns the composed area/power tree (Table II).
func (s System) Chip() hw.Block { return hw.Chip(s.HW) }

// Summary is the headline card of a configured system.
type Summary struct {
	AreaMM2       float64
	PowerW        float64
	Area7nmMM2    float64
	Power7nmW     float64
	EncMS         float64
	DecMS         float64
	ThroughputCtS float64
	EncMOPs       float64
	DecMOPs       float64
}

// Summarize evaluates the system once.
func (s System) Summarize() Summary {
	chip := s.Chip()
	scaled := hw.ScaledBlock(chip)
	enc := s.EncodeEncrypt()
	dec := s.DecodeDecrypt()
	encOps := sched.EncodeEncryptOps(s.Sim.LogN, s.Sim.Limbs)
	decOps := sched.DecodeDecryptOps(s.Sim.LogN, s.Sim.DecLimbs)
	return Summary{
		AreaMM2:       chip.AreaMM2,
		PowerW:        chip.PowerW,
		Area7nmMM2:    scaled.AreaMM2,
		Power7nmW:     scaled.PowerW,
		EncMS:         enc.TimeMS,
		DecMS:         dec.TimeMS,
		ThroughputCtS: s.Sim.ThroughputCtPerSec(),
		EncMOPs:       sched.PaperComparableMOPs(encOps),
		DecMOPs:       sched.PaperComparableMOPs(decOps),
	}
}
