package sched

import "fmt"

// RSCMode is one of the three operating modes of the two reconfigurable
// streaming cores (paper §III): both cores on encryption (double encrypt
// throughput), both on decryption, or one each.
type RSCMode int

const (
	ModeDualEncrypt RSCMode = iota
	ModeDualDecrypt
	ModeEncryptDecrypt
)

func (m RSCMode) String() string {
	switch m {
	case ModeDualEncrypt:
		return "2x encrypt"
	case ModeDualDecrypt:
		return "2x decrypt"
	case ModeEncryptDecrypt:
		return "encrypt + decrypt"
	}
	return fmt.Sprintf("RSCMode(%d)", int(m))
}

// CoresFor returns how many RSCs each direction gets under the mode.
func (m RSCMode) CoresFor() (enc, dec int) {
	switch m {
	case ModeDualEncrypt:
		return 2, 0
	case ModeDualDecrypt:
		return 0, 2
	default:
		return 1, 1
	}
}

// Task is a schedulable unit for the simulator: one streaming phase with a
// compute demand and a DRAM demand.
type Task struct {
	Name            string
	ComputeOps      float64 // butterfly/element ops to stream through engines
	TransformPasses int     // N-point passes through the PNLs
	DRAMReadB       float64
	DRAMWriteB      float64
}

// Workload bundles the tasks of one client operation.
type Workload struct {
	Name  string
	Tasks []Task
}
