package ckks

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ring"
)

// Key wire formats. Keys cross machine boundaries in the role-separated
// deployment the paper assumes — the key owner exports a public key to a
// fleet of encrypting devices and (optionally) escrows its secret key —
// so both get a packed format reusing the 44-bit residue packer the
// ciphertext stream uses.
//
// Layout (little-endian):
//
//	magic "ABCF" | version u8 | kind u8 ('P' public, 'S' secret) |
//	logN u8 | limbBits u8 | limbs u8 | logScale u8 | hw u16 | mantBits u8 |
//	specialLimbs u8 |
//	[secret only: owner seed, 16 bytes] |
//	packed residues (PackedWordBits each, NTT domain, full depth):
//	  public: P0 then P1 — secret: S
//
// specialLimbs is the hybrid key-switching chain length k (0 when the
// parameter set carries none): it rides in every key blob because the
// receiving party must rebuild the full parameter geometry — including the
// P chain a hybrid evaluation-key blob will reference — from the bytes
// alone.
//
// Unlike ciphertexts, key blobs embed the full ParamSpec: a device can
// build an Encryptor from nothing but these bytes (ReadKeySpec → Build →
// UnmarshalPublicKey), which is exactly the cross-machine bootstrap the
// public API's Encryptor role performs.
const (
	// KeyKindPublic and KeyKindSecret are the kind discriminators at byte 5
	// of a key blob (disjoint from the ciphertext enc values 0, 1, 0x81).
	KeyKindPublic byte = 'P'
	KeyKindSecret byte = 'S'
)

func keyHeaderLen() int { return 4 + 1 + 1 + 1 + 1 + 1 + 1 + 2 + 1 + 1 }

// Spec reconstructs the (normalized) ParamSpec these parameters were built
// from. MantBits is the resolved width, never 0.
func (p *Parameters) Spec() ParamSpec {
	return ParamSpec{
		LogN: p.LogN, LimbBits: p.LimbBits, Limbs: p.Limbs,
		LogScale: p.LogScale, HW: p.HW, MantBits: p.MantBits,
		SpecialLimbs: p.SpecialLimbs,
	}
}

// putKeyHeader writes the spec-embedding header; the spec fields must fit
// their wire widths (guaranteed for anything Build accepts).
func (p *Parameters) putKeyHeader(out []byte, kind byte) error {
	if p.Limbs > 255 || p.LogScale > 255 || p.LimbBits > 255 || p.HW > 0xFFFF || p.MantBits > 255 || p.SpecialLimbs > 255 {
		return fmt.Errorf("ckks: marshal key: spec field exceeds wire width")
	}
	copy(out, wireMagic)
	out[4] = wireVersion
	out[5] = kind
	out[6] = byte(p.LogN)
	out[7] = byte(p.LimbBits)
	out[8] = byte(p.Limbs)
	out[9] = byte(p.LogScale)
	binary.LittleEndian.PutUint16(out[10:], uint16(p.HW))
	out[12] = byte(p.MantBits)
	out[13] = byte(p.SpecialLimbs)
	return nil
}

// ReadKeySpec parses the header of a key blob produced by MarshalPublicKey
// or MarshalSecretKey, returning the embedded parameter spec and the key
// kind — everything needed to Build matching Parameters before
// unmarshaling the key material itself. It never allocates proportionally
// to the input.
func ReadKeySpec(data []byte) (ParamSpec, byte, error) {
	if len(data) < keyHeaderLen() || string(data[:4]) != wireMagic {
		return ParamSpec{}, 0, fmt.Errorf("ckks: key spec: bad magic/short data")
	}
	if data[4] != wireVersion {
		return ParamSpec{}, 0, fmt.Errorf("ckks: key spec: unsupported version %d", data[4])
	}
	kind := data[5]
	if kind != KeyKindPublic && kind != KeyKindSecret && kind != KeyKindEval {
		return ParamSpec{}, 0, fmt.Errorf("ckks: key spec: unknown kind 0x%02x", kind)
	}
	spec := ParamSpec{
		LogN:         int(data[6]),
		LimbBits:     int(data[7]),
		Limbs:        int(data[8]),
		LogScale:     int(data[9]),
		HW:           int(binary.LittleEndian.Uint16(data[10:])),
		MantBits:     int(data[12]),
		SpecialLimbs: int(data[13]),
	}
	// No marshaler can emit a key blob for limbs wider than the packed
	// word, so a header claiming one is forged — and accepting it would
	// build a party whose own exports then fail the marshal-side check.
	if spec.LimbBits > PackedWordBits {
		return ParamSpec{}, 0, fmt.Errorf("ckks: key spec: limbBits %d exceeds packed word width %d",
			spec.LimbBits, PackedWordBits)
	}
	return spec, kind, nil
}

// checkKeyPoly verifies a key polynomial has the full-depth NTT shape the
// wire format assumes.
func (p *Parameters) checkKeyPoly(poly *ring.Poly) error {
	if poly == nil || !poly.IsNTT || len(poly.Coeffs) != p.Limbs {
		return fmt.Errorf("ckks: marshal key: polynomial must be NTT-domain at full depth")
	}
	for _, row := range poly.Coeffs {
		if len(row) != p.N() {
			return fmt.Errorf("ckks: marshal key: limb length %d, want %d", len(row), p.N())
		}
	}
	return nil
}

// marshalKey packs the header, an optional seed block, and the key
// polynomials' residues.
func (p *Parameters) marshalKey(kind byte, seed []byte, polys ...*ring.Poly) ([]byte, error) {
	if p.LimbBits > PackedWordBits {
		return nil, fmt.Errorf("ckks: packed encoding needs limbs ≤ %d bits", PackedWordBits)
	}
	for _, poly := range polys {
		if err := p.checkKeyPoly(poly); err != nil {
			return nil, err
		}
	}
	coeffCount := len(polys) * p.Limbs * p.N()
	payload := (coeffCount*PackedWordBits + 7) / 8
	out := make([]byte, keyHeaderLen()+len(seed)+payload)
	if err := p.putKeyHeader(out, kind); err != nil {
		return nil, err
	}
	copy(out[keyHeaderLen():], seed)
	w := newBitWriter(out[keyHeaderLen()+len(seed):])
	for _, poly := range polys {
		for i := 0; i < p.Limbs; i++ {
			for _, c := range poly.Coeffs[i] {
				w.write(c, PackedWordBits)
			}
		}
	}
	w.flush()
	return out, nil
}

// unmarshalKey validates the header against p, then unpacks seedLen bytes
// of seed material and nPolys full-depth polynomials, validating every
// residue. The payload length is checked before any allocation, so
// truncated or padded inputs fail fast without memory churn.
func (p *Parameters) unmarshalKey(data []byte, kind byte, seedLen, nPolys int) ([]byte, []*ring.Poly, error) {
	spec, gotKind, err := ReadKeySpec(data)
	if err != nil {
		return nil, nil, err
	}
	if gotKind != kind {
		return nil, nil, fmt.Errorf("ckks: unmarshal key: kind 0x%02x, want 0x%02x", gotKind, kind)
	}
	if spec != p.Spec() {
		return nil, nil, fmt.Errorf("ckks: unmarshal key: embedded spec %+v does not match parameters", spec)
	}
	coeffCount := nPolys * p.Limbs * p.N()
	payload := (coeffCount*PackedWordBits + 7) / 8
	if len(data) != keyHeaderLen()+seedLen+payload {
		return nil, nil, fmt.Errorf("ckks: unmarshal key: payload length %d, want %d",
			len(data)-keyHeaderLen(), seedLen+payload)
	}
	seed := data[keyHeaderLen() : keyHeaderLen()+seedLen]
	r := newBitReader(data[keyHeaderLen()+seedLen:])
	polys := make([]*ring.Poly, nPolys)
	for k := range polys {
		poly := p.Ring().NewPoly()
		for i := 0; i < p.Limbs; i++ {
			q := p.Ring().Basis.Moduli[i].Q
			for j := range poly.Coeffs[i] {
				c := r.read(PackedWordBits)
				if c >= q {
					return nil, nil, fmt.Errorf("ckks: unmarshal key: residue %d ≥ q_%d", c, i)
				}
				poly.Coeffs[i][j] = c
			}
		}
		poly.IsNTT = true
		polys[k] = poly
	}
	return seed, polys, nil
}

// MarshalPublicKey serializes pk in the packed key wire format.
func (p *Parameters) MarshalPublicKey(pk *PublicKey) ([]byte, error) {
	if pk == nil {
		return nil, fmt.Errorf("ckks: marshal public key: nil key")
	}
	return p.marshalKey(KeyKindPublic, nil, pk.P0, pk.P1)
}

// UnmarshalPublicKey reverses MarshalPublicKey, validating the embedded
// spec against p and every residue against the modulus chain.
func (p *Parameters) UnmarshalPublicKey(data []byte) (*PublicKey, error) {
	_, polys, err := p.unmarshalKey(data, KeyKindPublic, 0, 2)
	if err != nil {
		return nil, err
	}
	return &PublicKey{P0: polys[0], P1: polys[1]}, nil
}

// MarshalSecretKey serializes sk together with the owner's 16-byte PRNG
// seed — the seed is secret material of the same sensitivity as sk itself
// (it regenerates the whole keypair), and carrying it lets a re-imported
// key owner keep producing seeded compressed uploads.
func (p *Parameters) MarshalSecretKey(sk *SecretKey, seed [16]byte) ([]byte, error) {
	if sk == nil {
		return nil, fmt.Errorf("ckks: marshal secret key: nil key")
	}
	return p.marshalKey(KeyKindSecret, seed[:], sk.S)
}

// UnmarshalSecretKey reverses MarshalSecretKey, returning the key and the
// owner seed embedded alongside it.
func (p *Parameters) UnmarshalSecretKey(data []byte) (*SecretKey, [16]byte, error) {
	var seed [16]byte
	seedBytes, polys, err := p.unmarshalKey(data, KeyKindSecret, 16, 1)
	if err != nil {
		return nil, seed, err
	}
	copy(seed[:], seedBytes)
	return &SecretKey{S: polys[0]}, seed, nil
}

// PublicKeyWireBytes reports the packed wire size of a public key blob.
func (p *Parameters) PublicKeyWireBytes() int {
	return KeySpecWireBytes(p.Spec(), KeyKindPublic)
}

// SecretKeyWireBytes reports the packed wire size of a secret key blob.
func (p *Parameters) SecretKeyWireBytes() int {
	return KeySpecWireBytes(p.Spec(), KeyKindSecret)
}

// KeySpecWireBytes computes the exact blob size a key of the given kind
// must have under spec — from the header alone, without building
// Parameters. Wire-facing constructors use it to reject length-mismatched
// blobs *before* paying for prime generation and NTT tables, so a hostile
// header can never demand allocations disproportionate to the bytes
// actually supplied. Returns 0 for an unknown kind.
func KeySpecWireBytes(spec ParamSpec, kind byte) int {
	n := 1 << uint(spec.LogN)
	switch kind {
	case KeyKindPublic:
		return keyHeaderLen() + (2*spec.Limbs*n*PackedWordBits+7)/8
	case KeyKindSecret:
		return keyHeaderLen() + 16 + (spec.Limbs*n*PackedWordBits+7)/8
	}
	return 0
}
