// Fast CRT reconstruction: the allocation-free decode path.
//
// CombineCenteredFloat lifts a residue vector to its centered
// representative in (-Q/2, Q/2] and divides by the scale — per coefficient,
// for every coefficient of a decoded polynomial. The exact big.Int path
// (CombineCentered) allocates roughly a dozen times per call, which at
// N coefficients per decode made DecryptDecode the client's allocation
// hot spot (~9.7k allocs/op on the Test preset before this path existed).
//
// The fast path works on precomputed multi-word little-endian images of
// Q, floor(Q/2) and every qiHat_i = Q/q_i. Per coefficient it runs
//
//	acc = Σ_i qiHat_i · ((r_i · qiHatInv_i) mod q_i)   (mod Q)
//
// entirely in word arithmetic: a scalar multiply-accumulate over the
// qiHat rows with one conditional subtraction of Q per limb (each term is
// < Q, so acc stays < 2Q and one subtraction restores the invariant), a
// centered lift by sign-magnitude against floor(Q/2), and a float64
// conversion from the top three words (≤ 192 bits, so the truncation
// error ≤ 2^-64 relative is far below the float64 rounding of ~2^-53 —
// and both are inside the 1e-12 relative agreement the property/fuzz
// suite enforces against the big.Int oracle, itself three orders of
// magnitude stricter than the 1e-9 acceptance bar).
//
// The big.Int path stays as the reference oracle; TestCombineFastMatchesBigInt
// and FuzzCombineCentered drive random residue vectors at every level of
// every preset through both and assert agreement.
package rns

import (
	"math"
	"math/big"
	"math/bits"
)

// fastCRT holds the word-level tables the allocation-free combine runs on.
// Built once per Basis; read-only afterwards.
type fastCRT struct {
	words int      // 64-bit words per multi-word value (⌈bitlen(Q)/64⌉)
	q     []uint64 // Q, little-endian words
	halfQ []uint64 // floor(Q/2), little-endian words
	qhat  []uint64 // K rows of `words` words: row i is qiHat_i = Q/q_i
}

func newFastCRT(b *Basis) *fastCRT {
	w := (b.Q.BitLen() + 63) / 64
	f := &fastCRT{
		words: w,
		q:     bigToWords(b.Q, w),
		halfQ: bigToWords(b.halfQ, w),
		qhat:  make([]uint64, len(b.qiHat)*w),
	}
	for i, h := range b.qiHat {
		copy(f.qhat[i*w:(i+1)*w], bigToWords(h, w))
	}
	return f
}

// bigToWords renders non-negative v as exactly w little-endian 64-bit
// words (setup-time only, so the portable big.Int walk is fine).
func bigToWords(v *big.Int, w int) []uint64 {
	out := make([]uint64, w)
	t := new(big.Int).Set(v)
	mask := new(big.Int).SetUint64(^uint64(0))
	word := new(big.Int)
	for i := 0; i < w; i++ {
		out[i] = word.And(t, mask).Uint64()
		t.Rsh(t, 64)
	}
	if t.Sign() != 0 {
		panic("rns: value does not fit fast-CRT word count")
	}
	return out
}

// CombineScratchLen reports the scratch length (in uint64 words)
// CombineCenteredFloatScratch requires for this basis.
func (b *Basis) CombineScratchLen() int { return b.fast.words + 1 }

// CombineCenteredFloat reconstructs the centered value of the residue
// vector and returns it divided by scale — the decode hot path. It is the
// convenience form of CombineCenteredFloatScratch (one small scratch
// allocation); decode loops should hold a pooled scratch and call the
// Scratch variant, which allocates nothing.
func (b *Basis) CombineCenteredFloat(limbs []uint64, scale float64) float64 {
	return b.CombineCenteredFloatScratch(limbs, scale, make([]uint64, b.CombineScratchLen()))
}

// CombineCenteredFloatScratch is CombineCenteredFloat with caller-owned
// scratch of at least CombineScratchLen words (contents ignored and
// clobbered). It performs no allocation and touches no shared mutable
// state, so concurrent calls with distinct scratch are safe.
func (b *Basis) CombineCenteredFloatScratch(limbs []uint64, scale float64, scratch []uint64) float64 {
	if len(limbs) != b.K() {
		panic("rns: residue count mismatch")
	}
	f := b.fast
	w := f.words
	acc := scratch[:w+1]
	clear(acc)
	for i := range limbs {
		m := b.Moduli[i]
		c := m.BarrettMul(limbs[i]%m.Q, b.qiHatInv[i])
		if c != 0 {
			// acc += qiHat_i · c (scalar multiply-accumulate, carry chain
			// spilling into the guard word).
			row := f.qhat[i*w : (i+1)*w]
			var carry, cc uint64
			for j := 0; j < w; j++ {
				hi, lo := bits.Mul64(row[j], c)
				lo, cc = bits.Add64(lo, carry, 0)
				hi += cc
				acc[j], cc = bits.Add64(acc[j], lo, 0)
				carry = hi + cc
			}
			acc[w] += carry
		}
		// Each term is < Q and acc was < Q, so acc < 2Q: one conditional
		// subtraction restores acc < Q (and clears the guard word).
		if acc[w] != 0 || !wordsLess(acc[:w], f.q) {
			var borrow uint64
			for j := 0; j < w; j++ {
				acc[j], borrow = bits.Sub64(acc[j], f.q[j], borrow)
			}
			acc[w] -= borrow
		}
	}
	// Centered lift: values above floor(Q/2) represent negatives (Q is odd,
	// so acc == floor(Q/2) is still positive — same convention as the
	// big.Int oracle's Cmp(halfQ) > 0 test).
	neg := false
	if wordsGreater(acc[:w], f.halfQ) {
		neg = true
		var borrow uint64
		for j := 0; j < w; j++ {
			acc[j], borrow = bits.Sub64(f.q[j], acc[j], borrow)
		}
	}
	v := wordsToFloat(acc[:w])
	if neg {
		v = -v
	}
	return v / scale
}

// wordsLess reports a < b for equal-length little-endian words.
func wordsLess(a, b []uint64) bool {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// wordsGreater reports a > b for equal-length little-endian words.
func wordsGreater(a, b []uint64) bool {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return false
}

// wordsToFloat converts a little-endian word vector to float64 using its
// top three words (≤ 192 bits of significance; truncation below that is
// ≤ 2^-64 relative, far inside float64 rounding).
func wordsToFloat(w []uint64) float64 {
	t := len(w) - 1
	for t >= 0 && w[t] == 0 {
		t--
	}
	if t < 0 {
		return 0
	}
	f := float64(w[t])
	exp := t * 64
	for k := 1; k <= 2 && t-k >= 0; k++ {
		f = f*0x1p64 + float64(w[t-k])
		exp -= 64
	}
	return math.Ldexp(f, exp)
}
