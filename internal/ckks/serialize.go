package ckks

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/ring"
)

// Wire format for ciphertexts and plaintexts. Two encodings are provided:
//
//   - word: 8 bytes per coefficient (fast, alignment-friendly), and
//   - packed: ceil(44 bits)/coefficient bit-packing — the format the
//     accelerator streams over LPDDR5, so the serialized size matches the
//     DRAM traffic the simulator charges (2·L·N·44/8 bytes per
//     ciphertext; see internal/sim and the cross-check test).
//
// Layout (both encodings, little-endian):
//
//	magic "ABCF" | version u8 | enc u8 | logN u8 | level u8 |
//	scale f64 | domain u8 | payload (c0 limbs then c1 limbs)
const (
	wireMagic = "ABCF"
	// wireVersion 2: PR 5 grew the key header by a specialLimbs byte and
	// the evaluation-key sub-header by a gadget byte. The bump makes every
	// parser reject pre-hybrid blobs with a clean "unsupported version"
	// instead of shifted-field garbage (the version byte is shared by the
	// ciphertext and key formats, so all marshalers moved together).
	wireVersion = 2

	encWord   = 0
	encPacked = 1
)

// PackedWordBits is the hardware stream word width.
const PackedWordBits = 44

func headerLen() int { return 4 + 1 + 1 + 1 + 1 + 8 + 1 }

// MarshalCiphertext serializes ct. packed selects the 44-bit stream
// encoding; coefficients must fit PackedWordBits (true for ≤44-bit limb
// primes — enforced).
func (p *Parameters) MarshalCiphertext(ct *Ciphertext, packed bool) ([]byte, error) {
	if ct.Level < 1 || ct.Level > p.MaxLevel() {
		return nil, fmt.Errorf("ckks: marshal: bad level %d", ct.Level)
	}
	enc := byte(encWord)
	if packed {
		if p.LimbBits > PackedWordBits {
			return nil, fmt.Errorf("ckks: packed encoding needs limbs ≤ %d bits", PackedWordBits)
		}
		enc = encPacked
	}
	n := p.N()
	coeffCount := 2 * ct.Level * n
	var payload int
	if packed {
		payload = (coeffCount*PackedWordBits + 7) / 8
	} else {
		payload = coeffCount * 8
	}
	out := make([]byte, headerLen()+payload)
	copy(out, wireMagic)
	out[4] = wireVersion
	out[5] = enc
	out[6] = byte(p.LogN)
	out[7] = byte(ct.Level)
	binary.LittleEndian.PutUint64(out[8:], math.Float64bits(ct.Scale))
	if ct.C0.IsNTT {
		out[16] = 1
	}
	if ct.C1.IsNTT != ct.C0.IsNTT {
		return nil, fmt.Errorf("ckks: marshal: mixed-domain ciphertext")
	}

	body := out[headerLen():]
	if packed {
		w := newBitWriter(body)
		for _, poly := range []*ring.Poly{ct.C0, ct.C1} {
			for i := 0; i < ct.Level; i++ {
				for _, c := range poly.Coeffs[i] {
					w.write(c, PackedWordBits)
				}
			}
		}
		w.flush()
	} else {
		off := 0
		for _, poly := range []*ring.Poly{ct.C0, ct.C1} {
			for i := 0; i < ct.Level; i++ {
				for _, c := range poly.Coeffs[i] {
					binary.LittleEndian.PutUint64(body[off:], c)
					off += 8
				}
			}
		}
	}
	return out, nil
}

// UnmarshalCiphertext reverses MarshalCiphertext.
func (p *Parameters) UnmarshalCiphertext(data []byte) (*Ciphertext, error) {
	if len(data) < headerLen() || string(data[:4]) != wireMagic {
		return nil, fmt.Errorf("ckks: unmarshal: bad magic/short data")
	}
	if data[4] != wireVersion {
		return nil, fmt.Errorf("ckks: unmarshal: unsupported version %d", data[4])
	}
	enc := data[5]
	if int(data[6]) != p.LogN {
		return nil, fmt.Errorf("ckks: unmarshal: logN %d does not match parameters (%d)", data[6], p.LogN)
	}
	level := int(data[7])
	if level < 1 || level > p.MaxLevel() {
		return nil, fmt.Errorf("ckks: unmarshal: bad level %d", level)
	}
	scale := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
	if !validWireScale(scale) {
		return nil, fmt.Errorf("ckks: unmarshal: invalid scale %g", scale)
	}
	isNTT := data[16] == 1

	n := p.N()
	coeffCount := 2 * level * n
	var payload int
	switch enc {
	case encPacked:
		payload = (coeffCount*PackedWordBits + 7) / 8
	case encWord:
		payload = coeffCount * 8
	default:
		return nil, fmt.Errorf("ckks: unmarshal: unknown encoding %d", enc)
	}
	if len(data) != headerLen()+payload {
		return nil, fmt.Errorf("ckks: unmarshal: payload length %d, want %d",
			len(data)-headerLen(), payload)
	}

	rl := p.RingAt(level)
	ct := &Ciphertext{C0: rl.NewPoly(), C1: rl.NewPoly(), Level: level, Scale: scale}
	body := data[headerLen():]
	if enc == encPacked {
		r := newBitReader(body)
		for _, poly := range []*ring.Poly{ct.C0, ct.C1} {
			for i := 0; i < level; i++ {
				for j := range poly.Coeffs[i] {
					poly.Coeffs[i][j] = r.read(PackedWordBits)
				}
			}
		}
	} else {
		off := 0
		for _, poly := range []*ring.Poly{ct.C0, ct.C1} {
			for i := 0; i < level; i++ {
				for j := range poly.Coeffs[i] {
					poly.Coeffs[i][j] = binary.LittleEndian.Uint64(body[off:])
					off += 8
				}
			}
		}
	}
	// Validate residues against the level's moduli.
	for _, poly := range []*ring.Poly{ct.C0, ct.C1} {
		for i := 0; i < level; i++ {
			q := rl.Basis.Moduli[i].Q
			for _, c := range poly.Coeffs[i] {
				if c >= q {
					return nil, fmt.Errorf("ckks: unmarshal: residue %d ≥ q_%d", c, i)
				}
			}
		}
	}
	ct.C0.IsNTT = isNTT
	ct.C1.IsNTT = isNTT
	return ct, nil
}

// CiphertextWireBytes returns the packed wire size at a level — the
// number the DRAM model in internal/sim charges per ciphertext transfer.
func (p *Parameters) CiphertextWireBytes(level int) int {
	return headerLen() + (2*level*p.N()*PackedWordBits+7)/8
}

// --- bit packing ---------------------------------------------------------

type bitWriter struct {
	buf  []byte
	acc  uint64
	bits uint
	off  int
}

func newBitWriter(buf []byte) *bitWriter { return &bitWriter{buf: buf} }

func (w *bitWriter) write(v uint64, width uint) {
	w.acc |= v << w.bits
	w.bits += width
	for w.bits >= 8 {
		w.buf[w.off] = byte(w.acc)
		w.off++
		w.acc >>= 8
		w.bits -= 8
	}
	// Keep the tail of v that did not fit into acc before the shifts.
	if width > 64-w.bits {
		// Cannot happen for width ≤ 44 with bits < 8 after draining, but
		// guard the invariant for future widths.
		panic("ckks: bit accumulator overflow")
	}
}

func (w *bitWriter) flush() {
	if w.bits > 0 {
		w.buf[w.off] = byte(w.acc)
		w.off++
		w.acc, w.bits = 0, 0
	}
}

type bitReader struct {
	buf  []byte
	acc  uint64
	bits uint
	off  int
}

func newBitReader(buf []byte) *bitReader { return &bitReader{buf: buf} }

func (r *bitReader) read(width uint) uint64 {
	for r.bits < width {
		var b byte
		if r.off < len(r.buf) {
			b = r.buf[r.off]
			r.off++
		}
		r.acc |= uint64(b) << r.bits
		r.bits += 8
	}
	v := r.acc & ((uint64(1) << width) - 1)
	r.acc >>= width
	r.bits -= width
	return v
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// validWireScale is the shared hardening predicate for scale fields read
// from untrusted bytes: finite and strictly positive (NaN fails the
// comparison). Both ciphertext unmarshalers use it, so the accepted
// domain is identical on the full and seeded paths.
func validWireScale(scale float64) bool {
	return scale > 0 && !math.IsInf(scale, 0)
}
