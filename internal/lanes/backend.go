package lanes

// Backend is the dispatch seam between the lane engine and the limb
// kernels that run on it. The engine decides *where* a task executes;
// the backend decides *which inner loop* the task body binds — the same
// split ABC-FHE's design space explores in hardware, where BTS/EFFACT
// trade generic modular datapaths against fixed-width specialized ones.
//
// Kernel packages (internal/ntt, internal/ring, internal/rns consumers)
// bind their own implementations to each backend; lanes carries only the
// identity and selection plumbing, so no dependency edge points from
// here into the kernels.
//
// Contract: backends change execution strategy only, never results —
// every kernel must produce byte-identical output under every backend
// (the fast paths keep intermediates in lazy ranges but always normalize
// into the canonical [0, q) residues before results escape the kernel).
// TestBackendEquivalence and the public-op property tests assert this.

import (
	"fmt"
	"os"
	"sync"
)

// Backend identifies an inner-loop implementation family.
type Backend interface {
	// Name is the stable identifier ("portable", "fast") used by flags,
	// options, environment selection and bench records.
	Name() string
	// Specialized reports whether kernels should bind their fixed-width
	// fast implementations: 44-bit Barrett/Montgomery inner loops with
	// lazy reduction, hoisted slice headers and bounds-check elimination
	// — and whether multi-stage pipelines (hybrid key switching) may run
	// fused. False selects the spec-shaped portable reference path.
	Specialized() bool
}

// backend is the concrete type behind the two built-in backends. A
// future cycle-estimating hardware-model backend would implement the
// interface with its own type.
type backend struct {
	name string
	fast bool
}

func (b *backend) Name() string      { return b.name }
func (b *backend) Specialized() bool { return b.fast }

var (
	// Portable is the reference path: canonical [0, q) residues
	// everywhere, generic 128-bit reduction, one dispatch per kernel
	// stage. It is the oracle the fast path is tested against.
	Portable Backend = &backend{name: "portable"}

	// Fast is the specialized path: hand-unrolled lazy-reduction NTT
	// butterflies, Barrett multiply-accumulate rows, bounds-check-free
	// inner loops, and the fused hybrid key-switch pipeline.
	Fast Backend = &backend{name: "fast", fast: true}
)

// Backends lists every built-in backend, portable first.
func Backends() []Backend { return []Backend{Portable, Fast} }

// ParseBackend resolves a backend by name.
func ParseBackend(name string) (Backend, error) {
	for _, b := range Backends() {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("lanes: unknown backend %q (have: portable, fast)", name)
}

// BackendEnv is the environment variable DefaultBackend consults — the
// hook the CI backend matrix uses to run the whole test suite under each
// implementation.
const BackendEnv = "ABCFHE_BACKEND"

var (
	defaultBackendOnce sync.Once
	defaultBackend     Backend
)

// DefaultBackend returns the process-wide default: $ABCFHE_BACKEND when
// set (panicking on an unknown name — a misconfigured matrix leg must
// fail loudly, not silently test the wrong path twice), Fast otherwise.
// ckks.Params.Build binds rings to it; SetBackend overrides per instance.
func DefaultBackend() Backend {
	defaultBackendOnce.Do(func() {
		if name := os.Getenv(BackendEnv); name != "" {
			b, err := ParseBackend(name)
			if err != nil {
				panic(err)
			}
			defaultBackend = b
			return
		}
		defaultBackend = Fast
	})
	return defaultBackend
}
