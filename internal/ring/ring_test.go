package ring

import (
	"testing"

	"repro/internal/lanes"
	"repro/internal/primes"
	"repro/internal/prng"
)

func testRing(t testing.TB) *Ring {
	t.Helper()
	return MustRing(256, primes.GenerateNTTPrimes(3, 30, 8))
}

func src(stream uint64) *prng.Source {
	return prng.NewSource(prng.SeedFromUint64s(123, 456), stream)
}

func TestNTTRoundTrip(t *testing.T) {
	r := testRing(t)
	p := r.NewPoly()
	r.UniformPoly(src(0), p)
	orig := r.CopyPoly(p)
	r.NTT(p)
	if !p.IsNTT {
		t.Fatal("domain flag not set")
	}
	r.INTT(p)
	if !r.Equal(p, orig) {
		t.Fatal("NTT/INTT round trip failed")
	}
}

func TestDomainGuards(t *testing.T) {
	r := testRing(t)
	p := r.NewPoly()
	mustPanic(t, func() { r.INTT(p) })
	r.NTT(p)
	mustPanic(t, func() { r.NTT(p) })
	q := r.NewPoly() // coefficient domain
	mustPanic(t, func() { r.Add(p, q, r.NewPoly()) })
	mustPanic(t, func() { r.MulCoeffs(q, q, r.NewPoly()) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestAddSubNeg(t *testing.T) {
	r := testRing(t)
	a, b := r.NewPoly(), r.NewPoly()
	r.UniformPoly(src(1), a)
	r.UniformPoly(src(2), b)
	sum, diff := r.NewPoly(), r.NewPoly()
	r.Add(a, b, sum)
	r.Sub(sum, b, diff)
	if !r.Equal(diff, a) {
		t.Fatal("(a+b)-b != a")
	}
	neg := r.NewPoly()
	r.Neg(a, neg)
	r.Add(a, neg, sum)
	for i := range sum.Coeffs {
		for _, v := range sum.Coeffs[i] {
			if v != 0 {
				t.Fatal("a + (-a) != 0")
			}
		}
	}
}

// Ring product distributes over addition: (a+b)·c = a·c + b·c per limb.
func TestMulDistributes(t *testing.T) {
	r := testRing(t)
	a, b, c := r.NewPoly(), r.NewPoly(), r.NewPoly()
	r.UniformPoly(src(3), a)
	r.UniformPoly(src(4), b)
	r.UniformPoly(src(5), c)
	r.NTT(a)
	r.NTT(b)
	r.NTT(c)

	left := r.NewPoly()
	r.Add(a, b, left)
	r.MulCoeffs(left, c, left)

	ac, bc := r.NewPoly(), r.NewPoly()
	r.MulCoeffs(a, c, ac)
	r.MulCoeffs(b, c, bc)
	right := r.NewPoly()
	r.Add(ac, bc, right)

	if !r.Equal(left, right) {
		t.Fatal("distributivity failed")
	}
}

// NTT-domain multiplication must agree with the naive negacyclic product
// on each limb.
func TestMulMatchesNaivePerLimb(t *testing.T) {
	r := MustRing(64, primes.GenerateNTTPrimes(2, 20, 6))
	a, b := r.NewPoly(), r.NewPoly()
	r.UniformPoly(src(6), a)
	r.UniformPoly(src(7), b)

	for i, tbl := range r.Tables {
		want := tbl.PolyMulNaive(a.Coeffs[i], b.Coeffs[i])
		got := tbl.PolyMulNTT(a.Coeffs[i], b.Coeffs[i])
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("limb %d: naive vs NTT mismatch at %d", i, j)
			}
		}
	}
}

func TestSharedSampling(t *testing.T) {
	r := testRing(t)
	p := r.NewPoly()
	r.TernaryPoly(src(8), p)
	// All limbs must represent the same centered integer per coefficient.
	for j := 0; j < r.N; j++ {
		v0 := r.Basis.Moduli[0].Centered(p.Coeffs[0][j])
		if v0 < -1 || v0 > 1 {
			t.Fatalf("non-ternary value %d", v0)
		}
		for i := 1; i < r.K(); i++ {
			if r.Basis.Moduli[i].Centered(p.Coeffs[i][j]) != v0 {
				t.Fatalf("limb %d coefficient %d disagrees", i, j)
			}
		}
	}

	g := r.NewPoly()
	r.GaussianPoly(src(9), g)
	for j := 0; j < r.N; j++ {
		v0 := r.Basis.Moduli[0].Centered(g.Coeffs[0][j])
		if v0 < -prng.GaussianTailCut || v0 > prng.GaussianTailCut {
			t.Fatalf("gaussian out of tail bound: %d", v0)
		}
	}
}

func TestAtLevel(t *testing.T) {
	r := testRing(t)
	v := r.AtLevel(2)
	if v.K() != 2 || v.N != r.N {
		t.Fatal("level view shape wrong")
	}
	p := v.NewPoly()
	if p.Level() != 2 {
		t.Fatal("poly from level view has wrong limb count")
	}
	v.UniformPoly(src(10), p)
	v.NTT(p)
	v.INTT(p)
	mustPanic(t, func() { r.AtLevel(0) })
	mustPanic(t, func() { r.AtLevel(r.K() + 1) })
}

func TestMulScalar(t *testing.T) {
	r := testRing(t)
	a := r.NewPoly()
	r.UniformPoly(src(11), a)
	out := r.NewPoly()
	r.MulScalar(a, 3, out)
	ref := r.NewPoly()
	r.Add(a, a, ref)
	r.Add(ref, a, ref)
	if !r.Equal(out, ref) {
		t.Fatal("3·a != a+a+a")
	}
}

func BenchmarkRingNTT(b *testing.B) {
	r := MustRing(4096, primes.GenerateNTTPrimes(4, 36, 12))
	p := r.NewPoly()
	r.UniformPoly(src(0), p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.NTT(p)
		r.INTT(p)
	}
}

// Lane engine: results must be bit-identical at any worker count.
func TestLaneEngineDeterminism(t *testing.T) {
	run := func(workers int) (*Ring, *Poly, *Poly) {
		r := testRing(t)
		e := lanes.New(workers)
		defer e.Close()
		r.SetEngine(e)
		a, b := r.NewPoly(), r.NewPoly()
		r.UniformPoly(src(20), a)
		r.TernaryPoly(src(21), b)
		r.NTT(a)
		r.NTT(b)
		prod := r.NewPoly()
		r.MulCoeffs(a, b, prod)
		r.INTT(prod)
		sum := r.NewPoly()
		r.Add(a, b, sum)
		return r, prod, sum
	}
	r1, prod1, sum1 := run(1)
	for _, w := range []int{2, 8} {
		_, prodW, sumW := run(w)
		if !r1.Equal(prod1, prodW) || !r1.Equal(sum1, sumW) {
			t.Fatalf("results differ between 1 and %d workers", w)
		}
	}
}

func TestPolyPool(t *testing.T) {
	r := testRing(t)
	p := r.GetPoly()
	if p.Level() != r.K() || len(p.Coeffs[0]) != r.N {
		t.Fatal("pooled poly has wrong shape")
	}
	for i := range p.Coeffs {
		for _, v := range p.Coeffs[i] {
			if v != 0 {
				t.Fatal("GetPoly must return a zeroed poly")
			}
		}
	}
	r.UniformPoly(src(22), p)
	r.PutPoly(p)
	if p.Coeffs != nil {
		t.Fatal("PutPoly must clear the poly's storage reference")
	}
	r.PutPoly(p) // double put is a safe no-op
	q := r.GetPoly()
	for i := range q.Coeffs {
		for _, v := range q.Coeffs[i] {
			if v != 0 {
				t.Fatal("recycled poly not re-zeroed")
			}
		}
	}
	r.PutPoly(q)
	// Non-pooled polys pass through PutPoly untouched.
	n := r.NewPoly()
	r.PutPoly(n)
	if n.Coeffs == nil {
		t.Fatal("PutPoly must not claim NewPoly storage")
	}
	// Pooled copies preserve contents and domain.
	orig := r.NewPoly()
	r.UniformPoly(src(23), orig)
	r.NTT(orig)
	cp := r.GetPolyCopy(orig)
	if !r.Equal(cp, orig) {
		t.Fatal("GetPolyCopy must preserve contents")
	}
	r.PutPoly(cp)
}

func TestEngineInheritedByLevelView(t *testing.T) {
	r := testRing(t)
	e := lanes.New(2)
	defer e.Close()
	r.SetEngine(e)
	if r.AtLevel(2).Engine() != e {
		t.Fatal("level view must inherit the ring's engine")
	}
	r.SetEngine(nil)
	if r.Engine() != lanes.Default() {
		t.Fatal("nil engine must fall back to the shared default")
	}
}
