package bench

import (
	"fmt"
	"runtime"

	"repro/internal/baseline"
	"repro/internal/ckks"
	"repro/internal/fftfp"
	"repro/internal/hw"
	"repro/internal/modmul"
	"repro/internal/primes"
	"repro/internal/sched"
	"repro/internal/sfg"
	"repro/internal/sim"
)

func init() {
	register("fig1", fig1)
	register("fig2", fig2)
	register("fig3c", fig3c)
	register("fig4", fig4)
	register("table1", table1)
	register("table2", table2)
	register("fig5a", fig5a)
	register("fig5b", fig5b)
	register("fig6a", fig6a)
	register("fig6b", fig6b)
	register("memclaim", memclaim)
	register("primes", primeCensus)
	register("seeded", seeded)
	register("archsweep", archsweep)
	register("swlanes", swlanes)
	register("decode", decodeSweep)
}

// fig1: client/server execution-time breakdown (ResNet20-FHE).
func fig1(opt Options) Result {
	c := sim.PaperConfig()
	enc := c.EncodeEncrypt(1)
	dec := c.DecodeDecrypt(1)
	rows := baseline.Fig1(enc.TimeMS, dec.TimeMS, 1000)

	r := Result{
		ID:    "fig1",
		Title: "Execution-time breakdown, client vs server (ResNet20-FHE)",
		Description: "Client latencies from our cycle simulator; prior systems anchored on the\n" +
			"paper's published ratios; server share from the published 30.6%/69.4% split.",
		Header: []string{"configuration", "client enc (ms)", "client dec (ms)", "server (ms)", "client share", "paper mark"},
	}
	marks := []string{"99.9%", "69.4%", "12.8%"}
	for i, row := range rows {
		r.Rows = append(r.Rows, []string{
			row.Label, f1(row.ClientEncMS), f1(row.ClientDecMS), f1(row.ServerMS),
			pct(row.ClientShare), marks[i],
		})
	}
	r.Notes = append(r.Notes,
		"workload: 1000 client round trips; shares are scale-invariant in the round-trip count",
		"the paper's 99.9%/12.8% marks are not derivable from its own speed-up ratios (ratio-implied CPU maximum ≈92%); ordering and bottleneck flip reproduce")
	return r
}

// fig2: client-side operation counts and imbalance.
func fig2(opt Options) Result {
	rows := sched.Fig2(16, 24, 2)
	r := Result{
		ID:     "fig2",
		Title:  "CKKS client-side operation analysis (N=2^16, 24-limb enc / 2-limb dec)",
		Header: []string{"operation", "I/FFT MOPs", "I/NTT MOPs", "elementwise MOPs", "others MOPs", "total MOPs", "paper MOPs"},
	}
	paper := []string{"27.0", "2.9"}
	for i, row := range rows {
		r.Rows = append(r.Rows, []string{
			row.Name,
			f2(row.Ops.FFTOps / 1e6), f2(row.Ops.NTTOps / 1e6),
			f2(row.Ops.ElementWise / 1e6), f2(row.Ops.Others / 1e6),
			f2(row.MOPs), paper[i],
		})
	}
	ratio := rows[0].MOPs / rows[1].MOPs
	r.Notes = append(r.Notes,
		fmt.Sprintf("enc/dec imbalance: %.1fx (paper: ~10x)", ratio),
		"counting: 1 butterfly = 1 op, 1 element-wise modular op = 1 op; see internal/sched")
	return r
}

// fig3c: bootstrapping precision vs FP mantissa width.
func fig3c(opt Options) Result {
	logN := 16
	if opt.Fast {
		logN = 11
	}
	e := fftfp.NewEmbedder(logN)
	mants := []int{25, 28, 31, 34, 37, 40, 43, 46, 49, 52}
	r := Result{
		ID:    "fig3c",
		Title: fmt.Sprintf("Precision vs FP mantissa width (N=2^%d)", logN),
		Description: "Round-trip: encode→decode at reduced mantissa. Boot proxy: the plaintext\n" +
			"shadow of a bootstrap (StC → sine-poly EvalMod → CtS) at reduced mantissa.",
		Header: []string{"mantissa bits", "round-trip bits", "boot-proxy bits", "≥19.29 threshold"},
	}
	var proxyResults []fftfp.PrecisionResult
	for _, m := range mants {
		rt := fftfp.RoundTripPrecision(e, m, 11)
		bp := fftfp.BootPrecisionProxy(e, m, 11)
		proxyResults = append(proxyResults, bp)
		meets := "no"
		if bp.Bits >= 19.29 {
			meets = "yes"
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", m), f2(rt.Bits), f2(bp.Bits), meets,
		})
	}
	drop := fftfp.DropOffPoint(proxyResults, 19.29)
	// The paper's boot precision carries a mantissa-independent noise
	// overhead of ≈19.6 bits (23.39 bits at 43 mantissa bits); our proxy
	// measures the pure datapath error (≈ m-1 bits, slope 1). Applying the
	// paper's overhead to our curve locates the threshold crossing.
	offset := 43.0 - 23.39
	var paperStyleDrop int = -1
	for _, pr := range proxyResults {
		if pr.Bits-offset >= 19.29 {
			paperStyleDrop = pr.MantissaBits
			break
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("raw drop-off (datapath error only): %d bits; with the paper's ≈%.1f-bit bootstrap-noise overhead applied, the crossing lands at %d mantissa bits (paper chooses 43)", drop, offset, paperStyleDrop),
		"slope ≈ 1 bit of precision per mantissa bit with saturation at the float64 emulation ceiling — the paper's drop-off shape",
		"paper measures through its full bootstrapping stack; our proxy exercises the same reduced-precision datapath (DESIGN.md substitution table)")
	return r
}

// fig4: twiddle scheduling and the multiplier design space.
func fig4(opt Options) Result {
	nttSum := sfg.Summarize(sfg.NTT, 16, 8)
	fftSum := sfg.Summarize(sfg.FFT, 16, 8)
	r := Result{
		ID:     "fig4",
		Title:  "Multiplier counts across pipelined NTT/FFT design configurations (P=8, N=2^16)",
		Header: []string{"design", "multipliers (GME)", "reduction vs design"},
	}
	r.Rows = append(r.Rows,
		[]string{"NTT radix-2 (separate pre/post)", f0(nttSum.Radix2Muls), pct(nttSum.ReductionVsR2) + " (paper 29.7%)"},
		[]string{"NTT radix-2^2 (separate pre/post)", f0(nttSum.Radix4Muls), pct(nttSum.ReductionVsR2x2) + " (paper 22.3%)"},
		[]string{"NTT radix-2^n merged (ABC-FHE)", f0(nttSum.MergedMuls), "theoretical min P/2*log2(N) = 64"},
		[]string{"FFT radix-2", f0(fftSum.Radix2Muls), ""},
		[]string{"FFT radix-2^2", f0(fftSum.Radix4Muls), ""},
		[]string{"FFT best (radix-2^n family)", f0(fftSum.MinMuls), ""},
	)
	r.Notes = append(r.Notes,
		fmt.Sprintf("8-point SFG example (Fig. 4a): separate pre-processing = %d mults, merged = %d (paper: 13 vs 12)",
			sfg.SpatialMultCount(8, false), sfg.SpatialMultCount(8, true)),
		fmt.Sprintf("design space: %d NTT configurations explored; merged radix-2^n is the global minimum", len(nttSum.Points)),
		"GME = generic-multiplier equivalents; counting rules documented in internal/sfg")
	return r
}

// table1: modular multiplier area/pipeline comparison.
func table1(opt Options) Result {
	r := Result{
		ID:     "table1",
		Title:  "Area of modular multiplier (44-bit, 600 MHz, 28 nm)",
		Header: []string{"algorithm", "area (um^2)", "paper (um^2)", "pipeline stages", "structural reduction vs Barrett"},
	}
	for _, d := range []modmul.Design{modmul.Barrett, modmul.Montgomery, modmul.FriendlyMontgomery} {
		r.Rows = append(r.Rows, []string{
			d.String(),
			f0(modmul.AreaUM2(d, 44)),
			f0(d.PaperAreaUM2()),
			fmt.Sprintf("%d", d.PipelineStages()),
			pct(modmul.ModelReductionVsBarrett(d)),
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("paper reductions: friendly vs Barrett 67.7%% (anchored: %s), vs vanilla Montgomery 41.2%% (anchored: %s)",
			pct(modmul.ReductionVsBarrett(modmul.FriendlyMontgomery)), pct(modmul.ReductionVsMontgomery())),
		"all three datapaths verified bit-accurate against reference modular multiplication (internal/modmul tests)")
	return r
}

// table2: chip area/power breakdown.
func table2(opt Options) Result {
	cfg := hw.PaperConfig()
	rows := hw.TableII(cfg)
	r := Result{
		ID:     "table2",
		Title:  "Area and power breakdown of ABC-FHE (28 nm, 600 MHz)",
		Header: []string{"component", "area mm^2", "paper mm^2", "power W", "paper W"},
	}
	for _, row := range rows {
		r.Rows = append(r.Rows, []string{
			row.Name, f3(row.AreaMM2), f3(row.PaperAreaMM2), f3(row.PowerW), f3(row.PaperPowerW),
		})
	}
	s := hw.ScaledBlock(hw.Chip(cfg))
	r.Notes = append(r.Notes,
		fmt.Sprintf("7 nm projection (DeepScaleTool factors): %.3f mm², %.3f W (paper: ~0.9 mm², ~2.1 W)", s.AreaMM2, s.PowerW),
		"composition is structural (multiplier counts from internal/sfg, FIFO geometry from internal/ntt, MM areas from Table I anchors)")
	return r
}

// fig5a: latency and speed-up vs CPU and prior accelerators.
func fig5a(opt Options) Result {
	c := sim.PaperConfig()
	enc := c.EncodeEncrypt(1)
	dec := c.DecodeDecrypt(1)
	pts := baseline.AnchoredSet(enc.TimeMS, dec.TimeMS)

	r := Result{
		ID:     "fig5a",
		Title:  "Execution time and speed-up (N=2^16, enc 24-limb, dec 2-limb)",
		Header: []string{"system", "op", "latency (ms)", "speed-up vs ABC", "provenance"},
	}
	for _, p := range pts {
		var sp string
		if p.Op == "enc" {
			sp = f1(p.LatencyMS / enc.TimeMS)
		} else {
			sp = f1(p.LatencyMS / dec.TimeMS)
		}
		r.Rows = append(r.Rows, []string{p.System, p.Op, fmt.Sprintf("%.4f", p.LatencyMS), sp, string(p.Provenance)})
	}
	if opt.MeasureCPU {
		spec := ckks.PN16
		decL := 2
		if opt.Fast {
			spec = ckks.TestParams
			decL = 2
		}
		encMS, decMS, err := baseline.MeasureCPU(spec, decL, 1)
		if err == nil {
			r.Rows = append(r.Rows,
				[]string{"Go CKKS on this host", "enc", fmt.Sprintf("%.4f", encMS), f1(encMS / enc.TimeMS), string(baseline.Measured)},
				[]string{"Go CKKS on this host", "dec", fmt.Sprintf("%.4f", decMS), f1(decMS / dec.TimeMS), string(baseline.Measured)})
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("ABC-FHE simulated: enc %.4f ms (DRAM-bound: %.0f compute vs %.0f DRAM cycles), dec %.4f ms",
			enc.TimeMS, enc.ComputeCycles, enc.DRAMCycles, dec.TimeMS),
		"paper speed-ups: 1112x/963x vs CPU, 214x/82x vs SOTA accelerators (anchors)")
	return r
}

// fig5b: lane sweep.
func fig5b(opt Options) Result {
	pts := sim.LaneSweep(sim.PaperConfig(), []int{1, 2, 4, 8, 16, 32, 64})
	r := Result{
		ID:     "fig5b",
		Title:  "Effect of PNL lane count on execution time and throughput (LPDDR5 68.4 GB/s)",
		Header: []string{"lanes", "enc time (ms)", "throughput (ct/s)", "bound"},
	}
	for _, p := range pts {
		bound := "compute"
		if p.DRAMBound {
			bound = "DRAM"
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", p.Lanes), f3(p.EncTimeMS), f0(p.ThroughputCt), bound,
		})
	}
	r.Notes = append(r.Notes,
		"paper: memory bottleneck caps performance at 8 lanes — the configuration ABC-FHE ships")
	return r
}

// fig6a: RFE area ablation.
func fig6a(opt Options) Result {
	pts := hw.Fig6aAblation(hw.PaperConfig())
	r := Result{
		ID:     "fig6a",
		Title:  "RFE area ablation (P=8 MDC; one FFT + four NTT results)",
		Header: []string{"design point", "area (mm^2)", "relative"},
	}
	for _, p := range pts {
		r.Rows = append(r.Rows, []string{p.Label, f3(p.AreaMM2), f3(p.Relative)})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("total reduction: %s (paper: 31%%)", pct(hw.TotalReduction(pts))))
	return r
}

// fig6b: memory-optimization ablation across polynomial degrees.
func fig6b(opt Options) Result {
	pts := sim.MemorySweep(sim.PaperConfig(), []int{13, 14, 15, 16})
	r := Result{
		ID:     "fig6b",
		Title:  "On-chip generation ablation (encode+encrypt latency, ms)",
		Header: []string{"logN", "Base", "TFGen", "All", "Base/All speed-up"},
	}
	for _, p := range pts {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", p.LogN), f3(p.BaseMS), f3(p.TFGenMS), f3(p.AllMS), f1(p.SpeedupAll),
		})
	}
	r.Notes = append(r.Notes,
		"paper: ABC-FHE_All achieves ~8.2-9.3x over ABC-FHE_Base",
		"Base streams twiddles at butterfly rate and fetches pk/masks/errors per encryption")
	return r
}

// memclaim: §IV-B on-chip memory accounting.
func memclaim(opt Options) Result {
	m := sim.Footprint(sim.PaperConfig())
	mb := func(b float64) string { return f2(b / (1 << 20)) }
	r := Result{
		ID:     "memclaim",
		Title:  "On-chip memory accounting (N=2^16, 44-bit, 24 limbs)",
		Header: []string{"category", "ours (MiB)", "paper (MB)"},
		Rows: [][]string{
			{"public key", mb(m.PublicKeyB), "16.5"},
			{"masks + errors", mb(m.MaskErrorB), "8.25"},
			{"twiddle factors", mb(m.TwiddleB), "8.25"},
			{"seed store (KB)", f1(m.SeedStoreB / 1024), "26.4 + 128-bit PRNG seed"},
		},
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("reduction from on-chip generation: %s (paper: >99.9%%)", pct(m.ReductionFraction())))
	return r
}

// primeCensus: §IV-A NTT-friendly prime family.
func primeCensus(opt Options) Result {
	total, per := primes.CensusPaper(32, 36, 16)
	broad, _ := primes.Census(32, 36, 16, 3)
	r := Result{
		ID:     "primes",
		Title:  "NTT-friendly prime census (Eq. 8: Q = 2^bw + k*2^(n+1) + 1, N=2^16)",
		Header: []string{"bit length", "strict Eq.8 count"},
	}
	for b := 32; b <= 36; b++ {
		r.Rows = append(r.Rows, []string{fmt.Sprintf("%d", b), fmt.Sprintf("%d", per[b])})
	}
	r.Rows = append(r.Rows, []string{"total", fmt.Sprintf("%d", total)})
	r.Notes = append(r.Notes,
		fmt.Sprintf("paper reports 443; strict reading gives %d (+%d%%), broad census (any sign, <=3 terms): %d", total, int(100*(float64(total)/443-1)), broad),
		"every family member's shift-add QInv (Eq. 11) is verified in internal/primes tests")
	return r
}

// seeded: extension study — seeded (PRNG-compressed) ciphertexts halve
// the client's upstream DRAM/wire traffic.
func seeded(opt Options) Result {
	r := Result{
		ID:    "seeded",
		Title: "Extension: seeded ciphertext compression (c1 regenerated from a 16-byte seed)",
		Description: "ABC-FHE's on-chip PRNG makes the c1 mask publicly derivable for fresh\n" +
			"uploads; the client then ships only c0 + seed. The design is DRAM-bound at\n" +
			"8 lanes, so halving the write stream buys real latency and throughput.",
		Header: []string{"logN", "standard (ms)", "seeded (ms)", "speed-up", "write saved (MB)", "ct/s std", "ct/s seeded"},
	}
	for _, logN := range []int{13, 14, 15, 16} {
		c := sim.PaperConfig()
		c.LogN = logN
		s := c.SeededStudy()
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", logN),
			f3(s.Standard.TimeMS), f3(s.Seeded.TimeMS), f2(s.Speedup),
			f1(s.WriteSaveMB), f0(s.ThroughputStandard), f0(s.ThroughputSeeded),
		})
	}
	r.Notes = append(r.Notes,
		"functional implementation and wire format in internal/ckks (seeded.go); the halved size is asserted against the serializer",
		"not in the paper — an extension its PRNG architecture enables (DESIGN.md lists extension scope)")
	return r
}

// archsweep: architecture design-space exploration — how area, power and
// client-operation latency trade as the PNL/RSC/lane budget moves. Not a
// paper figure; the kind of study the paper's own "larger is not always
// optimal" argument (§II-C) rests on.
func archsweep(opt Options) Result {
	r := Result{
		ID:    "archsweep",
		Title: "Architecture sweep: lanes x PNLs x RSCs vs area/power/latency (N=2^16)",
		Description: "Every point pairs the hw composition with the cycle simulator; the\n" +
			"shipping configuration (8 lanes, 4 PNLs, 2 RSCs) sits at the knee.",
		Header: []string{"lanes", "PNLs", "RSCs", "area mm^2", "power W", "enc ms", "dec ms", "area x delay"},
	}
	type point struct{ p, pnls, rscs int }
	pts := []point{
		{4, 2, 1}, {8, 2, 1}, {4, 4, 2}, {8, 4, 1},
		{8, 4, 2}, {16, 4, 2}, {8, 8, 2}, {8, 4, 4},
	}
	for _, pt := range pts {
		hc := hw.PaperConfig()
		hc.P, hc.PNLs, hc.RSCs = pt.p, pt.pnls, pt.rscs
		chip := hw.Chip(hc)

		sc := sim.PaperConfig()
		sc.P, sc.PNLs, sc.RSCs = pt.p, pt.pnls, pt.rscs
		enc := sc.EncodeEncrypt(1)
		dec := sc.DecodeDecrypt(1)

		mark := ""
		if pt.p == 8 && pt.pnls == 4 && pt.rscs == 2 {
			mark = " <- ships"
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", pt.p), fmt.Sprintf("%d", pt.pnls), fmt.Sprintf("%d", pt.rscs),
			f2(chip.AreaMM2), f2(chip.PowerW), f3(enc.TimeMS), f3(dec.TimeMS),
			f2(chip.AreaMM2*enc.TimeMS) + mark,
		})
	}
	r.Notes = append(r.Notes,
		"area x delay (mm^2 x ms) is the efficiency figure of merit; DRAM-bound points stop improving in delay",
		"not a paper figure — extension-scope DSE per DESIGN.md")
	return r
}

// swlanes: software-lane sweep — the Go client's EncodeEncrypt and
// DecryptDecode measured at worker counts 1/2/4/8, the same axis the
// paper sweeps in hardware lanes (Fig. 5b). Every limb-wise kernel in
// internal/ring dispatches through internal/lanes; this experiment is the
// end-to-end check that the software lanes scale (up to what the host's
// GOMAXPROCS allows) while producing bit-identical ciphertexts.
func swlanes(opt Options) Result {
	spec := ckks.PN15
	iters := 3
	if opt.Fast {
		spec = ckks.TestParams
		iters = 20
	}
	r := Result{
		ID:    "swlanes",
		Title: "Extension: software PNL-lane sweep (worker pool vs serial client)",
		Description: fmt.Sprintf("Go client at N=2^%d, %d limbs; workers are goroutine lanes over the\n"+
			"same per-limb kernels the accelerator streams (host GOMAXPROCS=%d).",
			spec.LogN, spec.Limbs, runtime.GOMAXPROCS(0)),
		Header: []string{"workers", "enc+encode (ms)", "dec+decode (ms)", "enc speed-up", "dec speed-up"},
	}
	var enc1, dec1 float64
	for _, w := range []int{1, 2, 4, 8} {
		if w > 2*runtime.GOMAXPROCS(0) && w > 2 {
			// Oversubscribing far past the host's cores only adds noise.
			break
		}
		encMS, decMS, err := baseline.MeasureCPULanes(spec, 2, iters, w)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("workers=%d failed: %v", w, err))
			continue
		}
		if w == 1 {
			enc1, dec1 = encMS, decMS
		}
		encSp, decSp := 0.0, 0.0
		if encMS > 0 {
			encSp = enc1 / encMS
		}
		if decMS > 0 {
			decSp = dec1 / decMS
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", w), f3(encMS), f3(decMS), f2(encSp), f2(decSp),
		})
	}
	r.Notes = append(r.Notes,
		"same seed produces byte-identical ciphertexts at every worker count (asserted by TestLaneDeterminism)",
		"speed-ups saturate at the host's core count; the paper's Fig. 5b saturates at the LPDDR5 ceiling instead")
	return r
}

// decodeSweep: the inbound-pipeline counterpart of swlanes — DecryptDecode
// at the paper's 2-limb return level, measured across software lane counts
// with heap allocations per op. The decode datapath is the allocation-free
// fast CRT combine (internal/rns fastcrt.go); before it existed the
// big.Int path cost ~9.7k allocs/op on the Test preset.
func decodeSweep(opt Options) Result {
	spec := ckks.PN15
	iters := 5
	if opt.Fast {
		spec = ckks.TestParams
		iters = 50
	}
	r := Result{
		ID:    "decode",
		Title: "Extension: decode lane sweep (fast Combine-CRT, dec at 2 limbs)",
		Description: fmt.Sprintf("Go client at N=2^%d decoding server-return ciphertexts; the combine\n"+
			"stage runs word-arithmetic centered lifts from pooled scratch, fanned\n"+
			"out in coefficient blocks across the lanes (host GOMAXPROCS=%d).",
			spec.LogN, runtime.GOMAXPROCS(0)),
		Header: []string{"workers", "dec+decode (ms)", "speed-up", "allocs/op"},
	}
	var dec1 float64
	for _, w := range []int{1, 2, 4, 8} {
		if w > 2*runtime.GOMAXPROCS(0) && w > 2 {
			break // oversubscribing far past the host's cores only adds noise
		}
		decMS, allocs, err := baseline.MeasureDecode(spec, 2, iters, w)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("workers=%d failed: %v", w, err))
			continue
		}
		if w == 1 {
			dec1 = decMS
		}
		sp := 0.0
		if decMS > 0 {
			sp = dec1 / decMS
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", w), f3(decMS), f2(sp), f0(allocs),
		})
	}
	r.Notes = append(r.Notes,
		"fast combine agreement with the big.Int oracle is pinned by property/fuzz tests at every level of every preset (internal/rns)",
		"decoded slot values are bit-identical at any worker count (TestDecodeDeterminismAcrossWorkers)")
	return r
}
