package ckks

import (
	"math/bits"
	"sort"

	"repro/internal/fftfp"
	"repro/internal/ring"
)

// Homomorphic linear transforms: plaintext matrix × encrypted vector by
// diagonal encoding, evaluated with blocked baby-step/giant-step (BSGS)
// over the hoisted key-switch path.
//
//	M·v = Σ_d diag_d(M) ⊙ rot_d(v)
//
// splits each diagonal index d = g + i (g a multiple of the block size N1,
// i ∈ [0, N1)) and regroups:
//
//	M·v = Σ_g rot_g( Σ_i rot_{−g}(diag_{g+i}) ⊙ rot_i(v) )
//
// so the ciphertext is rotated only |babies| + |giants| times instead of
// once per diagonal — and the BSGS evaluation leans on hoisting twice:
// every baby rotation shares ONE gadget decomposition of the input's c1
// (the expensive half of a key switch), and each giant step pays one
// decomposition of its inner accumulator. The pre-rotations rot_{−g} of
// the diagonals are free: they happen at encode time.
//
// The instantiation that matters for bootstrapping is the homomorphic
// DFT (CoeffsToSlots/SlotsToCoeffs): the special FFT factored into
// `levels` grouped butterfly products (internal/fftfp/dftmat.go), one
// LinearTransform per group.

// LinearTransform is a plaintext matrix pre-encoded in BSGS diagonal form
// at a fixed level. Diagonals are stored NTT-domain, pre-rotated by their
// giant step, and encoded at scale 2^(Rescales·LimbBits) so the built-in
// rescales return the output to (approximately, and exactly tracked by
// the float Scale) the input's scale. Build with Encoder.NewLinearTransform;
// evaluate with Evaluator.LinearTransform. Immutable after construction
// and safe for concurrent evaluation.
type LinearTransform struct {
	Level    int     // input (and encoding) level; output lands Rescales below
	N1       int     // baby-step block size
	PtScale  float64 // scale the diagonals are encoded at
	Rescales int     // rescales folded into evaluation

	slots      int
	groups     map[int][]ltTerm // giant step → terms, term order fixed at build
	babySteps  []int            // ascending, 0 included when used
	giantSteps []int            // ascending, 0 included when used
}

// ltTerm is one diagonal's contribution: the pre-rotated NTT-domain
// plaintext polynomial and the baby step it multiplies.
type ltTerm struct {
	baby int
	poly *ring.Poly
}

// BabySteps returns the baby rotation steps the evaluation uses
// (ascending; may include 0).
func (lt *LinearTransform) BabySteps() []int { return append([]int(nil), lt.babySteps...) }

// GiantSteps returns the giant rotation steps (ascending; may include 0).
func (lt *LinearTransform) GiantSteps() []int { return append([]int(nil), lt.giantSteps...) }

// Rotations returns the nonzero rotation steps the evaluation needs keys
// for: the union of baby and giant steps, ascending.
func (lt *LinearTransform) Rotations() []int {
	set := map[int]bool{}
	for _, s := range lt.babySteps {
		set[s] = true
	}
	for _, s := range lt.giantSteps {
		set[s] = true
	}
	delete(set, 0)
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// BSGSSteps splits normalized diagonal indices by block size n1 and
// returns the distinct baby steps (d mod n1) and giant steps (d − d mod n1),
// both ascending. Shared between key owners (choosing what to export) and
// the transform builder, so the two derive the same rotation set by
// construction.
func BSGSSteps(slots int, diags []int, n1 int) (babies, giants []int) {
	bset, gset := map[int]bool{}, map[int]bool{}
	for _, d := range diags {
		d = ((d % slots) + slots) % slots
		i := d % n1
		bset[i] = true
		gset[d-i] = true
	}
	for s := range bset {
		babies = append(babies, s)
	}
	for s := range gset {
		giants = append(giants, s)
	}
	sort.Ints(babies)
	sort.Ints(giants)
	return babies, giants
}

// OptimalN1 scans power-of-two block sizes and returns the one minimizing
// |babies| + |giants| for the given diagonal support. Giant steps are the
// more expensive side (each pays a fresh gadget decomposition), so ties
// break toward the larger block (fewer giants).
func OptimalN1(slots int, diags []int) int {
	best, bestCost := 1, int(^uint(0)>>1)
	for n1 := 1; n1 <= slots; n1 <<= 1 {
		b, g := BSGSSteps(slots, diags, n1)
		if cost := len(b) + len(g); cost <= bestCost {
			best, bestCost = n1, cost
		}
	}
	return best
}

// RescalesPerLevel is the limb cost of one multiplicative level on this
// parameter set: ⌈LogScale/LimbBits⌉ (2 on the double-scale presets).
func (p *Parameters) RescalesPerLevel() int {
	return (p.LogScale + p.LimbBits - 1) / p.LimbBits
}

// NewLinearTransform pre-encodes a plaintext matrix, given as its nonzero
// diagonals (diag d holds M[r][(r+d) mod slots] at position r; indices are
// normalized cyclically, vectors shorter than Slots() are zero-padded),
// for evaluation on ciphertexts at `level`. n1 ≤ 0 selects the
// cost-optimal power-of-two block size. All-zero diagonals are dropped.
// The transform consumes RescalesPerLevel() limbs, so level must leave at
// least one; at least one nonzero diagonal is required.
func (enc *Encoder) NewLinearTransform(diags map[int][]complex128, level, n1 int) *LinearTransform {
	p := enc.params
	slots := p.Slots()
	rescales := p.RescalesPerLevel()
	// Floor of 2·rescales: the pre-rescale product lives at scale
	// Δ·2^(rescales·LimbBits) ≤ 2^(2·rescales·LimbBits), which must fit
	// under the level's modulus — one multiplicative level of input
	// headroom on top of the rescales themselves.
	if level < 2*rescales || level > p.MaxLevel() {
		panic("ckks: linear-transform level out of range")
	}

	// Normalize, merge aliased indices, and drop zero diagonals.
	norm := map[int][]complex128{}
	for d, v := range diags {
		if len(v) > slots {
			panic("ckks: diagonal longer than slot count")
		}
		nz := false
		for _, z := range v {
			if z != 0 {
				nz = true
				break
			}
		}
		if !nz {
			continue
		}
		d = ((d % slots) + slots) % slots
		if prev, ok := norm[d]; ok {
			merged := make([]complex128, slots)
			copy(merged, prev)
			for i, z := range v {
				merged[i] += z
			}
			norm[d] = merged
			continue
		}
		norm[d] = v
	}
	if len(norm) == 0 {
		panic("ckks: linear transform has no nonzero diagonals")
	}
	idx := make([]int, 0, len(norm))
	for d := range norm {
		idx = append(idx, d)
	}
	sort.Ints(idx)
	if n1 <= 0 {
		n1 = OptimalN1(slots, idx)
	}

	babies, giants := BSGSSteps(slots, idx, n1)
	lt := &LinearTransform{
		Level: level, N1: n1, Rescales: rescales, slots: slots,
		groups: map[int][]ltTerm{}, babySteps: babies, giantSteps: giants,
	}
	logScale := rescales * p.LimbBits
	lt.PtScale = 1.0
	for i := 0; i < logScale; i++ {
		lt.PtScale *= 2
	}

	rl := p.RingAt(level)
	rot := make([]complex128, slots)
	for _, d := range idx {
		v := norm[d]
		i := d % n1
		g := d - i
		// Pre-rotate by −g: stored[r] = diag_d[(r−g) mod slots].
		for r := range rot {
			rot[r] = 0
		}
		for r, z := range v {
			rot[(r+g)%slots] = z
		}
		pt := enc.EncodeAtLevelScale(rot, level, logScale)
		rl.NTT(pt.Value)
		lt.groups[g] = append(lt.groups[g], ltTerm{baby: i, poly: pt.Value})
	}
	return lt
}

// LinearTransform evaluates lt on ct (coefficient domain, at exactly
// lt.Level) using rotation keys from rot (keyed by normalized step; every
// step in lt.Rotations() must be present and share one gadget geometry).
// The result lands lt.Rescales levels below at ≈ the input scale. Misuse
// panics; the public Server role validates and returns typed errors.
func (ev *Evaluator) LinearTransform(ct *Ciphertext, lt *LinearTransform, rot map[int]*RotationKey) *Ciphertext {
	if ct.Level != lt.Level {
		panic("ckks: ciphertext level does not match the transform's encoding level")
	}
	p := ev.params
	level := lt.Level
	rl := ev.ringAt(level)

	// NTT forms of the input pair — the baby-0 term and the σ(c0) source.
	c0n := rl.GetPolyCopy(ct.C0)
	c1n := rl.GetPolyCopy(ct.C1)
	rl.NTT(c0n)
	rl.NTT(c1n)

	// Baby rotations, all sharing one hoisted decomposition of ct.C1.
	type pair struct{ b0, b1 *ring.Poly }
	babies := make(map[int]pair, len(lt.babySteps))
	var h *hoistedDigits
	for _, i := range lt.babySteps {
		if i == 0 {
			babies[0] = pair{c0n, c1n}
			continue
		}
		rk := rot[i]
		if rk == nil {
			panic("ckks: missing baby-step rotation key")
		}
		if h == nil {
			h = p.hoistFor(ct.C1, level, rk.K)
		}
		b0, b1 := rl.GetPoly(), rl.GetPoly()
		b0.IsNTT, b1.IsNTT = true, true
		p.applyInto(h, rk.K, rk.Perm, b0, b1)
		tmp := rl.GetPolyUninit() // PermuteNTT writes every index
		rl.PermuteNTT(c0n, rk.Perm, tmp)
		rl.Add(b0, tmp, b0)
		rl.PutPoly(tmp)
		babies[i] = pair{b0, b1}
	}
	if h != nil {
		p.releaseDigits(h)
	}

	// Giant steps: accumulate each block at the product scale, rotate the
	// block once, and fold into the result — rotations run before the
	// rescales on purpose (key-switch noise is additive at the current
	// scale, cheapest while the scale is still ct.Scale·PtScale).
	final0, final1 := rl.NewPoly(), rl.NewPoly() // returned — caller-owned
	final0.IsNTT, final1.IsNTT = true, true
	for _, g := range lt.giantSteps {
		terms := lt.groups[g]
		if g == 0 {
			for _, t := range terms {
				rl.MulCoeffsAdd(t.poly, babies[t.baby].b0, final0)
				rl.MulCoeffsAdd(t.poly, babies[t.baby].b1, final1)
			}
			continue
		}
		rk := rot[g]
		if rk == nil {
			panic("ckks: missing giant-step rotation key")
		}
		acc0, acc1 := rl.GetPoly(), rl.GetPoly()
		acc0.IsNTT, acc1.IsNTT = true, true
		for _, t := range terms {
			rl.MulCoeffsAdd(t.poly, babies[t.baby].b0, acc0)
			rl.MulCoeffsAdd(t.poly, babies[t.baby].b1, acc1)
		}
		// Rotate the block accumulator by g and fold into the result: the
		// switched half accumulates directly (applyInto adds), σ_g of the
		// acc0 half is a pure NTT-domain gather.
		rl.INTT(acc1) // the decomposition reads the coefficient domain
		hg := p.hoistFor(acc1, level, rk.K)
		p.applyInto(hg, rk.K, rk.Perm, final0, final1)
		p.releaseDigits(hg)
		tmp := rl.GetPolyUninit()
		rl.PermuteNTT(acc0, rk.Perm, tmp)
		rl.Add(final0, tmp, final0)
		rl.PutPoly(tmp)
		rl.PutPoly(acc0)
		rl.PutPoly(acc1)
	}
	for i, pr := range babies {
		if i != 0 {
			rl.PutPoly(pr.b0)
			rl.PutPoly(pr.b1)
		}
	}
	rl.PutPoly(c0n)
	rl.PutPoly(c1n)

	rl.INTT(final0)
	rl.INTT(final1)
	out := &Ciphertext{C0: final0, C1: final1, Level: level, Scale: ct.Scale * lt.PtScale}
	for r := 0; r < lt.Rescales; r++ {
		out = ev.Rescale(out)
	}
	return out
}

// MulByI multiplies every slot by the imaginary unit: a negacyclic
// monomial multiply by X^(N/2), whose decode places i in every slot
// (5^j ≡ 1 mod 4, so every evaluation point raises it to i). Pure
// O(N·L) coefficient movement — no keys, no noise growth, scale and
// level unchanged.
func (ev *Evaluator) MulByI(ct *Ciphertext) *Ciphertext {
	rl := ev.ringAt(ct.Level)
	out0, out1 := rl.NewPoly(), rl.NewPoly()
	rl.MulMonomial(ct.C0, ev.params.N()/2, out0)
	rl.MulMonomial(ct.C1, ev.params.N()/2, out1)
	return &Ciphertext{C0: out0, C1: out1, Level: ct.Level, Scale: ct.Scale}
}

// ---------------------------------------------------------------------
// Homomorphic DFT: CoeffsToSlots / SlotsToCoeffs
// ---------------------------------------------------------------------

// HomomorphicDFTConfig selects the shape of a homomorphic DFT.
type HomomorphicDFTConfig struct {
	// StartLevel is the level CoeffsToSlots consumes its input at. The
	// full round trip spends 2·Levels·RescalesPerLevel() limbs, so
	// StartLevel must exceed that.
	StartLevel int
	// Levels is the number of grouped butterfly matrices per direction:
	// more levels → sparser matrices (fewer rotations each) but more
	// depth. Must be in [1, log2(Slots)].
	Levels int
}

// HomomorphicDFT is a built CoeffsToSlots/SlotsToCoeffs pipeline: the
// factored encoding/decoding matrices pre-encoded as linear transforms at
// their scheduled levels. Immutable; safe for concurrent evaluation.
type HomomorphicDFT struct {
	StartLevel int
	Levels     int
	MidLevel   int // level the C2S outputs (and S2C inputs) live at

	C2S []*LinearTransform // application order
	S2C []*LinearTransform
}

// NewHomomorphicDFT builds the transform pipeline: the inverse special
// FFT factored into cfg.Levels grouped matrices for CoeffsToSlots (with
// the conjugate split's 1/2 folded into the last group), and the forward
// factorization for SlotsToCoeffs. Each group is scheduled one
// multiplicative level after its predecessor.
func (enc *Encoder) NewHomomorphicDFT(cfg HomomorphicDFTConfig) *HomomorphicDFT {
	p := enc.params
	logn := bits.Len(uint(p.Slots())) - 1
	if cfg.Levels < 1 || cfg.Levels > logn {
		panic("ckks: DFT level count out of range")
	}
	r := p.RescalesPerLevel()
	// The deepest transform runs at StartLevel − (2·Levels−1)·r and, like
	// every LinearTransform, needs 2r levels of room below it.
	if cfg.StartLevel > p.MaxLevel() || cfg.StartLevel < (2*cfg.Levels+1)*r {
		panic("ckks: DFT start level out of range for the transform depth")
	}
	emb := p.Embedder()
	c2sMats := emb.DFTMatrices(cfg.Levels, true)
	c2sMats[len(c2sMats)-1].Scale(0.5) // conjugate split: t′ = t/2
	s2cMats := emb.DFTMatrices(cfg.Levels, false)

	dft := &HomomorphicDFT{
		StartLevel: cfg.StartLevel,
		Levels:     cfg.Levels,
		MidLevel:   cfg.StartLevel - cfg.Levels*r,
	}
	for j, m := range c2sMats {
		dft.C2S = append(dft.C2S, enc.NewLinearTransform(m.Diags, cfg.StartLevel-j*r, 0))
	}
	for j, m := range s2cMats {
		dft.S2C = append(dft.S2C, enc.NewLinearTransform(m.Diags, dft.MidLevel-j*r, 0))
	}
	return dft
}

// Rotations returns the union of rotation steps every transform in the
// pipeline needs, ascending (the conjugation key is needed additionally —
// CoeffsToSlots' real/imaginary split uses it).
func (dft *HomomorphicDFT) Rotations() []int {
	set := map[int]bool{}
	for _, lts := range [][]*LinearTransform{dft.C2S, dft.S2C} {
		for _, lt := range lts {
			for _, s := range lt.Rotations() {
				set[s] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// HomomorphicDFTRotations computes the rotation set a homomorphic DFT
// with the given shape needs — from the stage geometry alone, without
// encoding any matrix (the key-owner side of the contract: owners export
// exactly this set plus the conjugation key, servers build the matching
// transform, and both derive the block sizes from the same analytic
// diagonal support). slots must be a power of two ≥ 2; levels in
// [1, log2(slots)].
func HomomorphicDFTRotations(slots, levels int) []int {
	logn := bits.Len(uint(slots)) - 1
	if slots < 2 || slots != 1<<uint(logn) {
		panic("ckks: slot count must be a power of two")
	}
	set := map[int]bool{}
	for _, inverse := range []bool{true, false} {
		for _, idx := range fftfp.DFTDiagIndices(logn, levels, inverse) {
			n1 := OptimalN1(slots, idx)
			babies, giants := BSGSSteps(slots, idx, n1)
			for _, s := range babies {
				set[s] = true
			}
			for _, s := range giants {
				set[s] = true
			}
		}
	}
	delete(set, 0)
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// CoeffsToSlots homomorphically moves the plaintext polynomial's
// coefficients into the message slots: the factored inverse special FFT,
// then the conjugate split. The returned pair (re, im) holds, in
// bit-reversed slot order, the real and imaginary coefficient halves
// c_r and c_{r+Slots} of the input's plaintext polynomial — the form
// EvalMod consumes. ct must be at dft.StartLevel; both outputs land at
// dft.MidLevel. conj is the conjugation key; rot must cover
// dft.Rotations().
func (ev *Evaluator) CoeffsToSlots(ct *Ciphertext, dft *HomomorphicDFT, rot map[int]*RotationKey, conj *RotationKey) (re, im *Ciphertext) {
	acc := ct
	for _, lt := range dft.C2S {
		acc = ev.LinearTransform(acc, lt, rot)
	}
	// acc's slots hold t′ = t/2 (the folded 1/2): Re t = t′ + conj(t′),
	// Im t = i·(conj(t′) − t′).
	cj := ev.RotateGalois(acc, conj)
	re = ev.Add(acc, cj)
	im = ev.MulByI(ev.Sub(cj, acc))
	return re, im
}

// SlotsToCoeffs inverts CoeffsToSlots: recombines the coefficient halves
// (re + i·im, one keyless monomial multiply) and applies the factored
// forward special FFT. Both inputs must be at dft.MidLevel with equal
// scales; the result lands at dft.StartLevel − 2·Levels·rescales.
func (ev *Evaluator) SlotsToCoeffs(re, im *Ciphertext, dft *HomomorphicDFT, rot map[int]*RotationKey) *Ciphertext {
	acc := ev.Add(re, ev.MulByI(im))
	for _, lt := range dft.S2C {
		acc = ev.LinearTransform(acc, lt, rot)
	}
	return acc
}
