package abcfhe

// Tests for the role-separated v1 API: the cross-machine property (an
// Encryptor bootstrapped from nothing but exported public-key bytes
// produces ciphertexts the KeyOwner decrypts correctly), key wire-format
// round trips across every preset, and determinism of the device role at
// any worker count.

import (
	"bytes"
	"fmt"
	"math/cmplx"
	"testing"

	"repro/internal/ckks"
	"repro/internal/prng"
)

// testMsgs builds n deterministic full-slot messages.
func testMsgs(slots, n int) [][]complex128 {
	msgs := make([][]complex128, n)
	for k := range msgs {
		msg := make([]complex128, slots)
		for i := range msg {
			msg[i] = complex(float64((i+3*k)%17)/17-0.5, float64((i+5*k)%13)/13-0.5)
		}
		msgs[k] = msg
	}
	return msgs
}

// threeParties wires up a deployment for tests: a KeyOwner, a device
// Encryptor bootstrapped from the owner's exported public-key bytes (its
// own randomness seed), and a keyless Server. The only thing crossing
// between them is the public-key blob.
func threeParties(t testing.TB, preset Preset, seedLo, seedHi uint64, opts ...Option) (*KeyOwner, *Encryptor, *Server) {
	t.Helper()
	owner, err := NewKeyOwner(preset, seedLo, seedHi, opts...)
	if err != nil {
		t.Fatal(err)
	}
	pkBytes, err := owner.ExportPublicKey()
	if err != nil {
		t.Fatal(err)
	}
	device, err := NewEncryptor(pkBytes, seedLo^0xD0D0, seedHi+1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(preset, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return owner, device, server
}

// TestThreePartyCrossMachineFlow is the headline integration test: an
// Encryptor on one "machine" built from nothing but bytes, ciphertext
// bytes shipped to a Server, decryption on the KeyOwner — asserting that
// no in-memory state was shared between the parties.
func TestThreePartyCrossMachineFlow(t *testing.T) {
	// Machine 1: the key owner. Only pkBytes leaves it.
	owner, err := NewKeyOwner(Test, 0xA11CE, 0xB0B)
	if err != nil {
		t.Fatal(err)
	}
	pkBytes, err := owner.ExportPublicKey()
	if err != nil {
		t.Fatal(err)
	}

	// Machine 2: a fleet device, bootstrapped from the blob alone.
	device, err := NewEncryptor(pkBytes, 0xFEED, 0xF00D)
	if err != nil {
		t.Fatal(err)
	}
	msg := testMsgs(device.Slots(), 1)[0]
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	upload, err := device.SerializeCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}

	// Machine 3: the keyless server. Only ciphertext bytes arrive.
	server, err := NewServer(Test)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := server.DeserializeCiphertext(upload)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := server.Add(recv, recv)
	if err != nil {
		t.Fatal(err)
	}
	low, err := server.DropLevel(sum, 2)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := server.SerializeCiphertext(low)
	if err != nil {
		t.Fatal(err)
	}

	// Back on machine 1: decrypt the reply bytes.
	replyCt, err := owner.DeserializeCiphertext(reply)
	if err != nil {
		t.Fatal(err)
	}
	got, err := owner.DecryptDecode(replyCt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msg {
		want := 2 * msg[i]
		if cmplx.Abs(got[i]-want) > 1e-4 {
			t.Fatalf("slot %d: got %v want %v", i, got[i], want)
		}
	}

	// No in-memory state shared: each party built its own parameter set
	// (and with it its own rings, pools and tables) — the only coupling is
	// the bytes that crossed above.
	if owner.params == device.params || owner.params == server.params || device.params == server.params {
		t.Fatal("parties share a Parameters instance")
	}
	if owner.params.Ring() == device.params.Ring() || owner.params.Ring() == server.params.Ring() {
		t.Fatal("parties share a ring")
	}
	// The device never saw secret material; its public key is a distinct
	// copy reconstructed from the wire, not the owner's object.
	if device.enc == nil {
		t.Fatal("device encryptor missing")
	}
}

// TestKeyRoundTripAllPresets pins the key wire formats for every preset:
// exports are canonical (byte-identical re-marshal), a KeyOwner imported
// from secret-key bytes regenerates the identical public key, and the
// cross-machine encrypt→decrypt path still meets the PR 2 precision
// floors at the paper's 2-limb return level.
func TestKeyRoundTripAllPresets(t *testing.T) {
	floors := map[Preset]float64{PN16: 40, PN15: 40, PN14: 40, PN13: 40, Test: 14}
	for _, preset := range Presets() {
		t.Run(string(preset), func(t *testing.T) {
			spec, _ := preset.spec()
			if testing.Short() && spec.LogN >= 14 {
				t.Skipf("skipping logN=%d in -short mode", spec.LogN)
			}
			owner, err := NewKeyOwner(preset, 0xC0FFEE, uint64(spec.LogN))
			if err != nil {
				t.Fatal(err)
			}
			pkBytes, err := owner.ExportPublicKey()
			if err != nil {
				t.Fatal(err)
			}
			skBytes, err := owner.ExportSecretKey()
			if err != nil {
				t.Fatal(err)
			}

			// Re-export is byte-identical (canonical encoding).
			again, _ := owner.ExportPublicKey()
			if !bytes.Equal(pkBytes, again) {
				t.Fatal("public-key re-export not byte-identical")
			}

			// Import on a "new machine": the secret blob alone rebuilds the
			// owner — including the regenerated public key, byte-for-byte.
			owner2, err := NewKeyOwnerFromSecretKey(skBytes)
			if err != nil {
				t.Fatal(err)
			}
			pk2, err := owner2.ExportPublicKey()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pkBytes, pk2) {
				t.Fatal("imported owner regenerates a different public key")
			}
			sk2, _ := owner2.ExportSecretKey()
			if !bytes.Equal(skBytes, sk2) {
				t.Fatal("secret-key re-export not byte-identical")
			}

			// Cross-machine property at this preset: device from bytes,
			// 2-limb return, imported owner decrypts, precision floor holds.
			device, err := NewEncryptor(pkBytes, 0xDEAF, 0xD00F)
			if err != nil {
				t.Fatal(err)
			}
			server, err := NewServer(preset)
			if err != nil {
				t.Fatal(err)
			}
			msg := testMsgs(device.Slots(), 1)[0]
			ct, err := device.EncodeEncrypt(msg)
			if err != nil {
				t.Fatal(err)
			}
			low, err := server.DropLevel(ct, 2)
			if err != nil {
				t.Fatal(err)
			}
			got, err := owner2.DecryptDecode(low)
			if err != nil {
				t.Fatal(err)
			}
			stats := ckks.MeasurePrecision(msg, got)
			t.Logf("worst-slot precision %.2f bits", stats.WorstBits)
			if stats.WorstBits < floors[preset] {
				t.Fatalf("worst-slot precision %.2f bits below floor %.0f", stats.WorstBits, floors[preset])
			}
		})
	}
}

// TestEncryptorWorkerDeterminism: a device built from the same public-key
// bytes with the same seed emits byte-identical ciphertexts at any worker
// count, single-shot and batched.
func TestEncryptorWorkerDeterminism(t *testing.T) {
	owner, err := NewKeyOwner(Test, 0xABC, 0xF0E)
	if err != nil {
		t.Fatal(err)
	}
	pkBytes, err := owner.ExportPublicKey()
	if err != nil {
		t.Fatal(err)
	}

	var refSingle, refBatch []byte
	for _, w := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			device, err := NewEncryptor(pkBytes, 0x5EED, 0x5EED, WithWorkers(w))
			if err != nil {
				t.Fatal(err)
			}
			defer device.Close()
			if device.Workers() != w {
				t.Fatalf("device reports %d workers, want %d", device.Workers(), w)
			}
			msgs := testMsgs(device.Slots(), 3)

			ct, err := device.EncodeEncrypt(msgs[0])
			if err != nil {
				t.Fatal(err)
			}
			single, err := device.SerializeCiphertext(ct)
			if err != nil {
				t.Fatal(err)
			}
			cts, err := device.EncodeEncryptBatch(msgs)
			if err != nil {
				t.Fatal(err)
			}
			var batch bytes.Buffer
			for _, ct := range cts {
				b, err := device.SerializeCiphertext(ct)
				if err != nil {
					t.Fatal(err)
				}
				batch.Write(b)
			}

			if refSingle == nil {
				refSingle, refBatch = single, batch.Bytes()
				return
			}
			if !bytes.Equal(single, refSingle) {
				t.Fatal("EncodeEncrypt output differs from the 1-worker reference")
			}
			if !bytes.Equal(batch.Bytes(), refBatch) {
				t.Fatal("EncodeEncryptBatch output differs from the 1-worker reference")
			}
		})
	}
}

// TestFacadeMatchesRoles: the deprecated Client is a composition of the
// three roles — its ciphertexts must be byte-identical to a standalone
// Encryptor built from the owner's exported key with the same seed.
func TestFacadeMatchesRoles(t *testing.T) {
	client, err := NewClient(Test, 31337, 42424)
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewKeyOwner(Test, 31337, 42424)
	if err != nil {
		t.Fatal(err)
	}
	pkBytes, err := owner.ExportPublicKey()
	if err != nil {
		t.Fatal(err)
	}
	// Same seed as the facade's embedded encryptor.
	device, err := NewEncryptor(pkBytes, 31337, 42424)
	if err != nil {
		t.Fatal(err)
	}

	msg := testMsgs(client.Slots(), 1)[0]
	fromFacade, err := client.SerializeCiphertext(client.EncodeEncrypt(msg))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	fromDevice, err := device.SerializeCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFacade, fromDevice) {
		t.Fatal("facade ciphertext differs from the role-built device's")
	}

	// And the standalone owner decrypts the facade's ciphertext.
	back, err := owner.DeserializeCiphertext(fromFacade)
	if err != nil {
		t.Fatal(err)
	}
	got, err := owner.DecryptDecode(back)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msg {
		if cmplx.Abs(got[i]-msg[i]) > 1e-4 {
			t.Fatalf("slot %d error %g", i, cmplx.Abs(got[i]-msg[i]))
		}
	}

	// The facade's roles are exposed and share one parameter set.
	if client.KeyOwner() == nil || client.Encryptor() == nil || client.Server() == nil {
		t.Fatal("facade roles not exposed")
	}
	if client.KeyOwner().params != client.Encryptor().params {
		t.Fatal("facade roles must share parameters")
	}
}

// TestSeededUploadsNoStreamReuse: two KeyOwner instances over the same
// key material (restart/migration) must never reuse a (seed, stream)
// pair — otherwise c0 − c0' would equal the plaintext difference with no
// noise. Each instance draws a random stream base, so first uploads from
// re-imported owners differ, and both still expand and decrypt.
func TestSeededUploadsNoStreamReuse(t *testing.T) {
	owner, err := NewKeyOwner(Test, 0x7EA, 0x5EA)
	if err != nil {
		t.Fatal(err)
	}
	skBytes, err := owner.ExportSecretKey()
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(Test)
	if err != nil {
		t.Fatal(err)
	}
	msg := testMsgs(owner.Slots(), 1)[0]

	var uploads [][]byte
	for i := 0; i < 2; i++ {
		imported, err := NewKeyOwnerFromSecretKey(skBytes)
		if err != nil {
			t.Fatal(err)
		}
		data, err := imported.EncodeEncryptCompressed(msg)
		if err != nil {
			t.Fatal(err)
		}
		uploads = append(uploads, data)

		ct, err := server.ExpandCompressedUpload(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := owner.DecryptDecode(ct)
		if err != nil {
			t.Fatal(err)
		}
		for j := range msg {
			if cmplx.Abs(got[j]-msg[j]) > 1e-4 {
				t.Fatalf("instance %d slot %d error %g", i, j, cmplx.Abs(got[j]-msg[j]))
			}
		}
	}
	if bytes.Equal(uploads[0], uploads[1]) {
		t.Fatal("two instances reused the same (seed, stream) pair — two-time pad")
	}
}

// TestCompressedUploadDoesNotLeakMasterSeed: the compressed wire form
// carries its mask seed in the clear (the server regenerates c1 from
// it), so it must be the one-way derived upload seed — anyone who could
// read the master seed off the wire could regenerate the whole keypair.
func TestCompressedUploadDoesNotLeakMasterSeed(t *testing.T) {
	const lo, hi = 0xBADC0DE, 0xC0C0A
	owner, err := NewKeyOwner(Test, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	data, err := owner.EncodeEncryptCompressed(testMsgs(owner.Slots(), 1)[0])
	if err != nil {
		t.Fatal(err)
	}

	// Seeded wire layout: 17-byte header | 16-byte mask seed | stream u64.
	var wireSeed [16]byte
	copy(wireSeed[:], data[17:33])
	if wireSeed == prng.SeedFromUint64s(lo, hi) {
		t.Fatal("compressed upload transmits the master seed")
	}
	// Key generation from the transmitted seed must not reproduce the
	// owner's secret key.
	skFromWire := ckks.NewKeyGenerator(owner.params, wireSeed).GenSecretKey()
	same := true
	for i := range skFromWire.S.Coeffs[0] {
		if skFromWire.S.Coeffs[0][i] != owner.secret.S.Coeffs[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("transmitted seed regenerates the owner's secret key")
	}
}

// TestCompressedUploadAcrossParties: the seeded upload path through the
// role API — owner compresses, keyless server expands, owner decrypts the
// serialized reply.
func TestCompressedUploadAcrossParties(t *testing.T) {
	owner, _, server := threeParties(t, Test, 777, 888)
	msg := testMsgs(owner.Slots(), 1)[0]

	compressed, err := owner.EncodeEncryptCompressed(msg)
	if err != nil {
		t.Fatal(err)
	}
	fullBytes, err := server.CiphertextWireBytes(owner.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(compressed)) > 0.52*float64(fullBytes) {
		t.Fatalf("compressed upload %d bytes not ≈half of %d", len(compressed), fullBytes)
	}
	want, err := owner.CompressedWireBytes(owner.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	if len(compressed) != want {
		t.Fatal("compressed size does not match the reported wire size")
	}

	expanded, err := server.ExpandCompressedUpload(compressed)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := server.SerializeCiphertext(expanded)
	if err != nil {
		t.Fatal(err)
	}
	back, err := owner.DeserializeCiphertext(reply)
	if err != nil {
		t.Fatal(err)
	}
	got, err := owner.DecryptDecode(back)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msg {
		if cmplx.Abs(got[i]-msg[i]) > 1e-4 {
			t.Fatalf("slot %d error %g", i, cmplx.Abs(got[i]-msg[i]))
		}
	}
}
