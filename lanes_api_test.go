package abcfhe

// Tests for the lane-parallel execution engine at the public-API level:
// the determinism contract (same seed ⇒ byte-identical ciphertexts at any
// worker count), batch/serial equivalence, and concurrent-use safety of a
// single Client (run with -race; CI does).

import (
	"bytes"
	"fmt"
	"math/cmplx"
	"sync"
	"testing"
)

func laneTestMsgs(c *Client, n int) [][]complex128 {
	msgs := make([][]complex128, n)
	for k := range msgs {
		msg := make([]complex128, c.Slots())
		for i := range msg {
			msg[i] = complex(float64((i+3*k)%17)/17-0.5, float64((i+5*k)%13)/13-0.5)
		}
		msgs[k] = msg
	}
	return msgs
}

// TestLaneDeterminism is the acceptance check for the lanes engine: for a
// fixed seed, EncodeEncrypt output is byte-identical at worker counts 1,
// 2 and 8, for single calls and for batches.
func TestLaneDeterminism(t *testing.T) {
	var refSingle, refBatch []byte
	for _, w := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			c, err := NewClient(Test, 0xABC, 0xF0E, WithWorkers(w))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if c.Workers() != w {
				t.Fatalf("client reports %d workers, want %d", c.Workers(), w)
			}
			msgs := laneTestMsgs(c, 3)

			single, err := c.SerializeCiphertext(c.EncodeEncrypt(msgs[0]))
			if err != nil {
				t.Fatal(err)
			}
			var batch bytes.Buffer
			for _, ct := range c.EncodeEncryptBatch(msgs) {
				b, err := c.SerializeCiphertext(ct)
				if err != nil {
					t.Fatal(err)
				}
				batch.Write(b)
			}

			if refSingle == nil {
				refSingle, refBatch = single, batch.Bytes()
				return
			}
			if !bytes.Equal(single, refSingle) {
				t.Fatal("EncodeEncrypt output differs from the 1-worker reference")
			}
			if !bytes.Equal(batch.Bytes(), refBatch) {
				t.Fatal("EncodeEncryptBatch output differs from the 1-worker reference")
			}
		})
	}
}

// TestBatchMatchesSequential: a batch must consume exactly the stream
// windows sequential calls would, so the two orders are interchangeable.
func TestBatchMatchesSequential(t *testing.T) {
	seq, err := NewClient(Test, 11, 22)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := NewClient(Test, 11, 22)
	if err != nil {
		t.Fatal(err)
	}
	msgs := laneTestMsgs(seq, 4)

	cts := bat.EncodeEncryptBatch(msgs)
	if len(cts) != len(msgs) {
		t.Fatalf("batch returned %d ciphertexts for %d messages", len(cts), len(msgs))
	}
	for i, msg := range msgs {
		want, err := seq.SerializeCiphertext(seq.EncodeEncrypt(msg))
		if err != nil {
			t.Fatal(err)
		}
		got, err := bat.SerializeCiphertext(cts[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("batch ciphertext %d differs from sequential encryption", i)
		}
	}

	// And the round trip still decodes, batched.
	decoded := bat.DecryptDecodeBatch(cts)
	for i := range msgs {
		for j := range msgs[i] {
			if cmplx.Abs(decoded[i][j]-msgs[i][j]) > 1e-4 {
				t.Fatalf("message %d slot %d error %g", i, j, cmplx.Abs(decoded[i][j]-msgs[i][j]))
			}
		}
	}
}

// TestConcurrentEncrypt exercises one Client from many goroutines — the
// atomic stream counter must hand every encryption a disjoint PRNG
// window, and all shared state (pools, tables) must be race-free.
func TestConcurrentEncrypt(t *testing.T) {
	c, err := NewClient(Test, 77, 88, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const goroutines = 8
	const perG = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			msg := make([]complex128, c.Slots())
			for i := range msg {
				msg[i] = complex(float64(g)/16, -float64(g)/32)
			}
			for k := 0; k < perG; k++ {
				got := c.DecryptDecode(c.EncodeEncrypt(msg))
				for i := range msg {
					if cmplx.Abs(got[i]-msg[i]) > 1e-4 {
						errs <- fmt.Errorf("goroutine %d slot %d error %g", g, i, cmplx.Abs(got[i]-msg[i]))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCompressedUploadConcurrent covers the seeded path's atomic counter.
func TestCompressedUploadConcurrent(t *testing.T) {
	c, err := NewClient(Test, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			msg := make([]complex128, c.Slots())
			for i := range msg {
				msg[i] = complex(0.125*float64(g+1), -0.0625)
			}
			data, err := c.EncodeEncryptCompressed(msg)
			if err != nil {
				errs <- err
				return
			}
			ct, err := c.ExpandCompressedUpload(data)
			if err != nil {
				errs <- err
				return
			}
			got := c.DecryptDecode(ct)
			for i := range msg {
				if cmplx.Abs(got[i]-msg[i]) > 1e-4 {
					errs <- fmt.Errorf("goroutine %d slot %d error %g", g, i, cmplx.Abs(got[i]-msg[i]))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
