// Package ckks implements the client side of the CKKS approximate
// homomorphic encryption scheme — exactly the workload ABC-FHE
// accelerates: encoding (IFFT + Expand RNS), encryption (PRNG + NTT +
// public-key multiply-add), decryption (NTT·secret + INTT) and decoding
// (Combine CRT + FFT). See paper Fig. 2a.
//
// The implementation is from scratch on this repository's substrates
// (internal/{mod,ntt,fftfp,rns,ring,prng}) and uses the paper's
// bootstrappable parameterization: polynomial degrees 2^13–2^16 and
// 36-bit "double-scale" RNS limb chains [Agrawal et al., the paper's
// ref 1] so the hardware datapath stays at 44 bits.
//
// Server-side functionality is included so a realistic client → server →
// client flow exists end to end: keyless operations (homomorphic
// addition, plaintext multiplication, rescaling, level dropping) and the
// key-switching layer (relinearized ct×ct multiplication, hoisted Galois
// rotations, evaluation-key generation and wire formats) the public
// Server role builds on.
package ckks

import (
	"fmt"
	"sync"

	"repro/internal/fftfp"
	"repro/internal/lanes"
	"repro/internal/ntt"
	"repro/internal/primes"
	"repro/internal/ring"
	"repro/internal/rns"
)

// Parameters fixes a CKKS instance. Immutable after construction, except
// for SetWorkers (lane-engine sizing), which must happen before the
// parameters are shared across goroutines.
type Parameters struct {
	LogN     int // ring degree exponent: N = 2^LogN
	LimbBits int // bit width of each RNS prime (paper: 36)
	Limbs    int // number of RNS limbs L (paper: 24 = 12 levels double-scale)
	LogScale int // Δ = 2^LogScale
	HW       int // secret Hamming weight; 0 ⇒ uniform ternary
	MantBits int // FFT mantissa width (fftfp.FP55Mantissa on the accelerator)

	// SpecialLimbs is the length k of the special-prime chain P used by
	// hybrid key switching (also the decomposition group size α: the Q
	// chain splits into dnum = ⌈Limbs/α⌉ groups). 0 disables the hybrid
	// gadget; the BV digit gadget remains available either way.
	SpecialLimbs int

	ringQ    *ring.Ring
	levels   []*ring.Ring // levels[l-1]: cached view at level l (AtLevel rebuilds CRT tables — too hot for per-op calls)
	embedder *fftfp.Embedder

	engMu    sync.Mutex    // guards ownedEng: Close may race Close (and a late SetWorkers) during teardown
	ownedEng *lanes.Engine // non-nil when SetWorkers installed a private engine

	// Hybrid key-switching state (nil/empty when SpecialLimbs == 0).
	qPrimes  []uint64   // the Q chain (ringQ's primes)
	specials []uint64   // the P chain
	ringP    *ring.Ring // ring over P (NTT tables for the special limbs)
	pModQ    []uint64   // P mod q_i — the hybrid gadget factor per limb
	pInvModQ []uint64   // P^{-1} mod q_i — the ModDown divisor per limb

	// Lazily built, mutex-guarded hybrid caches: extended-basis ring views
	// (q_0..q_{ℓ-1}, p_0..p_{k-1} is not a prefix of any single chain, so
	// level views cannot ride rns.Basis.Sub) and the basis extenders for
	// decomposition groups and for the ModDown P→Q_ℓ conversion.
	hybridMu   sync.Mutex
	qpRings    map[int]*ring.Ring       // level → QP ring view
	grpExt     map[[2]int]*rns.Extender // (level, group) → group → QP_ℓ extender
	pExt       map[int]*rns.Extender    // level → P → Q_ℓ extender
	curEng     *lanes.Engine            // engine mirrored onto lazily created views
	curBackend lanes.Backend            // backend mirrored onto lazily created views
}

// Preset parameter sets.
//
// PN16 is the paper's evaluation configuration (§V-B): N = 2^16, 36-bit
// primes, 24 limbs ("the number of levels was doubled from the standard 12
// to 24" — double-scale), encrypted at full depth, decrypted at the 2-limb
// state ciphertexts return from the server in.
var (
	PN16 = ParamSpec{LogN: 16, LimbBits: 36, Limbs: 24, LogScale: 66, HW: 192, SpecialLimbs: 4}
	PN15 = ParamSpec{LogN: 15, LimbBits: 36, Limbs: 24, LogScale: 66, HW: 192, SpecialLimbs: 4}
	PN14 = ParamSpec{LogN: 14, LimbBits: 36, Limbs: 24, LogScale: 66, HW: 192, SpecialLimbs: 4}
	PN13 = ParamSpec{LogN: 13, LimbBits: 36, Limbs: 12, LogScale: 66, HW: 128, SpecialLimbs: 3}

	// TestParams is a fast set for unit tests: small ring, short chain.
	TestParams = ParamSpec{LogN: 10, LimbBits: 36, Limbs: 4, LogScale: 30, HW: 64, SpecialLimbs: 2}
	// TinyParams is even smaller, for exhaustive-ish property tests.
	TinyParams = ParamSpec{LogN: 8, LimbBits: 30, Limbs: 3, LogScale: 25, HW: 32, SpecialLimbs: 1}
)

// ParamSpec is the serializable description from which Parameters are
// built (primes are derived deterministically from the spec).
type ParamSpec struct {
	LogN     int
	LimbBits int
	Limbs    int
	LogScale int
	HW       int
	MantBits int // 0 ⇒ full float64 mantissa
	// SpecialLimbs is the special-prime chain length k for hybrid key
	// switching (0 disables it). It is also the decomposition group size
	// α, so one byte on the wire fixes the whole hybrid geometry.
	SpecialLimbs int
}

// MaxLimbs bounds the RNS chain length Build accepts — double the
// paper's deepest (24-limb double-scale) chain, and the cap that keeps a
// hostile wire-embedded spec from demanding unbounded NTT tables.
const MaxLimbs = 48

// MaxSpecialLimbs bounds the special-prime chain. Noise control needs P
// no shorter than the largest decomposition group, and key size grows
// with k, so practical values are small; 8 bounds hostile wire specs.
const MaxSpecialLimbs = 8

// Validate range-checks the spec without allocating anything. Build calls
// it first; wire-facing constructors can call it on specs read from
// untrusted key blobs.
func (s ParamSpec) Validate() error {
	if s.LogN < 4 || s.LogN > 17 {
		return fmt.Errorf("ckks: logN=%d out of range", s.LogN)
	}
	if s.Limbs < 1 || s.Limbs > MaxLimbs {
		return fmt.Errorf("ckks: limbs=%d not in [1, %d]", s.Limbs, MaxLimbs)
	}
	// The prime generator needs logN+2 ≤ bits ≤ 61 (and the wire packer
	// ≤ 44, but word-width parameter sets are still buildable).
	if s.LimbBits < s.LogN+2 || s.LimbBits > 61 {
		return fmt.Errorf("ckks: limbBits=%d not in [logN+2, 61]", s.LimbBits)
	}
	if s.LogScale < 1 || s.LogScale >= s.LimbBits*2 {
		return fmt.Errorf("ckks: scale 2^%d outside (1, 2-limb decode modulus) (LimbBits=%d)", s.LogScale, s.LimbBits)
	}
	if s.HW < 0 || s.HW > 1<<uint(s.LogN) {
		return fmt.Errorf("ckks: hamming weight %d exceeds ring degree", s.HW)
	}
	if s.MantBits != 0 && (s.MantBits < 10 || s.MantBits > fftfp.Float64Mantissa) {
		return fmt.Errorf("ckks: mantissa width %d not in [10, %d]", s.MantBits, fftfp.Float64Mantissa)
	}
	if s.SpecialLimbs < 0 || s.SpecialLimbs > MaxSpecialLimbs {
		return fmt.Errorf("ckks: specialLimbs=%d not in [0, %d]", s.SpecialLimbs, MaxSpecialLimbs)
	}
	return nil
}

// genNTTPrimes wraps the prime generator, which panics when the
// [2^(bits-1), 2^bits) window cannot host `count` NTT primes — reachable
// for legal-looking but unsatisfiable wire specs (e.g. limbBits == logN+2
// with a long chain). The recover is scoped to exactly this call so a
// genuine invariant violation elsewhere in Build still panics loudly
// instead of masquerading as a corrupt key blob.
func genNTTPrimes(count, bitLen, logN int) (qs []uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			qs, err = nil, fmt.Errorf("ckks: build: %v", r)
		}
	}()
	return primes.GenerateNTTPrimes(count, bitLen, logN), nil
}

// Build constructs ready-to-use Parameters (prime generation, NTT tables,
// FFT tables). Cost is dominated by NTT table setup: O(L·N). Specs from
// untrusted sources are safe: out-of-range fields and unsatisfiable prime
// requests come back as errors, never panics.
func (s ParamSpec) Build() (*Parameters, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	mant := s.MantBits
	if mant == 0 {
		mant = fftfp.Float64Mantissa
	}
	p := &Parameters{
		LogN: s.LogN, LimbBits: s.LimbBits, Limbs: s.Limbs,
		LogScale: s.LogScale, HW: s.HW, MantBits: mant,
		SpecialLimbs: s.SpecialLimbs,
	}
	// One downward scan yields the Q chain followed by the P chain, so
	// adding special primes never changes the Q primes a spec without them
	// would get (ciphertext bytes are gadget-independent).
	all, err := genNTTPrimes(s.Limbs+s.SpecialLimbs, s.LimbBits, s.LogN)
	if err != nil {
		return nil, err
	}
	qs := all[:s.Limbs]
	r, err := ring.NewRing(1<<uint(s.LogN), qs)
	if err != nil {
		return nil, err
	}
	p.ringQ = r
	p.qPrimes = qs
	p.levels = make([]*ring.Ring, s.Limbs)
	for l := 1; l < s.Limbs; l++ {
		p.levels[l-1] = r.AtLevel(l)
	}
	p.levels[s.Limbs-1] = r
	p.embedder = fftfp.NewEmbedder(s.LogN)

	if s.SpecialLimbs > 0 {
		p.specials = all[s.Limbs:]
		p.ringP, err = ring.NewRing(1<<uint(s.LogN), p.specials)
		if err != nil {
			return nil, err
		}
		p.pModQ = make([]uint64, s.Limbs)
		p.pInvModQ = make([]uint64, s.Limbs)
		for i, m := range r.Basis.Moduli {
			prod := uint64(1) % m.Q
			for _, pj := range p.specials {
				prod = m.Mul(prod, pj%m.Q)
			}
			p.pModQ[i] = prod
			p.pInvModQ[i] = m.Inv(prod)
		}
	}
	// Bind every ring to the process-default backend ($ABCFHE_BACKEND or
	// fast). SetBackend overrides per instance; results are byte-identical
	// either way — backends only change the inner loops kernels run.
	p.setBackendAll(lanes.DefaultBackend())
	return p, nil
}

// MustBuild panics on error.
func (s ParamSpec) MustBuild() *Parameters {
	p, err := s.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the ring degree.
func (p *Parameters) N() int { return 1 << uint(p.LogN) }

// Slots returns the number of complex message slots (N/2).
func (p *Parameters) Slots() int { return p.N() / 2 }

// MaxLevel returns the number of limbs at full depth.
func (p *Parameters) MaxLevel() int { return p.Limbs }

// Scale returns Δ as a float64 (exact: a power of two).
func (p *Parameters) Scale() float64 {
	s := 1.0
	for i := 0; i < p.LogScale; i++ {
		s *= 2
	}
	return s
}

// Ring exposes the underlying RNS ring (shared, read-only by convention).
func (p *Parameters) Ring() *ring.Ring { return p.ringQ }

// RingAt returns the (cached) ring view at the given level (limb count).
func (p *Parameters) RingAt(level int) *ring.Ring {
	if level < 1 || level > len(p.levels) {
		panic("ckks: level out of range")
	}
	return p.levels[level-1]
}

// SetWorkers sizes the lane engine every limb-parallel kernel of this
// parameter set dispatches through — the software mirror of the paper's
// PNL-lane count (Fig. 5b sweeps it in hardware). n <= 0 selects
// GOMAXPROCS; n = 1 forces the serial path. Call before sharing the
// parameters across goroutines. A previously installed private engine is
// released.
func (p *Parameters) SetWorkers(n int) {
	p.engMu.Lock()
	if p.ownedEng != nil {
		p.ownedEng.Close()
	}
	p.ownedEng = lanes.New(n)
	e := p.ownedEng
	p.engMu.Unlock()
	p.setEngineAll(e)
}

// setEngineAll installs e on the full ring, every cached level view, the
// special-prime ring, and any extended-basis views built so far (views
// built later inherit it through curEng).
func (p *Parameters) setEngineAll(e *lanes.Engine) {
	for _, rl := range p.levels {
		rl.SetEngine(e)
	}
	if p.ringP != nil {
		p.ringP.SetEngine(e)
	}
	p.hybridMu.Lock()
	p.curEng = e
	for _, r := range p.qpRings {
		r.SetEngine(e)
	}
	p.hybridMu.Unlock()
}

// Workers reports the current lane count.
func (p *Parameters) Workers() int { return p.ringQ.Engine().Workers() }

// SetBackend rebinds every limb kernel of this parameter set to b — the
// execution-strategy sibling of SetWorkers. The portable backend is the
// spec-shaped reference; the fast backend runs fixed-width Barrett and
// lazy-reduction inner loops plus the fused hybrid key-switch pipeline.
// Outputs are byte-identical under either (and at any worker count); call
// before sharing the parameters across goroutines.
func (p *Parameters) SetBackend(b lanes.Backend) { p.setBackendAll(b) }

// setBackendAll installs b on the full ring, every cached level view, the
// special-prime ring, and any extended-basis views built so far (views
// built later inherit it through curBackend).
func (p *Parameters) setBackendAll(b lanes.Backend) {
	for _, rl := range p.levels {
		rl.SetBackend(b)
	}
	if p.ringP != nil {
		p.ringP.SetBackend(b)
	}
	p.hybridMu.Lock()
	p.curBackend = b
	for _, r := range p.qpRings {
		r.SetBackend(b)
	}
	p.hybridMu.Unlock()
}

// Backend reports the backend the parameter set's kernels are bound to.
func (p *Parameters) Backend() lanes.Backend { return p.ringQ.Backend() }

// Close releases any private lane engine installed by SetWorkers. Safe to
// call on parameters that never configured one, to call more than once,
// and to call from multiple goroutines at once — the serving layer's
// teardown reaches a party's Close from both the drain path and deferred
// cleanup, and a double Close must be a no-op, never a double channel
// close.
func (p *Parameters) Close() {
	p.engMu.Lock()
	e := p.ownedEng
	p.ownedEng = nil
	p.engMu.Unlock()
	if e != nil {
		e.Close()
		p.setEngineAll(nil)
	}
}

// ---------------------------------------------------------------------
// Hybrid key-switching geometry (special primes P, extended-basis views)
// ---------------------------------------------------------------------

// Alpha returns the decomposition group size of the hybrid gadget (the
// special-prime count); 0 when the parameter set carries no special
// primes.
func (p *Parameters) Alpha() int { return p.SpecialLimbs }

// DnumAt returns the number of decomposition groups a level-`level`
// ciphertext splits into: ⌈level/α⌉.
func (p *Parameters) DnumAt(level int) int {
	if p.SpecialLimbs == 0 {
		panic("ckks: hybrid geometry on parameters without special primes")
	}
	return (level + p.SpecialLimbs - 1) / p.SpecialLimbs
}

// SpecialPrimes returns the P chain (nil when SpecialLimbs == 0).
func (p *Parameters) SpecialPrimes() []uint64 { return p.specials }

// RingP returns the ring over the special primes.
func (p *Parameters) RingP() *ring.Ring {
	if p.ringP == nil {
		panic("ckks: RingP on parameters without special primes")
	}
	return p.ringP
}

// RingQPAt returns the (cached) extended-basis ring over q_0..q_{level-1},
// p_0..p_{k-1} — the basis hybrid switching keys and hoisted digits live
// in. The view shares the Q and P NTT tables (no table rebuild); only the
// per-view RNS constants are constructed, once, under the lock.
func (p *Parameters) RingQPAt(level int) *ring.Ring {
	if p.SpecialLimbs == 0 {
		panic("ckks: RingQPAt on parameters without special primes")
	}
	if level < 1 || level > p.Limbs {
		panic("ckks: level out of range")
	}
	p.hybridMu.Lock()
	defer p.hybridMu.Unlock()
	if r, ok := p.qpRings[level]; ok {
		return r
	}
	primes := make([]uint64, 0, level+p.SpecialLimbs)
	primes = append(primes, p.qPrimes[:level]...)
	primes = append(primes, p.specials...)
	tables := append(append([]*ntt.Table(nil), p.ringQ.Tables[:level]...), p.ringP.Tables...)
	r := &ring.Ring{N: p.N(), LogN: p.LogN, Basis: rns.MustBasis(primes), Tables: tables}
	r.SetEngine(p.curEng)
	r.SetBackend(p.curBackend)
	if p.qpRings == nil {
		p.qpRings = make(map[int]*ring.Ring)
	}
	p.qpRings[level] = r
	return r
}

// groupRange returns the limb span [lo, hi) of decomposition group j at
// the given level (the last group may be short).
func (p *Parameters) groupRange(level, j int) (int, int) {
	lo := j * p.SpecialLimbs
	hi := lo + p.SpecialLimbs
	if hi > level {
		hi = level
	}
	return lo, hi
}

// groupExtender returns (building and caching on first use) the basis
// extender from decomposition group j's primes to the full QP_ℓ basis.
func (p *Parameters) groupExtender(level, j int) *rns.Extender {
	p.hybridMu.Lock()
	defer p.hybridMu.Unlock()
	key := [2]int{level, j}
	if e, ok := p.grpExt[key]; ok {
		return e
	}
	lo, hi := p.groupRange(level, j)
	dst := make([]uint64, 0, level+p.SpecialLimbs)
	dst = append(dst, p.qPrimes[:level]...)
	dst = append(dst, p.specials...)
	e := rns.MustExtender(p.qPrimes[lo:hi], dst)
	if p.grpExt == nil {
		p.grpExt = make(map[[2]int]*rns.Extender)
	}
	p.grpExt[key] = e
	return e
}

// modDownExtender returns the P → Q_ℓ extender ModDown uses.
func (p *Parameters) modDownExtender(level int) *rns.Extender {
	p.hybridMu.Lock()
	defer p.hybridMu.Unlock()
	if e, ok := p.pExt[level]; ok {
		return e
	}
	e := rns.MustExtender(p.specials, p.qPrimes[:level])
	if p.pExt == nil {
		p.pExt = make(map[int]*rns.Extender)
	}
	p.pExt[level] = e
	return e
}

// Embedder exposes the canonical-embedding FFT tables.
func (p *Parameters) Embedder() *fftfp.Embedder { return p.embedder }

// FFTCtx returns the floating-point context encoding/decoding runs in.
func (p *Parameters) FFTCtx() fftfp.Ctx { return fftfp.NewCtx(p.MantBits) }
