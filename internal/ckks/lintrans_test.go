package ckks

import (
	"math/bits"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/fftfp"
)

// ltReference evaluates the diagonal-form matrix on a plaintext vector —
// the reference LinearTransform is pinned against.
func ltReference(slots int, diags map[int][]complex128, v []complex128) []complex128 {
	m := &fftfp.DiagMatrix{N: slots, Diags: map[int][]complex128{}}
	for d, vec := range diags {
		dst := m.Diags[((d%slots)+slots)%slots]
		if dst == nil {
			dst = make([]complex128, slots)
			m.Diags[((d%slots)+slots)%slots] = dst
		}
		for i, z := range vec { // aliased indices accumulate, mirroring the transform
			dst[i] += z
		}
	}
	return m.Apply(v)
}

// TestLinearTransformAgainstReference: BSGS evaluation must match the
// plaintext mat×vec on random sparse and banded matrices, at explicit and
// auto-selected block sizes, under both gadgets.
func TestLinearTransformAgainstReference(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)
	slots := p.Slots()
	rng := rand.New(rand.NewSource(7))

	randDiags := func(idx []int) map[int][]complex128 {
		out := map[int][]complex128{}
		for _, d := range idx {
			v := make([]complex128, slots)
			for r := range v {
				v[r] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
			}
			out[d] = v
		}
		return out
	}

	// BV switching noise at TestParams is ~5e-2 per rotation (see
	// TestRotation), so the many-rotation cases run on the hybrid gadget;
	// the BV case keeps a budget proportional to its key-switch count.
	cases := []struct {
		name   string
		idx    []int
		n1     int
		gadget Gadget
		tol    float64
	}{
		{"sparse-auto-bv", []int{0, 1, slots - 1, 64, 200}, 0, GadgetBV, 2e-1},
		{"banded-n1=8-hybrid", []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 8, GadgetHybrid, 5e-2},
		{"negative-and-dup-hybrid", []int{-1, slots - 1, 0, 17}, 0, GadgetHybrid, 5e-2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := randDiags(tc.idx)
			lt := enc.NewLinearTransform(diags, p.MaxLevel(), tc.n1)
			ks := kg.GenEvaluationKeySet(sk, p.MaxLevel(), lt.Rotations(), false, tc.gadget)

			msg := randMsg(p, 0, uint64(100+len(tc.idx)))
			ct := encryptor.Encrypt(enc.Encode(msg))
			out := ev.LinearTransform(ct, lt, ks.Rot)
			if out.Level != lt.Level-lt.Rescales {
				t.Fatalf("output level %d, want %d", out.Level, lt.Level-lt.Rescales)
			}
			got := enc.Decode(dec.Decrypt(out))
			want := ltReference(slots, diags, msg)
			if e := maxErr(want, got); e > tc.tol {
				t.Fatalf("BSGS transform error %g (budget %g)", e, tc.tol)
			}
		})
	}
}

// TestLinearTransformMergesAliasedDiagonals: indices d and d−slots name the
// same cyclic diagonal and must be summed, not last-write-wins.
func TestLinearTransformMergesAliasedDiagonals(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)
	slots := p.Slots()

	ones := make([]complex128, slots)
	for i := range ones {
		ones[i] = 1
	}
	// diag 3 given twice (as 3 and 3−slots): the transform is 2·rot_3.
	lt := enc.NewLinearTransform(map[int][]complex128{3: ones, 3 - slots: ones}, p.MaxLevel(), 0)
	ks := kg.GenEvaluationKeySet(sk, p.MaxLevel(), lt.Rotations(), false, GadgetHybrid)

	msg := randMsg(p, 0, 301)
	out := ev.LinearTransform(encryptor.Encrypt(enc.Encode(msg)), lt, ks.Rot)
	got := enc.Decode(dec.Decrypt(out))
	want := make([]complex128, slots)
	for i := range want {
		want[i] = 2 * msg[(i+3)%slots]
	}
	if e := maxErr(want, got); e > 5e-2 {
		t.Fatalf("aliased diagonals not merged: error %g", e)
	}
}

// TestBSGSStepsAndOptimalN1 pins the split arithmetic and the block-size
// scan on a hand-checked case.
func TestBSGSStepsAndOptimalN1(t *testing.T) {
	// Diagonals 0..15 over 64 slots: n1=4 → 4 babies + 4 giants = 8,
	// n1=16 → 16+1 = 17, n1=2 → 2+8 = 10. Optimum is 4 (or tied 8: 8+2=10
	// loses; 4 is strictly best).
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	b, g := BSGSSteps(64, idx, 4)
	if len(b) != 4 || len(g) != 4 {
		t.Fatalf("BSGSSteps(64, 0..15, 4): %d babies %d giants, want 4+4", len(b), len(g))
	}
	if n1 := OptimalN1(64, idx); n1 != 4 {
		t.Fatalf("OptimalN1 = %d, want 4", n1)
	}
	// Negative indices normalize cyclically.
	b, g = BSGSSteps(64, []int{-1}, 8)
	if len(b) != 1 || b[0] != 7 || len(g) != 1 || g[0] != 56 {
		t.Fatalf("BSGSSteps(64, {-1}, 8) = %v/%v, want [7]/[56]", b, g)
	}
}

// TestMulByI: multiplying by X^(N/2) must multiply every slot by i without
// touching scale, level, or adding key-switch noise.
func TestMulByI(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	msg := randMsg(p, 0, 55)
	ct := encryptor.Encrypt(enc.Encode(msg))
	out := ev.MulByI(ct)
	if out.Level != ct.Level || out.Scale != ct.Scale {
		t.Fatalf("MulByI changed level/scale: %d/%g vs %d/%g", out.Level, out.Scale, ct.Level, ct.Scale)
	}
	got := enc.Decode(dec.Decrypt(out))
	want := make([]complex128, len(msg))
	for i, z := range msg {
		want[i] = z * 1i
	}
	// No homomorphic noise beyond the fresh encryption's.
	if e := maxErr(want, got); e > 1e-3 {
		t.Fatalf("MulByI error %g", e)
	}
}

// TestHomomorphicDFTRoundTrip: CoeffsToSlots must surface the encoding
// basis (bit-reversed IFFT values, split into real/imaginary halves), and
// SlotsToCoeffs must invert it back to the original slots.
func TestHomomorphicDFTRoundTrip(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)
	slots := p.Slots()
	logn := bits.Len(uint(slots)) - 1

	dft := enc.NewHomomorphicDFT(HomomorphicDFTConfig{StartLevel: p.MaxLevel(), Levels: 1})
	ks := kg.GenEvaluationKeySet(sk, p.MaxLevel(), dft.Rotations(), true, GadgetHybrid)

	msg := randMsg(p, 0, 77)
	ct := encryptor.Encrypt(enc.Encode(msg))

	re, im := ev.CoeffsToSlots(ct, dft, ks.Rot, ks.Conj)
	if re.Level != dft.MidLevel || im.Level != dft.MidLevel {
		t.Fatalf("C2S levels %d/%d, want %d", re.Level, im.Level, dft.MidLevel)
	}

	// Reference: t = IFFT(msg), bit-reversed.
	vals := make([]fftfp.Complex, slots)
	for i, z := range msg {
		vals[i] = fftfp.Complex{Re: real(z), Im: imag(z)}
	}
	p.Embedder().IFFT(vals, fftfp.NewCtx(fftfp.Float64Mantissa))
	gotRe := enc.Decode(dec.Decrypt(re))
	gotIm := enc.Decode(dec.Decrypt(im))
	worst := 0.0
	for r := 0; r < slots; r++ {
		br := int(bits.Reverse64(uint64(r)) >> (64 - uint(logn)))
		wantT := complex(vals[br].Re, vals[br].Im)
		got := complex(real(gotRe[r]), real(gotIm[r]))
		if d := cmplx.Abs(got - wantT); d > worst {
			worst = d
		}
		// The outputs are real-valued vectors: imaginary parts ≈ 0.
		if d := cmplx.Abs(complex(imag(gotRe[r]), imag(gotIm[r]))); d > worst {
			worst = d
		}
	}
	if worst > 5e-2 {
		t.Fatalf("CoeffsToSlots worst-slot error %g", worst)
	}

	back := ev.SlotsToCoeffs(re, im, dft, ks.Rot)
	if back.Level != dft.StartLevel-2*dft.Levels*p.RescalesPerLevel() {
		t.Fatalf("S2C output level %d", back.Level)
	}
	got := enc.Decode(dec.Decrypt(back))
	if e := maxErr(msg, got); e > 5e-2 {
		t.Fatalf("C2S→S2C round-trip error %g", e)
	}
}

// TestHomomorphicDFTRotationsContract: the analytic rotation set key
// owners derive (HomomorphicDFTRotations) must equal the set the built
// transforms request — group by group, including block-size choices.
func TestHomomorphicDFTRotationsContract(t *testing.T) {
	p := testParams
	enc := NewEncoder(p)
	slots := p.Slots()
	logn := bits.Len(uint(slots)) - 1
	emb := p.Embedder()

	for _, levels := range []int{1, 3} {
		set := map[int]bool{}
		for _, inverse := range []bool{true, false} {
			for _, m := range emb.DFTMatrices(levels, inverse) {
				// Each group built independently at a shallow valid level:
				// the rotation set depends only on the diagonal support.
				lt := enc.NewLinearTransform(m.Diags, 2, 0)
				for _, s := range lt.Rotations() {
					set[s] = true
				}
			}
		}
		want := HomomorphicDFTRotations(slots, levels)
		if len(want) != len(set) {
			t.Fatalf("levels=%d: analytic set has %d steps, built set %d", levels, len(want), len(set))
		}
		for _, s := range want {
			if !set[s] {
				t.Fatalf("levels=%d: analytic step %d missing from built set", levels, s)
			}
		}
		_ = logn
	}
}
