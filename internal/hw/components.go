// Package hw is the area/power model of ABC-FHE at 28 nm / 600 MHz: a
// component cost library composed bottom-up into the chip of paper
// Table II (28.638 mm², 5.654 W), the Fig. 6a RFE-area ablation, and the
// DeepScaleTool-style 7 nm projection (§V-A: ≈0.9 mm², ≈2.1 W).
//
// Calibration policy (DESIGN.md): absolute anchors come from the paper's
// published synthesis numbers — the Table I modular-multiplier areas and
// the Table II global-scratchpad SRAM density — plus two engineering
// constants fixed here (the floating-point/modular reconfigurability
// overhead and control fractions). Everything else follows structurally
// from the design objects in internal/{ntt,sfg,modmul,prng}; tests assert
// each Table II row within tolerance and EXPERIMENTS.md records the
// deviations.
package hw

import (
	"repro/internal/modmul"
)

// Technology/operating point.
const (
	ProcessNM = 28
	ClockMHz  = 600
)

// Datapath widths (paper §III).
const (
	ModWidth = 44 // integer/modular datapath bits
	FPWidth  = 55 // custom floating-point width (1+11+43)
)

// --- Calibrated constants -------------------------------------------------

// ReconfigOverhead is the area multiplier of a reconfigurable
// modular/floating-point multiplier over the bare NTT-friendly modular
// multiplier. The FP55 mantissa product reuses the same 44×44 array
// (paper Eq. 12 maps one complex FP multiply onto four modular
// multipliers), so the overhead is the exponent datapath, normalization
// and mode muxes. Calibrated once against the Table II PNL row.
const ReconfigOverhead = 1.6

// Butterfly adders. A dedicated modular add/sub slice is tiny; an FP55
// adder (alignment shifter + normalize + round) is close to an integer
// multiplier in area; the reconfigurable add/sub shares the wide adder.
const (
	ModAdderAreaMM2      = 0.0002
	FPAdderAreaMM2       = 0.0080
	ReconfigAdderAreaMM2 = 0.0085
)

// ShufflingAreaPerStageMM2 covers one stage's 2n-shuffling unit: the
// commutator muxes and inter-stage pipeline registers across P lanes.
const ShufflingAreaPerStageMM2 = 0.006

// SRAM densities, anchored on Table II rows (global scratchpad for the
// banked macros, TF seed memory for the small single-port macro).
const (
	SRAMBankedMM2PerKB = 2.632 / 880.0 // double-buffered multi-bank 256-bit
	SRAMSmallMM2PerKB  = 0.046 / 26.4  // compact single-port seed macro
)

// Power densities in W/mm², derived from the Table II area/power pairs
// (the table is internally consistent: all SRAM rows sit at ≈0.49 W/mm²,
// datapath logic at ≈0.13, switch-heavy SIMD/PRNG logic at ≈0.40).
const (
	PowerDensityLogic = 0.130
	PowerDensitySIMD  = 0.395
	PowerDensitySRAM  = 0.490
)

// --- Component primitives --------------------------------------------------

// ModMultAreaMM2 returns the modular multiplier area for a Table I design.
func ModMultAreaMM2(d modmul.Design) float64 {
	return d.PaperAreaUM2() / 1e6
}

// ReconfigMultAreaMM2 is one reconfigurable FP55/44-bit-modular multiplier.
func ReconfigMultAreaMM2() float64 {
	return ModMultAreaMM2(modmul.FriendlyMontgomery) * ReconfigOverhead
}

// FPMultAreaMM2 models a dedicated (non-reconfigurable) FP55 multiplier:
// the mantissa array is the friendly multiplier's array; exponent and
// normalization add ≈80%.
func FPMultAreaMM2() float64 {
	return ModMultAreaMM2(modmul.FriendlyMontgomery) * 1.8
}

// FIFODoubleBuffer reflects the paper's "double-buffered SRAM" FIFO
// implementation: twice the raw commutator storage.
const FIFODoubleBuffer = 2.0

// SRAMAreaMM2 returns macro area for a capacity in KB.
func SRAMAreaMM2(kb float64, small bool) float64 {
	if small {
		return kb * SRAMSmallMM2PerKB
	}
	return kb * SRAMBankedMM2PerKB
}

// Block is a named area/power pair; chips are trees of blocks.
type Block struct {
	Name     string
	AreaMM2  float64
	PowerW   float64
	Children []Block
}

// Sum recomputes area/power from children when present.
func (b *Block) Sum() {
	if len(b.Children) == 0 {
		return
	}
	b.AreaMM2, b.PowerW = 0, 0
	for i := range b.Children {
		b.Children[i].Sum()
		b.AreaMM2 += b.Children[i].AreaMM2
		b.PowerW += b.Children[i].PowerW
	}
}

// Flatten returns the tree as rows (depth-first), for table rendering.
func (b *Block) Flatten() []Block {
	out := []Block{*b}
	for i := range b.Children {
		out = append(out, b.Children[i].Flatten()...)
	}
	return out
}

func logicBlock(name string, area float64) Block {
	return Block{Name: name, AreaMM2: area, PowerW: area * PowerDensityLogic}
}

func simdBlock(name string, area float64) Block {
	return Block{Name: name, AreaMM2: area, PowerW: area * PowerDensitySIMD}
}

func sramBlock(name string, kb float64, small bool) Block {
	a := SRAMAreaMM2(kb, small)
	return Block{Name: name, AreaMM2: a, PowerW: a * PowerDensitySRAM}
}
