package mod

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// testPrimes covers the widths used across the repository: a tiny prime, a
// 36-bit CKKS limb prime (q ≡ 1 mod 2^17), and primes near the 62-bit cap.
var testPrimes = []uint64{
	17,
	97,
	7681,                // 13-bit NTT prime (q ≡ 1 mod 2^9)
	65537,               // Fermat prime
	0xFFFF00001,         // 36-bit NTT prime q ≡ 1 mod 2^17 (68718428161)
	1152921504606584833, // 60-bit NTT prime
	4611686018425815041, // 62-bit NTT prime
}

func bigMulMod(a, b, q uint64) uint64 {
	A := new(big.Int).SetUint64(a)
	B := new(big.Int).SetUint64(b)
	Q := new(big.Int).SetUint64(q)
	A.Mul(A, B).Mod(A, Q)
	return A.Uint64()
}

func TestNewModulusConstants(t *testing.T) {
	for _, q := range testPrimes {
		m := NewModulus(q)
		// QInv: q * (-QInv) ≡ 1 mod 2^64  ⇔  q*QInv ≡ -1 mod 2^64.
		if q*m.QInv != ^uint64(0) {
			t.Errorf("q=%d: QInv incorrect", q)
		}
		// ROne = 2^64 mod q.
		r := new(big.Int).Lsh(big.NewInt(1), 64)
		r.Mod(r, new(big.Int).SetUint64(q))
		if m.ROne != r.Uint64() {
			t.Errorf("q=%d: ROne=%d want %d", q, m.ROne, r.Uint64())
		}
	}
}

func TestMulAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, q := range testPrimes {
		m := NewModulus(q)
		for i := 0; i < 500; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			want := bigMulMod(a, b, q)
			if got := m.Mul(a, b); got != want {
				t.Fatalf("q=%d Mul(%d,%d)=%d want %d", q, a, b, got, want)
			}
			if got := m.BarrettMul(a, b); got != want {
				t.Fatalf("q=%d BarrettMul(%d,%d)=%d want %d", q, a, b, got, want)
			}
		}
	}
}

func TestMontgomeryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, q := range testPrimes {
		m := NewModulus(q)
		for i := 0; i < 200; i++ {
			a := rng.Uint64() % q
			if got := m.IForm(m.MForm(a)); got != a {
				t.Fatalf("q=%d: IForm(MForm(%d))=%d", q, a, got)
			}
			b := rng.Uint64() % q
			// MRedMul(a, MForm(b)) == a*b mod q
			if got, want := m.MRedMul(a, m.MForm(b)), m.Mul(a, b); got != want {
				t.Fatalf("q=%d: M-domain mul mismatch got %d want %d", q, got, want)
			}
		}
	}
}

func TestAddSubNeg(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, q := range testPrimes {
		m := NewModulus(q)
		for i := 0; i < 200; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			if got, want := m.Add(a, b), (a+b)%q; got != want {
				t.Fatalf("Add mismatch")
			}
			if got, want := m.Sub(a, b), (a+q-b)%q; got != want {
				t.Fatalf("Sub mismatch")
			}
			if got := m.Add(a, m.Neg(a)); got != 0 {
				t.Fatalf("a + (-a) = %d != 0", got)
			}
		}
	}
}

func TestPowInv(t *testing.T) {
	for _, q := range testPrimes {
		m := NewModulus(q)
		rng := rand.New(rand.NewSource(int64(q)))
		for i := 0; i < 50; i++ {
			a := 1 + rng.Uint64()%(q-1)
			inv := m.Inv(a)
			if m.Mul(a, inv) != 1 {
				t.Fatalf("q=%d: a * a^-1 != 1 for a=%d", q, a)
			}
		}
		// Fermat: a^(q-1) = 1.
		if m.Pow(5%q, q-1) != 1 && q > 5 {
			t.Fatalf("q=%d: Fermat check failed", q)
		}
	}
}

func TestCentered(t *testing.T) {
	m := NewModulus(97)
	cases := []struct {
		in   uint64
		want int64
	}{{0, 0}, {1, 1}, {48, 48}, {49, -48}, {96, -1}}
	for _, c := range cases {
		if got := m.Centered(c.in); got != c.want {
			t.Errorf("Centered(%d)=%d want %d", c.in, got, c.want)
		}
		if back := m.FromCentered(c.want); back != c.in {
			t.Errorf("FromCentered(%d)=%d want %d", c.want, back, c.in)
		}
	}
}

func TestPrimitiveRootOfUnity(t *testing.T) {
	// 7681 - 1 = 2^9 * 15: supports orders up to 512.
	m := NewModulus(7681)
	for _, order := range []uint64{2, 4, 8, 256, 512} {
		psi, err := m.PrimitiveRootOfUnity(order)
		if err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		if m.Pow(psi, order) != 1 {
			t.Fatalf("psi^order != 1")
		}
		if m.Pow(psi, order/2) != m.Q-1 {
			t.Fatalf("psi^(order/2) != -1: order not exact")
		}
	}
	if _, err := m.PrimitiveRootOfUnity(1024); err == nil {
		t.Fatal("expected error: 1024 does not divide 7680")
	}
	if _, err := m.PrimitiveRootOfUnity(3); err == nil {
		t.Fatal("expected error: order not a power of two")
	}
}

func TestMinimalPrimitiveRoot(t *testing.T) {
	m := NewModulus(7681)
	minRoot, err := m.MinimalPrimitiveRoot(512)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive check that nothing smaller has exact order 512.
	for x := uint64(2); x < minRoot; x++ {
		if m.Pow(x, 512) == 1 && m.Pow(x, 256) == m.Q-1 {
			t.Fatalf("found smaller primitive root %d < %d", x, minRoot)
		}
	}
	if m.Pow(minRoot, 256) != m.Q-1 {
		t.Fatal("returned root does not have exact order")
	}
}

// Property: Montgomery, Barrett and division-based multiplication agree on
// arbitrary residues (quick-checked over random uint64 pairs).
func TestMulStrategiesAgreeQuick(t *testing.T) {
	m := NewModulus(0xFFFF00001)
	f := func(a, b uint64) bool {
		a %= m.Q
		b %= m.Q
		ref := m.Mul(a, b)
		return m.BarrettMul(a, b) == ref && m.MRedMul(a, m.MForm(b)) == ref
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: modular ring axioms — distributivity and associativity.
func TestRingAxiomsQuick(t *testing.T) {
	m := NewModulus(1152921504606584833)
	distrib := func(a, b, c uint64) bool {
		a, b, c = a%m.Q, b%m.Q, c%m.Q
		left := m.Mul(a, m.Add(b, c))
		right := m.Add(m.Mul(a, b), m.Mul(a, c))
		return left == right
	}
	if err := quick.Check(distrib, &quick.Config{MaxCount: 1000}); err != nil {
		t.Errorf("distributivity: %v", err)
	}
	assoc := func(a, b, c uint64) bool {
		a, b, c = a%m.Q, b%m.Q, c%m.Q
		return m.Mul(a, m.Mul(b, c)) == m.Mul(m.Mul(a, b), c)
	}
	if err := quick.Check(assoc, &quick.Config{MaxCount: 1000}); err != nil {
		t.Errorf("associativity: %v", err)
	}
}

func BenchmarkMulDiv(b *testing.B) {
	m := NewModulus(0xFFFF00001)
	x, y := uint64(123456789), uint64(987654321)
	for i := 0; i < b.N; i++ {
		x = m.Mul(x, y)
	}
	_ = x
}

func BenchmarkMulBarrett(b *testing.B) {
	m := NewModulus(0xFFFF00001)
	x, y := uint64(123456789), uint64(987654321)
	for i := 0; i < b.N; i++ {
		x = m.BarrettMul(x, y)
	}
	_ = x
}

func BenchmarkMulMontgomery(b *testing.B) {
	m := NewModulus(0xFFFF00001)
	x := uint64(123456789)
	y := m.MForm(987654321)
	for i := 0; i < b.N; i++ {
		x = m.MRedMul(x, y)
	}
	_ = x
}
