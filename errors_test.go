package abcfhe

// Every public-API misuse path must return a typed error (errors.Is
// against the sentinels in errors.go) — never panic. These tests walk the
// acceptance list: bad lengths, wrong levels, malformed bytes, unknown
// presets, structural ciphertext damage.

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestUnknownPresetErrors(t *testing.T) {
	if _, err := NewKeyOwner(Preset("bogus"), 1, 2); !errors.Is(err, ErrUnknownPreset) {
		t.Fatalf("NewKeyOwner: %v", err)
	}
	if _, err := NewServer(Preset("bogus")); !errors.Is(err, ErrUnknownPreset) {
		t.Fatalf("NewServer: %v", err)
	}
	if _, err := NewClient(Preset("bogus"), 1, 2); !errors.Is(err, ErrUnknownPreset) {
		t.Fatalf("NewClient: %v", err)
	}
}

func TestMalformedKeyBytes(t *testing.T) {
	owner, device, _ := threeParties(t, Test, 1, 2)
	pkBytes, _ := owner.ExportPublicKey()
	skBytes, _ := owner.ExportSecretKey()
	_ = device

	// Payload byte 10 sits entirely in bits 36..43 of packed word 1 —
	// always zero for 36-bit residues in 44-bit words — so flipping it is
	// guaranteed to push a residue past its modulus. The public blob's
	// payload starts after the 14-byte key header, the secret blob's after
	// header + 16-byte seed.
	cases := map[string][]byte{
		"empty":       nil,
		"garbage":     []byte("not a key at all"),
		"truncated":   pkBytes[:len(pkBytes)/2],
		"bad magic":   append([]byte("XXXX"), pkBytes[4:]...),
		"bit flipped": flipByte(pkBytes, 14+10),
	}
	for name, data := range cases {
		if _, err := NewEncryptor(data, 1, 2); !errors.Is(err, ErrMalformedWire) {
			t.Errorf("NewEncryptor(%s): %v", name, err)
		}
	}
	// Wrong kind both ways.
	if _, err := NewEncryptor(skBytes, 1, 2); !errors.Is(err, ErrMalformedWire) {
		t.Errorf("NewEncryptor(secret blob): %v", err)
	}
	if _, err := NewKeyOwnerFromSecretKey(pkBytes); !errors.Is(err, ErrMalformedWire) {
		t.Errorf("NewKeyOwnerFromSecretKey(public blob): %v", err)
	}
	if _, err := NewKeyOwnerFromSecretKey(flipByte(skBytes, 14+16+10)); !errors.Is(err, ErrMalformedWire) {
		t.Errorf("NewKeyOwnerFromSecretKey(bit flipped): %v", err)
	}
}

func flipByte(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0xFF
	return out
}

func TestMessageTooLongErrors(t *testing.T) {
	owner, device, _ := threeParties(t, Test, 3, 4)
	long := make([]complex128, device.Slots()+1)

	if _, err := device.EncodeEncrypt(long); !errors.Is(err, ErrMessageTooLong) {
		t.Errorf("EncodeEncrypt: %v", err)
	}
	if _, err := device.Encode(long); !errors.Is(err, ErrMessageTooLong) {
		t.Errorf("Encode: %v", err)
	}
	if _, err := device.EncodeEncryptBatch([][]complex128{{0.5}, long}); !errors.Is(err, ErrMessageTooLong) {
		t.Errorf("EncodeEncryptBatch: %v", err)
	}
	if _, err := owner.EncodeEncryptCompressed(long); !errors.Is(err, ErrMessageTooLong) {
		t.Errorf("EncodeEncryptCompressed: %v", err)
	}
}

func TestInvalidCiphertextErrors(t *testing.T) {
	owner, device, server := threeParties(t, Test, 5, 6)
	msg := testMsgs(device.Slots(), 1)[0]
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := owner.DecryptDecode(nil); !errors.Is(err, ErrInvalidCiphertext) {
		t.Errorf("nil ciphertext: %v", err)
	}
	bad := *ct
	bad.Level = owner.MaxLevel() + 7
	if _, err := owner.DecryptDecode(&bad); !errors.Is(err, ErrLevelOutOfRange) {
		t.Errorf("level out of range: %v", err)
	}
	bad = *ct
	bad.Level = 2 // limb count (full depth) no longer matches the level
	if _, err := owner.DecryptDecode(&bad); !errors.Is(err, ErrInvalidCiphertext) {
		t.Errorf("limb/level mismatch: %v", err)
	}
	mixed := *ct
	mixedC0 := *ct.C0
	mixedC0.IsNTT = !ct.C1.IsNTT
	mixed.C0 = &mixedC0
	if _, err := server.Negate(&mixed); !errors.Is(err, ErrInvalidCiphertext) {
		t.Errorf("mixed domain: %v", err)
	}
	scaleless := *ct
	scaleless.Scale = 0
	if _, err := owner.SerializeCiphertext(&scaleless); !errors.Is(err, ErrInvalidCiphertext) {
		t.Errorf("zero scale: %v", err)
	}

	// A flipped wire domain byte must stop at the public deserializers —
	// the decrypt pipeline would double-NTT and panic the ring layer, and
	// evaluation would relabel the data as coefficient-domain, laundering
	// the tag past the decrypt check.
	data, err := device.SerializeCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}
	data[16] = 1 // claim NTT domain
	if _, err := owner.DeserializeCiphertext(data); !errors.Is(err, ErrMalformedWire) {
		t.Errorf("owner NTT-domain deserialize: %v", err)
	}
	if _, err := server.DeserializeCiphertext(data); !errors.Is(err, ErrMalformedWire) {
		t.Errorf("server NTT-domain deserialize: %v", err)
	}
	// And an in-memory NTT-tagged pair is rejected by every consumer.
	nttCt := *ct
	c0, c1 := *ct.C0, *ct.C1
	c0.IsNTT, c1.IsNTT = true, true
	nttCt.C0, nttCt.C1 = &c0, &c1
	if _, err := owner.DecryptDecode(&nttCt); !errors.Is(err, ErrInvalidCiphertext) {
		t.Errorf("NTT-domain decrypt: %v", err)
	}
	if _, err := owner.DecryptDecodeBatch([]*Ciphertext{&nttCt}); !errors.Is(err, ErrInvalidCiphertext) {
		t.Errorf("NTT-domain batch decrypt: %v", err)
	}
	if _, err := server.Add(&nttCt, &nttCt); !errors.Is(err, ErrInvalidCiphertext) {
		t.Errorf("NTT-domain server add: %v", err)
	}
	if _, err := device.SerializeCiphertext(&nttCt); !errors.Is(err, ErrInvalidCiphertext) {
		t.Errorf("NTT-domain serialize: %v", err)
	}
}

func TestBufferSizeErrors(t *testing.T) {
	owner, device, _ := threeParties(t, Test, 7, 8)
	msg := testMsgs(device.Slots(), 1)[0]
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := owner.DecryptDecodeInto(ct, make([]complex128, 3)); !errors.Is(err, ErrBufferSize) {
		t.Errorf("short slot buffer: %v", err)
	}
	cts := []*Ciphertext{ct, ct}
	if _, err := owner.DecryptDecodeBatchInto(cts, make([][]complex128, 1)); !errors.Is(err, ErrBufferSize) {
		t.Errorf("short batch: %v", err)
	}
	wrong := make([][]complex128, 2)
	wrong[0] = make([]complex128, 5)
	if _, err := owner.DecryptDecodeBatchInto(cts, wrong); !errors.Is(err, ErrBufferSize) {
		t.Errorf("mis-sized batch entry: %v", err)
	}
}

func TestServerOperandErrors(t *testing.T) {
	_, device, server := threeParties(t, Test, 9, 10)
	msg := testMsgs(device.Slots(), 1)[0]
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	low, err := server.DropLevel(ct, 2)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := server.Add(ct, low); !errors.Is(err, ErrLevelMismatch) {
		t.Errorf("level mismatch: %v", err)
	}
	scaled, err := server.MulConst(ct, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Add(ct, scaled); !errors.Is(err, ErrScaleMismatch) {
		t.Errorf("scale mismatch: %v", err)
	}
	if _, err := server.DropLevel(ct, 0); !errors.Is(err, ErrLevelOutOfRange) {
		t.Errorf("drop to 0: %v", err)
	}
	if _, err := server.DropLevel(low, 3); !errors.Is(err, ErrLevelOutOfRange) {
		t.Errorf("drop upwards: %v", err)
	}
	lvl1, err := server.DropLevel(ct, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Rescale(lvl1); !errors.Is(err, ErrLevelOutOfRange) {
		t.Errorf("rescale below level 1: %v", err)
	}
	for _, c := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1 << 33, -(1 << 33)} {
		if _, err := server.MulConst(ct, c); !errors.Is(err, ErrInvalidConstant) {
			t.Errorf("MulConst(%g): %v", c, err)
		}
	}
	if _, err := server.MulConst(ct, -2.5); err != nil {
		t.Errorf("MulConst(-2.5) must be accepted: %v", err)
	}
}

// TestNonFiniteMessageErrors: NaN/Inf components must be rejected with
// ErrInvalidConstant at every public encode entry point — the same
// contract MulConst always enforced for its scalar. A non-finite float
// feeds math.Frexp garbage during scaling and would silently corrupt
// every slot of the residue polynomial, so it must stop at the door.
func TestNonFiniteMessageErrors(t *testing.T) {
	owner, device, server, evk := evalParties(t, Test)
	slots := device.Slots()

	poison := []complex128{
		complex(math.NaN(), 0),
		complex(0, math.NaN()),
		complex(math.Inf(1), 0),
		complex(0, math.Inf(-1)),
	}
	for _, z := range poison {
		msg := testMsgs(slots, 1)[0]
		msg[slots/2] = z
		if _, err := device.EncodeEncrypt(msg); !errors.Is(err, ErrInvalidConstant) {
			t.Errorf("EncodeEncrypt(%v): %v", z, err)
		}
		if _, err := device.Encode(msg); !errors.Is(err, ErrInvalidConstant) {
			t.Errorf("Encode(%v): %v", z, err)
		}
		if _, err := device.EncodeEncryptBatch([][]complex128{testMsgs(slots, 1)[0], msg}); !errors.Is(err, ErrInvalidConstant) {
			t.Errorf("EncodeEncryptBatch(%v): %v", z, err)
		}
		if _, err := owner.EncodeEncryptCompressed(msg); !errors.Is(err, ErrInvalidConstant) {
			t.Errorf("EncodeEncryptCompressed(%v): %v", z, err)
		}
	}

	// Server-side plaintext operands share the same gate.
	ct, err := device.EncodeEncrypt(testMsgs(slots, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	weights := []complex128{1, complex(0, math.Inf(1)), 3}
	if _, err := server.DotPlain(ct, weights, evk); !errors.Is(err, ErrInvalidConstant) {
		t.Errorf("DotPlain(Inf weight): %v", err)
	}
	// Finite messages still sail through.
	if _, err := device.EncodeEncrypt(testMsgs(slots, 1)[0]); err != nil {
		t.Errorf("finite message rejected: %v", err)
	}
}

// TestScaleToleranceSymmetric: the near-equality test on operand scales
// must not depend on argument order — the old check measured the
// difference against a.Scale only, so (a, b) and (b, a) could disagree
// at the tolerance boundary.
func TestScaleToleranceSymmetric(t *testing.T) {
	_, device, server := threeParties(t, Test, 21, 22)
	msg := testMsgs(device.Slots(), 1)[0]
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}

	within := *ct
	within.Scale = ct.Scale * (1 + 1e-13) // inside the 1e-12 relative budget
	if _, err := server.Add(ct, &within); err != nil {
		t.Errorf("Add(base, nudged): %v", err)
	}
	if _, err := server.Add(&within, ct); err != nil {
		t.Errorf("Add(nudged, base): %v", err)
	}

	beyond := *ct
	beyond.Scale = ct.Scale * (1 + 1e-6)
	if _, err := server.Add(ct, &beyond); !errors.Is(err, ErrScaleMismatch) {
		t.Errorf("Add(base, off): %v", err)
	}
	if _, err := server.Add(&beyond, ct); !errors.Is(err, ErrScaleMismatch) {
		t.Errorf("Add(off, base): %v", err)
	}
}

// TestBackendErrorDetail: an unknown backend name must surface
// ErrUnknownBackend *and* keep ParseBackend's detail — the list of valid
// names is the one thing the caller needs to fix the call.
func TestBackendErrorDetail(t *testing.T) {
	_, err := NewServer(Test, WithBackend("bogus"))
	if !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("sentinel lost: %v", err)
	}
	for _, want := range []string{"bogus", "portable", "fast"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q lost the detail %q", err, want)
		}
	}
}

func TestMalformedCiphertextBytes(t *testing.T) {
	owner, device, server := threeParties(t, Test, 11, 12)
	msg := testMsgs(device.Slots(), 1)[0]
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := device.SerializeCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}

	for name, mut := range map[string][]byte{
		"empty":     nil,
		"truncated": data[:len(data)-9],
		"garbage":   []byte("ABCF but not really a ciphertext"),
		"residue":   flipByte(data, 17+10), // guaranteed-zero bits of packed word 1 (see TestMalformedKeyBytes)
	} {
		if _, err := server.DeserializeCiphertext(mut); !errors.Is(err, ErrMalformedWire) {
			t.Errorf("server %s: %v", name, err)
		}
		if _, err := owner.DeserializeCiphertext(mut); !errors.Is(err, ErrMalformedWire) {
			t.Errorf("owner %s: %v", name, err)
		}
	}
	compressed, err := owner.EncodeEncryptCompressed(msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.ExpandCompressedUpload(compressed[:30]); !errors.Is(err, ErrMalformedWire) {
		t.Errorf("truncated compressed upload: %v", err)
	}
	if _, err := server.ExpandCompressedUpload(data); !errors.Is(err, ErrMalformedWire) {
		t.Errorf("full ciphertext as compressed upload: %v", err)
	}
}

func TestWireBytesLevelErrors(t *testing.T) {
	owner, device, server := threeParties(t, Test, 13, 14)
	for _, level := range []int{0, -1, owner.MaxLevel() + 1} {
		if _, err := device.CiphertextWireBytes(level); !errors.Is(err, ErrLevelOutOfRange) {
			t.Errorf("device level %d: %v", level, err)
		}
		if _, err := server.CompressedWireBytes(level); !errors.Is(err, ErrLevelOutOfRange) {
			t.Errorf("server level %d: %v", level, err)
		}
		if _, err := owner.CompressedWireBytes(level); !errors.Is(err, ErrLevelOutOfRange) {
			t.Errorf("owner level %d: %v", level, err)
		}
	}
}
