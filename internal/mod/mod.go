// Package mod implements arithmetic over 64-bit prime fields Z_q.
//
// It is the scalar substrate under every other package in this repository:
// the NTT (internal/ntt), the RNS machinery (internal/rns), the CKKS client
// (internal/ckks) and the hardware modular-multiplier models
// (internal/modmul) all reduce to the primitives defined here.
//
// Three reduction strategies are provided, mirroring the three hardware
// designs discussed in the ABC-FHE paper (Table I):
//
//   - generic 128-bit division (bits.Div64) — the "obviously correct"
//     reference used by tests,
//   - Barrett reduction with a precomputed 2^128/q constant, and
//   - Montgomery multiplication with R = 2^64.
//
// All moduli are required to be odd primes strictly below 2^62 so that every
// intermediate fits comfortably in the lazy ranges used by callers.
package mod

import (
	"fmt"
	"math/big"
	"math/bits"
)

// MaxModulusBits is the largest supported modulus width. CKKS RNS limbs in
// this repository are 36-bit (the paper's double-scale configuration), but
// the arithmetic supports anything below 2^62.
const MaxModulusBits = 62

// Modulus bundles a prime q with every precomputed constant needed for fast
// reduction. A Modulus is immutable after creation and safe for concurrent
// use.
type Modulus struct {
	Q    uint64 // the prime modulus
	Bits int    // bit length of Q

	// Barrett: BHi,BLo = floor(2^128 / Q), used to reduce 128-bit products.
	BHi, BLo uint64

	// Montgomery with R = 2^64:
	// QInv = -Q^{-1} mod 2^64, RSquare = (2^64)^2 mod Q, ROne = 2^64 mod Q.
	QInv    uint64
	RSquare uint64
	ROne    uint64
}

// NewModulus precomputes all reduction constants for the odd modulus q.
// It panics if q is even, zero, one, or ≥ 2^62; primality is the caller's
// concern (see internal/primes).
func NewModulus(q uint64) Modulus {
	if q < 3 || q&1 == 0 {
		panic(fmt.Sprintf("mod: modulus %d must be an odd integer ≥ 3", q))
	}
	if bits.Len64(q) > MaxModulusBits {
		panic(fmt.Sprintf("mod: modulus %d exceeds %d bits", q, MaxModulusBits))
	}
	m := Modulus{Q: q, Bits: bits.Len64(q)}

	// floor(2^128 / q) via math/big (setup-time only).
	one28 := new(big.Int).Lsh(big.NewInt(1), 128)
	ratio := new(big.Int).Quo(one28, new(big.Int).SetUint64(q))
	lo := new(big.Int).And(ratio, new(big.Int).SetUint64(^uint64(0)))
	hi := new(big.Int).Rsh(ratio, 64)
	m.BLo = lo.Uint64()
	m.BHi = hi.Uint64()

	// Newton iteration for -q^{-1} mod 2^64: x_{k+1} = x_k (2 - q x_k).
	inv := q // correct mod 2^3 for odd q
	for i := 0; i < 5; i++ {
		inv *= 2 - q*inv
	}
	m.QInv = -inv

	r := new(big.Int).Lsh(big.NewInt(1), 64)
	r.Mod(r, new(big.Int).SetUint64(q))
	m.ROne = r.Uint64()
	r2 := new(big.Int).SetUint64(m.ROne)
	r2.Mul(r2, r2).Mod(r2, new(big.Int).SetUint64(q))
	m.RSquare = r2.Uint64()
	return m
}

// Add returns (a + b) mod q for a, b < q.
func (m Modulus) Add(a, b uint64) uint64 {
	c := a + b
	if c >= m.Q {
		c -= m.Q
	}
	return c
}

// Sub returns (a - b) mod q for a, b < q.
func (m Modulus) Sub(a, b uint64) uint64 {
	c := a - b
	if a < b {
		c += m.Q
	}
	return c
}

// Neg returns -a mod q for a < q.
func (m Modulus) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return m.Q - a
}

// Reduce maps an arbitrary uint64 into [0, q).
func (m Modulus) Reduce(a uint64) uint64 { return a % m.Q }

// Mul returns (a * b) mod q via a full 128-bit product and hardware
// division. This is the reference multiplication: slower than Barrett or
// Montgomery but unconditionally correct for a, b < q.
func (m Modulus) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, m.Q)
	return rem
}

// BarrettMul returns (a*b) mod q using the precomputed 2^128/q constant.
// Inputs must be < q.
func (m Modulus) BarrettMul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.BarrettReduce128(hi, lo)
}

// BarrettReduce128 reduces the 128-bit value hi·2^64 + lo modulo q.
// The value must be < q·2^64 (always true for products of residues).
func (m Modulus) BarrettReduce128(hi, lo uint64) uint64 {
	// quotient ≈ floor(x * (2^128/q) / 2^128); we only need the high word.
	// x = hi·2^64 + lo, B = BHi·2^64 + BLo.
	// x*B / 2^128 = hi*BHi + (hi*BLo + lo*BHi + carries) >> 64 ...
	mhi, _ := bits.Mul64(lo, m.BLo)
	c1hi, c1lo := bits.Mul64(lo, m.BHi)
	c2hi, c2lo := bits.Mul64(hi, m.BLo)
	mid, carry1 := bits.Add64(c1lo, c2lo, 0)
	mid, carry2 := bits.Add64(mid, mhi, 0)
	_ = mid
	qhat := hi*m.BHi + c1hi + c2hi + carry1 + carry2
	r := lo - qhat*m.Q
	// At most two correction steps.
	if r >= m.Q {
		r -= m.Q
	}
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// MForm maps a < q into the Montgomery domain: returns a·2^64 mod q.
func (m Modulus) MForm(a uint64) uint64 {
	return m.MRedMul(a, m.RSquare)
}

// IForm maps a Montgomery-domain value back: returns a·2^{-64} mod q.
func (m Modulus) IForm(a uint64) uint64 {
	return m.MRedMul(a, 1)
}

// MRedMul returns a·b·2^{-64} mod q (a Montgomery multiplication). If b is
// kept in Montgomery form (b = b'·2^64 mod q) the result is a·b' mod q,
// which is how the NTT tables use it: twiddles are stored in M-form so a
// single MRedMul implements a plain modular multiplication.
func (m Modulus) MRedMul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	w := lo * m.QInv
	mh, ml := bits.Mul64(w, m.Q)
	_, carry := bits.Add64(lo, ml, 0)
	r := hi + mh + carry
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// Pow returns a^e mod q by square-and-multiply.
func (m Modulus) Pow(a, e uint64) uint64 {
	result := uint64(1)
	base := a % m.Q
	for e > 0 {
		if e&1 == 1 {
			result = m.Mul(result, base)
		}
		base = m.Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns a^{-1} mod q (q prime, a ≠ 0 mod q) via Fermat's little
// theorem. It panics on a ≡ 0.
func (m Modulus) Inv(a uint64) uint64 {
	if a%m.Q == 0 {
		panic("mod: inverse of zero")
	}
	return m.Pow(a, m.Q-2)
}

// Centered returns the centered representative of a in (-q/2, q/2].
func (m Modulus) Centered(a uint64) int64 {
	if a > m.Q/2 {
		return int64(a) - int64(m.Q)
	}
	return int64(a)
}

// FromCentered maps a signed value into [0, q).
func (m Modulus) FromCentered(v int64) uint64 {
	r := v % int64(m.Q)
	if r < 0 {
		r += int64(m.Q)
	}
	return uint64(r)
}

// MRedMulLazy is MRedMul without the final conditional subtraction: the
// result lies in [0, 2q). Used by lazy-reduction NTT butterflies, which
// absorb the slack in the 44-bit datapath headroom (see internal/ntt).
func (m Modulus) MRedMulLazy(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	w := lo * m.QInv
	mh, ml := bits.Mul64(w, m.Q)
	_, carry := bits.Add64(lo, ml, 0)
	return hi + mh + carry
}
