// Package primes provides the prime-number machinery behind ABC-FHE:
//
//   - a deterministic Miller–Rabin test for 64-bit integers,
//   - CKKS NTT prime chains (q ≡ 1 mod 2N so the negacyclic NTT exists), and
//   - the paper's NTT-friendly prime family Q = 2^bw + k·2^(n+1) + 1 with
//     k = ±2^a ± 2^b ± 2^c (Eq. 8), for which the Montgomery constant QInv
//     collapses to a shift-and-add network (Eq. 9–11). Section IV-A of the
//     paper reports 443 such primes in the 32–36 bit range; see Census.
package primes

import "math/bits"

// mrBases is a base set for which Miller–Rabin is *deterministic* for all
// n < 2^64 (Sinclair, 2011).
var mrBases = [...]uint64{2, 325, 9375, 28178, 450775, 9780504, 1795265022}

// mulMod64 returns a*b mod m using a 128-bit intermediate.
func mulMod64(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi >= m { // keep Div64's precondition hi < m
		hi %= m
	}
	_, rem := bits.Div64(hi, lo, m)
	return rem
}

func powMod64(a, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			result = mulMod64(result, a, m)
		}
		a = mulMod64(a, a, m)
		e >>= 1
	}
	return result
}

// IsPrime reports whether n is prime. The test is deterministic for every
// 64-bit input (no probabilistic failure window).
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// Write n-1 = d·2^r.
	d := n - 1
	r := uint(0)
	for d&1 == 0 {
		d >>= 1
		r++
	}
	for _, a := range mrBases {
		a %= n
		if a == 0 {
			continue
		}
		x := powMod64(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := uint(1); i < r; i++ {
			x = mulMod64(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// GenerateNTTPrimes returns `count` distinct primes of the given bit length
// satisfying q ≡ 1 (mod 2N), scanning downward from 2^bitLen. These are the
// RNS limb moduli for a degree-N negacyclic ring: the congruence guarantees
// a primitive 2N-th root of unity exists, which is what both the reference
// NTT and the hardware's on-the-fly twiddle generator require.
//
// It panics if the bit length cannot host `count` such primes (never the
// case for the parameter sets in this repository).
func GenerateNTTPrimes(count, bitLen, logN int) []uint64 {
	if bitLen < logN+2 || bitLen > 61 {
		panic("primes: unsupported bit length")
	}
	step := uint64(1) << uint(logN+1) // 2N
	out := make([]uint64, 0, count)
	// Largest candidate ≡ 1 mod 2N strictly below 2^bitLen.
	top := (uint64(1) << uint(bitLen)) - 1
	q := top - (top-1)%step // q ≡ 1 mod step
	lo := uint64(1) << uint(bitLen-1)
	for ; q > lo; q -= step {
		if IsPrime(q) {
			out = append(out, q)
			if len(out) == count {
				return out
			}
		}
	}
	panic("primes: bit range exhausted before finding enough NTT primes")
}

// GenerateNTTPrimesUp scans upward from 2^(bitLen-1); used when a parameter
// set wants moduli just *above* a power of two so products stay in lazy
// ranges. Returned primes still satisfy q ≡ 1 mod 2N.
func GenerateNTTPrimesUp(count, bitLen, logN int) []uint64 {
	if bitLen < logN+2 || bitLen > 61 {
		panic("primes: unsupported bit length")
	}
	step := uint64(1) << uint(logN+1)
	out := make([]uint64, 0, count)
	q := (uint64(1) << uint(bitLen-1)) + 1
	for ; q < uint64(1)<<uint(bitLen); q += step {
		if IsPrime(q) {
			out = append(out, q)
			if len(out) == count {
				return out
			}
		}
	}
	panic("primes: bit range exhausted before finding enough NTT primes")
}
