package ntt

// Forward computes the in-place negacyclic NTT of a (length N, natural
// order in, natural order out — the bit-reversal is internal). After
// Forward, coefficient-wise multiplication corresponds to negacyclic
// convolution in the ring Z_q[X]/(X^N+1).
//
// This is the merged-ψ Cooley–Tukey formulation: stage m pairs elements at
// distance t = N/2m and multiplies by ψ^{brev(m+i)}, so no separate ψ^n
// pre-scaling pass exists — the property the ABC-FHE RFE exploits to hit
// the P/2·log2(N) multiplier lower bound (paper Fig. 4a).
func (t *Table) Forward(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.Mod
	q := m.Q
	for mm, tt := 1, t.N>>1; mm < t.N; mm, tt = mm<<1, tt>>1 {
		for i := 0; i < mm; i++ {
			s := t.PsiRev[mm+i]
			j1 := 2 * i * tt
			for j := j1; j < j1+tt; j++ {
				u := a[j]
				v := m.MRedMul(a[j+tt], s)
				uv := u + v
				if uv >= q {
					uv -= q
				}
				a[j] = uv
				uv = u - v
				if u < v {
					uv += q
				}
				a[j+tt] = uv
			}
		}
	}
}

// Inverse computes the in-place inverse negacyclic NTT (Gentleman–Sande
// with merged ψ^{-1}), including the final N^{-1} scaling.
func (t *Table) Inverse(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.Mod
	q := m.Q
	tt := 1
	for mm := t.N; mm > 1; mm >>= 1 {
		h := mm >> 1
		j1 := 0
		for i := 0; i < h; i++ {
			s := t.PsiInvRev[h+i]
			for j := j1; j < j1+tt; j++ {
				u := a[j]
				v := a[j+tt]
				uv := u + v
				if uv >= q {
					uv -= q
				}
				a[j] = uv
				uv = u - v
				if u < v {
					uv += q
				}
				a[j+tt] = m.MRedMul(uv, s)
			}
			j1 += 2 * tt
		}
		tt <<= 1
	}
	for j := range a {
		a[j] = m.MRedMul(a[j], t.NInv)
	}
}

// PolyMulNTT returns the negacyclic product of a and b (natural-order
// coefficient vectors) using the transform: NTT both, multiply pointwise,
// inverse-transform. Inputs are not modified.
func (t *Table) PolyMulNTT(a, b []uint64) []uint64 {
	ah := append([]uint64(nil), a...)
	bh := append([]uint64(nil), b...)
	t.Forward(ah)
	t.Forward(bh)
	m := t.Mod
	for i := range ah {
		ah[i] = m.Mul(ah[i], bh[i])
	}
	t.Inverse(ah)
	return ah
}

// PolyMulNaive is the O(N²) schoolbook negacyclic product, the oracle the
// transform is verified against: c_k = Σ_{i+j≡k} ± a_i b_j with the sign
// flipped when i+j wraps past N (because X^N = −1).
func (t *Table) PolyMulNaive(a, b []uint64) []uint64 {
	m := t.Mod
	n := t.N
	c := make([]uint64, n)
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			p := m.Mul(a[i], b[j])
			k := i + j
			if k < n {
				c[k] = m.Add(c[k], p)
			} else {
				c[k-n] = m.Sub(c[k-n], p)
			}
		}
	}
	return c
}
