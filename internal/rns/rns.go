// Package rns implements residue-number-system machinery for CKKS: the
// decomposition of big-integer polynomial coefficients into word-sized
// limbs (the "Expand RNS" stage of the encode pipeline, paper Fig. 2a) and
// the Chinese-remainder reconstruction used on decode ("Combine CRT").
//
// The paper's configuration uses the double-scale technique [1]: 36-bit
// primes with the number of limbs doubled (24 limbs standing in for 12
// ~72-bit levels), keeping the hardware datapath at 44 bits.
package rns

import (
	"fmt"
	"math/big"

	"repro/internal/mod"
)

// Basis is an RNS basis: a list of pairwise-coprime word-sized primes with
// the constants needed for expansion and CRT reconstruction.
type Basis struct {
	Moduli []mod.Modulus
	Q      *big.Int // product of all moduli

	// CRT reconstruction: qiHat[i] = Q/qi, qiHatInv[i] = (Q/qi)^{-1} mod qi.
	qiHat    []*big.Int
	qiHatInv []uint64
	halfQ    *big.Int // Q/2, for centered lifts
}

// NewBasis builds a basis from the given primes (all distinct, odd).
func NewBasis(primes []uint64) (*Basis, error) {
	if len(primes) == 0 {
		return nil, fmt.Errorf("rns: empty basis")
	}
	seen := map[uint64]bool{}
	b := &Basis{Q: big.NewInt(1)}
	for _, q := range primes {
		if seen[q] {
			return nil, fmt.Errorf("rns: duplicate modulus %d", q)
		}
		seen[q] = true
		b.Moduli = append(b.Moduli, mod.NewModulus(q))
		b.Q.Mul(b.Q, new(big.Int).SetUint64(q))
	}
	b.qiHat = make([]*big.Int, len(primes))
	b.qiHatInv = make([]uint64, len(primes))
	for i, m := range b.Moduli {
		b.qiHat[i] = new(big.Int).Quo(b.Q, new(big.Int).SetUint64(m.Q))
		hatMod := new(big.Int).Mod(b.qiHat[i], new(big.Int).SetUint64(m.Q)).Uint64()
		b.qiHatInv[i] = m.Inv(hatMod)
	}
	b.halfQ = new(big.Int).Rsh(b.Q, 1)
	return b, nil
}

// MustBasis panics on error.
func MustBasis(primes []uint64) *Basis {
	b, err := NewBasis(primes)
	if err != nil {
		panic(err)
	}
	return b
}

// K returns the number of limbs.
func (b *Basis) K() int { return len(b.Moduli) }

// Primes returns the raw prime values.
func (b *Basis) Primes() []uint64 {
	out := make([]uint64, b.K())
	for i, m := range b.Moduli {
		out[i] = m.Q
	}
	return out
}

// Sub returns the prefix sub-basis with the first k limbs — how CKKS
// levels shrink: a level-l ciphertext lives in the first l limbs.
func (b *Basis) Sub(k int) *Basis {
	if k < 1 || k > b.K() {
		panic("rns: sub-basis size out of range")
	}
	return MustBasis(b.Primes()[:k])
}

// ExpandInt64 reduces a signed value into every limb.
func (b *Basis) ExpandInt64(v int64, out []uint64) {
	for i, m := range b.Moduli {
		out[i] = m.FromCentered(v)
	}
}

// ExpandBig reduces a signed big integer into every limb (centered
// semantics: negative values wrap to q - |v| mod q).
func (b *Basis) ExpandBig(v *big.Int, out []uint64) {
	var t big.Int
	for i, m := range b.Moduli {
		t.Mod(v, t.SetUint64(m.Q))
		r := t.Uint64()
		// big.Int.Mod returns non-negative results already, but guard the
		// semantics explicitly for readability.
		out[i] = r % m.Q
	}
}

// CombineCentered reconstructs the centered representative in
// (-Q/2, Q/2] of the residue vector limbs (one residue per limb).
func (b *Basis) CombineCentered(limbs []uint64) *big.Int {
	if len(limbs) != b.K() {
		panic("rns: residue count mismatch")
	}
	acc := new(big.Int)
	var term big.Int
	for i, m := range b.Moduli {
		// term = qiHat[i] * ((limb * qiHatInv[i]) mod qi)
		c := m.Mul(limbs[i]%m.Q, b.qiHatInv[i])
		term.SetUint64(c)
		term.Mul(&term, b.qiHat[i])
		acc.Add(acc, &term)
	}
	acc.Mod(acc, b.Q)
	if acc.Cmp(b.halfQ) > 0 {
		acc.Sub(acc, b.Q)
	}
	return acc
}

// CombineCenteredFloat reconstructs the centered value and converts it to
// float64 after dividing by scale — the decode hot path (avoids big.Float
// in the caller).
func (b *Basis) CombineCenteredFloat(limbs []uint64, scale float64) float64 {
	v := b.CombineCentered(limbs)
	f := new(big.Float).SetInt(v)
	f.Quo(f, big.NewFloat(scale))
	out, _ := f.Float64()
	return out
}
