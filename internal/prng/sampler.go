package prng

import (
	"math"
)

// GaussianSigma is the error standard deviation used throughout: the
// HE-standard σ = 3.2 (cf. the homomorphic-encryption security guidelines
// the paper cites as [5]).
const GaussianSigma = 3.2

// GaussianTailCut bounds samples to ±⌈6σ⌉, the conventional tail cut for
// RLWE error distributions.
const GaussianTailCut = 20 // ⌈6·3.2⌉ = 20

// UniformModQ returns the next uniform residue in [0, q) by rejection
// sampling on the minimal number of random bits (the same strategy a
// hardware PRNG uses so the expected consumption is < 2 words per sample).
func (s *Source) UniformModQ(q uint64) uint64 {
	if q == 0 {
		panic("prng: q must be > 0")
	}
	// Rejection threshold: largest multiple of q representable in the
	// masked width.
	bitsNeeded := 64 - leadingZeros64(q-1)
	if q == 1 {
		return 0
	}
	mask := ^uint64(0)
	if bitsNeeded < 64 {
		mask = (uint64(1) << bitsNeeded) - 1
	}
	for {
		v := s.Uint64() & mask
		if v < q {
			return v
		}
	}
}

func leadingZeros64(v uint64) int {
	n := 0
	if v == 0 {
		return 64
	}
	for v&(1<<63) == 0 {
		v <<= 1
		n++
	}
	return n
}

// UniformPoly fills out with uniform residues mod q.
func (s *Source) UniformPoly(out []uint64, q uint64) {
	for i := range out {
		out[i] = s.UniformModQ(q)
	}
}

// TernarySample returns -1, 0 or +1 with P(-1)=P(+1)=p/2, P(0)=1-p. The
// standard CKKS secret/encryption randomness uses p = 2/3 (uniform ternary)
// or a fixed Hamming weight; TernaryPoly implements the uniform variant and
// TernaryPolyHW the fixed-weight variant.
func (s *Source) TernarySample() int64 {
	// Uniform over {-1, 0, +1} via rejection on 2 bits.
	for {
		b := s.Uint32() & 3
		switch b {
		case 0:
			return -1
		case 1:
			return 0
		case 2:
			return 1
			// case 3: reject
		}
	}
}

// TernaryPoly fills out with uniform ternary values mapped into Z_q
// (−1 ↦ q−1).
func (s *Source) TernaryPoly(out []uint64, q uint64) {
	for i := range out {
		switch s.TernarySample() {
		case -1:
			out[i] = q - 1
		case 0:
			out[i] = 0
		default:
			out[i] = 1
		}
	}
}

// TernaryPolyHW fills out with exactly hw nonzero entries (±1 with equal
// probability), the sparse-secret distribution used by bootstrappable CKKS
// parameter sets. It performs a Fisher–Yates placement driven by the
// stream.
func (s *Source) TernaryPolyHW(out []uint64, hw int, q uint64) {
	n := len(out)
	if hw > n {
		hw = n
	}
	for i := range out {
		out[i] = 0
	}
	// Choose hw distinct positions.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < hw; i++ {
		j := i + int(s.UniformModQ(uint64(n-i)))
		idx[i], idx[j] = idx[j], idx[i]
		if s.Uint32()&1 == 0 {
			out[idx[i]] = 1
		} else {
			out[idx[i]] = q - 1
		}
	}
}

// gaussianCDF is the precomputed half-CDF of the discrete Gaussian with
// σ = GaussianSigma, tail-cut at GaussianTailCut: gaussianCDF[k] =
// P(|X| ≤ k) scaled to 2^63. Built once at init; the hardware analogue is
// a small ROM (the paper folds it into the PRNG block).
var gaussianCDF [GaussianTailCut + 1]uint64

func init() {
	sigma := float64(GaussianSigma)
	var weights [GaussianTailCut + 1]float64
	sum := 0.0
	for k := 0; k <= GaussianTailCut; k++ {
		w := math.Exp(-float64(k*k) / (2 * sigma * sigma))
		if k > 0 {
			w *= 2 // both signs
		}
		weights[k] = w
		sum += w
	}
	acc := 0.0
	for k := 0; k <= GaussianTailCut; k++ {
		acc += weights[k]
		gaussianCDF[k] = uint64(acc / sum * float64(1<<63))
	}
	gaussianCDF[GaussianTailCut] = 1 << 63
}

// GaussianSample draws from the centered discrete Gaussian (σ = 3.2,
// tail-cut 6σ) by inverse-CDF lookup on 63 random bits plus a sign bit.
func (s *Source) GaussianSample() int64 {
	u := s.Uint64()
	sign := u >> 63
	r := u & ((1 << 63) - 1)
	// Linear scan: the table is 21 entries and heavily front-loaded
	// (P(|X|≤4) ≈ 0.79), so the expected scan length is ~2.
	k := int64(0)
	for i := 0; i <= GaussianTailCut; i++ {
		if r < gaussianCDF[i] {
			k = int64(i)
			break
		}
	}
	if sign == 1 {
		k = -k
	}
	return k
}

// GaussianPoly fills out with discrete-Gaussian values mapped into Z_q.
func (s *Source) GaussianPoly(out []uint64, q uint64) {
	for i := range out {
		g := s.GaussianSample()
		if g < 0 {
			out[i] = q - uint64(-g)
		} else {
			out[i] = uint64(g)
		}
	}
}
