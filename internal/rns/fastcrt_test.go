package rns

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/primes"
)

// presetChains mirrors the prime-chain shapes of every ckks preset
// (ParamSpec values; ckks itself cannot be imported here without a cycle):
// limbs × limb bits × logN, from the paper's PN16 evaluation set down to
// the test/tiny rings.
var presetChains = []struct {
	name  string
	limbs int
	bits  int
	logN  int
}{
	{"PN16", 24, 36, 16},
	{"PN15", 24, 36, 15},
	{"PN14", 24, 36, 14},
	{"PN13", 12, 36, 13},
	{"Test", 4, 36, 10},
	{"Tiny", 3, 30, 8},
}

func presetBasis(limbs, bits, logN int) *Basis {
	return MustBasis(primes.GenerateNTTPrimes(limbs, bits, logN))
}

// combineScales are the divisors the agreement checks run at: unit, the
// Test-preset Δ, and the paper's double-scale Δ.
var combineScales = []float64{1, 0x1p30, 0x1p66}

// relClose reports got ≈ want within tol relative error (exact match
// required at zero).
func relClose(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want) <= tol*math.Abs(want)
}

// combineTol is the asserted fast-vs-oracle agreement. The acceptance bar
// is 1e-9; the implementation's worst case (three float64 roundings plus a
// 2^-64 truncation) sits orders of magnitude below even this.
const combineTol = 1e-12

// checkAgreement drives one residue vector through the fast combine and
// the big.Int oracle at every test scale and asserts agreement, plus the
// expand round trip of the exact reconstruction.
func checkAgreement(t *testing.T, b *Basis, limbs []uint64) {
	t.Helper()
	scratch := make([]uint64, b.CombineScratchLen())
	v := b.CombineCentered(limbs)
	for _, scale := range combineScales {
		want := b.CombineCenteredFloatBig(limbs, scale)
		got := b.CombineCenteredFloatScratch(limbs, scale, scratch)
		if !relClose(got, want, combineTol) {
			t.Fatalf("K=%d scale=%g: fast %v != oracle %v (residues %v)",
				b.K(), scale, got, want, limbs)
		}
		if conv := b.CombineCenteredFloat(limbs, scale); conv != got {
			t.Fatalf("K=%d: convenience form %v != scratch form %v", b.K(), conv, got)
		}
	}
	// The centered lift must reduce back to the original residues.
	back := make([]uint64, b.K())
	b.ExpandBig(v, back)
	for i, m := range b.Moduli {
		if back[i] != limbs[i]%m.Q {
			t.Fatalf("K=%d limb %d: reconstruct %d != %d", b.K(), i, back[i], limbs[i]%m.Q)
		}
	}
}

// TestCombineFastMatchesBigInt is the quickcheck-style headliner: random
// limb vectors at every level of every preset chain, through both paths.
func TestCombineFastMatchesBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, pc := range presetChains {
		full := presetBasis(pc.limbs, pc.bits, pc.logN)
		for level := 1; level <= full.K(); level++ {
			b := full.Sub(level)
			limbs := make([]uint64, level)
			for iter := 0; iter < 20; iter++ {
				for i, m := range b.Moduli {
					limbs[i] = rng.Uint64() % m.Q
				}
				checkAgreement(t, b, limbs)
			}
			// Unreduced residues must behave like their reductions.
			for i := range limbs {
				limbs[i] = rng.Uint64()
			}
			checkAgreement(t, b, limbs)
		}
	}
}

// TestCombineFastBoundaries pins the centered-lift edge cases: zero, ±1,
// all-(q-1), floor(Q/2) and floor(Q/2)+1 (the sign flip), and single-limb
// one-hot vectors.
func TestCombineFastBoundaries(t *testing.T) {
	for _, pc := range presetChains[3:] { // PN13/Test/Tiny keep it quick
		full := presetBasis(pc.limbs, pc.bits, pc.logN)
		for level := 1; level <= full.K(); level++ {
			b := full.Sub(level)
			limbs := make([]uint64, level)

			cases := []*big.Int{
				big.NewInt(0), big.NewInt(1), big.NewInt(-1),
				new(big.Int).Set(b.halfQ),
				new(big.Int).Add(b.halfQ, big.NewInt(1)),
				new(big.Int).Sub(b.Q, big.NewInt(1)),
			}
			for _, v := range cases {
				b.ExpandBig(v, limbs)
				checkAgreement(t, b, limbs)
			}
			for hot := 0; hot < level; hot++ {
				for i := range limbs {
					limbs[i] = 0
				}
				limbs[hot] = b.Moduli[hot].Q - 1
				checkAgreement(t, b, limbs)
			}
		}
	}
}

// TestCombineFastQuick checks the fast path against exact small-integer
// arithmetic: expanding any int64 and combining must return v/scale.
func TestCombineFastQuick(t *testing.T) {
	b := presetBasis(4, 36, 10)
	scratch := make([]uint64, b.CombineScratchLen())
	limbs := make([]uint64, b.K())
	f := func(v int64) bool {
		b.ExpandInt64(v, limbs)
		got := b.CombineCenteredFloatScratch(limbs, 0x1p30, scratch)
		return got == float64(v)/0x1p30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCombineScratchLen pins the scratch contract: one guard word above
// the word count of Q.
func TestCombineScratchLen(t *testing.T) {
	for _, pc := range presetChains {
		b := presetBasis(pc.limbs, pc.bits, pc.logN)
		want := (b.Q.BitLen()+63)/64 + 1
		if got := b.CombineScratchLen(); got != want {
			t.Fatalf("%s: scratch len %d want %d", pc.name, got, want)
		}
	}
}

// TestCombineFastAllocationFree asserts the hot path performs zero
// allocations with caller-owned scratch, and that the pooled-scratch
// exact paths no longer allocate per limb.
func TestCombineFastAllocationFree(t *testing.T) {
	b := presetBasis(24, 36, 16)
	limbs := make([]uint64, b.K())
	rng := rand.New(rand.NewSource(3))
	for i, m := range b.Moduli {
		limbs[i] = rng.Uint64() % m.Q
	}
	scratch := make([]uint64, b.CombineScratchLen())
	if n := testing.AllocsPerRun(200, func() {
		b.CombineCenteredFloatScratch(limbs, 0x1p66, scratch)
	}); n != 0 {
		t.Fatalf("fast combine allocates %.1f/op, want 0", n)
	}

	// The exact path used to allocate one big.Int product per limb (24+
	// allocs/op on this basis); pooled scratch leaves only big.Int.Mod's
	// internal division temporaries.
	out := new(big.Int)
	if n := testing.AllocsPerRun(200, func() {
		b.CombineCenteredInto(out, limbs)
	}); n >= float64(b.K()) {
		t.Fatalf("CombineCenteredInto allocates %.1f/op, want < %d", n, b.K())
	}
	expand := make([]uint64, b.K())
	v := b.CombineCentered(limbs)
	if n := testing.AllocsPerRun(200, func() {
		b.ExpandBig(v, expand)
	}); n >= float64(b.K()) {
		t.Fatalf("ExpandBig allocates %.1f/op, want < %d", n, b.K())
	}
}

// TestSubMemoized pins the level-view cache: repeated Sub calls return the
// identical view, and the full-width view is the basis itself.
func TestSubMemoized(t *testing.T) {
	b := presetBasis(4, 36, 10)
	if b.Sub(b.K()) != b {
		t.Fatal("full-width Sub must return the basis itself")
	}
	s1, s2 := b.Sub(2), b.Sub(2)
	if s1 != s2 {
		t.Fatal("Sub views must be memoized")
	}
	if s1.K() != 2 || s1.Primes()[0] != b.Primes()[0] {
		t.Fatal("memoized view must be the 2-limb prefix")
	}
}

func BenchmarkCombineFloatFast24(b *testing.B) {
	basis := presetBasis(24, 36, 16)
	limbs := make([]uint64, basis.K())
	rng := rand.New(rand.NewSource(5))
	for i, m := range basis.Moduli {
		limbs[i] = rng.Uint64() % m.Q
	}
	scratch := make([]uint64, basis.CombineScratchLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis.CombineCenteredFloatScratch(limbs, 0x1p66, scratch)
	}
}

func BenchmarkCombineFloatBig24(b *testing.B) {
	basis := presetBasis(24, 36, 16)
	limbs := make([]uint64, basis.K())
	rng := rand.New(rand.NewSource(5))
	for i, m := range basis.Moduli {
		limbs[i] = rng.Uint64() % m.Q
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis.CombineCenteredFloatBig(limbs, 0x1p66)
	}
}
