package abcfhe

// Public-surface property test of the execution-backend contract: every
// operation of the role-separated API produces byte-identical ciphertexts
// under the portable and fast backends, at any worker count. Backends and
// worker counts are execution strategy only — the wire bytes are part of
// the protocol and must not depend on either.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// backendRun drives the full three-party pipeline under one (backend,
// workers) configuration and returns the serialized bytes of every
// intermediate ciphertext.
func backendRun(t *testing.T, backend string, workers int) map[string][]byte {
	t.Helper()
	opts := []Option{WithWorkers(workers), WithBackend(backend)}
	owner, device, server := threeParties(t, Test, 0xBACC, 0xE57, opts...)
	defer owner.Close()
	defer device.Close()
	defer server.Close()

	evkBytes, err := owner.ExportEvaluationKeys(EvalKeyConfig{
		Rotations: []int{1, 2},
		Conjugate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	evk, err := server.ImportEvaluationKeys(evkBytes)
	if err != nil {
		t.Fatal(err)
	}

	msgs := testMsgs(device.Slots(), 2)
	ct1, err := device.EncodeEncrypt(msgs[0])
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := device.EncodeEncrypt(msgs[1])
	if err != nil {
		t.Fatal(err)
	}

	out := map[string][]byte{}
	record := func(name string, ct *Ciphertext, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s (backend=%s workers=%d): %v", name, backend, workers, err)
		}
		blob, err := server.SerializeCiphertext(ct)
		if err != nil {
			t.Fatalf("serialize %s: %v", name, err)
		}
		out[name] = blob
	}
	record("encrypt", ct1, nil)

	mul, err := server.Mul(ct1, ct2, evk)
	record("mul", mul, err)
	rot, err := server.Rotate(ct1, 2, evk)
	record("rotate", rot, err)
	conj, err := server.Conjugate(ct1, evk)
	record("conjugate", conj, err)
	isum, err := server.InnerSum(ct1, 4, evk)
	record("innersum", isum, err)

	// Decode determinism rides the same bytes: same ciphertext bytes in,
	// identical float64s out (pure deterministic arithmetic).
	dec, err := owner.DecryptDecode(ct1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, v := range dec[:8] {
		fmt.Fprintf(&buf, "%x/%x;", real(v), imag(v))
	}
	out["decode"] = buf.Bytes()
	return out
}

// TestBackendWorkerInvariance sweeps both backends across worker counts
// 1, 2 and 8; every configuration must produce the same bytes as the
// portable single-worker reference.
func TestBackendWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps 6 full pipelines")
	}
	ref := backendRun(t, "portable", 1)
	for _, backend := range []string{"portable", "fast"} {
		for _, workers := range []int{1, 2, 8} {
			if backend == "portable" && workers == 1 {
				continue
			}
			got := backendRun(t, backend, workers)
			for name, want := range ref {
				if !bytes.Equal(got[name], want) {
					t.Fatalf("%s: bytes diverge under backend=%s workers=%d", name, backend, workers)
				}
			}
		}
	}
}

// TestWithBackendUnknownName: a typo in the backend name must surface as
// ErrUnknownBackend at construction, never silently fall back — and on
// the wire-bytes constructors it must stay an option error, not get
// branded ErrMalformedWire (the blob is fine; the option is not).
func TestWithBackendUnknownName(t *testing.T) {
	_, err := NewServer(Test, WithBackend("simd512"))
	if !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("got %v, want ErrUnknownBackend", err)
	}

	owner, err := NewKeyOwner(Test, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	pk, err := owner.ExportPublicKey()
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewEncryptor(pk, 3, 4, WithBackend("simd512"))
	if !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("got %v, want ErrUnknownBackend", err)
	}
	if errors.Is(err, ErrMalformedWire) {
		t.Fatalf("unknown backend on a valid blob branded as malformed wire: %v", err)
	}
}
