// seeded demonstrates the seeded-ciphertext extension through the public
// role API: the key owner ships c0 plus a 16-byte seed instead of a full
// (c0, c1) pair, and the keyless server regenerates c1 from the seed —
// the same PRNG trick ABC-FHE uses to keep masks off DRAM, applied to the
// wire. Fresh uploads use the secret key, so compressed encryption is a
// KeyOwner capability.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	abcfhe "repro"
	"repro/internal/sim"
)

func main() {
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 99, 100)
	if err != nil {
		log.Fatal(err)
	}
	server, err := abcfhe.NewServer(abcfhe.Test)
	if err != nil {
		log.Fatal(err)
	}

	msg := make([]complex128, owner.Slots())
	for i := range msg {
		msg[i] = complex(float64(i%13)/13-0.5, float64(i%17)/17-0.5)
	}

	// Key owner: seeded encryption + compressed wire form.
	compressed, err := owner.EncodeEncryptCompressed(msg)
	if err != nil {
		log.Fatal(err)
	}
	fullBytes, err := server.CiphertextWireBytes(owner.MaxLevel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wire bytes: full ciphertext %d, seeded %d (%.1f%% of full)\n",
		fullBytes, len(compressed), 100*float64(len(compressed))/float64(fullBytes))

	// Server: expand from the seed — no key material involved — then hand
	// the full ciphertext back (here: straight back to the owner to check
	// correctness).
	ct, err := server.ExpandCompressedUpload(compressed)
	if err != nil {
		log.Fatal(err)
	}
	reply, err := server.SerializeCiphertext(ct)
	if err != nil {
		log.Fatal(err)
	}
	got, err := owner.DecryptDecode(mustDeserialize(owner, reply))
	if err != nil {
		log.Fatal(err)
	}
	var worst float64
	for i := range msg {
		if e := cmplx.Abs(got[i] - msg[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("round-trip max error after expand: %.3g\n\n", worst)

	// What the halved upstream buys on the DRAM-bound accelerator.
	fmt.Println("modeled impact on ABC-FHE (DRAM-bound at 8 lanes):")
	for _, logN := range []int{14, 16} {
		c := sim.PaperConfig()
		c.LogN = logN
		s := c.SeededStudy()
		fmt.Printf("  N=2^%d: %.3f ms -> %.3f ms (%.2fx), throughput %.0f -> %.0f ct/s\n",
			logN, s.Standard.TimeMS, s.Seeded.TimeMS, s.Speedup,
			s.ThroughputStandard, s.ThroughputSeeded)
	}
}

func mustDeserialize(owner *abcfhe.KeyOwner, data []byte) *abcfhe.Ciphertext {
	ct, err := owner.DeserializeCiphertext(data)
	if err != nil {
		log.Fatal(err)
	}
	return ct
}
