package serve

import (
	"fmt"
	"os"
	"sync"
	"time"

	abcfhe "repro"
)

// Clock abstracts time for the cache's LRU ordering and the service's
// latency accounting so eviction-semantics tests can drive a fake clock
// deterministically.
type Clock func() time.Time

// loadFunc re-decodes an evaluation-key blob after its resident form was
// evicted. It is captured at registration (closing over the spec's
// Server) so a reload never needs the session layer.
type loadFunc func(blob []byte) (*abcfhe.EvaluationKeys, error)

// entry is one content-addressed evaluation-key blob. `sessions` counts
// registered sessions referencing the blob (a bookkeeping refcount that
// controls entry lifetime, NOT residency); `pins` counts in-flight
// dispatch batches holding the decoded keys. Only pins protect an entry
// from eviction — a registered-but-idle session's keys are exactly the
// resource the byte budget exists to reclaim.
type entry struct {
	hash     string
	size     int64 // wire size of the blob; what the budget is charged
	spool    string
	load     loadFunc
	keys     *abcfhe.EvaluationKeys // non-nil ⇔ resident
	pins     int
	sessions int
	dead     bool // unregistered while pinned; removed when pins hit 0
	lastUse  time.Time
	seq      uint64 // tie-break for equal fake-clock timestamps

	// loadMu serializes reload of this entry only, so a cold blob is
	// decoded once while concurrent acquirers wait — and without holding
	// the cache lock across a multi-MB decode.
	loadMu sync.Mutex
}

// CacheStats is a point-in-time snapshot for /metrics and tests.
type CacheStats struct {
	Budget           int64
	ResidentBytes    int64
	Entries          int
	ResidentEntries  int
	Hits             uint64
	Misses           uint64
	Reloads          uint64
	Evictions        uint64
	AdmissionRejects uint64
	PressureRejects  uint64
}

// KeyCache is the ref-counted LRU evaluation-key cache. Entries are
// keyed by content hash (identical blobs registered by many sessions
// share one resident copy), charged at wire size against a byte budget,
// and evicted — decoded form dropped, blob kept spooled on disk — in
// LRU order among entries with zero pins. The resident-bytes invariant
// (ResidentBytes ≤ Budget) holds at every instant: Acquire reserves
// budget before decoding, never after.
type KeyCache struct {
	mu       sync.Mutex
	budget   int64
	clock    Clock
	seq      uint64
	resident int64
	entries  map[string]*entry

	hits, misses, reloads, evictions, admission, pressure uint64
}

// NewKeyCache builds a cache with the given byte budget. clock may be
// nil (time.Now).
func NewKeyCache(budget int64, clock Clock) *KeyCache {
	if clock == nil {
		clock = time.Now
	}
	return &KeyCache{budget: budget, clock: clock, entries: make(map[string]*entry)}
}

// Budget reports the configured byte budget.
func (c *KeyCache) Budget() int64 { return c.budget }

// Admit is the admission gate: a blob whose size alone exceeds the
// budget can never be made resident, so it is rejected before the
// caller reads or decodes the payload.
func (c *KeyCache) Admit(size int64) error {
	if size <= c.budget {
		return nil
	}
	c.mu.Lock()
	c.admission++
	c.mu.Unlock()
	return fmt.Errorf("%w: %d bytes > budget %d", ErrCacheAdmission, size, c.budget)
}

// Has reports whether the blob hash is registered — the caller can skip
// decoding a blob the cache already holds.
func (c *KeyCache) Has(hash string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[hash]
	return ok && !e.dead
}

// IsResident reports whether the entry's decoded keys are in memory.
func (c *KeyCache) IsResident(hash string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[hash]
	return ok && e.keys != nil
}

// Register adds a session reference to the blob. For a first
// registration, keys (when non-nil — the decode the registration
// already paid for) become the resident copy if the budget allows;
// otherwise the entry starts cold and the first Acquire reloads it from
// spool. Re-registration of a known hash only bumps the session count.
func (c *KeyCache) Register(hash string, size int64, spool string, keys *abcfhe.EvaluationKeys, load loadFunc) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		c.admission++
		return fmt.Errorf("%w: %d bytes > budget %d", ErrCacheAdmission, size, c.budget)
	}
	if e, ok := c.entries[hash]; ok {
		e.sessions++
		e.dead = false
		return nil
	}
	e := &entry{hash: hash, size: size, spool: spool, load: load, sessions: 1}
	c.entries[hash] = e
	if keys != nil && c.makeRoom(size) {
		e.keys = keys
		c.resident += size
		c.touch(e)
	}
	return nil
}

// Unregister drops one session reference. At zero references the entry
// is removed (and its spool file deleted) — immediately when unpinned,
// or deferred to the last release when a batch is still in flight.
func (c *KeyCache) Unregister(hash string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[hash]
	if !ok {
		return
	}
	if e.sessions > 0 {
		e.sessions--
	}
	if e.sessions == 0 {
		if e.pins > 0 {
			e.dead = true
		} else {
			c.remove(e)
		}
	}
}

// Acquire pins the entry's decoded keys for the duration of a dispatch
// batch and returns them with a release func. A cold entry is reloaded
// from its spooled blob after reserving budget (evicting LRU unpinned
// entries as needed); if every resident byte is pinned, Acquire fails
// with ErrCachePressure rather than overshooting the budget.
func (c *KeyCache) Acquire(hash string) (*abcfhe.EvaluationKeys, func(), error) {
	c.mu.Lock()
	e, ok := c.entries[hash]
	if !ok || e.dead {
		c.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: key blob %.12s… not registered", ErrUnknownSession, hash)
	}
	e.pins++ // pin before any unlock so eviction/removal can't race the load
	if e.keys != nil {
		c.hits++
		c.touch(e)
		k := e.keys
		c.mu.Unlock()
		return k, c.releaseFunc(e), nil
	}
	c.misses++
	c.mu.Unlock()

	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	c.mu.Lock()
	if e.keys != nil { // a concurrent acquirer loaded it while we waited
		c.touch(e)
		k := e.keys
		c.mu.Unlock()
		return k, c.releaseFunc(e), nil
	}
	if !c.makeRoom(e.size) {
		c.pressure++
		e.pins--
		c.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: need %d bytes, all resident entries pinned", ErrCachePressure, e.size)
	}
	c.resident += e.size // reserve before decoding: the invariant never lapses
	c.mu.Unlock()

	blob, err := os.ReadFile(e.spool)
	var keys *abcfhe.EvaluationKeys
	if err == nil {
		keys, err = e.load(blob)
	}

	c.mu.Lock()
	if err != nil {
		c.resident -= e.size
		e.pins--
		if e.dead && e.pins == 0 && e.sessions == 0 {
			c.remove(e)
		}
		c.mu.Unlock()
		return nil, nil, fmt.Errorf("serve: reloading evaluation keys %.12s…: %w", hash, err)
	}
	e.keys = keys
	c.reloads++
	c.touch(e)
	c.mu.Unlock()
	return keys, c.releaseFunc(e), nil
}

func (c *KeyCache) releaseFunc(e *entry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			defer c.mu.Unlock()
			e.pins--
			c.touch(e)
			if e.dead && e.pins == 0 && e.sessions == 0 {
				c.remove(e)
			}
		})
	}
}

// remove drops an entry entirely: resident accounting, map slot, and
// the spooled blob. Caller holds c.mu.
func (c *KeyCache) remove(e *entry) {
	if e.keys != nil {
		c.resident -= e.size
		e.keys = nil
	}
	delete(c.entries, e.hash)
	if e.spool != "" {
		os.Remove(e.spool)
	}
}

// makeRoom evicts LRU unpinned resident entries until need bytes fit
// under the budget. Returns false (leaving survivors untouched beyond
// those already evicted) when pinned entries make that impossible.
// Caller holds c.mu.
func (c *KeyCache) makeRoom(need int64) bool {
	for c.resident+need > c.budget {
		var victim *entry
		for _, e := range c.entries {
			if e.keys == nil || e.pins > 0 {
				continue
			}
			if victim == nil || e.lastUse.Before(victim.lastUse) ||
				(e.lastUse.Equal(victim.lastUse) && e.seq < victim.seq) {
				victim = e
			}
		}
		if victim == nil {
			return false
		}
		victim.keys = nil
		c.resident -= victim.size
		c.evictions++
	}
	return true
}

// touch marks an entry most-recently-used. Caller holds c.mu.
func (c *KeyCache) touch(e *entry) {
	e.lastUse = c.clock()
	c.seq++
	e.seq = c.seq
}

// Stats snapshots counters and gauges.
func (c *KeyCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Budget:           c.budget,
		ResidentBytes:    c.resident,
		Entries:          len(c.entries),
		Hits:             c.hits,
		Misses:           c.misses,
		Reloads:          c.reloads,
		Evictions:        c.evictions,
		AdmissionRejects: c.admission,
		PressureRejects:  c.pressure,
	}
	for _, e := range c.entries {
		if e.keys != nil {
			s.ResidentEntries++
		}
	}
	return s
}
