package abcfhe

import (
	"fmt"

	"repro/internal/ckks"
	"repro/internal/prng"
)

// Encryptor is the fleet-of-devices role the accelerator targets: it is
// constructed from a marshaled public key only — no secret material ever
// reaches the device — and runs the outbound pipeline (IFFT encoding, RNS
// expansion, public-key RLWE encryption). The public-key blob embeds the
// parameter spec, so a device bootstraps from nothing but bytes.
//
// Each device must use its own 128-bit randomness seed: two Encryptors
// sharing a seed emit identical masks (that determinism is the point of
// the accelerator's on-chip PRNG, and what the reproducibility tests pin
// down, but distinct devices in production must seed distinctly).
//
// An Encryptor is safe for concurrent use; encryption randomness is drawn
// from a per-call atomic stream counter.
type Encryptor struct {
	party
	encoder *ckks.Encoder
	enc     *ckks.Encryptor
}

// NewEncryptor builds an encrypting device from an exported public-key
// blob (see KeyOwner.ExportPublicKey) and the device's 128-bit randomness
// seed. Options tune the execution engine; the cryptographic output never
// depends on them.
func NewEncryptor(publicKey []byte, seedLo, seedHi uint64, opts ...Option) (*Encryptor, error) {
	params, err := paramsFromKeyBlob(publicKey, ckks.KeyKindPublic, opts)
	if err != nil {
		return nil, err
	}
	pk, err := params.UnmarshalPublicKey(publicKey)
	if err != nil {
		return nil, wireErr(err)
	}
	return newEncryptor(params, pk, prng.SeedFromUint64s(seedLo, seedHi), true), nil
}

func newEncryptor(params *ckks.Parameters, pk *ckks.PublicKey, seed [16]byte, owns bool) *Encryptor {
	return &Encryptor{
		party:   party{params: params, ownsParams: owns},
		encoder: ckks.NewEncoder(params),
		enc:     ckks.NewEncryptor(params, pk, seed),
	}
}

// EncodeEncrypt runs the outbound device pipeline: IFFT encoding, RNS
// expansion, and public-key encryption at full depth. The intermediate
// plaintext's storage is recycled, so the steady-state pipeline allocates
// only the returned ciphertext.
func (e *Encryptor) EncodeEncrypt(msg []complex128) (*Ciphertext, error) {
	if err := validateMessage(e.params, msg); err != nil {
		return nil, err
	}
	pt := e.encoder.Encode(msg)
	ct := e.enc.Encrypt(pt)
	e.params.PutPlaintext(pt)
	return ct, nil
}

// EncodeEncryptBatch runs the outbound pipeline over a whole batch,
// fanning the messages out across the lane engine. PRNG stream windows
// are reserved by batch index, so the result is bit-identical to calling
// EncodeEncrypt on each message in order — at any worker count.
func (e *Encryptor) EncodeEncryptBatch(msgs [][]complex128) ([]*Ciphertext, error) {
	for i, msg := range msgs {
		if err := validateMessage(e.params, msg); err != nil {
			return nil, fmt.Errorf("message %d: %w", i, err)
		}
	}
	return e.enc.EncryptBatchFrom(len(msgs), func(i int) *Plaintext {
		return e.encoder.Encode(msgs[i])
	}), nil
}

// Encode encodes without encrypting (plaintext-side tooling).
func (e *Encryptor) Encode(msg []complex128) (*Plaintext, error) {
	if err := validateMessage(e.params, msg); err != nil {
		return nil, err
	}
	return e.encoder.Encode(msg), nil
}

// Slots, MaxLevel, Workers, Close, SerializeCiphertext,
// DeserializeCiphertext, CiphertextWireBytes and CompressedWireBytes are
// provided by the embedded party substrate (party.go).
