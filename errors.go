package abcfhe

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ckks"
)

// Typed sentinel errors for the public surface. Every misuse of the
// role-separated API (bad lengths, out-of-range levels, malformed bytes,
// unknown presets) is reported as an error wrapping one of these — test
// with errors.Is. Panics are reserved for internal invariant violations.
var (
	// ErrUnknownPreset: the preset name does not name a parameter set.
	ErrUnknownPreset = errors.New("abcfhe: unknown preset")
	// ErrMessageTooLong: a message exceeds the parameter set's Slots().
	ErrMessageTooLong = errors.New("abcfhe: message longer than slot count")
	// ErrLevelOutOfRange: a level argument is outside [1, MaxLevel()] (or
	// outside the specific range an operation supports, e.g. Rescale ≥ 2).
	ErrLevelOutOfRange = errors.New("abcfhe: level out of range")
	// ErrLevelMismatch: two operands carry different levels.
	ErrLevelMismatch = errors.New("abcfhe: ciphertext level mismatch")
	// ErrScaleMismatch: two operands carry incompatible scales.
	ErrScaleMismatch = errors.New("abcfhe: ciphertext scale mismatch")
	// ErrInvalidCiphertext: a ciphertext value is structurally broken
	// (nil components, limb count inconsistent with its level, mixed
	// NTT/coefficient domains, wrong ring degree).
	ErrInvalidCiphertext = errors.New("abcfhe: invalid ciphertext")
	// ErrBufferSize: a caller-provided output buffer has the wrong shape.
	ErrBufferSize = errors.New("abcfhe: wrong output buffer size")
	// ErrMalformedWire: bytes from the wire failed validation (bad magic,
	// truncation, corrupt residues, wrong key kind, spec mismatch, …).
	ErrMalformedWire = errors.New("abcfhe: malformed wire bytes")
	// ErrInvalidConstant: a scalar operand is not representable (NaN,
	// infinite, or too large for the fixed-point approximation).
	ErrInvalidConstant = errors.New("abcfhe: invalid constant")
	// ErrEvaluationKeyMissing: an operation needs evaluation-key material
	// the provided set does not carry — no set at all, no relinearization
	// key, an ungenerated rotation step, or a missing conjugation key.
	ErrEvaluationKeyMissing = errors.New("abcfhe: evaluation key missing")
	// ErrInvalidSpan: an inner-sum span is not a power of two within the
	// slot count.
	ErrInvalidSpan = errors.New("abcfhe: invalid slot span")
	// ErrGadgetUnsupported: an evaluation-key gadget was requested that
	// the parameter set cannot host (hybrid key switching on a set
	// without special primes, or an unknown selector).
	ErrGadgetUnsupported = errors.New("abcfhe: key-switching gadget unsupported by parameter set")
	// ErrUnknownBackend: WithBackend named an execution backend that does
	// not exist (valid names: "portable", "fast").
	ErrUnknownBackend = errors.New("abcfhe: unknown execution backend")
)

// wireErr brands a deserialization failure with ErrMalformedWire while
// keeping the underlying detail in the chain. Option misuse discovered
// during the same construction (an unknown backend name) is the caller's
// mistake, not the blob's — it passes through unbranded.
func wireErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrUnknownBackend) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrMalformedWire, err)
}

// validateMessage bounds-checks an encode input: length against the slot
// count, and every component finite. A NaN or Inf would not error inside
// the encoder — math.Frexp flushes them into garbage residues that decrypt
// to pseudo-random slots — so the rejection MulConst applies to scalar
// constants holds at every vector encode entry point too (EncodeEncrypt,
// the compressed uploads, DotPlain weights, linear-transform diagonals).
func validateMessage(p *ckks.Parameters, msg []complex128) error {
	if len(msg) > p.Slots() {
		return fmt.Errorf("%w: %d values, %d slots", ErrMessageTooLong, len(msg), p.Slots())
	}
	for i, z := range msg {
		re, im := real(z), imag(z)
		if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
			return fmt.Errorf("%w: non-finite component %v at slot %d", ErrInvalidConstant, z, i)
		}
	}
	return nil
}

// validateLevel checks a level argument against the chain depth.
func validateLevel(p *ckks.Parameters, level int) error {
	if level < 1 || level > p.MaxLevel() {
		return fmt.Errorf("%w: level %d not in [1, %d]", ErrLevelOutOfRange, level, p.MaxLevel())
	}
	return nil
}

// validateCiphertext checks the structural invariants the scheme layer
// assumes (and would otherwise panic on): component presence, level range,
// limb counts matching the level, consistent domains, matching degree.
func validateCiphertext(p *ckks.Parameters, ct *Ciphertext) error {
	if ct == nil || ct.C0 == nil || ct.C1 == nil {
		return fmt.Errorf("%w: nil ciphertext or component", ErrInvalidCiphertext)
	}
	if err := validateLevel(p, ct.Level); err != nil {
		return err
	}
	if len(ct.C0.Coeffs) != ct.Level || len(ct.C1.Coeffs) != ct.Level {
		return fmt.Errorf("%w: limb count (%d, %d) does not match level %d",
			ErrInvalidCiphertext, len(ct.C0.Coeffs), len(ct.C1.Coeffs), ct.Level)
	}
	for _, poly := range []*[][]uint64{&ct.C0.Coeffs, &ct.C1.Coeffs} {
		for _, row := range *poly {
			if len(row) != p.N() {
				return fmt.Errorf("%w: limb length %d, want N=%d", ErrInvalidCiphertext, len(row), p.N())
			}
		}
	}
	if ct.C0.IsNTT != ct.C1.IsNTT {
		return fmt.Errorf("%w: mixed NTT/coefficient domains", ErrInvalidCiphertext)
	}
	if !(ct.Scale > 0) || math.IsInf(ct.Scale, 0) {
		return fmt.Errorf("%w: invalid scale %g", ErrInvalidCiphertext, ct.Scale)
	}
	return nil
}

// validateCoeffCiphertext additionally requires the coefficient domain —
// the form every ciphertext of the public API travels and computes in
// (see Ciphertext). Decrypt would double-NTT (and panic the ring layer)
// on an NTT-domain pair, and evaluation outputs would come back
// mislabeled as coefficient-domain, laundering the bad tag past the
// decrypt check — so a flipped wire domain byte must stop at every
// public entry point: the role deserializers, the server operands, and
// the decrypt pipeline.
func validateCoeffCiphertext(p *ckks.Parameters, ct *Ciphertext) error {
	if err := validateCiphertext(p, ct); err != nil {
		return err
	}
	if ct.C0.IsNTT {
		return fmt.Errorf("%w: public-API ciphertexts travel in the coefficient domain", ErrInvalidCiphertext)
	}
	return nil
}

// deserializeCoeffCiphertext is the shared wire entry point of the role
// types: parse, then reject NTT-tagged blobs — the ckks layer supports
// the NTT domain on the wire for internal uses, but public-API
// ciphertexts travel in the coefficient domain, and accepting the tag
// here would let a flipped domain byte launder through evaluation
// (whose outputs are labeled coefficient-domain) into silent garbage.
func deserializeCoeffCiphertext(p *ckks.Parameters, data []byte) (*Ciphertext, error) {
	ct, err := p.UnmarshalCiphertext(data)
	if err != nil {
		return nil, wireErr(err)
	}
	if ct.C0.IsNTT {
		return nil, fmt.Errorf("%w: NTT-domain ciphertext on the public wire", ErrMalformedWire)
	}
	return ct, nil
}

// validateSameLevelScale checks binary-operation compatibility. The scale
// tolerance is relative to the larger operand so the check is symmetric:
// Add(a, b) and Add(b, a) must agree on whether the pair is compatible
// (an a-relative bound would accept one order and reject the other when
// one scale dwarfs the one the tolerance happened to be anchored to).
func validateSameLevelScale(a, b *Ciphertext) error {
	if a.Level != b.Level {
		return fmt.Errorf("%w: %d vs %d", ErrLevelMismatch, a.Level, b.Level)
	}
	if math.Abs(a.Scale-b.Scale) > math.Max(a.Scale, b.Scale)*1e-12 {
		return fmt.Errorf("%w: %g vs %g", ErrScaleMismatch, a.Scale, b.Scale)
	}
	return nil
}
