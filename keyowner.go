package abcfhe

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ckks"
	"repro/internal/prng"
)

// KeyOwner is the party holding decryption authority. It generates the
// keypair (deterministically from a 128-bit seed — the property the
// accelerator's on-chip PRNG exploits), decrypts and decodes server
// replies, produces seeded compressed uploads (the fresh-upload form that
// halves client→server traffic), and exports keys in the packed wire
// formats: the public key for a fleet of Encryptor devices, the secret
// key for escrow or migration to another machine.
//
// A KeyOwner is safe for concurrent use.
type KeyOwner struct {
	party
	encoder   *ckks.Encoder
	decryptor *ckks.Decryptor
	secret    *ckks.SecretKey
	public    *ckks.PublicKey
	seed      [16]byte

	seedMu sync.Mutex
	seeded *ckks.SeededEncryptor // lazily built; guarded by seedMu until published
}

// NewKeyOwner generates a fresh keypair for the preset from the 128-bit
// seed. All key material derives deterministically from the seed, and
// execution options never change the cryptographic output. The one
// deliberate exception is EncodeEncryptCompressed: its PRNG stream base
// is drawn fresh per instance, so two owners over the same keys
// (restart, migration) never reuse a stream — compressed-upload bytes
// are therefore not reproducible across instances.
func NewKeyOwner(preset Preset, seedLo, seedHi uint64, opts ...Option) (*KeyOwner, error) {
	params, err := buildParams(preset, opts)
	if err != nil {
		return nil, err
	}
	seed := prng.SeedFromUint64s(seedLo, seedHi)
	sk, pk := ckks.NewKeyGenerator(params, seed).GenKeyPair()
	return newKeyOwner(params, sk, pk, seed, true), nil
}

// NewKeyOwnerFromSecretKey rebuilds a key owner on another machine from
// nothing but an exported secret-key blob: the embedded parameter spec
// reconstructs the parameter set, the embedded owner seed regenerates the
// public key, and the imported key decrypts everything the original
// owner's fleet encrypted.
func NewKeyOwnerFromSecretKey(secretKey []byte, opts ...Option) (*KeyOwner, error) {
	params, err := paramsFromKeyBlob(secretKey, ckks.KeyKindSecret, opts)
	if err != nil {
		return nil, err
	}
	sk, seed, err := params.UnmarshalSecretKey(secretKey)
	if err != nil {
		return nil, wireErr(err)
	}
	pk := ckks.NewKeyGenerator(params, seed).GenPublicKey(sk)
	return newKeyOwner(params, sk, pk, seed, true), nil
}

func newKeyOwner(params *ckks.Parameters, sk *ckks.SecretKey, pk *ckks.PublicKey, seed [16]byte, owns bool) *KeyOwner {
	return &KeyOwner{
		party:     party{params: params, ownsParams: owns},
		encoder:   ckks.NewEncoder(params),
		decryptor: ckks.NewDecryptor(params, sk),
		secret:    sk,
		public:    pk,
		seed:      seed,
	}
}

// ExportPublicKey serializes the public key in the packed wire format.
// The blob embeds the parameter spec, so NewEncryptor needs nothing else.
func (o *KeyOwner) ExportPublicKey() ([]byte, error) {
	return o.params.MarshalPublicKey(o.public)
}

// ExportSecretKey serializes the secret key (with the owner seed) in the
// packed wire format. The blob is secret material: whoever holds it can
// decrypt and re-derive the keypair. See NewKeyOwnerFromSecretKey.
func (o *KeyOwner) ExportSecretKey() ([]byte, error) {
	return o.params.MarshalSecretKey(o.secret, o.seed)
}

// GadgetType selects the key-switching decomposition an exported
// evaluation-key set is built for.
type GadgetType int

const (
	// GadgetAuto (the default) selects hybrid key switching whenever the
	// preset carries special primes — every shipped preset does — and
	// falls back to the BV digit gadget otherwise.
	GadgetAuto GadgetType = iota
	// GadgetHybrid forces hybrid (P·Q) key switching: ⌈D/α⌉ key rows over
	// the raised modulus, linear in depth — the construction every
	// bootstrappable stack uses. Errors when the preset has no special
	// primes.
	GadgetHybrid
	// GadgetBV forces the PR 4 digit-decomposition gadget (quadratic in
	// depth). Kept for compatibility with servers that imported BV blobs.
	GadgetBV
)

// EvalKeyConfig selects what KeyOwner.ExportEvaluationKeys generates.
//
// Key size depends on the gadget: the default hybrid gadget costs
// (1 + rotations) · ⌈D/α⌉ · 2 packed polynomials of D+α limbs — linear in
// depth D — while GadgetBV is quadratic ((1 + rotations) · D² · digits ·
// 2). Either way, export keys no deeper than the circuit the server runs
// (MaxLevel) and only the rotation steps it needs (Rotations;
// InnerSumRotations builds the power-of-two ladder an inner sum or dot
// product consumes).
type EvalKeyConfig struct {
	// MaxLevel caps the depth of every key in the set; key-gated server
	// operations work on ciphertexts at level ≤ MaxLevel. 0 means full
	// depth — fine with the hybrid gadget, hundreds of MB per rotation at
	// the paper-scale presets under GadgetBV.
	//
	// Depth accounting for polynomial evaluation: Server.EvalPoly runs its
	// relinearized products down to PolyEval.KeyLevel() — the compiled
	// plan's input level minus one rescale — so MaxLevel must be at least
	// that (a compiled plan reports it; Server.EvalPolyDepth budgets it
	// ahead of compilation). An EvalMod after CoeffsToSlots needs the
	// larger of the DFT's StartLevel and the EvalMod's KeyLevel — for the
	// bootstrap-shaped chain that is simply the DFT StartLevel.
	MaxLevel int
	// Rotations lists the slot steps to generate keys for (normalized
	// cyclically, deduplicated; 0 is the identity and is skipped).
	Rotations []int
	// Conjugate additionally generates the complex-conjugation key.
	Conjugate bool
	// Gadget selects the decomposition (GadgetAuto ⇒ hybrid on every
	// shipped preset).
	Gadget GadgetType
}

// resolveGadget maps the public gadget selector onto the scheme layer's.
func resolveGadget(g GadgetType, params *ckks.Parameters) (ckks.Gadget, error) {
	switch g {
	case GadgetAuto:
		if params.SpecialLimbs > 0 {
			return ckks.GadgetHybrid, nil
		}
		return ckks.GadgetBV, nil
	case GadgetHybrid:
		if params.SpecialLimbs == 0 {
			return 0, fmt.Errorf("%w: hybrid key switching needs special primes; this parameter set has none",
				ErrGadgetUnsupported)
		}
		return ckks.GadgetHybrid, nil
	case GadgetBV:
		return ckks.GadgetBV, nil
	}
	return 0, fmt.Errorf("%w: unknown gadget selector %d", ErrGadgetUnsupported, g)
}

// ExportEvaluationKeys generates and serializes an evaluation-key set for
// a Server: the relinearization key (ct×ct multiplication) plus rotation
// keys per cfg. The keys derive deterministically from the owner seed, so
// re-export with the same config is byte-identical. The blob embeds the
// parameter spec — a server can bootstrap from it alone
// (NewServerFromEvaluationKeys).
//
// Evaluation keys do not decrypt, but they transform the owner's
// ciphertexts; ship them to the evaluating server only. The encrypting
// devices never need them (they hold just the public key), and the owner
// itself never evaluates — which is why this is an export, not a field.
func (o *KeyOwner) ExportEvaluationKeys(cfg EvalKeyConfig) ([]byte, error) {
	maxLevel := cfg.MaxLevel
	if maxLevel == 0 {
		maxLevel = o.params.MaxLevel()
	}
	if maxLevel < 1 || maxLevel > o.params.MaxLevel() {
		return nil, fmt.Errorf("%w: evaluation-key depth %d not in [1, %d]",
			ErrLevelOutOfRange, maxLevel, o.params.MaxLevel())
	}
	gadget, err := resolveGadget(cfg.Gadget, o.params)
	if err != nil {
		return nil, err
	}
	ks := ckks.NewKeyGenerator(o.params, o.seed).
		GenEvaluationKeySet(o.secret, maxLevel, cfg.Rotations, cfg.Conjugate, gadget)
	return o.params.MarshalEvaluationKeySet(ks)
}

// LinearTransformRotations returns the rotation steps (ascending, never
// 0) a BSGS linear transform over the given nonzero diagonal indices
// consumes, for a parameter set with `slots` message slots (Slots() on
// any party). n1 ≤ 0 selects the same cost-optimal block size
// Server.NewLinearTransform selects, so a key owner can derive the exact
// ladder to export from the matrix's sparsity pattern alone — without
// the matrix entries, the server's parameters, or any key material:
//
//	cfg.Rotations = append(cfg.Rotations, LinearTransformRotations(slots, idx, 0)...)
func LinearTransformRotations(slots int, diags []int, n1 int) []int {
	if n1 <= 0 {
		n1 = ckks.OptimalN1(slots, diags)
	}
	babies, giants := ckks.BSGSSteps(slots, diags, n1)
	set := map[int]bool{}
	for _, s := range babies {
		set[s] = true
	}
	for _, s := range giants {
		set[s] = true
	}
	delete(set, 0)
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// HomomorphicDFTRotations returns the rotation steps a homomorphic DFT
// pipeline (Server.NewHomomorphicDFT with the same `levels`) consumes,
// derived from the stage geometry alone. Export these plus
// Conjugate: true (CoeffsToSlots' real/imaginary split conjugates):
//
//	blob, err := owner.ExportEvaluationKeys(EvalKeyConfig{
//	    Rotations: HomomorphicDFTRotations(owner.Slots(), levels),
//	    Conjugate: true,
//	})
func HomomorphicDFTRotations(slots, levels int) []int {
	return ckks.HomomorphicDFTRotations(slots, levels)
}

// DecryptDecode runs the inbound pipeline: decryption at the ciphertext's
// level, allocation-free CRT combination and FFT decoding.
func (o *KeyOwner) DecryptDecode(ct *Ciphertext) ([]complex128, error) {
	return o.DecryptDecodeInto(ct, make([]complex128, o.params.Slots()))
}

// DecryptDecodeInto is DecryptDecode writing into a caller-provided slot
// buffer of length Slots() (returned for chaining). With a reused buffer
// the steady-state inbound pipeline allocates only transient bookkeeping.
func (o *KeyOwner) DecryptDecodeInto(ct *Ciphertext, out []complex128) ([]complex128, error) {
	if err := validateCoeffCiphertext(o.params, ct); err != nil {
		return nil, err
	}
	if len(out) != o.params.Slots() {
		return nil, fmt.Errorf("%w: %d slots, want %d", ErrBufferSize, len(out), o.params.Slots())
	}
	pt := o.decryptor.Decrypt(ct)
	o.encoder.DecodeInto(pt, out)
	o.params.PutPlaintext(pt)
	return out, nil
}

// DecryptDecodeBatch runs the inbound pipeline over a whole batch in
// parallel (the decryptor is stateless, so messages are independent).
func (o *KeyOwner) DecryptDecodeBatch(cts []*Ciphertext) ([][]complex128, error) {
	return o.DecryptDecodeBatchInto(cts, make([][]complex128, len(cts)))
}

// DecryptDecodeBatchInto is DecryptDecodeBatch writing into
// caller-provided slot buffers: out must have len(cts) entries; nil
// entries are allocated, non-nil entries (length Slots()) are reused in
// place. Whole messages fan out across the lane engine; results are
// bit-identical to sequential DecryptDecode calls at any worker count.
func (o *KeyOwner) DecryptDecodeBatchInto(cts []*Ciphertext, out [][]complex128) ([][]complex128, error) {
	if len(out) != len(cts) {
		return nil, fmt.Errorf("%w: %d buffers for %d ciphertexts", ErrBufferSize, len(out), len(cts))
	}
	for i, ct := range cts {
		if err := validateCoeffCiphertext(o.params, ct); err != nil {
			return nil, fmt.Errorf("ciphertext %d: %w", i, err)
		}
		if out[i] != nil && len(out[i]) != o.params.Slots() {
			return nil, fmt.Errorf("%w: buffer %d has %d slots, want %d", ErrBufferSize, i, len(out[i]), o.params.Slots())
		}
	}
	o.params.Ring().Engine().Run(len(cts), func(i int) {
		if out[i] == nil {
			out[i] = make([]complex128, o.params.Slots())
		}
		pt := o.decryptor.Decrypt(cts[i])
		o.encoder.DecodeInto(pt, out[i])
		o.params.PutPlaintext(pt)
	})
	return out, nil
}

// EncodeEncryptCompressed runs the seeded upload path: encode, encrypt
// with a PRNG-derived mask, and serialize only (c0, 16-byte seed) — about
// half the bytes of a full ciphertext. Seeded encryption uses the secret
// key, so fresh uploads are a KeyOwner capability (fleet devices use the
// public-key Encryptor instead).
func (o *KeyOwner) EncodeEncryptCompressed(msg []complex128) ([]byte, error) {
	if err := validateMessage(o.params, msg); err != nil {
		return nil, err
	}
	se, err := o.seededEncryptor()
	if err != nil {
		return nil, err
	}
	pt := o.encoder.Encode(msg)
	sct := se.Encrypt(pt)
	o.params.PutPlaintext(pt)
	return o.params.MarshalSeeded(sct)
}

// seededEncryptor lazily builds the seeded encryptor. The owner seed is
// pinned by the key material, but the stream counter restarts at 0 in
// every process — so two KeyOwner instances over the same keys (restart,
// migration via NewKeyOwnerFromSecretKey) would reuse (seed, stream)
// pairs and leak plaintext differences. A fresh random 62-bit stream
// base per instance keeps every upload's PRNG window disjoint (the
// stream coordinate is carried in the wire form, so servers expand as
// usual); the mask/error seeds themselves are one-way derived from the
// owner seed inside the ckks constructor, so the wire never carries key-
// derivation material. A transient entropy failure is retried on the
// next call rather than permanently disabling the path.
func (o *KeyOwner) seededEncryptor() (*ckks.SeededEncryptor, error) {
	o.seedMu.Lock()
	defer o.seedMu.Unlock()
	if o.seeded == nil {
		var buf [8]byte
		if _, err := rand.Read(buf[:]); err != nil {
			return nil, fmt.Errorf("abcfhe: seeding upload stream base: %w", err)
		}
		base := binary.LittleEndian.Uint64(buf[:])
		o.seeded = ckks.NewSeededEncryptorAt(o.params, o.secret, o.seed, base)
	}
	return o.seeded, nil
}

// Slots, MaxLevel, Workers, Close, SerializeCiphertext,
// DeserializeCiphertext, CiphertextWireBytes and CompressedWireBytes are
// provided by the embedded party substrate (party.go).
