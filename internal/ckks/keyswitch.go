package ckks

import (
	"repro/internal/prng"
	"repro/internal/ring"
)

// Key switching via gadget (digit) decomposition — the server-side
// machinery that makes ciphertext-ciphertext multiplication and slot
// rotations possible. ABC-FHE itself never executes these (it is a client
// accelerator), but a library a downstream user adopts needs the server
// side of the protocol to exist; this is the "extension" scope DESIGN.md
// lists.
//
// Construction (BV-style, no special modulus): to switch a polynomial c
// from key f to key s, write c in the combined CRT × base-2^w gadget
//
//	c = Σ_{i<L} Σ_{t<T} d_{i,t} · (2^{wt} · u_i)   with  d_{i,t} < 2^w,
//
// where u_i is the CRT basis element (u_i ≡ 1 mod q_i, ≡ 0 mod q_j). The
// switching key encrypts each gadget element times f:
//
//	ksk_{i,t} = (-a·s + e + 2^{wt}·u_i·f,  a)
//
// and Apply computes (Σ d_{i,t}·ksk0, Σ d_{i,t}·ksk1). Noise grows by
// ≈ 2^w·sqrt(L·T·N)·σ — kept below the scale by choosing w; production
// systems use a raised modulus instead (documented trade-off).

// DecompLogBase is the gadget digit width (w). 8 keeps switching noise
// ≈2^15 at the test parameters — comfortably below every scale in use
// (production RNS-CKKS uses a raised special modulus instead; the digit
// gadget trades key size for implementation simplicity).
const DecompLogBase = 8

// SwitchingKey holds the gadget encryptions for one target polynomial.
type SwitchingKey struct {
	// K0[i][t], K1[i][t]: the two halves of ksk_{i,t}, NTT domain, full depth.
	K0, K1 [][]*ring.Poly
	Digits int
}

// digitsPerLimb is ceil(LimbBits / DecompLogBase).
func (p *Parameters) digitsPerLimb() int {
	return (p.LimbBits + DecompLogBase - 1) / DecompLogBase
}

// GenSwitchingKey builds the key that moves ciphertext mass from key f to
// the generator's secret s. f must be in the NTT domain at full depth.
func (kg *KeyGenerator) GenSwitchingKey(sk *SecretKey, f *ring.Poly, streamBase uint64) *SwitchingKey {
	p := kg.params
	r := p.Ring()
	T := p.digitsPerLimb()
	L := p.MaxLevel()

	ksk := &SwitchingKey{Digits: T}
	ksk.K0 = make([][]*ring.Poly, L)
	ksk.K1 = make([][]*ring.Poly, L)

	stream := streamBase
	for i := 0; i < L; i++ {
		ksk.K0[i] = make([]*ring.Poly, T)
		ksk.K1[i] = make([]*ring.Poly, T)
		for t := 0; t < T; t++ {
			stream += 2
			a := r.NewPoly()
			r.UniformPoly(prng.NewSource(kg.seed, stream), a)
			a.IsNTT = true

			e := r.NewPoly()
			r.GaussianPoly(prng.NewSource(kg.seed, stream+1), e)
			r.NTT(e)

			b := r.NewPoly()
			r.MulCoeffs(a, sk.S, b)
			r.Neg(b, b)
			r.Add(b, e, b)

			// + 2^{wt}·u_i·f : u_i is 1 on limb i and 0 elsewhere, so the
			// gadget term only touches limb i.
			shift := uint64(1) << uint(DecompLogBase*t)
			m := r.Basis.Moduli[i]
			fi := f.Coeffs[i]
			bi := b.Coeffs[i]
			sc := shift % m.Q
			for j := range bi {
				bi[j] = m.Add(bi[j], m.Mul(fi[j], sc))
			}
			ksk.K0[i][t] = b
			ksk.K1[i][t] = a
		}
	}
	return ksk
}

// decomposeDigitInto extracts digit t of c's limb i (coefficient domain),
// expanded across all of out's limbs as a small non-negative poly. out is
// fully overwritten (so a pooled poly can be reused across digits); the
// per-limb expansion fans out across the lanes.
func decomposeDigitInto(rl *ring.Ring, c *ring.Poly, i, t int, out *ring.Poly) {
	shift := uint(DecompLogBase * t)
	mask := uint64(1)<<DecompLogBase - 1
	src := c.Coeffs[i]
	rl.Engine().Run(out.Level(), func(k int) {
		q := rl.Basis.Moduli[k].Q
		ok := out.Coeffs[k]
		for j, v := range src {
			ok[j] = ((v >> shift) & mask) % q
		}
	})
	out.IsNTT = false
}

// applySwitch computes the key-switch of polynomial c (coefficient
// domain, `level` limbs): returns (d0, d1) in the NTT domain such that
// d0 + d1·s ≈ c·f.
func (p *Parameters) applySwitch(c *ring.Poly, level int, ksk *SwitchingKey) (d0, d1 *ring.Poly) {
	rl := p.RingAt(level)
	d0 = rl.GetPoly()
	d1 = rl.GetPoly()
	d0.IsNTT = true
	d1.IsNTT = true

	tmp := rl.GetPolyUninit() // MulCoeffs fully overwrites
	dig := rl.GetPolyUninit() // decomposeDigitInto fully overwrites
	for i := 0; i < level; i++ {
		for t := 0; t < ksk.Digits; t++ {
			decomposeDigitInto(rl, c, i, t, dig)
			rl.NTT(dig)
			k0 := &ring.Poly{Coeffs: ksk.K0[i][t].Coeffs[:level], IsNTT: true}
			k1 := &ring.Poly{Coeffs: ksk.K1[i][t].Coeffs[:level], IsNTT: true}
			rl.MulCoeffs(dig, k0, tmp)
			rl.Add(d0, tmp, d0)
			rl.MulCoeffs(dig, k1, tmp)
			rl.Add(d1, tmp, d1)
		}
	}
	rl.PutPoly(tmp)
	rl.PutPoly(dig)
	return d0, d1
}

// ---------------------------------------------------------------------
// Relinearization
// ---------------------------------------------------------------------

// RelinearizationKey switches s² mass back to s.
type RelinearizationKey struct{ K *SwitchingKey }

// GenRelinearizationKey derives the relinearization key.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *RelinearizationKey {
	r := kg.params.Ring()
	s2 := r.NewPoly()
	r.MulCoeffs(sk.S, sk.S, s2)
	return &RelinearizationKey{K: kg.GenSwitchingKey(sk, s2, 1<<50)}
}

// MulRelin multiplies two ciphertexts and relinearizes the degree-2 term:
// (a0,a1)·(b0,b1) → (a0b0 + ks0, a0b1 + a1b0 + ks1) where (ks0, ks1) is
// the switched a1b1. The result's scale is the product of scales; rescale
// afterwards.
func (ev *Evaluator) MulRelin(a, b *Ciphertext, rlk *RelinearizationKey) *Ciphertext {
	sameLevelScale(a, b)
	level := a.Level
	rl := ev.ringAt(level)

	a0 := rl.GetPolyCopy(a.C0)
	a1 := rl.GetPolyCopy(a.C1)
	b0 := rl.GetPolyCopy(b.C0)
	b1 := rl.GetPolyCopy(b.C1)
	rl.NTT(a0)
	rl.NTT(a1)
	rl.NTT(b0)
	rl.NTT(b1)

	c0 := rl.NewPoly()
	c1 := rl.NewPoly()
	c2 := rl.GetPoly()
	rl.MulCoeffs(a0, b0, c0) // a0·b0
	rl.MulCoeffs(a0, b1, c1) // a0·b1 + a1·b0
	tmp := rl.GetPoly()
	rl.MulCoeffs(a1, b0, tmp)
	rl.Add(c1, tmp, c1)
	rl.MulCoeffs(a1, b1, c2) // the degree-2 term
	rl.PutPoly(tmp)
	rl.PutPoly(a0)
	rl.PutPoly(a1)
	rl.PutPoly(b0)
	rl.PutPoly(b1)

	// Key-switch c2 (needs the coefficient domain for digit extraction).
	rl.INTT(c2)
	d0, d1 := ev.params.applySwitch(c2, level, rlk.K)
	rl.PutPoly(c2)
	rl.Add(c0, d0, c0)
	rl.Add(c1, d1, c1)
	rl.PutPoly(d0)
	rl.PutPoly(d1)

	rl.INTT(c0)
	rl.INTT(c1)
	return &Ciphertext{C0: c0, C1: c1, Level: level, Scale: a.Scale * b.Scale}
}

// ---------------------------------------------------------------------
// Rotations (Galois automorphisms)
// ---------------------------------------------------------------------

// automorphism applies X → X^g to a coefficient-domain polynomial:
// coefficient j lands at (g·j mod 2N), negated when the index wraps past
// N (X^N = -1).
func automorphism(rl *ring.Ring, p *ring.Poly, g int) *ring.Poly {
	if p.IsNTT {
		panic("ckks: automorphism expects coefficient domain")
	}
	n := rl.N
	out := rl.NewPoly()
	for j := 0; j < n; j++ {
		idx := (g * j) % (2 * n)
		neg := false
		if idx >= n {
			idx -= n
			neg = true
		}
		for i := range p.Coeffs {
			v := p.Coeffs[i][j]
			if neg {
				v = rl.Basis.Moduli[i].Neg(v)
			}
			out.Coeffs[i][idx] = v
		}
	}
	return out
}

// GaloisElement returns the automorphism generator for a rotation by k
// slots: 5^k mod 2N (k may be negative).
func (p *Parameters) GaloisElement(k int) int {
	m := 2 * p.N()
	// order of 5 in (Z/2N)* is N/2; normalize k into [0, N/2).
	half := p.N() / 2
	k = ((k % half) + half) % half
	g := 1
	for i := 0; i < k; i++ {
		g = g * 5 % m
	}
	return g
}

// GaloisElementConjugate is the generator of complex conjugation: -1 mod 2N.
func (p *Parameters) GaloisElementConjugate() int { return 2*p.N() - 1 }

// RotationKey enables rotation by one fixed Galois element.
type RotationKey struct {
	G int
	K *SwitchingKey
}

// GenRotationKey derives the key for Galois element g: it switches
// s(X^g) mass back to s.
func (kg *KeyGenerator) GenRotationKey(sk *SecretKey, g int) *RotationKey {
	r := kg.params.Ring()
	sCoeff := r.CopyPoly(sk.S)
	r.INTT(sCoeff)
	sg := automorphism(r, sCoeff, g)
	r.NTT(sg)
	return &RotationKey{G: g, K: kg.GenSwitchingKey(sk, sg, 1<<51+uint64(g)<<20)}
}

// RotateGalois applies the automorphism X → X^g and key-switches back to
// s. With g = GaloisElement(k) this rotates the message slots by k.
func (ev *Evaluator) RotateGalois(ct *Ciphertext, rk *RotationKey) *Ciphertext {
	level := ct.Level
	rl := ev.ringAt(level)

	c0g := automorphism(rl, ct.C0, rk.G)
	c1g := automorphism(rl, ct.C1, rk.G)

	d0, d1 := ev.params.applySwitch(c1g, level, rk.K)
	rl.NTT(c0g)
	rl.Add(c0g, d0, c0g)
	rl.INTT(c0g)
	rl.INTT(d1)
	rl.PutPoly(d0)

	return &Ciphertext{C0: c0g, C1: d1, Level: level, Scale: ct.Scale}
}
