package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// histBounds are the latency histogram's bucket upper bounds in seconds
// (log-spaced 100µs … 10s; +Inf is implicit). FHE op latencies on CPU
// span ~ms (Test preset rotate) to ~s (PN15 linear transforms), so the
// range covers both with ~2.5× resolution.
var histBounds = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type histogram struct {
	count   uint64
	sum     float64 // seconds
	buckets [len(histBounds)]uint64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	h.count++
	h.sum += s
	for i, b := range histBounds {
		if s <= b {
			h.buckets[i]++
		}
	}
}

type opMetrics struct {
	ok   uint64
	errs uint64
	hist histogram // enqueue→response, errors included (they queued too)
}

// metrics is the service's instrument panel: per-op counters and
// latency histograms, batching and backpressure counters, and byte
// traffic. Cache counters live in KeyCache; gauges (queue depth,
// sessions) are sampled at scrape time by the service.
type metrics struct {
	mu              sync.Mutex
	ops             map[string]*opMetrics
	throttled       uint64
	batches         uint64
	batchedRequests uint64
	sessionsOpened  uint64
	sessionsClosed  uint64
	bytesIn         uint64
	bytesOut        uint64
}

func newMetrics() *metrics {
	return &metrics{ops: make(map[string]*opMetrics)}
}

func (m *metrics) observe(op string, d time.Duration, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	om := m.ops[op]
	if om == nil {
		om = &opMetrics{}
		m.ops[op] = om
	}
	if err != nil {
		om.errs++
	} else {
		om.ok++
	}
	om.hist.observe(d)
}

func (m *metrics) throttle() {
	m.mu.Lock()
	m.throttled++
	m.mu.Unlock()
}

func (m *metrics) batch(n int) {
	m.mu.Lock()
	m.batches++
	m.batchedRequests += uint64(n)
	m.mu.Unlock()
}

func (m *metrics) addTraffic(in, out int) {
	m.mu.Lock()
	m.bytesIn += uint64(in)
	m.bytesOut += uint64(out)
	m.mu.Unlock()
}

func (m *metrics) sessionOpened() {
	m.mu.Lock()
	m.sessionsOpened++
	m.mu.Unlock()
}

func (m *metrics) sessionClosed() {
	m.mu.Lock()
	m.sessionsClosed++
	m.mu.Unlock()
}

// gauges are scrape-time samples the service computes outside metrics.
type gauges struct {
	inflight   int64
	queueDepth int64
	sessions   int
	specs      int
}

// writeTo renders the Prometheus-style text exposition. Ops are sorted
// so output is deterministic (tests grep it; diffs stay readable).
func (m *metrics) writeTo(w io.Writer, cs CacheStats, g gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	names := make([]string, 0, len(m.ops))
	for name := range m.ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		om := m.ops[name]
		fmt.Fprintf(w, "abcfhe_serve_op_requests_total{op=%q,outcome=\"ok\"} %d\n", name, om.ok)
		fmt.Fprintf(w, "abcfhe_serve_op_requests_total{op=%q,outcome=\"error\"} %d\n", name, om.errs)
		// observe already fills buckets cumulatively (every bound ≥ the
		// sample is bumped), so these print as-is.
		for i, b := range histBounds {
			fmt.Fprintf(w, "abcfhe_serve_op_latency_seconds_bucket{op=%q,le=\"%g\"} %d\n", name, b, om.hist.buckets[i])
		}
		fmt.Fprintf(w, "abcfhe_serve_op_latency_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", name, om.hist.count)
		fmt.Fprintf(w, "abcfhe_serve_op_latency_seconds_sum{op=%q} %g\n", name, om.hist.sum)
		fmt.Fprintf(w, "abcfhe_serve_op_latency_seconds_count{op=%q} %d\n", name, om.hist.count)
	}

	fmt.Fprintf(w, "abcfhe_serve_throttled_total %d\n", m.throttled)
	fmt.Fprintf(w, "abcfhe_serve_batches_total %d\n", m.batches)
	fmt.Fprintf(w, "abcfhe_serve_batched_requests_total %d\n", m.batchedRequests)
	fmt.Fprintf(w, "abcfhe_serve_sessions_opened_total %d\n", m.sessionsOpened)
	fmt.Fprintf(w, "abcfhe_serve_sessions_closed_total %d\n", m.sessionsClosed)
	fmt.Fprintf(w, "abcfhe_serve_request_bytes_total %d\n", m.bytesIn)
	fmt.Fprintf(w, "abcfhe_serve_response_bytes_total %d\n", m.bytesOut)

	fmt.Fprintf(w, "abcfhe_serve_inflight %d\n", g.inflight)
	fmt.Fprintf(w, "abcfhe_serve_queue_depth %d\n", g.queueDepth)
	fmt.Fprintf(w, "abcfhe_serve_sessions %d\n", g.sessions)
	fmt.Fprintf(w, "abcfhe_serve_param_sets %d\n", g.specs)

	fmt.Fprintf(w, "abcfhe_serve_cache_budget_bytes %d\n", cs.Budget)
	fmt.Fprintf(w, "abcfhe_serve_cache_resident_bytes %d\n", cs.ResidentBytes)
	fmt.Fprintf(w, "abcfhe_serve_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "abcfhe_serve_cache_resident_entries %d\n", cs.ResidentEntries)
	fmt.Fprintf(w, "abcfhe_serve_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "abcfhe_serve_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "abcfhe_serve_cache_reloads_total %d\n", cs.Reloads)
	fmt.Fprintf(w, "abcfhe_serve_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "abcfhe_serve_cache_admission_rejects_total %d\n", cs.AdmissionRejects)
	fmt.Fprintf(w, "abcfhe_serve_cache_pressure_rejects_total %d\n", cs.PressureRejects)
}
