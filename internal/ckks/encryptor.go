package ckks

import (
	"sync/atomic"

	"repro/internal/fftfp"
	"repro/internal/prng"
	"repro/internal/ring"
)

// fftfpComplex aliases the reduced-precision complex type used by the
// encoder's transform stage.
type fftfpComplex = fftfp.Complex

// Ciphertext is an RLWE pair (c0, c1) at some level with a scale.
// Ciphertexts travel in the coefficient domain — the form the ABC-FHE
// streaming pipeline emits to DRAM and the op-count analysis of paper
// Fig. 2 assumes (decryption then pays one NTT on c1 and one INTT back).
type Ciphertext struct {
	C0, C1 *ring.Poly
	Level  int
	Scale  float64
}

// CopyCiphertext returns a deep copy.
func (p *Parameters) CopyCiphertext(ct *Ciphertext) *Ciphertext {
	rl := p.RingAt(ct.Level)
	return &Ciphertext{
		C0:    rl.CopyPoly(ct.C0),
		C1:    rl.CopyPoly(ct.C1),
		Level: ct.Level,
		Scale: ct.Scale,
	}
}

// Encryptor performs public-key RLWE encryption. Encryption randomness is
// drawn from a seeded PRNG with a per-call stream counter, mirroring the
// accelerator's on-chip generation of masks and errors. The counter is
// atomic, so one Encryptor can serve many goroutines; each call owns a
// disjoint stream window.
type Encryptor struct {
	params *Parameters
	pk     *PublicKey
	seed   [16]byte
	calls  atomic.Uint64
}

// NewEncryptor builds an encryptor around pk using seed for randomness.
func NewEncryptor(params *Parameters, pk *PublicKey, seed [16]byte) *Encryptor {
	return &Encryptor{params: params, pk: pk, seed: seed}
}

// Encrypt produces a fresh encryption of pt at pt's level:
//
//	c0 = pk0·u + e0 + m,   c1 = pk1·u + e1
//
// with u ternary and e0, e1 Gaussian. The products run in the NTT domain;
// the result is returned in the coefficient domain (see Ciphertext).
// Per-limb transform count: 1 NTT (u) + 2 INTT (the two products) — the
// 3L transforms/L-limb encryption that internal/sched's operation model
// charges.
func (enc *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	return enc.encryptCall(pt, enc.calls.Add(1))
}

// EncryptBatchFrom encrypts the n plaintexts produced by gen (called
// concurrently, once per index), fanning whole messages out across the
// lane engine and recycling each plaintext as soon as it is consumed —
// so only in-flight messages hold pooled memory. Stream windows are
// reserved up front and assigned by index, so the output is bit-identical
// to encrypting the batch serially — at any worker count.
func (enc *Encryptor) EncryptBatchFrom(n int, gen func(i int) *Plaintext) []*Ciphertext {
	base := enc.calls.Add(uint64(n)) - uint64(n)
	out := make([]*Ciphertext, n)
	enc.params.Ring().Engine().Run(n, func(i int) {
		pt := gen(i)
		out[i] = enc.encryptCall(pt, base+uint64(i)+1)
		enc.params.PutPlaintext(pt)
	})
	return out
}

// encryptCall is Encrypt with an explicit call number (the PRNG stream
// window owner). Scratch comes from the (N, limbs) pool; only the
// returned pair is freshly owned by the caller.
func (enc *Encryptor) encryptCall(pt *Plaintext, call uint64) *Ciphertext {
	p := enc.params
	level := pt.Level
	rl := p.RingAt(level)
	base := streamEncMask + 16*call

	u := rl.GetPolyUninit() // sampler fully overwrites
	rl.TernaryPoly(prng.NewSource(enc.seed, base), u)
	rl.NTT(u)

	// pk at this level: limb-prefix views of the full-depth key.
	pk0 := &ring.Poly{Coeffs: enc.pk.P0.Coeffs[:level], IsNTT: true}
	pk1 := &ring.Poly{Coeffs: enc.pk.P1.Coeffs[:level], IsNTT: true}

	c0 := rl.GetPolyUninit() // MulCoeffs fully overwrites
	c1 := rl.GetPolyUninit()
	rl.MulCoeffs(pk0, u, c0)
	rl.MulCoeffs(pk1, u, c1)
	rl.INTT(c0)
	rl.INTT(c1)
	rl.PutPoly(u)

	e0 := rl.GetPolyUninit() // sampler fully overwrites
	e1 := rl.GetPolyUninit()
	rl.GaussianPoly(prng.NewSource(enc.seed, base+1), e0)
	rl.GaussianPoly(prng.NewSource(enc.seed, base+2), e1)
	rl.Add(c0, e0, c0)
	rl.Add(c1, e1, c1)
	rl.PutPoly(e0)
	rl.PutPoly(e1)

	if pt.Value.IsNTT {
		panic("ckks: plaintext must be in coefficient domain")
	}
	rl.Add(c0, pt.Value, c0)

	return &Ciphertext{C0: c0, C1: c1, Level: level, Scale: pt.Scale}
}

// Decryptor recovers plaintexts with the secret key. It holds no mutable
// state, so it is safe for concurrent use.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor builds a decryptor around sk.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// Decrypt computes m' = c0 + c1·s at the ciphertext's level, returning a
// coefficient-domain plaintext. Per-limb transforms: NTT(c1) then INTT of
// the sum — the 2L transforms/L-limb decryption of the operation model.
func (dec *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	p := dec.params
	rl := p.RingAt(ct.Level)

	c1 := rl.GetPolyCopy(ct.C1)
	rl.NTT(c1)
	sk := &ring.Poly{Coeffs: dec.sk.S.Coeffs[:ct.Level], IsNTT: true}
	rl.MulCoeffs(c1, sk, c1)
	rl.INTT(c1)

	out := rl.GetPolyUninit() // Add fully overwrites
	rl.Add(ct.C0, c1, out)
	rl.PutPoly(c1)

	return &Plaintext{Value: out, Level: ct.Level, Scale: ct.Scale}
}
