package ckks

// Wire hardening: the unmarshalers face untrusted bytes (ciphertexts from
// the network, key blobs from disk), so they must return errors — never
// panic, and never allocate proportionally to attacker-claimed sizes
// (payload lengths are validated against the parameter set before any
// polynomial is allocated). The fuzz targets below drive truncated,
// corrupted and bit-flipped inputs through every parser; the Go fuzz
// harness fails on any panic.

import (
	"bytes"
	"testing"
)

// fuzzSeedCorpus returns valid wire blobs of every kind plus adversarial
// variants (truncations, bit flips) as a starting corpus.
func fuzzSeedCorpus(t testing.TB) [][]byte {
	t.Helper()
	p := testParams
	seed := testSeed()
	kg := NewKeyGenerator(p, seed)
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	ct := NewEncryptor(p, pk, seed).Encrypt(enc.Encode(randMsg(p, 8, 41)))
	sct := NewSeededEncryptor(p, sk, seed).Encrypt(enc.Encode(randMsg(p, 8, 42)))

	word, _ := p.MarshalCiphertext(ct, false)
	packed, _ := p.MarshalCiphertext(ct, true)
	seeded, _ := p.MarshalSeeded(sct)
	pkData, _ := p.MarshalPublicKey(pk)
	skData, _ := p.MarshalSecretKey(sk, seed)
	evkData, _ := p.MarshalEvaluationKeySet(kg.GenEvaluationKeySet(sk, 2, []int{1}, true, GadgetBV))
	evkHybrid, _ := p.MarshalEvaluationKeySet(kg.GenEvaluationKeySet(sk, 2, []int{1}, true, GadgetHybrid))

	corpus := [][]byte{nil, []byte("ABCF"), word, packed, seeded, pkData, skData, evkData, evkHybrid}
	for _, d := range [][]byte{packed, pkData, evkData, evkHybrid} {
		corpus = append(corpus, d[:len(d)/2])
		flipped := append([]byte(nil), d...)
		flipped[len(flipped)/3] ^= 0x40
		corpus = append(corpus, flipped)
	}
	return corpus
}

// fuzzParse runs data through every untrusted-bytes entry point. Successful
// parses must re-marshal canonically (marshal∘unmarshal is the identity on
// valid blobs).
func fuzzParse(t *testing.T, data []byte) {
	p := testParams
	if ct, err := p.UnmarshalCiphertext(data); err == nil {
		packed := data[5] == encPacked
		again, err := p.MarshalCiphertext(ct, packed)
		if err != nil {
			t.Fatalf("accepted ciphertext does not re-marshal: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatal("ciphertext re-marshal not canonical")
		}
	}
	if sct, err := p.UnmarshalSeeded(data); err == nil {
		if _, err := p.MarshalSeeded(sct); err != nil {
			t.Fatalf("accepted seeded ciphertext does not re-marshal: %v", err)
		}
	}
	if pk, err := p.UnmarshalPublicKey(data); err == nil {
		again, err := p.MarshalPublicKey(pk)
		if err != nil {
			t.Fatalf("accepted public key does not re-marshal: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatal("public key re-marshal not canonical")
		}
	}
	if sk, seed, err := p.UnmarshalSecretKey(data); err == nil {
		again, err := p.MarshalSecretKey(sk, seed)
		if err != nil {
			t.Fatalf("accepted secret key does not re-marshal: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatal("secret key re-marshal not canonical")
		}
	}
	if ks, err := p.UnmarshalEvaluationKeySet(data); err == nil {
		again, err := p.MarshalEvaluationKeySet(ks)
		if err != nil {
			t.Fatalf("accepted evaluation keys do not re-marshal: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatal("evaluation-key re-marshal not canonical")
		}
	}
	_, _, _ = ReadKeySpec(data)
	_, _, _ = ReadEvalKeyInfo(data)
}

func FuzzUnmarshalCiphertext(f *testing.F) {
	for _, d := range fuzzSeedCorpus(f) {
		f.Add(d)
	}
	f.Fuzz(fuzzParse)
}

// FuzzUnmarshalEvaluationKeys targets the evaluation-key parser: the
// largest and most structured of the key formats (sub-header geometry,
// rotation-step table, per-key payload). Accepted blobs must re-marshal
// canonically (checked inside fuzzParse).
func FuzzUnmarshalEvaluationKeys(f *testing.F) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk := kg.GenSecretKey()
	// Both gadgets: the sub-header geometry (and the payload shape it
	// implies) differs, so each needs its own corpus entries.
	for _, gadget := range []Gadget{GadgetBV, GadgetHybrid} {
		evk, _ := p.MarshalEvaluationKeySet(kg.GenEvaluationKeySet(sk, 2, []int{1, 3}, true, gadget))
		f.Add(evk)
		// Reach every sub-header branch: bit-flip the key header, the eval
		// sub-header and the rotation-step table byte by byte.
		for i := 0; i < evalHeaderLen(2) && i < len(evk); i++ {
			d := append([]byte(nil), evk...)
			d[i] ^= 1 << uint(i%8)
			f.Add(d)
		}
	}
	f.Fuzz(fuzzParse)
}

func FuzzUnmarshalPublicKey(f *testing.F) {
	p := testParams
	_, pk := NewKeyGenerator(p, testSeed()).GenKeyPair()
	pkData, _ := p.MarshalPublicKey(pk)
	f.Add(pkData)
	// Bit-flip every header byte once so the corpus reaches each branch.
	for i := 0; i < keyHeaderLen(); i++ {
		d := append([]byte(nil), pkData...)
		d[i] ^= 1 << uint(i%8)
		f.Add(d)
	}
	f.Fuzz(fuzzParse)
}

// TestWireParsersNeverPanic replays the seed corpus (and systematic
// single-byte corruptions of it) through the parsers under `go test` — the
// deterministic slice of the fuzz targets that runs on every CI push.
func TestWireParsersNeverPanic(t *testing.T) {
	for _, d := range fuzzSeedCorpus(t) {
		fuzzParse(t, d)
		if len(d) == 0 {
			continue
		}
		stride := len(d)/64 + 1
		for i := 0; i < len(d); i += stride {
			m := append([]byte(nil), d...)
			m[i] ^= 0xA5
			fuzzParse(t, m)
		}
		for _, cut := range []int{1, len(d) / 2, len(d) - 1} {
			if cut < len(d) {
				fuzzParse(t, d[:cut])
			}
		}
	}
}
