package abcfhe

import (
	"fmt"
	"math"

	"repro/internal/ckks"
)

// Server is the keyless evaluation party: it expands compressed uploads
// (regenerating c1 from the embedded 16-byte seed) and performs public
// homomorphic operations. It never touches decryption-capable key
// material; everything it needs arrives as bytes — ciphertexts, and (for
// the ct×ct and rotation surface) an evaluation-key blob the KeyOwner
// exported with ExportEvaluationKeys.
//
// Two tiers of operations exist:
//
//   - Key-free: Add, Sub, Negate, MulConst, Rescale, DropLevel.
//   - Key-gated: Mul (ct×ct with relinearization), Rotate / RotateMany /
//     Conjugate (Galois automorphisms), InnerSum and DotPlain — each takes
//     an *EvaluationKeys imported from the owner's blob, and returns
//     ErrEvaluationKeyMissing when the set lacks the needed key.
//
// A Server is safe for concurrent use; EvaluationKeys are immutable after
// import and may be shared across goroutines.
type Server struct {
	party
	eval    *ckks.Evaluator
	encoder *ckks.Encoder // plaintext-side tooling for DotPlain (keyless)
}

// NewServer builds an evaluation party for the preset. The preset must
// match the one the clients' keys were generated for (a mismatch is
// detected when deserializing their ciphertexts).
func NewServer(preset Preset, opts ...Option) (*Server, error) {
	params, err := buildParams(preset, opts)
	if err != nil {
		return nil, err
	}
	return newServer(params, true), nil
}

// NewServerFromEvaluationKeys bootstraps a server from nothing but an
// evaluation-key blob: the embedded parameter spec reconstructs the
// parameter set (exactly like NewEncryptor does from a public-key blob)
// and the keys are imported in the same pass. This is the deployment
// story's server half — one file from the key owner and the machine can
// compute.
func NewServerFromEvaluationKeys(evalKeys []byte, opts ...Option) (*Server, *EvaluationKeys, error) {
	spec, _, err := readEvalKeyBlob(evalKeys)
	if err != nil {
		return nil, nil, err
	}
	params, err := buildParamsFromSpec(spec, opts)
	if err != nil {
		return nil, nil, wireErr(err)
	}
	srv := newServer(params, true)
	evk, err := srv.ImportEvaluationKeys(evalKeys)
	if err != nil {
		srv.Close() // release the private lane engine WithWorkers installed
		return nil, nil, err
	}
	return srv, evk, nil
}

func newServer(params *ckks.Parameters, owns bool) *Server {
	return &Server{
		party:   party{params: params, ownsParams: owns},
		eval:    ckks.NewEvaluator(params),
		encoder: ckks.NewEncoder(params),
	}
}

// EvaluationKeys is an imported evaluation-key set: the relinearization
// key plus the rotation keys the owner chose to export, validated against
// the server's parameter set. It carries no decryption capability, but it
// can transform the owner's ciphertexts — treat it as server-side
// material (see DESIGN.md on why encrypting devices never hold it).
type EvaluationKeys struct {
	set *ckks.EvaluationKeySet
}

// MaxLevel is the depth cap the keys were generated at: key-gated
// operations are limited to ciphertexts at level ≤ MaxLevel.
func (k *EvaluationKeys) MaxLevel() int { return k.set.MaxLevel }

// Gadget reports which key-switching decomposition the imported set was
// built for (GadgetHybrid or GadgetBV — an imported set is never
// GadgetAuto).
func (k *EvaluationKeys) Gadget() GadgetType {
	if k.set.Gadget == ckks.GadgetHybrid {
		return GadgetHybrid
	}
	return GadgetBV
}

// RotationSteps lists the rotation steps the set carries, ascending.
func (k *EvaluationKeys) RotationSteps() []int { return k.set.Steps() }

// HasConjugate reports whether the set carries the conjugation key.
func (k *EvaluationKeys) HasConjugate() bool { return k.set.Conj != nil }

// ImportEvaluationKeys parses an evaluation-key blob (from
// KeyOwner.ExportEvaluationKeys), validating the embedded parameter spec
// against the server's, the geometry against the gadget, and every
// residue against the modulus chain. A blob from a different preset, a
// truncated or bit-flipped blob, or one whose domain byte claims
// NTT-tagged payload all return ErrMalformedWire.
func (s *Server) ImportEvaluationKeys(data []byte) (*EvaluationKeys, error) {
	if _, _, err := readEvalKeyBlob(data); err != nil {
		return nil, err
	}
	set, err := s.params.UnmarshalEvaluationKeySet(data)
	if err != nil {
		return nil, wireErr(err)
	}
	return &EvaluationKeys{set: set}, nil
}

// ExpandCompressedUpload parses a seeded compressed upload and
// regenerates c1 from the embedded seed. No key material needed — this is
// the server half of the halved-upload protocol.
func (s *Server) ExpandCompressedUpload(data []byte) (*Ciphertext, error) {
	sct, err := s.params.UnmarshalSeeded(data)
	if err != nil {
		return nil, wireErr(err)
	}
	return s.params.Expand(sct), nil
}

// Add returns a + b (component-wise RLWE addition).
func (s *Server) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if err := s.validatePair(a, b); err != nil {
		return nil, err
	}
	return s.eval.Add(a, b), nil
}

// Sub returns a - b.
func (s *Server) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	if err := s.validatePair(a, b); err != nil {
		return nil, err
	}
	return s.eval.Sub(a, b), nil
}

// Negate returns -ct.
func (s *Server) Negate(ct *Ciphertext) (*Ciphertext, error) {
	if err := validateCoeffCiphertext(s.params, ct); err != nil {
		return nil, err
	}
	return s.eval.Negate(ct), nil
}

// MulConst multiplies by a real constant via an integer approximation
// with compensating scale bookkeeping. The constant must be finite and
// |c| < 2^32 (the evaluator represents it as round(c·2^30), which must
// stay well inside uint64 — a NaN/Inf/huge value would otherwise hit an
// implementation-defined float→uint conversion and yield platform-
// dependent garbage with no error).
func (s *Server) MulConst(ct *Ciphertext, c float64) (*Ciphertext, error) {
	if err := validateCoeffCiphertext(s.params, ct); err != nil {
		return nil, err
	}
	if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) >= 1<<32 {
		return nil, fmt.Errorf("%w: %g not finite or |c| ≥ 2^32", ErrInvalidConstant, c)
	}
	return s.eval.MulConst(ct, c), nil
}

// Rescale divides the ciphertext by its last RNS prime, dropping one limb
// and dividing the scale accordingly.
func (s *Server) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	if err := validateCoeffCiphertext(s.params, ct); err != nil {
		return nil, err
	}
	if ct.Level < 2 {
		return nil, fmt.Errorf("%w: cannot rescale below level 1", ErrLevelOutOfRange)
	}
	return s.eval.Rescale(ct), nil
}

// DropLevel truncates the ciphertext to `level` limbs without changing
// the scale — how the paper's evaluation models server→client traffic
// (the server returns 2-limb ciphertexts to minimize client work, §V-B).
func (s *Server) DropLevel(ct *Ciphertext, level int) (*Ciphertext, error) {
	if err := validateCoeffCiphertext(s.params, ct); err != nil {
		return nil, err
	}
	if level < 1 || level > ct.Level {
		return nil, fmt.Errorf("%w: target %d not in [1, %d]", ErrLevelOutOfRange, level, ct.Level)
	}
	return s.eval.DropLevel(ct, level), nil
}

// ---------------------------------------------------------------------
// Key-gated operations: ct×ct multiplication, rotations, reductions
// ---------------------------------------------------------------------

// validateEvalOperand is the shared prologue of the key-gated surface:
// structural ciphertext checks, a non-nil key set, and the depth cap.
func (s *Server) validateEvalOperand(ct *Ciphertext, evk *EvaluationKeys) error {
	if err := validateCoeffCiphertext(s.params, ct); err != nil {
		return err
	}
	if evk == nil {
		return fmt.Errorf("%w: no evaluation-key set provided", ErrEvaluationKeyMissing)
	}
	if ct.Level > evk.set.MaxLevel {
		return fmt.Errorf("%w: level %d exceeds the evaluation keys' depth %d (drop levels first, or export deeper keys)",
			ErrLevelOutOfRange, ct.Level, evk.set.MaxLevel)
	}
	return nil
}

// rotationKey resolves a normalized step, typed-error on absence.
func (s *Server) rotationKey(evk *EvaluationKeys, step int) (*ckks.RotationKey, error) {
	rk := evk.set.Rot[step]
	if rk == nil {
		return nil, fmt.Errorf("%w: rotation step %d not in the exported set %v",
			ErrEvaluationKeyMissing, step, evk.set.Steps())
	}
	return rk, nil
}

// Mul returns a ⊙ b — slot-wise ciphertext-ciphertext multiplication with
// relinearization (the degree-2 term is key-switched back to a standard
// RLWE pair using the set's relinearization key). The result's scale is
// the product of the operands' scales: follow with Rescale (once, or
// twice for the double-scale presets where Δ spans two limbs) before
// further multiplicative depth. When reducing a product with rotations
// (InnerSum), rotate first and rescale last — key-switch noise enters
// additively at the current scale, so it is cheapest while the scale is
// still Δ² (DotPlain sequences this way internally).
func (s *Server) Mul(a, b *Ciphertext, evk *EvaluationKeys) (*Ciphertext, error) {
	if err := s.validatePair(a, b); err != nil {
		return nil, err
	}
	if err := s.validateEvalOperand(a, evk); err != nil {
		return nil, err
	}
	if evk.set.Rlk == nil {
		return nil, fmt.Errorf("%w: set carries no relinearization key", ErrEvaluationKeyMissing)
	}
	return s.eval.MulRelin(a, b, evk.set.Rlk), nil
}

// Rotate rotates the message slots by k (slot i of the result holds slot
// i+k of the input, cyclically over the Slots() ring; k may be negative).
// The set must carry the key for the normalized step.
func (s *Server) Rotate(ct *Ciphertext, k int, evk *EvaluationKeys) (*Ciphertext, error) {
	if err := s.validateEvalOperand(ct, evk); err != nil {
		return nil, err
	}
	step := s.params.NormalizeStep(k)
	if step == 0 {
		return s.params.CopyCiphertext(ct), nil
	}
	rk, err := s.rotationKey(evk, step)
	if err != nil {
		return nil, err
	}
	return s.eval.RotateGalois(ct, rk), nil
}

// RotateMany rotates one ciphertext by every step at once on the hoisted
// path: the gadget digit decomposition (and its NTTs — the dominant cost
// of a rotation) is computed once and shared, so each additional step
// costs only an O(N)-per-limb permuted multiply-accumulate. Results are
// index-aligned with steps; a zero step yields a copy.
func (s *Server) RotateMany(ct *Ciphertext, steps []int, evk *EvaluationKeys) ([]*Ciphertext, error) {
	if err := s.validateEvalOperand(ct, evk); err != nil {
		return nil, err
	}
	// Resolve every key up front: a missing step errors before any work.
	rks := make([]*ckks.RotationKey, 0, len(steps))
	hoistIdx := make([]int, 0, len(steps))
	out := make([]*Ciphertext, len(steps))
	for i, k := range steps {
		step := s.params.NormalizeStep(k)
		if step == 0 {
			continue
		}
		rk, err := s.rotationKey(evk, step)
		if err != nil {
			return nil, err
		}
		rks = append(rks, rk)
		hoistIdx = append(hoistIdx, i)
	}
	for i, ct2 := range s.eval.RotateHoisted(ct, rks) {
		out[hoistIdx[i]] = ct2
	}
	for i := range out {
		if out[i] == nil {
			out[i] = s.params.CopyCiphertext(ct)
		}
	}
	return out, nil
}

// Conjugate applies slot-wise complex conjugation (the Galois element
// −1 mod 2N). The set must have been exported with Conjugate: true.
func (s *Server) Conjugate(ct *Ciphertext, evk *EvaluationKeys) (*Ciphertext, error) {
	if err := s.validateEvalOperand(ct, evk); err != nil {
		return nil, err
	}
	if evk.set.Conj == nil {
		return nil, fmt.Errorf("%w: set carries no conjugation key", ErrEvaluationKeyMissing)
	}
	return s.eval.RotateGalois(ct, evk.set.Conj), nil
}

// InnerSum replaces every slot i with the sum of the span slots i..i+span−1
// (cyclically): after an element-wise Mul this turns slot 0 into a dot
// product. span must be a power of two in [1, Slots()], and the set must
// carry the power-of-two rotation ladder 1, 2, …, span/2 (see
// InnerSumRotations). Log-depth: log2(span) rotate-and-add steps. When
// combined with Mul, run InnerSum before Rescale — rotation noise is
// additive at the current scale (see Mul).
func (s *Server) InnerSum(ct *Ciphertext, span int, evk *EvaluationKeys) (*Ciphertext, error) {
	if err := s.validateEvalOperand(ct, evk); err != nil {
		return nil, err
	}
	if span < 1 || span > s.params.Slots() || span&(span-1) != 0 {
		return nil, fmt.Errorf("%w: inner-sum span %d is not a power of two in [1, %d]",
			ErrInvalidSpan, span, s.params.Slots())
	}
	// Resolve the whole ladder before computing anything.
	for st := 1; st < span; st <<= 1 {
		if _, err := s.rotationKey(evk, st); err != nil {
			return nil, err
		}
	}
	if span == 1 {
		return s.params.CopyCiphertext(ct), nil
	}
	acc := ct
	for st := 1; st < span; st <<= 1 {
		rk := evk.set.Rot[st]
		acc = s.eval.Add(acc, s.eval.RotateGalois(acc, rk))
	}
	return acc, nil
}

// DotPlain computes the inner product of the encrypted vector with a
// plaintext weight vector — the encrypted half of a linear layer: the
// weights are encoded at the ciphertext's level and multiplied in
// slot-wise, the products are reduced with InnerSum over the next power
// of two ≥ len(weights) (the padding slots contribute only the weights'
// zeros), and one closing Rescale consumes the weights' scale. The
// rotations run *before* the rescale on purpose: key-switch noise is
// additive at the current scale, so it is spent while the scale is still
// ct.Scale·Δ. Slot 0 of the result holds Σ weights[j]·x[j]; the scale is
// ct.Scale·Δ/q_last. Requires 2 ≤ ct.Level ≤ evk.MaxLevel() and the
// rotation ladder for the padded span.
func (s *Server) DotPlain(ct *Ciphertext, weights []complex128, evk *EvaluationKeys) (*Ciphertext, error) {
	if err := s.validateEvalOperand(ct, evk); err != nil {
		return nil, err
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("%w: empty weight vector", ErrInvalidSpan)
	}
	if err := validateMessage(s.params, weights); err != nil {
		return nil, err
	}
	if ct.Level < 2 {
		return nil, fmt.Errorf("%w: DotPlain rescales once, needs level ≥ 2", ErrLevelOutOfRange)
	}
	span := 1
	for span < len(weights) {
		span <<= 1
	}
	for st := 1; st < span; st <<= 1 {
		if _, err := s.rotationKey(evk, st); err != nil {
			return nil, err
		}
	}

	pt := s.encoder.EncodeAtLevel(weights, ct.Level)
	prod := s.eval.MulPlain(ct, pt)
	s.params.PutPlaintext(pt)
	sum, err := s.InnerSum(prod, span, evk)
	if err != nil {
		return nil, err
	}
	return s.eval.Rescale(sum), nil
}

// InnerSumRotations returns the power-of-two rotation-step ladder
// {1, 2, 4, …, span/2} that InnerSum over span slots consumes — pass it
// to EvalKeyConfig.Rotations when exporting keys.
func InnerSumRotations(span int) []int { return ckks.InnerSumRotations(span) }

// ---------------------------------------------------------------------
// Homomorphic linear transforms (BSGS) and the homomorphic DFT
// ---------------------------------------------------------------------

// LinearTransform is a plaintext matrix pre-encoded for homomorphic
// mat×vec: the matrix's nonzero diagonals, pre-rotated and encoded at a
// fixed level, evaluated with blocked baby-step/giant-step over the
// hoisted rotation path (one shared digit decomposition for all baby
// steps, one per giant step — |babies|+|giants| key switches instead of
// one per diagonal). Build with Server.NewLinearTransform; immutable and
// safe to share across goroutines and calls.
type LinearTransform struct {
	lt *ckks.LinearTransform
}

// Level is the input level the transform consumes ciphertexts at.
func (t *LinearTransform) Level() int { return t.lt.Level }

// Depth is the number of rescales the evaluation performs: the output
// lands at Level() − Depth(), back at ≈ the input scale.
func (t *LinearTransform) Depth() int { return t.lt.Rescales }

// N1 is the baby-step block size the evaluation uses.
func (t *LinearTransform) N1() int { return t.lt.N1 }

// Rotations lists the rotation steps the evaluation needs keys for —
// export them via EvalKeyConfig.Rotations.
func (t *LinearTransform) Rotations() []int { return t.lt.Rotations() }

// NewLinearTransform pre-encodes a plaintext matrix given by its nonzero
// diagonals: diags[d][r] = M[r][(r+d) mod Slots()] (d may be negative —
// indices are cyclic; vectors shorter than Slots() are zero-padded; every
// component must be finite). level is the input level the transform will
// consume ciphertexts at and must leave room for Depth() rescales.
// n1 = 0 picks the cost-optimal power-of-two block size; an explicit n1
// must be a power of two in [1, Slots()].
func (s *Server) NewLinearTransform(diags map[int][]complex128, level, n1 int) (*LinearTransform, error) {
	rescales := s.params.RescalesPerLevel()
	// Floor of 2·rescales: the pre-rescale product sits at scale
	// Δ·Δpt ≤ 2^(2·rescales·LimbBits) and must fit under Q_level.
	if level < 2*rescales || level > s.params.MaxLevel() {
		return nil, fmt.Errorf("%w: transform level %d not in [%d, %d] (needs %d rescales plus scale headroom)",
			ErrLevelOutOfRange, level, 2*rescales, s.params.MaxLevel(), rescales)
	}
	if n1 != 0 && (n1 < 1 || n1 > s.params.Slots() || n1&(n1-1) != 0) {
		return nil, fmt.Errorf("%w: block size %d is not a power of two in [1, %d]",
			ErrInvalidSpan, n1, s.params.Slots())
	}
	nonzero := false
	for d, v := range diags {
		if err := validateMessage(s.params, v); err != nil {
			return nil, fmt.Errorf("diagonal %d: %w", d, err)
		}
		for _, z := range v {
			if z != 0 {
				nonzero = true
				break
			}
		}
	}
	if !nonzero {
		return nil, fmt.Errorf("%w: transform has no nonzero diagonals", ErrInvalidSpan)
	}
	return &LinearTransform{lt: s.encoder.NewLinearTransform(diags, level, n1)}, nil
}

// resolveRotations gathers keys for every step of a transform's rotation
// set, erroring with ErrEvaluationKeyMissing before any compute happens.
func (s *Server) resolveRotations(evk *EvaluationKeys, steps []int) (map[int]*ckks.RotationKey, error) {
	rot := make(map[int]*ckks.RotationKey, len(steps))
	for _, st := range steps {
		rk, err := s.rotationKey(evk, st)
		if err != nil {
			return nil, err
		}
		rot[st] = rk
	}
	return rot, nil
}

// LinearTransform applies a pre-encoded matrix to ct. Ciphertexts above
// the transform's level are dropped to it first (the usual way to feed a
// fresh ciphertext into a transform built at the keys' depth cap); below
// it is an error. The result lands Depth() levels below t.Level() at
// ≈ the input scale. The key set must carry every step in t.Rotations().
func (s *Server) LinearTransform(ct *Ciphertext, t *LinearTransform, evk *EvaluationKeys) (*Ciphertext, error) {
	if err := validateCoeffCiphertext(s.params, ct); err != nil {
		return nil, err
	}
	if evk == nil {
		return nil, fmt.Errorf("%w: no evaluation-key set provided", ErrEvaluationKeyMissing)
	}
	if ct.Level < t.Level() {
		return nil, fmt.Errorf("%w: ciphertext at level %d, transform encoded at %d",
			ErrLevelOutOfRange, ct.Level, t.Level())
	}
	if t.Level() > evk.set.MaxLevel {
		return nil, fmt.Errorf("%w: transform level %d exceeds the evaluation keys' depth %d",
			ErrLevelOutOfRange, t.Level(), evk.set.MaxLevel)
	}
	rot, err := s.resolveRotations(evk, t.Rotations())
	if err != nil {
		return nil, err
	}
	if ct.Level > t.Level() {
		ct = s.eval.DropLevel(ct, t.Level())
	}
	return s.eval.LinearTransform(ct, t.lt, rot), nil
}

// HomomorphicDFT is a built CoeffsToSlots/SlotsToCoeffs pipeline: the
// scheme's special FFT factored into Levels grouped sparse matrices per
// direction, each pre-encoded as a LinearTransform at its scheduled
// level. Build with Server.NewHomomorphicDFT; immutable and shareable.
type HomomorphicDFT struct {
	dft *ckks.HomomorphicDFT
}

// HomomorphicDFTConfig selects the depth/width trade-off of a
// homomorphic DFT.
type HomomorphicDFTConfig struct {
	// StartLevel is the level CoeffsToSlots consumes its input at; the
	// full round trip spends 2·Levels·depth-per-level limbs below it.
	StartLevel int
	// Levels is the number of grouped butterfly matrices per direction,
	// in [1, log2(Slots())]: more levels means sparser matrices (fewer
	// rotations and key switches each) at the cost of more depth.
	Levels int
}

// StartLevel is the level CoeffsToSlots consumes its input at.
func (d *HomomorphicDFT) StartLevel() int { return d.dft.StartLevel }

// MidLevel is the level the CoeffsToSlots outputs (and SlotsToCoeffs
// inputs) live at.
func (d *HomomorphicDFT) MidLevel() int { return d.dft.MidLevel }

// EndLevel is the level the SlotsToCoeffs output lands at.
func (d *HomomorphicDFT) EndLevel() int {
	return 2*d.dft.MidLevel - d.dft.StartLevel
}

// Rotations lists the rotation steps the full pipeline needs — export
// them (plus Conjugate: true) via EvalKeyConfig.
func (d *HomomorphicDFT) Rotations() []int { return d.dft.Rotations() }

// NewHomomorphicDFT factors and pre-encodes the homomorphic DFT matrices.
func (s *Server) NewHomomorphicDFT(cfg HomomorphicDFTConfig) (*HomomorphicDFT, error) {
	logn := 0
	for 1<<uint(logn+1) <= s.params.Slots() {
		logn++
	}
	if cfg.Levels < 1 || cfg.Levels > logn {
		return nil, fmt.Errorf("%w: DFT levels %d not in [1, %d]", ErrInvalidSpan, cfg.Levels, logn)
	}
	r := s.params.RescalesPerLevel()
	depth := 2 * cfg.Levels * r
	// The deepest transform runs at StartLevel − (2·Levels−1)·r and, like
	// every LinearTransform, needs 2r levels under it: floor (2·Levels+1)·r.
	if cfg.StartLevel > s.params.MaxLevel() || cfg.StartLevel < depth+r {
		return nil, fmt.Errorf("%w: DFT start level %d not in [%d, %d] (round trip spends %d limbs)",
			ErrLevelOutOfRange, cfg.StartLevel, depth+r, s.params.MaxLevel(), depth)
	}
	return &HomomorphicDFT{dft: s.encoder.NewHomomorphicDFT(ckks.HomomorphicDFTConfig{
		StartLevel: cfg.StartLevel,
		Levels:     cfg.Levels,
	})}, nil
}

// CoeffsToSlots homomorphically exposes the plaintext polynomial's
// coefficients as slot values: the factored inverse DFT followed by the
// conjugate real/imaginary split. The returned pair holds, in
// bit-reversed slot order (see fftfp.BitReverse), the real-valued
// coefficient halves c_r and c_{r+Slots} of ct's underlying polynomial —
// the form a bootstrap's modular reduction consumes. ct is dropped to
// dft.StartLevel() if above it; both outputs land at dft.MidLevel(). The
// key set must carry dft.Rotations() and the conjugation key.
func (s *Server) CoeffsToSlots(ct *Ciphertext, dft *HomomorphicDFT, evk *EvaluationKeys) (re, im *Ciphertext, err error) {
	if err := validateCoeffCiphertext(s.params, ct); err != nil {
		return nil, nil, err
	}
	if evk == nil {
		return nil, nil, fmt.Errorf("%w: no evaluation-key set provided", ErrEvaluationKeyMissing)
	}
	if ct.Level < dft.StartLevel() {
		return nil, nil, fmt.Errorf("%w: ciphertext at level %d, DFT starts at %d",
			ErrLevelOutOfRange, ct.Level, dft.StartLevel())
	}
	if dft.StartLevel() > evk.set.MaxLevel {
		return nil, nil, fmt.Errorf("%w: DFT start level %d exceeds the evaluation keys' depth %d",
			ErrLevelOutOfRange, dft.StartLevel(), evk.set.MaxLevel)
	}
	if evk.set.Conj == nil {
		return nil, nil, fmt.Errorf("%w: CoeffsToSlots' conjugate split needs the conjugation key", ErrEvaluationKeyMissing)
	}
	rot, err := s.resolveRotations(evk, dft.Rotations())
	if err != nil {
		return nil, nil, err
	}
	if ct.Level > dft.StartLevel() {
		ct = s.eval.DropLevel(ct, dft.StartLevel())
	}
	re, im = s.eval.CoeffsToSlots(ct, dft.dft, rot, evk.set.Conj)
	return re, im, nil
}

// SlotsToCoeffs inverts CoeffsToSlots: recombines the two coefficient
// halves (one keyless multiply by i) and applies the factored forward
// DFT. re and im must both sit at dft.MidLevel() with matching scales;
// the result lands at dft.EndLevel() holding the original slot values.
func (s *Server) SlotsToCoeffs(re, im *Ciphertext, dft *HomomorphicDFT, evk *EvaluationKeys) (*Ciphertext, error) {
	if err := s.validatePair(re, im); err != nil {
		return nil, err
	}
	if evk == nil {
		return nil, fmt.Errorf("%w: no evaluation-key set provided", ErrEvaluationKeyMissing)
	}
	if re.Level != dft.MidLevel() {
		return nil, fmt.Errorf("%w: inputs at level %d, SlotsToCoeffs consumes level %d",
			ErrLevelOutOfRange, re.Level, dft.MidLevel())
	}
	if dft.MidLevel() > evk.set.MaxLevel {
		return nil, fmt.Errorf("%w: DFT mid level %d exceeds the evaluation keys' depth %d",
			ErrLevelOutOfRange, dft.MidLevel(), evk.set.MaxLevel)
	}
	rot, err := s.resolveRotations(evk, dft.Rotations())
	if err != nil {
		return nil, err
	}
	return s.eval.SlotsToCoeffs(re, im, dft.dft, rot), nil
}

// Evaluator exposes the low-level keyless evaluator (plaintext operands,
// panicking misuse semantics) for call sites that have already validated
// their inputs.
func (s *Server) Evaluator() *ckks.Evaluator { return s.eval }

// Slots, MaxLevel, Workers, Close, SerializeCiphertext,
// DeserializeCiphertext, CiphertextWireBytes and CompressedWireBytes are
// provided by the embedded party substrate (party.go).

func (s *Server) validatePair(a, b *Ciphertext) error {
	if err := validateCoeffCiphertext(s.params, a); err != nil {
		return err
	}
	if err := validateCoeffCiphertext(s.params, b); err != nil {
		return err
	}
	return validateSameLevelScale(a, b)
}
