package serve

import "errors"

// Typed sentinels for the serving layer. Handlers map these onto HTTP
// statuses (see httpStatus in service.go); tests and embedding callers
// match them with errors.Is.
var (
	// ErrCacheAdmission rejects an evaluation-key blob whose wire size
	// alone exceeds the cache's byte budget — detected from the blob
	// header before any payload-proportional work (HTTP 413).
	ErrCacheAdmission = errors.New("serve: evaluation-key blob exceeds the cache byte budget")

	// ErrCachePressure means the blob fits the budget but every resident
	// entry is pinned by an in-flight batch, so nothing can be evicted to
	// make room right now (HTTP 503 + Retry-After; transient).
	ErrCachePressure = errors.New("serve: evaluation-key cache is fully pinned; retry")

	// ErrOverloaded is the backpressure signal: the in-flight request
	// count reached max-inflight (HTTP 429 + Retry-After).
	ErrOverloaded = errors.New("serve: request queue full")

	// ErrUnknownSession means the session id (or its key-cache entry) is
	// not registered (HTTP 404).
	ErrUnknownSession = errors.New("serve: unknown session")

	// ErrDraining rejects new sessions once shutdown has begun (HTTP 503).
	ErrDraining = errors.New("serve: draining")
)
