package ckks

// Scheme-layer tests of hybrid (P·Q) key switching: correctness of
// MulRelin / rotations / conjugation over the raised modulus, depth-capped
// keys, hoisting bit-identity, the noise advantage over the BV gadget, and
// the geometry accessors. The BV coverage in keyswitch_test.go and
// evalkeys_test.go is unchanged — both gadgets stay first-class.

import (
	"math/cmplx"
	"strings"
	"testing"

	"repro/internal/prng"
)

func TestHybridGeometry(t *testing.T) {
	p := testParams
	if p.Alpha() != TestParams.SpecialLimbs {
		t.Fatalf("alpha %d", p.Alpha())
	}
	if len(p.SpecialPrimes()) != p.Alpha() {
		t.Fatalf("special chain %d primes, want %d", len(p.SpecialPrimes()), p.Alpha())
	}
	// Special primes are disjoint from the Q chain and NTT-friendly by
	// construction (ring.NewRing would have rejected them otherwise).
	qset := map[uint64]bool{}
	for _, q := range p.Ring().Basis.Primes() {
		qset[q] = true
	}
	for _, pr := range p.SpecialPrimes() {
		if qset[pr] {
			t.Fatalf("special prime %d collides with the Q chain", pr)
		}
	}
	// Group cover: the groups tile [0, level) exactly.
	for level := 1; level <= p.MaxLevel(); level++ {
		covered := 0
		for j := 0; j < p.DnumAt(level); j++ {
			lo, hi := p.groupRange(level, j)
			if lo != covered || hi <= lo {
				t.Fatalf("level %d group %d: range [%d, %d) does not tile", level, j, lo, hi)
			}
			covered = hi
		}
		if covered != level {
			t.Fatalf("level %d: groups cover %d limbs", level, covered)
		}
	}
	// The QP view shares NTT tables with the base rings (no rebuild).
	rqp := p.RingQPAt(2)
	if rqp.Tables[0] != p.Ring().Tables[0] || rqp.Tables[2] != p.RingP().Tables[0] {
		t.Fatal("QP ring does not share the base rings' NTT tables")
	}
	// Q chain unchanged by the special primes: a spec with SpecialLimbs=0
	// derives the identical Q primes (ciphertext bytes are gadget-blind).
	bare := TestParams
	bare.SpecialLimbs = 0
	pb := bare.MustBuild()
	for i, q := range pb.Ring().Basis.Primes() {
		if q != p.Ring().Basis.Primes()[i] {
			t.Fatal("special primes perturbed the Q chain")
		}
	}
}

func TestHybridMulRelin(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinearizationKeyHybridAt(p.MaxLevel())
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	m1 := randMsg(p, 0, 141)
	m2 := randMsg(p, 0, 142)
	prod := ev.Rescale(ev.MulRelin(
		encryptor.Encrypt(enc.Encode(m1)),
		encryptor.Encrypt(enc.Encode(m2)), rlk))
	got := enc.Decode(dec.Decrypt(prod))
	want := make([]complex128, len(m1))
	for i := range want {
		want[i] = m1[i] * m2[i]
	}
	// The hybrid gadget's switching noise ≈ σ·√(βαN)·(Q_grp/P) sits orders
	// of magnitude under the BV budget (5e-2); 1e-3 still leaves slack over
	// the rescale noise floor (~2e-4 at Δ=2^30).
	if e := maxErr(want, got); e > 1e-3 {
		t.Fatalf("hybrid ct x ct multiply error %g", e)
	}
}

// TestHybridNoiseBeatsBV: same circuit, same seed — the hybrid product
// decodes at least as precisely as the BV product (the raised modulus
// removes the 2^w digit amplification).
func TestHybridNoiseBeatsBV(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	m1 := randMsg(p, 0, 143)
	m2 := randMsg(p, 0, 144)
	want := make([]complex128, len(m1))
	for i := range want {
		want[i] = m1[i] * m2[i]
	}
	run := func(rlk *RelinearizationKey) float64 {
		prod := ev.Rescale(ev.MulRelin(
			encryptor.Encrypt(enc.Encode(m1)),
			encryptor.Encrypt(enc.Encode(m2)), rlk))
		return maxErr(want, enc.Decode(dec.Decrypt(prod)))
	}
	errBV := run(kg.GenRelinearizationKey(sk))
	errHy := run(kg.GenRelinearizationKeyHybridAt(p.MaxLevel()))
	t.Logf("worst-slot error: bv %.3g, hybrid %.3g", errBV, errHy)
	if errHy > errBV {
		t.Fatalf("hybrid noise %g exceeds BV %g", errHy, errBV)
	}
}

func TestHybridRotationAndConjugate(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	msg := randMsg(p, 0, 146)
	ct := encryptor.Encrypt(enc.Encode(msg))
	slots := p.Slots()

	for _, k := range []int{1, 3, 17} {
		rk := kg.GenRotationKeyHybridAt(p.GaloisElement(k), p.MaxLevel())
		got := enc.Decode(dec.Decrypt(ev.RotateGalois(ct, rk)))
		for i := 0; i < slots; i++ {
			if cmplx.Abs(got[i]-msg[(i+k)%slots]) > 1e-3 {
				t.Fatalf("hybrid rotation by %d wrong at slot %d", k, i)
			}
		}
	}
	rk := kg.GenRotationKeyHybridAt(p.GaloisElementConjugate(), p.MaxLevel())
	got := enc.Decode(dec.Decrypt(ev.RotateGalois(ct, rk)))
	for i := range msg {
		if cmplx.Abs(got[i]-cmplx.Conj(msg[i])) > 1e-3 {
			t.Fatalf("hybrid conjugation wrong at slot %d", i)
		}
	}
}

// TestHybridDepthCapped: a depth-capped hybrid key works at and below its
// depth (including a level that does not divide α — a short last group)
// and panics above it, mirroring the BV contract.
func TestHybridDepthCapped(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinearizationKeyHybridAt(3) // 3 % α=2 ≠ 0: short group
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	m1 := randMsg(p, 0, 161)
	m2 := randMsg(p, 0, 162)
	want := make([]complex128, len(m1))
	for i := range want {
		want[i] = m1[i] * m2[i]
	}
	for _, level := range []int{3, 2} {
		ct1 := ev.DropLevel(encryptor.Encrypt(enc.Encode(m1)), level)
		ct2 := ev.DropLevel(encryptor.Encrypt(enc.Encode(m2)), level)
		got := enc.Decode(dec.Decrypt(ev.Rescale(ev.MulRelin(ct1, ct2, rlk))))
		if e := maxErr(want, got); e > 1e-3 {
			t.Fatalf("level %d: hybrid depth-capped multiply error %g", level, e)
		}
	}

	full1 := encryptor.Encrypt(enc.Encode(m1))
	full2 := encryptor.Encrypt(enc.Encode(m2))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MulRelin above hybrid key depth must panic at the scheme layer")
		}
		if !strings.Contains(r.(string), "depth") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	ev.MulRelin(full1, full2, rlk)
}

// TestHybridRotateHoistedMatchesSequential: one shared ModUp feeds many
// rotations bit-identically to rotating one at a time.
func TestHybridRotateHoistedMatchesSequential(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	msg := randMsg(p, 0, 163)
	ct := encryptor.Encrypt(enc.Encode(msg))

	steps := []int{1, 2, 5}
	rks := make([]*RotationKey, len(steps))
	for i, k := range steps {
		rks[i] = kg.GenRotationKeyHybridAt(p.GaloisElement(k), p.MaxLevel())
	}
	hoisted := ev.RotateHoisted(ct, rks)
	r := p.Ring()
	slots := p.Slots()
	for i, rk := range rks {
		seq := ev.RotateGalois(ct, rk)
		if !r.Equal(seq.C0, hoisted[i].C0) || !r.Equal(seq.C1, hoisted[i].C1) {
			t.Fatalf("step %d: hybrid hoisted rotation differs from sequential", steps[i])
		}
		got := enc.Decode(dec.Decrypt(hoisted[i]))
		for j := 0; j < slots; j++ {
			if cmplx.Abs(got[j]-msg[(j+steps[i])%slots]) > 1e-3 {
				t.Fatalf("step %d slot %d wrong", steps[i], j)
			}
		}
	}
}

// TestHybridMixedGadgetPanics: feeding a hoisted decomposition to a key of
// the other gadget is an internal invariant violation (loud panic), and a
// mixed RotateHoisted batch is rejected before any work.
func TestHybridMixedGadgetPanics(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	ev := NewEvaluator(p)
	ct := encryptor.Encrypt(enc.Encode(randMsg(p, 0, 164)))

	bv := kg.GenRotationKeyAt(sk, p.GaloisElement(1), p.MaxLevel())
	hy := kg.GenRotationKeyHybridAt(p.GaloisElement(2), p.MaxLevel())
	defer func() {
		if recover() == nil {
			t.Fatal("mixed-gadget RotateHoisted must panic")
		}
	}()
	ev.RotateHoisted(ct, []*RotationKey{bv, hy})
}

// TestHybridKeySetRejectsForeignSecret: GenEvaluationKeySet's hybrid path
// derives the secret from the generator's seed; handing it a secret key
// from a different seed would silently build keys for the wrong key pair,
// so it must panic loudly instead.
func TestHybridKeySetRejectsForeignSecret(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	other := NewKeyGenerator(p, prng.SeedFromUint64s(0xDEAD, 0xBEEF)).GenSecretKey()
	defer func() {
		if recover() == nil {
			t.Fatal("hybrid key set over a foreign secret must panic")
		}
	}()
	kg.GenEvaluationKeySet(other, 2, nil, false, GadgetHybrid)
}

// TestHybridRequiresSpecialPrimes: the hybrid surface panics loudly on a
// parameter set without special primes (the public API converts this to a
// typed error before reaching here).
func TestHybridRequiresSpecialPrimes(t *testing.T) {
	bare := TestParams
	bare.SpecialLimbs = 0
	p := bare.MustBuild()
	kg := NewKeyGenerator(p, testSeed())
	defer func() {
		if recover() == nil {
			t.Fatal("hybrid keygen without special primes must panic")
		}
	}()
	kg.GenRelinearizationKeyHybridAt(p.MaxLevel())
}
