package ntt

// Galois (automorphism) support in the NTT domain.
//
// The forward transform evaluates a polynomial at the N primitive 2N-th
// roots ψ^{e_0..e_{N-1}} (the exponent ordering is an artifact of the
// merged-ψ butterfly schedule). The ring automorphism σ_g : X → X^g maps
// f to the polynomial with σ_g(f)(ψ^e) = f(ψ^{g·e}) — it permutes the
// evaluation points, so in the NTT domain it is a pure index permutation:
// no multiplications and, crucially, no sign corrections (the X^N = −1
// wraps of the coefficient-domain automorphism are absorbed into the
// evaluation points). This is what makes hoisted rotations cheap: digit
// decompositions can be transformed once and re-rotated per Galois
// element with an O(N) gather.
//
// The exponent ordering is recovered empirically rather than derived from
// the butterfly schedule: transform the monomial X once — the output is
// exactly (ψ^{e_j})_j — and take discrete logs against a ψ-power table.
// That keeps this file correct under any internally-consistent transform
// ordering, and the ring-level test pins PermuteNTT ∘ NTT against
// NTT ∘ coefficient-automorphism.

// galoisTables caches the exponent ordering of the transform.
type galoisTables struct {
	exps  []int32 // exps[j] = e_j with Forward(f)[j] = f(ψ^{e_j})
	idxOf []int32 // idxOf[e] = j with e_j = e; -1 for exponents not hit
}

// galois lazily builds the exponent tables (one NTT of X plus a discrete
// log over the 2N-element ψ-power group; O(N) time and memory, computed
// once per table).
func (t *Table) galois() *galoisTables {
	t.galoisOnce.Do(func() {
		m := t.Mod
		n := t.N

		// Discrete-log table over <ψ> (order 2N).
		dlog := make(map[uint64]int32, 2*n)
		pow := uint64(1)
		for k := 0; k < 2*n; k++ {
			dlog[pow] = int32(k)
			pow = m.Mul(pow, t.Psi)
		}

		// NTT of the monomial X: output j is ψ^{e_j}.
		mono := make([]uint64, n)
		mono[1] = 1
		t.Forward(mono)

		g := &galoisTables{
			exps:  make([]int32, n),
			idxOf: make([]int32, 2*n),
		}
		for e := range g.idxOf {
			g.idxOf[e] = -1
		}
		for j, v := range mono {
			e, ok := dlog[v]
			if !ok {
				panic("ntt: transform of X is not a power of ψ")
			}
			g.exps[j] = e
			g.idxOf[e] = int32(j)
		}
		t.galoisTab = g
	})
	return t.galoisTab
}

// GaloisPerm returns the NTT-domain permutation implementing X → X^g for
// an odd Galois element g in (0, 2N): out[j] = in[perm[j]] maps the
// transform of f to the transform of σ_g(f). The returned slice is owned
// by the caller. The permutation depends only on the transform's exponent
// schedule, not on the modulus, so one table's permutation is valid for
// every limb of an RNS ring at the same degree.
func (t *Table) GaloisPerm(g int) []int32 {
	if g&1 == 0 || g <= 0 || g >= 2*t.N {
		panic("ntt: Galois element must be odd in (0, 2N)")
	}
	gt := t.galois()
	mask := int32(2*t.N - 1)
	perm := make([]int32, t.N)
	for j := range perm {
		e := (int32(g) * gt.exps[j]) & mask
		perm[j] = gt.idxOf[e]
	}
	return perm
}
