package abcfhe

// Tests for the encrypted-compute server surface (PR 4): the three-party
// integration where the server genuinely computes (ct×ct multiply, slot
// rotations, inner sums — all reached through exported evaluation-key
// bytes), the misuse matrix of the key-gated operations, worker-count
// determinism of the key-switch hot paths, and their allocation budgets.

import (
	"bytes"
	"errors"
	"math/cmplx"
	"testing"

	"repro/internal/ckks"
)

// dotSpan is the vector width the integration tests reduce over.
const dotSpan = 4

// evalParties builds the three parties plus an imported evaluation-key
// set deep enough for one Mul + Rescale(s) + InnerSum(dotSpan).
func evalParties(t testing.TB, preset Preset, opts ...Option) (*KeyOwner, *Encryptor, *Server, *EvaluationKeys) {
	t.Helper()
	owner, device, server := threeParties(t, preset, 0xE7A1, 0xE7A2, opts...)
	evkBytes, err := owner.ExportEvaluationKeys(EvalKeyConfig{
		MaxLevel:  4,
		Rotations: InnerSumRotations(dotSpan),
		Conjugate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	evk, err := server.ImportEvaluationKeys(evkBytes)
	if err != nil {
		t.Fatal(err)
	}
	return owner, device, server, evk
}

// rescalesAfterMul is the number of Rescale steps that bring a product's
// scale back near Δ: the double-scale presets (Δ = 2^66 over 36-bit limbs)
// consume two limbs per multiplication, the Test preset (Δ = 2^30) one.
func rescalesAfterMul(preset Preset) int {
	spec, _ := preset.spec()
	if spec.LogScale > spec.LimbBits {
		return 2
	}
	return 1
}

// TestThreePartyEncryptedDot is the PR 4 headline: the KeyOwner exports
// public and evaluation keys as bytes; a device encrypts two vectors; the
// keyless Server — holding nothing but those bytes — computes their
// slot-wise product with Mul, consumes the scale with Rescale, and
// reduces with the rotation-based InnerSum; the KeyOwner decrypts the
// replied bytes and finds the dot products, within a per-preset
// worst-slot precision floor.
//
// Floors: the double-scale presets keep ≥ 30 bits through the whole
// pipeline. The Test preset's Δ = 2^30 leaves only 2^24 of scale after
// the single rescale (the 36-bit limb overshoots Δ²), capping its
// precision near 14 bits — same structural floor the key round-trip test
// uses for it.
func TestThreePartyEncryptedDot(t *testing.T) {
	floors := map[Preset]float64{Test: 12, PN15: 30}
	for _, preset := range []Preset{Test, PN15} {
		t.Run(string(preset), func(t *testing.T) {
			spec, _ := preset.spec()
			if testing.Short() && spec.LogN >= 14 {
				t.Skipf("skipping logN=%d in -short mode", spec.LogN)
			}

			// Machine 1: the key owner. Two byte blobs leave it.
			owner, err := NewKeyOwner(preset, 0xD07, 0x5CA1A2)
			if err != nil {
				t.Fatal(err)
			}
			pkBytes, err := owner.ExportPublicKey()
			if err != nil {
				t.Fatal(err)
			}
			evkBytes, err := owner.ExportEvaluationKeys(EvalKeyConfig{
				MaxLevel:  4,
				Rotations: InnerSumRotations(dotSpan),
			})
			if err != nil {
				t.Fatal(err)
			}

			// Machine 2: a fleet device encrypts the two vectors.
			device, err := NewEncryptor(pkBytes, 0xFEE1, 0x600D)
			if err != nil {
				t.Fatal(err)
			}
			msgs := testMsgs(device.Slots(), 2)
			x, y := msgs[0], msgs[1]
			ctX, err := device.EncodeEncrypt(x)
			if err != nil {
				t.Fatal(err)
			}
			ctY, err := device.EncodeEncrypt(y)
			if err != nil {
				t.Fatal(err)
			}
			uploadX, _ := device.SerializeCiphertext(ctX)
			uploadY, _ := device.SerializeCiphertext(ctY)

			// Machine 3: the server bootstraps from the evaluation-key
			// blob alone and computes on the ciphertext bytes.
			server, evk, err := NewServerFromEvaluationKeys(evkBytes)
			if err != nil {
				t.Fatal(err)
			}
			a, err := server.DeserializeCiphertext(uploadX)
			if err != nil {
				t.Fatal(err)
			}
			b, err := server.DeserializeCiphertext(uploadY)
			if err != nil {
				t.Fatal(err)
			}
			a, err = server.DropLevel(a, evk.MaxLevel())
			if err != nil {
				t.Fatal(err)
			}
			b, err = server.DropLevel(b, evk.MaxLevel())
			if err != nil {
				t.Fatal(err)
			}
			prod, err := server.Mul(a, b, evk)
			if err != nil {
				t.Fatal(err)
			}
			// Rotate first, rescale last: key-switch noise is additive at
			// the current scale, so spend it while the scale is still Δ².
			sum, err := server.InnerSum(prod, dotSpan, evk)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < rescalesAfterMul(preset); i++ {
				if sum, err = server.Rescale(sum); err != nil {
					t.Fatal(err)
				}
			}
			reply, err := server.SerializeCiphertext(sum)
			if err != nil {
				t.Fatal(err)
			}

			// Back on machine 1: decrypt the reply bytes.
			replyCt, err := owner.DeserializeCiphertext(reply)
			if err != nil {
				t.Fatal(err)
			}
			got, err := owner.DecryptDecode(replyCt)
			if err != nil {
				t.Fatal(err)
			}

			// Slot j must hold Σ_{m<dotSpan} x[j+m]·y[j+m] (cyclic).
			slots := owner.Slots()
			want := make([]complex128, slots)
			for j := 0; j < slots; j++ {
				for m := 0; m < dotSpan; m++ {
					want[j] += x[(j+m)%slots] * y[(j+m)%slots]
				}
			}
			stats := ckks.MeasurePrecision(want, got)
			t.Logf("worst-slot precision %.2f bits (mean %.2f)", stats.WorstBits, stats.MeanBits)
			if stats.WorstBits < floors[preset] {
				t.Fatalf("worst-slot precision %.2f bits below floor %.0f", stats.WorstBits, floors[preset])
			}

			// No shared in-memory state between the parties.
			if owner.params == server.params || owner.params == device.params {
				t.Fatal("parties share a Parameters instance")
			}
		})
	}
}

// TestEvalKeyExportCanonical: re-export with the same config is
// byte-identical (keys derive deterministically from the owner seed), and
// the imported set reports its geometry.
func TestEvalKeyExportCanonical(t *testing.T) {
	owner, _, server := threeParties(t, Test, 0xCA, 0xFE)
	cfg := EvalKeyConfig{MaxLevel: 3, Rotations: []int{4, 1, 2, 2}, Conjugate: true}
	a, err := owner.ExportEvaluationKeys(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := owner.ExportEvaluationKeys(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("evaluation-key export is not deterministic")
	}
	evk, err := server.ImportEvaluationKeys(a)
	if err != nil {
		t.Fatal(err)
	}
	if evk.MaxLevel() != 3 || !evk.HasConjugate() {
		t.Fatal("geometry lost on import")
	}
	steps := evk.RotationSteps()
	if len(steps) != 3 || steps[0] != 1 || steps[1] != 2 || steps[2] != 4 {
		t.Fatalf("rotation steps %v", steps)
	}
}

// TestRotateAndConjugate: rotations through the public surface move slots
// in the documented direction; conjugation conjugates.
func TestRotateAndConjugate(t *testing.T) {
	owner, device, server, evk := evalParties(t, Test)
	msg := testMsgs(device.Slots(), 1)[0]
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	low, err := server.DropLevel(ct, evk.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}

	rot, err := server.Rotate(low, 2, evk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := owner.DecryptDecode(rot)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance matches the scheme-layer rotation tests: key-switch noise
	// at the Test preset's Δ = 2^30 sits a few bits under 5e-2.
	slots := owner.Slots()
	for j := range got {
		if cmplx.Abs(got[j]-msg[(j+2)%slots]) > 5e-2 {
			t.Fatalf("slot %d not rotated by 2", j)
		}
	}

	// Rotation by 0 is the identity (no key needed, no noise added).
	id, err := server.Rotate(low, 0, evk)
	if err != nil {
		t.Fatal(err)
	}
	idGot, err := owner.DecryptDecode(id)
	if err != nil {
		t.Fatal(err)
	}
	for j := range idGot {
		if cmplx.Abs(idGot[j]-msg[j]) > 1e-3 {
			t.Fatalf("slot %d changed under identity rotation", j)
		}
	}

	conj, err := server.Conjugate(low, evk)
	if err != nil {
		t.Fatal(err)
	}
	cGot, err := owner.DecryptDecode(conj)
	if err != nil {
		t.Fatal(err)
	}
	// 0.1 rather than 5e-2: the conjugation element's switching key draws
	// different error polynomials than the small-step keys, and at the
	// Test preset's Δ = 2^30 the gadget noise (~2^18, paper-style σ) sits
	// only ~4 bits under these thresholds.
	for j := range cGot {
		if cmplx.Abs(cGot[j]-cmplx.Conj(msg[j])) > 0.1 {
			t.Fatalf("slot %d not conjugated", j)
		}
	}
}

// TestRotateManyMatchesRotate: the hoisted multi-rotation returns
// byte-identical ciphertexts to one-at-a-time Rotate (including the
// zero-step copy).
func TestRotateManyMatchesRotate(t *testing.T) {
	_, device, server, evk := evalParties(t, Test)
	msg := testMsgs(device.Slots(), 1)[0]
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	low, err := server.DropLevel(ct, evk.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}

	steps := []int{1, 0, 2}
	many, err := server.RotateMany(low, steps, evk)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range steps {
		one, err := server.Rotate(low, k, evk)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := server.SerializeCiphertext(many[i])
		b, _ := server.SerializeCiphertext(one)
		if !bytes.Equal(a, b) {
			t.Fatalf("step %d: hoisted result differs from sequential", k)
		}
	}
}

// TestDotPlain: the plaintext-weight linear layer against the clear-text
// reference.
func TestDotPlain(t *testing.T) {
	owner, device, server, evk := evalParties(t, Test)
	msg := testMsgs(device.Slots(), 1)[0]
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	low, err := server.DropLevel(ct, evk.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}

	weights := []complex128{0.5, -0.25, 0.125, 1}[:3] // non-power-of-two on purpose
	out, err := server.DotPlain(low, weights, evk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := owner.DecryptDecode(out)
	if err != nil {
		t.Fatal(err)
	}
	var want complex128
	for j, w := range weights {
		want += w * msg[j]
	}
	if e := cmplx.Abs(got[0] - want); e > 1e-3 {
		t.Fatalf("slot 0: got %v want %v (err %g)", got[0], want, e)
	}
}

// TestEvalMisuseMatrix walks the acceptance list for the key-gated
// surface: every misuse returns a typed sentinel error, never panics.
func TestEvalMisuseMatrix(t *testing.T) {
	owner, device, server, evk := evalParties(t, Test)
	msg := testMsgs(device.Slots(), 1)[0]
	full, err := device.EncodeEncrypt(msg) // full depth > evk.MaxLevel()
	if err != nil {
		t.Fatal(err)
	}
	low, err := server.DropLevel(full, evk.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}

	// Mul at level 0: structurally impossible level — typed error.
	bad := *low
	bad.Level = 0
	if _, err := server.Mul(&bad, low, evk); !errors.Is(err, ErrLevelOutOfRange) {
		t.Errorf("Mul at level 0: %v", err)
	}
	// Nil key set.
	if _, err := server.Mul(low, low, nil); !errors.Is(err, ErrEvaluationKeyMissing) {
		t.Errorf("Mul without keys: %v", err)
	}
	if _, err := server.Rotate(low, 1, nil); !errors.Is(err, ErrEvaluationKeyMissing) {
		t.Errorf("Rotate without keys: %v", err)
	}
	// Rotation by an ungenerated step.
	if _, err := server.Rotate(low, 3, evk); !errors.Is(err, ErrEvaluationKeyMissing) {
		t.Errorf("ungenerated step: %v", err)
	}
	if _, err := server.RotateMany(low, []int{1, 3}, evk); !errors.Is(err, ErrEvaluationKeyMissing) {
		t.Errorf("RotateMany ungenerated step: %v", err)
	}
	// A depth-capped set (MaxLevel 2, no conjugation key) for the
	// depth-gating and missing-conjugation cases.
	noConj, err := owner.ExportEvaluationKeys(EvalKeyConfig{MaxLevel: 2, Rotations: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	evkNoConj, err := server.ImportEvaluationKeys(noConj)
	if err != nil {
		t.Fatal(err)
	}
	// Depth beyond the exported keys (low is at level 4 > MaxLevel 2).
	if _, err := server.Mul(low, low, evkNoConj); !errors.Is(err, ErrLevelOutOfRange) {
		t.Errorf("Mul above key depth: %v", err)
	}
	if _, err := server.Rotate(low, 1, evkNoConj); !errors.Is(err, ErrLevelOutOfRange) {
		t.Errorf("Rotate above key depth: %v", err)
	}
	lvl2, err := server.DropLevel(low, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Conjugate(lvl2, evkNoConj); !errors.Is(err, ErrEvaluationKeyMissing) {
		t.Errorf("Conjugate without key: %v", err)
	}
	// InnerSum span misuse.
	for _, span := range []int{0, -4, 3, server.Slots() * 2} {
		if _, err := server.InnerSum(low, span, evk); !errors.Is(err, ErrInvalidSpan) {
			t.Errorf("InnerSum span %d: %v", span, err)
		}
	}
	// DotPlain misuse: empty and oversized weights, level-1 input.
	if _, err := server.DotPlain(low, nil, evk); !errors.Is(err, ErrInvalidSpan) {
		t.Errorf("DotPlain empty weights: %v", err)
	}
	if _, err := server.DotPlain(low, make([]complex128, server.Slots()+1), evk); !errors.Is(err, ErrMessageTooLong) {
		t.Errorf("DotPlain long weights: %v", err)
	}
	lvl1, err := server.DropLevel(low, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.DotPlain(lvl1, []complex128{1}, evk); !errors.Is(err, ErrLevelOutOfRange) {
		t.Errorf("DotPlain at level 1: %v", err)
	}
	// NTT-tagged operand into the key-gated surface.
	nttCt := *low
	c0, c1 := *low.C0, *low.C1
	c0.IsNTT, c1.IsNTT = true, true
	nttCt.C0, nttCt.C1 = &c0, &c1
	if _, err := server.Mul(&nttCt, &nttCt, evk); !errors.Is(err, ErrInvalidCiphertext) {
		t.Errorf("NTT-tagged Mul operand: %v", err)
	}
	if _, err := server.Rotate(&nttCt, 1, evk); !errors.Is(err, ErrInvalidCiphertext) {
		t.Errorf("NTT-tagged Rotate operand: %v", err)
	}
	// Level-mismatched Mul operands.
	if _, err := server.Mul(low, lvl2, evk); !errors.Is(err, ErrLevelMismatch) {
		t.Errorf("Mul level mismatch: %v", err)
	}
}

// TestEvalKeyBlobMisuse: hostile evaluation-key bytes — wrong preset,
// NTT-tagged domain byte, truncation, bit flips, wrong kind — all return
// ErrMalformedWire from both import paths.
func TestEvalKeyBlobMisuse(t *testing.T) {
	owner, _, server := threeParties(t, Test, 0xBAD, 0xE44)
	good, err := owner.ExportEvaluationKeys(EvalKeyConfig{MaxLevel: 2, Rotations: []int{1}})
	if err != nil {
		t.Fatal(err)
	}

	// From a different preset (PN13) against a Test-preset server.
	otherOwner, err := NewKeyOwner(PN13, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	otherBlob, err := otherOwner.ExportEvaluationKeys(EvalKeyConfig{MaxLevel: 1})
	if err != nil {
		t.Fatal(err)
	}

	flip := func(i int) []byte {
		d := append([]byte(nil), good...)
		d[i] ^= 0xFF
		return d
	}
	cases := map[string][]byte{
		"empty":            nil,
		"garbage":          []byte("ABCF with nothing useful behind it"),
		"different preset": otherBlob,
		"ntt-tagged":       flip(14 + 4), // domain byte in the sub-header
		"truncated":        good[:len(good)/2],
		"padded":           append(append([]byte(nil), good...), 0),
		"public key blob":  func() []byte { d, _ := owner.ExportPublicKey(); return d }(),
		"bit flip payload": flip(len(good) - 7),
	}
	for name, data := range cases {
		if _, err := server.ImportEvaluationKeys(data); !errors.Is(err, ErrMalformedWire) {
			t.Errorf("ImportEvaluationKeys(%s): %v", name, err)
		}
	}
	// The bootstrap constructor applies the same gates (a different-preset
	// blob is fine there — it builds its own params — so only structural
	// damage applies).
	for _, name := range []string{"empty", "garbage", "ntt-tagged", "truncated", "padded"} {
		if _, _, err := NewServerFromEvaluationKeys(cases[name]); !errors.Is(err, ErrMalformedWire) {
			t.Errorf("NewServerFromEvaluationKeys(%s): %v", name, err)
		}
	}
}

// TestEvalWorkerDeterminism: the key-switch hot paths (Mul, Rotate,
// InnerSum) emit byte-identical ciphertexts at any worker count — the
// same lane-determinism contract encrypt/decode honor.
func TestEvalWorkerDeterminism(t *testing.T) {
	var refs [][]byte
	for _, w := range []int{1, 2, 8} {
		owner, device, server, evk := evalParties(t, Test, WithWorkers(w))
		msgs := testMsgs(device.Slots(), 2)
		ctX, err := device.EncodeEncrypt(msgs[0])
		if err != nil {
			t.Fatal(err)
		}
		ctY, err := device.EncodeEncrypt(msgs[1])
		if err != nil {
			t.Fatal(err)
		}
		a, _ := server.DropLevel(ctX, evk.MaxLevel())
		b, _ := server.DropLevel(ctY, evk.MaxLevel())
		prod, err := server.Mul(a, b, evk)
		if err != nil {
			t.Fatal(err)
		}
		prod, err = server.Rescale(prod)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := server.InnerSum(prod, dotSpan, evk)
		if err != nil {
			t.Fatal(err)
		}
		rot, err := server.Rotate(a, 1, evk)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, ct := range []*Ciphertext{prod, sum, rot} {
			data, err := server.SerializeCiphertext(ct)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(data)
		}
		refs = append(refs, buf.Bytes())
		owner.Close()
		device.Close()
		server.Close()
	}
	if !bytes.Equal(refs[0], refs[1]) || !bytes.Equal(refs[0], refs[2]) {
		t.Fatal("key-switch outputs differ across worker counts")
	}
}

// TestEvalAllocationBudget pins the pool-backed property of the hot
// paths: a steady-state Mul or Rotate allocates only the returned
// ciphertext and O(digit-table) bookkeeping, never per-coefficient
// storage. Measured at one worker, where kernels dispatch inline — at
// higher worker counts the lane engine adds ~1 small allocation per
// kernel dispatch (the shared job), which is engine overhead, not buffer
// churn (the same accounting the encrypt/decode budgets use).
func TestEvalAllocationBudget(t *testing.T) {
	_, device, server, evk := evalParties(t, Test, WithWorkers(1))
	msg := testMsgs(device.Slots(), 1)[0]
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	low, err := server.DropLevel(ct, evk.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}

	// ~97 measured for Mul (≈25 pooled-poly wrappers, ~20 lane closures,
	// the returned pair, small bookkeeping); 128 leaves headroom without
	// letting a per-coefficient or per-digit buffer regression through
	// (one fresh digit buffer per op would add level·digits·N words).
	if n := testing.AllocsPerRun(20, func() {
		if _, err := server.Mul(low, low, evk); err != nil {
			t.Fatal(err)
		}
	}); n > 128 {
		t.Fatalf("Mul allocates %v/op, budget 128", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		if _, err := server.Rotate(low, 1, evk); err != nil {
			t.Fatal(err)
		}
	}); n > 128 {
		t.Fatalf("Rotate allocates %v/op, budget 128", n)
	}
}
