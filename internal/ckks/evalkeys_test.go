package ckks

import (
	"bytes"
	"math/cmplx"
	"strings"
	"testing"
)

func testEvalKeySet(t testing.TB, maxLevel int, steps []int, conj bool, gadget Gadget) (*EvaluationKeySet, *SecretKey, *PublicKey) {
	t.Helper()
	kg := NewKeyGenerator(testParams, testSeed())
	sk, pk := kg.GenKeyPair()
	return kg.GenEvaluationKeySet(sk, maxLevel, steps, conj, gadget), sk, pk
}

// TestEvalKeySetRoundTrip pins the wire format for both gadgets:
// marshal→unmarshal→marshal is byte-identical, the round-tripped keys are
// poly-equal to the originals (the coefficient-domain wire pass is exact),
// and generation is deterministic from the seed (canonical re-export).
func TestEvalKeySetRoundTrip(t *testing.T) {
	p := testParams
	for _, gadget := range []Gadget{GadgetBV, GadgetHybrid} {
		t.Run(gadget.String(), func(t *testing.T) {
			ks, _, _ := testEvalKeySet(t, 3, []int{1, 2, 2, -1 /* dup + negative */}, true, gadget)

			data, err := p.MarshalEvaluationKeySet(ks)
			if err != nil {
				t.Fatal(err)
			}
			if want := p.EvaluationKeyWireBytes(3, len(ks.Rot), true, gadget); len(data) != want {
				t.Fatalf("blob is %d bytes, EvaluationKeyWireBytes says %d", len(data), want)
			}

			back, err := p.UnmarshalEvaluationKeySet(data)
			if err != nil {
				t.Fatal(err)
			}
			again, err := p.MarshalEvaluationKeySet(back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, again) {
				t.Fatal("re-marshal not byte-identical")
			}

			// Deterministic regeneration: a second key set from the same
			// seed marshals identically.
			ks2, _, _ := testEvalKeySet(t, 3, []int{-1, 1, 2}, true, gadget)
			data2, err := p.MarshalEvaluationKeySet(ks2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, data2) {
				t.Fatal("evaluation-key generation is not deterministic from the seed")
			}

			// Poly-level equality of a sample: the relin key survives the
			// coefficient-domain wire pass exactly.
			if gadget == GadgetHybrid {
				rqp := p.RingQPAt(3)
				for j := range ks.Rlk.K.H0 {
					if !rqp.Equal(ks.Rlk.K.H0[j], back.Rlk.K.H0[j]) ||
						!rqp.Equal(ks.Rlk.K.H1[j], back.Rlk.K.H1[j]) {
						t.Fatal("relinearization key changed across the wire")
					}
				}
			} else {
				r := p.RingAt(3)
				for i := range ks.Rlk.K.K0 {
					for tt := range ks.Rlk.K.K0[i] {
						if !r.Equal(ks.Rlk.K.K0[i][tt], back.Rlk.K.K0[i][tt]) ||
							!r.Equal(ks.Rlk.K.K1[i][tt], back.Rlk.K.K1[i][tt]) {
							t.Fatal("relinearization key changed across the wire")
						}
					}
				}
			}
			// Geometry: steps normalized (−1 ≡ Slots−1), dup dropped, conj
			// present, gadget preserved.
			wantSteps := map[int]bool{1: true, 2: true, p.Slots() - 1: true}
			if len(back.Rot) != len(wantSteps) {
				t.Fatalf("rotation steps %v", back.Steps())
			}
			for s := range wantSteps {
				if back.Rot[s] == nil {
					t.Fatalf("missing step %d (have %v)", s, back.Steps())
				}
			}
			if back.Conj == nil || back.MaxLevel != 3 {
				t.Fatal("conjugation key or depth lost")
			}
			if back.Gadget != gadget {
				t.Fatalf("gadget %v lost across the wire (got %v)", gadget, back.Gadget)
			}
		})
	}
}

// TestHybridBlobSmallerThanBV pins the key-size win the hybrid gadget
// exists for: for the same depth and rotation set, the hybrid blob is
// strictly smaller (at the Test parameters by ~α·T/(1+α/D) ≈ 6–7×; more
// at the paper chains).
func TestHybridBlobSmallerThanBV(t *testing.T) {
	p := testParams
	d := p.MaxLevel()
	bv := p.EvaluationKeyWireBytes(d, 3, true, GadgetBV)
	hy := p.EvaluationKeyWireBytes(d, 3, true, GadgetHybrid)
	if hy >= bv {
		t.Fatalf("hybrid blob %d bytes not smaller than BV %d", hy, bv)
	}
}

// TestDepthCappedMulRelin: a relinearization key generated at a reduced
// depth multiplies correctly at every level it supports and panics above.
func TestDepthCappedMulRelin(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinearizationKeyAt(sk, 2)
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	m1 := randMsg(p, 0, 61)
	m2 := randMsg(p, 0, 62)
	ct1 := ev.DropLevel(encryptor.Encrypt(enc.Encode(m1)), 2)
	ct2 := ev.DropLevel(encryptor.Encrypt(enc.Encode(m2)), 2)

	prod := ev.Rescale(ev.MulRelin(ct1, ct2, rlk))
	got := enc.Decode(dec.Decrypt(prod))
	for i := range m1 {
		if cmplx.Abs(got[i]-m1[i]*m2[i]) > 5e-2 {
			t.Fatalf("slot %d: got %v want %v", i, got[i], m1[i]*m2[i])
		}
	}

	// Above the key's depth: loud panic at the scheme layer (the public
	// API converts this to a typed error before reaching here).
	full1 := encryptor.Encrypt(enc.Encode(m1))
	full2 := encryptor.Encrypt(enc.Encode(m2))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MulRelin above key depth must panic at the scheme layer")
		}
		if !strings.Contains(r.(string), "depth") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	ev.MulRelin(full1, full2, rlk)
}

// TestRotateHoistedMatchesSequential: the hoisted multi-rotation path is
// bit-identical to rotating one step at a time (same keys, same digits —
// the decomposition is shared, not re-derived), and decrypts to the
// rotated message.
func TestRotateHoistedMatchesSequential(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	msg := randMsg(p, 0, 63)
	ct := encryptor.Encrypt(enc.Encode(msg))

	steps := []int{1, 2, 5}
	rks := make([]*RotationKey, len(steps))
	for i, k := range steps {
		rks[i] = kg.GenRotationKey(sk, p.GaloisElement(k))
	}

	hoisted := ev.RotateHoisted(ct, rks)
	r := p.Ring()
	for i, rk := range rks {
		seq := ev.RotateGalois(ct, rk)
		if !r.Equal(seq.C0, hoisted[i].C0) || !r.Equal(seq.C1, hoisted[i].C1) {
			t.Fatalf("step %d: hoisted rotation differs from sequential", steps[i])
		}
		got := enc.Decode(dec.Decrypt(hoisted[i]))
		slots := p.Slots()
		for j := 0; j < slots; j++ {
			want := msg[(j+steps[i])%slots]
			if cmplx.Abs(got[j]-want) > 5e-2 {
				t.Fatalf("step %d slot %d: got %v want %v", steps[i], j, got[j], want)
			}
		}
	}
}

// TestEvalKeyInfoRejects drives the sub-header validation: forged domain
// byte (NTT-tagged), unknown flags, bad digit counts, out-of-range depth,
// non-ascending steps, truncations — errors, never panics.
func TestEvalKeyInfoRejects(t *testing.T) {
	p := testParams
	ks, _, _ := testEvalKeySet(t, 2, []int{1}, false, GadgetBV)
	data, err := p.MarshalEvaluationKeySet(ks)
	if err != nil {
		t.Fatal(err)
	}
	hybridKs, _, _ := testEvalKeySet(t, 2, []int{1}, false, GadgetHybrid)
	hybridData, err := p.MarshalEvaluationKeySet(hybridKs)
	if err != nil {
		t.Fatal(err)
	}
	off := keyHeaderLen()

	mut := func(i int, v byte) []byte {
		d := append([]byte(nil), data...)
		d[i] = v
		return d
	}
	mutH := func(i int, v byte) []byte {
		d := append([]byte(nil), hybridData...)
		d[i] = v
		return d
	}
	cases := map[string][]byte{
		"unknown gadget":       mut(off, 7),
		"ntt-tagged payload":   mut(off+4, 1),
		"unknown flags":        mut(off+3, 0xF0),
		"zero digits":          mut(off+1, 0),
		"huge digits":          mut(off+1, 255),
		"zero depth":           mut(off+2, 0),
		"depth > limbs":        mut(off+2, 200),
		"step zero":            mut(off+7, 0),
		"truncated":            data[:len(data)-5],
		"padded":               append(append([]byte(nil), data...), 0),
		"wrong kind":           mut(5, 'P'),
		"hybrid alpha forged":  mutH(off+1, byte(p.SpecialLimbs+1)),
		"hybrid claimed as bv": mutH(off, byte(GadgetBV)),
		"bv claimed as hybrid": mut(off, byte(GadgetHybrid)),
	}
	for name, d := range cases {
		if _, err := p.UnmarshalEvaluationKeySet(d); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// A residue pushed past its modulus: byte 10 of packed word 1 is in
	// the always-zero bits 36..43 for 36-bit residues (cf. the key-blob
	// sweep in the public tests).
	bad := mut(evalHeaderLen(1)+10, 0xFF)
	if _, err := p.UnmarshalEvaluationKeySet(bad); err == nil || !strings.Contains(err.Error(), "residue") {
		t.Errorf("oversized residue: %v", err)
	}

	// Wrong-parameter import: a Tiny-spec blob against Test parameters.
	tiny := TinyParams.MustBuild()
	kgT := NewKeyGenerator(tiny, testSeed())
	skT := kgT.GenSecretKey()
	ksT := kgT.GenEvaluationKeySet(skT, 2, []int{1}, false, GadgetBV)
	dataT, err := tiny.MarshalEvaluationKeySet(ksT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.UnmarshalEvaluationKeySet(dataT); err == nil {
		t.Error("accepted an evaluation-key blob from different parameters")
	}
}
