// Command primegen searches the ABC-FHE NTT-friendly prime family
// (Q = 2^bw + k·2^(n+1) + 1, k = ±2^a ± 2^b ± 2^c, paper Eq. 8) and prints
// the census the paper reports in §IV-A (443 primes in the 32–36 bit range
// for N = 2^16).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/primes"
)

func main() {
	minBits := flag.Int("min", 32, "minimum prime bit length")
	maxBits := flag.Int("max", 36, "maximum prime bit length")
	logN := flag.Int("logn", 16, "log2 of the polynomial degree N")
	maxTerms := flag.Int("terms", 3, "maximum signed power-of-two terms in k")
	list := flag.Bool("list", false, "list every prime with its decomposition")
	flag.Parse()

	if *minBits > *maxBits || *minBits < *logN+2 {
		fmt.Fprintln(os.Stderr, "primegen: invalid bit range")
		os.Exit(2)
	}

	total, per := primes.Census(*minBits, *maxBits, *logN, *maxTerms)
	pTotal, pPer := primes.CensusPaper(*minBits, *maxBits, *logN)
	bitLens := make([]int, 0, len(per))
	for b := range per {
		bitLens = append(bitLens, b)
	}
	sort.Ints(bitLens)

	fmt.Printf("NTT-friendly prime census (N=2^%d, k with ≤%d signed power-of-two terms)\n", *logN, *maxTerms)
	for _, b := range bitLens {
		fmt.Printf("  %2d-bit: %4d primes\n", b, per[b])
	}
	fmt.Printf("  total : %4d primes (broad census: any sign, ≤%d terms)\n", total, *maxTerms)
	fmt.Printf("strict Eq. 8 census (k<0, exactly 3 terms, feasibility condition):\n")
	for _, b := range bitLens {
		fmt.Printf("  %2d-bit: %4d primes\n", b, pPer[b])
	}
	fmt.Printf("  total : %4d primes (paper §IV-A reports 443 for 32–36 bit)\n", pTotal)

	if *list {
		for _, b := range bitLens {
			for _, f := range primes.Search(b, *logN, *maxTerms) {
				fmt.Printf("Q=%d (%d bits)  k=%d  terms=%v  NAF weight(Q)=%d\n",
					f.Q, b, f.K, f.Terms, primes.NAFWeight(f.Q))
			}
		}
	}
}
