package rns

import (
	"math/big"
	"testing"

	"repro/internal/primes"
	"repro/internal/prng"
)

// testPrimes returns distinct 36-bit NTT primes for a degree-2^10 ring —
// the same family the CKKS chains draw from.
func testPrimes(n int) []uint64 { return primes.GenerateNTTPrimes(n, 36, 10) }

// extendOracle computes the exact centered value of the source residues
// via big.Int and returns it (in (−G/2, G/2]).
func extendOracle(src []uint64, primes []uint64) *big.Int {
	b := MustBasis(primes)
	return b.CombineCentered(src)
}

// TestExtenderMatchesOracle: the fast extension equals the centered lift
// plus u·G for a single small integer u shared by every target — the
// defining property of an approximate base conversion. u is recovered
// from the first target and checked against all others and against the
// |u| ≤ α bound.
func TestExtenderMatchesOracle(t *testing.T) {
	all := testPrimes(5)
	srcPrimes := all[:2]
	dstPrimes := []uint64{all[2], all[3], all[0], all[4]} // includes a source prime

	e := MustExtender(srcPrimes, dstPrimes)
	g := new(big.Int).SetInt64(1)
	for _, q := range srcPrimes {
		g.Mul(g, new(big.Int).SetUint64(q))
	}

	const n = 512
	src := make([][]uint64, len(srcPrimes))
	for i, q := range srcPrimes {
		src[i] = make([]uint64, n)
		s := prng.NewSource(prng.SeedFromUint64s(9, uint64(i)), 7)
		s.UniformPoly(src[i], q)
	}
	dst := make([][]uint64, len(dstPrimes))
	for t := range dst {
		dst[t] = make([]uint64, n)
	}
	e.ExtendRange(src, dst, 0, n)

	limb := make([]uint64, len(srcPrimes))
	tmp := new(big.Int)
	for j := 0; j < n; j++ {
		for i := range srcPrimes {
			limb[i] = src[i][j]
		}
		x := extendOracle(limb, srcPrimes)
		// Recover the extension offset u per target: u ≡ (out − x)/G mod
		// m_t. A target that is itself a source prime divides G (no
		// inverse); there the residue must pass through exactly instead.
		var u *big.Int
		for ti, m := range dstPrimes {
			mb := new(big.Int).SetUint64(m)
			diff := new(big.Int).SetUint64(dst[ti][j])
			diff.Sub(diff, x)
			diff.Mod(diff, mb)
			gInv := new(big.Int).ModInverse(tmp.Mod(g, mb), mb)
			if gInv == nil {
				if diff.Sign() != 0 {
					t.Fatalf("coeff %d target %d: source-prime target not exact", j, ti)
				}
				continue
			}
			ui := diff.Mul(diff, gInv)
			ui.Mod(ui, mb)
			// Normalize to a small signed integer.
			half := new(big.Int).Rsh(mb, 1)
			if ui.Cmp(half) > 0 {
				ui.Sub(ui, mb)
			}
			if ui.CmpAbs(big.NewInt(int64(len(srcPrimes)+1))) > 0 {
				t.Fatalf("coeff %d target %d: offset %v exceeds α+1", j, ti, ui)
			}
			if u == nil {
				u = new(big.Int).Set(ui)
			} else if u.Cmp(ui) != 0 {
				t.Fatalf("coeff %d target %d: offset %v inconsistent with %v", j, ti, ui, u)
			}
		}
	}
}

// TestExtenderExactOnSourceLimbs: when a source prime is also a target,
// its residue passes through exactly — the property that keeps hybrid
// decomposition signal-exact on in-group limbs regardless of the float
// rounding in v.
func TestExtenderExactOnSourceLimbs(t *testing.T) {
	all := testPrimes(3)
	srcPrimes := all[:2]
	dstPrimes := all[:3]
	e := MustExtender(srcPrimes, dstPrimes)

	const n = 256
	src := make([][]uint64, len(srcPrimes))
	for i, q := range srcPrimes {
		src[i] = make([]uint64, n)
		s := prng.NewSource(prng.SeedFromUint64s(3, uint64(i)), 11)
		s.UniformPoly(src[i], q)
	}
	// Boundary values too.
	src[0][0], src[1][0] = 0, 0
	src[0][1], src[1][1] = srcPrimes[0]-1, srcPrimes[1]-1
	dst := make([][]uint64, len(dstPrimes))
	for ti := range dst {
		dst[ti] = make([]uint64, n)
	}
	e.ExtendRange(src, dst, 0, n)
	for j := 0; j < n; j++ {
		if dst[0][j] != src[0][j] || dst[1][j] != src[1][j] {
			t.Fatalf("coeff %d: source residues (%d, %d) not preserved (got %d, %d)",
				j, src[0][j], src[1][j], dst[0][j], dst[1][j])
		}
	}
}

// TestExtenderChunkInvariance: any partition of the range computes the
// same bytes (the lane-dispatch contract).
func TestExtenderChunkInvariance(t *testing.T) {
	all := testPrimes(4)
	srcPrimes := all[:2]
	dstPrimes := all[2:]
	e := MustExtender(srcPrimes, dstPrimes)
	const n = 300
	src := make([][]uint64, 2)
	for i, q := range srcPrimes {
		src[i] = make([]uint64, n)
		s := prng.NewSource(prng.SeedFromUint64s(5, uint64(i)), 13)
		s.UniformPoly(src[i], q)
	}
	whole := [][]uint64{make([]uint64, n), make([]uint64, n)}
	parts := [][]uint64{make([]uint64, n), make([]uint64, n)}
	e.ExtendRange(src, whole, 0, n)
	for lo := 0; lo < n; lo += 37 {
		hi := lo + 37
		if hi > n {
			hi = n
		}
		e.ExtendRange(src, parts, lo, hi)
	}
	for ti := range whole {
		for j := range whole[ti] {
			if whole[ti][j] != parts[ti][j] {
				t.Fatalf("target %d coeff %d differs across chunkings", ti, j)
			}
		}
	}
}

// TestReduceCombineMatchesExtend: the split kernels the fused key-switch
// pipeline uses (ReduceRange for the source half, CombineLimb per target)
// reproduce ExtendRange byte for byte — including the float64 overflow
// estimate, whose accumulation order both paths share.
func TestReduceCombineMatchesExtend(t *testing.T) {
	all := testPrimes(5)
	srcPrimes := all[:2]
	dstPrimes := []uint64{all[2], all[3], all[0], all[4]} // includes a source prime
	e := MustExtender(srcPrimes, dstPrimes)
	const n = 300
	src := make([][]uint64, len(srcPrimes))
	for i, q := range srcPrimes {
		src[i] = make([]uint64, n)
		s := prng.NewSource(prng.SeedFromUint64s(6, uint64(i)), 17)
		s.UniformPoly(src[i], q)
	}
	want := make([][]uint64, len(dstPrimes))
	got := make([][]uint64, len(dstPrimes))
	for t := range want {
		want[t] = make([]uint64, n)
		got[t] = make([]uint64, n)
	}
	e.ExtendRange(src, want, 0, n)

	y := [][]uint64{make([]uint64, n), make([]uint64, n)}
	v := make([]uint64, n)
	// Chunked reduce + per-limb combine over sub-ranges: both partitions
	// are execution details and must not show in the bytes.
	for lo := 0; lo < n; lo += 41 {
		hi := lo + 41
		if hi > n {
			hi = n
		}
		e.ReduceRange(src, y, v, lo, hi)
	}
	for ti := range got {
		for lo := 0; lo < n; lo += 53 {
			hi := lo + 53
			if hi > n {
				hi = n
			}
			e.CombineLimb(ti, y, v, got[ti], lo, hi)
		}
	}
	for ti := range want {
		for j := range want[ti] {
			if want[ti][j] != got[ti][j] {
				t.Fatalf("target %d coeff %d: split %d vs fused-path source %d",
					ti, j, want[ti][j], got[ti][j])
			}
		}
	}
}

func TestExtenderRejects(t *testing.T) {
	if _, err := NewExtender(nil, []uint64{3}); err == nil {
		t.Error("empty source accepted")
	}
	if _, err := NewExtender([]uint64{3}, nil); err == nil {
		t.Error("empty target accepted")
	}
	long := testPrimes(extendMaxSource + 1)
	if _, err := NewExtender(long, []uint64{3}); err == nil {
		t.Error("oversized source basis accepted")
	}
}
