package ntt

import "repro/internal/mod"

// OTFGen is the functional model of ABC-FHE's unified on-the-fly twiddle
// factor generator (paper §IV-B). Instead of storing all N twiddles per
// modulus (8.25 MB across the 24-limb chain at N = 2^16), the generator
// keeps a compact seed set — the tower ψ^{2^j} and its inverses — and
// reconstructs each stage's twiddle sequence with a few modular
// multiplications per value.
//
// The identity it exploits: the forward CT stage with m = 2^s groups needs
// ψ^{brev(m+i, logN)} for i = 0..m-1, and
//
//	brev(2^s + i, logN) = 2^(logN-1-s) + Σ_{b: bit b of i set} 2^(logN-1-b)
//
// so every twiddle is a product of the stage base ψ^(2^(logN-1-s)) and a
// subset of the seed tower — at most one multiplication per emitted twiddle
// when indices are walked in Gray-code order (the hardware's schedule), or
// popcount(i) multiplications in natural order (this model counts both).
type OTFGen struct {
	t *Table

	// seed towers in Montgomery form: seeds[j] = ψ^{2^j}, seedsInv[j] = ψ^{-2^j}.
	seeds    []uint64
	seedsInv []uint64

	// MulCount accumulates modular multiplications spent generating
	// twiddles (the datapath cost the paper trades against the 8.25 MB of
	// DRAM traffic).
	MulCount int
}

// NewOTFGen derives the seed towers from the table's root of unity.
func NewOTFGen(t *Table) *OTFGen {
	g := &OTFGen{t: t}
	m := t.Mod
	g.seeds = make([]uint64, t.LogN+1)
	g.seedsInv = make([]uint64, t.LogN+1)
	p, pi := t.Psi, t.PsiInv
	for j := 0; j <= t.LogN; j++ {
		g.seeds[j] = m.MForm(p)
		g.seedsInv[j] = m.MForm(pi)
		p = m.Mul(p, p)
		pi = m.Mul(pi, pi)
	}
	return g
}

// SeedBytes reports the on-chip storage the generator needs for this
// modulus: both towers at the datapath word width, plus the stage-base
// bookkeeping — this is what fills the paper's 26.4 KB "Twiddle Factor
// Seed Memory" (cf. internal/sim/memory.go for the chip-level total).
func (g *OTFGen) SeedBytes(wordBytes int) int {
	return (len(g.seeds) + len(g.seedsInv)) * wordBytes
}

// StageForward returns the twiddle sequence of forward-CT stage s
// (m = 2^s values, natural index order), generated from seeds only.
// Each value is produced by multiplying the stage base with the seeds
// selected by the bits of i; MulCount is charged accordingly.
func (g *OTFGen) StageForward(s int) []uint64 {
	t := g.t
	m := t.Mod
	mm := 1 << uint(s)
	out := make([]uint64, mm)
	base := g.seeds[t.LogN-1-s] // ψ^{2^(logN-1-s)} in M-form
	for i := 0; i < mm; i++ {
		// M-form accumulator trick: start from MForm(1)·base ... we keep
		// everything in M-form, so multiply via MRedMul which removes one
		// R factor per product.
		tw := base
		for b := 0; b < s; b++ {
			if i&(1<<uint(b)) != 0 {
				tw = m.MRedMul(tw, g.seeds[t.LogN-1-b])
				// MRedMul(x·R, y·R) = x·y·R — stays in M-form.
				g.MulCount++
			}
		}
		out[i] = tw
	}
	return out
}

// StageInverse returns the twiddle sequence of inverse-GS stage with h
// groups (h = 2^s values): ψ^{-brev(h+i, logN)} in M-form.
func (g *OTFGen) StageInverse(s int) []uint64 {
	t := g.t
	m := t.Mod
	h := 1 << uint(s)
	out := make([]uint64, h)
	base := g.seedsInv[t.LogN-1-s]
	for i := 0; i < h; i++ {
		tw := base
		for b := 0; b < s; b++ {
			if i&(1<<uint(b)) != 0 {
				tw = m.MRedMul(tw, g.seedsInv[t.LogN-1-b])
				g.MulCount++
			}
		}
		out[i] = tw
	}
	return out
}

// GrayMulsPerStage returns the number of generator multiplications stage s
// costs when indices are walked in Gray-code order (1 per transition), the
// schedule the hardware pipeline uses: 2^s - 1 transitions + the base.
func GrayMulsPerStage(s int) int {
	if s == 0 {
		return 0
	}
	return (1 << uint(s)) - 1
}

var _ = mod.Modulus{} // keep the import explicit for documentation builds
