package mod

import "fmt"

// PrimitiveRootOfUnity returns an element ψ of Z_q with exact multiplicative
// order `order`, where order must be a power of two dividing q-1.
//
// The search is deterministic: candidates g = 2, 3, 4, … are raised to
// (q-1)/order; the first result whose order is exactly `order` (verified by
// checking ψ^(order/2) = -1) is returned. For NTT moduli the density of
// generators makes this terminate after a handful of candidates.
func (m Modulus) PrimitiveRootOfUnity(order uint64) (uint64, error) {
	if order == 0 || order&(order-1) != 0 {
		return 0, fmt.Errorf("mod: order %d is not a power of two", order)
	}
	if (m.Q-1)%order != 0 {
		return 0, fmt.Errorf("mod: order %d does not divide q-1 = %d", order, m.Q-1)
	}
	if order == 1 {
		return 1, nil
	}
	exp := (m.Q - 1) / order
	for g := uint64(2); g < m.Q; g++ {
		psi := m.Pow(g, exp)
		// ψ has order dividing `order` (a power of two); the order is
		// exactly `order` iff ψ^(order/2) = -1 mod q.
		if m.Pow(psi, order/2) == m.Q-1 {
			return psi, nil
		}
	}
	return 0, fmt.Errorf("mod: no primitive %d-th root found for q=%d", order, m.Q)
}

// MinimalPrimitiveRoot returns the smallest ψ (as an integer) of exact order
// `order`. Useful to make twiddle tables reproducible across runs; the
// on-the-fly twiddle generator seeds (internal/ntt, internal/sim) are
// derived from it.
func (m Modulus) MinimalPrimitiveRoot(order uint64) (uint64, error) {
	psi, err := m.PrimitiveRootOfUnity(order)
	if err != nil {
		return 0, err
	}
	// All primitive roots are ψ^j for odd j; enumerate to find the minimum.
	// order is at most 2^17 in this repository, so the scan is cheap
	// relative to table construction, and is only run at setup time.
	minRoot := psi
	cur := psi
	psiSq := m.Mul(psi, psi)
	for j := uint64(3); j < order; j += 2 {
		cur = m.Mul(cur, psiSq)
		if cur < minRoot {
			minRoot = cur
		}
	}
	return minRoot, nil
}
