package hw

import (
	"repro/internal/modmul"
	"repro/internal/sfg"
)

// Fig. 6a: RFE area ablation. Four design points, all P=8 MDC pipelines
// sized to produce one FFT result and four NTT results per cycle group
// (the paper's fairness convention: non-reconfigurable designs carry a
// separate FFT engine next to the four NTT lanes).
//
//	① Baseline:        radix-2 NTT lanes with separate ψ pre/post banks,
//	                    vanilla Montgomery multipliers, dedicated FP55 FFT
//	                    engine (radix-2).
//	② + TF scheduling:  merged radix-2^n schedules (paper Fig. 4) shrink
//	                    the NTT lanes to P/2·logN multipliers and the FFT
//	                    engine to its radix-2^n optimum.
//	③ + MontMul optim:  NTT-friendly Montgomery multipliers (Table I).
//	④ Reconfigurable:   the FFT engine folds into the four NTT lanes
//	                    (one complex FP multiply = four modular
//	                    multipliers, paper Eq. 12), at the price of the
//	                    reconfigurability overhead per multiplier.
//
// The paper reports a combined 31% area reduction ① → ④.

// AblationPoint is one bar of Fig. 6a.
type AblationPoint struct {
	Label    string
	AreaMM2  float64
	Relative float64 // normalized to the baseline
}

type rfeVariant struct {
	nttMultsPerLane float64
	fftMults        float64 // dedicated FFT engine (0 when reconfigurable)
	mmDesign        modmul.Design
	reconfig        bool
}

func (v rfeVariant) area(cfg Config) float64 {
	mmArea := ModMultAreaMM2(v.mmDesign)
	perMult := mmArea
	adder := ModAdderAreaMM2
	if v.reconfig {
		perMult = mmArea * ReconfigOverhead
		adder = ReconfigAdderAreaMM2
	}
	lanes := float64(cfg.PNLs)
	bfPositions := float64(cfg.P / 2 * cfg.LogN) // butterfly units per lane
	fifo := SRAMAreaMM2(pnlFIFOKB(cfg)*FIFODoubleBuffer, false)
	shuffle := float64(cfg.LogN) * ShufflingAreaPerStageMM2

	a := lanes * v.nttMultsPerLane * perMult // NTT butterfly multipliers
	a += lanes * bfPositions * adder         // butterfly add/sub at every position
	a += lanes * (fifo + shuffle)            // commutators
	if v.fftMults > 0 {
		// Dedicated FFT engine: generic complex multipliers = 4 FP
		// multipliers each; FP add/sub at every butterfly position; its
		// own commutators at complex (2×) word width.
		a += v.fftMults * 4 * FPMultAreaMM2()
		a += 2 * bfPositions * FPAdderAreaMM2
		a += 2*fifo + shuffle
	}
	return a * (1 + pnlCtrlFrac)
}

// Fig6aAblation evaluates the four design points.
func Fig6aAblation(cfg Config) []AblationPoint {
	logN := cfg.LogN
	p := cfg.P

	r2NTT := sfg.Design{Kind: sfg.NTT, LogN: logN, P: p, Groups: sfg.UniformGroups(logN, 1)}
	merged := sfg.Design{Kind: sfg.NTT, LogN: logN, P: p, Merged: true}
	r2FFT := sfg.Design{Kind: sfg.FFT, LogN: logN, P: p, Groups: sfg.UniformGroups(logN, 1)}
	bestFFT := sfg.Summarize(sfg.FFT, logN, p)

	variants := []struct {
		label string
		v     rfeVariant
	}{
		{"1. Baseline (radix-2, separate FFT/NTT)", rfeVariant{
			nttMultsPerLane: r2NTT.MultiplierCount(),
			fftMults:        r2FFT.MultiplierCount(),
			mmDesign:        modmul.Montgomery,
		}},
		{"2. + TF scheduling", rfeVariant{
			nttMultsPerLane: merged.MultiplierCount(),
			fftMults:        bestFFT.MinMuls,
			mmDesign:        modmul.Montgomery,
		}},
		{"3. + MontMul optimization", rfeVariant{
			nttMultsPerLane: merged.MultiplierCount(),
			fftMults:        bestFFT.MinMuls,
			mmDesign:        modmul.FriendlyMontgomery,
		}},
		{"4. Reconfigurable (ABC-FHE)", rfeVariant{
			nttMultsPerLane: merged.MultiplierCount(),
			mmDesign:        modmul.FriendlyMontgomery,
			reconfig:        true,
		}},
	}

	out := make([]AblationPoint, len(variants))
	base := variants[0].v.area(cfg)
	for i, v := range variants {
		a := v.v.area(cfg)
		out[i] = AblationPoint{Label: v.label, AreaMM2: a, Relative: a / base}
	}
	return out
}

// TotalReduction returns 1 - final/baseline (the paper's 31%).
func TotalReduction(pts []AblationPoint) float64 {
	return 1 - pts[len(pts)-1].Relative
}
