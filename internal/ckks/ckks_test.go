package ckks

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/prng"
)

var testParams = TestParams.MustBuild()

func testSeed() [16]byte { return prng.SeedFromUint64s(0x1234, 0x5678) }

func randMsg(p *Parameters, n int, stream uint64) []complex128 {
	src := prng.NewSource(prng.SeedFromUint64s(777, 888), stream)
	if n <= 0 || n > p.Slots() {
		n = p.Slots()
	}
	msg := make([]complex128, n)
	for i := range msg {
		msg[i] = complex(src.Float64()*2-1, src.Float64()*2-1)
	}
	return msg
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := testParams
	enc := NewEncoder(p)
	msg := randMsg(p, 0, 1)
	pt := enc.Encode(msg)
	if pt.Level != p.MaxLevel() {
		t.Fatal("encode level")
	}
	got := enc.Decode(pt)
	if e := maxErr(msg, got[:len(msg)]); e > 1e-7 {
		t.Fatalf("encode/decode error %g", e)
	}
}

func TestEncodeShortMessagePadding(t *testing.T) {
	p := testParams
	enc := NewEncoder(p)
	msg := randMsg(p, 10, 2)
	pt := enc.Encode(msg)
	got := enc.Decode(pt)
	if e := maxErr(msg, got[:10]); e > 1e-7 {
		t.Fatalf("short message error %g", e)
	}
	for i := 10; i < p.Slots(); i++ {
		if cmplx.Abs(got[i]) > 1e-7 {
			t.Fatalf("padding slot %d non-zero: %v", i, got[i])
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)

	msg := randMsg(p, 0, 3)
	ct := encryptor.Encrypt(enc.Encode(msg))
	if ct.C0.IsNTT || ct.C1.IsNTT {
		t.Fatal("ciphertext must be in coefficient domain")
	}
	got := enc.Decode(dec.Decrypt(ct))
	if e := maxErr(msg, got); e > 1e-4 {
		t.Fatalf("encrypt/decrypt error %g", e)
	}
}

func TestDecryptWithWrongKeyFails(t *testing.T) {
	p := testParams
	kg1 := NewKeyGenerator(p, testSeed())
	sk1, pk1 := kg1.GenKeyPair()
	_ = sk1
	kg2 := NewKeyGenerator(p, prng.SeedFromUint64s(9999, 8888))
	sk2 := kg2.GenSecretKey()

	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk1, testSeed())
	msg := randMsg(p, 0, 4)
	ct := encryptor.Encrypt(enc.Encode(msg))
	got := enc.Decode(NewDecryptor(p, sk2).Decrypt(ct))
	if e := maxErr(msg, got); e < 1.0 {
		t.Fatalf("wrong key decrypted with error %g — security broken", e)
	}
}

func TestFreshCiphertextsDiffer(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	_, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	msg := randMsg(p, 0, 5)
	ct1 := encryptor.Encrypt(enc.Encode(msg))
	ct2 := encryptor.Encrypt(enc.Encode(msg))
	same := true
	for j := 0; j < p.N() && same; j++ {
		if ct1.C1.Coeffs[0][j] != ct2.C1.Coeffs[0][j] {
			same = false
		}
	}
	if same {
		t.Fatal("two encryptions of the same message share randomness")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	m1 := randMsg(p, 0, 6)
	m2 := randMsg(p, 0, 7)
	ct := ev.Add(encryptor.Encrypt(enc.Encode(m1)), encryptor.Encrypt(enc.Encode(m2)))
	got := enc.Decode(dec.Decrypt(ct))
	want := make([]complex128, len(m1))
	for i := range want {
		want[i] = m1[i] + m2[i]
	}
	if e := maxErr(want, got); e > 1e-4 {
		t.Fatalf("homomorphic add error %g", e)
	}
}

func TestHomomorphicSubNegate(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	m := randMsg(p, 0, 8)
	ct := encryptor.Encrypt(enc.Encode(m))
	diff := ev.Sub(ct, ct)
	got := enc.Decode(dec.Decrypt(diff))
	for i := range got {
		if cmplx.Abs(got[i]) > 1e-4 {
			t.Fatalf("ct - ct not ≈ 0 at slot %d", i)
		}
	}
	neg := ev.Negate(ct)
	sum := ev.Add(ct, neg)
	got = enc.Decode(dec.Decrypt(sum))
	for i := range got {
		if cmplx.Abs(got[i]) > 1e-4 {
			t.Fatalf("ct + (-ct) not ≈ 0 at slot %d", i)
		}
	}
}

func TestMulPlainRescale(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	m1 := randMsg(p, 0, 9)
	m2 := randMsg(p, 0, 10)
	ct := encryptor.Encrypt(enc.Encode(m1))
	prod := ev.MulPlain(ct, enc.Encode(m2))
	prod = ev.Rescale(prod)
	if prod.Level != p.MaxLevel()-1 {
		t.Fatal("rescale must consume one limb")
	}
	got := enc.Decode(dec.Decrypt(prod))
	want := make([]complex128, len(m1))
	for i := range want {
		want[i] = m1[i] * m2[i]
	}
	// Rescale noise floor: Δ drops to 2^60/2^36 = 2^24, and the rounding
	// error (~(1+HW)/2 per coefficient) lands at ≈2e-4 in slot space.
	if e := maxErr(want, got); e > 1e-3 {
		t.Fatalf("plaintext multiply error %g", e)
	}
}

func TestMulConst(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	m := randMsg(p, 0, 11)
	ct := ev.MulConst(encryptor.Encrypt(enc.Encode(m)), -2.5)
	got := enc.Decode(dec.Decrypt(ct))
	for i := range got {
		if cmplx.Abs(got[i]-(-2.5)*m[i]) > 1e-4 {
			t.Fatalf("MulConst error at %d: %v vs %v", i, got[i], -2.5*m[i])
		}
	}
}

func TestDropLevelDecrypts(t *testing.T) {
	// The paper's client receives 2-limb ciphertexts from the server
	// (§V-B). Dropping a full-depth ciphertext to 2 limbs must still
	// decrypt correctly.
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	msg := randMsg(p, 0, 12)
	ct := encryptor.Encrypt(enc.Encode(msg))
	low := ev.DropLevel(ct, 2)
	if low.Level != 2 {
		t.Fatal("drop level")
	}
	got := enc.Decode(dec.Decrypt(low))
	if e := maxErr(msg, got); e > 1e-4 {
		t.Fatalf("2-limb decrypt error %g", e)
	}
}

func TestKeyDeterminism(t *testing.T) {
	p := testParams
	a := NewKeyGenerator(p, testSeed()).GenSecretKey()
	b := NewKeyGenerator(p, testSeed()).GenSecretKey()
	if !p.Ring().Equal(a.S, b.S) {
		t.Fatal("same seed must derive the same secret key")
	}
}

func TestSecretKeyHammingWeight(t *testing.T) {
	p := testParams
	sk := NewKeyGenerator(p, testSeed()).GenSecretKey()
	s := p.Ring().CopyPoly(sk.S)
	p.Ring().INTT(s)
	nonzero := 0
	for j := 0; j < p.N(); j++ {
		v := p.Ring().Basis.Moduli[0].Centered(s.Coeffs[0][j])
		switch v {
		case -1, 0, 1:
			if v != 0 {
				nonzero++
			}
		default:
			t.Fatalf("secret coefficient %d not ternary", v)
		}
	}
	if nonzero != p.HW {
		t.Fatalf("secret Hamming weight %d, want %d", nonzero, p.HW)
	}
}

func TestParamSpecValidation(t *testing.T) {
	if _, err := (ParamSpec{LogN: 2, LimbBits: 36, Limbs: 2, LogScale: 30}).Build(); err == nil {
		t.Fatal("logN=2 must be rejected")
	}
	if _, err := (ParamSpec{LogN: 10, LimbBits: 30, Limbs: 2, LogScale: 60}).Build(); err == nil {
		t.Fatal("scale above 2-limb modulus must be rejected")
	}
	if _, err := (ParamSpec{LogN: 10, LimbBits: 36, Limbs: 0, LogScale: 30}).Build(); err == nil {
		t.Fatal("zero limbs must be rejected")
	}
}

func TestNoiseGrowthBounded(t *testing.T) {
	// Fresh-encryption noise at Δ = 2^30, N = 2^10: coefficient noise
	// ‖e·u + e0 + e1·s‖ ≈ σ√(2N/3) + σ√HW ≈ 10^2, and the un-normalized
	// decode FFT multiplies by √N — max slot error ≈ 10^-5, ≈ 16 bits.
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	msg := randMsg(p, 0, 13)
	got := enc.Decode(dec.Decrypt(encryptor.Encrypt(enc.Encode(msg))))
	e := maxErr(msg, got)
	if prec := -math.Log2(e); prec < 15 {
		t.Fatalf("fresh-encryption precision %.1f bits < 15", prec)
	}
}

func BenchmarkEncode(b *testing.B) {
	p := testParams
	enc := NewEncoder(p)
	msg := randMsg(p, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(msg)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	_, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	pt := enc.Encode(randMsg(p, 0, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encryptor.Encrypt(pt)
	}
}

func BenchmarkDecryptDecode(b *testing.B) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ct := encryptor.Encrypt(enc.Encode(randMsg(p, 0, 1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Decode(dec.Decrypt(ct))
	}
}

func TestMeasurePrecision(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)

	msg := randMsg(p, 0, 51)
	got := enc.Decode(dec.Decrypt(encryptor.Encrypt(enc.Encode(msg))))
	s := MeasurePrecision(msg, got)
	if s.Slots != len(msg) {
		t.Fatal("slot count")
	}
	if s.MeanBits < 15 || s.MeanBits > 60 {
		t.Fatalf("mean precision %.1f bits implausible", s.MeanBits)
	}
	if s.WorstBits > s.MeanBits {
		t.Fatal("worst-case bits cannot exceed mean bits")
	}
	// Identical vectors hit the ceiling, not +Inf.
	ident := MeasurePrecision(msg, msg)
	if ident.MeanBits != 60 || ident.WorstBits != 60 {
		t.Fatalf("identical vectors should clamp at the ceiling: %+v", ident)
	}
}

func TestNoiseBudget(t *testing.T) {
	p := testParams
	fresh := p.EstimateNoiseBudget(p.MaxLevel(), 0, 0)
	if !fresh.Decryptable() {
		t.Fatal("fresh full-depth ciphertext must be decryptable")
	}
	// Budget shrinks with level and with multiplications.
	low := p.EstimateNoiseBudget(2, 0, 0)
	if low.HeadroomBits >= fresh.HeadroomBits {
		t.Fatal("fewer limbs must mean less headroom")
	}
	mul := p.EstimateNoiseBudget(p.MaxLevel(), 1, 0)
	if mul.HeadroomBits >= fresh.HeadroomBits {
		t.Fatal("a plaintext multiplication must consume headroom")
	}
	// At 2 limbs (Q ≈ 2^72, Δ = 2^30) one more pt-mult still fits; two do not.
	two := p.EstimateNoiseBudget(2, 2, 0)
	if two.Decryptable() {
		t.Fatalf("two pt-mults at 2 limbs should exhaust 72-bit headroom: %+v", two)
	}
}
