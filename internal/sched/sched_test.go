package sched

import (
	"math"
	"testing"
)

// The headline reproduction: Fig. 2b's operation counts.
func TestFig2bPaperNumbers(t *testing.T) {
	rows := Fig2(16, 24, 2)
	enc, dec := rows[0], rows[1]

	// Paper: 27.0 MOPs for 12-level (24-limb) encoding+encryption.
	if math.Abs(enc.MOPs-27.0) > 0.2 {
		t.Fatalf("encode+encrypt = %.2f MOPs, paper says 27.0", enc.MOPs)
	}
	// Paper: 2.9 MOPs for 1-level (2-limb) decoding+decryption.
	if math.Abs(dec.MOPs-2.9) > 0.1 {
		t.Fatalf("decode+decrypt = %.2f MOPs, paper says 2.9", dec.MOPs)
	}
	// "nearly ten times greater" (§II-D).
	ratio := enc.MOPs / dec.MOPs
	if ratio < 8.5 || ratio > 10.5 {
		t.Fatalf("enc/dec op imbalance %.1f, paper says ≈10x", ratio)
	}
}

func TestOpCountStructure(t *testing.T) {
	enc := EncodeEncryptOps(16, 24)
	// 2 transform passes per limb.
	if enc.TransformPasses != 48 {
		t.Fatalf("enc transform passes = %d, want 48", enc.TransformPasses)
	}
	// NTT dominates: >90% of the paper-comparable ops (Fig. 2b's bars are
	// almost entirely I/NTT for encryption).
	if enc.NTTOps/(enc.NTTOps+enc.FFTOps+enc.Others) < 0.90 {
		t.Fatal("NTT share of encode+encrypt too low")
	}

	dec := DecodeDecryptOps(16, 2)
	if dec.TransformPasses != 4 {
		t.Fatalf("dec transform passes = %d, want 4", dec.TransformPasses)
	}
	// Decode has a visibly larger FFT share (fewer limbs to transform).
	encFFTShare := enc.FFTOps / enc.Total()
	decFFTShare := dec.FFTOps / dec.Total()
	if decFFTShare <= encFFTShare {
		t.Fatal("decode should have a larger FFT share than encode")
	}
}

func TestOpsScaleWithLimbs(t *testing.T) {
	a := EncodeEncryptOps(16, 12)
	b := EncodeEncryptOps(16, 24)
	// NTT and element-wise work double; FFT does not change.
	if math.Abs(b.NTTOps/a.NTTOps-2) > 1e-9 {
		t.Fatal("NTT ops must scale linearly with limbs")
	}
	if a.FFTOps != b.FFTOps {
		t.Fatal("FFT ops must not depend on limbs")
	}
}

func TestRSCModes(t *testing.T) {
	for _, tc := range []struct {
		m        RSCMode
		enc, dec int
	}{
		{ModeDualEncrypt, 2, 0},
		{ModeDualDecrypt, 0, 2},
		{ModeEncryptDecrypt, 1, 1},
	} {
		e, d := tc.m.CoresFor()
		if e != tc.enc || d != tc.dec {
			t.Fatalf("%v: cores (%d,%d), want (%d,%d)", tc.m, e, d, tc.enc, tc.dec)
		}
		if tc.m.String() == "" {
			t.Fatal("mode must have a name")
		}
	}
}
