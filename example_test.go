package abcfhe_test

// Runnable godoc examples for the three deployment roles. Each party
// could live on its own machine — everything they exchange is bytes.

import (
	"errors"
	"fmt"
	"log"

	abcfhe "repro"
)

// The full three-party flow: the key owner exports a public key, a fleet
// device encrypts with it, the keyless server evaluates, and the owner
// decrypts the reply.
func Example() {
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	pkBytes, _ := owner.ExportPublicKey() // → ship to devices

	device, err := abcfhe.NewEncryptor(pkBytes, 100, 200) // device's own seed
	if err != nil {
		log.Fatal(err)
	}
	ct, err := device.EncodeEncrypt([]complex128{0.5, -0.25})
	if err != nil {
		log.Fatal(err)
	}
	upload, _ := device.SerializeCiphertext(ct) // → ship to the server

	server, err := abcfhe.NewServer(abcfhe.Test)
	if err != nil {
		log.Fatal(err)
	}
	recv, _ := server.DeserializeCiphertext(upload)
	tripled, err := server.MulConst(recv, 3)
	if err != nil {
		log.Fatal(err)
	}
	reply, _ := server.SerializeCiphertext(tripled) // → ship back

	back, _ := owner.DeserializeCiphertext(reply)
	slots, err := owner.DecryptDecode(back)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 * 0.50 = %.2f\n", real(slots[0]))
	fmt.Printf("3 * -0.25 = %.2f\n", real(slots[1]))
	// Output:
	// 3 * 0.50 = 1.50
	// 3 * -0.25 = -0.75
}

// The KeyOwner role: generate keys, export the secret blob, and rebuild
// the owner on another machine from nothing but those bytes — including
// the byte-identical regenerated public key.
func ExampleKeyOwner() {
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 7, 8)
	if err != nil {
		log.Fatal(err)
	}
	skBytes, _ := owner.ExportSecretKey() // secret material — escrow safely
	pkBytes, _ := owner.ExportPublicKey()

	imported, err := abcfhe.NewKeyOwnerFromSecretKey(skBytes)
	if err != nil {
		log.Fatal(err)
	}
	pkAgain, _ := imported.ExportPublicKey()
	fmt.Println("public key regenerated identically:", string(pkBytes[:4]) == string(pkAgain[:4]) && len(pkBytes) == len(pkAgain))

	// The imported owner decrypts what the original owner's fleet encrypts.
	device, _ := abcfhe.NewEncryptor(pkBytes, 300, 400)
	ct, _ := device.EncodeEncrypt([]complex128{0.125})
	slots, err := imported.DecryptDecode(ct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decrypted %.3f\n", real(slots[0]))
	// Output:
	// public key regenerated identically: true
	// decrypted 0.125
}

// The Encryptor role: a resource-constrained device bootstrapped from a
// marshaled public key alone — it never holds secret material.
func ExampleEncryptor() {
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 5, 6)
	if err != nil {
		log.Fatal(err)
	}
	pkBytes, _ := owner.ExportPublicKey()

	device, err := abcfhe.NewEncryptor(pkBytes, 11, 12, abcfhe.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	defer device.Close()

	cts, err := device.EncodeEncryptBatch([][]complex128{{0.5}, {-0.5}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encrypted %d messages at depth %d\n", len(cts), cts[0].Level)

	// Misuse returns typed errors, never panics.
	_, err = device.EncodeEncrypt(make([]complex128, device.Slots()+1))
	fmt.Println(err)
	// Output:
	// encrypted 2 messages at depth 4
	// abcfhe: message longer than slot count: 513 values, 512 slots
}

// Ciphertext × ciphertext multiplication: the KeyOwner exports an
// evaluation-key blob; the keyless Server imports it and multiplies two
// encrypted vectors slot-wise with relinearization, rescaling afterwards.
func ExampleServer_Mul() {
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 21, 22)
	if err != nil {
		log.Fatal(err)
	}
	pkBytes, _ := owner.ExportPublicKey()
	evkBytes, err := owner.ExportEvaluationKeys(abcfhe.EvalKeyConfig{MaxLevel: 4})
	if err != nil {
		log.Fatal(err)
	}

	device, _ := abcfhe.NewEncryptor(pkBytes, 23, 24)
	ctX, _ := device.EncodeEncrypt([]complex128{0.5, -0.25})
	ctY, _ := device.EncodeEncrypt([]complex128{0.5, 2})

	// The server needs nothing but the blob: the parameter spec is
	// embedded, so it can bootstrap and import in one call.
	server, evk, err := abcfhe.NewServerFromEvaluationKeys(evkBytes)
	if err != nil {
		log.Fatal(err)
	}
	prod, err := server.Mul(ctX, ctY, evk)
	if err != nil {
		log.Fatal(err)
	}
	prod, _ = server.Rescale(prod) // product scale Δ² → back near Δ

	slots, _ := owner.DecryptDecode(prod)
	fmt.Printf("0.50 * 0.50 = %.3f\n", real(slots[0]))
	fmt.Printf("-0.25 * 2.00 = %.3f\n", real(slots[1]))
	// Output:
	// 0.50 * 0.50 = 0.250
	// -0.25 * 2.00 = -0.500
}

// Slot rotation: the evaluation-key set carries keys for the exported
// steps only; Rotate moves slot i+k into slot i.
func ExampleServer_Rotate() {
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 31, 32)
	if err != nil {
		log.Fatal(err)
	}
	pkBytes, _ := owner.ExportPublicKey()
	evkBytes, err := owner.ExportEvaluationKeys(abcfhe.EvalKeyConfig{
		MaxLevel:  4,
		Rotations: []int{1},
	})
	if err != nil {
		log.Fatal(err)
	}

	device, _ := abcfhe.NewEncryptor(pkBytes, 33, 34)
	ct, _ := device.EncodeEncrypt([]complex128{1, 2, 3, 4})

	server, evk, err := abcfhe.NewServerFromEvaluationKeys(evkBytes)
	if err != nil {
		log.Fatal(err)
	}
	rot, err := server.Rotate(ct, 1, evk)
	if err != nil {
		log.Fatal(err)
	}
	slots, _ := owner.DecryptDecode(rot)
	fmt.Printf("first slots after rotating by 1: %.0f %.0f %.0f\n",
		real(slots[0]), real(slots[1]), real(slots[2]))

	// A step that was never exported is a typed error, not a panic.
	_, err = server.Rotate(ct, 7, evk)
	fmt.Println("step 7:", errors.Is(err, abcfhe.ErrEvaluationKeyMissing))
	// Output:
	// first slots after rotating by 1: 2 3 4
	// step 7: true
}

// Exporting evaluation keys: the owner chooses the depth cap and rotation
// steps (the BV gadget is quadratic in depth — export only what the
// server's circuit needs), and the blob is self-describing.
func ExampleKeyOwner_ExportEvaluationKeys() {
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 41, 42)
	if err != nil {
		log.Fatal(err)
	}
	evkBytes, err := owner.ExportEvaluationKeys(abcfhe.EvalKeyConfig{
		MaxLevel:  2,
		Rotations: abcfhe.InnerSumRotations(4), // ladder for InnerSum over 4 slots
		Conjugate: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	server, evk, err := abcfhe.NewServerFromEvaluationKeys(evkBytes)
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	fmt.Println("depth cap:", evk.MaxLevel())
	fmt.Println("rotation steps:", evk.RotationSteps())
	fmt.Println("conjugation key:", evk.HasConjugate())
	// Output:
	// depth cap: 2
	// rotation steps: [1 2]
	// conjugation key: true
}

// The Server role: keyless — it expands seeded compressed uploads and
// evaluates without ever touching key material.
func ExampleServer() {
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 9, 10)
	if err != nil {
		log.Fatal(err)
	}
	server, err := abcfhe.NewServer(abcfhe.Test)
	if err != nil {
		log.Fatal(err)
	}

	// The owner's seeded upload is about half the bytes of a full
	// ciphertext; the server regenerates the other half from the seed.
	compressed, err := owner.EncodeEncryptCompressed([]complex128{0.25})
	if err != nil {
		log.Fatal(err)
	}
	full, _ := server.CiphertextWireBytes(server.MaxLevel())
	fmt.Printf("compressed upload is %d%% of a full ciphertext\n", 100*len(compressed)/full)

	ct, err := server.ExpandCompressedUpload(compressed)
	if err != nil {
		log.Fatal(err)
	}
	low, err := server.DropLevel(ct, 2) // the 2-limb return state (§V-B)
	if err != nil {
		log.Fatal(err)
	}
	slots, err := owner.DecryptDecode(low)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decrypted %.2f\n", real(slots[0]))
	// Output:
	// compressed upload is 50% of a full ciphertext
	// decrypted 0.25
}
