package bench

import (
	"strings"
	"testing"
)

func TestAllExperimentsRunFast(t *testing.T) {
	for _, id := range IDs() {
		r, err := Run(id, Options{Fast: true})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if r.ID != id {
			t.Fatalf("%s: result carries ID %q", id, r.ID)
		}
		if len(r.Rows) == 0 {
			t.Fatalf("%s: no rows", id)
		}
		for _, row := range r.Rows {
			if len(row) != len(r.Header) {
				t.Fatalf("%s: row width %d != header width %d", id, len(row), len(r.Header))
			}
		}
		out := r.Render()
		if !strings.Contains(out, r.Title) {
			t.Fatalf("%s: render missing title", id)
		}
		csv := r.CSV()
		if strings.Count(csv, "\n") != len(r.Rows)+1 {
			t.Fatalf("%s: CSV line count wrong", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestIDsComplete(t *testing.T) {
	want := []string{"archsweep", "decode", "fig1", "fig2", "fig3c", "fig4",
		"fig5a", "fig5b", "fig6a", "fig6b", "memclaim", "primes", "seeded",
		"swlanes", "table1", "table2"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("experiment list %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("experiment list %v, want %v", got, want)
		}
	}
}
