package rns

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/primes"
)

func smallBasis() *Basis { return MustBasis([]uint64{97, 193, 257}) }
func paperBasis() *Basis { return MustBasis(primes.GenerateNTTPrimes(24, 36, 16)) }

func TestBasisConstants(t *testing.T) {
	b := smallBasis()
	wantQ := big.NewInt(97 * 193 * 257)
	if b.Q.Cmp(wantQ) != 0 {
		t.Fatalf("Q = %v want %v", b.Q, wantQ)
	}
	if b.K() != 3 {
		t.Fatal("limb count")
	}
	// CRT identity: Σ qiHat·qiHatInv ≡ 1 mod Q.
	acc := new(big.Int)
	for i := range b.Moduli {
		term := new(big.Int).SetUint64(b.qiHatInv[i])
		term.Mul(term, b.qiHat[i])
		acc.Add(acc, term)
	}
	acc.Mod(acc, b.Q)
	if acc.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("CRT identity violated: %v", acc)
	}
}

func TestExpandCombineInt64(t *testing.T) {
	b := smallBasis()
	limbs := make([]uint64, b.K())
	for _, v := range []int64{0, 1, -1, 42, -42, 1000000, -999983, 2405216, -2405216} {
		b.ExpandInt64(v, limbs)
		got := b.CombineCentered(limbs)
		if got.Int64() != v {
			t.Fatalf("round trip %d → %v", v, got)
		}
	}
}

func TestExpandCombineBig(t *testing.T) {
	b := paperBasis()
	limbs := make([]uint64, b.K())
	rng := rand.New(rand.NewSource(1))
	// Values up to ~Q/4 in magnitude (double-scale coefficients ≈ 2^72·m
	// easily fit the 24-limb 36-bit basis of ~2^864).
	for i := 0; i < 50; i++ {
		v := new(big.Int).Rand(rng, new(big.Int).Rsh(b.Q, 2))
		if i%2 == 1 {
			v.Neg(v)
		}
		b.ExpandBig(v, limbs)
		got := b.CombineCentered(limbs)
		if got.Cmp(v) != 0 {
			t.Fatalf("big round trip failed: %v → %v", v, got)
		}
	}
}

func TestCenteredRange(t *testing.T) {
	b := smallBasis()
	limbs := make([]uint64, b.K())
	rng := rand.New(rand.NewSource(2))
	half := new(big.Int).Rsh(b.Q, 1)
	negHalf := new(big.Int).Neg(half)
	for i := 0; i < 500; i++ {
		for j, m := range b.Moduli {
			limbs[j] = rng.Uint64() % m.Q
		}
		v := b.CombineCentered(limbs)
		if v.Cmp(half) > 0 || v.Cmp(negHalf) < 0 {
			t.Fatalf("centered value %v outside (-Q/2, Q/2]", v)
		}
		// And it must reduce back to the same residues.
		back := make([]uint64, b.K())
		b.ExpandBig(v, back)
		for j := range limbs {
			if back[j] != limbs[j] {
				t.Fatalf("residue %d mismatch after reconstruct", j)
			}
		}
	}
}

// Property: expansion is a ring homomorphism — limbs of (x+y) equal
// limb-wise sums.
func TestExpandHomomorphismQuick(t *testing.T) {
	b := smallBasis()
	f := func(x, y int32) bool {
		lx := make([]uint64, b.K())
		ly := make([]uint64, b.K())
		ls := make([]uint64, b.K())
		b.ExpandInt64(int64(x), lx)
		b.ExpandInt64(int64(y), ly)
		b.ExpandInt64(int64(x)+int64(y), ls)
		for i, m := range b.Moduli {
			if m.Add(lx[i], ly[i]) != ls[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSubBasis(t *testing.T) {
	b := paperBasis()
	s := b.Sub(2)
	if s.K() != 2 {
		t.Fatal("sub-basis size")
	}
	if s.Primes()[0] != b.Primes()[0] || s.Primes()[1] != b.Primes()[1] {
		t.Fatal("sub-basis must be a prefix")
	}
	// A value small enough for the sub-basis round-trips through it.
	limbs := make([]uint64, 2)
	v := big.NewInt(1 << 40)
	s.ExpandBig(v, limbs)
	if s.CombineCentered(limbs).Cmp(v) != 0 {
		t.Fatal("sub-basis round trip failed")
	}
}

func TestCombineCenteredFloat(t *testing.T) {
	b := smallBasis()
	limbs := make([]uint64, b.K())
	b.ExpandInt64(123456, limbs)
	got := b.CombineCenteredFloat(limbs, 1024.0)
	want := 123456.0 / 1024.0
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("float combine %v want %v", got, want)
	}
}

func TestNewBasisErrors(t *testing.T) {
	if _, err := NewBasis(nil); err == nil {
		t.Fatal("empty basis must error")
	}
	if _, err := NewBasis([]uint64{97, 97}); err == nil {
		t.Fatal("duplicate modulus must error")
	}
}

func BenchmarkCombineCentered24(b *testing.B) {
	basis := paperBasis()
	limbs := make([]uint64, basis.K())
	basis.ExpandInt64(1234567891011, limbs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis.CombineCentered(limbs)
	}
}

func BenchmarkExpandBig24(b *testing.B) {
	basis := paperBasis()
	limbs := make([]uint64, basis.K())
	v := new(big.Int).Lsh(big.NewInt(987654321), 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis.ExpandBig(v, limbs)
	}
}
