package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// deepTestParams is a small-ring, deep-chain spec for exercising the full
// BSGS recursion (giants, splits, baby-ladder scale alignment) cheaply:
// TestParams' geometry with 12 limbs instead of 4.
var deepTestParams = ParamSpec{LogN: 10, LimbBits: 36, Limbs: 12, LogScale: 30, HW: 64, SpecialLimbs: 2}.MustBuild()

// hornerMono evaluates the monomial-coefficient polynomial at z.
func hornerMono(mono []complex128, z complex128) complex128 {
	acc := complex(0, 0)
	for i := len(mono) - 1; i >= 0; i-- {
		acc = acc*z + mono[i]
	}
	return acc
}

// chebEval evaluates Chebyshev-basis coefficients over [lo, hi] at z via
// the three-term recurrence.
func chebEval(cheb []complex128, lo, hi float64, z complex128) complex128 {
	u := (2*z - complex(hi+lo, 0)) / complex(hi-lo, 0)
	tPrev, tCur := complex(1, 0), u
	acc := cheb[0]
	for i := 1; i < len(cheb); i++ {
		acc += cheb[i] * tCur
		tPrev, tCur = tCur, 2*u*tCur-tPrev
	}
	return acc
}

// TestChebyshevCoeffsMatchHorner: the monomial→Chebyshev conversion must
// represent the same polynomial, on and off the interval.
func TestChebyshevCoeffsMatchHorner(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, tc := range []struct {
		deg    int
		lo, hi float64
	}{
		{1, -1, 1}, {2, -1, 1}, {5, -3, 7}, {15, -8, 8}, {31, 0.5, 2.5},
	} {
		mono := make([]complex128, tc.deg+1)
		for i := range mono {
			mono[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		mono[tc.deg] += 1 // keep the top coefficient away from zero
		cheb := ChebyshevCoeffs(mono, tc.lo, tc.hi)
		if len(cheb) != len(mono) {
			t.Fatalf("deg %d: got %d Chebyshev coefficients", tc.deg, len(cheb))
		}
		// Both bases cancel catastrophically on wide intervals at high
		// degree, so compare relative to the coefficient mass rather
		// than the pointwise value.
		mass := 0.0
		for _, cf := range cheb {
			mass += cmplx.Abs(cf)
		}
		for s := 0; s < 25; s++ {
			x := tc.lo + (tc.hi-tc.lo)*rng.Float64()
			z := complex(x, (rng.Float64()-0.5)/4)
			want := hornerMono(mono, z)
			got := chebEval(cheb, tc.lo, tc.hi, z)
			if cmplx.Abs(want-got) > 1e-11*(1+mass) {
				t.Fatalf("deg %d on [%g,%g] at %v: cheb %v vs horner %v", tc.deg, tc.lo, tc.hi, z, got, want)
			}
		}
	}
}

// TestChebSplitIdentity: p = q·T_gs + rem must hold for every giant the
// schedule can pick.
func TestChebSplitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, tc := range []struct{ deg, gs int }{
		{15, 8}, {11, 8}, {7, 4}, {5, 4}, {3, 2}, {4, 4}, {8, 8},
	} {
		c := make([]complex128, tc.deg+1)
		for i := range c {
			c[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		c[tc.deg] += 1
		q, rem := chebSplit(c, tc.gs)
		if len(q) != tc.deg-tc.gs+1 || len(rem) != tc.gs {
			t.Fatalf("deg %d gs %d: q/rem lengths %d/%d", tc.deg, tc.gs, len(q), len(rem))
		}
		for s := 0; s < 20; s++ {
			u := complex(rng.Float64()*2-1, 0)
			tgs := cmplx.Cos(complex(float64(tc.gs), 0) * cmplx.Acos(u))
			want := chebEval(c, -1, 1, u)
			got := chebEval(q, -1, 1, u)*tgs + chebEval(rem, -1, 1, u)
			if cmplx.Abs(want-got) > 1e-9*(1+cmplx.Abs(want)) {
				t.Fatalf("deg %d gs %d: split identity off by %g", tc.deg, tc.gs, cmplx.Abs(want-got))
			}
		}
	}
}

// TestEvalPolySchedule pins the baby/giant split and the depth floors on
// hand-checked degrees.
func TestEvalPolySchedule(t *testing.T) {
	cases := []struct{ deg, g, k, levels int }{
		{1, 2, 0, 2}, // normalization + leaf
		{2, 2, 1, 3}, // + one giant product
		{3, 2, 1, 3},
		{7, 4, 1, 5}, // baby ladder T_2,T_3 adds ⌈log2 3⌉ = 2
		{15, 4, 2, 6},
		{31, 8, 2, 7},
	}
	for _, tc := range cases {
		g := preferredBabySpan(tc.deg)
		if g != tc.g {
			t.Fatalf("deg %d: preferred baby span %d, want %d", tc.deg, g, tc.g)
		}
		k, levels := babyGiantLevels(tc.deg, g)
		if k != tc.k || levels != tc.levels {
			t.Fatalf("deg %d (g=%d): k=%d levels=%d, want k=%d levels=%d", tc.deg, g, k, levels, tc.k, tc.levels)
		}
		if d := EvalPolyDepth(tc.deg, 2); d != 2*tc.levels {
			t.Fatalf("deg %d: EvalPolyDepth(·,2) = %d, want %d", tc.deg, d, 2*tc.levels)
		}
		if m := EvalPolyMinLevel(tc.deg, 1); m != tc.levels+2 {
			t.Fatalf("deg %d: EvalPolyMinLevel(·,1) = %d, want %d", tc.deg, m, tc.levels+2)
		}
	}

	// A level too shallow for the preferred span forces the narrower
	// depth-optimal baby block instead of failing: degree 7 at r=2 needs
	// 13 limbs preferred (g=4) but fits 11 with g=2.
	p := PN13.MustBuild() // 12 limbs, r=2
	plan := p.NewEvalPolyPlan(make7(), -1, 1, 0)
	if plan.BabySpan() != 2 {
		t.Fatalf("PN13 degree-7 plan picked baby span %d, want fallback 2", plan.BabySpan())
	}
	if plan.Level() != 11 || plan.Depth() != 8 {
		t.Fatalf("PN13 degree-7 plan level/depth %d/%d, want 11/8", plan.Level(), plan.Depth())
	}
}

func make7() []complex128 {
	mono := make([]complex128, 8)
	for i := range mono {
		mono[i] = complex(1/float64(i+1), 0)
	}
	return mono
}

// TestConstPlainEncodesEverySlot: the single-coefficient constant encoding
// must decode to v in every slot, real and imaginary parts both.
func TestConstPlainEncodesEverySlot(t *testing.T) {
	p := testParams
	enc := NewEncoder(p)
	ev := NewEvaluator(p)
	for _, v := range []complex128{1, -1, 0.375, complex(0.25, -0.625), complex(0, 1)} {
		pt := ev.constPlain(v, p.MaxLevel(), math.Exp2(40))
		got := enc.Decode(pt)
		for i, z := range got {
			if cmplx.Abs(z-v) > 1e-9 {
				t.Fatalf("constPlain(%v): slot %d decodes to %v", v, i, z)
			}
		}
	}
}

// TestEvalPolyDeepRecursion runs the full homomorphic evaluation against
// the Horner oracle on a deep small-ring parameter set, covering every
// structural branch: leaf-only (deg 1), single giant (deg 3), baby
// ladder with scale alignment (deg 7), and the two-doubling giant chain
// with recursive splits (deg 15).
func TestEvalPolyDeepRecursion(t *testing.T) {
	p := deepTestParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)
	rng := rand.New(rand.NewSource(47))

	for _, tc := range []struct {
		deg    int
		lo, hi float64
	}{
		{1, -1, 1}, {3, -1, 1}, {7, -2, 2}, {15, -1, 3},
	} {
		mono := make([]complex128, tc.deg+1)
		for i := range mono {
			mono[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		mono[tc.deg] += 1
		plan := p.NewEvalPolyPlan(mono, tc.lo, tc.hi, 0)
		ks := kg.GenEvaluationKeySet(sk, plan.KeyLevel(), nil, false, GadgetHybrid)

		msg := make([]complex128, p.Slots())
		for i := range msg {
			msg[i] = complex(tc.lo+(tc.hi-tc.lo)*rng.Float64(), 0)
		}
		ct := encryptor.Encrypt(enc.Encode(msg))
		if ct.Level > plan.Level() {
			ct = ev.DropLevel(ct, plan.Level())
		}
		out := ev.EvalPoly(ct, plan, ks.Rlk)
		if out.Level != plan.Level()-plan.Depth() {
			t.Fatalf("deg %d: output level %d, want %d", tc.deg, out.Level, plan.Level()-plan.Depth())
		}
		w := math.Exp2(float64(p.RescalesPerLevel() * p.LimbBits))
		if math.Abs(out.Scale-w) > w*1e-9 {
			t.Fatalf("deg %d: output scale %g, want ≈%g", tc.deg, out.Scale, w)
		}
		got := enc.Decode(dec.Decrypt(out))
		worst := 0.0
		for i := range msg {
			if d := cmplx.Abs(got[i] - hornerMono(mono, msg[i])); d > worst {
				worst = d
			}
		}
		// The error floor is the fresh-encryption noise at this spec's
		// 2^30 encoding scale, amplified by the coefficient mass.
		mass := 0.0
		for _, cf := range plan.cheb {
			mass += cmplx.Abs(cf)
		}
		if tol := 1e-4 * (1 + mass); worst > tol {
			t.Fatalf("deg %d on [%g,%g]: worst-slot error %g (tol %g)", tc.deg, tc.lo, tc.hi, worst, tol)
		}
	}
}
