package abcfhe

// Public-surface tests of the homomorphic linear-transform stack: BSGS
// mat×vec pinned against the plaintext reference at every preset, the
// key-owner/server rotation-set contract, backend×worker byte-identity of
// the BSGS path, the misuse matrix, and the PN15 CoeffsToSlots →
// SlotsToCoeffs round trip with its pinned worst-slot precision floor.

import (
	"bytes"
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// ltPlainReference is the plaintext mat×vec oracle: apply the diagonals
// directly (aliased indices accumulate, short vectors zero-pad).
func ltPlainReference(slots int, diags map[int][]complex128, v []complex128) []complex128 {
	full := make([]complex128, slots)
	copy(full, v)
	out := make([]complex128, slots)
	for d, diag := range diags {
		d = ((d % slots) + slots) % slots
		for r, w := range diag {
			out[r] += w * full[(r+d)%slots]
		}
	}
	return out
}

func worstSlotErr(a, b []complex128) float64 {
	worst := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestLinearTransformEveryPreset: random sparse and banded matrices must
// evaluate to the plaintext reference at every shipped preset, with the
// key owner deriving the exact rotation set from the sparsity pattern
// alone (LinearTransformRotations) — never seeing the matrix entries.
func TestLinearTransformEveryPreset(t *testing.T) {
	for _, preset := range Presets() {
		preset := preset
		t.Run(string(preset), func(t *testing.T) {
			spec, err := preset.spec()
			if err != nil {
				t.Fatal(err)
			}
			if testing.Short() && spec.LogN >= 14 {
				t.Skip("paper-scale preset")
			}
			owner, device, server := threeParties(t, preset, 0x17A0, 0x17B0)
			defer owner.Close()
			defer device.Close()
			defer server.Close()
			slots := server.Slots()

			// Sparse band plus far-flung diagonals, random entries.
			idx := []int{0, 1, 2, 3, 7, slots / 2, slots - 1}
			rng := rand.New(rand.NewSource(int64(spec.LogN)))
			diags := map[int][]complex128{}
			for _, d := range idx {
				v := make([]complex128, slots)
				for r := range v {
					v[r] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
				}
				diags[d] = v
			}

			// 2·rescales: the pre-rescale product at Δ·Δpt must fit under
			// Q_level — double-scale presets (2^138) need level ≥ 4.
			level := 2 * rescalesAfterMul(preset)
			lt, err := server.NewLinearTransform(diags, level, 0)
			if err != nil {
				t.Fatal(err)
			}
			// The owner-side ladder must match what the transform requests.
			ownerSteps := LinearTransformRotations(slots, idx, 0)
			if got := lt.Rotations(); len(got) != len(ownerSteps) {
				t.Fatalf("rotation sets disagree: owner %v, transform %v", ownerSteps, got)
			} else {
				for i := range got {
					if got[i] != ownerSteps[i] {
						t.Fatalf("rotation sets disagree: owner %v, transform %v", ownerSteps, got)
					}
				}
			}
			evkBytes, err := owner.ExportEvaluationKeys(EvalKeyConfig{
				MaxLevel:  level,
				Rotations: ownerSteps,
			})
			if err != nil {
				t.Fatal(err)
			}
			evk, err := server.ImportEvaluationKeys(evkBytes)
			if err != nil {
				t.Fatal(err)
			}

			msg := testMsgs(slots, 1)[0]
			ct, err := device.EncodeEncrypt(msg)
			if err != nil {
				t.Fatal(err)
			}
			// Fresh ciphertexts sit at full depth; LinearTransform drops to
			// the transform's level internally.
			out, err := server.LinearTransform(ct, lt, evk)
			if err != nil {
				t.Fatal(err)
			}
			if out.Level != level-lt.Depth() {
				t.Fatalf("output level %d, want %d", out.Level, level-lt.Depth())
			}
			got, err := owner.DecryptDecode(out)
			if err != nil {
				t.Fatal(err)
			}
			want := ltPlainReference(slots, diags, msg)
			tol := 1e-4 // double-scale presets keep ≥ 30 bits
			if preset == Test {
				tol = 5e-2 // Δ = 2^30: rescale noise dominates
			}
			if e := worstSlotErr(want, got); e > tol {
				t.Fatalf("transform error %g (budget %g)", e, tol)
			}
		})
	}
}

// TestLinearTransformMisuse: the typed-error matrix of the new surface.
func TestLinearTransformMisuse(t *testing.T) {
	owner, device, server := threeParties(t, Test, 0x17A2, 0x17B2)
	defer owner.Close()
	defer device.Close()
	defer server.Close()
	slots := server.Slots()
	ones := make([]complex128, slots)
	for i := range ones {
		ones[i] = 1
	}

	if _, err := server.NewLinearTransform(map[int][]complex128{0: ones}, 1, 0); !errors.Is(err, ErrLevelOutOfRange) {
		t.Errorf("level too shallow for the rescales: %v", err)
	}
	if _, err := server.NewLinearTransform(map[int][]complex128{0: ones}, 99, 0); !errors.Is(err, ErrLevelOutOfRange) {
		t.Errorf("level above chain: %v", err)
	}
	if _, err := server.NewLinearTransform(map[int][]complex128{0: ones}, 3, 3); !errors.Is(err, ErrInvalidSpan) {
		t.Errorf("non-power-of-two block size: %v", err)
	}
	if _, err := server.NewLinearTransform(map[int][]complex128{0: make([]complex128, slots)}, 3, 0); !errors.Is(err, ErrInvalidSpan) {
		t.Errorf("all-zero transform: %v", err)
	}
	if _, err := server.NewLinearTransform(map[int][]complex128{0: make([]complex128, slots+1)}, 3, 0); !errors.Is(err, ErrMessageTooLong) {
		t.Errorf("diagonal longer than slots: %v", err)
	}
	bad := append([]complex128(nil), ones...)
	bad[7] = complex(math.NaN(), 0)
	if _, err := server.NewLinearTransform(map[int][]complex128{0: bad}, 3, 0); !errors.Is(err, ErrInvalidConstant) {
		t.Errorf("NaN diagonal entry: %v", err)
	}

	lt, err := server.NewLinearTransform(map[int][]complex128{1: ones}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	msg := testMsgs(slots, 1)[0]
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.LinearTransform(ct, lt, nil); !errors.Is(err, ErrEvaluationKeyMissing) {
		t.Errorf("nil key set: %v", err)
	}
	// A set without the needed step errors before any compute.
	evkBytes, err := owner.ExportEvaluationKeys(EvalKeyConfig{Rotations: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	evk, err := server.ImportEvaluationKeys(evkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.LinearTransform(ct, lt, evk); !errors.Is(err, ErrEvaluationKeyMissing) {
		t.Errorf("missing rotation step: %v", err)
	}
	// Input below the transform's level cannot be lifted.
	low, err := server.DropLevel(ct, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.LinearTransform(low, lt, evk); !errors.Is(err, ErrLevelOutOfRange) {
		t.Errorf("input below transform level: %v", err)
	}

	// DFT config validation.
	if _, err := server.NewHomomorphicDFT(HomomorphicDFTConfig{StartLevel: 4, Levels: 0}); !errors.Is(err, ErrInvalidSpan) {
		t.Errorf("zero DFT levels: %v", err)
	}
	if _, err := server.NewHomomorphicDFT(HomomorphicDFTConfig{StartLevel: 2, Levels: 1}); !errors.Is(err, ErrLevelOutOfRange) {
		t.Errorf("start level too shallow: %v", err)
	}
	dft, err := server.NewHomomorphicDFT(HomomorphicDFTConfig{StartLevel: 4, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	// CoeffsToSlots without the conjugation key must error up front.
	evkSteps, err := owner.ExportEvaluationKeys(EvalKeyConfig{Rotations: dft.Rotations()})
	if err != nil {
		t.Fatal(err)
	}
	evkNoConj, err := server.ImportEvaluationKeys(evkSteps)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := server.CoeffsToSlots(ct, dft, evkNoConj); !errors.Is(err, ErrEvaluationKeyMissing) {
		t.Errorf("missing conjugation key: %v", err)
	}
}

// ltBackendRun drives the BSGS and homomorphic-DFT paths under one
// (backend, workers) configuration and returns every result's bytes.
func ltBackendRun(t *testing.T, backend string, workers int) map[string][]byte {
	t.Helper()
	opts := []Option{WithWorkers(workers), WithBackend(backend)}
	owner, device, server := threeParties(t, Test, 0xB565, 0xB566, opts...)
	defer owner.Close()
	defer device.Close()
	defer server.Close()
	slots := server.Slots()

	rng := rand.New(rand.NewSource(99))
	diags := map[int][]complex128{}
	for _, d := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11} {
		v := make([]complex128, slots)
		for r := range v {
			v[r] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		diags[d] = v
	}
	lt, err := server.NewLinearTransform(diags, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	dft, err := server.NewHomomorphicDFT(HomomorphicDFTConfig{StartLevel: 4, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	steps := append(lt.Rotations(), dft.Rotations()...)
	evkBytes, err := owner.ExportEvaluationKeys(EvalKeyConfig{
		Rotations: steps,
		Conjugate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	evk, err := server.ImportEvaluationKeys(evkBytes)
	if err != nil {
		t.Fatal(err)
	}

	msg := testMsgs(slots, 1)[0]
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}

	out := map[string][]byte{}
	record := func(name string, ct *Ciphertext, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s (backend=%s workers=%d): %v", name, backend, workers, err)
		}
		blob, err := server.SerializeCiphertext(ct)
		if err != nil {
			t.Fatalf("serialize %s: %v", name, err)
		}
		out[name] = blob
	}

	ltOut, err := server.LinearTransform(ct, lt, evk)
	record("bsgs", ltOut, err)
	re, im, err := server.CoeffsToSlots(ct, dft, evk)
	record("c2s-re", re, err)
	record("c2s-im", im, nil)
	back, err := server.SlotsToCoeffs(re, im, dft, evk)
	record("s2c", back, err)
	return out
}

// TestLinearTransformBackendWorkerInvariance mirrors
// TestBackendWorkerInvariance for the BSGS/DFT paths: portable/fast ×
// worker counts 1, 2, 8 must all produce the portable single-worker
// reference's bytes.
func TestLinearTransformBackendWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps 6 full transform pipelines")
	}
	ref := ltBackendRun(t, "portable", 1)
	for _, backend := range []string{"portable", "fast"} {
		for _, workers := range []int{1, 2, 8} {
			if backend == "portable" && workers == 1 {
				continue
			}
			got := ltBackendRun(t, backend, workers)
			for name, want := range ref {
				if !bytes.Equal(got[name], want) {
					t.Fatalf("%s: bytes diverge under backend=%s workers=%d", name, backend, workers)
				}
			}
		}
	}
}

// pn15DFTRun executes the PN15 homomorphic-DFT round trip under one
// (backend, workers) configuration: encrypt, CoeffsToSlots, check the
// coefficient extraction against the plaintext IFFT, SlotsToCoeffs,
// return the three result blobs and the round-trip worst-slot error.
func pn15DFTRun(t *testing.T, backend string, workers int) (blobs map[string][]byte, roundTripErr float64) {
	t.Helper()
	opts := []Option{WithWorkers(workers), WithBackend(backend)}
	owner, device, server := threeParties(t, PN15, 0x9F15, 0x9F16, opts...)
	defer owner.Close()
	defer device.Close()
	defer server.Close()
	slots := server.Slots()

	const startLevel, levels = 10, 2
	dft, err := server.NewHomomorphicDFT(HomomorphicDFTConfig{StartLevel: startLevel, Levels: levels})
	if err != nil {
		t.Fatal(err)
	}
	evkBytes, err := owner.ExportEvaluationKeys(EvalKeyConfig{
		MaxLevel:  startLevel,
		Rotations: HomomorphicDFTRotations(slots, levels),
		Conjugate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	evk, err := server.ImportEvaluationKeys(evkBytes)
	if err != nil {
		t.Fatal(err)
	}

	msg := testMsgs(slots, 1)[0]
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	re, im, err := server.CoeffsToSlots(ct, dft, evk)
	if err != nil {
		t.Fatal(err)
	}
	back, err := server.SlotsToCoeffs(re, im, dft, evk)
	if err != nil {
		t.Fatal(err)
	}

	blobs = map[string][]byte{}
	for name, c := range map[string]*Ciphertext{"re": re, "im": im, "back": back} {
		b, err := server.SerializeCiphertext(c)
		if err != nil {
			t.Fatal(err)
		}
		blobs[name] = b
	}

	got, err := owner.DecryptDecode(back)
	if err != nil {
		t.Fatal(err)
	}
	return blobs, worstSlotErr(msg, got)
}

// TestPN15HomomorphicDFTRoundTrip is the CI gate of the tentpole: at the
// paper-scale PN15 preset, CoeffsToSlots → SlotsToCoeffs must restore the
// message with at least pn15DFTFloorBits bits of worst-slot precision,
// and the whole pipeline must be byte-identical across backends and
// worker counts (portable/1 vs fast/8).
func TestPN15HomomorphicDFTRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale preset round trip")
	}
	// Pinned floor: measured 42.5 bits on the reference run; regressions
	// in the transform scheduling, the DFT factorization, or the
	// key-switch noise path all show up here first.
	const pn15DFTFloorBits = 38.0

	ref, errPortable := pn15DFTRun(t, "portable", 1)
	bits := -math.Log2(errPortable)
	t.Logf("PN15 C2S→S2C worst-slot error %.3g (%.1f bits)", errPortable, bits)
	if bits < pn15DFTFloorBits {
		t.Fatalf("round-trip precision %.1f bits, floor %g", bits, pn15DFTFloorBits)
	}

	got, errFast := pn15DFTRun(t, "fast", 8)
	if errFast != errPortable {
		t.Fatalf("round-trip error differs across backends: %g vs %g", errFast, errPortable)
	}
	for name, want := range ref {
		if !bytes.Equal(got[name], want) {
			t.Fatalf("%s: bytes diverge between portable/1 and fast/8", name)
		}
	}
}
