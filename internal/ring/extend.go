package ring

// RNS basis-extension kernels on polynomials — the ring-level half of
// hybrid (P·Q) key switching. ModUpInto raises a group of coefficient-
// domain limbs to an extended basis (Q_ℓ ∪ P); ModDownNTTInto divides an
// extended-basis accumulator by P with rounding, landing back in Q_ℓ.
// Both dispatch through the lane engine: ModUp chunks the coefficient
// range (every chunk computes disjoint outputs), ModDown fans out
// limb-wise like every other kernel here — bit-identical at any worker
// count.

import (
	"repro/internal/rns"
)

// ModUpInto extends the coefficient-domain source rows (residues of one
// decomposition group, ext.SrcK() rows) to the extended basis, writing all
// ext.DstK() rows of dst. dst's storage may be uninitialized (every word
// in range is overwritten); rows must be N long. The receiver supplies the
// degree and the engine — its own basis is not consulted, so any level
// view sharing the engine works.
func (r *Ring) ModUpInto(ext *rns.Extender, srcRows [][]uint64, dst *Poly) {
	if len(srcRows) != ext.SrcK() || len(dst.Coeffs) != ext.DstK() {
		panic("ring: ModUpInto basis shape mismatch")
	}
	r.Engine().RunChunks(r.N, func(lo, hi int) {
		ext.ExtendRange(srcRows, dst.Coeffs, lo, hi)
	})
	dst.IsNTT = false
}

// ModDownNTTInto completes a hybrid key switch: acc holds an NTT-domain
// accumulator over the extended basis (ringQ.K() limbs of Q_ℓ followed by
// ringP.K() limbs of P), and out (NTT domain, ringQ.K() limbs) receives
//
//	out += round(acc / P)  mod Q_ℓ
//
// computed as (acc_Q − ModUp_centered([acc]_P)) · P^{-1} limb-wise, with
// pInv[i] = P^{-1} mod q_i. The centered ModUp makes the division
// round-to-nearest (±1 at float boundaries — noise, not signal). acc's P
// rows are consumed (INTT'd in place); treat acc as dead afterwards.
// scratch must be a pooled ringQ-shaped polynomial the caller owns; its
// contents are fully overwritten.
func ModDownNTTInto(ringQ, ringP *Ring, ext *rns.Extender, pInv []uint64, acc, scratch, out *Poly) {
	lq, kp := ringQ.K(), ringP.K()
	if len(acc.Coeffs) != lq+kp || len(out.Coeffs) != lq || len(pInv) < lq {
		panic("ring: ModDownNTTInto shape mismatch")
	}
	// [acc]_P back to the coefficient domain.
	accP := &Poly{Coeffs: acc.Coeffs[lq:], IsNTT: true}
	ringP.INTT(accP)

	// Centered extension P → Q_ℓ, then into the NTT domain.
	ringQ.ModUpInto(ext, accP.Coeffs, scratch)
	ringQ.NTT(scratch)

	// out += (acc_Q − ext) · P^{-1}, fused per limb.
	ringQ.Engine().Run(lq, func(i int) {
		ringQ.SubMulAddRow(i, pInv[i], acc.Coeffs[i], scratch.Coeffs[i], out.Coeffs[i])
	})
}
