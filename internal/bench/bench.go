// Package bench regenerates every table and figure of the paper's
// evaluation section. Each experiment is a named generator returning a
// Result whose rows place our reproduced values next to the paper's
// published ones; cmd/abcbench renders them, and the root-level
// bench_test.go wraps each in a testing.B benchmark.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one regenerated experiment.
type Result struct {
	ID          string // "fig5a", "table2", …
	Title       string
	Description string
	Header      []string   // column names
	Rows        [][]string // formatted cells
	Notes       []string   // provenance, deviations, methodology
}

// Render formats the result as an aligned text table.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	if r.Description != "" {
		fmt.Fprintf(&b, "%s\n", r.Description)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the rows as comma-separated values.
func (r Result) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Header, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Generator produces an experiment result. Options tune cost/fidelity
// trade-offs (e.g. the Fig. 3c ring degree); zero-value options select the
// paper configuration where feasible in reasonable time.
type Generator func(opt Options) Result

// Options tunes experiment execution.
type Options struct {
	// Fast reduces problem sizes for quick regression runs (used by unit
	// tests and the default benchmark loop).
	Fast bool
	// MeasureCPU additionally times the pure-Go CKKS client on this host
	// (minutes at the paper parameters; seconds in Fast mode).
	MeasureCPU bool
}

var registry = map[string]Generator{}
var order []string

func register(id string, g Generator) {
	if _, dup := registry[id]; dup {
		panic("bench: duplicate experiment " + id)
	}
	registry[id] = g
	order = append(order, id)
}

// IDs lists registered experiments in registration order.
func IDs() []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, opt Options) (Result, error) {
	g, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return g(opt), nil
}

// helpers ----------------------------------------------------------------

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
