// Package rns implements residue-number-system machinery for CKKS: the
// decomposition of big-integer polynomial coefficients into word-sized
// limbs (the "Expand RNS" stage of the encode pipeline, paper Fig. 2a) and
// the Chinese-remainder reconstruction used on decode ("Combine CRT").
//
// The paper's configuration uses the double-scale technique [1]: 36-bit
// primes with the number of limbs doubled (24 limbs standing in for 12
// ~72-bit levels), keeping the hardware datapath at 44 bits.
//
// Reconstruction comes in two forms: the exact big.Int path
// (CombineCentered — the reference oracle, now running on pooled scratch)
// and the allocation-free word-arithmetic path the decode hot loop uses
// (CombineCenteredFloatScratch, see fastcrt.go).
package rns

import (
	"fmt"
	"math/big"
	"sync"

	"repro/internal/mod"
)

// Basis is an RNS basis: a list of pairwise-coprime word-sized primes with
// the constants needed for expansion and CRT reconstruction. All fields
// are immutable after NewBasis; the scratch pool and sub-basis cache are
// internally synchronized, so a Basis is safe for concurrent use. Always
// share a Basis by pointer (it owns sync primitives).
type Basis struct {
	Moduli []mod.Modulus
	Q      *big.Int // product of all moduli

	// CRT reconstruction: qiHat[i] = Q/qi, qiHatInv[i] = (Q/qi)^{-1} mod qi.
	qiHat    []*big.Int
	qiHatInv []uint64
	halfQ    *big.Int // Q/2, for centered lifts

	fast *fastCRT // word-level tables for the allocation-free combine

	scratch sync.Pool // *bigScratch, reused by the exact big.Int paths

	subMu sync.Mutex
	subs  map[int]*Basis // memoized prefix sub-bases (level views)
}

// bigScratch is the reusable temporary set of the exact paths. Each
// big.Int grows to its steady-state capacity on first use and is then
// recycled through the basis pool, so ExpandBig/CombineCentered stop
// churning the GC on every call.
type bigScratch struct {
	term big.Int
	quo  big.Int
	rem  big.Int
}

// NewBasis builds a basis from the given primes (all distinct, odd).
func NewBasis(primes []uint64) (*Basis, error) {
	if len(primes) == 0 {
		return nil, fmt.Errorf("rns: empty basis")
	}
	seen := map[uint64]bool{}
	b := &Basis{Q: big.NewInt(1)}
	for _, q := range primes {
		if seen[q] {
			return nil, fmt.Errorf("rns: duplicate modulus %d", q)
		}
		seen[q] = true
		b.Moduli = append(b.Moduli, mod.NewModulus(q))
		b.Q.Mul(b.Q, new(big.Int).SetUint64(q))
	}
	b.qiHat = make([]*big.Int, len(primes))
	b.qiHatInv = make([]uint64, len(primes))
	for i, m := range b.Moduli {
		b.qiHat[i] = new(big.Int).Quo(b.Q, new(big.Int).SetUint64(m.Q))
		hatMod := new(big.Int).Mod(b.qiHat[i], new(big.Int).SetUint64(m.Q)).Uint64()
		b.qiHatInv[i] = m.Inv(hatMod)
	}
	b.halfQ = new(big.Int).Rsh(b.Q, 1)
	b.fast = newFastCRT(b)
	b.scratch.New = func() any { return new(bigScratch) }
	return b, nil
}

// MustBasis panics on error.
func MustBasis(primes []uint64) *Basis {
	b, err := NewBasis(primes)
	if err != nil {
		panic(err)
	}
	return b
}

// K returns the number of limbs.
func (b *Basis) K() int { return len(b.Moduli) }

// Primes returns the raw prime values.
func (b *Basis) Primes() []uint64 {
	out := make([]uint64, b.K())
	for i, m := range b.Moduli {
		out[i] = m.Q
	}
	return out
}

// Sub returns the prefix sub-basis with the first k limbs — how CKKS
// levels shrink: a level-l ciphertext lives in the first l limbs. Views
// are memoized per basis, so repeated level lookups (ring.AtLevel) pay
// the big.Int/fast-table construction once.
func (b *Basis) Sub(k int) *Basis {
	if k < 1 || k > b.K() {
		panic("rns: sub-basis size out of range")
	}
	if k == b.K() {
		return b
	}
	b.subMu.Lock()
	defer b.subMu.Unlock()
	if s, ok := b.subs[k]; ok {
		return s
	}
	s := MustBasis(b.Primes()[:k])
	if b.subs == nil {
		b.subs = make(map[int]*Basis)
	}
	b.subs[k] = s
	return s
}

// ExpandInt64 reduces a signed value into every limb.
func (b *Basis) ExpandInt64(v int64, out []uint64) {
	for i, m := range b.Moduli {
		out[i] = m.FromCentered(v)
	}
}

// ExpandBig reduces a signed big integer into every limb (centered
// semantics: negative values wrap to q - |v| mod q).
func (b *Basis) ExpandBig(v *big.Int, out []uint64) {
	sc := b.scratch.Get().(*bigScratch)
	mw, quo, rem := &sc.term, &sc.quo, &sc.rem
	for i, m := range b.Moduli {
		// QuoRem instead of Mod: all three big.Ints come from the pooled
		// scratch and keep their grown capacity, so the per-limb divisions
		// stop allocating in steady state. The truncated remainder carries
		// v's sign; FromCentered restores the non-negative representative.
		mw.SetUint64(m.Q)
		quo.QuoRem(v, mw, rem)
		out[i] = m.FromCentered(rem.Int64())
	}
	b.scratch.Put(sc)
}

// CombineCentered reconstructs the centered representative in
// (-Q/2, Q/2] of the residue vector limbs (one residue per limb). This is
// the exact reference path — the oracle the fast combine is verified
// against; only the returned big.Int is allocated.
func (b *Basis) CombineCentered(limbs []uint64) *big.Int {
	return b.CombineCenteredInto(new(big.Int), limbs)
}

// CombineCenteredInto is CombineCentered writing into out (returned for
// chaining). With a reused out it allocates nothing in steady state.
func (b *Basis) CombineCenteredInto(out *big.Int, limbs []uint64) *big.Int {
	if len(limbs) != b.K() {
		panic("rns: residue count mismatch")
	}
	sc := b.scratch.Get().(*bigScratch)
	term := &sc.term
	out.SetInt64(0)
	for i, m := range b.Moduli {
		// term = qiHat[i] * ((limb * qiHatInv[i]) mod qi)
		c := m.Mul(limbs[i]%m.Q, b.qiHatInv[i])
		term.SetUint64(c)
		term.Mul(term, b.qiHat[i])
		out.Add(out, term)
	}
	out.Mod(out, b.Q)
	if out.Cmp(b.halfQ) > 0 {
		out.Sub(out, b.Q)
	}
	b.scratch.Put(sc)
	return out
}

// CombineCenteredFloatBig reconstructs the centered value exactly and
// converts it to float64 after dividing by scale — the big.Int/big.Float
// reference the fast path (CombineCenteredFloat, fastcrt.go) is tested
// against. Not for hot loops.
func (b *Basis) CombineCenteredFloatBig(limbs []uint64, scale float64) float64 {
	v := b.CombineCentered(limbs)
	f := new(big.Float).SetInt(v)
	f.Quo(f, big.NewFloat(scale))
	out, _ := f.Float64()
	return out
}
