package ckks

// Decode-path tests: the fast Combine-CRT pipeline against the big.Int
// oracle on live ciphertext data, worker-count bit-determinism, and the
// paper-style round-trip precision floor over random, adversarial and
// denormal inputs for every preset.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/lanes"
	"repro/internal/prng"
	"repro/internal/ring"
)

// oracleDecode is Decode rebuilt on the exact big.Int/big.Float combine —
// the reference the fast decode is compared against on real plaintexts.
func oracleDecode(p *Parameters, pt *Plaintext) []complex128 {
	rl := p.RingAt(pt.Level)
	val := pt.Value
	var scratch *ring.Poly
	if val.IsNTT {
		scratch = rl.GetPolyCopy(val)
		rl.INTT(scratch)
		val = scratch
	}
	coeffs := make([]float64, p.N())
	limbs := make([]uint64, pt.Level)
	for j := 0; j < p.N(); j++ {
		for i := 0; i < pt.Level; i++ {
			limbs[i] = val.Coeffs[i][j]
		}
		coeffs[j] = rl.Basis.CombineCenteredFloatBig(limbs, pt.Scale)
	}
	rl.PutPoly(scratch)
	slots := p.Embedder().DecodeFromCoeffs(coeffs, p.FFTCtx())
	out := make([]complex128, p.Slots())
	for i, v := range slots {
		out[i] = complex(v.Re, v.Im)
	}
	return out
}

// TestDecodeMatchesOracle decrypts live ciphertexts at several levels and
// checks the fast decode against the big.Int reference decode slot by
// slot. Agreement must be far tighter than the message precision floor.
func TestDecodeMatchesOracle(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	msg := randMsg(p, 0, 31)
	ct := encryptor.Encrypt(enc.Encode(msg))
	for _, level := range []int{p.MaxLevel(), 2, 1} {
		pt := dec.Decrypt(ev.DropLevel(ct, level))
		got := enc.Decode(pt)
		want := oracleDecode(p, pt)
		for i := range want {
			d := got[i] - want[i]
			if math.Abs(real(d)) > 1e-9 || math.Abs(imag(d)) > 1e-9 {
				t.Fatalf("level %d slot %d: fast %v oracle %v", level, i, got[i], want[i])
			}
		}
		p.PutPlaintext(pt)
	}
}

// TestDecodeWorkerDeterminism asserts decode emits bit-identical slot
// values at worker counts 1, 2 and 8 — chunking may move coefficients
// between lanes but never change what any coefficient computes.
func TestDecodeWorkerDeterminism(t *testing.T) {
	var ref []complex128
	for _, w := range []int{1, 2, 8} {
		p := TestParams.MustBuild()
		p.SetWorkers(w)
		kg := NewKeyGenerator(p, testSeed())
		sk, pk := kg.GenKeyPair()
		enc := NewEncoder(p)
		encryptor := NewEncryptor(p, pk, testSeed())
		dec := NewDecryptor(p, sk)

		msg := randMsg(p, 0, 32)
		pt := dec.Decrypt(encryptor.Encrypt(enc.Encode(msg)))
		got := enc.Decode(pt)
		p.PutPlaintext(pt)
		p.Close()

		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if math.Float64bits(real(got[i])) != math.Float64bits(real(ref[i])) ||
				math.Float64bits(imag(got[i])) != math.Float64bits(imag(ref[i])) {
				t.Fatalf("workers=%d slot %d: %v != 1-worker reference %v", w, i, got[i], ref[i])
			}
		}
	}
}

// TestDecodeIntoContract pins the DecodeInto buffer validation and the
// Decode/DecodeInto equivalence.
func TestDecodeIntoContract(t *testing.T) {
	p := testParams
	enc := NewEncoder(p)
	pt := enc.Encode(randMsg(p, 0, 33))
	defer p.PutPlaintext(pt)

	out := make([]complex128, p.Slots())
	got := enc.DecodeInto(pt, out)
	if &got[0] != &out[0] {
		t.Fatal("DecodeInto must write into the provided buffer")
	}
	ref := enc.Decode(pt)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("slot %d: DecodeInto %v != Decode %v", i, got[i], ref[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short output buffer must panic")
		}
	}()
	enc.DecodeInto(pt, make([]complex128, p.Slots()-1))
}

// decodeInput builds one round-trip input class over the full slot count.
func decodeInput(p *Parameters, class string) []complex128 {
	msg := make([]complex128, p.Slots())
	switch class {
	case "random":
		src := prng.NewSource(prng.SeedFromUint64s(41, 42), 7)
		for i := range msg {
			msg[i] = complex(src.Float64()*2-1, src.Float64()*2-1)
		}
	case "adversarial": // max-magnitude, alternating-sign corners of the unit box
		for i := range msg {
			s := 1.0
			if i%2 == 1 {
				s = -1
			}
			msg[i] = complex(s, -s)
		}
	case "denormal": // denormal float64 components must decode to ~0, not NaN/Inf
		for i := range msg {
			d := 5e-324 * float64(1+i%3)
			if i%2 == 1 {
				d = -d
			}
			msg[i] = complex(d, -d)
		}
	default:
		panic("unknown input class " + class)
	}
	return msg
}

// roundTripFloor is the asserted paper-style precision floor (bits of
// worst-slot accuracy) per LogScale tier. Measured worst-slot values on
// the reference host: ≥45.8 bits for the Δ=2^66 presets (PN13–PN16, well
// above the paper's 19.29-bit bootstrapping threshold), 16.4 for Test
// (Δ=2^30) and 13.8 for Tiny (Δ=2^25); the floors leave ~3–6 bits of
// margin for host-to-host noise variation.
func roundTripFloor(spec ParamSpec) float64 {
	switch {
	case spec.LogScale >= 66:
		return 40
	case spec.LogScale >= 30:
		return 14
	default:
		return 11
	}
}

// TestDecryptDecodeRoundTripPrecision runs the full client pipeline —
// encode → encrypt (full depth) → drop to the 2-limb return level →
// decrypt → decode — for every preset and input class, asserting the
// worst-slot precision floor. The large rings only run without -short.
func TestDecryptDecodeRoundTripPrecision(t *testing.T) {
	presets := []struct {
		name string
		spec ParamSpec
	}{
		{"Test", TestParams}, {"Tiny", TinyParams}, {"PN13", PN13},
		{"PN14", PN14}, {"PN15", PN15}, {"PN16", PN16},
	}
	for _, pr := range presets {
		t.Run(pr.name, func(t *testing.T) {
			if testing.Short() && pr.spec.LogN >= 14 {
				t.Skipf("skipping logN=%d in -short mode", pr.spec.LogN)
			}
			p, err := pr.spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			kg := NewKeyGenerator(p, testSeed())
			sk, pk := kg.GenKeyPair()
			enc := NewEncoder(p)
			encryptor := NewEncryptor(p, pk, testSeed())
			dec := NewDecryptor(p, sk)
			ev := NewEvaluator(p)
			floor := roundTripFloor(pr.spec)

			for _, class := range []string{"random", "adversarial", "denormal"} {
				msg := decodeInput(p, class)
				ct := encryptor.Encrypt(enc.Encode(msg))
				low := ev.DropLevel(ct, 2)
				pt := dec.Decrypt(low)
				got := enc.Decode(pt)
				p.PutPlaintext(pt)
				for i, v := range got {
					if cmplxIsBad(v) {
						t.Fatalf("%s slot %d decoded to %v", class, i, v)
					}
				}
				stats := MeasurePrecision(msg, got)
				t.Logf("%s: worst %.2f bits, mean %.2f bits", class, stats.WorstBits, stats.MeanBits)
				if stats.WorstBits < floor {
					t.Fatalf("%s: worst-slot precision %.2f bits below floor %.0f",
						class, stats.WorstBits, floor)
				}
			}
		})
	}
}

func cmplxIsBad(v complex128) bool {
	return math.IsNaN(real(v)) || math.IsNaN(imag(v)) ||
		math.IsInf(real(v), 0) || math.IsInf(imag(v), 0)
}

// TestDecodeScratchPoolRoundTrip makes dirty-pool reuse explicit: decode
// repeatedly with interleaved foreign pool traffic, expecting identical
// output every time (stale slab contents must never leak into results).
func TestDecodeScratchPoolRoundTrip(t *testing.T) {
	p := testParams
	enc := NewEncoder(p)
	pt := enc.Encode(randMsg(p, 0, 34))
	defer p.PutPlaintext(pt)

	ref := enc.Decode(pt)
	for iter := 0; iter < 5; iter++ {
		// Poison the pools decode draws from, then return the slabs dirty.
		s := lanes.GetSlab(pt.Level)
		for i := range s {
			s[i] = ^uint64(0)
		}
		lanes.PutSlab(s)
		f := lanes.GetFloatSlab(p.N())
		for i := range f {
			f[i] = math.Inf(1)
		}
		lanes.PutFloatSlab(f)

		got := enc.Decode(pt)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("iter %d slot %d: %v != %v after pool poisoning", iter, i, got[i], ref[i])
			}
		}
	}
}

// TestDecodeAllocationBudget pins the headline number: a steady-state
// DecryptDecode on the Test preset must stay within the ~2× envelope of
// EncodeEncrypt's allocation count (acceptance bar: ≤150 allocs/op,
// down from ~9.7k on the big.Int path).
func TestDecodeAllocationBudget(t *testing.T) {
	p := TestParams.MustBuild()
	p.SetWorkers(1) // deterministic allocation accounting
	defer p.Close()
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	low := ev.DropLevel(encryptor.Encrypt(enc.Encode(randMsg(p, 0, 35))), 2)
	out := make([]complex128, p.Slots())
	decode := func() {
		pt := dec.Decrypt(low)
		enc.DecodeInto(pt, out)
		p.PutPlaintext(pt)
	}
	decode() // warm the pools
	if n := testing.AllocsPerRun(50, decode); n > 150 {
		t.Fatalf("DecryptDecode allocates %.0f/op, budget 150", n)
	} else {
		t.Logf("DecryptDecode: %.0f allocs/op", n)
	}
}

// BenchmarkDecodeLevels tracks the combine cost across decode levels of
// the Test preset (level 2 is the paper's server-return configuration).
func BenchmarkDecodeLevels(b *testing.B) {
	p := TestParams.MustBuild()
	enc := NewEncoder(p)
	full := enc.Encode(randMsg(p, 0, 36))
	defer p.PutPlaintext(full)
	for _, level := range []int{1, 2, p.MaxLevel()} {
		b.Run(fmt.Sprintf("level=%d", level), func(b *testing.B) {
			pt := &Plaintext{
				Value: &ring.Poly{Coeffs: full.Value.Coeffs[:level]},
				Level: level, Scale: p.Scale(),
			}
			out := make([]complex128, p.Slots())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc.DecodeInto(pt, out)
			}
		})
	}
}
