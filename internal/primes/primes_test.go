package primes

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPrimeSmall(t *testing.T) {
	primesBelow100 := map[uint64]bool{
		2: true, 3: true, 5: true, 7: true, 11: true, 13: true, 17: true,
		19: true, 23: true, 29: true, 31: true, 37: true, 41: true, 43: true,
		47: true, 53: true, 59: true, 61: true, 67: true, 71: true, 73: true,
		79: true, 83: true, 89: true, 97: true,
	}
	for n := uint64(0); n < 100; n++ {
		if got := IsPrime(n); got != primesBelow100[n] {
			t.Errorf("IsPrime(%d)=%v", n, got)
		}
	}
}

func TestIsPrimeKnownLarge(t *testing.T) {
	cases := []struct {
		n    uint64
		want bool
	}{
		{(1 << 61) - 1, true},         // Mersenne prime M61
		{(1 << 31) - 1, true},         // M31
		{(1 << 32) + 15, true},        // 4294967311
		{18446744073709551557, true},  // largest 64-bit prime
		{18446744073709551615, false}, // 2^64-1 = 3·5·17·257·641·65537·6700417
		{3215031751, false},           // strong pseudoprime to bases 2,3,5,7
		{341550071728321, false},      // pseudoprime to bases 2..17
		{1152921504606584833, true},   // 60-bit NTT prime
		{68718428161, true},           // 36-bit NTT prime (0xFFFF00001)
		{68718428163, false},
	}
	for _, c := range cases {
		if got := IsPrime(c.n); got != c.want {
			t.Errorf("IsPrime(%d)=%v want %v", c.n, got, c.want)
		}
	}
}

// Property: IsPrime agrees with math/big's ProbablyPrime on random inputs.
func TestIsPrimeAgainstBigQuick(t *testing.T) {
	f := func(n uint64) bool {
		n |= 1 // restrict to odd for speed; evens covered above
		return IsPrime(n) == new(big.Int).SetUint64(n).ProbablyPrime(30)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGenerateNTTPrimes(t *testing.T) {
	for _, tc := range []struct{ count, bitLen, logN int }{
		{4, 20, 10},
		{24, 36, 16}, // the paper's configuration: 24 limbs of 36-bit primes
		{3, 60, 16},
	} {
		ps := GenerateNTTPrimes(tc.count, tc.bitLen, tc.logN)
		if len(ps) != tc.count {
			t.Fatalf("want %d primes, got %d", tc.count, len(ps))
		}
		seen := map[uint64]bool{}
		step := uint64(1) << uint(tc.logN+1)
		for _, q := range ps {
			if seen[q] {
				t.Fatalf("duplicate prime %d", q)
			}
			seen[q] = true
			if !IsPrime(q) {
				t.Fatalf("%d is not prime", q)
			}
			if (q-1)%step != 0 {
				t.Fatalf("%d is not ≡ 1 mod 2N", q)
			}
			if got := len(big.NewInt(0).SetUint64(q).Bits()); false {
				_ = got
			}
			if bl := bitLen64(q); bl != tc.bitLen {
				t.Fatalf("prime %d has %d bits, want %d", q, bl, tc.bitLen)
			}
		}
	}
}

func TestGenerateNTTPrimesUp(t *testing.T) {
	ps := GenerateNTTPrimesUp(5, 36, 16)
	for _, q := range ps {
		if !IsPrime(q) || (q-1)%(1<<17) != 0 || bitLen64(q) != 36 {
			t.Fatalf("bad prime %d", q)
		}
	}
	// Upward scan produces primes just above 2^35.
	if ps[0] > (1<<35)+(1<<24) {
		t.Fatalf("upward scan did not start near 2^35: %d", ps[0])
	}
}

func bitLen64(v uint64) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

func TestFriendlySearchBasics(t *testing.T) {
	// Small-scale exhaustive sanity: every returned value is prime, has the
	// right bit length and two-adicity, and the recorded decomposition
	// reconstructs Q.
	fam := Search(20, 10, 3)
	if len(fam) == 0 {
		t.Fatal("no 20-bit friendly primes found")
	}
	for _, f := range fam {
		if !IsPrime(f.Q) {
			t.Fatalf("%d not prime", f.Q)
		}
		if bitLen64(f.Q) != 20 {
			t.Fatalf("%d wrong bit length", f.Q)
		}
		if (f.Q-1)%(1<<11) != 0 {
			t.Fatalf("%d has insufficient two-adicity", f.Q)
		}
		// Reconstruct from decomposition.
		v := (uint64(1) << uint(f.BW)) + 1
		for _, term := range f.Terms {
			if term.Sign > 0 {
				v += uint64(1) << term.Exp
			} else {
				v -= uint64(1) << term.Exp
			}
		}
		if v != f.Q {
			t.Fatalf("decomposition of %d reconstructs %d", f.Q, v)
		}
		if f.Weight() > 5 {
			t.Fatalf("weight %d exceeds family bound 5", f.Weight())
		}
	}
}

func TestFriendlyQInvClosedForm(t *testing.T) {
	// Eq. 11: the shift-add QInv must satisfy Q·QInv ≡ 1 mod 2^w.
	for _, bl := range []int{20, 32, 36} {
		logN := 10
		if bl >= 32 {
			logN = 16
		}
		fam := Search(bl, logN, 3)
		if len(fam) == 0 {
			t.Fatalf("no %d-bit primes", bl)
		}
		for _, f := range fam {
			wMax := 2 * f.TwoAdicity()
			if wMax > 64 {
				wMax = 64
			}
			for _, w := range []uint{uint(logN + 1), wMax} {
				if !f.VerifyQInv(w) {
					t.Fatalf("Q=%d: QInv closed form fails at w=%d", f.Q, w)
				}
			}
			// Beyond the validity bound the closed form must not silently
			// return wrong values: it panics instead.
			if wMax < 64 {
				func() {
					defer func() { recover() }()
					f.QInvShiftAdd(wMax + 1)
					t.Fatalf("Q=%d: expected panic beyond validity bound", f.Q)
				}()
			}
		}
	}
}

func TestCensus32to36(t *testing.T) {
	// Paper §IV-A: "the required 32–36 bit primes amount to a total of 443".
	// The census is a from-scratch enumeration; EXPERIMENTS.md records the
	// comparison. Here we assert the census is in the right regime (hundreds
	// of primes — more than adequate for 20–40 levels, the paper's claim).
	total, per := Census(32, 36, 16, 3)
	if total < 200 {
		t.Fatalf("census too small: %d (%v)", total, per)
	}
	if total > 2000 {
		t.Fatalf("census implausibly large: %d (%v)", total, per)
	}
	// Enough primes for the paper's deepest configuration (40 levels → 40
	// limbs single-scale or 80 double-scale — census must exceed both).
	if total < 80 {
		t.Fatalf("not enough primes for 40 levels: %d", total)
	}
}

func TestNAF(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		v := rng.Uint64() >> uint(rng.Intn(40))
		naf := NAF(v)
		// Reconstruct.
		var acc int64
		for _, term := range naf {
			x := int64(1) << term.Exp
			if term.Sign < 0 {
				x = -x
			}
			acc += x
		}
		if uint64(acc) != v {
			t.Fatalf("NAF(%d) reconstructs %d", v, acc)
		}
		// Non-adjacency: no two consecutive nonzero digits.
		for j := 1; j < len(naf); j++ {
			if naf[j].Exp == naf[j-1].Exp+1 {
				t.Fatalf("NAF(%d) has adjacent digits", v)
			}
		}
	}
	// Weight examples.
	if NAFWeight(0) != 0 || NAFWeight(1) != 1 || NAFWeight(7) != 2 {
		t.Fatal("unexpected NAF weights")
	}
}

// Property: NAF weight never exceeds the binary Hamming weight.
func TestNAFWeightQuick(t *testing.T) {
	f := func(v uint64) bool {
		h := 0
		for x := v; x > 0; x &= x - 1 {
			h++
		}
		return NAFWeight(v) <= h || h == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIsPrime36(b *testing.B) {
	for i := 0; i < b.N; i++ {
		IsPrime(68718428161)
	}
}

func BenchmarkSearch36(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Search(36, 16, 2)
	}
}

func TestCensusPaperConvention(t *testing.T) {
	// Strict Eq. 8 reading (k<0, exactly 3 terms, feasibility): the paper
	// reports 443; our enumeration gives 466. Pin our value so a regression
	// in the enumerator is caught, and assert we are within 10% of paper.
	total, _ := CensusPaper(32, 36, 16)
	if total != 466 {
		t.Fatalf("CensusPaper(32,36,16) = %d, want 466 (pinned)", total)
	}
	paper := 443
	if diff := float64(total-paper) / float64(paper); diff > 0.10 || diff < -0.10 {
		t.Fatalf("census deviates from paper by %.1f%%", diff*100)
	}
}
