package ckks

import (
	"fmt"

	"repro/internal/prng"
	"repro/internal/ring"
)

// Key switching via gadget (digit) decomposition — the server-side
// machinery that makes ciphertext-ciphertext multiplication and slot
// rotations possible. ABC-FHE itself never executes these (it is a client
// accelerator), but the ciphertexts it produces are consumed by servers
// that do — so the server half of the protocol is a first-class citizen
// here, reachable through the public Server role.
//
// Construction (BV-style, no special modulus): to switch a polynomial c
// from key f to key s, write c in the combined CRT × base-2^w gadget
//
//	c = Σ_{i<L} Σ_{t<T} d_{i,t} · (2^{wt} · u_i)   with  d_{i,t} < 2^w,
//
// where u_i is the CRT basis element (u_i ≡ 1 mod q_i, ≡ 0 mod q_j). The
// switching key encrypts each gadget element times f:
//
//	ksk_{i,t} = (-a·s + e + 2^{wt}·u_i·f,  a)
//
// and the switch computes (Σ d_{i,t}·ksk0, Σ d_{i,t}·ksk1). Noise grows by
// ≈ 2^w·sqrt(L·T·N)·σ — kept below the scale by choosing w; production
// systems use a raised modulus instead (documented trade-off).
//
// Hot-path structure: the inner loop (digit decompose → NTT → fused
// multiply-accumulate) draws every scratch polynomial from the lanes
// pools and dispatches limb-wise through the engine, so the steady state
// allocates only the returned ciphertext and scales with workers like
// encrypt/decode. Rotations run *hoisted*: the digit decomposition (and
// its NTTs) is computed once per input ciphertext, and each Galois
// element is applied to the decomposed digits as an NTT-domain gather
// permutation (ring.MulPermAdd) — rotating one ciphertext by many steps
// pays the decomposition once (see Evaluator.RotateHoisted).

// Two gadgets are implemented:
//
//   - GadgetBV — the digit decomposition above: T·L rows per key,
//     quadratic in depth. Kept for compatibility and as the fallback for
//     parameter sets without special primes.
//   - GadgetHybrid — hybrid key switching with special primes (the P·Q
//     construction every bootstrappable stack uses): the Q chain splits
//     into dnum = ⌈L/α⌉ groups of α limbs, the modulus is raised to Q·P
//     (P = p_0…p_{k-1}, k = α special primes), and the key holds one row
//     per *group* over the extended basis:
//
//	ksk_j = (-a_j·s + e_j + P·δ_j·f,  a_j)  over  R_{Q·P},
//
//     where δ_j is 1 on group-j limbs and 0 elsewhere (the RNS form of
//     P·Q̂_j·[Q̂_j^{-1}]_{Q_j}). The switch ModUps each group's residues to
//     the QP basis (rns.Extender), accumulates Σ_j D_j(c)·ksk_j there, and
//     ModDowns by P with rounding — the P factor cancels, leaving c·f plus
//     noise ≈ β·α·√N·σ·(Q_grp/P) ≲ σ·√(βαN), *independent of the digit
//     width*. Keys shrink from T·L rows of L limbs to ⌈L/α⌉ rows of L+k
//     limbs (≈ T·α/(1+k/L) ≈ 17× at the paper chains), and the hot path
//     runs β·(L+k) NTTs instead of T·L².

// DecompLogBase is the BV gadget digit width (w). 8 keeps switching noise
// ≈2^15 at the test parameters — comfortably below every scale in use
// (the hybrid gadget replaces the digit trade-off with the raised modulus).
const DecompLogBase = 8

// Gadget selects the key-switching decomposition a switching key was
// built for. The byte values are the wire encoding (evalkeyserialize.go).
type Gadget byte

const (
	// GadgetBV is the base-2^w CRT digit gadget (PR 4's construction).
	GadgetBV Gadget = 0
	// GadgetHybrid is hybrid key switching with special primes (P·Q).
	GadgetHybrid Gadget = 1
)

func (g Gadget) String() string {
	switch g {
	case GadgetBV:
		return "bv"
	case GadgetHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("gadget(%d)", byte(g))
}

// SwitchingKey holds the gadget encryptions for one target polynomial.
// Level is the depth the key supports: the key can switch any ciphertext
// at level ≤ Level (prefix views) — depth-capped keys are how
// evaluation-key blobs stay proportional to the depth the server actually
// computes at.
//
// BV keys carry K0[i][t]/K1[i][t] (Level limbs each; quadratic in depth:
// Level²·Digits·2 polynomial limbs). Hybrid keys carry H0[j]/H1[j] — one
// row per decomposition group, Level+Alpha limbs each over the extended
// basis (q_0..q_{Level-1}, p_0..p_{α-1}), linear in depth.
type SwitchingKey struct {
	Gadget Gadget

	// K0[i][t], K1[i][t]: the two halves of ksk_{i,t}, NTT domain, Level
	// limbs (BV only).
	K0, K1 [][]*ring.Poly
	Digits int // BV digit count T

	// H0[j], H1[j]: the two halves of the group-j row, NTT domain,
	// Level+Alpha limbs over the QP basis (hybrid only).
	H0, H1 []*ring.Poly
	Alpha  int // hybrid group size α (== Parameters.SpecialLimbs)

	Level int
}

// digitsPerLimb is ceil(LimbBits / DecompLogBase).
func (p *Parameters) digitsPerLimb() int {
	return (p.LimbBits + DecompLogBase - 1) / DecompLogBase
}

// GenSwitchingKey builds the full-depth key that moves ciphertext mass
// from key f to the generator's secret s. f must be in the NTT domain with
// at least MaxLevel limbs.
func (kg *KeyGenerator) GenSwitchingKey(sk *SecretKey, f *ring.Poly, streamBase uint64) *SwitchingKey {
	return kg.GenSwitchingKeyAt(sk, f, kg.params.MaxLevel(), streamBase)
}

// GenSwitchingKeyAt is GenSwitchingKey capped at `depth` limbs: the key
// can switch ciphertexts at any level ≤ depth. Sampling streams are
// consumed limb-sequentially, so a depth-capped key is the limb prefix of
// the full-depth key over the same stream base.
func (kg *KeyGenerator) GenSwitchingKeyAt(sk *SecretKey, f *ring.Poly, depth int, streamBase uint64) *SwitchingKey {
	p := kg.params
	if depth < 1 || depth > p.MaxLevel() {
		panic("ckks: switching-key depth out of range")
	}
	r := p.RingAt(depth)
	T := p.digitsPerLimb()
	skd := &ring.Poly{Coeffs: sk.S.Coeffs[:depth], IsNTT: true}

	ksk := &SwitchingKey{Gadget: GadgetBV, Digits: T, Level: depth}
	ksk.K0 = make([][]*ring.Poly, depth)
	ksk.K1 = make([][]*ring.Poly, depth)

	stream := streamBase
	for i := 0; i < depth; i++ {
		ksk.K0[i] = make([]*ring.Poly, T)
		ksk.K1[i] = make([]*ring.Poly, T)
		for t := 0; t < T; t++ {
			stream += 2
			a := r.NewPoly()
			r.UniformPoly(prng.NewSource(kg.seed, stream), a)
			a.IsNTT = true

			e := r.GetPolyUninit() // sampler fully overwrites
			r.GaussianPoly(prng.NewSource(kg.seed, stream+1), e)
			r.NTT(e)

			b := r.NewPoly()
			r.MulCoeffs(a, skd, b)
			r.Neg(b, b)
			r.Add(b, e, b)
			r.PutPoly(e)

			// + 2^{wt}·u_i·f : u_i is 1 on limb i and 0 elsewhere, so the
			// gadget term only touches limb i.
			shift := uint64(1) << uint(DecompLogBase*t)
			m := r.Basis.Moduli[i]
			fi := f.Coeffs[i]
			bi := b.Coeffs[i]
			sc := shift % m.Q
			for j := range bi {
				bi[j] = m.Add(bi[j], m.Mul(fi[j], sc))
			}
			ksk.K0[i][t] = b
			ksk.K1[i][t] = a
		}
	}
	return ksk
}

// genHybridSwitchingKey builds the hybrid key that moves polynomial mass
// multiplied by fQP back to the secret: one row per decomposition group
// over the extended basis. sQP and fQP must be NTT-domain polynomials over
// RingQPAt(depth). Streams are consumed two per row from streamBase, so
// regeneration from the same seed is byte-identical (and hybrid bases are
// disjoint from the BV windows — a BV and a hybrid key derived from the
// same owner seed must never share mask/error streams, or their difference
// would expose the gadget term).
func (kg *KeyGenerator) genHybridSwitchingKey(sQP, fQP *ring.Poly, depth int, streamBase uint64) *SwitchingKey {
	p := kg.params
	rqp := p.RingQPAt(depth)
	beta := p.DnumAt(depth)
	ksk := &SwitchingKey{
		Gadget: GadgetHybrid, Alpha: p.SpecialLimbs, Level: depth,
		H0: make([]*ring.Poly, beta), H1: make([]*ring.Poly, beta),
	}
	stream := streamBase
	for j := 0; j < beta; j++ {
		stream += 2
		a := rqp.NewPoly()
		rqp.UniformPoly(prng.NewSource(kg.seed, stream), a)
		a.IsNTT = true

		e := rqp.GetPolyUninit() // sampler fully overwrites
		rqp.GaussianPoly(prng.NewSource(kg.seed, stream+1), e)
		rqp.NTT(e)

		b := rqp.NewPoly()
		rqp.MulCoeffs(a, sQP, b)
		rqp.Neg(b, b)
		rqp.Add(b, e, b)
		rqp.PutPoly(e)

		// + P·δ_j·f: the gadget term touches only group-j limbs (it is 0 on
		// the other Q limbs and ≡ 0 mod every special prime).
		lo, hi := p.groupRange(depth, j)
		for i := lo; i < hi; i++ {
			m := rqp.Basis.Moduli[i]
			sc := p.pModQ[i]
			fi, bi := fQP.Coeffs[i], b.Coeffs[i]
			for x := range bi {
				bi[x] = m.Add(bi[x], m.Mul(fi[x], sc))
			}
		}
		ksk.H0[j], ksk.H1[j] = b, a
	}
	return ksk
}

// hoistedDigits is a ciphertext's c1 in gadget-decomposed, NTT-domain form
// — the expensive half of a key switch, computed once and reusable across
// any number of Galois elements. All storage is pooled: release with
// releaseDigits. BV: dig[i·digits+t] is digit t of limb i (level limbs
// each). Hybrid: dig[j] is group j raised to the QP basis (level+α limbs).
type hoistedDigits struct {
	dig    []*ring.Poly
	level  int
	digits int
	gadget Gadget
}

// hoistDigits decomposes c (coefficient domain, `level` limbs) into its
// gadget digits and transforms each — digits·level NTTs, paid once per
// input ciphertext however many switches consume it. The whole pass is one
// limb-major lane dispatch: lane k extracts and transforms row k of every
// digit (rows are disjoint, so any worker count computes the same bytes).
func (p *Parameters) hoistDigits(c *ring.Poly, level, digits int) *hoistedDigits {
	rl := p.RingAt(level)
	h := &hoistedDigits{gadget: GadgetBV, level: level, digits: digits, dig: make([]*ring.Poly, level*digits)}
	for idx := range h.dig {
		h.dig[idx] = rl.GetPolyUninit() // every row fully overwritten below
	}
	mask := uint64(1)<<DecompLogBase - 1
	rl.Engine().Run(level, func(k int) {
		q := rl.Basis.Moduli[k].Q
		fwd := rl.Tables[k]
		for i := 0; i < level; i++ {
			src := c.Coeffs[i]
			for t := 0; t < digits; t++ {
				shift := uint(DecompLogBase * t)
				row := h.dig[i*digits+t].Coeffs[k]
				for j, v := range src {
					row[j] = ((v >> shift) & mask) % q
				}
				fwd.Forward(row)
			}
		}
	})
	for _, d := range h.dig {
		d.IsNTT = true
	}
	return h
}

// hoistHybrid decomposes c (coefficient domain, `level` limbs) into its
// β = ⌈level/α⌉ group digits, each raised to the extended QP basis
// (rns.Extender fast base conversion, chunked across the lanes) and
// transformed — β·(level+k) NTTs, against the BV gadget's digits·level²
// (paid once per input ciphertext however many switches consume it).
func (p *Parameters) hoistHybrid(c *ring.Poly, level int) *hoistedDigits {
	rqp := p.RingQPAt(level)
	beta := p.DnumAt(level)
	h := &hoistedDigits{gadget: GadgetHybrid, level: level, dig: make([]*ring.Poly, beta)}
	for j := 0; j < beta; j++ {
		lo, hi := p.groupRange(level, j)
		d := rqp.GetPolyUninit() // the extension writes every word
		rqp.ModUpInto(p.groupExtender(level, j), c.Coeffs[lo:hi], d)
		rqp.NTT(d)
		h.dig[j] = d
	}
	return h
}

// hoistFor runs the decomposition matching the switching key's gadget.
func (p *Parameters) hoistFor(c *ring.Poly, level int, ksk *SwitchingKey) *hoistedDigits {
	if ksk.Gadget == GadgetHybrid {
		if p.ringQ.Backend().Specialized() {
			return p.hoistHybridFused(c, level)
		}
		return p.hoistHybrid(c, level)
	}
	return p.hoistDigits(c, level, ksk.Digits)
}

// releaseDigits returns the decomposition's pooled storage.
func (p *Parameters) releaseDigits(h *hoistedDigits) {
	rl := p.RingAt(h.level)
	for _, d := range h.dig {
		rl.PutPoly(d)
	}
}

// applyInto accumulates the key switch of the hoisted digits into
// (acc0, acc1) — NTT domain, h.level limbs — dispatching on the key's
// gadget. σ (perm, nil ⇒ identity) is applied to the digits in both
// constructions (the hoisting identity holds for any ring automorphism).
func (p *Parameters) applyInto(h *hoistedDigits, ksk *SwitchingKey, perm []int32, acc0, acc1 *ring.Poly) {
	if h.gadget != ksk.Gadget {
		panic("ckks: hoisted decomposition does not match the switching key's gadget")
	}
	if ksk.Gadget == GadgetHybrid {
		p.applyHybridInto(h, ksk, perm, acc0, acc1)
		return
	}
	p.applyHoistedInto(h, ksk, perm, acc0, acc1)
}

// applyHybridInto is the hybrid half of applyInto: accumulate
// Σ_j σ(D_j)·ksk_j over the extended QP basis (one fused limb-major lane
// dispatch — key limbs are addressed through the depth-capped key's
// geometry, so a level-ℓ switch reads rows 0..ℓ-1 and the P tail of each
// Level-limb key row), then ModDown both halves by P with rounding into
// the Q-basis accumulators.
func (p *Parameters) applyHybridInto(h *hoistedDigits, ksk *SwitchingKey, perm []int32, acc0, acc1 *ring.Poly) {
	if h.level > ksk.Level {
		panic("ckks: ciphertext level exceeds switching-key depth")
	}
	level, k := h.level, p.SpecialLimbs
	rqp := p.RingQPAt(level)
	s0 := rqp.GetPoly() // accumulators start at zero
	s1 := rqp.GetPoly()
	s0.IsNTT, s1.IsNTT = true, true
	rqp.Engine().Run(level+k, func(m int) {
		km := m // key-row limb index: Q part aligns, P tail sits at ksk.Level
		if m >= level {
			km = ksk.Level + (m - level)
		}
		a0, a1 := s0.Coeffs[m], s1.Coeffs[m]
		for j, dj := range h.dig {
			d := dj.Coeffs[m]
			k0 := ksk.H0[j].Coeffs[km]
			k1 := ksk.H1[j].Coeffs[km]
			rqp.MulAddPairRow(m, perm, d, k0, k1, a0, a1)
		}
	})
	p.modDownInto(s0, level, acc0)
	p.modDownInto(s1, level, acc1)
	rqp.PutPoly(s0)
	rqp.PutPoly(s1)
}

// modDownInto adds round(acc/P) to out (both NTT domain): the closing
// basis reduction of a hybrid switch. acc (level+k limbs over QP) is
// consumed.
func (p *Parameters) modDownInto(acc *ring.Poly, level int, out *ring.Poly) {
	rq := p.RingAt(level)
	scratch := rq.GetPolyUninit() // ModUp inside fully overwrites
	ring.ModDownNTTInto(rq, p.ringP, p.modDownExtender(level), p.pInvModQ, acc, scratch, out)
	rq.PutPoly(scratch)
}

// applyHoistedInto accumulates the key switch of the hoisted digits into
// (acc0, acc1) — NTT domain, h.level limbs:
//
//	acc0 += Σ σ(d_{i,t})·K0[i][t],   acc1 += Σ σ(d_{i,t})·K1[i][t]
//
// where σ is the NTT-domain gather permutation (nil ⇒ identity). σ applied
// to the *digits* is the hoisting identity: because u_i is a constant and
// σ a ring automorphism, Σ σ(d)·2^{wt}u_i·σ(f) = σ(Σ d·2^{wt}u_i·f) =
// σ(c·f) — the same result as decomposing σ(c), with the decomposition
// (and its NTTs) paid once. One limb-major lane dispatch covers the whole
// double loop (the per-limb fused gather-multiply-accumulate is
// ring.MulPermAdd's kernel, inlined here so the digit loop stays inside
// the lane task instead of paying a dispatch per digit).
func (p *Parameters) applyHoistedInto(h *hoistedDigits, ksk *SwitchingKey, perm []int32, acc0, acc1 *ring.Poly) {
	if h.level > ksk.Level {
		panic("ckks: ciphertext level exceeds switching-key depth")
	}
	rl := p.RingAt(h.level)
	rl.Engine().Run(h.level, func(k int) {
		a0, a1 := acc0.Coeffs[k], acc1.Coeffs[k]
		for i := 0; i < h.level; i++ {
			for t := 0; t < ksk.Digits; t++ {
				d := h.dig[i*h.digits+t].Coeffs[k]
				k0 := ksk.K0[i][t].Coeffs[k]
				k1 := ksk.K1[i][t].Coeffs[k]
				rl.MulAddPairRow(k, perm, d, k0, k1, a0, a1)
			}
		}
	})
}

// ---------------------------------------------------------------------
// Relinearization
// ---------------------------------------------------------------------

// RelinearizationKey switches s² mass back to s.
type RelinearizationKey struct{ K *SwitchingKey }

// relinStreamBase seeds the BV relinearization key's sampling streams.
// The hybrid keys draw from disjoint windows (1<<52 / 1<<53): BV and
// hybrid keys over the same owner seed coexist on the wire (the gadget
// cross-compatibility deployment), and sharing a stream base would give
// two published key equations the same mask and error — their difference
// would hand an attacker the gadget term (P−2^wt)·s² in the clear.
const (
	relinStreamBase       = 1 << 50
	hybridRelinStreamBase = 1 << 52
)

// GenRelinearizationKey derives the full-depth relinearization key.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *RelinearizationKey {
	return kg.GenRelinearizationKeyAt(sk, kg.params.MaxLevel())
}

// GenRelinearizationKeyHybridAt derives the hybrid relinearization key
// capped at `depth` limbs. The secret is re-derived from the generator's
// seed and expanded onto the extended basis (the stored SecretKey carries
// only Q limbs), so no argument is needed beyond the depth.
func (kg *KeyGenerator) GenRelinearizationKeyHybridAt(depth int) *RelinearizationKey {
	p := kg.params
	if depth < 1 || depth > p.MaxLevel() {
		panic("ckks: relinearization-key depth out of range")
	}
	rqp := p.RingQPAt(depth)
	s := kg.secretQP(depth)
	s2 := rqp.GetPolyUninit() // MulCoeffs fully overwrites
	rqp.MulCoeffs(s, s, s2)
	rlk := &RelinearizationKey{K: kg.genHybridSwitchingKey(s, s2, depth, hybridRelinStreamBase)}
	rqp.PutPoly(s2)
	rqp.PutPoly(s)
	return rlk
}

// GenRelinearizationKeyAt derives the relinearization key capped at
// `depth` limbs (usable for MulRelin at levels ≤ depth).
func (kg *KeyGenerator) GenRelinearizationKeyAt(sk *SecretKey, depth int) *RelinearizationKey {
	r := kg.params.RingAt(depth)
	skd := &ring.Poly{Coeffs: sk.S.Coeffs[:depth], IsNTT: true}
	s2 := r.GetPolyUninit() // MulCoeffs fully overwrites
	r.MulCoeffs(skd, skd, s2)
	rlk := &RelinearizationKey{K: kg.GenSwitchingKeyAt(sk, s2, depth, relinStreamBase)}
	r.PutPoly(s2)
	return rlk
}

// MulRelin multiplies two ciphertexts and relinearizes the degree-2 term:
// (a0,a1)·(b0,b1) → (a0b0 + ks0, a0b1 + a1b0 + ks1) where (ks0, ks1) is
// the switched a1b1. The result's scale is the product of scales; rescale
// afterwards. The operands' level must not exceed rlk's depth. All scratch
// is pooled; only the returned ciphertext is freshly allocated.
func (ev *Evaluator) MulRelin(a, b *Ciphertext, rlk *RelinearizationKey) *Ciphertext {
	sameLevelScale(a, b)
	return ev.mulRelinUnchecked(a, b, rlk)
}

// mulRelinUnchecked is MulRelin without the equal-scale precondition: the
// operands' levels must match, but their scales may differ (the result's
// scale is still the product). EvalPoly's giant steps rely on this — the
// quotient branch is deliberately evaluated at scale S·q/S_giant so the
// product lands back on the schedule's target after rescaling.
func (ev *Evaluator) mulRelinUnchecked(a, b *Ciphertext, rlk *RelinearizationKey) *Ciphertext {
	if a.Level != b.Level {
		panic("ckks: ciphertext level mismatch")
	}
	level := a.Level
	if level > rlk.K.Level {
		panic("ckks: ciphertext level exceeds relinearization-key depth")
	}
	rl := ev.ringAt(level)

	a0 := rl.GetPolyCopy(a.C0)
	a1 := rl.GetPolyCopy(a.C1)
	b0 := rl.GetPolyCopy(b.C0)
	b1 := rl.GetPolyCopy(b.C1)
	rl.NTT(a0)
	rl.NTT(a1)
	rl.NTT(b0)
	rl.NTT(b1)

	c0 := rl.NewPoly() // returned — caller-owned, never pooled
	c1 := rl.NewPoly()
	c2 := rl.GetPolyUninit()
	rl.MulCoeffs(a0, b0, c0)    // a0·b0
	rl.MulCoeffs(a0, b1, c1)    // a0·b1
	rl.MulCoeffsAdd(a1, b0, c1) // + a1·b0
	rl.MulCoeffs(a1, b1, c2)    // the degree-2 term
	rl.PutPoly(a0)
	rl.PutPoly(a1)
	rl.PutPoly(b0)
	rl.PutPoly(b1)

	// Key-switch c2 (the decomposition reads the coefficient domain), then
	// accumulate directly into the result halves. The fast backend runs
	// the hybrid switch fused (closing INTTs folded into its last stage);
	// the staged path is the portable reference.
	rl.INTT(c2)
	if ev.params.useFused(rlk.K) {
		ev.params.switchHybridFused(c2, level, rlk.K, nil, c0, c1, true)
		rl.PutPoly(c2)
		return &Ciphertext{C0: c0, C1: c1, Level: level, Scale: a.Scale * b.Scale}
	}
	h := ev.params.hoistFor(c2, level, rlk.K)
	rl.PutPoly(c2)
	ev.params.applyInto(h, rlk.K, nil, c0, c1)
	ev.params.releaseDigits(h)

	rl.INTT(c0)
	rl.INTT(c1)
	return &Ciphertext{C0: c0, C1: c1, Level: level, Scale: a.Scale * b.Scale}
}

// ---------------------------------------------------------------------
// Rotations (Galois automorphisms)
// ---------------------------------------------------------------------

// automorphism applies X → X^g to a coefficient-domain polynomial into a
// freshly allocated result (see ring.AutomorphismCoeff for the in-place
// kernel the hot paths use).
func automorphism(rl *ring.Ring, p *ring.Poly, g int) *ring.Poly {
	out := rl.NewPoly()
	rl.AutomorphismCoeff(p, g, out)
	return out
}

// GaloisElement returns the automorphism generator for a rotation by k
// slots: 5^k mod 2N (k may be negative).
func (p *Parameters) GaloisElement(k int) int {
	m := 2 * p.N()
	// order of 5 in (Z/2N)* is N/2; normalize k into [0, N/2).
	g := 1
	for i, n := 0, p.NormalizeStep(k); i < n; i++ {
		g = g * 5 % m
	}
	return g
}

// GaloisElementConjugate is the generator of complex conjugation: -1 mod 2N.
func (p *Parameters) GaloisElementConjugate() int { return 2*p.N() - 1 }

// NormalizeStep reduces a rotation step into [0, Slots): rotations act on
// the N/2 message slots, and 5 has order N/2 in (Z/2N)*.
func (p *Parameters) NormalizeStep(k int) int {
	half := p.Slots()
	return ((k % half) + half) % half
}

// RotationKey enables rotation by one fixed Galois element. Perm is the
// NTT-domain permutation realizing the automorphism on hoisted digits.
type RotationKey struct {
	G    int
	K    *SwitchingKey
	Perm []int32
}

// rotationStreamBase seeds a BV rotation key's sampling streams; Galois
// elements are < 2N ≤ 2^18 and each switching key consumes well under 2^20
// streams, so the per-element windows are disjoint (and disjoint from the
// relinearization base at 2^50). hybridRotationStreamBase is the hybrid
// sibling — a separate window at 2^53 for the same reason the
// relinearization bases are split (see relinStreamBase).
func rotationStreamBase(g int) uint64       { return 1<<51 + uint64(g)<<20 }
func hybridRotationStreamBase(g int) uint64 { return 1<<53 + uint64(g)<<20 }

// GenRotationKey derives the full-depth key for Galois element g: it
// switches s(X^g) mass back to s.
func (kg *KeyGenerator) GenRotationKey(sk *SecretKey, g int) *RotationKey {
	return kg.GenRotationKeyAt(sk, g, kg.params.MaxLevel())
}

// GenRotationKeyAt derives the rotation key for Galois element g capped at
// `depth` limbs.
func (kg *KeyGenerator) GenRotationKeyAt(sk *SecretKey, g, depth int) *RotationKey {
	r := kg.params.RingAt(depth)
	skd := &ring.Poly{Coeffs: sk.S.Coeffs[:depth], IsNTT: true}
	sCoeff := r.GetPolyCopy(skd)
	r.INTT(sCoeff)
	sg := r.GetPolyUninit() // automorphism writes every index
	r.AutomorphismCoeff(sCoeff, g, sg)
	r.NTT(sg)
	rk := &RotationKey{
		G:    g,
		K:    kg.GenSwitchingKeyAt(sk, sg, depth, rotationStreamBase(g)),
		Perm: kg.params.Ring().GaloisPermNTT(g),
	}
	r.PutPoly(sCoeff)
	r.PutPoly(sg)
	return rk
}

// GenRotationKeyHybridAt derives the hybrid rotation key for Galois
// element g capped at `depth` limbs: it switches s(X^g) mass back to s
// over the raised modulus. Like the hybrid relinearization key, the
// secret is re-derived from the seed onto the extended basis.
func (kg *KeyGenerator) GenRotationKeyHybridAt(g, depth int) *RotationKey {
	p := kg.params
	if depth < 1 || depth > p.MaxLevel() {
		panic("ckks: rotation-key depth out of range")
	}
	rqp := p.RingQPAt(depth)
	s := kg.secretQP(depth)
	sCoeff := rqp.GetPolyCopy(s)
	rqp.INTT(sCoeff)
	sg := rqp.GetPolyUninit() // automorphism writes every index
	rqp.AutomorphismCoeff(sCoeff, g, sg)
	rqp.NTT(sg)
	rk := &RotationKey{
		G:    g,
		K:    kg.genHybridSwitchingKey(s, sg, depth, hybridRotationStreamBase(g)),
		Perm: p.Ring().GaloisPermNTT(g),
	}
	rqp.PutPoly(sCoeff)
	rqp.PutPoly(sg)
	rqp.PutPoly(s)
	return rk
}

// RotateGalois applies the automorphism X → X^g and key-switches back to
// s. With g = GaloisElement(k) this rotates the message slots by k. The
// key switch runs on hoisted digits (the single-rotation degenerate case
// of RotateHoisted); σ(c0) is applied in the coefficient domain.
func (ev *Evaluator) RotateGalois(ct *Ciphertext, rk *RotationKey) *Ciphertext {
	if ev.params.useFused(rk.K) {
		return ev.rotateFused(ct, rk)
	}
	h := ev.params.hoistFor(ct.C1, ct.Level, rk.K)
	out := ev.rotateFromDigits(ct, h, rk)
	ev.params.releaseDigits(h)
	return out
}

// rotateFused is RotateGalois on the fused pipeline: the hoisted digits
// are never materialized (single-rotation case — nothing reuses them),
// the permuted switch lands directly in the result halves, and the
// closing INTTs ride the divide stage.
func (ev *Evaluator) rotateFused(ct *Ciphertext, rk *RotationKey) *Ciphertext {
	level := ct.Level
	if level > rk.K.Level {
		panic("ckks: ciphertext level exceeds rotation-key depth")
	}
	rl := ev.ringAt(level)
	out0 := rl.NewPoly() // returned — caller-owned, never pooled
	out1 := rl.NewPoly()
	out0.IsNTT, out1.IsNTT = true, true
	ev.params.switchHybridFused(ct.C1, level, rk.K, rk.Perm, out0, out1, true)

	c0g := rl.GetPolyUninit() // automorphism writes every index
	rl.AutomorphismCoeff(ct.C0, rk.G, c0g)
	rl.Add(out0, c0g, out0)
	rl.PutPoly(c0g)

	return &Ciphertext{C0: out0, C1: out1, Level: level, Scale: ct.Scale}
}

// RotateHoisted rotates one ciphertext by every key in rks, paying the
// digit decomposition (T·L NTTs) once: each additional rotation costs only
// the O(N)-per-limb gather-multiply-accumulate and the closing transforms.
// Results are index-aligned with rks.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, rks []*RotationKey) []*Ciphertext {
	if len(rks) == 0 {
		return nil
	}
	h := ev.params.hoistFor(ct.C1, ct.Level, rks[0].K)
	out := make([]*Ciphertext, len(rks))
	for i, rk := range rks {
		if rk.K.Gadget != rks[0].K.Gadget || rk.K.Digits != rks[0].K.Digits || rk.K.Alpha != rks[0].K.Alpha {
			panic("ckks: hoisted rotation keys disagree on gadget geometry")
		}
		out[i] = ev.rotateFromDigits(ct, h, rk)
	}
	ev.params.releaseDigits(h)
	return out
}

// rotateFromDigits finishes one rotation from a hoisted decomposition of
// ct.C1: permuted key-switch accumulate, closing INTTs, and σ(c0).
func (ev *Evaluator) rotateFromDigits(ct *Ciphertext, h *hoistedDigits, rk *RotationKey) *Ciphertext {
	level := ct.Level
	if level > rk.K.Level {
		panic("ckks: ciphertext level exceeds rotation-key depth")
	}
	rl := ev.ringAt(level)
	out0 := rl.NewPoly() // returned — caller-owned, never pooled
	out1 := rl.NewPoly()
	out0.IsNTT, out1.IsNTT = true, true
	ev.params.applyInto(h, rk.K, rk.Perm, out0, out1)
	rl.INTT(out0)
	rl.INTT(out1)

	c0g := rl.GetPolyUninit() // automorphism writes every index
	rl.AutomorphismCoeff(ct.C0, rk.G, c0g)
	rl.Add(out0, c0g, out0)
	rl.PutPoly(c0g)

	return &Ciphertext{C0: out0, C1: out1, Level: level, Scale: ct.Scale}
}
