// Package baseline provides the comparison points of the paper's
// evaluation: the CPU running Lattigo, the prior client-side accelerators
// ([3] RACE, [10] Di Matteo et al., [22] ALOHA-HE, [34] Wang et al.), and
// the server-side accelerator ([9] Trinity) used in Fig. 1.
//
// The paper compares against *reported numbers* of prior work under two
// normalizations (§V-C): frequencies are scaled to ABC-FHE's 600 MHz, and
// designs that do not support bootstrappable parameters have their latency
// scaled by the proportion of operations. We reproduce exactly that
// methodology. Where a prior work's absolute latency is not recoverable
// from public material, the paper's published speed-up ratios against
// ABC-FHE serve as the literature anchor — each entry is labeled with its
// provenance so no anchored number is mistaken for a measurement.
package baseline

// Provenance tags how a latency figure was obtained.
type Provenance string

const (
	// Measured: produced by running code in this repository.
	Measured Provenance = "measured"
	// Simulated: produced by internal/sim (our cycle-level model).
	Simulated Provenance = "simulated"
	// PaperAnchored: reconstructed from the paper's published speed-up
	// ratios applied to our simulated ABC-FHE latency.
	PaperAnchored Provenance = "paper-anchored"
)

// Point is one comparison system's latency for one operation.
type Point struct {
	System     string
	Op         string // "enc" (encode+encrypt) or "dec" (decode+decrypt)
	LatencyMS  float64
	Provenance Provenance
	Note       string
}

// Paper-published speed-ups of ABC-FHE (§V-C / Fig. 5a): the ratios that
// define the anchored baselines.
const (
	PaperSpeedupEncVsCPU  = 1112.0
	PaperSpeedupDecVsCPU  = 963.0
	PaperSpeedupEncVsSOTA = 214.0 // vs. best prior accelerator ([34]/[22])
	PaperSpeedupDecVsSOTA = 82.0
)

// Fig. 1's published execution-time shares for the ResNet20-FHE workload:
// with the SOTA client accelerator [34] and server accelerator [9],
// client-side work is 69.4% of total; the server side is 30.6%.
const (
	PaperClientShareSOTA = 0.694
	PaperServerShareSOTA = 0.306
)

// AnchoredSet reconstructs the Fig. 5a comparison around a simulated
// ABC-FHE latency pair (milliseconds).
func AnchoredSet(abcEncMS, abcDecMS float64) []Point {
	return []Point{
		{"CPU (i7-12700, Lattigo, 1 core)", "enc", abcEncMS * PaperSpeedupEncVsCPU, PaperAnchored,
			"paper: 1112x speed-up for encoding+encryption"},
		{"CPU (i7-12700, Lattigo, 1 core)", "dec", abcDecMS * PaperSpeedupDecVsCPU, PaperAnchored,
			"paper: 963x speed-up for decoding+decryption"},
		{"SOTA accel [34]/[22] (normalized)", "enc", abcEncMS * PaperSpeedupEncVsSOTA, PaperAnchored,
			"paper: 214x over the best prior client accelerator"},
		{"SOTA accel [34]/[22] (normalized)", "dec", abcDecMS * PaperSpeedupDecVsSOTA, PaperAnchored,
			"paper: 82x over the best prior client accelerator"},
		{"ABC-FHE (this work)", "enc", abcEncMS, Simulated, "internal/sim cycle model"},
		{"ABC-FHE (this work)", "dec", abcDecMS, Simulated, "internal/sim cycle model"},
	}
}

// NormalizeFrequency applies the paper's frequency normalization: latency
// measured at fromMHz rescaled to toMHz (cycle count preserved).
func NormalizeFrequency(latencyMS, fromMHz, toMHz float64) float64 {
	return latencyMS * fromMHz / toMHz
}

// ScaleByOpProportion applies the paper's second normalization: a design
// evaluated on smaller parameters has its latency scaled by the ratio of
// operation counts (ops at the target parameters / ops it ran).
func ScaleByOpProportion(latencyMS, opsRan, opsTarget float64) float64 {
	return latencyMS * opsTarget / opsRan
}

// Speedup is a convenience: baseline over candidate.
func Speedup(baselineMS, candidateMS float64) float64 {
	return baselineMS / candidateMS
}

// Fig1Breakdown models the Fig. 1 stacked bars: end-to-end ResNet20-FHE
// time split into client encode/encrypt, client decode/decrypt, and
// server-side homomorphic evaluation, for three client configurations.
type Fig1Breakdown struct {
	Label       string
	ClientEncMS float64
	ClientDecMS float64
	ServerMS    float64
	ClientShare float64
}

// Fig1 reconstructs the breakdown. The workload (ResNet20 over FHE)
// requires nCt ciphertext round trips; serverMS is the published
// server-side time anchor for the whole inference, derived from the
// paper's 30.6%/69.4% split against the SOTA client.
func Fig1(abcEncMS, abcDecMS float64, nCt int) []Fig1Breakdown {
	n := float64(nCt)
	sotaEnc := abcEncMS * PaperSpeedupEncVsSOTA * n
	sotaDec := abcDecMS * PaperSpeedupDecVsSOTA * n
	cpuEnc := abcEncMS * PaperSpeedupEncVsCPU * n
	cpuDec := abcDecMS * PaperSpeedupDecVsCPU * n
	// Server time from the published share: server = client_SOTA * (30.6/69.4).
	server := (sotaEnc + sotaDec) * PaperServerShareSOTA / PaperClientShareSOTA

	rows := []Fig1Breakdown{
		{"CPU client + [9] server", cpuEnc, cpuDec, server, 0},
		{"[34] client + [9] server", sotaEnc, sotaDec, server, 0},
		{"ABC-FHE client + [9] server", abcEncMS * n, abcDecMS * n, server, 0},
	}
	for i := range rows {
		c := rows[i].ClientEncMS + rows[i].ClientDecMS
		rows[i].ClientShare = c / (c + rows[i].ServerMS)
	}
	return rows
}
