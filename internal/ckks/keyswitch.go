package ckks

import (
	"repro/internal/prng"
	"repro/internal/ring"
)

// Key switching via gadget (digit) decomposition — the server-side
// machinery that makes ciphertext-ciphertext multiplication and slot
// rotations possible. ABC-FHE itself never executes these (it is a client
// accelerator), but the ciphertexts it produces are consumed by servers
// that do — so the server half of the protocol is a first-class citizen
// here, reachable through the public Server role.
//
// Construction (BV-style, no special modulus): to switch a polynomial c
// from key f to key s, write c in the combined CRT × base-2^w gadget
//
//	c = Σ_{i<L} Σ_{t<T} d_{i,t} · (2^{wt} · u_i)   with  d_{i,t} < 2^w,
//
// where u_i is the CRT basis element (u_i ≡ 1 mod q_i, ≡ 0 mod q_j). The
// switching key encrypts each gadget element times f:
//
//	ksk_{i,t} = (-a·s + e + 2^{wt}·u_i·f,  a)
//
// and the switch computes (Σ d_{i,t}·ksk0, Σ d_{i,t}·ksk1). Noise grows by
// ≈ 2^w·sqrt(L·T·N)·σ — kept below the scale by choosing w; production
// systems use a raised modulus instead (documented trade-off).
//
// Hot-path structure: the inner loop (digit decompose → NTT → fused
// multiply-accumulate) draws every scratch polynomial from the lanes
// pools and dispatches limb-wise through the engine, so the steady state
// allocates only the returned ciphertext and scales with workers like
// encrypt/decode. Rotations run *hoisted*: the digit decomposition (and
// its NTTs) is computed once per input ciphertext, and each Galois
// element is applied to the decomposed digits as an NTT-domain gather
// permutation (ring.MulPermAdd) — rotating one ciphertext by many steps
// pays the decomposition once (see Evaluator.RotateHoisted).

// DecompLogBase is the gadget digit width (w). 8 keeps switching noise
// ≈2^15 at the test parameters — comfortably below every scale in use
// (production RNS-CKKS uses a raised special modulus instead; the digit
// gadget trades key size for implementation simplicity).
const DecompLogBase = 8

// SwitchingKey holds the gadget encryptions for one target polynomial.
// Level is the depth the key supports: its polynomials carry Level limbs,
// and the key can switch any ciphertext at level ≤ Level (prefix views) —
// depth-capped keys are how evaluation-key blobs stay proportional to the
// depth the server actually computes at (the gadget is quadratic in depth:
// Level² · Digits · 2 polynomial limbs per key).
type SwitchingKey struct {
	// K0[i][t], K1[i][t]: the two halves of ksk_{i,t}, NTT domain, Level limbs.
	K0, K1 [][]*ring.Poly
	Digits int
	Level  int
}

// digitsPerLimb is ceil(LimbBits / DecompLogBase).
func (p *Parameters) digitsPerLimb() int {
	return (p.LimbBits + DecompLogBase - 1) / DecompLogBase
}

// GenSwitchingKey builds the full-depth key that moves ciphertext mass
// from key f to the generator's secret s. f must be in the NTT domain with
// at least MaxLevel limbs.
func (kg *KeyGenerator) GenSwitchingKey(sk *SecretKey, f *ring.Poly, streamBase uint64) *SwitchingKey {
	return kg.GenSwitchingKeyAt(sk, f, kg.params.MaxLevel(), streamBase)
}

// GenSwitchingKeyAt is GenSwitchingKey capped at `depth` limbs: the key
// can switch ciphertexts at any level ≤ depth. Sampling streams are
// consumed limb-sequentially, so a depth-capped key is the limb prefix of
// the full-depth key over the same stream base.
func (kg *KeyGenerator) GenSwitchingKeyAt(sk *SecretKey, f *ring.Poly, depth int, streamBase uint64) *SwitchingKey {
	p := kg.params
	if depth < 1 || depth > p.MaxLevel() {
		panic("ckks: switching-key depth out of range")
	}
	r := p.RingAt(depth)
	T := p.digitsPerLimb()
	skd := &ring.Poly{Coeffs: sk.S.Coeffs[:depth], IsNTT: true}

	ksk := &SwitchingKey{Digits: T, Level: depth}
	ksk.K0 = make([][]*ring.Poly, depth)
	ksk.K1 = make([][]*ring.Poly, depth)

	stream := streamBase
	for i := 0; i < depth; i++ {
		ksk.K0[i] = make([]*ring.Poly, T)
		ksk.K1[i] = make([]*ring.Poly, T)
		for t := 0; t < T; t++ {
			stream += 2
			a := r.NewPoly()
			r.UniformPoly(prng.NewSource(kg.seed, stream), a)
			a.IsNTT = true

			e := r.GetPolyUninit() // sampler fully overwrites
			r.GaussianPoly(prng.NewSource(kg.seed, stream+1), e)
			r.NTT(e)

			b := r.NewPoly()
			r.MulCoeffs(a, skd, b)
			r.Neg(b, b)
			r.Add(b, e, b)
			r.PutPoly(e)

			// + 2^{wt}·u_i·f : u_i is 1 on limb i and 0 elsewhere, so the
			// gadget term only touches limb i.
			shift := uint64(1) << uint(DecompLogBase*t)
			m := r.Basis.Moduli[i]
			fi := f.Coeffs[i]
			bi := b.Coeffs[i]
			sc := shift % m.Q
			for j := range bi {
				bi[j] = m.Add(bi[j], m.Mul(fi[j], sc))
			}
			ksk.K0[i][t] = b
			ksk.K1[i][t] = a
		}
	}
	return ksk
}

// hoistedDigits is a ciphertext's c1 in gadget-decomposed, NTT-domain form
// — the expensive half of a key switch, computed once and reusable across
// any number of Galois elements. All storage is pooled: release with
// releaseDigits. dig[i·digits+t] is digit t of limb i.
type hoistedDigits struct {
	dig    []*ring.Poly
	level  int
	digits int
}

// hoistDigits decomposes c (coefficient domain, `level` limbs) into its
// gadget digits and transforms each — digits·level NTTs, paid once per
// input ciphertext however many switches consume it. The whole pass is one
// limb-major lane dispatch: lane k extracts and transforms row k of every
// digit (rows are disjoint, so any worker count computes the same bytes).
func (p *Parameters) hoistDigits(c *ring.Poly, level, digits int) *hoistedDigits {
	rl := p.RingAt(level)
	h := &hoistedDigits{level: level, digits: digits, dig: make([]*ring.Poly, level*digits)}
	for idx := range h.dig {
		h.dig[idx] = rl.GetPolyUninit() // every row fully overwritten below
	}
	mask := uint64(1)<<DecompLogBase - 1
	rl.Engine().Run(level, func(k int) {
		q := rl.Basis.Moduli[k].Q
		fwd := rl.Tables[k]
		for i := 0; i < level; i++ {
			src := c.Coeffs[i]
			for t := 0; t < digits; t++ {
				shift := uint(DecompLogBase * t)
				row := h.dig[i*digits+t].Coeffs[k]
				for j, v := range src {
					row[j] = ((v >> shift) & mask) % q
				}
				fwd.Forward(row)
			}
		}
	})
	for _, d := range h.dig {
		d.IsNTT = true
	}
	return h
}

// releaseDigits returns the decomposition's pooled storage.
func (p *Parameters) releaseDigits(h *hoistedDigits) {
	rl := p.RingAt(h.level)
	for _, d := range h.dig {
		rl.PutPoly(d)
	}
}

// applyHoistedInto accumulates the key switch of the hoisted digits into
// (acc0, acc1) — NTT domain, h.level limbs:
//
//	acc0 += Σ σ(d_{i,t})·K0[i][t],   acc1 += Σ σ(d_{i,t})·K1[i][t]
//
// where σ is the NTT-domain gather permutation (nil ⇒ identity). σ applied
// to the *digits* is the hoisting identity: because u_i is a constant and
// σ a ring automorphism, Σ σ(d)·2^{wt}u_i·σ(f) = σ(Σ d·2^{wt}u_i·f) =
// σ(c·f) — the same result as decomposing σ(c), with the decomposition
// (and its NTTs) paid once. One limb-major lane dispatch covers the whole
// double loop (the per-limb fused gather-multiply-accumulate is
// ring.MulPermAdd's kernel, inlined here so the digit loop stays inside
// the lane task instead of paying a dispatch per digit).
func (p *Parameters) applyHoistedInto(h *hoistedDigits, ksk *SwitchingKey, perm []int32, acc0, acc1 *ring.Poly) {
	if h.level > ksk.Level {
		panic("ckks: ciphertext level exceeds switching-key depth")
	}
	rl := p.RingAt(h.level)
	rl.Engine().Run(h.level, func(k int) {
		m := rl.Basis.Moduli[k]
		a0, a1 := acc0.Coeffs[k], acc1.Coeffs[k]
		for i := 0; i < h.level; i++ {
			for t := 0; t < ksk.Digits; t++ {
				d := h.dig[i*h.digits+t].Coeffs[k]
				k0 := ksk.K0[i][t].Coeffs[k]
				k1 := ksk.K1[i][t].Coeffs[k]
				if perm == nil {
					for j := range a0 {
						a0[j] = m.Add(a0[j], m.Mul(d[j], k0[j]))
						a1[j] = m.Add(a1[j], m.Mul(d[j], k1[j]))
					}
					continue
				}
				for j := range a0 {
					dp := d[perm[j]]
					a0[j] = m.Add(a0[j], m.Mul(dp, k0[j]))
					a1[j] = m.Add(a1[j], m.Mul(dp, k1[j]))
				}
			}
		}
	})
}

// ---------------------------------------------------------------------
// Relinearization
// ---------------------------------------------------------------------

// RelinearizationKey switches s² mass back to s.
type RelinearizationKey struct{ K *SwitchingKey }

// relinStreamBase seeds the relinearization key's sampling streams.
const relinStreamBase = 1 << 50

// GenRelinearizationKey derives the full-depth relinearization key.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *RelinearizationKey {
	return kg.GenRelinearizationKeyAt(sk, kg.params.MaxLevel())
}

// GenRelinearizationKeyAt derives the relinearization key capped at
// `depth` limbs (usable for MulRelin at levels ≤ depth).
func (kg *KeyGenerator) GenRelinearizationKeyAt(sk *SecretKey, depth int) *RelinearizationKey {
	r := kg.params.RingAt(depth)
	skd := &ring.Poly{Coeffs: sk.S.Coeffs[:depth], IsNTT: true}
	s2 := r.GetPolyUninit() // MulCoeffs fully overwrites
	r.MulCoeffs(skd, skd, s2)
	rlk := &RelinearizationKey{K: kg.GenSwitchingKeyAt(sk, s2, depth, relinStreamBase)}
	r.PutPoly(s2)
	return rlk
}

// MulRelin multiplies two ciphertexts and relinearizes the degree-2 term:
// (a0,a1)·(b0,b1) → (a0b0 + ks0, a0b1 + a1b0 + ks1) where (ks0, ks1) is
// the switched a1b1. The result's scale is the product of scales; rescale
// afterwards. The operands' level must not exceed rlk's depth. All scratch
// is pooled; only the returned ciphertext is freshly allocated.
func (ev *Evaluator) MulRelin(a, b *Ciphertext, rlk *RelinearizationKey) *Ciphertext {
	sameLevelScale(a, b)
	level := a.Level
	if level > rlk.K.Level {
		panic("ckks: ciphertext level exceeds relinearization-key depth")
	}
	rl := ev.ringAt(level)

	a0 := rl.GetPolyCopy(a.C0)
	a1 := rl.GetPolyCopy(a.C1)
	b0 := rl.GetPolyCopy(b.C0)
	b1 := rl.GetPolyCopy(b.C1)
	rl.NTT(a0)
	rl.NTT(a1)
	rl.NTT(b0)
	rl.NTT(b1)

	c0 := rl.NewPoly() // returned — caller-owned, never pooled
	c1 := rl.NewPoly()
	c2 := rl.GetPolyUninit()
	rl.MulCoeffs(a0, b0, c0)    // a0·b0
	rl.MulCoeffs(a0, b1, c1)    // a0·b1
	rl.MulCoeffsAdd(a1, b0, c1) // + a1·b0
	rl.MulCoeffs(a1, b1, c2)    // the degree-2 term
	rl.PutPoly(a0)
	rl.PutPoly(a1)
	rl.PutPoly(b0)
	rl.PutPoly(b1)

	// Key-switch c2 (digit extraction needs the coefficient domain), then
	// accumulate directly into the result halves.
	rl.INTT(c2)
	h := ev.params.hoistDigits(c2, level, rlk.K.Digits)
	rl.PutPoly(c2)
	ev.params.applyHoistedInto(h, rlk.K, nil, c0, c1)
	ev.params.releaseDigits(h)

	rl.INTT(c0)
	rl.INTT(c1)
	return &Ciphertext{C0: c0, C1: c1, Level: level, Scale: a.Scale * b.Scale}
}

// ---------------------------------------------------------------------
// Rotations (Galois automorphisms)
// ---------------------------------------------------------------------

// automorphism applies X → X^g to a coefficient-domain polynomial into a
// freshly allocated result (see ring.AutomorphismCoeff for the in-place
// kernel the hot paths use).
func automorphism(rl *ring.Ring, p *ring.Poly, g int) *ring.Poly {
	out := rl.NewPoly()
	rl.AutomorphismCoeff(p, g, out)
	return out
}

// GaloisElement returns the automorphism generator for a rotation by k
// slots: 5^k mod 2N (k may be negative).
func (p *Parameters) GaloisElement(k int) int {
	m := 2 * p.N()
	// order of 5 in (Z/2N)* is N/2; normalize k into [0, N/2).
	g := 1
	for i, n := 0, p.NormalizeStep(k); i < n; i++ {
		g = g * 5 % m
	}
	return g
}

// GaloisElementConjugate is the generator of complex conjugation: -1 mod 2N.
func (p *Parameters) GaloisElementConjugate() int { return 2*p.N() - 1 }

// NormalizeStep reduces a rotation step into [0, Slots): rotations act on
// the N/2 message slots, and 5 has order N/2 in (Z/2N)*.
func (p *Parameters) NormalizeStep(k int) int {
	half := p.Slots()
	return ((k % half) + half) % half
}

// RotationKey enables rotation by one fixed Galois element. Perm is the
// NTT-domain permutation realizing the automorphism on hoisted digits.
type RotationKey struct {
	G    int
	K    *SwitchingKey
	Perm []int32
}

// rotationStreamBase seeds a rotation key's sampling streams; Galois
// elements are < 2N ≤ 2^18 and each switching key consumes well under 2^20
// streams, so the per-element windows are disjoint (and disjoint from the
// relinearization base at 2^50).
func rotationStreamBase(g int) uint64 { return 1<<51 + uint64(g)<<20 }

// GenRotationKey derives the full-depth key for Galois element g: it
// switches s(X^g) mass back to s.
func (kg *KeyGenerator) GenRotationKey(sk *SecretKey, g int) *RotationKey {
	return kg.GenRotationKeyAt(sk, g, kg.params.MaxLevel())
}

// GenRotationKeyAt derives the rotation key for Galois element g capped at
// `depth` limbs.
func (kg *KeyGenerator) GenRotationKeyAt(sk *SecretKey, g, depth int) *RotationKey {
	r := kg.params.RingAt(depth)
	skd := &ring.Poly{Coeffs: sk.S.Coeffs[:depth], IsNTT: true}
	sCoeff := r.GetPolyCopy(skd)
	r.INTT(sCoeff)
	sg := r.GetPolyUninit() // automorphism writes every index
	r.AutomorphismCoeff(sCoeff, g, sg)
	r.NTT(sg)
	rk := &RotationKey{
		G:    g,
		K:    kg.GenSwitchingKeyAt(sk, sg, depth, rotationStreamBase(g)),
		Perm: kg.params.Ring().GaloisPermNTT(g),
	}
	r.PutPoly(sCoeff)
	r.PutPoly(sg)
	return rk
}

// RotateGalois applies the automorphism X → X^g and key-switches back to
// s. With g = GaloisElement(k) this rotates the message slots by k. The
// key switch runs on hoisted digits (the single-rotation degenerate case
// of RotateHoisted); σ(c0) is applied in the coefficient domain.
func (ev *Evaluator) RotateGalois(ct *Ciphertext, rk *RotationKey) *Ciphertext {
	h := ev.params.hoistDigits(ct.C1, ct.Level, rk.K.Digits)
	out := ev.rotateFromDigits(ct, h, rk)
	ev.params.releaseDigits(h)
	return out
}

// RotateHoisted rotates one ciphertext by every key in rks, paying the
// digit decomposition (T·L NTTs) once: each additional rotation costs only
// the O(N)-per-limb gather-multiply-accumulate and the closing transforms.
// Results are index-aligned with rks.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, rks []*RotationKey) []*Ciphertext {
	if len(rks) == 0 {
		return nil
	}
	h := ev.params.hoistDigits(ct.C1, ct.Level, rks[0].K.Digits)
	out := make([]*Ciphertext, len(rks))
	for i, rk := range rks {
		if rk.K.Digits != rks[0].K.Digits {
			panic("ckks: hoisted rotation keys disagree on digit count")
		}
		out[i] = ev.rotateFromDigits(ct, h, rk)
	}
	ev.params.releaseDigits(h)
	return out
}

// rotateFromDigits finishes one rotation from a hoisted decomposition of
// ct.C1: permuted key-switch accumulate, closing INTTs, and σ(c0).
func (ev *Evaluator) rotateFromDigits(ct *Ciphertext, h *hoistedDigits, rk *RotationKey) *Ciphertext {
	level := ct.Level
	if level > rk.K.Level {
		panic("ckks: ciphertext level exceeds rotation-key depth")
	}
	rl := ev.ringAt(level)
	out0 := rl.NewPoly() // returned — caller-owned, never pooled
	out1 := rl.NewPoly()
	out0.IsNTT, out1.IsNTT = true, true
	ev.params.applyHoistedInto(h, rk.K, rk.Perm, out0, out1)
	rl.INTT(out0)
	rl.INTT(out1)

	c0g := rl.GetPolyUninit() // automorphism writes every index
	rl.AutomorphismCoeff(ct.C0, rk.G, c0g)
	rl.Add(out0, c0g, out0)
	rl.PutPoly(c0g)

	return &Ciphertext{C0: out0, C1: out1, Level: level, Scale: ct.Scale}
}
