// seeded demonstrates the seeded-ciphertext extension: the client ships
// c0 plus a 16-byte seed instead of a full (c0, c1) pair, and the server
// regenerates c1 from the seed — the same PRNG trick ABC-FHE uses to keep
// masks off DRAM, applied to the wire.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"repro/internal/ckks"
	"repro/internal/prng"
	"repro/internal/sim"
)

func main() {
	params, err := ckks.TestParams.Build()
	if err != nil {
		log.Fatal(err)
	}
	seed := prng.SeedFromUint64s(99, 100)
	kg := ckks.NewKeyGenerator(params, seed)
	sk := kg.GenSecretKey()
	enc := ckks.NewEncoder(params)
	se := ckks.NewSeededEncryptor(params, sk, seed)
	dec := ckks.NewDecryptor(params, sk)

	msg := make([]complex128, params.Slots())
	for i := range msg {
		msg[i] = complex(float64(i%13)/13-0.5, float64(i%17)/17-0.5)
	}

	// Client: seeded encryption + compressed wire form.
	sct := se.Encrypt(enc.Encode(msg))
	compressed, err := params.MarshalSeeded(sct)
	if err != nil {
		log.Fatal(err)
	}
	fullBytes := params.CiphertextWireBytes(sct.Level)
	fmt.Printf("wire bytes: full ciphertext %d, seeded %d (%.1f%% of full)\n",
		fullBytes, len(compressed), 100*float64(len(compressed))/float64(fullBytes))

	// Server: expand from the seed, then hand back (here: decrypt directly
	// to check correctness).
	received, err := params.UnmarshalSeeded(compressed)
	if err != nil {
		log.Fatal(err)
	}
	ct := params.Expand(received)
	got := enc.Decode(dec.Decrypt(ct))
	var worst float64
	for i := range msg {
		if e := cmplx.Abs(got[i] - msg[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("round-trip max error after expand: %.3g\n\n", worst)

	// What the halved upstream buys on the DRAM-bound accelerator.
	fmt.Println("modeled impact on ABC-FHE (DRAM-bound at 8 lanes):")
	for _, logN := range []int{14, 16} {
		c := sim.PaperConfig()
		c.LogN = logN
		s := c.SeededStudy()
		fmt.Printf("  N=2^%d: %.3f ms -> %.3f ms (%.2fx), throughput %.0f -> %.0f ct/s\n",
			logN, s.Standard.TimeMS, s.Seeded.TimeMS, s.Speedup,
			s.ThroughputStandard, s.ThroughputSeeded)
	}
}
