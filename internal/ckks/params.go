// Package ckks implements the client side of the CKKS approximate
// homomorphic encryption scheme — exactly the workload ABC-FHE
// accelerates: encoding (IFFT + Expand RNS), encryption (PRNG + NTT +
// public-key multiply-add), decryption (NTT·secret + INTT) and decoding
// (Combine CRT + FFT). See paper Fig. 2a.
//
// The implementation is from scratch on this repository's substrates
// (internal/{mod,ntt,fftfp,rns,ring,prng}) and uses the paper's
// bootstrappable parameterization: polynomial degrees 2^13–2^16 and
// 36-bit "double-scale" RNS limb chains [Agrawal et al., the paper's
// ref 1] so the hardware datapath stays at 44 bits.
//
// Server-side functionality is included so a realistic client → server →
// client flow exists end to end: keyless operations (homomorphic
// addition, plaintext multiplication, rescaling, level dropping) and the
// key-switching layer (relinearized ct×ct multiplication, hoisted Galois
// rotations, evaluation-key generation and wire formats) the public
// Server role builds on.
package ckks

import (
	"fmt"

	"repro/internal/fftfp"
	"repro/internal/lanes"
	"repro/internal/primes"
	"repro/internal/ring"
)

// Parameters fixes a CKKS instance. Immutable after construction, except
// for SetWorkers (lane-engine sizing), which must happen before the
// parameters are shared across goroutines.
type Parameters struct {
	LogN     int // ring degree exponent: N = 2^LogN
	LimbBits int // bit width of each RNS prime (paper: 36)
	Limbs    int // number of RNS limbs L (paper: 24 = 12 levels double-scale)
	LogScale int // Δ = 2^LogScale
	HW       int // secret Hamming weight; 0 ⇒ uniform ternary
	MantBits int // FFT mantissa width (fftfp.FP55Mantissa on the accelerator)

	ringQ    *ring.Ring
	levels   []*ring.Ring // levels[l-1]: cached view at level l (AtLevel rebuilds CRT tables — too hot for per-op calls)
	embedder *fftfp.Embedder
	ownedEng *lanes.Engine // non-nil when SetWorkers installed a private engine
}

// Preset parameter sets.
//
// PN16 is the paper's evaluation configuration (§V-B): N = 2^16, 36-bit
// primes, 24 limbs ("the number of levels was doubled from the standard 12
// to 24" — double-scale), encrypted at full depth, decrypted at the 2-limb
// state ciphertexts return from the server in.
var (
	PN16 = ParamSpec{LogN: 16, LimbBits: 36, Limbs: 24, LogScale: 66, HW: 192}
	PN15 = ParamSpec{LogN: 15, LimbBits: 36, Limbs: 24, LogScale: 66, HW: 192}
	PN14 = ParamSpec{LogN: 14, LimbBits: 36, Limbs: 24, LogScale: 66, HW: 192}
	PN13 = ParamSpec{LogN: 13, LimbBits: 36, Limbs: 12, LogScale: 66, HW: 128}

	// TestParams is a fast set for unit tests: small ring, short chain.
	TestParams = ParamSpec{LogN: 10, LimbBits: 36, Limbs: 4, LogScale: 30, HW: 64}
	// TinyParams is even smaller, for exhaustive-ish property tests.
	TinyParams = ParamSpec{LogN: 8, LimbBits: 30, Limbs: 3, LogScale: 25, HW: 32}
)

// ParamSpec is the serializable description from which Parameters are
// built (primes are derived deterministically from the spec).
type ParamSpec struct {
	LogN     int
	LimbBits int
	Limbs    int
	LogScale int
	HW       int
	MantBits int // 0 ⇒ full float64 mantissa
}

// MaxLimbs bounds the RNS chain length Build accepts — double the
// paper's deepest (24-limb double-scale) chain, and the cap that keeps a
// hostile wire-embedded spec from demanding unbounded NTT tables.
const MaxLimbs = 48

// Validate range-checks the spec without allocating anything. Build calls
// it first; wire-facing constructors can call it on specs read from
// untrusted key blobs.
func (s ParamSpec) Validate() error {
	if s.LogN < 4 || s.LogN > 17 {
		return fmt.Errorf("ckks: logN=%d out of range", s.LogN)
	}
	if s.Limbs < 1 || s.Limbs > MaxLimbs {
		return fmt.Errorf("ckks: limbs=%d not in [1, %d]", s.Limbs, MaxLimbs)
	}
	// The prime generator needs logN+2 ≤ bits ≤ 61 (and the wire packer
	// ≤ 44, but word-width parameter sets are still buildable).
	if s.LimbBits < s.LogN+2 || s.LimbBits > 61 {
		return fmt.Errorf("ckks: limbBits=%d not in [logN+2, 61]", s.LimbBits)
	}
	if s.LogScale < 1 || s.LogScale >= s.LimbBits*2 {
		return fmt.Errorf("ckks: scale 2^%d outside (1, 2-limb decode modulus) (LimbBits=%d)", s.LogScale, s.LimbBits)
	}
	if s.HW < 0 || s.HW > 1<<uint(s.LogN) {
		return fmt.Errorf("ckks: hamming weight %d exceeds ring degree", s.HW)
	}
	if s.MantBits != 0 && (s.MantBits < 10 || s.MantBits > fftfp.Float64Mantissa) {
		return fmt.Errorf("ckks: mantissa width %d not in [10, %d]", s.MantBits, fftfp.Float64Mantissa)
	}
	return nil
}

// genNTTPrimes wraps the prime generator, which panics when the
// [2^(bits-1), 2^bits) window cannot host `count` NTT primes — reachable
// for legal-looking but unsatisfiable wire specs (e.g. limbBits == logN+2
// with a long chain). The recover is scoped to exactly this call so a
// genuine invariant violation elsewhere in Build still panics loudly
// instead of masquerading as a corrupt key blob.
func genNTTPrimes(count, bitLen, logN int) (qs []uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			qs, err = nil, fmt.Errorf("ckks: build: %v", r)
		}
	}()
	return primes.GenerateNTTPrimes(count, bitLen, logN), nil
}

// Build constructs ready-to-use Parameters (prime generation, NTT tables,
// FFT tables). Cost is dominated by NTT table setup: O(L·N). Specs from
// untrusted sources are safe: out-of-range fields and unsatisfiable prime
// requests come back as errors, never panics.
func (s ParamSpec) Build() (*Parameters, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	mant := s.MantBits
	if mant == 0 {
		mant = fftfp.Float64Mantissa
	}
	p := &Parameters{
		LogN: s.LogN, LimbBits: s.LimbBits, Limbs: s.Limbs,
		LogScale: s.LogScale, HW: s.HW, MantBits: mant,
	}
	qs, err := genNTTPrimes(s.Limbs, s.LimbBits, s.LogN)
	if err != nil {
		return nil, err
	}
	r, err := ring.NewRing(1<<uint(s.LogN), qs)
	if err != nil {
		return nil, err
	}
	p.ringQ = r
	p.levels = make([]*ring.Ring, s.Limbs)
	for l := 1; l < s.Limbs; l++ {
		p.levels[l-1] = r.AtLevel(l)
	}
	p.levels[s.Limbs-1] = r
	p.embedder = fftfp.NewEmbedder(s.LogN)
	return p, nil
}

// MustBuild panics on error.
func (s ParamSpec) MustBuild() *Parameters {
	p, err := s.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the ring degree.
func (p *Parameters) N() int { return 1 << uint(p.LogN) }

// Slots returns the number of complex message slots (N/2).
func (p *Parameters) Slots() int { return p.N() / 2 }

// MaxLevel returns the number of limbs at full depth.
func (p *Parameters) MaxLevel() int { return p.Limbs }

// Scale returns Δ as a float64 (exact: a power of two).
func (p *Parameters) Scale() float64 {
	s := 1.0
	for i := 0; i < p.LogScale; i++ {
		s *= 2
	}
	return s
}

// Ring exposes the underlying RNS ring (shared, read-only by convention).
func (p *Parameters) Ring() *ring.Ring { return p.ringQ }

// RingAt returns the (cached) ring view at the given level (limb count).
func (p *Parameters) RingAt(level int) *ring.Ring {
	if level < 1 || level > len(p.levels) {
		panic("ckks: level out of range")
	}
	return p.levels[level-1]
}

// SetWorkers sizes the lane engine every limb-parallel kernel of this
// parameter set dispatches through — the software mirror of the paper's
// PNL-lane count (Fig. 5b sweeps it in hardware). n <= 0 selects
// GOMAXPROCS; n = 1 forces the serial path. Call before sharing the
// parameters across goroutines. A previously installed private engine is
// released.
func (p *Parameters) SetWorkers(n int) {
	if p.ownedEng != nil {
		p.ownedEng.Close()
	}
	p.ownedEng = lanes.New(n)
	p.setEngineAll(p.ownedEng)
}

// setEngineAll installs e on the full ring and every cached level view.
func (p *Parameters) setEngineAll(e *lanes.Engine) {
	for _, rl := range p.levels {
		rl.SetEngine(e)
	}
}

// Workers reports the current lane count.
func (p *Parameters) Workers() int { return p.ringQ.Engine().Workers() }

// Close releases any private lane engine installed by SetWorkers. Safe to
// call on parameters that never configured one.
func (p *Parameters) Close() {
	if p.ownedEng != nil {
		p.ownedEng.Close()
		p.ownedEng = nil
		p.setEngineAll(nil)
	}
}

// Embedder exposes the canonical-embedding FFT tables.
func (p *Parameters) Embedder() *fftfp.Embedder { return p.embedder }

// FFTCtx returns the floating-point context encoding/decoding runs in.
func (p *Parameters) FFTCtx() fftfp.Ctx { return fftfp.NewCtx(p.MantBits) }
