package hw

// Technology scaling per the DeepScaleTool methodology the paper cites
// ([31], Sarangi & Baas, ISCAS 2021): published dense-logic area and
// power scaling factors between TSMC-class 28 nm and 7 nm.
//
// The paper's §V-A statement is the anchor: "scaling to a 7 nm process
// would reduce the area to approximately 0.9 mm² and the power consumption
// to 2.1 W" from 28.638 mm² / 5.654 W — factors of ≈0.0314 (area) and
// ≈0.371 (power), which match DeepScaleTool's 28→7 nm dense-logic numbers
// (area scales ≈ λ² with λ ≈ 0.177; power scales with capacitance·V²·f).
const (
	AreaScale28To7  = 0.9 / 28.638
	PowerScale28To7 = 2.1 / 5.654
)

// ScaledBlock returns the block's area/power projected to 7 nm.
func ScaledBlock(b Block) Block {
	out := Block{Name: b.Name + " @7nm",
		AreaMM2: b.AreaMM2 * AreaScale28To7,
		PowerW:  b.PowerW * PowerScale28To7}
	for _, c := range b.Children {
		out.Children = append(out.Children, ScaledBlock(c))
	}
	return out
}
