package fftfp

import (
	"math/bits"
	"math/rand"
	"testing"
)

// applyGroups chains grouped diagonal matrices in application order.
func applyGroups(groups []*DiagMatrix, v []complex128) []complex128 {
	out := append([]complex128(nil), v...)
	for _, g := range groups {
		out = g.Apply(out)
	}
	return out
}

func maxAbsDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		re := real(a[i]) - real(b[i])
		im := imag(a[i]) - imag(b[i])
		d := re*re + im*im
		if d > m {
			m = d
		}
	}
	return m
}

// TestDFTMatricesAgainstFFT: the grouped inverse (CoeffsToSlots-direction)
// product must reproduce IFFT up to the withheld bit-reversal, the grouped
// forward product must invert it, and the full round trip must restore the
// input — at every grouping granularity.
func TestDFTMatricesAgainstFFT(t *testing.T) {
	for _, logN := range []int{4, 6, 8} {
		e := NewEmbedder(logN)
		n := e.Slots
		logn := bits.Len(uint(n)) - 1
		rng := rand.New(rand.NewSource(int64(logN)))
		z := make([]complex128, n)
		for i := range z {
			z[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}

		// Reference: t = IFFT(z) in full precision.
		vals := make([]Complex, n)
		for i, v := range z {
			vals[i] = Complex{real(v), imag(v)}
		}
		e.IFFT(vals, NewCtx(Float64Mantissa))
		want := make([]complex128, n)
		for r := range want {
			br := int(bits.Reverse64(uint64(r)) >> (64 - uint(logn)))
			want[r] = complex(vals[br].Re, vals[br].Im) // t[bitrev(r)]
		}

		for levels := 1; levels <= logn; levels++ {
			inv := e.DFTMatrices(levels, true)
			fwd := e.DFTMatrices(levels, false)
			if len(inv) != levels || len(fwd) != levels {
				t.Fatalf("logN=%d levels=%d: got %d/%d groups", logN, levels, len(inv), len(fwd))
			}

			u := applyGroups(inv, z)
			if d := maxAbsDiff(u, want); d > 1e-18 {
				t.Errorf("logN=%d levels=%d: inverse product vs IFFT: max sq diff %g", logN, levels, d)
			}
			back := applyGroups(fwd, u)
			if d := maxAbsDiff(back, z); d > 1e-18 {
				t.Errorf("logN=%d levels=%d: round trip: max sq diff %g", logN, levels, d)
			}

			// Sparsity: a k-stage group carries at most 2^(k+1)−1 diagonals,
			// and the analytic index sets must match the materialized support.
			wantIdx := DFTDiagIndices(logn, levels, true)
			for g, m := range inv {
				k := logn / levels
				if g < logn%levels {
					k++
				}
				if len(m.Diags) > 1<<uint(k+1)-1 {
					t.Errorf("logN=%d levels=%d group %d: %d diagonals, cap %d",
						logN, levels, g, len(m.Diags), 1<<uint(k+1)-1)
				}
				got := m.DiagIndices()
				if len(got) != len(wantIdx[g]) {
					t.Fatalf("logN=%d levels=%d group %d: support %v, analytic %v",
						logN, levels, g, got, wantIdx[g])
				}
				for i := range got {
					if got[i] != wantIdx[g][i] {
						t.Fatalf("logN=%d levels=%d group %d: support %v, analytic %v",
							logN, levels, g, got, wantIdx[g])
					}
				}
			}
		}
	}
}

// TestDiagMatrixMulAgainstDense pins MulDiag against the dense definition
// on small random sparse matrices.
func TestDiagMatrixMulAgainstDense(t *testing.T) {
	const n = 16
	rng := rand.New(rand.NewSource(42))
	randDiag := func() *DiagMatrix {
		m := &DiagMatrix{N: n, Diags: map[int][]complex128{}}
		for _, d := range []int{0, rng.Intn(n), rng.Intn(n)} {
			diag := m.diag(d)
			for r := range diag {
				diag[r] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
			}
		}
		return m
	}
	dense := func(m *DiagMatrix) [][]complex128 {
		out := make([][]complex128, n)
		for r := range out {
			out[r] = make([]complex128, n)
			for d, diag := range m.Diags {
				out[r][(r+d)%n] += diag[r]
			}
		}
		return out
	}
	for trial := 0; trial < 20; trial++ {
		a, b := randDiag(), randDiag()
		c := MulDiag(a, b)
		da, db, dc := dense(a), dense(b), dense(c)
		for r := 0; r < n; r++ {
			for col := 0; col < n; col++ {
				var want complex128
				for k := 0; k < n; k++ {
					want += da[r][k] * db[k][col]
				}
				got := dc[r][col]
				if d := want - got; real(d)*real(d)+imag(d)*imag(d) > 1e-20 {
					t.Fatalf("trial %d: product[%d][%d] = %v, want %v", trial, r, col, got, want)
				}
			}
		}
	}
}
