package serve

// Hostile-input hardening for the polynomial-evaluation endpoints: the
// coefficient vector arrives as attacker-controlled text and the
// interval/degree/range/scaling knobs as attacker-controlled query
// strings, all parsed on the HTTP goroutine. The contract is errors
// only — no panics anywhere in parse → compile — and every compilation
// the surface accepts must actually run to a serialized result with
// full-depth keys (on the Test preset an accepted plan's KeyLevel is
// always covered, so a runFunc failure would mean the compile-time
// validation let an inconsistent plan through).

import (
	"net/url"
	"sync"
	"testing"

	abcfhe "repro"
	"repro/internal/ckks"
)

type fuzzEvalEnv struct {
	sp     *specServer
	keys   *abcfhe.EvaluationKeys
	ctBlob []byte
}

var (
	fuzzEnvOnce sync.Once
	fuzzEnv     fuzzEvalEnv
)

// evalPolyFuzzEnv builds one shared Test-preset pipeline (keygen is far
// too slow per fuzz iteration).
func evalPolyFuzzEnv(t testing.TB) fuzzEvalEnv {
	t.Helper()
	fuzzEnvOnce.Do(func() {
		owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 0xF022, 0xF023)
		if err != nil {
			t.Fatal(err)
		}
		evkBlob, err := owner.ExportEvaluationKeys(abcfhe.EvalKeyConfig{})
		if err != nil {
			t.Fatal(err)
		}
		spec, _, err := ckks.ReadEvalKeyInfo(evkBlob)
		if err != nil {
			t.Fatal(err)
		}
		srv, keys, err := abcfhe.NewServerFromEvaluationKeys(evkBlob)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := newSpecServer(srv, spec)
		if err != nil {
			t.Fatal(err)
		}
		pk, err := owner.ExportPublicKey()
		if err != nil {
			t.Fatal(err)
		}
		enc, err := abcfhe.NewEncryptor(pk, 0xF024, 0xF025)
		if err != nil {
			t.Fatal(err)
		}
		defer enc.Close()
		ct, err := enc.EncodeEncrypt([]complex128{0.5, -0.25})
		if err != nil {
			t.Fatal(err)
		}
		ctBlob, err := enc.SerializeCiphertext(ct)
		if err != nil {
			t.Fatal(err)
		}
		fuzzEnv = fuzzEvalEnv{sp: sp, keys: keys, ctBlob: ctBlob}
	})
	return fuzzEnv
}

// tryEvalPolyRequest drives one fuzzed request through the same build →
// run path the HTTP handler uses.
func tryEvalPolyRequest(t *testing.T, env fuzzEvalEnv, op string, q url.Values, parts [][]byte) {
	t.Helper()
	run, err := opTable[op].build(env.sp, q, parts)
	if err != nil {
		return // rejected at parse/compile time: exactly the contract
	}
	out, err := run(env.keys)
	if err != nil {
		t.Fatalf("%s: accepted compilation failed at run time: %v", op, err)
	}
	if len(out) != 1 || len(out[0]) == 0 {
		t.Fatalf("%s: accepted compilation returned %d parts", op, len(out))
	}
}

func FuzzEvalPolyCoeffs(f *testing.F) {
	env := evalPolyFuzzEnv(f)
	// Seeds: a valid degree-1 request, then hostile shapes — non-numeric
	// and non-finite text, a degree far beyond the cap, comment/blank
	// noise, binary junk, and query values that stress every knob.
	f.Add([]byte("0.5\n0.25 -0.125\n"), "-1", "1", "0", "1", "8", "")
	f.Add([]byte("0.5\nNaN\n"), "-1", "1", "0", "1", "8", "")
	f.Add([]byte("1e309\n1\n"), "-1", "1", "0", "2", "0.0000001", "")
	f.Add([]byte("# only comments\n\n"), "NaN", "Inf", "-7", "64", "NaN", "1e308")
	f.Add([]byte("0\n0\n0\n1\n"), "1", "-1", "99", "-1", "2097152", "Inf")
	f.Add([]byte{0x00, 0xFF, 0x80, 0x7F}, "", "", "", "", "", "")
	bigDeg := make([]byte, 0, 4096)
	for i := 0; i < 2048; i++ {
		bigDeg = append(bigDeg, "1\n"...)
	}
	f.Add(bigDeg, "-1048577", "1048577", "1", "16", "8", "0")
	f.Fuzz(func(t *testing.T, coeffs []byte, lo, hi, level, degree, rng, scaling string) {
		polyQ := url.Values{"lo": {lo}, "hi": {hi}, "level": {level}}
		tryEvalPolyRequest(t, env, "evalpoly", polyQ, [][]byte{env.ctBlob, coeffs})
		modQ := url.Values{"degree": {degree}, "range": {rng}, "scaling": {scaling}, "level": {level}}
		tryEvalPolyRequest(t, env, "evalmod", modQ, [][]byte{env.ctBlob})
	})
}

// TestEvalPolyRequestHardening is the deterministic slice of
// FuzzEvalPolyCoeffs that runs on every push: the seed corpus shapes
// driven straight through the build/run path.
func TestEvalPolyRequestHardening(t *testing.T) {
	env := evalPolyFuzzEnv(t)
	cases := []struct {
		coeffs                              string
		lo, hi, level, degree, rng, scaling string
	}{
		{"0.5\n0.25 -0.125\n", "-1", "1", "0", "1", "8", ""},
		{"0.5\nNaN\n", "-1", "1", "0", "1", "8", ""},
		{"1e309\n1\n", "-1", "1", "0", "2", "0.0000001", ""},
		{"# only comments\n\n", "NaN", "Inf", "-7", "64", "NaN", "1e308"},
		{"0\n0\n0\n1\n", "1", "-1", "99", "-1", "2097152", "Inf"},
		{"\x00\xff\x80\x7f", "", "", "", "", "", ""},
		{"0.25\n0.75\n", "0.5", "0.5000001", "4", "1", "0.0000000001", "-0"},
	}
	for _, tc := range cases {
		polyQ := url.Values{"lo": {tc.lo}, "hi": {tc.hi}, "level": {tc.level}}
		tryEvalPolyRequest(t, env, "evalpoly", polyQ, [][]byte{env.ctBlob, []byte(tc.coeffs)})
		modQ := url.Values{"degree": {tc.degree}, "range": {tc.rng}, "scaling": {tc.scaling}, "level": {tc.level}}
		tryEvalPolyRequest(t, env, "evalmod", modQ, [][]byte{env.ctBlob})
	}
}
