package abcfhe

// Tests for the lane-parallel decode path at the public-API level: batch
// vs sequential equivalence, buffer-reuse semantics of the Into variants,
// worker-count bit-determinism and concurrent-use safety of
// DecryptDecodeBatch on a shared Client (run with -race; CI does).

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func decodeTestCiphertexts(t testing.TB, c *Client, n int) ([]*Ciphertext, [][]complex128) {
	t.Helper()
	msgs := laneTestMsgs(c, n)
	cts := c.EncodeEncryptBatch(msgs)
	// Mixed levels exercise every cached level view: drop every other
	// ciphertext to the paper's 2-limb return state.
	for i, ct := range cts {
		if i%2 == 1 {
			cts[i] = c.Evaluator().DropLevel(ct, 2)
		}
	}
	return cts, msgs
}

func slotsEqualBits(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

// TestDecryptDecodeBatchMatchesSequential: the batch path must emit
// exactly the slot vectors sequential DecryptDecode calls produce.
func TestDecryptDecodeBatchMatchesSequential(t *testing.T) {
	c, err := NewClient(Test, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	cts, _ := decodeTestCiphertexts(t, c, 5)

	batch := c.DecryptDecodeBatch(cts)
	for i, ct := range cts {
		if !slotsEqualBits(batch[i], c.DecryptDecode(ct)) {
			t.Fatalf("batch message %d differs from sequential decode", i)
		}
	}
}

// TestDecryptDecodeBatchInto pins the buffer-reuse contract: non-nil
// entries are written in place, nil entries allocated, and a mis-sized
// batch panics.
func TestDecryptDecodeBatchInto(t *testing.T) {
	c, err := NewClient(Test, 7, 9)
	if err != nil {
		t.Fatal(err)
	}
	cts, _ := decodeTestCiphertexts(t, c, 3)
	ref := c.DecryptDecodeBatch(cts)

	out := make([][]complex128, len(cts))
	out[0] = make([]complex128, c.Slots()) // reused in place
	reused := out[0]
	got := c.DecryptDecodeBatchInto(cts, out)
	if &got[0][0] != &reused[0] {
		t.Fatal("provided buffer was not reused")
	}
	for i := range ref {
		if !slotsEqualBits(got[i], ref[i]) {
			t.Fatalf("BatchInto message %d differs from DecryptDecodeBatch", i)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("mis-sized batch output must panic")
		}
	}()
	c.DecryptDecodeBatchInto(cts, make([][]complex128, len(cts)-1))
}

// TestDecodeDeterminismAcrossWorkers: DecryptDecode and the batch path
// must produce bit-identical slot values at worker counts 1, 2 and 8.
func TestDecodeDeterminismAcrossWorkers(t *testing.T) {
	var refSingle []complex128
	var refBatch [][]complex128
	for _, w := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			c, err := NewClient(Test, 0xABC, 0xF0E, WithWorkers(w))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			cts, _ := decodeTestCiphertexts(t, c, 3)

			single := c.DecryptDecode(cts[1])
			batch := c.DecryptDecodeBatch(cts)

			if refSingle == nil {
				refSingle, refBatch = single, batch
				return
			}
			if !slotsEqualBits(single, refSingle) {
				t.Fatal("DecryptDecode output differs from the 1-worker reference")
			}
			for i := range refBatch {
				if !slotsEqualBits(batch[i], refBatch[i]) {
					t.Fatalf("batch message %d differs from the 1-worker reference", i)
				}
			}
		})
	}
}

// TestConcurrentDecryptDecodeBatch hammers one shared Client with
// concurrent batch decodes (the decryptor is stateless and the scratch
// pools are the only shared mutable state) — the -race acceptance test
// for the decode pipeline.
func TestConcurrentDecryptDecodeBatch(t *testing.T) {
	c, err := NewClient(Test, 21, 22)
	if err != nil {
		t.Fatal(err)
	}
	cts, _ := decodeTestCiphertexts(t, c, 4)
	ref := c.DecryptDecodeBatch(cts)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				got := c.DecryptDecodeBatch(cts)
				for i := range ref {
					if !slotsEqualBits(got[i], ref[i]) {
						errs <- fmt.Errorf("goroutine %d iter %d: message %d mismatch", g, iter, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
