// Encrypted dot product — the first end-to-end scenario where the server
// genuinely computes. ABC-FHE is a client-side accelerator: the paper's
// deployment assumes the ciphertexts it produces feed a compute server
// (the workloads BTS and ARK accelerate — linear layers, inner products).
// This example runs that loop across the three roles, with nothing but
// bytes crossing between them:
//
//	key owner  ── public-key blob ──▶ device
//	key owner  ── evaluation-key blob ──▶ server
//	device     ── ciphertext bytes ──▶ server
//	server     ── ciphertext bytes ──▶ key owner
//
// The server computes two things it could never do with additions alone:
//
//  1. ⟨x, y⟩ over two *encrypted* vectors: slot-wise Mul (ct×ct with
//     relinearization) + rotation-based InnerSum + Rescale.
//  2. A ResNet-style linear layer row: DotPlain — the encrypted input
//     against a plaintext weight vector.
package main

import (
	"fmt"
	"log"

	abcfhe "repro"
)

const span = 8 // dot-product width (power of two)

func main() {
	// Party 1 — the key owner. Two blobs leave this machine: the public
	// key (for the encrypting fleet) and the evaluation keys (for the
	// server). The evaluation keys are depth-capped at the circuit the
	// server runs — the BV gadget is quadratic in depth, so exporting
	// full-depth keys for a depth-4 circuit would be pure waste.
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 2024, 2025)
	if err != nil {
		log.Fatal(err)
	}
	pkBytes, err := owner.ExportPublicKey()
	if err != nil {
		log.Fatal(err)
	}
	evkBytes, err := owner.ExportEvaluationKeys(abcfhe.EvalKeyConfig{
		MaxLevel:  4,
		Rotations: abcfhe.InnerSumRotations(span),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("key owner: public key %d B, evaluation keys %d B (depth 4, rotations %v)\n",
		len(pkBytes), len(evkBytes), abcfhe.InnerSumRotations(span))

	// Party 2 — the device encrypts two vectors with nothing but the
	// public-key blob.
	device, err := abcfhe.NewEncryptor(pkBytes, 7, 8)
	if err != nil {
		log.Fatal(err)
	}
	x := make([]complex128, span)
	y := make([]complex128, span)
	var wantDot complex128
	for i := range x {
		x[i] = complex(0.1*float64(i+1), 0)
		y[i] = complex(0.5-0.1*float64(i), 0)
		wantDot += x[i] * y[i]
	}
	ctX, err := device.EncodeEncrypt(x)
	if err != nil {
		log.Fatal(err)
	}
	ctY, err := device.EncodeEncrypt(y)
	if err != nil {
		log.Fatal(err)
	}
	upX, _ := device.SerializeCiphertext(ctX)
	upY, _ := device.SerializeCiphertext(ctY)

	// Party 3 — the server bootstraps from the evaluation-key blob alone
	// (the parameter spec is embedded) and computes on ciphertext bytes.
	server, evk, err := abcfhe.NewServerFromEvaluationKeys(evkBytes)
	if err != nil {
		log.Fatal(err)
	}
	a, err := server.DeserializeCiphertext(upX)
	if err != nil {
		log.Fatal(err)
	}
	b, err := server.DeserializeCiphertext(upY)
	if err != nil {
		log.Fatal(err)
	}
	a, _ = server.DropLevel(a, evk.MaxLevel())
	b, _ = server.DropLevel(b, evk.MaxLevel())

	// ct×ct dot product: slot-wise multiply, rotation-based inner sum
	// (rotate first, rescale last — key-switch noise is additive at the
	// current scale, so it is spent while the scale is still Δ²).
	prod, err := server.Mul(a, b, evk)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := server.InnerSum(prod, span, evk)
	if err != nil {
		log.Fatal(err)
	}
	sum, err = server.Rescale(sum)
	if err != nil {
		log.Fatal(err)
	}
	replyDot, err := server.SerializeCiphertext(sum)
	if err != nil {
		log.Fatal(err)
	}

	// Linear layer row: the encrypted input against plaintext weights
	// (how an FHE inference server applies a fully-connected layer).
	weights := []complex128{0.25, -0.5, 0.75, -1, 1, -0.75, 0.5, -0.25}
	layer, err := server.DotPlain(a, weights, evk)
	if err != nil {
		log.Fatal(err)
	}
	replyLayer, err := server.SerializeCiphertext(layer)
	if err != nil {
		log.Fatal(err)
	}
	var wantLayer complex128
	for i, w := range weights {
		wantLayer += w * x[i]
	}

	// Back at the key owner: decrypt both replies.
	report := func(name string, reply []byte, want complex128) {
		ct, err := owner.DeserializeCiphertext(reply)
		if err != nil {
			log.Fatal(err)
		}
		got, err := owner.DecryptDecode(ct)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: got %8.5f, want %8.5f (reply %d B at level %d)\n",
			name, real(got[0]), real(want), len(reply), ct.Level)
	}
	report("ct×ct ⟨x,y⟩   ", replyDot, wantDot)
	report("plain-weight W·x", replyLayer, wantLayer)
}
