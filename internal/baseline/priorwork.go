package baseline

// Structured facts about the prior client-side accelerators the paper
// compares against (its references [3], [10], [22], [34]) and the
// normalization each one needs before a fair comparison. The facts below
// come from the paper's own §I/§V discussion; absolute latencies are not
// restated in the paper and are therefore represented through the
// published aggregate speed-ups (see AnchoredSet), never invented here.

// PriorWork describes one comparison system.
type PriorWork struct {
	Name     string
	PaperRef string // the citation number in the ABC-FHE paper
	Venue    string
	Platform string // ASIC / FPGA / SoC

	// MaxLogN is the largest polynomial degree the design supports; all
	// four prior designs stop below bootstrappable sizes (the paper's
	// first limitation claim: "constrained to small FHE parameters,
	// e.g. N = 2^13").
	MaxLogN int

	// Bootstrappable reports whether the design reaches N ≥ 2^14.
	Bootstrappable bool

	// Streaming reports whether the architecture streams (the paper's
	// second limitation claim: prior non-streaming designs hit DRAM
	// bandwidth walls when scaled).
	Streaming bool

	// ParamsOnDRAM reports whether the design fetches twiddles/keys from
	// DRAM (the paper's third claim, aimed at [34]).
	ParamsOnDRAM bool

	Note string
}

// PriorWorks returns the comparison set.
func PriorWorks() []PriorWork {
	return []PriorWork{
		{
			Name: "RACE", PaperRef: "[3]", Venue: "ISLPED 2022", Platform: "RISC-V SoC",
			MaxLogN: 13, Bootstrappable: false, Streaming: false, ParamsOnDRAM: true,
			Note: "en/decryption acceleration on the edge; small parameters only",
		},
		{
			Name: "Di Matteo et al.", PaperRef: "[10]", Venue: "IEEE Access 2023", Platform: "FPGA",
			MaxLogN: 13, Bootstrappable: false, Streaming: false, ParamsOnDRAM: true,
			Note: "NTT accelerator for the SEAL-Embedded library",
		},
		{
			Name: "ALOHA-HE", PaperRef: "[22]", Venue: "DATE 2024", Platform: "FPGA",
			MaxLogN: 13, Bootstrappable: false, Streaming: false, ParamsOnDRAM: true,
			Note: "low-area client-side operations; frequency-normalized in Fig. 5a",
		},
		{
			Name: "Wang et al.", PaperRef: "[34]", Venue: "TCAS-II 2024", Platform: "ASIC",
			MaxLogN: 13, Bootstrappable: false, Streaming: false, ParamsOnDRAM: true,
			Note: "SOTA compact RNS-CKKS en/decoding + en/decryption; fetches parameters from DRAM (the paper's bandwidth-bottleneck example)",
		},
	}
}

// NormalizationFor explains the adjustment chain the paper applies to a
// prior work before comparing at (logN, limbs): frequency rescaling to
// 600 MHz plus operation-proportion scaling from the design's native
// parameters to the bootstrappable target. Returned as the multiplier
// applied to the design's reported latency and a human-readable formula.
func NormalizationFor(w PriorWork, targetOps, nativeOps, nativeFreqMHz float64) (multiplier float64, formula string) {
	const abcFreq = 600.0
	mult := (nativeFreqMHz / abcFreq) * (targetOps / nativeOps)
	return mult, "latency × (f_native/600MHz) × (ops_target/ops_native)"
}

// SupportsBootstrappableCount counts prior designs that reach
// bootstrappable parameters — zero, which is the paper's motivation.
func SupportsBootstrappableCount() int {
	n := 0
	for _, w := range PriorWorks() {
		if w.Bootstrappable {
			n++
		}
	}
	return n
}
