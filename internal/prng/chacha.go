// Package prng implements the on-chip pseudo-random number generator that
// ABC-FHE uses to synthesize masks, errors and keys on the fly (paper
// §III/§IV-B): a ChaCha stream cipher keyed by a 128-bit seed, plus the
// three samplers client-side CKKS needs — uniform residues, ternary
// secrets, and discrete-Gaussian errors (σ = 3.2).
//
// The paper's point is architectural: holding a 128-bit seed on chip
// replaces 8.25 MB of precomputed masks/errors in DRAM, and the PRNG
// keeps up with the streaming datapath. This package is the functional
// model; internal/sim prices its hardware throughput, internal/hw its area.
package prng

import (
	"encoding/binary"
	"math/bits"
)

// chacha implements the ChaCha block function with the original 128-bit-key
// parameterization (Bernstein's "expand 16-byte k" constants, the key
// repeated into both key halves). 20 rounds.
type chacha struct {
	state [16]uint32
	buf   [64]byte
	used  int // bytes of buf already consumed; 64 → refill needed
	ctr   uint64
}

// sigma16 is the "expand 16-byte k" constant of the 128-bit-key ChaCha
// variant.
var sigma16 = [4]uint32{0x61707865, 0x3120646e, 0x79622d36, 0x6b206574}

// newChaCha builds a ChaCha stream from a 128-bit seed and a 64-bit stream
// identifier (ChaCha nonce), so that independent generator instances (one
// per sampled polynomial, mirroring the paper's per-object seeds) never
// overlap.
func newChaCha(seed [16]byte, stream uint64) *chacha {
	c := &chacha{used: 64}
	c.state[0], c.state[1], c.state[2], c.state[3] = sigma16[0], sigma16[1], sigma16[2], sigma16[3]
	k0 := binary.LittleEndian.Uint32(seed[0:4])
	k1 := binary.LittleEndian.Uint32(seed[4:8])
	k2 := binary.LittleEndian.Uint32(seed[8:12])
	k3 := binary.LittleEndian.Uint32(seed[12:16])
	// 128-bit key occupies both key rows (k, k).
	c.state[4], c.state[5], c.state[6], c.state[7] = k0, k1, k2, k3
	c.state[8], c.state[9], c.state[10], c.state[11] = k0, k1, k2, k3
	// counter in [12,13], stream id in [14,15]
	c.state[12], c.state[13] = 0, 0
	c.state[14] = uint32(stream)
	c.state[15] = uint32(stream >> 32)
	return c
}

func quarter(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d ^= a
	d = bits.RotateLeft32(d, 16)
	c += d
	b ^= c
	b = bits.RotateLeft32(b, 12)
	a += b
	d ^= a
	d = bits.RotateLeft32(d, 8)
	c += d
	b ^= c
	b = bits.RotateLeft32(b, 7)
	return a, b, c, d
}

// block produces the next 64-byte keystream block into c.buf.
func (c *chacha) block() {
	var x [16]uint32
	copy(x[:], c.state[:])
	for i := 0; i < 10; i++ { // 20 rounds = 10 double-rounds
		// column round
		x[0], x[4], x[8], x[12] = quarter(x[0], x[4], x[8], x[12])
		x[1], x[5], x[9], x[13] = quarter(x[1], x[5], x[9], x[13])
		x[2], x[6], x[10], x[14] = quarter(x[2], x[6], x[10], x[14])
		x[3], x[7], x[11], x[15] = quarter(x[3], x[7], x[11], x[15])
		// diagonal round
		x[0], x[5], x[10], x[15] = quarter(x[0], x[5], x[10], x[15])
		x[1], x[6], x[11], x[12] = quarter(x[1], x[6], x[11], x[12])
		x[2], x[7], x[8], x[13] = quarter(x[2], x[7], x[8], x[13])
		x[3], x[4], x[9], x[14] = quarter(x[3], x[4], x[9], x[14])
	}
	for i := range x {
		x[i] += c.state[i]
	}
	for i, v := range x {
		binary.LittleEndian.PutUint32(c.buf[4*i:], v)
	}
	c.used = 0
	// 64-bit block counter in words 12/13.
	c.ctr++
	c.state[12] = uint32(c.ctr)
	c.state[13] = uint32(c.ctr >> 32)
}

// Source is a deterministic random stream with a 128-bit seed. It is NOT
// safe for concurrent use; create one Source per goroutine / per sampled
// object (cheap: no allocation beyond the struct).
type Source struct {
	c *chacha
}

// NewSource creates a stream from seed and a stream/domain identifier.
// Equal (seed, stream) pairs yield identical streams — the property the
// accelerator exploits to regenerate, rather than store, public randomness.
func NewSource(seed [16]byte, stream uint64) *Source {
	return &Source{c: newChaCha(seed, stream)}
}

// SeedFromUint64s is a convenience for tests and examples.
func SeedFromUint64s(lo, hi uint64) [16]byte {
	var s [16]byte
	binary.LittleEndian.PutUint64(s[0:8], lo)
	binary.LittleEndian.PutUint64(s[8:16], hi)
	return s
}

// Uint64 returns the next 64 bits of keystream.
func (s *Source) Uint64() uint64 {
	c := s.c
	if c.used > 64-8 {
		if c.used < 64 {
			// Discard the ragged tail so Uint64 always consumes aligned words.
			c.used = 64
		}
		c.block()
	}
	v := binary.LittleEndian.Uint64(c.buf[c.used:])
	c.used += 8
	return v
}

// Uint32 returns the next 32 bits of keystream.
func (s *Source) Uint32() uint32 {
	c := s.c
	if c.used > 64-4 {
		c.block()
	}
	v := binary.LittleEndian.Uint32(c.buf[c.used:])
	c.used += 4
	return v
}

// Float64 returns a uniform float in [0,1) with 53 random bits.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}
