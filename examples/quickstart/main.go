// Quickstart: encrypt a vector, "send" it to a server, compute on it
// homomorphically, and decrypt the result — the end-to-end loop ABC-FHE
// accelerates on the client side.
package main

import (
	"fmt"
	"log"

	abcfhe "repro"
)

func main() {
	// A client with a 128-bit seed: every key and every mask/error derives
	// from it, which is exactly what lets the accelerator keep only the
	// seed on chip (paper §IV-B).
	client, err := abcfhe.NewClient(abcfhe.Test, 42, 43)
	if err != nil {
		log.Fatal(err)
	}

	// The message: any complex vector with |values| ≤ 1, up to N/2 slots.
	msg := []complex128{0.5, -0.25, 0.125 + 0.5i, -0.75i}

	// Client side, outbound: encode (IFFT + Expand RNS) then encrypt
	// (PRNG + NTT + public-key multiply-add).
	ct := client.EncodeEncrypt(msg)
	fmt.Printf("encrypted %d slots into a depth-%d ciphertext\n", len(msg), ct.Level)

	// "Server" side: homomorphic work without any key material —
	// compute 2x + x = 3x, then drop to the 2-limb state clients receive.
	ev := client.Evaluator()
	tripled := ev.Add(ev.Add(ct, ct), ct)
	reply := ev.DropLevel(tripled, 2)

	// Client side, inbound: decrypt (NTT·s + INTT) and decode (CRT + FFT).
	got := client.DecryptDecode(reply)
	for i, want := range msg {
		fmt.Printf("slot %d: got %7.4f%+7.4fi  want %7.4f%+7.4fi\n",
			i, real(got[i]), imag(got[i]), 3*real(want), 3*imag(want))
	}

	// The modeled accelerator card for the same workflow at paper scale.
	s := abcfhe.NewAccelerator().Summarize()
	fmt.Printf("\nABC-FHE model: enc %.3f ms, dec %.3f ms, %.1f mm², %.2f W @28nm\n",
		s.EncMS, s.DecMS, s.AreaMM2, s.PowerW)
}
