package ckks

import (
	"repro/internal/fftfp"
	"repro/internal/prng"
	"repro/internal/ring"
)

// fftfpComplex aliases the reduced-precision complex type used by the
// encoder's transform stage.
type fftfpComplex = fftfp.Complex

// Ciphertext is an RLWE pair (c0, c1) at some level with a scale.
// Ciphertexts travel in the coefficient domain — the form the ABC-FHE
// streaming pipeline emits to DRAM and the op-count analysis of paper
// Fig. 2 assumes (decryption then pays one NTT on c1 and one INTT back).
type Ciphertext struct {
	C0, C1 *ring.Poly
	Level  int
	Scale  float64
}

// CopyCiphertext returns a deep copy.
func (p *Parameters) CopyCiphertext(ct *Ciphertext) *Ciphertext {
	rl := p.RingAt(ct.Level)
	return &Ciphertext{
		C0:    rl.CopyPoly(ct.C0),
		C1:    rl.CopyPoly(ct.C1),
		Level: ct.Level,
		Scale: ct.Scale,
	}
}

// Encryptor performs public-key RLWE encryption. Encryption randomness is
// drawn from a seeded PRNG with a per-call stream counter, mirroring the
// accelerator's on-chip generation of masks and errors.
type Encryptor struct {
	params *Parameters
	pk     *PublicKey
	seed   [16]byte
	calls  uint64
}

// NewEncryptor builds an encryptor around pk using seed for randomness.
func NewEncryptor(params *Parameters, pk *PublicKey, seed [16]byte) *Encryptor {
	return &Encryptor{params: params, pk: pk, seed: seed}
}

// Encrypt produces a fresh encryption of pt at pt's level:
//
//	c0 = pk0·u + e0 + m,   c1 = pk1·u + e1
//
// with u ternary and e0, e1 Gaussian. The products run in the NTT domain;
// the result is returned in the coefficient domain (see Ciphertext).
// Per-limb transform count: 1 NTT (u) + 2 INTT (the two products) — the
// 3L transforms/L-limb encryption that internal/sched's operation model
// charges.
func (enc *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	p := enc.params
	level := pt.Level
	rl := p.RingAt(level)
	enc.calls++
	base := streamEncMask + 16*enc.calls

	u := rl.NewPoly()
	rl.TernaryPoly(prng.NewSource(enc.seed, base), u)
	rl.NTT(u)

	// pk at this level: limb-prefix views of the full-depth key.
	pk0 := &ring.Poly{Coeffs: enc.pk.P0.Coeffs[:level], IsNTT: true}
	pk1 := &ring.Poly{Coeffs: enc.pk.P1.Coeffs[:level], IsNTT: true}

	c0 := rl.NewPoly()
	c1 := rl.NewPoly()
	rl.MulCoeffs(pk0, u, c0)
	rl.MulCoeffs(pk1, u, c1)
	rl.INTT(c0)
	rl.INTT(c1)

	e0 := rl.NewPoly()
	e1 := rl.NewPoly()
	rl.GaussianPoly(prng.NewSource(enc.seed, base+1), e0)
	rl.GaussianPoly(prng.NewSource(enc.seed, base+2), e1)
	rl.Add(c0, e0, c0)
	rl.Add(c1, e1, c1)

	if pt.Value.IsNTT {
		panic("ckks: plaintext must be in coefficient domain")
	}
	rl.Add(c0, pt.Value, c0)

	return &Ciphertext{C0: c0, C1: c1, Level: level, Scale: pt.Scale}
}

// Decryptor recovers plaintexts with the secret key.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor builds a decryptor around sk.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// Decrypt computes m' = c0 + c1·s at the ciphertext's level, returning a
// coefficient-domain plaintext. Per-limb transforms: NTT(c1) then INTT of
// the sum — the 2L transforms/L-limb decryption of the operation model.
func (dec *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	p := dec.params
	rl := p.RingAt(ct.Level)

	c1 := rl.CopyPoly(ct.C1)
	rl.NTT(c1)
	sk := &ring.Poly{Coeffs: dec.sk.S.Coeffs[:ct.Level], IsNTT: true}
	rl.MulCoeffs(c1, sk, c1)
	rl.INTT(c1)

	out := rl.NewPoly()
	rl.Add(ct.C0, c1, out)

	return &Plaintext{Value: out, Level: ct.Level, Scale: ct.Scale}
}
