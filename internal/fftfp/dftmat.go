package fftfp

import "math/bits"

// Factored homomorphic DFT matrices — the plaintext side of
// CoeffsToSlots/SlotsToCoeffs. The special FFT the Embedder evaluates is a
// product of log2(Slots) sparse butterfly stages; each stage is a matrix
// with three nonzero diagonals, and consecutive stages can be multiplied
// into grouped matrices whose diagonal count grows as 2^(k+1)−1 for k
// stages — the level/rotation trade-off every CKKS bootstrapping stack
// tunes. This file builds those matrices in diagonal form, exactly
// mirroring the butterfly schedules of FFT/IFFT (fft.go), so the
// homomorphic evaluation and the plaintext reference share one source of
// truth for twiddles and stage order.
//
// Conventions:
//
//   - diag d of an n×n matrix M is the vector D_d with D_d[r] = M[r][(r+d) mod n],
//     so M·v = Σ_d D_d ⊙ rot_d(v) with rot_d(v)[r] = v[(r+d) mod n] — the
//     rotation direction Server.Rotate implements.
//   - The bit-reversal permutation is never represented: CoeffsToSlots
//     evaluates only the butterfly product, so its output holds the
//     encoding-basis values in bit-reversed slot order, and SlotsToCoeffs
//     consumes exactly that order. The permutation cancels in the round
//     trip and costs nothing homomorphically.

// DiagMatrix is a sparse matrix in diagonal form. Diags[d] (d normalized
// into [0, N)) holds diagonal d as a length-N vector; absent diagonals are
// zero.
type DiagMatrix struct {
	N     int
	Diags map[int][]complex128
}

// DiagIndices returns the nonzero diagonal indices in ascending order.
func (m *DiagMatrix) DiagIndices() []int {
	idx := make([]int, 0, len(m.Diags))
	for d := range m.Diags {
		idx = append(idx, d)
	}
	for i := 1; i < len(idx); i++ { // insertion sort: tiny sets
		for j := i; j > 0 && idx[j-1] > idx[j]; j-- {
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
	return idx
}

// Apply multiplies m by v in plain float arithmetic — the O(diags·N)
// reference the homomorphic evaluation is verified against.
func (m *DiagMatrix) Apply(v []complex128) []complex128 {
	if len(v) != m.N {
		panic("fftfp: DiagMatrix.Apply dimension mismatch")
	}
	out := make([]complex128, m.N)
	for d, diag := range m.Diags {
		for r := range out {
			out[r] += diag[r] * v[(r+d)%m.N]
		}
	}
	return out
}

// Scale multiplies every entry by s in place (used to fold the conjugate
// split's 1/2 into the last CoeffsToSlots group).
func (m *DiagMatrix) Scale(s complex128) {
	for _, diag := range m.Diags {
		for r := range diag {
			diag[r] *= s
		}
	}
}

func (m *DiagMatrix) diag(d int) []complex128 {
	d = ((d % m.N) + m.N) % m.N
	if v, ok := m.Diags[d]; ok {
		return v
	}
	v := make([]complex128, m.N)
	m.Diags[d] = v
	return v
}

// MulDiag returns the product a·b (b applied first) of two matrices in
// diagonal form: C_d[r] = Σ_{d1} A_{d1}[r]·B_{(d−d1) mod n}[(r+d1) mod n].
func MulDiag(a, b *DiagMatrix) *DiagMatrix {
	if a.N != b.N {
		panic("fftfp: DiagMatrix product dimension mismatch")
	}
	n := a.N
	c := &DiagMatrix{N: n, Diags: map[int][]complex128{}}
	for d1, da := range a.Diags {
		for d2, db := range b.Diags {
			cd := c.diag(d1 + d2)
			for r := 0; r < n; r++ {
				cd[r] += da[r] * db[(r+d1)%n]
			}
		}
	}
	return c
}

// identityDiag returns the n×n identity in diagonal form.
func identityDiag(n int) *DiagMatrix {
	d := make([]complex128, n)
	for i := range d {
		d[i] = 1
	}
	return &DiagMatrix{N: n, Diags: map[int][]complex128{0: d}}
}

// dftStage builds one butterfly stage of the special FFT as a diagonal
// matrix over the Slots-dimensional message space. inverse=false is the
// decode-direction stage S_length (FFT's body); inverse=true is the
// encode-direction stage T_length (IFFT's body) with the stage's share of
// the 1/Slots normalization (a factor 1/2) folded in.
func (e *Embedder) dftStage(length int, inverse bool) *DiagMatrix {
	n := e.Slots
	lenh, lenq := length>>1, length<<2
	m := &DiagMatrix{N: n, Diags: map[int][]complex128{}}
	d0 := m.diag(0)
	dUp := m.diag(lenh)     // reads slot r+lenh
	dDn := m.diag(n - lenh) // reads slot r−lenh (wrapped)
	for i := 0; i < n; i += length {
		for j := 0; j < lenh; j++ {
			p, pp := i+j, i+j+lenh
			if !inverse {
				// FFT: out[p] = x[p] + w·x[p+lenh]; out[pp] = x[pp−lenh] − w·x[pp].
				idx := (e.rotGroup[j] % lenq) * (e.M / lenq)
				w := complex(e.ksi[idx].Re, e.ksi[idx].Im)
				d0[p] += 1
				dUp[p] += w
				d0[pp] -= w
				dDn[pp] += 1
			} else {
				// IFFT: out[p] = x[p] + x[p+lenh]; out[pp] = (x[pp−lenh] − x[pp])·w̄.
				idx := (lenq - (e.rotGroup[j] % lenq)) * (e.M / lenq)
				w := complex(e.ksi[idx].Re, e.ksi[idx].Im)
				d0[p] += 1
				dUp[p] += 1
				d0[pp] -= w
				dDn[pp] += w
			}
		}
	}
	if inverse {
		m.Scale(0.5) // (1/2)^log2(Slots) per-stage fold = the 1/Slots factor
	}
	// When lenh == n/2 the up and down diagonals coincide (index n/2); the
	// shared diag accumulated both contributions above. Drop an all-zero
	// alias only if one was created spuriously — not possible here, but
	// keep the invariant that every stored diagonal is nonzero.
	return m
}

// DFTMatrices factors the homomorphic DFT into `levels` grouped diagonal
// matrices, returned in application order (apply [0] first).
//
//   - inverse=true is the CoeffsToSlots direction: the encode-direction
//     butterfly product (1/Slots folded in), T_Slots applied first. Fed a
//     ciphertext whose slots decode to z, the chained product leaves slot r
//     holding t[bitrev(r)] where t = IFFT(z) — the plaintext polynomial's
//     coefficient pairs c_r + i·c_{r+Slots} in bit-reversed order.
//   - inverse=false is the SlotsToCoeffs direction: the decode-direction
//     product, S_2 applied first, consuming exactly that bit-reversed
//     order and restoring z.
//
// log2(Slots) stages split into `levels` groups as evenly as possible;
// earlier-applied groups take the remainder. A group of k stages has
// ≤ 2^(k+1)−1 nonzero diagonals.
func (e *Embedder) DFTMatrices(levels int, inverse bool) []*DiagMatrix {
	logn := bits.Len(uint(e.Slots)) - 1
	if levels < 1 || levels > logn {
		panic("fftfp: DFT level count out of range")
	}
	// Stage lengths in application order.
	lengths := make([]int, logn)
	for i := range lengths {
		if inverse {
			lengths[i] = e.Slots >> uint(i)
		} else {
			lengths[i] = 2 << uint(i)
		}
	}
	per, rem := logn/levels, logn%levels
	out := make([]*DiagMatrix, 0, levels)
	pos := 0
	for g := 0; g < levels; g++ {
		k := per
		if g < rem {
			k++
		}
		grp := identityDiag(e.Slots)
		for s := 0; s < k; s++ {
			// Later stages multiply from the left (applied after).
			grp = MulDiag(e.dftStage(lengths[pos], inverse), grp)
			pos++
		}
		out = append(out, grp)
	}
	return out
}

// DFTDiagIndices returns, for each of the `levels` grouped matrices of
// DFTMatrices(levels, inverse) in application order, the nonzero diagonal
// indices (normalized into [0, slots), ascending) — computed analytically
// from the stage geometry, without materializing any matrix entries. Key
// owners use this to derive the exact rotation set a transform needs
// (see the public LinearTransformRotations helper).
//
// A group of stages with half-lengths h_1..h_k has diagonal sumset
// {Σ ε_i·h_i : ε ∈ {−1,0,1}} mod slots; entries never cancel (each
// butterfly row contributes with twiddles of modulus 1), so the sumset is
// exactly the support.
func DFTDiagIndices(logSlots, levels int, inverse bool) [][]int {
	if logSlots < 1 {
		panic("fftfp: logSlots must be ≥ 1")
	}
	if levels < 1 || levels > logSlots {
		panic("fftfp: DFT level count out of range")
	}
	slots := 1 << uint(logSlots)
	lengths := make([]int, logSlots)
	for i := range lengths {
		if inverse {
			lengths[i] = slots >> uint(i)
		} else {
			lengths[i] = 2 << uint(i)
		}
	}
	per, rem := logSlots/levels, logSlots%levels
	out := make([][]int, 0, levels)
	pos := 0
	for g := 0; g < levels; g++ {
		k := per
		if g < rem {
			k++
		}
		set := map[int]bool{0: true}
		for s := 0; s < k; s++ {
			h := lengths[pos] >> 1
			next := map[int]bool{}
			for d := range set {
				next[d] = true
				next[(d+h)%slots] = true
				next[((d-h)%slots+slots)%slots] = true
			}
			set = next
			pos++
		}
		idx := make([]int, 0, len(set))
		for d := range set {
			idx = append(idx, d)
		}
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0 && idx[j-1] > idx[j]; j-- {
				idx[j-1], idx[j] = idx[j], idx[j-1]
			}
		}
		out = append(out, idx)
	}
	return out
}

// BitReverse permutes v by the bit-reversal of its index (v's length must
// be a power of two) — the slot order CoeffsToSlots emits. Exported for
// callers preparing or checking transform inputs in tests and tools.
func BitReverse(v []complex128) {
	logN := bits.Len(uint(len(v))) - 1
	for i := range v {
		j := int(bits.Reverse64(uint64(i)) >> (64 - uint(logN)))
		if j > i {
			v[i], v[j] = v[j], v[i]
		}
	}
}
