package ckks

import (
	"math/cmplx"
	"testing"
	"testing/quick"
)

func roundTripCt(t *testing.T, packed bool) {
	t.Helper()
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)

	msg := randMsg(p, 0, 21)
	ct := encryptor.Encrypt(enc.Encode(msg))

	data, err := p.MarshalCiphertext(ct, packed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.UnmarshalCiphertext(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level != ct.Level || got.Scale != ct.Scale {
		t.Fatal("metadata lost")
	}
	for i := range ct.C0.Coeffs {
		for j := range ct.C0.Coeffs[i] {
			if ct.C0.Coeffs[i][j] != got.C0.Coeffs[i][j] ||
				ct.C1.Coeffs[i][j] != got.C1.Coeffs[i][j] {
				t.Fatalf("coefficient mismatch at limb %d pos %d", i, j)
			}
		}
	}
	// And it still decrypts.
	out := enc.Decode(dec.Decrypt(got))
	if e := maxErr(msg, out); e > 1e-4 {
		t.Fatalf("deserialized ciphertext decrypts with error %g", e)
	}
}

func TestMarshalWordRoundTrip(t *testing.T)   { roundTripCt(t, false) }
func TestMarshalPackedRoundTrip(t *testing.T) { roundTripCt(t, true) }

func TestPackedSizeMatchesDRAMModel(t *testing.T) {
	// The packed wire size must equal the DRAM traffic the paper's memory
	// accounting charges: 2·L·N·44 bits (+ header).
	p := testParams
	level := p.MaxLevel()
	wantPayload := (2 * level * p.N() * PackedWordBits) / 8
	got := p.CiphertextWireBytes(level)
	if got != headerLen()+wantPayload {
		t.Fatalf("wire bytes %d, want header+%d", got, wantPayload)
	}
	// Packed is ~44/64 the size of the word encoding.
	kg := NewKeyGenerator(p, testSeed())
	_, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	ct := NewEncryptor(p, pk, testSeed()).Encrypt(enc.Encode(randMsg(p, 0, 22)))
	word, _ := p.MarshalCiphertext(ct, false)
	packed, _ := p.MarshalCiphertext(ct, true)
	ratio := float64(len(packed)) / float64(len(word))
	if ratio < 0.66 || ratio > 0.72 { // 44/64 ≈ 0.6875
		t.Fatalf("packed/word ratio %.3f, want ≈0.6875", ratio)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	_, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	ct := NewEncryptor(p, pk, testSeed()).Encrypt(enc.Encode(randMsg(p, 0, 23)))
	data, _ := p.MarshalCiphertext(ct, false)

	cases := map[string]func([]byte) []byte{
		"short":     func(d []byte) []byte { return d[:10] },
		"bad magic": func(d []byte) []byte { d[0] = 'X'; return d },
		"bad ver":   func(d []byte) []byte { d[4] = 99; return d },
		"bad logN":  func(d []byte) []byte { d[6] = 3; return d },
		"bad level": func(d []byte) []byte { d[7] = 200; return d },
		"bad enc":   func(d []byte) []byte { d[5] = 7; return d },
		"truncated": func(d []byte) []byte { return d[:len(d)-5] },
		"residue>=q": func(d []byte) []byte {
			for i := headerLen(); i < headerLen()+8; i++ {
				d[i] = 0xFF
			}
			return d
		},
	}
	for name, corrupt := range cases {
		d := append([]byte(nil), data...)
		if _, err := p.UnmarshalCiphertext(corrupt(d)); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

// Property: bit packing is a faithful round trip for arbitrary 44-bit
// words.
func TestBitPackingQuick(t *testing.T) {
	f := func(words []uint64) bool {
		mask := (uint64(1) << PackedWordBits) - 1
		for i := range words {
			words[i] &= mask
		}
		buf := make([]byte, (len(words)*PackedWordBits)/8+16)
		w := newBitWriter(buf)
		for _, v := range words {
			w.write(v, PackedWordBits)
		}
		w.flush()
		r := newBitReader(buf)
		for _, v := range words {
			if r.read(PackedWordBits) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMarshalNTTDomainPreserved(t *testing.T) {
	p := testParams
	rl := p.RingAt(2)
	ct := &Ciphertext{C0: rl.NewPoly(), C1: rl.NewPoly(), Level: 2, Scale: p.Scale()}
	rl.NTT(ct.C0)
	rl.NTT(ct.C1)
	data, err := p.MarshalCiphertext(ct, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.UnmarshalCiphertext(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.C0.IsNTT || !got.C1.IsNTT {
		t.Fatal("NTT domain flag lost")
	}
	_ = cmplx.Abs // keep import pattern consistent with the package tests
}
