package ring

import (
	"testing"
)

// TestPermuteNTTMatchesCoeffAutomorphism pins the load-bearing identity of
// hoisted rotations: applying the automorphism as an NTT-domain gather is
// exactly NTT ∘ coefficient-automorphism, for every limb, across a range
// of Galois elements (including the conjugation element 2N−1).
func TestPermuteNTTMatchesCoeffAutomorphism(t *testing.T) {
	r := testRing(t)
	n := r.N
	for _, g := range []int{5, 25, 3, 2*n - 1, (5*5*5*5*5*5*5)%(2*n) | 1} {
		p := r.NewPoly()
		r.UniformPoly(src(uint64(g)), p)

		// Reference: automorphism in the coefficient domain, then NTT.
		want := r.NewPoly()
		r.AutomorphismCoeff(p, g, want)
		r.NTT(want)

		// Hoisted path: NTT first, then the permutation gather.
		pn := r.CopyPoly(p)
		r.NTT(pn)
		got := r.NewPoly()
		r.PermuteNTT(pn, r.GaloisPermNTT(g), got)

		if !r.Equal(want, got) {
			t.Fatalf("g=%d: NTT-domain permutation disagrees with coefficient automorphism", g)
		}
	}
}

// TestGaloisPermIsPermutation: every index appears exactly once.
func TestGaloisPermIsPermutation(t *testing.T) {
	r := testRing(t)
	for _, g := range []int{5, 2*r.N - 1} {
		perm := r.GaloisPermNTT(g)
		seen := make([]bool, r.N)
		for _, j := range perm {
			if j < 0 || int(j) >= r.N || seen[j] {
				t.Fatalf("g=%d: not a permutation", g)
			}
			seen[j] = true
		}
	}
}

// TestAutomorphismCoeffInvolution: conjugation (g = 2N−1) applied twice is
// the identity, at every limb.
func TestAutomorphismCoeffInvolution(t *testing.T) {
	r := testRing(t)
	g := 2*r.N - 1
	p := r.NewPoly()
	r.UniformPoly(src(7), p)
	a, b := r.NewPoly(), r.NewPoly()
	r.AutomorphismCoeff(p, g, a)
	r.AutomorphismCoeff(a, g, b)
	if !r.Equal(p, b) {
		t.Fatal("conjugation automorphism is not an involution")
	}
}

// TestMulPermAdd: the fused kernel against its unfused composition.
func TestMulPermAdd(t *testing.T) {
	r := testRing(t)
	g := 5
	a, b := r.NewPoly(), r.NewPoly()
	r.UniformPoly(src(11), a)
	r.UniformPoly(src(12), b)
	r.NTT(a)
	r.NTT(b)
	perm := r.GaloisPermNTT(g)

	acc := r.NewPoly()
	acc.IsNTT = true
	r.MulPermAdd(a, perm, b, acc)
	r.MulPermAdd(a, nil, b, acc) // identity branch on top

	// Unfused reference: permute, multiply, add (twice: permuted + plain).
	want := r.NewPoly()
	want.IsNTT = true
	pa := r.NewPoly()
	r.PermuteNTT(a, perm, pa)
	tmp := r.NewPoly()
	r.MulCoeffs(pa, b, tmp)
	r.Add(want, tmp, want)
	r.MulCoeffs(a, b, tmp)
	r.Add(want, tmp, want)

	if !r.Equal(want, acc) {
		t.Fatal("MulPermAdd disagrees with permute+multiply+add")
	}

	// Domain guards.
	c := r.NewPoly() // coefficient domain
	mustPanic(t, func() { r.MulPermAdd(c, nil, b, acc) })
	mustPanic(t, func() { r.PermuteNTT(c, perm, acc) })
	mustPanic(t, func() { r.AutomorphismCoeff(a, g, acc) }) // a is NTT
	mustPanic(t, func() { r.AutomorphismCoeff(c, 4, acc) }) // even g
}

// TestMulMonomial pins the negacyclic shift against the independent path:
// NTT-domain multiplication by the monomial polynomial X^k.
func TestMulMonomial(t *testing.T) {
	r := testRing(t)
	n := r.N
	for _, k := range []int{0, 1, n / 2, n - 1, n, n + 3, 2*n - 1} {
		p := r.NewPoly()
		r.UniformPoly(src(uint64(100+k)), p)

		got := r.NewPoly()
		r.MulMonomial(p, k, got)

		// Reference: encode X^k (reduced by X^N = −1) and multiply in the
		// evaluation domain.
		mono := r.NewPoly()
		for i := range mono.Coeffs {
			m := r.Basis.Moduli[i]
			if k < n {
				mono.Coeffs[i][k] = 1 % m.Q
			} else {
				mono.Coeffs[i][k-n] = m.Neg(1 % m.Q)
			}
		}
		pn, mn := r.CopyPoly(p), r.CopyPoly(mono)
		r.NTT(pn)
		r.NTT(mn)
		want := r.NewPoly()
		r.MulCoeffs(pn, mn, want)
		r.INTT(want)

		if !r.Equal(want, got) {
			t.Fatalf("k=%d: MulMonomial disagrees with NTT-domain monomial multiply", k)
		}
	}
	mustPanic(t, func() {
		p := r.NewPoly()
		p.IsNTT = true
		r.MulMonomial(p, 1, r.NewPoly())
	})
	mustPanic(t, func() { r.MulMonomial(r.NewPoly(), 2*n, r.NewPoly()) })
}
