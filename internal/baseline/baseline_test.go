package baseline

import (
	"math"
	"testing"

	"repro/internal/ckks"
)

func TestAnchoredSetRatios(t *testing.T) {
	pts := AnchoredSet(0.26, 0.03)
	byKey := map[string]Point{}
	for _, p := range pts {
		byKey[p.System+"/"+p.Op] = p
	}
	abc := byKey["ABC-FHE (this work)/enc"]
	cpu := byKey["CPU (i7-12700, Lattigo, 1 core)/enc"]
	if r := cpu.LatencyMS / abc.LatencyMS; math.Abs(r-PaperSpeedupEncVsCPU) > 1e-9 {
		t.Fatalf("enc CPU ratio %v", r)
	}
	sota := byKey["SOTA accel [34]/[22] (normalized)/dec"]
	abcDec := byKey["ABC-FHE (this work)/dec"]
	if r := sota.LatencyMS / abcDec.LatencyMS; math.Abs(r-PaperSpeedupDecVsSOTA) > 1e-9 {
		t.Fatalf("dec SOTA ratio %v", r)
	}
	for _, p := range pts {
		if p.Provenance == "" {
			t.Fatalf("point %q lacks provenance", p.System)
		}
	}
}

func TestNormalizations(t *testing.T) {
	// Frequency normalization: a 300 MHz design's 10 ms becomes 5 ms at 600.
	if got := NormalizeFrequency(10, 300, 600); got != 5 {
		t.Fatalf("freq normalization: %v", got)
	}
	// Op-proportion scaling: a design that ran 1/4 of the target ops gets 4x.
	if got := ScaleByOpProportion(10, 1, 4); got != 40 {
		t.Fatalf("op scaling: %v", got)
	}
	if Speedup(100, 4) != 25 {
		t.Fatal("speedup")
	}
}

func TestFig1Shares(t *testing.T) {
	rows := Fig1(0.26, 0.03, 1000)
	if len(rows) != 3 {
		t.Fatal("three bars expected")
	}
	// By construction the SOTA-client bar must reproduce the published
	// 69.4% client share.
	sota := rows[1]
	if math.Abs(sota.ClientShare-PaperClientShareSOTA) > 1e-9 {
		t.Fatalf("SOTA client share %.4f, want %.4f", sota.ClientShare, PaperClientShareSOTA)
	}
	// CPU client dominates even more; ABC-FHE flips the balance. Note the
	// paper's own printed marks (99.9% and 12.8%) are not derivable from
	// its speed-up ratios alone (the ratio-implied maximum for the CPU bar
	// is ≈92%); we assert the ratio-consistent ordering and record the
	// paper marks in EXPERIMENTS.md.
	if rows[0].ClientShare < 0.90 {
		t.Fatalf("CPU client share %.4f — should dominate (paper mark: 99.9%%)", rows[0].ClientShare)
	}
	if rows[2].ClientShare > 0.15 {
		t.Fatalf("ABC-FHE client share %.4f — must flip the bottleneck (paper mark: 12.8%%)", rows[2].ClientShare)
	}
}

func TestMeasureCPUSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	encMS, decMS, err := MeasureCPU(ckks.TestParams, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if encMS < 0 || decMS < 0 {
		t.Fatal("negative latency")
	}
	// Encode+encrypt at 4 limbs must cost more than decode+decrypt at 2.
	if encMS > 0 && decMS > encMS*2 {
		t.Fatalf("dec %v ms implausibly above enc %v ms", decMS, encMS)
	}
}

func TestPriorWorks(t *testing.T) {
	ws := PriorWorks()
	if len(ws) != 4 {
		t.Fatalf("expected 4 prior systems, got %d", len(ws))
	}
	// The paper's motivating observation: none support bootstrappable
	// parameters, none stream.
	if SupportsBootstrappableCount() != 0 {
		t.Fatal("no prior design reaches bootstrappable parameters")
	}
	for _, w := range ws {
		if w.MaxLogN >= 14 {
			t.Fatalf("%s: logN %d contradicts the non-bootstrappable claim", w.Name, w.MaxLogN)
		}
		if w.Streaming {
			t.Fatalf("%s: prior designs are non-streaming per the paper", w.Name)
		}
	}
}

func TestNormalizationFor(t *testing.T) {
	w := PriorWorks()[2] // ALOHA-HE
	// A 300 MHz design with 1/4 of the target ops: multiplier = 0.5 * 4 = 2.
	mult, formula := NormalizationFor(w, 4, 1, 300)
	if mult != 2 {
		t.Fatalf("multiplier %v, want 2", mult)
	}
	if formula == "" {
		t.Fatal("formula must describe the adjustment")
	}
}
