// Package abcfhe is the public API of this repository: a from-scratch Go
// reproduction of "ABC-FHE: A Resource-Efficient Accelerator Enabling
// Bootstrappable Parameters for Client-Side Fully Homomorphic Encryption"
// (Yune et al., DAC 2025).
//
// Two layers are exposed:
//
//   - Client: a working CKKS client (encode/encrypt/decrypt/decode over
//     bootstrappable parameter sets, N = 2^13..2^16, 36-bit double-scale
//     RNS chains) built entirely from this repository's substrates.
//   - Accelerator: the modeled ABC-FHE chip — cycle-level latency,
//     throughput, and the 28 nm area/power composition — plus every
//     experiment of the paper's evaluation section (see Experiments).
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package abcfhe

import (
	"fmt"
	"sync"

	"repro/internal/bench"
	"repro/internal/ckks"
	"repro/internal/core"
	"repro/internal/fftfp"
	"repro/internal/prng"
)

// ---------------------------------------------------------------------
// Functional CKKS client
// ---------------------------------------------------------------------

// Preset names a parameter set.
type Preset string

const (
	// PN16 is the paper's evaluation configuration: N = 2^16, 24 limbs of
	// 36-bit primes (12 double-scale levels), sparse ternary secret.
	PN16 Preset = "PN16"
	// PN15, PN14, PN13 are the smaller bootstrappable-range degrees the
	// paper sweeps in Fig. 6b.
	PN15 Preset = "PN15"
	PN14 Preset = "PN14"
	PN13 Preset = "PN13"
	// Test is a small, fast set for experimentation (N = 2^10, 4 limbs).
	Test Preset = "Test"
)

func (p Preset) spec() (ckks.ParamSpec, error) {
	switch p {
	case PN16:
		return ckks.PN16, nil
	case PN15:
		return ckks.PN15, nil
	case PN14:
		return ckks.PN14, nil
	case PN13:
		return ckks.PN13, nil
	case Test:
		return ckks.TestParams, nil
	}
	return ckks.ParamSpec{}, fmt.Errorf("abcfhe: unknown preset %q", p)
}

// Client bundles keys and engines for the client-side CKKS workflow the
// accelerator targets: Encode+Encrypt outbound, Decrypt+Decode inbound.
//
// All client operations are safe for concurrent use, and the limb-wise
// kernels underneath fan out across a lane engine — the software
// counterpart of the paper's PNL lanes (configure it with WithWorkers).
type Client struct {
	params    *ckks.Parameters
	encoder   *ckks.Encoder
	encryptor *ckks.Encryptor
	decryptor *ckks.Decryptor
	evaluator *ckks.Evaluator
	secret    *ckks.SecretKey
	public    *ckks.PublicKey
	seeded    *ckks.SeededEncryptor
	seedOnce  sync.Once
	seedCopy  [16]byte
}

// ClientOption configures a Client at construction.
type ClientOption func(*clientConfig)

type clientConfig struct {
	workers int
}

// WithWorkers sizes the client's lane engine to n parallel workers — the
// software mirror of the paper's per-PNL lane count that Fig. 5b sweeps
// in hardware. n <= 0 (and the default) selects GOMAXPROCS; n = 1 forces
// the fully serial path. Any worker count produces bit-identical
// ciphertexts for the same seed.
func WithWorkers(n int) ClientOption {
	return func(c *clientConfig) { c.workers = n }
}

// Ciphertext is an encrypted message (RLWE pair in the coefficient
// domain, carrying its level and scale).
type Ciphertext = ckks.Ciphertext

// Plaintext is an encoded (but unencrypted) message.
type Plaintext = ckks.Plaintext

// NewClient builds a client for the preset with a 128-bit seed (all key
// material and encryption randomness derive deterministically from it —
// the property the accelerator's on-chip PRNG exploits). Options tune the
// execution engine; the cryptographic output never depends on them.
func NewClient(preset Preset, seedLo, seedHi uint64, opts ...ClientOption) (*Client, error) {
	spec, err := preset.spec()
	if err != nil {
		return nil, err
	}
	params, err := spec.Build()
	if err != nil {
		return nil, err
	}
	var cfg clientConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers != 0 {
		params.SetWorkers(cfg.workers)
	}
	seed := prng.SeedFromUint64s(seedLo, seedHi)
	kg := ckks.NewKeyGenerator(params, seed)
	sk, pk := kg.GenKeyPair()
	return &Client{
		params:    params,
		encoder:   ckks.NewEncoder(params),
		encryptor: ckks.NewEncryptor(params, pk, seed),
		decryptor: ckks.NewDecryptor(params, sk),
		evaluator: ckks.NewEvaluator(params),
		secret:    sk,
		public:    pk,
		seedCopy:  seed,
	}, nil
}

// Slots returns the number of complex message slots (N/2).
func (c *Client) Slots() int { return c.params.Slots() }

// MaxLevel returns the RNS depth fresh ciphertexts carry.
func (c *Client) MaxLevel() int { return c.params.MaxLevel() }

// Workers reports the lane count client kernels fan out across.
func (c *Client) Workers() int { return c.params.Workers() }

// Close releases the client's private lane engine, if WithWorkers
// installed one. The client must be idle; using it afterwards falls back
// to the shared default engine.
func (c *Client) Close() { c.params.Close() }

// EncodeEncrypt runs the outbound client pipeline: IFFT encoding, RNS
// expansion, and public-key encryption at full depth. The intermediate
// plaintext's storage is recycled, so the steady-state pipeline allocates
// only the returned ciphertext.
func (c *Client) EncodeEncrypt(msg []complex128) *Ciphertext {
	pt := c.encoder.Encode(msg)
	ct := c.encryptor.Encrypt(pt)
	c.params.PutPlaintext(pt)
	return ct
}

// DecryptDecode runs the inbound pipeline: decryption at the ciphertext's
// level, allocation-free CRT combination (word-arithmetic centered lifts,
// no big.Int) and FFT decoding.
func (c *Client) DecryptDecode(ct *Ciphertext) []complex128 {
	return c.DecryptDecodeInto(ct, make([]complex128, c.params.Slots()))
}

// DecryptDecodeInto is DecryptDecode writing into a caller-provided slot
// buffer of length Slots() (returned for chaining). With a reused buffer
// the steady-state inbound pipeline allocates only transient bookkeeping —
// the inbound mirror of EncodeEncrypt's recycled plaintexts.
func (c *Client) DecryptDecodeInto(ct *Ciphertext, out []complex128) []complex128 {
	pt := c.decryptor.Decrypt(ct)
	c.encoder.DecodeInto(pt, out)
	c.params.PutPlaintext(pt)
	return out
}

// EncodeEncryptBatch runs the outbound pipeline over a whole batch,
// fanning the messages out across the lane engine (each message then
// fans its own limb work out onto idle lanes). Encode and encrypt are
// fused per message, so only in-flight messages hold scratch. PRNG
// stream windows are reserved by batch index, so the result is
// bit-identical to calling EncodeEncrypt on each message in order — at
// any worker count.
func (c *Client) EncodeEncryptBatch(msgs [][]complex128) []*Ciphertext {
	return c.encryptor.EncryptBatchFrom(len(msgs), func(i int) *Plaintext {
		return c.encoder.Encode(msgs[i])
	})
}

// DecryptDecodeBatch runs the inbound pipeline over a whole batch in
// parallel (the decryptor is stateless, so messages are independent).
func (c *Client) DecryptDecodeBatch(cts []*Ciphertext) [][]complex128 {
	return c.DecryptDecodeBatchInto(cts, make([][]complex128, len(cts)))
}

// DecryptDecodeBatchInto is DecryptDecodeBatch writing into caller-provided
// slot buffers: out must have len(cts) entries; nil entries are allocated,
// non-nil entries (length Slots()) are reused in place. Whole messages fan
// out across the lane engine and each message's Combine-CRT stage then fans
// its coefficient blocks onto idle lanes, so a served batch keeps every
// lane busy with zero steady-state allocation. Results are bit-identical
// to sequential DecryptDecode calls at any worker count.
func (c *Client) DecryptDecodeBatchInto(cts []*Ciphertext, out [][]complex128) [][]complex128 {
	if len(out) != len(cts) {
		panic("abcfhe: batch output must have one entry per ciphertext")
	}
	c.params.Ring().Engine().Run(len(cts), func(i int) {
		if out[i] == nil {
			out[i] = make([]complex128, c.params.Slots())
		}
		c.DecryptDecodeInto(cts[i], out[i])
	})
	return out
}

// Encode encodes without encrypting (plaintext-side tooling).
func (c *Client) Encode(msg []complex128) *Plaintext { return c.encoder.Encode(msg) }

// Evaluator exposes keyless homomorphic operations (add, sub, plaintext
// multiply, rescale, level drop) for server-side simulation in examples.
func (c *Client) Evaluator() *ckks.Evaluator { return c.evaluator }

// ---------------------------------------------------------------------
// Modeled accelerator
// ---------------------------------------------------------------------

// Accelerator is the modeled ABC-FHE chip.
type Accelerator struct {
	sys core.System
}

// NewAccelerator returns the paper-configured accelerator model.
func NewAccelerator() *Accelerator { return &Accelerator{sys: core.Default()} }

// WithLanes reconfigures the per-PNL lane count (Fig. 5b's sweep axis).
func (a *Accelerator) WithLanes(p int) *Accelerator {
	return &Accelerator{sys: a.sys.WithLanes(p)}
}

// WithDegree reconfigures the polynomial degree 2^logN.
func (a *Accelerator) WithDegree(logN int) *Accelerator {
	return &Accelerator{sys: a.sys.WithDegree(logN)}
}

// Summary reports the headline card: area, power (28 nm and 7 nm),
// client-operation latencies, throughput, and operation counts.
type Summary = core.Summary

// Summarize evaluates the accelerator model once.
func (a *Accelerator) Summarize() Summary { return a.sys.Summarize() }

// EncodeEncryptMS returns the simulated encode+encrypt latency (ms).
func (a *Accelerator) EncodeEncryptMS() float64 { return a.sys.EncodeEncrypt().TimeMS }

// DecodeDecryptMS returns the simulated decode+decrypt latency (ms).
func (a *Accelerator) DecodeDecryptMS() float64 { return a.sys.DecodeDecrypt().TimeMS }

// ---------------------------------------------------------------------
// Experiments
// ---------------------------------------------------------------------

// Experiments lists the reproducible tables/figures of the paper.
func Experiments() []string { return bench.IDs() }

// RunExperiment regenerates one table/figure and returns its rendered
// text. fast trades fidelity (smaller rings) for speed.
func RunExperiment(id string, fast bool) (string, error) {
	r, err := bench.Run(id, bench.Options{Fast: fast})
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// FP55MantissaBits is the custom floating-point mantissa width the RFE
// uses (paper Fig. 3c: ≥43 bits keeps bootstrapping precision above the
// 19.29-bit threshold).
const FP55MantissaBits = fftfp.FP55Mantissa

// ---------------------------------------------------------------------
// Wire formats and compressed uploads
// ---------------------------------------------------------------------

// SerializeCiphertext encodes ct in the packed 44-bit wire format — the
// exact byte stream the accelerator's DRAM/wire accounting charges.
func (c *Client) SerializeCiphertext(ct *Ciphertext) ([]byte, error) {
	return c.params.MarshalCiphertext(ct, true)
}

// DeserializeCiphertext reverses SerializeCiphertext, validating every
// residue against the parameter set.
func (c *Client) DeserializeCiphertext(data []byte) (*Ciphertext, error) {
	return c.params.UnmarshalCiphertext(data)
}

// EncodeEncryptCompressed runs the seeded upload path: encode, encrypt
// with a PRNG-derived mask, and serialize only (c0, 16-byte seed) — about
// half the bytes of a full ciphertext. The key owner's secret key is used
// (seeded encryption is the fresh-upload form).
func (c *Client) EncodeEncryptCompressed(msg []complex128) ([]byte, error) {
	c.seedOnce.Do(func() {
		c.seeded = ckks.NewSeededEncryptor(c.params, c.secret, c.seedCopy)
	})
	pt := c.encoder.Encode(msg)
	sct := c.seeded.Encrypt(pt)
	c.params.PutPlaintext(pt)
	return c.params.MarshalSeeded(sct)
}

// ExpandCompressedUpload is the server-side inverse: parse the compressed
// form and regenerate c1 from the embedded seed. No key material needed.
func (c *Client) ExpandCompressedUpload(data []byte) (*Ciphertext, error) {
	sct, err := c.params.UnmarshalSeeded(data)
	if err != nil {
		return nil, err
	}
	return c.params.Expand(sct), nil
}

// CiphertextWireBytes reports the packed wire size of a full ciphertext
// at the given level; CompressedWireBytes the seeded form's size.
func (c *Client) CiphertextWireBytes(level int) int { return c.params.CiphertextWireBytes(level) }

// CompressedWireBytes reports the seeded upload's wire size at a level.
func (c *Client) CompressedWireBytes(level int) int { return c.params.SeededWireBytes(level) }
