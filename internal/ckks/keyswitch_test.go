package ckks

import (
	"math/cmplx"
	"testing"
)

func TestMulRelin(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinearizationKey(sk)
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	m1 := randMsg(p, 0, 41)
	m2 := randMsg(p, 0, 42)
	ct1 := encryptor.Encrypt(enc.Encode(m1))
	ct2 := encryptor.Encrypt(enc.Encode(m2))

	prod := ev.MulRelin(ct1, ct2, rlk)
	prod = ev.Rescale(prod)
	got := enc.Decode(dec.Decrypt(prod))

	want := make([]complex128, len(m1))
	for i := range want {
		want[i] = m1[i] * m2[i]
	}
	// Budget: rescale noise (≈2e-4) + gadget switching noise (≈2^w·√(LTN)·σ
	// amplified by the un-normalized decode FFT). 5e-2 is ~4 bits of slack.
	if e := maxErr(want, got); e > 5e-2 {
		t.Fatalf("ct x ct multiply error %g", e)
	}
}

func TestMulRelinThenAdd(t *testing.T) {
	// (m1·m2) + m3: mixes relinearized products with additions at the
	// dropped level.
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinearizationKey(sk)
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	m1 := randMsg(p, 0, 43)
	m2 := randMsg(p, 0, 44)
	m3 := randMsg(p, 0, 45)

	prod := ev.Rescale(ev.MulRelin(
		encryptor.Encrypt(enc.Encode(m1)),
		encryptor.Encrypt(enc.Encode(m2)), rlk))
	// Bring m3 to the product's level and scale.
	pt3 := enc.EncodeAtLevel(m3, prod.Level)
	pt3.Scale = prod.Scale
	// Re-encode at the matching scale: encode fresh then adjust via
	// plaintext addition on the decrypted domain is cheating — instead use
	// AddPlain with a scale-matched plaintext built through EncodeAtLevel
	// and a scale fix-up multiply.
	sum := ev.AddPlain(prod, pt3)
	got := enc.Decode(dec.Decrypt(sum))

	// pt3 was encoded at Δ but added at the product's scale Δ²/q, so the
	// m3 term arrives attenuated by Δ/(Δ²/q) = q/Δ. Account for it.
	atten := complex(p.Scale()/prod.Scale, 0)
	for i := range got {
		want := m1[i]*m2[i] + m3[i]*atten
		if cmplx.Abs(got[i]-want) > 5e-2 {
			t.Fatalf("slot %d: got %v want %v", i, got[i], want)
		}
	}
}

func TestRotation(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	msg := randMsg(p, 0, 46)
	ct := encryptor.Encrypt(enc.Encode(msg))

	for _, k := range []int{1, 3, 17} {
		g := p.GaloisElement(k)
		rk := kg.GenRotationKey(sk, g)
		rot := ev.RotateGalois(ct, rk)
		got := enc.Decode(dec.Decrypt(rot))

		slots := p.Slots()
		bad := 0
		for i := 0; i < slots; i++ {
			want := msg[(i+k)%slots]
			if cmplx.Abs(got[i]-want) > 5e-2 {
				bad++
			}
		}
		if bad > 0 {
			// Try the opposite direction before failing: the rotation
			// orientation is a convention.
			bad = 0
			for i := 0; i < slots; i++ {
				want := msg[((i-k)%slots+slots)%slots]
				if cmplx.Abs(got[i]-want) > 5e-2 {
					bad++
				}
			}
			if bad > 0 {
				t.Fatalf("rotation by %d: %d/%d slots wrong in both orientations", k, bad, slots)
			}
		}
	}
}

func TestConjugate(t *testing.T) {
	p := testParams
	kg := NewKeyGenerator(p, testSeed())
	sk, pk := kg.GenKeyPair()
	enc := NewEncoder(p)
	encryptor := NewEncryptor(p, pk, testSeed())
	dec := NewDecryptor(p, sk)
	ev := NewEvaluator(p)

	msg := randMsg(p, 0, 47)
	ct := encryptor.Encrypt(enc.Encode(msg))
	rk := kg.GenRotationKey(sk, p.GaloisElementConjugate())
	conj := ev.RotateGalois(ct, rk)
	got := enc.Decode(dec.Decrypt(conj))
	for i := range msg {
		if cmplx.Abs(got[i]-cmplx.Conj(msg[i])) > 5e-2 {
			t.Fatalf("conjugate failed at slot %d: %v vs %v", i, got[i], cmplx.Conj(msg[i]))
		}
	}
}

func TestGaloisElements(t *testing.T) {
	p := testParams
	if p.GaloisElement(0) != 1 {
		t.Fatal("rotation by 0 must be the identity element")
	}
	if p.GaloisElement(1) != 5 {
		t.Fatal("rotation by 1 must be generator 5")
	}
	// Negative rotations normalize into the group.
	if g := p.GaloisElement(-1); g <= 0 || g >= 2*p.N() {
		t.Fatalf("negative rotation element %d out of range", g)
	}
	if p.GaloisElementConjugate() != 2*p.N()-1 {
		t.Fatal("conjugation element")
	}
}

func TestAutomorphismInvolution(t *testing.T) {
	// X → X^(2N-1) applied twice is the identity.
	p := testParams
	rl := p.Ring()
	a := rl.NewPoly()
	src := randMsg(p, 0, 48)
	for j := 0; j < p.N() && j < len(src)*2; j++ {
		a.Coeffs[0][j] = uint64(j * 7 % 97)
	}
	g := p.GaloisElementConjugate()
	b := automorphism(rl, automorphism(rl, a, g), g)
	if !rl.Equal(a, b) {
		t.Fatal("conjugation automorphism is not an involution")
	}
}
