// Package abcfhe is the public API of this repository: a from-scratch Go
// reproduction of "ABC-FHE: A Resource-Efficient Accelerator Enabling
// Bootstrappable Parameters for Client-Side Fully Homomorphic Encryption"
// (Yune et al., DAC 2025).
//
// Two layers are exposed:
//
//   - A role-separated CKKS deployment (encode/encrypt/decrypt/decode over
//     bootstrappable parameter sets, N = 2^13..2^16, 36-bit double-scale
//     RNS chains) built entirely from this repository's substrates. Three
//     parties mirror the paper's asymmetric deployment: KeyOwner (secret
//     key: keygen, decrypt+decode, seeded uploads, key export — including
//     evaluation keys), Encryptor (public-key-only encoding devices) and
//     Server (keyless: expands compressed uploads, evaluates — additions
//     and constants key-free; ct×ct multiplication, slot rotations, inner
//     sums and plaintext-weight dot products gated by an imported
//     evaluation-key set). Parties on different machines exchange nothing
//     but bytes — packed wire formats for ciphertexts, compressed
//     uploads, and keys.
//   - Accelerator: the modeled ABC-FHE chip — cycle-level latency,
//     throughput, and the 28 nm area/power composition — plus every
//     experiment of the paper's evaluation section (see Experiments).
//
// Misuse of the public surface (bad lengths, wrong levels, malformed
// bytes, unknown presets) returns typed errors (see errors.go); panics
// are reserved for internal invariants. The legacy Client type remains as
// a deprecated facade composed of the three roles.
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package abcfhe

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/ckks"
	"repro/internal/core"
	"repro/internal/fftfp"
)

// ---------------------------------------------------------------------
// Parameter presets
// ---------------------------------------------------------------------

// Preset names a parameter set.
type Preset string

const (
	// PN16 is the paper's evaluation configuration: N = 2^16, 24 limbs of
	// 36-bit primes (12 double-scale levels), sparse ternary secret.
	PN16 Preset = "PN16"
	// PN15, PN14, PN13 are the smaller bootstrappable-range degrees the
	// paper sweeps in Fig. 6b.
	PN15 Preset = "PN15"
	PN14 Preset = "PN14"
	PN13 Preset = "PN13"
	// Test is a small, fast set for experimentation (N = 2^10, 4 limbs).
	Test Preset = "Test"
)

// Presets lists every preset name, largest first.
func Presets() []Preset { return []Preset{PN16, PN15, PN14, PN13, Test} }

func (p Preset) spec() (ckks.ParamSpec, error) {
	switch p {
	case PN16:
		return ckks.PN16, nil
	case PN15:
		return ckks.PN15, nil
	case PN14:
		return ckks.PN14, nil
	case PN13:
		return ckks.PN13, nil
	case Test:
		return ckks.TestParams, nil
	}
	return ckks.ParamSpec{}, fmt.Errorf("%w: %q", ErrUnknownPreset, p)
}

// Ciphertext is an encrypted message (RLWE pair in the coefficient
// domain, carrying its level and scale).
type Ciphertext = ckks.Ciphertext

// Plaintext is an encoded (but unencrypted) message.
type Plaintext = ckks.Plaintext

// ---------------------------------------------------------------------
// Deprecated single-process facade
// ---------------------------------------------------------------------

// Client bundles all three deployment roles in one process: a KeyOwner, an
// Encryptor built on the owner's public key, and a Server — sharing one
// parameter set. It predates the role separation and is kept so existing
// code continues to work.
//
// Deprecated: use KeyOwner, Encryptor and Server directly — they return
// typed errors where Client's v0 methods panic on misuse, and they model
// which machine holds which material. Client remains a thin composition
// of the three.
type Client struct {
	owner *KeyOwner
	enc   *Encryptor
	srv   *Server
}

// NewClient builds a client for the preset with a 128-bit seed (all key
// material and public-key encryption randomness derive deterministically
// from it — the property the accelerator's on-chip PRNG exploits).
// Options tune the execution engine; the cryptographic output never
// depends on them. Exception: EncodeEncryptCompressed draws a fresh
// per-instance stream base (see NewKeyOwner), so compressed uploads are
// not byte-reproducible across Client instances.
func NewClient(preset Preset, seedLo, seedHi uint64, opts ...Option) (*Client, error) {
	owner, err := NewKeyOwner(preset, seedLo, seedHi, opts...)
	if err != nil {
		return nil, err
	}
	return &Client{
		owner: owner,
		enc:   newEncryptor(owner.params, owner.public, owner.seed, false),
		srv:   newServer(owner.params, false),
	}, nil
}

// must preserves the v0 facade contract: misuse panics. The role methods
// underneath return the typed error instead.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// KeyOwner returns the facade's key-owning role.
func (c *Client) KeyOwner() *KeyOwner { return c.owner }

// Encryptor returns the facade's encrypting-device role.
func (c *Client) Encryptor() *Encryptor { return c.enc }

// Server returns the facade's evaluation role.
func (c *Client) Server() *Server { return c.srv }

// Slots returns the number of complex message slots (N/2).
func (c *Client) Slots() int { return c.owner.Slots() }

// MaxLevel returns the RNS depth fresh ciphertexts carry.
func (c *Client) MaxLevel() int { return c.owner.MaxLevel() }

// Workers reports the lane count client kernels fan out across.
func (c *Client) Workers() int { return c.owner.Workers() }

// Close releases the client's private lane engine, if WithWorkers
// installed one. The client must be idle; using it afterwards falls back
// to the shared default engine.
func (c *Client) Close() { c.owner.params.Close() }

// EncodeEncrypt runs the outbound client pipeline: IFFT encoding, RNS
// expansion, and public-key encryption at full depth.
func (c *Client) EncodeEncrypt(msg []complex128) *Ciphertext {
	return must(c.enc.EncodeEncrypt(msg))
}

// DecryptDecode runs the inbound pipeline: decryption at the ciphertext's
// level, allocation-free CRT combination and FFT decoding.
func (c *Client) DecryptDecode(ct *Ciphertext) []complex128 {
	return must(c.owner.DecryptDecode(ct))
}

// DecryptDecodeInto is DecryptDecode writing into a caller-provided slot
// buffer of length Slots() (returned for chaining).
func (c *Client) DecryptDecodeInto(ct *Ciphertext, out []complex128) []complex128 {
	return must(c.owner.DecryptDecodeInto(ct, out))
}

// EncodeEncryptBatch runs the outbound pipeline over a whole batch,
// fanning the messages out across the lane engine. The result is
// bit-identical to calling EncodeEncrypt on each message in order — at
// any worker count.
func (c *Client) EncodeEncryptBatch(msgs [][]complex128) []*Ciphertext {
	return must(c.enc.EncodeEncryptBatch(msgs))
}

// DecryptDecodeBatch runs the inbound pipeline over a whole batch in
// parallel.
func (c *Client) DecryptDecodeBatch(cts []*Ciphertext) [][]complex128 {
	return must(c.owner.DecryptDecodeBatch(cts))
}

// DecryptDecodeBatchInto is DecryptDecodeBatch writing into
// caller-provided slot buffers; nil entries are allocated, non-nil
// entries (length Slots()) are reused in place.
func (c *Client) DecryptDecodeBatchInto(cts []*Ciphertext, out [][]complex128) [][]complex128 {
	return must(c.owner.DecryptDecodeBatchInto(cts, out))
}

// Encode encodes without encrypting (plaintext-side tooling).
func (c *Client) Encode(msg []complex128) *Plaintext {
	return must(c.enc.Encode(msg))
}

// Evaluator exposes keyless homomorphic operations (add, sub, plaintext
// multiply, rescale, level drop) for server-side simulation in examples.
func (c *Client) Evaluator() *ckks.Evaluator { return c.srv.Evaluator() }

// SerializeCiphertext encodes ct in the packed 44-bit wire format — the
// exact byte stream the accelerator's DRAM/wire accounting charges.
func (c *Client) SerializeCiphertext(ct *Ciphertext) ([]byte, error) {
	return c.owner.SerializeCiphertext(ct)
}

// DeserializeCiphertext reverses SerializeCiphertext, validating every
// residue against the parameter set.
func (c *Client) DeserializeCiphertext(data []byte) (*Ciphertext, error) {
	return c.owner.DeserializeCiphertext(data)
}

// EncodeEncryptCompressed runs the seeded upload path: encode, encrypt
// with a PRNG-derived mask, and serialize only (c0, 16-byte seed) — about
// half the bytes of a full ciphertext.
func (c *Client) EncodeEncryptCompressed(msg []complex128) ([]byte, error) {
	return c.owner.EncodeEncryptCompressed(msg)
}

// ExpandCompressedUpload is the server-side inverse: parse the compressed
// form and regenerate c1 from the embedded seed. No key material needed.
func (c *Client) ExpandCompressedUpload(data []byte) (*Ciphertext, error) {
	return c.srv.ExpandCompressedUpload(data)
}

// CiphertextWireBytes reports the packed wire size of a full ciphertext
// at the given level; CompressedWireBytes the seeded form's size.
func (c *Client) CiphertextWireBytes(level int) int { return c.owner.params.CiphertextWireBytes(level) }

// CompressedWireBytes reports the seeded upload's wire size at a level.
func (c *Client) CompressedWireBytes(level int) int { return c.owner.params.SeededWireBytes(level) }

// ---------------------------------------------------------------------
// Modeled accelerator
// ---------------------------------------------------------------------

// Accelerator is the modeled ABC-FHE chip.
type Accelerator struct {
	sys core.System
}

// NewAccelerator returns the paper-configured accelerator model.
func NewAccelerator() *Accelerator { return &Accelerator{sys: core.Default()} }

// WithLanes reconfigures the per-PNL lane count (Fig. 5b's sweep axis).
func (a *Accelerator) WithLanes(p int) *Accelerator {
	return &Accelerator{sys: a.sys.WithLanes(p)}
}

// WithDegree reconfigures the polynomial degree 2^logN.
func (a *Accelerator) WithDegree(logN int) *Accelerator {
	return &Accelerator{sys: a.sys.WithDegree(logN)}
}

// Summary reports the headline card: area, power (28 nm and 7 nm),
// client-operation latencies, throughput, and operation counts.
type Summary = core.Summary

// Summarize evaluates the accelerator model once.
func (a *Accelerator) Summarize() Summary { return a.sys.Summarize() }

// EncodeEncryptMS returns the simulated encode+encrypt latency (ms).
func (a *Accelerator) EncodeEncryptMS() float64 { return a.sys.EncodeEncrypt().TimeMS }

// DecodeDecryptMS returns the simulated decode+decrypt latency (ms).
func (a *Accelerator) DecodeDecryptMS() float64 { return a.sys.DecodeDecrypt().TimeMS }

// ---------------------------------------------------------------------
// Experiments
// ---------------------------------------------------------------------

// Experiments lists the reproducible tables/figures of the paper.
func Experiments() []string { return bench.IDs() }

// RunExperiment regenerates one table/figure and returns its rendered
// text. fast trades fidelity (smaller rings) for speed.
func RunExperiment(id string, fast bool) (string, error) {
	r, err := bench.Run(id, bench.Options{Fast: fast})
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// FP55MantissaBits is the custom floating-point mantissa width the RFE
// uses (paper Fig. 3c: ≥43 bits keeps bootstrapping precision above the
// 19.29-bit threshold).
const FP55MantissaBits = fftfp.FP55Mantissa
