package abcfhe

// One testing.B benchmark per table/figure of the paper's evaluation
// (regenerating the experiment end to end), plus micro-benchmarks of the
// client primitives the accelerator targets. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks use reduced problem sizes (Options.Fast) so a
// full -bench=. sweep completes in minutes; `go run ./cmd/abcbench` runs
// the paper-scale versions.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/prng"
	"repro/internal/sim"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run(id, bench.Options{Fast: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 1: client/server execution-time breakdown (ResNet20-FHE).
func BenchmarkFig1(b *testing.B) { benchExperiment(b, "fig1") }

// Fig. 2: client-side operation analysis (27.0 vs 2.9 MOPs).
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// Fig. 3c: precision vs floating-point mantissa width (FP55 selection).
func BenchmarkFig3c(b *testing.B) { benchExperiment(b, "fig3c") }

// Fig. 4: twiddle scheduling and multiplier design-space exploration.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// Table I: modular multiplier area/pipeline comparison.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// Table II: chip area/power breakdown (+7 nm scaling).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// Fig. 5a: latency and speed-up vs CPU and prior accelerators.
func BenchmarkFig5a(b *testing.B) { benchExperiment(b, "fig5a") }

// Fig. 5b: PNL lane sweep against the LPDDR5 ceiling.
func BenchmarkFig5b(b *testing.B) { benchExperiment(b, "fig5b") }

// Fig. 6a: RFE area ablation (TF scheduling, MontMul, reconfigurability).
func BenchmarkFig6a(b *testing.B) { benchExperiment(b, "fig6a") }

// Fig. 6b: on-chip generation ablation across polynomial degrees.
func BenchmarkFig6b(b *testing.B) { benchExperiment(b, "fig6b") }

// §IV-B: on-chip memory accounting (>99.9% reduction claim).
func BenchmarkMemClaim(b *testing.B) { benchExperiment(b, "memclaim") }

// §IV-A: NTT-friendly prime census (443-prime claim).
func BenchmarkPrimeCensus(b *testing.B) { benchExperiment(b, "primes") }

// ---------------------------------------------------------------------
// Micro-benchmarks: the client primitives themselves.
// ---------------------------------------------------------------------

func benchClient(b *testing.B) (*Client, []complex128) {
	b.Helper()
	c, err := NewClient(Test, 7, 8)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]complex128, c.Slots())
	src := prng.NewSource(prng.SeedFromUint64s(1, 2), 0)
	for i := range msg {
		msg[i] = complex(src.Float64()-0.5, src.Float64()-0.5)
	}
	return c, msg
}

func BenchmarkClientEncodeEncrypt(b *testing.B) {
	c, msg := benchClient(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeEncrypt(msg)
	}
}

func BenchmarkClientDecryptDecode(b *testing.B) {
	c, msg := benchClient(b)
	ct := c.EncodeEncrypt(msg)
	low := c.Evaluator().DropLevel(ct, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecryptDecode(low)
	}
}

// Per-preset decode benchmarks at the paper's 2-limb return level. Run
// with -benchmem: the allocs/op column is the regression canary for the
// allocation-free Combine-CRT path (the Test preset sat at ~9.7k allocs/op
// on the old big.Int combine; the fast path runs at ~20).
func BenchmarkDecryptDecode(b *testing.B) {
	for _, preset := range []Preset{Test, PN13, PN14, PN15, PN16} {
		b.Run(string(preset), func(b *testing.B) {
			c, err := NewClient(preset, 7, 8)
			if err != nil {
				b.Fatal(err)
			}
			msg := make([]complex128, c.Slots())
			src := prng.NewSource(prng.SeedFromUint64s(1, 2), 0)
			for i := range msg {
				msg[i] = complex(src.Float64()-0.5, src.Float64()-0.5)
			}
			low := c.Evaluator().DropLevel(c.EncodeEncrypt(msg), 2)
			out := make([]complex128, c.Slots())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.DecryptDecodeInto(low, out)
			}
		})
	}
}

// Batch decode: message-level fan-out over reused slot buffers.
func BenchmarkDecryptDecodeBatch(b *testing.B) {
	for _, preset := range []Preset{Test, PN13} {
		b.Run(fmt.Sprintf("%s/8msgs", preset), func(b *testing.B) {
			c, err := NewClient(preset, 7, 8)
			if err != nil {
				b.Fatal(err)
			}
			msg := make([]complex128, c.Slots())
			src := prng.NewSource(prng.SeedFromUint64s(1, 2), 0)
			for i := range msg {
				msg[i] = complex(src.Float64()-0.5, src.Float64()-0.5)
			}
			cts := make([]*Ciphertext, 8)
			out := make([][]complex128, len(cts))
			for i := range cts {
				cts[i] = c.Evaluator().DropLevel(c.EncodeEncrypt(msg), 2)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.DecryptDecodeBatchInto(cts, out)
			}
		})
	}
}

// Extension: decode lane sweep with allocation accounting.
func BenchmarkDecodeExperiment(b *testing.B) { benchExperiment(b, "decode") }

func BenchmarkAcceleratorModel(b *testing.B) {
	cfg := sim.PaperConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.EncodeEncrypt(1)
		cfg.DecodeDecrypt(1)
	}
}

// Lane scaling: PN15 EncodeEncrypt with the serial path vs the full
// GOMAXPROCS worker pool — the software version of the paper's Fig. 5b
// lane sweep. On a host with ≥4 cores the pooled run is expected to be
// ≥2x faster; on a single-core host both sub-benchmarks coincide.
func BenchmarkPN15EncodeEncryptLanes(b *testing.B) {
	workerCounts := []int{1, runtime.GOMAXPROCS(0)}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			c, err := NewClient(PN15, 7, 8, WithWorkers(w))
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			msg := make([]complex128, c.Slots())
			src := prng.NewSource(prng.SeedFromUint64s(1, 2), 0)
			for i := range msg {
				msg[i] = complex(src.Float64()-0.5, src.Float64()-0.5)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.EncodeEncrypt(msg)
			}
		})
	}
}

// Batch pipeline: amortizes per-message overheads on top of limb-level
// parallelism (message-level fan-out keeps lanes busy between ops).
func BenchmarkClientEncodeEncryptBatch8(b *testing.B) {
	c, msg := benchClient(b)
	msgs := make([][]complex128, 8)
	for i := range msgs {
		msgs[i] = msg
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeEncryptBatch(msgs)
	}
}

// benchEvalServer builds the key-gated server surface once for the
// evaluation benchmarks: Test-preset parties, depth-4 keys with the
// rotation ladder for an 8-slot inner sum, hybrid gadget (the default).
func benchEvalServer(b *testing.B) (*Server, *EvaluationKeys, *Ciphertext) {
	return benchEvalServerGadget(b, GadgetAuto)
}

func benchEvalServerGadget(b *testing.B, gadget GadgetType) (*Server, *EvaluationKeys, *Ciphertext) {
	b.Helper()
	owner, err := NewKeyOwner(Test, 7, 8)
	if err != nil {
		b.Fatal(err)
	}
	pkBytes, _ := owner.ExportPublicKey()
	evkBytes, err := owner.ExportEvaluationKeys(EvalKeyConfig{
		MaxLevel:  4,
		Rotations: InnerSumRotations(8),
		Gadget:    gadget,
	})
	if err != nil {
		b.Fatal(err)
	}
	device, err := NewEncryptor(pkBytes, 9, 10)
	if err != nil {
		b.Fatal(err)
	}
	server, evk, err := NewServerFromEvaluationKeys(evkBytes)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]complex128, device.Slots())
	src := prng.NewSource(prng.SeedFromUint64s(1, 2), 0)
	for i := range msg {
		msg[i] = complex(src.Float64()-0.5, src.Float64()-0.5)
	}
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		b.Fatal(err)
	}
	return server, evk, ct
}

// Key-switch hot paths with allocation accounting — the allocs/op column
// is the regression canary for the pool-backed digit decomposition (the
// hard budget is TestEvalAllocationBudget; these report real numbers per
// worker configuration).
func BenchmarkServerMulRelin(b *testing.B) {
	server, evk, ct := benchEvalServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.Mul(ct, ct, evk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerRotate(b *testing.B) {
	server, evk, ct := benchEvalServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.Rotate(ct, 1, evk); err != nil {
			b.Fatal(err)
		}
	}
}

// Hoisted vs sequential multi-rotation: RotateMany shares one digit
// decomposition (and its NTTs) across all steps; the sequential loop pays
// it per step.
func BenchmarkServerRotateMany(b *testing.B) {
	steps := []int{1, 2, 4}
	b.Run("hoisted", func(b *testing.B) {
		server, evk, ct := benchEvalServer(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := server.RotateMany(ct, steps, evk); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		server, evk, ct := benchEvalServer(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, k := range steps {
				if _, err := server.Rotate(ct, k, evk); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// Hybrid vs BV gadget head-to-head on the same circuit — the software
// version of the bench-check gate's PN15 comparison (which CI runs at
// paper scale via `abcbench -check`).
func BenchmarkServerGadgets(b *testing.B) {
	for _, g := range []struct {
		name   string
		gadget GadgetType
	}{{"hybrid", GadgetHybrid}, {"bv", GadgetBV}} {
		b.Run("MulRelin/"+g.name, func(b *testing.B) {
			server, evk, ct := benchEvalServerGadget(b, g.gadget)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := server.Mul(ct, ct, evk); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Rotate/"+g.name, func(b *testing.B) {
			server, evk, ct := benchEvalServerGadget(b, g.gadget)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := server.Rotate(ct, 1, evk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkServerInnerSum8(b *testing.B) {
	server, evk, ct := benchEvalServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.InnerSum(ct, 8, evk); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension: seeded-ciphertext bandwidth ablation.
func BenchmarkSeededAblation(b *testing.B) { benchExperiment(b, "seeded") }

// Extension: architecture design-space sweep.
func BenchmarkArchSweep(b *testing.B) { benchExperiment(b, "archsweep") }
