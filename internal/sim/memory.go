package sim

// On-chip memory accounting behind §IV-B's claim: at N = 2^16, 44-bit
// words and 24 limbs the client would need 16.5 MB of public key,
// 8.25 MB of masks/errors and 8.25 MB of twiddle factors — replaced by a
// 128-bit PRNG seed plus ~27 KB of twiddle seeds, a >99.9% reduction.

// MemoryFootprint itemizes the precomputed-data storage (bytes).
type MemoryFootprint struct {
	PublicKeyB float64
	MaskErrorB float64
	TwiddleB   float64
	SeedStoreB float64 // OTF seed memory + PRNG seed
}

// TotalPrecomputedB is the storage the generators eliminate.
func (m MemoryFootprint) TotalPrecomputedB() float64 {
	return m.PublicKeyB + m.MaskErrorB + m.TwiddleB
}

// ReductionFraction is 1 - seeds/precomputed (the >99.9% claim).
func (m MemoryFootprint) ReductionFraction() float64 {
	return 1 - m.SeedStoreB/m.TotalPrecomputedB()
}

// Footprint computes the memory accounting for a configuration.
func Footprint(c Config) MemoryFootprint {
	n := float64(c.n())
	l := float64(c.Limbs)
	w := c.wordBytes()

	// OTF seed store: forward+inverse ψ-power towers per modulus
	// (2·(logN+1) words), replicated per PNL so each lane's generator has
	// single-cycle access, plus the FFT ksi seed pair per stage
	// (complex128) shared by the fused FFT mode.
	towers := 2 * float64(c.LogN+1) * w * l * float64(c.PNLs)
	fftSeeds := 2 * float64(c.LogN) * 16
	prngSeed := 16.0

	return MemoryFootprint{
		PublicKeyB: 2 * l * n * w,
		MaskErrorB: l * n * w,
		TwiddleB:   l * n * w,
		SeedStoreB: towers + fftSeeds + prngSeed,
	}
}
