package hw

import (
	"math"
	"testing"
)

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		return
	}
	if d := math.Abs(got-want) / want; d > tol {
		t.Errorf("%s: got %.4f want %.4f (%.1f%% off, tol %.0f%%)",
			name, got, want, d*100, tol*100)
	}
}

func TestTableIIRows(t *testing.T) {
	rows := TableII(PaperConfig())
	if len(rows) != 11 {
		t.Fatalf("expected 11 rows, got %d", len(rows))
	}
	// Composed (non-anchored) rows must land within 10% of the paper;
	// SRAM rows and anchored rows within 2%.
	tols := map[string]float64{
		"4x PNL":                     0.10,
		"Unified OTF TF Gen":         0.10,
		"Twiddle Factor Seed Memory": 0.03,
		"MSE":                        0.10,
		"PRNG":                       0.02,
		"Local Scratchpad":           0.02,
		"RSC":                        0.08,
		"2x RSC":                     0.08,
		"Global Scratchpad":          0.02,
		"Top CTRL, DMA, Etc.":        0.02,
		"Total":                      0.08,
	}
	for _, r := range rows {
		tol, ok := tols[r.Name]
		if !ok {
			t.Fatalf("unexpected row %q", r.Name)
		}
		within(t, r.Name+" area", r.AreaMM2, r.PaperAreaMM2, tol)
		within(t, r.Name+" power", r.PowerW, r.PaperPowerW, tol+0.10)
	}
}

func TestChipTotals(t *testing.T) {
	chip := Chip(PaperConfig())
	within(t, "total area", chip.AreaMM2, 28.638, 0.08)
	within(t, "total power", chip.PowerW, 5.654, 0.15)
}

func TestChipCompositionConsistent(t *testing.T) {
	chip := Chip(PaperConfig())
	sumA, sumP := 0.0, 0.0
	for _, c := range chip.Children {
		sumA += c.AreaMM2
		sumP += c.PowerW
	}
	if math.Abs(sumA-chip.AreaMM2) > 1e-9 || math.Abs(sumP-chip.PowerW) > 1e-9 {
		t.Fatal("chip totals must equal the sum of children")
	}
}

func TestScaling7nm(t *testing.T) {
	chip := Chip(PaperConfig())
	s := ScaledBlock(chip)
	// Paper §V-A: ≈0.9 mm², ≈2.1 W at 7 nm.
	within(t, "7nm area", s.AreaMM2, 0.9, 0.10)
	within(t, "7nm power", s.PowerW, 2.1, 0.18)
	if len(s.Children) != len(chip.Children) {
		t.Fatal("scaling must preserve the hierarchy")
	}
}

func TestFig6aAblation(t *testing.T) {
	pts := Fig6aAblation(PaperConfig())
	if len(pts) != 4 {
		t.Fatal("four design points expected")
	}
	// Monotone decreasing area across the optimization sequence.
	for i := 1; i < len(pts); i++ {
		if pts[i].AreaMM2 >= pts[i-1].AreaMM2 {
			t.Fatalf("ablation not monotone: %v", pts)
		}
	}
	// Paper: 31% total reduction. Accept the 20–45% band (documented
	// counting-rule differences; EXPERIMENTS.md reports the exact value).
	red := TotalReduction(pts)
	if red < 0.20 || red > 0.45 {
		t.Fatalf("total RFE reduction %.3f outside the plausible band (paper 0.31)", red)
	}
	if pts[0].Relative != 1 {
		t.Fatal("baseline must be normalized to 1")
	}
}

func TestReconfigurableBeatsSeparate(t *testing.T) {
	// The final reconfigurable point must beat point 3 (separate FFT
	// engine with optimized multipliers): folding the FFT into the NTT
	// lanes is the paper's headline idea.
	pts := Fig6aAblation(PaperConfig())
	if pts[3].AreaMM2 >= pts[2].AreaMM2 {
		t.Fatal("reconfigurability must reduce area over a separate FFT engine")
	}
}

func TestBlockSumAndFlatten(t *testing.T) {
	b := Block{Name: "parent", Children: []Block{
		{Name: "a", AreaMM2: 1, PowerW: 0.1},
		{Name: "b", AreaMM2: 2, PowerW: 0.2},
	}}
	b.Sum()
	if b.AreaMM2 != 3 || math.Abs(b.PowerW-0.3) > 1e-12 {
		t.Fatal("Sum incorrect")
	}
	if got := b.Flatten(); len(got) != 3 || got[0].Name != "parent" {
		t.Fatal("Flatten incorrect")
	}
}

func TestPowerDensityClassesFromTableII(t *testing.T) {
	// The densities we derived must actually reproduce the paper's own
	// area/power pairs (internal consistency of Table II).
	within(t, "SRAM density (GSP)", PowerDensitySRAM, 1.290/2.632, 0.02)
	within(t, "logic density (PNL)", PowerDensityLogic, 1.397/10.717, 0.02)
	within(t, "SIMD density (MSE)", PowerDensitySIMD, 0.298/0.787, 0.06)
}

func BenchmarkChipComposition(b *testing.B) {
	cfg := PaperConfig()
	for i := 0; i < b.N; i++ {
		Chip(cfg)
	}
}

func TestAreaMonotoneInConfig(t *testing.T) {
	base := PaperConfig()
	baseArea := Chip(base).AreaMM2

	more := base
	more.PNLs = 8
	if Chip(more).AreaMM2 <= baseArea {
		t.Fatal("more PNLs must cost area")
	}
	more = base
	more.RSCs = 4
	if Chip(more).AreaMM2 <= baseArea {
		t.Fatal("more RSCs must cost area")
	}
	more = base
	more.P = 16
	if Chip(more).AreaMM2 <= baseArea {
		t.Fatal("more lanes must cost area")
	}
	less := base
	less.GlobalKB = 440
	if Chip(less).AreaMM2 >= baseArea {
		t.Fatal("less scratchpad must save area")
	}
}

func TestPNLAreaDominatedByMultipliers(t *testing.T) {
	// The RFE's premise: multiplier area dominates the lane, which is why
	// the Table I and Fig. 4 optimizations matter.
	cfg := PaperConfig()
	pnl := PNLBlock(cfg)
	mults := float64(pnlMultipliers(cfg)) * ReconfigMultAreaMM2()
	if mults < 0.35*pnl.AreaMM2 {
		t.Fatalf("multipliers %.3f mm² are not a dominant share of the PNL %.3f mm²",
			mults, pnl.AreaMM2)
	}
}

func TestSevenNMFactorsMatchPaperRatios(t *testing.T) {
	if AreaScale28To7 < 0.025 || AreaScale28To7 > 0.04 {
		t.Fatalf("area scale factor %v outside DeepScaleTool's 28→7 nm band", AreaScale28To7)
	}
	if PowerScale28To7 < 0.3 || PowerScale28To7 > 0.45 {
		t.Fatalf("power scale factor %v outside plausible band", PowerScale28To7)
	}
}
