package ring

// Galois automorphisms and the fused kernels of the key-switch inner loop.
// Like every limb-wise kernel in this package, they dispatch through the
// lane engine and are bit-identical at any worker count (pure modular
// arithmetic landing at disjoint indices).

// GaloisPermNTT returns the NTT-domain permutation implementing X → X^g
// (g odd, in (0, 2N)): out[j] = in[perm[j]]. The permutation is a property
// of the transform's evaluation-point schedule, so one table serves every
// limb of the ring — level views share it too.
func (r *Ring) GaloisPermNTT(g int) []int32 {
	return r.Tables[0].GaloisPerm(g)
}

// PermuteNTT sets out = σ_g(p) for an NTT-domain p, using a permutation
// from GaloisPermNTT. In the evaluation domain the automorphism is a pure
// gather — no negations (the X^N = −1 wraps live in the evaluation
// points). out must not alias p.
func (r *Ring) PermuteNTT(p *Poly, perm []int32, out *Poly) {
	if !p.IsNTT {
		panic("ring: PermuteNTT requires NTT domain")
	}
	r.Engine().Run(len(p.Coeffs), func(i int) {
		pi, oi := p.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = pi[perm[j]]
		}
	})
	out.IsNTT = true
}

// MulPermAdd sets out += σ(a) ⊙ b where σ is the NTT-domain gather
// permutation (nil ⇒ identity): out[i][j] += a[i][perm[j]]·b[i][j]. This
// is the fused multiply-accumulate of the hoisted key-switch inner loop —
// one pass instead of permute, multiply, add. All operands must be in the
// NTT domain; out must not alias a or b.
func (r *Ring) MulPermAdd(a *Poly, perm []int32, b, out *Poly) {
	if !a.IsNTT || !b.IsNTT || !out.IsNTT {
		panic("ring: MulPermAdd requires NTT domain")
	}
	if r.Backend().Specialized() {
		r.Engine().Run(len(a.Coeffs), func(i int) {
			mulPermAddRowFast(r.Basis.Moduli[i], a.Coeffs[i], perm, b.Coeffs[i], out.Coeffs[i])
		})
		return
	}
	r.Engine().Run(len(a.Coeffs), func(i int) {
		m := r.Basis.Moduli[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		if perm == nil {
			for j := range oi {
				oi[j] = m.Add(oi[j], m.Mul(ai[j], bi[j]))
			}
			return
		}
		for j := range oi {
			oi[j] = m.Add(oi[j], m.Mul(ai[perm[j]], bi[j]))
		}
	})
}

// MulCoeffsAdd sets out += a ⊙ b (pointwise, NTT domain) — the unpermuted
// multiply-accumulate. out must not alias a or b.
func (r *Ring) MulCoeffsAdd(a, b, out *Poly) {
	r.MulPermAdd(a, nil, b, out)
}

// MulMonomial sets out = X^k · p for a coefficient-domain p — the
// negacyclic shift: coefficient j lands at (j+k) mod 2N, negated when the
// index wraps past N (X^N = −1). k must be in [0, 2N). A monomial multiply
// is O(N·L) coefficient movement with no NTT — the cheap way to realize
// slot-wise multiplication by a root of unity (X^{N/2} has every slot
// equal to i, which is how the homomorphic DFT's conjugate split combines
// real and imaginary parts). Every output index is written exactly once,
// so a pooled uninitialized target is safe. out must not alias p.
func (r *Ring) MulMonomial(p *Poly, k int, out *Poly) {
	if p.IsNTT {
		panic("ring: MulMonomial expects coefficient domain")
	}
	if k < 0 || k >= 2*r.N {
		panic("ring: monomial degree must be in [0, 2N)")
	}
	n := r.N
	r.Engine().Run(len(p.Coeffs), func(i int) {
		m := r.Basis.Moduli[i]
		pi, oi := p.Coeffs[i], out.Coeffs[i]
		for j := 0; j < n; j++ {
			idx := j + k
			v := pi[j]
			if idx >= 2*n {
				idx -= 2 * n
			} else if idx >= n {
				idx -= n
				v = m.Neg(v)
			}
			oi[idx] = v
		}
	})
	out.IsNTT = false
}

// AutomorphismCoeff sets out = σ_g(p) for a coefficient-domain p:
// coefficient j lands at g·j mod 2N, negated when the index wraps past N
// (X^N = −1). Every output index is written exactly once (g odd ⇒ the map
// is a bijection), so a pooled uninitialized target is safe. out must not
// alias p.
func (r *Ring) AutomorphismCoeff(p *Poly, g int, out *Poly) {
	if p.IsNTT {
		panic("ring: AutomorphismCoeff expects coefficient domain")
	}
	if g&1 == 0 || g <= 0 || g >= 2*r.N {
		panic("ring: Galois element must be odd in (0, 2N)")
	}
	n := r.N
	mask := 2*n - 1
	r.Engine().Run(len(p.Coeffs), func(i int) {
		m := r.Basis.Moduli[i]
		pi, oi := p.Coeffs[i], out.Coeffs[i]
		for j := 0; j < n; j++ {
			idx := (g * j) & mask
			v := pi[j]
			if idx >= n {
				idx -= n
				v = m.Neg(v)
			}
			oi[idx] = v
		}
	})
	out.IsNTT = false
}
