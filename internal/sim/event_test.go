package sim

import "testing"

func TestPipelineSteadyStateII(t *testing.T) {
	// Back-to-back transforms must sustain one beat per cycle: the delta
	// between the completion of consecutive transforms equals N/P.
	logN, p := 12, 8
	ps := NewPipelineSim(logN, p, 4)
	beats := (1 << uint(logN)) / p
	r := ps.Run(BackToBack(logN, p, 3))
	endT1 := r.DoneCycle[beats-1]
	endT2 := r.DoneCycle[2*beats-1]
	endT3 := r.DoneCycle[3*beats-1]
	if endT2-endT1 != beats || endT3-endT2 != beats {
		t.Fatalf("II violated: ends %d %d %d (beats=%d)", endT1, endT2, endT3, beats)
	}
}

func TestPipelineFillAmortized(t *testing.T) {
	logN, p := 12, 8
	ps := NewPipelineSim(logN, p, 4)
	one := ps.Run(BackToBack(logN, p, 1)).TotalCycles
	ten := ps.Run(BackToBack(logN, p, 10)).TotalCycles
	if ten >= 10*one {
		t.Fatalf("fill not amortized: 1 → %d, 10 → %d", one, ten)
	}
	beats := (1 << uint(logN)) / p
	if ten != one+9*beats {
		t.Fatalf("steady state should add exactly N/P per transform: %d vs %d",
			ten, one+9*beats)
	}
}

func TestPipelineOccupancyWithinFIFOs(t *testing.T) {
	// The occupancy the discrete simulation observes must fit the FIFO
	// capacities the hardware model pays area for.
	logN, p := 13, 8
	ps := NewPipelineSim(logN, p, 4)
	r := ps.Run(BackToBack(logN, p, 4))
	for s, occ := range r.MaxOccupancy {
		if occ > ps.caps[s] {
			t.Fatalf("stage %d: occupancy %d exceeds capacity %d", s, occ, ps.caps[s])
		}
	}
}

func TestThrottledInputDominates(t *testing.T) {
	// When beats arrive every 3 cycles (a DRAM-starved stream), total time
	// approaches 3× the beat count — validating the analytic
	// max(compute, DRAM) composition.
	logN, p := 12, 8
	ps := NewPipelineSim(logN, p, 4)
	beats := (1 << uint(logN)) / p
	r := ps.Run(Throttled(logN, p, 3))
	lower := 3 * (beats - 1)
	if r.TotalCycles < lower {
		t.Fatalf("throttled run finished before its input: %d < %d", r.TotalCycles, lower)
	}
	if r.TotalCycles > lower+ps.fillBound() {
		t.Fatalf("throttled run took %d, want ≤ input time + fill %d",
			r.TotalCycles, lower+ps.fillBound())
	}
}

func (ps *PipelineSim) fillBound() int {
	fill := 0
	for _, l := range ps.latencies {
		fill += l + 1
	}
	return fill
}

func TestValidateAnalyticModel(t *testing.T) {
	for _, cfg := range []struct{ logN, p int }{{10, 4}, {12, 8}, {14, 8}, {16, 8}} {
		if err := ValidateAnalyticModel(cfg.logN, cfg.p); err != nil {
			t.Fatalf("logN=%d P=%d: %v", cfg.logN, cfg.p, err)
		}
	}
}

func TestSeededStudy(t *testing.T) {
	s := PaperConfig().SeededStudy()
	// The design is DRAM-bound, so halving the write stream must speed it
	// up by a meaningful factor (< 2 because reads remain).
	if s.Speedup < 1.2 || s.Speedup > 2.0 {
		t.Fatalf("seeded speedup %.2f outside (1.2, 2.0)", s.Speedup)
	}
	if s.ThroughputSeeded <= s.ThroughputStandard {
		t.Fatal("seeded throughput must improve")
	}
	// Write savings = L·N·5.5 bytes ≈ 8.65 MB at the paper config.
	if s.WriteSaveMB < 8 || s.WriteSaveMB > 9.5 {
		t.Fatalf("write savings %.2f MB, want ≈8.65", s.WriteSaveMB)
	}
}
