package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIKeyRoundTrip drives keygen → encrypt → decrypt through the
// subcommand entry points on real files — each step shares nothing with
// the previous one except the bytes on disk, the same property the CI
// step checks across actual processes.
func TestCLIKeyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pk := filepath.Join(dir, "pk.key")
	sk := filepath.Join(dir, "sk.key")
	ct := filepath.Join(dir, "ct.bin")
	msg := filepath.Join(dir, "msg.txt")
	out := filepath.Join(dir, "out.txt")

	if err := os.WriteFile(msg, []byte("0.5\n-0.25 0.125\n# comment\n0 -0.75\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := runKeygen([]string{"-preset", "Test", "-pk", pk, "-sk", sk}); err != nil {
		t.Fatal("keygen:", err)
	}
	if err := runEncrypt([]string{"-pk", pk, "-in", msg, "-out", ct}); err != nil {
		t.Fatal("encrypt:", err)
	}
	// Self-checking decrypt: -expect verifies against the original message.
	if err := runDecrypt([]string{"-sk", sk, "-in", ct, "-expect", msg, "-out", out, "-n", "3"}); err != nil {
		t.Fatal("decrypt:", err)
	}
	// -n trims only the output; -expect always sees the full decryption.
	if err := runDecrypt([]string{"-sk", sk, "-in", ct, "-expect", msg, "-n", "1"}); err != nil {
		t.Fatal("decrypt -n 1 with longer -expect:", err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("decrypt -n 3 wrote %d lines", len(lines))
	}
	// The emitted text round-trips through the message parser.
	back, err := readMessageFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("parsed %d values", len(back))
	}
}

// TestCLIKeygenDefaultSeedsAreFresh: without explicit -seed flags every
// keygen must draw a fresh crypto/rand seed — two default runs may never
// emit the same key material (a fixed default would hand every user the
// same secret key).
func TestCLIKeygenDefaultSeedsAreFresh(t *testing.T) {
	dir := t.TempDir()
	paths := func(tag string) (string, string) {
		return filepath.Join(dir, tag+".pk"), filepath.Join(dir, tag+".sk")
	}
	pkA, skA := paths("a")
	pkB, skB := paths("b")
	if err := runKeygen([]string{"-preset", "Test", "-pk", pkA, "-sk", skA}); err != nil {
		t.Fatal(err)
	}
	if err := runKeygen([]string{"-preset", "Test", "-pk", pkB, "-sk", skB}); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(pkA)
	b, _ := os.ReadFile(pkB)
	if string(a) == string(b) {
		t.Fatal("two default keygens produced identical public keys")
	}

	// Pinned seeds stay reproducible.
	pkC, skC := paths("c")
	pkD, skD := paths("d")
	for _, p := range [][2]string{{pkC, skC}, {pkD, skD}} {
		if err := runKeygen([]string{"-preset", "Test", "-seed-lo", "5", "-seed-hi", "6",
			"-pk", p[0], "-sk", p[1]}); err != nil {
			t.Fatal(err)
		}
	}
	c, _ := os.ReadFile(pkC)
	d, _ := os.ReadFile(pkD)
	if string(c) != string(d) {
		t.Fatal("pinned seeds must be reproducible")
	}
}

// TestCLIDecryptDetectsTamper flips ciphertext bytes on disk and expects
// the decrypt subcommand to fail cleanly (error, not panic).
func TestCLIDecryptDetectsTamper(t *testing.T) {
	dir := t.TempDir()
	pk := filepath.Join(dir, "pk.key")
	sk := filepath.Join(dir, "sk.key")
	ct := filepath.Join(dir, "ct.bin")
	msg := filepath.Join(dir, "msg.txt")

	if err := os.WriteFile(msg, []byte("0.25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runKeygen([]string{"-preset", "Test", "-pk", pk, "-sk", sk}); err != nil {
		t.Fatal(err)
	}
	if err := runEncrypt([]string{"-pk", pk, "-in", msg, "-out", ct}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ct)
	if err != nil {
		t.Fatal(err)
	}
	data = data[:len(data)-7] // truncate
	if err := os.WriteFile(ct, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runDecrypt([]string{"-sk", sk, "-in", ct}); err == nil {
		t.Fatal("truncated ciphertext must fail to decrypt")
	}
}

// TestCLIWrongKeyFails ensures decrypt with a different keypair's secret
// key is either rejected or fails -expect verification — never silently
// "succeeds".
func TestCLIWrongKeyFails(t *testing.T) {
	dir := t.TempDir()
	pkA := filepath.Join(dir, "a.pk")
	skA := filepath.Join(dir, "a.sk")
	skB := filepath.Join(dir, "b.sk")
	ct := filepath.Join(dir, "ct.bin")
	msg := filepath.Join(dir, "msg.txt")

	if err := os.WriteFile(msg, []byte("0.5 -0.25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runKeygen([]string{"-preset", "Test", "-pk", pkA, "-sk", skA}); err != nil {
		t.Fatal(err)
	}
	if err := runKeygen([]string{"-preset", "Test", "-seed-lo", "999", "-seed-hi", "111",
		"-pk", filepath.Join(dir, "b.pk"), "-sk", skB}); err != nil {
		t.Fatal(err)
	}
	if err := runEncrypt([]string{"-pk", pkA, "-in", msg, "-out", ct}); err != nil {
		t.Fatal(err)
	}
	if err := runDecrypt([]string{"-sk", skB, "-in", ct, "-expect", msg}); err == nil {
		t.Fatal("decrypting with the wrong secret key must fail verification")
	}
}
