// Package lanes is the software analogue of ABC-FHE's parallel NTT-lane
// (PNL) array: a shared, sized worker pool that executes per-limb kernels
// concurrently. The paper scales client-side CKKS by streaming independent
// RNS limbs through p hardware lanes (Fig. 5b sweeps p); this package does
// the same with goroutines, so internal/ring can dispatch every limb-wise
// operation across however many "lanes" the host offers.
//
// Determinism contract: an Engine only changes *where* a task index runs,
// never what it computes or in what order results land — tasks write to
// disjoint outputs keyed by their index. Callers must therefore never
// split a sequential PRNG sample stream across tasks; sampling code draws
// the stream serially and parallelizes only the per-limb expansion (see
// ring.sharedSigned). Under that rule the same seed yields bit-identical
// results at any worker count, which TestLaneDeterminism asserts.
package lanes

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Engine is a fixed-size worker pool. The zero of workers is resolved to
// GOMAXPROCS at construction. Engines are safe for concurrent use and for
// nested Run calls (the caller always participates, so a busy pool
// degrades to inline execution instead of deadlocking).
type Engine struct {
	workers   int
	jobs      chan *job // buffered; nil when workers == 1
	closeOnce sync.Once
}

// job is one Run invocation: a task body plus a work-stealing cursor.
type job struct {
	fn    func(int)
	n     int64
	next  atomic.Int64
	wg    sync.WaitGroup
	panic atomic.Pointer[TaskPanic]
}

// TaskPanic is what Run re-panics with when a task panicked on a pooled
// lane: it carries the original value (for recover-based inspection) and
// the panicking lane's stack (the caller's own trace only shows Run).
type TaskPanic struct {
	Value any
	Stack []byte
}

func (t *TaskPanic) Error() string {
	return fmt.Sprintf("lanes: task panic: %v\n%s", t.Value, t.Stack)
}

// New builds an engine with n workers; n <= 0 selects GOMAXPROCS. One
// lane is the caller itself, so n-1 pool goroutines are spawned. They
// persist until Close.
func New(n int) *Engine {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: n}
	if n > 1 {
		// The buffer lets Run hand work to workers that are momentarily
		// between jobs; a stale job drained later is a no-op (cursor
		// exhausted), so over-offering is harmless.
		e.jobs = make(chan *job, n-1)
		for i := 0; i < n-1; i++ {
			go worker(e.jobs)
		}
	}
	return e
}

var (
	defaultOnce sync.Once
	defaultEng  *Engine
)

// Default returns the process-wide shared engine, sized GOMAXPROCS. It is
// never closed; rings use it unless given a dedicated engine.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEng = New(0) })
	return defaultEng
}

// Workers reports the lane count (including the caller's lane).
func (e *Engine) Workers() int {
	if e == nil {
		return 1
	}
	return e.workers
}

// Close releases the pool goroutines. Only call on engines created with
// New, with no Run in flight; the engine must not be used afterwards.
// Close is idempotent and safe to call from multiple goroutines — service
// teardown paths (a signal handler racing a deferred cleanup) reach it
// more than once. Closing Default is forbidden.
func (e *Engine) Close() {
	if e == defaultEng {
		panic("lanes: cannot close the default engine")
	}
	e.closeOnce.Do(func() {
		if e.jobs != nil {
			close(e.jobs)
		}
	})
}

func worker(jobs <-chan *job) {
	for j := range jobs {
		j.run()
	}
}

// run pulls task indices off the shared cursor until none remain.
func (j *job) run() {
	for {
		i := j.next.Add(1) - 1
		if i >= j.n {
			return
		}
		j.exec(int(i))
	}
}

// exec runs one task, converting a panic into a recorded failure so the
// pool never deadlocks; Run re-panics it on the caller's goroutine.
func (j *job) exec(i int) {
	defer j.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			j.panic.CompareAndSwap(nil, &TaskPanic{Value: r, Stack: debug.Stack()})
		}
	}()
	j.fn(i)
}

// Run executes fn(0) … fn(n-1) across the engine's lanes and returns when
// all have completed. Tasks must be independent and write only to outputs
// owned by their index. The calling goroutine always executes tasks too,
// so Run(n, fn) with a 1-worker engine is exactly the serial loop.
func (e *Engine) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if e == nil || e.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	j := &job{fn: fn, n: int64(n)}
	j.wg.Add(n)
	helpers := e.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
offer:
	for i := 0; i < helpers; i++ {
		select {
		case e.jobs <- j:
		default:
			break offer // pool saturated; caller absorbs the rest
		}
	}
	j.run()
	j.wg.Wait()
	if p := j.panic.Load(); p != nil {
		panic(p)
	}
}

// chunkOversubscribe is how many chunks RunChunks carves per worker.
// Chunks are claimed through Run's work-stealing cursor, so a worker
// that finishes early (or joins late because the pool was busy) picks up
// the tail another lane would otherwise idle through — the CRT-combine
// tails that motivated this are exactly that shape. 4 keeps per-chunk
// dispatch overhead negligible while bounding any single straggler to
// ~1/(4·Workers) of the range.
const chunkOversubscribe = 4

// RunChunks splits [0, n) into contiguous chunks and runs fn(lo, hi) for
// each — the shape coefficient-indexed kernels (encode's RNS expansion,
// decode's CRT combine, ModUp base conversion) want, where per-index
// dispatch would be all overhead. It carves chunkOversubscribe chunks per
// worker and lets Run's cursor balance them, so uneven per-chunk cost no
// longer pins the whole call to the slowest fixed assignment. Chunk
// boundaries are an execution detail: fn must compute per-index results
// that do not depend on the partition (every caller here does — disjoint
// output indices, pure per-coefficient arithmetic).
func (e *Engine) RunChunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := e.Workers()
	if chunks > 1 {
		chunks *= chunkOversubscribe
	}
	if chunks > n {
		chunks = n
	}
	if chunks == 1 {
		fn(0, n)
		return
	}
	size := (n + chunks - 1) / chunks
	e.Run(chunks, func(c int) {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if lo < hi {
			fn(lo, hi)
		}
	})
}
