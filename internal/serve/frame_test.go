package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	abcfhe "repro"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, parts := range [][][]byte{
		{[]byte("a")},
		{[]byte("hello"), []byte("")},
		{[]byte{0, 1, 2}, bytes.Repeat([]byte{7}, 1000), []byte("x")},
	} {
		enc := EncodeFrames(parts...)
		var buf bytes.Buffer
		if err := WriteFrames(&buf, parts...); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), enc) {
			t.Fatal("WriteFrames and EncodeFrames disagree")
		}
		got, err := ReadFrames(bytes.NewReader(enc), 4, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(parts) {
			t.Fatalf("got %d parts, want %d", len(got), len(parts))
		}
		for i := range parts {
			if !bytes.Equal(got[i], parts[i]) {
				t.Fatalf("part %d differs", i)
			}
		}
	}
}

func TestFrameRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"zero-parts":     EncodeFrames(),
		"trailing-bytes": append(EncodeFrames([]byte("a")), 0xFF),
		"truncated-body": EncodeFrames([]byte("abc"))[:6],
	}
	// Declared part count way past the cap.
	var many [4]byte
	binary.LittleEndian.PutUint32(many[:], 1<<30)
	cases["too-many-parts"] = many[:]
	// One part whose declared length exceeds maxPart.
	big := EncodeFrames(bytes.Repeat([]byte{1}, 100))
	cases["oversized-part"] = big

	for name, data := range cases {
		maxPart := int64(1 << 20)
		if name == "oversized-part" {
			maxPart = 50
		}
		if _, err := ReadFrames(bytes.NewReader(data), 4, maxPart); !errors.Is(err, abcfhe.ErrMalformedWire) {
			t.Errorf("%s: err = %v, want ErrMalformedWire", name, err)
		}
	}
}

func TestParseComplexLines(t *testing.T) {
	vals, err := parseComplexLines([]byte("# header\n0.25\n0.5 -0.125\n\n1e-3 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{0.25, complex(0.5, -0.125), complex(1e-3, 2)}
	if len(vals) != len(want) {
		t.Fatalf("got %d values, want %d", len(vals), len(want))
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("value %d = %v, want %v", i, vals[i], want[i])
		}
	}
	for _, bad := range []string{"", "# only\n", "a b\n", "1 2 3\n"} {
		if _, err := parseComplexLines([]byte(bad)); !errors.Is(err, abcfhe.ErrInvalidConstant) {
			t.Errorf("%q: err = %v, want ErrInvalidConstant", bad, err)
		}
	}
}
