package lanes

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		e := New(workers)
		for _, n := range []int{0, 1, 3, 64, 1000} {
			hits := make([]int32, n)
			e.Run(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", workers, n, i, h)
				}
			}
		}
		if workers > 1 {
			e.Close()
		}
	}
}

func TestNestedRun(t *testing.T) {
	e := New(4)
	defer e.Close()
	var total atomic.Int64
	e.Run(8, func(i int) {
		e.Run(8, func(j int) { total.Add(1) })
	})
	if total.Load() != 64 {
		t.Fatalf("nested run executed %d tasks, want 64", total.Load())
	}
}

func TestRunChunksCover(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		e := New(workers)
		for _, n := range []int{1, 7, 97, 1024} {
			hits := make([]int32, n)
			e.RunChunks(n, func(lo, hi int) {
				if lo >= hi || hi > n {
					t.Fatalf("bad chunk [%d,%d)", lo, hi)
				}
				for j := lo; j < hi; j++ {
					atomic.AddInt32(&hits[j], 1)
				}
			})
			for j, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, j, h)
				}
			}
		}
		if workers > 1 {
			e.Close()
		}
	}
}

// TestRunChunksOversubscribes: with multiple workers, RunChunks carves
// more chunks than lanes so the work-stealing cursor can rebalance
// stragglers; a single-worker engine keeps the one-call fast path.
func TestRunChunksOversubscribes(t *testing.T) {
	e := New(4)
	defer e.Close()
	var calls atomic.Int32
	e.RunChunks(4096, func(lo, hi int) { calls.Add(1) })
	if got, want := int(calls.Load()), 4*chunkOversubscribe; got != want {
		t.Fatalf("4-worker RunChunks issued %d chunks, want %d", got, want)
	}
	var serial atomic.Int32
	New(1).RunChunks(4096, func(lo, hi int) { serial.Add(1) })
	if serial.Load() != 1 {
		t.Fatalf("1-worker RunChunks issued %d chunks, want 1", serial.Load())
	}
	// Tiny n: never more chunks than indices.
	calls.Store(0)
	e.RunChunks(3, func(lo, hi int) {
		if hi != lo+1 {
			t.Fatalf("n=3 chunk [%d,%d) wider than one index", lo, hi)
		}
		calls.Add(1)
	})
	if calls.Load() != 3 {
		t.Fatalf("n=3 issued %d chunks", calls.Load())
	}
}

func TestBackendIdentities(t *testing.T) {
	if Portable.Name() != "portable" || Portable.Specialized() {
		t.Fatal("portable backend misdescribes itself")
	}
	if Fast.Name() != "fast" || !Fast.Specialized() {
		t.Fatal("fast backend misdescribes itself")
	}
	bs := Backends()
	if len(bs) != 2 || bs[0] != Portable || bs[1] != Fast {
		t.Fatalf("Backends() = %v", bs)
	}
}

func TestParseBackend(t *testing.T) {
	for _, b := range Backends() {
		got, err := ParseBackend(b.Name())
		if err != nil || got != b {
			t.Fatalf("ParseBackend(%q) = %v, %v", b.Name(), got, err)
		}
	}
	if _, err := ParseBackend("simd512"); err == nil {
		t.Fatal("unknown backend name must error")
	}
}

// DefaultBackend is env-resolved once per process; all this test can
// assert portably is that it answers with one of the registered backends.
func TestDefaultBackendRegistered(t *testing.T) {
	d := DefaultBackend()
	for _, b := range Backends() {
		if d == b {
			return
		}
	}
	t.Fatalf("DefaultBackend() = %v not in Backends()", d)
}

func TestPanicPropagates(t *testing.T) {
	e := New(4)
	defer e.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate to caller")
		}
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("expected *TaskPanic, got %T: %v", r, r)
		}
		if tp.Value != "boom" {
			t.Fatalf("panic lost its payload: %v", tp.Value)
		}
		if !strings.Contains(tp.Error(), "boom") || len(tp.Stack) == 0 {
			t.Fatalf("TaskPanic missing message or stack: %v", tp.Error())
		}
	}()
	e.Run(16, func(i int) {
		if i == 11 {
			panic("boom")
		}
	})
}

func TestDefaultEngine(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must be a singleton")
	}
	if got := Default().Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default engine has %d workers, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	var e *Engine
	if e.Workers() != 1 {
		t.Fatal("nil engine must report one lane")
	}
	ran := 0
	e.Run(3, func(i int) { ran++ }) // nil engine runs inline
	if ran != 3 {
		t.Fatal("nil engine must still execute tasks")
	}
}

func TestMatrixPoolShapes(t *testing.T) {
	m := GetMatrix(3, 8)
	if len(m.Rows) != 3 || len(m.Rows[0]) != 8 {
		t.Fatalf("matrix shape %dx%d", len(m.Rows), len(m.Rows[0]))
	}
	for i := range m.Rows {
		for j := range m.Rows[i] {
			m.Rows[i][j] = 7
		}
	}
	m.Zero()
	for i := range m.Rows {
		for j := range m.Rows[i] {
			if m.Rows[i][j] != 0 {
				t.Fatal("Zero left residue")
			}
		}
	}
	PutMatrix(m)
	// A different shape must never alias the returned buffer's rows.
	m2 := GetMatrix(8, 3)
	if len(m2.Rows) != 8 || len(m2.Rows[0]) != 3 {
		t.Fatalf("matrix shape %dx%d", len(m2.Rows), len(m2.Rows[0]))
	}
	PutMatrix(m2)
}

func TestSlabPool(t *testing.T) {
	s := GetSlab(100)
	if len(s) != 100 {
		t.Fatalf("slab length %d", len(s))
	}
	PutSlab(s)
	s2 := GetSlab(100)
	if len(s2) != 100 {
		t.Fatalf("slab length %d after recycle", len(s2))
	}
	PutSlab(s2)
}

func BenchmarkRunOverhead(b *testing.B) {
	e := New(runtime.GOMAXPROCS(0))
	defer func() {
		if e.Workers() > 1 {
			e.Close()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(24, func(int) {})
	}
}

func TestFloatSlabPool(t *testing.T) {
	s := GetFloatSlab(64)
	if len(s) != 64 {
		t.Fatalf("slab length %d", len(s))
	}
	for i := range s {
		s[i] = float64(i) + 0.5
	}
	PutFloatSlab(s)
	s2 := GetFloatSlab(64)
	if len(s2) != 64 {
		t.Fatalf("recycled slab length %d", len(s2))
	}
	PutFloatSlab(s2)
	if n := GetFloatSlab(32); len(n) != 32 {
		t.Fatalf("distinct size pooled together: len %d", len(n))
	}
	PutFloatSlab(nil) // must be a no-op
}
