package ntt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

// Test moduli: (N, q) pairs with q ≡ 1 mod 2N.
var testCfgs = []struct {
	n int
	q uint64
}{
	{8, 97},             // tiny: 97 ≡ 1 mod 16
	{16, 97},            // 97 ≡ 1 mod 32
	{256, 7681},         // Kyber-era prime
	{1024, 132120577},   // 27-bit
	{4096, 68718428161}, // 36-bit CKKS limb
}

func randPoly(n int, q uint64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % q
	}
	return a
}

func TestForwardInverseIdentity(t *testing.T) {
	for _, cfg := range testCfgs {
		tbl := MustTable(cfg.n, cfg.q)
		a := randPoly(cfg.n, cfg.q, 1)
		b := append([]uint64(nil), a...)
		tbl.Forward(b)
		tbl.Inverse(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("N=%d q=%d: INTT(NTT(a)) != a at %d", cfg.n, cfg.q, i)
			}
		}
	}
}

func TestPolyMulMatchesNaive(t *testing.T) {
	for _, cfg := range testCfgs {
		if cfg.n > 1024 {
			continue // naive is O(N²)
		}
		tbl := MustTable(cfg.n, cfg.q)
		a := randPoly(cfg.n, cfg.q, 2)
		b := randPoly(cfg.n, cfg.q, 3)
		got := tbl.PolyMulNTT(a, b)
		want := tbl.PolyMulNaive(a, b)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("N=%d q=%d: NTT product differs from naive at %d: %d vs %d",
					cfg.n, cfg.q, i, got[i], want[i])
			}
		}
	}
}

// The negacyclic wrap: X^N ≡ -1. Multiplying by X (shift by one) must
// negate the wrapped coefficient.
func TestNegacyclicWrap(t *testing.T) {
	tbl := MustTable(16, 97)
	a := make([]uint64, 16)
	a[15] = 5 // a = 5·X^15
	x := make([]uint64, 16)
	x[1] = 1 // multiply by X
	got := tbl.PolyMulNTT(a, x)
	// 5·X^16 = -5
	if got[0] != 97-5 {
		t.Fatalf("X^N wrap: got %d want %d", got[0], 97-5)
	}
	for i := 1; i < 16; i++ {
		if got[i] != 0 {
			t.Fatalf("unexpected coefficient at %d", i)
		}
	}
}

// Linearity of the transform (property-based): NTT(αa + b) = αNTT(a)+NTT(b).
func TestNTTLinearityQuick(t *testing.T) {
	tbl := MustTable(64, 7681)
	m := tbl.Mod
	f := func(seedA, seedB int64, alpha uint64) bool {
		alpha %= tbl.Mod.Q
		a := randPoly(64, tbl.Mod.Q, seedA)
		b := randPoly(64, tbl.Mod.Q, seedB)
		lin := make([]uint64, 64)
		for i := range lin {
			lin[i] = m.Add(m.Mul(alpha, a[i]), b[i])
		}
		tbl.Forward(lin)
		tbl.Forward(a)
		tbl.Forward(b)
		for i := range lin {
			if lin[i] != m.Add(m.Mul(alpha, a[i]), b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOTFGenMatchesTables(t *testing.T) {
	for _, cfg := range testCfgs {
		tbl := MustTable(cfg.n, cfg.q)
		gen := NewOTFGen(tbl)
		for s := 0; s < tbl.LogN; s++ {
			mm := 1 << uint(s)
			fw := gen.StageForward(s)
			for i := 0; i < mm; i++ {
				if fw[i] != tbl.PsiRev[mm+i] {
					t.Fatalf("N=%d q=%d stage %d: OTF forward twiddle %d mismatch",
						cfg.n, cfg.q, s, i)
				}
			}
			inv := gen.StageInverse(s)
			for i := 0; i < mm; i++ {
				if inv[i] != tbl.PsiInvRev[mm+i] {
					t.Fatalf("N=%d q=%d stage %d: OTF inverse twiddle %d mismatch",
						cfg.n, cfg.q, s, i)
				}
			}
		}
	}
}

func TestOTFSeedFootprint(t *testing.T) {
	// The whole point of the OTF generator: seed storage is O(logN) words,
	// versus N words for the full table — a >99.9% reduction at N=2^16
	// (paper §IV-B).
	tbl := MustTable(4096, 68718428161)
	gen := NewOTFGen(tbl)
	seedBytes := gen.SeedBytes(8)
	tableBytes := 2 * tbl.N * 8 // forward + inverse tables
	if seedBytes >= tableBytes/100 {
		t.Fatalf("seed footprint %dB not ≪ table footprint %dB", seedBytes, tableBytes)
	}
}

func TestStreamingLaneBitIdentical(t *testing.T) {
	for _, cfg := range testCfgs {
		tbl := MustTable(cfg.n, cfg.q)
		p := 8
		if p > cfg.n {
			p = cfg.n / 2
		}
		lane := NewStreamingLane(tbl, p)
		a := randPoly(cfg.n, cfg.q, 4)
		ref := append([]uint64(nil), a...)
		st := append([]uint64(nil), a...)

		tbl.Forward(ref)
		lane.Forward(st)
		for i := range ref {
			if ref[i] != st[i] {
				t.Fatalf("N=%d: streaming forward differs at %d", cfg.n, i)
			}
		}
		tbl.Inverse(ref)
		lane.Inverse(st)
		for i := range ref {
			if ref[i] != st[i] {
				t.Fatalf("N=%d: streaming inverse differs at %d", cfg.n, i)
			}
		}
	}
}

func TestStreamingLaneStats(t *testing.T) {
	tbl := MustTable(1024, 132120577)
	lane := NewStreamingLane(tbl, 8)
	a := randPoly(1024, tbl.Mod.Q, 5)
	lane.Forward(a)
	// One multiplication per butterfly: (N/2)·logN.
	want := 512 * 10
	if lane.ButterflyMuls != want {
		t.Fatalf("butterfly muls = %d, want %d", lane.ButterflyMuls, want)
	}
	// Physical structure: P/2·logN multipliers (paper's minimum).
	if lane.MultiplierUnits() != 4*10 {
		t.Fatalf("multiplier units = %d, want 40", lane.MultiplierUnits())
	}
	// II = N/P.
	if lane.InitiationInterval() != 128 {
		t.Fatalf("II = %d, want 128", lane.InitiationInterval())
	}
	// FIFO storage is O(N/P) per lane pair and decreasing per stage.
	depths := lane.FIFODepths()
	for s := 1; s < len(depths); s++ {
		if depths[s] > depths[s-1] {
			t.Fatalf("FIFO depths must be non-increasing: %v", depths)
		}
	}
	if lane.TransformCycles(1) <= lane.InitiationInterval() {
		t.Fatal("fill latency must be positive")
	}
	// Back-to-back streaming amortizes fill.
	c1 := lane.TransformCycles(1)
	c10 := lane.TransformCycles(10)
	if c10 >= 10*c1 {
		t.Fatal("streaming must amortize pipeline fill")
	}
}

// Streaming transform of PRNG-generated polynomials: exercises the
// integration the accelerator performs (PRNG → NTT) and checks the
// round-trip through both implementations.
func TestPRNGToNTTIntegration(t *testing.T) {
	tbl := MustTable(4096, 68718428161)
	lane := NewStreamingLane(tbl, 8)
	src := prng.NewSource(prng.SeedFromUint64s(99, 100), 0)
	a := make([]uint64, 4096)
	src.UniformPoly(a, tbl.Mod.Q)
	orig := append([]uint64(nil), a...)
	lane.Forward(a)
	lane.Inverse(a)
	for i := range a {
		if a[i] != orig[i] {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestGrayMulsPerStage(t *testing.T) {
	if GrayMulsPerStage(0) != 0 || GrayMulsPerStage(1) != 1 || GrayMulsPerStage(4) != 15 {
		t.Fatal("Gray-schedule multiplication counts wrong")
	}
}

func TestBitReverse(t *testing.T) {
	a := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	BitReverse(a)
	want := []uint64{0, 4, 2, 6, 1, 5, 3, 7}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("BitReverse: got %v want %v", a, want)
		}
	}
	BitReverse(a) // involution
	for i := range a {
		if a[i] != uint64(i) {
			t.Fatal("BitReverse is not an involution")
		}
	}
}

func BenchmarkNTTForward4096(b *testing.B) {
	tbl := MustTable(4096, 68718428161)
	a := randPoly(4096, tbl.Mod.Q, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Forward(a)
	}
}

func BenchmarkNTTForward65536(b *testing.B) {
	tbl := MustTable(65536, 68718428161)
	a := randPoly(65536, tbl.Mod.Q, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Forward(a)
	}
}

func BenchmarkStreamingForward4096(b *testing.B) {
	tbl := MustTable(4096, 68718428161)
	lane := NewStreamingLane(tbl, 8)
	a := randPoly(4096, tbl.Mod.Q, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lane.Forward(a)
	}
}

func TestForwardLazyMatchesForward(t *testing.T) {
	for _, cfg := range testCfgs {
		tbl := MustTable(cfg.n, cfg.q)
		a := randPoly(cfg.n, cfg.q, 9)
		ref := append([]uint64(nil), a...)
		lz := append([]uint64(nil), a...)
		tbl.Forward(ref)
		tbl.ForwardLazy(lz)
		for i := range ref {
			if ref[i] != lz[i] {
				t.Fatalf("N=%d q=%d: lazy forward differs at %d: %d vs %d",
					cfg.n, cfg.q, i, lz[i], ref[i])
			}
		}
	}
}

// Property: lazy and strict forward transforms agree on arbitrary inputs.
func TestForwardLazyQuick(t *testing.T) {
	tbl := MustTable(256, 7681)
	f := func(seed int64) bool {
		a := randPoly(256, tbl.Mod.Q, seed)
		b := append([]uint64(nil), a...)
		tbl.Forward(a)
		tbl.ForwardLazy(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNTTForwardLazy65536(b *testing.B) {
	tbl := MustTable(65536, 68718428161)
	a := randPoly(65536, tbl.Mod.Q, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.ForwardLazy(a)
	}
}

func TestInverseLazyMatchesInverse(t *testing.T) {
	for _, cfg := range testCfgs {
		tbl := MustTable(cfg.n, cfg.q)
		a := randPoly(cfg.n, cfg.q, 10)
		tbl.Forward(a) // inverse-transform a genuine evaluation vector
		ref := append([]uint64(nil), a...)
		lz := append([]uint64(nil), a...)
		tbl.Inverse(ref)
		tbl.InverseLazy(lz)
		for i := range ref {
			if ref[i] != lz[i] {
				t.Fatalf("N=%d q=%d: lazy inverse differs at %d: %d vs %d",
					cfg.n, cfg.q, i, lz[i], ref[i])
			}
		}
	}
}

// Property: lazy and strict inverse transforms agree on arbitrary inputs
// (any canonical vector is a legal evaluation vector — the transform pair
// is a bijection on [0, q)^N).
func TestInverseLazyQuick(t *testing.T) {
	tbl := MustTable(256, 7681)
	f := func(seed int64) bool {
		a := randPoly(256, tbl.Mod.Q, seed)
		b := append([]uint64(nil), a...)
		tbl.Inverse(a)
		tbl.InverseLazy(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The lazy round trip composes: ForwardLazy then InverseLazy restores the
// input exactly (both kernels normalize canonically at their boundary).
func TestLazyRoundTripIdentity(t *testing.T) {
	for _, cfg := range testCfgs {
		tbl := MustTable(cfg.n, cfg.q)
		a := randPoly(cfg.n, cfg.q, 11)
		want := append([]uint64(nil), a...)
		tbl.ForwardLazy(a)
		tbl.InverseLazy(a)
		for i := range a {
			if a[i] != want[i] {
				t.Fatalf("N=%d q=%d: lazy round trip differs at %d", cfg.n, cfg.q, i)
			}
		}
	}
}

func BenchmarkNTTInverse65536(b *testing.B) {
	tbl := MustTable(65536, 68718428161)
	a := randPoly(65536, tbl.Mod.Q, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Inverse(a)
	}
}

func BenchmarkNTTInverseLazy65536(b *testing.B) {
	tbl := MustTable(65536, 68718428161)
	a := randPoly(65536, tbl.Mod.Q, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.InverseLazy(a)
	}
}
