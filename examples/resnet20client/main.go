// resnet20client reproduces the Fig. 1 scenario: the client side of a
// privacy-preserving ResNet20 inference, played out across the three
// deployment roles. An encrypting device encodes and encrypts a
// CIFAR-10-sized image into CKKS ciphertexts, the (simulated) server
// evaluates the network and returns logits at the 2-limb level, and the
// key owner decrypts and decodes them.
//
// It reports where the wall-clock time goes for three client platforms —
// this host's CPU (really measured), the SOTA prior accelerator, and
// ABC-FHE (both modeled) — reproducing the paper's observation that the
// client dominates end-to-end latency until ABC-FHE flips the balance.
package main

import (
	"fmt"
	"log"
	"time"

	abcfhe "repro"
	"repro/internal/baseline"
)

func main() {
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 2024, 2025)
	if err != nil {
		log.Fatal(err)
	}
	pkBytes, err := owner.ExportPublicKey()
	if err != nil {
		log.Fatal(err)
	}
	device, err := abcfhe.NewEncryptor(pkBytes, 4040, 5050)
	if err != nil {
		log.Fatal(err)
	}
	server, err := abcfhe.NewServer(abcfhe.Test)
	if err != nil {
		log.Fatal(err)
	}

	// A CIFAR-10 image: 32·32·3 = 3072 values, packed into message slots.
	pixels := make([]complex128, 0, 3072)
	for i := 0; i < 3072; i++ {
		pixels = append(pixels, complex(float64(i%256)/255-0.5, 0))
	}
	perCt := device.Slots()
	nCt := (len(pixels) + perCt - 1) / perCt
	fmt.Printf("packing %d pixels into %d ciphertext(s) of %d slots\n", len(pixels), nCt, perCt)

	// --- Functional run on this host (device role) ----------------------
	start := time.Now()
	chunks := make([][]complex128, 0, nCt)
	for i := 0; i < nCt; i++ {
		chunk := pixels[i*perCt:]
		if len(chunk) > perCt {
			chunk = chunk[:perCt]
		}
		chunks = append(chunks, chunk)
	}
	cts, err := device.EncodeEncryptBatch(chunks)
	if err != nil {
		log.Fatal(err)
	}
	encodeTime := time.Since(start)

	// Server: a stand-in linear layer (the real network is the server
	// accelerator's concern — Fig. 1 takes its time from published
	// numbers) followed by the drop to the 2-limb return state.
	replies := make([]*abcfhe.Ciphertext, len(cts))
	for i, ct := range cts {
		doubled, err := server.Add(ct, ct)
		if err != nil {
			log.Fatal(err)
		}
		if replies[i], err = server.DropLevel(doubled, 2); err != nil {
			log.Fatal(err)
		}
	}

	// Key owner: decrypt+decode the returned logits.
	start = time.Now()
	decoded, err := owner.DecryptDecodeBatch(replies)
	if err != nil {
		log.Fatal(err)
	}
	decodeTime := time.Since(start)
	var logits []complex128
	for _, d := range decoded {
		logits = append(logits, d...)
	}
	fmt.Printf("this host (pure Go): client enc %v, client dec %v (%d logits)\n\n",
		encodeTime, decodeTime, len(logits))

	// --- Fig. 1 breakdown at paper scale --------------------------------
	acc := abcfhe.NewAccelerator()
	rows := baseline.Fig1(acc.EncodeEncryptMS(), acc.DecodeDecryptMS(), nCt*64)
	fmt.Println("Fig. 1 — execution-time breakdown (ResNet20-FHE, modeled at N=2^16):")
	for _, r := range rows {
		client := r.ClientEncMS + r.ClientDecMS
		fmt.Printf("  %-28s client %9.1f ms  server %9.1f ms  client share %5.1f%%\n",
			r.Label, client, r.ServerMS, 100*r.ClientShare)
	}
	fmt.Println("\npaper marks: CPU 99.9%, SOTA client 69.4%, ABC-FHE 12.8% —")
	fmt.Println("the bottleneck moves off the client only with ABC-FHE.")
}
